package netserver

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mvgc"
	"mvgc/internal/netclient"
	"mvgc/internal/wal"
)

// waitFollower polls the follower until key carries val — proof it has
// replayed every log byte the leader appended before that write (the
// stream is in log order).
func waitFollower(t *testing.T, c *netclient.Client, key, val int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, ok, err := c.Get(key)
		if err != nil {
			t.Fatalf("follower GET: %v", err)
		}
		if ok && v == val {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached key %d = %d (at %d, ok=%v)", key, val, v, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// dumpServer scans the full keyspace through the cursor-scan iterator.
func dumpServer(t *testing.T, c *netclient.Client) map[int64]int64 {
	t.Helper()
	got := map[int64]int64{}
	sc := c.Scanner(-1<<62, 97) // odd page size: exercise page boundaries
	for sc.Next() {
		e := sc.Entry()
		got[e.Key] = e.Val
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("cursor scan: %v", err)
	}
	return got
}

// TestFollowerStreamsAndPromotes is the basic replication e2e: a follower
// replays the leader's stream, serves reads but refuses writes, and
// PROMOTE flips it into a writable leader whose stamps never rewind.
func TestFollowerStreamsAndPromotes(t *testing.T) {
	lmem, fmem := wal.NewMemFS(), wal.NewMemFS()
	leader, laddr := startServer(t, Config{
		Shards: 2, MaxConns: 4,
		WAL: mvgc.WALOptions{Dir: "wal", FS: lmem},
	})
	defer leader.Close()

	lc, err := netclient.Dial(laddr, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	for k := int64(0); k < 100; k++ {
		if err := lc.Set(k, k*3+1); err != nil {
			t.Fatalf("SET %d: %v", k, err)
		}
	}

	follower, faddr := startServer(t, Config{
		Shards: 2, MaxConns: 4,
		WAL:    mvgc.WALOptions{Dir: "wal", FS: fmem},
		Follow: laddr,
	})
	defer follower.Close()
	fc, err := netclient.Dial(faddr, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	if err := lc.Set(-1, 42); err != nil {
		t.Fatal(err)
	}
	waitFollower(t, fc, -1, 42)

	// Reads work; the cursor scan agrees with the leader exactly.
	want := dumpServer(t, lc)
	if got := dumpServer(t, fc); len(got) != len(want) {
		t.Fatalf("follower holds %d keys, leader %d", len(got), len(want))
	} else {
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("follower key %d = %d, leader has %d", k, got[k], v)
			}
		}
	}
	// Writes are refused while following.
	if err := fc.Set(7, 7); err == nil || !strings.Contains(err.Error(), "READONLY") {
		t.Fatalf("follower SET = %v, want READONLY refusal", err)
	}
	if got := statInt(t, mustStats(t, fc), "readonly"); got != 1 {
		t.Fatalf("follower readonly stat = %d, want 1", got)
	}

	// Promote over the wire: writes flow, and the stamp floor means the
	// promoted GSN continues past everything replayed.
	if err := fc.Promote(); err != nil {
		t.Fatalf("PROMOTE: %v", err)
	}
	if got := statInt(t, mustStats(t, fc), "readonly"); got != 0 {
		t.Fatalf("promoted readonly stat = %d, want 0", got)
	}
	preGSN := statInt(t, mustStats(t, fc), "gsn")
	if err := fc.Set(200, 777); err != nil {
		t.Fatalf("SET after PROMOTE: %v", err)
	}
	if v, ok, err := fc.Get(200); err != nil || !ok || v != 777 {
		t.Fatalf("read-own-write after PROMOTE = (%d, %v, %v)", v, ok, err)
	}
	if postGSN := statInt(t, mustStats(t, fc), "gsn"); postGSN <= preGSN || preGSN == 0 {
		t.Fatalf("gsn %d -> %d across promotion: stamps rewound or never advanced", preGSN, postGSN)
	}
}

func mustStats(t *testing.T, c *netclient.Client) string {
	t.Helper()
	s, err := c.Stats()
	if err != nil {
		t.Fatalf("STATS: %v", err)
	}
	return s
}

// TestFollowerReconnectAndBootstrap: a follower that goes away and comes
// back resumes from its persisted position; when the leader's
// checkpointer has retired the log prefix it needed, it bootstraps from
// the snapshot instead — and in both cases converges to the leader's
// exact contents, including multi-shard atomic (MCAS) writes.
func TestFollowerReconnectAndBootstrap(t *testing.T) {
	lmem, fmem := wal.NewMemFS(), wal.NewMemFS()
	leader, laddr := startServer(t, Config{
		Shards: 4, MaxConns: 4,
		WAL: mvgc.WALOptions{
			Dir: "wal", FS: lmem,
			SegmentBytes:    1 << 10,
			CheckpointBytes: 4 << 10,
		},
	})
	defer leader.Close()
	lc, err := netclient.Dial(laddr, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	for k := int64(0); k < 64; k++ {
		if err := lc.Set(k, k); err != nil {
			t.Fatal(err)
		}
	}

	followerCfg := Config{
		Shards: 4, MaxConns: 4,
		WAL:    mvgc.WALOptions{Dir: "wal", FS: fmem},
		Follow: laddr,
	}
	follower, faddr := startServer(t, followerCfg)
	fc, err := netclient.Dial(faddr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := lc.Set(-1, 1); err != nil {
		t.Fatal(err)
	}
	waitFollower(t, fc, -1, 1)
	fc.Close()

	// Follower leaves gracefully (position persisted), then the leader
	// moves on: atomic multi-shard swaps plus enough churn that the
	// checkpointer retires the log prefix the follower's position names.
	if err := follower.Shutdown(); err != nil {
		t.Fatalf("follower shutdown: %v", err)
	}
	if ok, err := lc.MCAS([]int64{1, 2, 3}, []int64{1, 2, 3}, []int64{-10, -20, -30}); err != nil || !ok {
		t.Fatalf("MCAS = (%v, %v)", ok, err)
	}
	for i := int64(0); i < 2000; i++ {
		if err := lc.Set(100+i%128, i); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for statInt(t, mustStats(t, lc), "wal_live") > 16<<10 {
		if time.Now().After(deadline) {
			t.Fatal("leader checkpointer never bounded the log")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Rebirth from the same directory: the persisted position is stale
	// (retired), so the handshake must fall back to snapshot bootstrap.
	follower, faddr = startServer(t, followerCfg)
	defer follower.Close()
	fc, err = netclient.Dial(faddr, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if err := lc.Set(-1, 2); err != nil {
		t.Fatal(err)
	}
	waitFollower(t, fc, -1, 2)

	want := dumpServer(t, lc)
	got := dumpServer(t, fc)
	if len(got) != len(want) {
		t.Fatalf("follower holds %d keys, leader %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("follower key %d = %d, leader has %d (atomic replay torn?)", k, got[k], v)
		}
	}
	for _, k := range []int64{1, 2, 3} {
		if got[k] != -k*10 {
			t.Fatalf("MCAS effect on key %d = %d, want %d", k, got[k], -k*10)
		}
	}
}

// TestFollowerCrashMatrix power-cuts the follower's filesystem at a
// sweep of operation indices mid-stream, reopens a follower from the
// surviving bytes, and requires it to converge to the leader exactly —
// the stream position is only persisted after the follower's log syncs,
// so a crash can only force idempotent re-replay, never divergence.
func TestFollowerCrashMatrix(t *testing.T) {
	lmem := wal.NewMemFS()
	leader, laddr := startServer(t, Config{
		Shards: 2, MaxConns: 4,
		WAL: mvgc.WALOptions{Dir: "wal", FS: lmem},
	})
	defer leader.Close()
	lc, err := netclient.Dial(laddr, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	for k := int64(0); k < 200; k++ {
		if err := lc.Set(k, k*7); err != nil {
			t.Fatal(err)
		}
	}

	for _, crashAt := range []int{5, 20, 60, 120, 400} {
		t.Run(fmt.Sprintf("crash@%d", crashAt), func(t *testing.T) {
			fmem := wal.NewMemFS()
			ffs := wal.NewFaultFS(fmem)
			ffs.Script(crashAt, wal.FaultCrash)
			follower, faddr := startServer(t, Config{
				Shards: 2, MaxConns: 4,
				WAL:    mvgc.WALOptions{Dir: "wal", FS: ffs},
				Follow: laddr,
			})
			// Give the stream time to run into the scripted power cut
			// (or finish, for late crash points), then tear down whatever
			// is left of the server.
			deadline := time.Now().Add(time.Second)
			for !ffs.Crashed() && time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
			}
			follower.Close()

			// Reopen from the post-crash filesystem image and re-follow.
			follower, faddr = startServer(t, Config{
				Shards: 2, MaxConns: 4,
				WAL:    mvgc.WALOptions{Dir: "wal", FS: fmem},
				Follow: laddr,
			})
			defer follower.Close()
			fc, err := netclient.Dial(faddr, 64)
			if err != nil {
				t.Fatal(err)
			}
			defer fc.Close()
			if err := lc.Set(-1, int64(crashAt)); err != nil {
				t.Fatal(err)
			}
			waitFollower(t, fc, -1, int64(crashAt))
			want := dumpServer(t, lc)
			got := dumpServer(t, fc)
			if len(got) != len(want) {
				t.Fatalf("follower holds %d keys, leader %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("follower key %d = %d, leader has %d", k, got[k], v)
				}
			}
		})
	}
}

// TestScanCursorWire pins the SCANC reply contract at the client level:
// paging visits every entry exactly once in order, the probe entry sets
// More without leaking, and an exclusive resume skips the cursor key.
func TestScanCursorWire(t *testing.T) {
	s, addr := startServer(t, Config{Shards: 4, MaxConns: 4})
	defer s.Shutdown()
	c, err := netclient.Dial(addr, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 533 // deliberately not a multiple of the page size
	for k := int64(0); k < n; k++ {
		if err := c.Set(k*2, k); err != nil {
			t.Fatal(err)
		}
	}

	var pages, seen int
	last := int64(-1)
	for lo, excl, more := int64(0), false, true; more; {
		ch, err := c.ScanChunk(lo, 100, excl)
		if err != nil {
			t.Fatalf("SCANC: %v", err)
		}
		pages++
		for _, e := range ch.Entries {
			if e.Key <= last {
				t.Fatalf("cursor went backwards: %d after %d", e.Key, last)
			}
			if e.Val != e.Key/2 {
				t.Fatalf("entry %d = %d, want %d", e.Key, e.Val, e.Key/2)
			}
			last = e.Key
			seen++
		}
		if ch.More && len(ch.Entries) == 0 {
			t.Fatal("More set on an empty page: no progress possible")
		}
		if ch.More && ch.Next != last {
			t.Fatalf("Next = %d, want last key %d", ch.Next, last)
		}
		lo, excl, more = ch.Next, true, ch.More
	}
	if seen != n {
		t.Fatalf("cursor visited %d entries, want %d", seen, n)
	}
	if pages < n/100 {
		t.Fatalf("only %d pages for %d entries at page size 100", pages, n)
	}

	// The iterator agrees.
	sc := c.Scanner(0, 100)
	count := 0
	for sc.Next() {
		count++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("Scanner visited %d entries, want %d", count, n)
	}
}

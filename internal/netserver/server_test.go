package netserver

import (
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mvgc"
	"mvgc/internal/netclient"
	"mvgc/internal/wal"
)

// startServer brings up a real listener on a random loopback port and
// returns the server plus its dialable address.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	return s, ln.Addr().String()
}

// statInt extracts one counter from a STATS reply.
func statInt(t *testing.T, stats, key string) int64 {
	t.Helper()
	for _, f := range strings.Fields(stats) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				t.Fatalf("STATS field %q: %v", f, err)
			}
			return n
		}
	}
	t.Fatalf("STATS reply %q lacks %q", stats, key)
	return 0
}

// TestServerCommands drives every command synchronously over a real
// socket.
func TestServerCommands(t *testing.T) {
	s, addr := startServer(t, Config{Shards: 2, MaxConns: 4})
	defer s.Shutdown()

	c, err := netclient.Dial(addr, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("PING: %v", err)
	}
	for k := int64(1); k <= 10; k++ {
		if err := c.Set(k, k*100); err != nil {
			t.Fatalf("SET %d: %v", k, err)
		}
	}
	if v, ok, err := c.Get(7); err != nil || !ok || v != 700 {
		t.Fatalf("GET 7 = (%d, %v, %v), want (700, true, nil)", v, ok, err)
	}
	if _, ok, err := c.Get(99); err != nil || ok {
		t.Fatalf("GET 99 present=%v err=%v, want absent", ok, err)
	}
	if n, err := c.Len(); err != nil || n != 10 {
		t.Fatalf("LEN = (%d, %v), want 10", n, err)
	}
	// sum(100..1000 step 100) = 5500
	if sum, err := c.Sum(1, 10); err != nil || sum != 5500 {
		t.Fatalf("SUM 1 10 = (%d, %v), want 5500", sum, err)
	}
	if err := c.Del(3); err != nil {
		t.Fatalf("DEL: %v", err)
	}
	if _, ok, _ := c.Get(3); ok {
		t.Fatal("GET 3 still present after DEL")
	}

	// MCAS: wrong expectation fails and writes nothing, right one swaps all.
	if ok, err := c.MCAS([]int64{1, 2}, []int64{100, 999}, []int64{-1, -2}); err != nil || ok {
		t.Fatalf("MCAS with bad expect = (%v, %v), want (false, nil)", ok, err)
	}
	if v, _, _ := c.Get(1); v != 100 {
		t.Fatalf("failed MCAS wrote key 1: %d", v)
	}
	if ok, err := c.MCAS([]int64{1, 2}, []int64{100, 200}, []int64{111, 222}); err != nil || !ok {
		t.Fatalf("MCAS = (%v, %v), want (true, nil)", ok, err)
	}
	if v, _, _ := c.Get(2); v != 222 {
		t.Fatalf("MCAS swapped key 2 to %d, want 222", v)
	}
	// Recycled-slot regression: a failing MCAS right after a successful one
	// reuses the success's response slot, which must not echo its stale :1.
	if ok, err := c.MCAS([]int64{1, 2}, []int64{100, 222}, []int64{0, 0}); err != nil || ok {
		t.Fatalf("stale-expect MCAS on recycled slot = (%v, %v), want (false, nil)", ok, err)
	}

	// SCAN streams ascending keys across shards; DEL'd key 3 must be gone.
	entries, err := c.Scan(1, 100)
	if err != nil {
		t.Fatalf("SCAN: %v", err)
	}
	if len(entries) != 9 { // keys 1..10 minus the deleted 3
		t.Fatalf("SCAN returned %d entries, want 9", len(entries))
	}
	prev := int64(0)
	for _, e := range entries {
		if e.Key <= prev {
			t.Fatalf("SCAN out of order: %d after %d", e.Key, prev)
		}
		if e.Key == 3 {
			t.Fatal("SCAN returned the deleted key")
		}
		prev = e.Key
	}
	if entries[0].Key != 1 || entries[0].Val != 111 { // MCAS swapped 1 → 111
		t.Fatalf("SCAN[0] = %d:%d, want 1:111", entries[0].Key, entries[0].Val)
	}
	// Bounded n stops the stream early.
	if short, err := c.Scan(1, 3); err != nil || len(short) != 3 {
		t.Fatalf("SCAN 1 3 = %d entries (%v), want 3", len(short), err)
	}
	// An empty result is an empty array, not an error.
	if none, err := c.Scan(1_000_000, 10); err != nil || len(none) != 0 {
		t.Fatalf("SCAN past end = %d entries (%v), want 0", len(none), err)
	}
	// Oversized and malformed SCANs are command errors, not dropped conns.
	if _, err := c.Scan(0, maxScanEntries+1); err == nil {
		t.Fatal("oversized SCAN n accepted")
	}
	if _, err := c.Scan(0, -1); err == nil {
		t.Fatal("negative SCAN n accepted")
	}

	// Command errors keep the connection alive.
	if _, err := c.Sum(1, 2); err != nil {
		t.Fatalf("SUM after MCAS: %v", err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("STATS: %v", err)
	}
	if got := statInt(t, stats, "shards"); got != 2 {
		t.Fatalf("STATS shards = %d, want 2", got)
	}
	if statInt(t, stats, "applied") < 11 { // 10 SETs + 1 DEL rode combiners
		t.Fatalf("STATS applied = %d, want >= 11", statInt(t, stats, "applied"))
	}
}

// TestPipelinedClientsCoalesce is the tentpole property end to end: many
// connections pipelining writes concurrently, all acknowledged writes
// visible, and the combiner commit count far below the op count.
func TestPipelinedClientsCoalesce(t *testing.T) {
	const (
		clients = 8
		perConn = 400
		depth   = 64
	)
	s, addr := startServer(t, Config{Shards: 2, MaxConns: clients, MaxLatency: time.Millisecond})
	defer s.Shutdown()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := netclient.Dial(addr, depth)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			pend := make([]*netclient.Pending, 0, perConn)
			for i := 0; i < perConn; i++ {
				k := int64(ci*perConn + i)
				pend = append(pend, c.SetAsync(k, k))
			}
			if err := c.Flush(); err != nil {
				errs <- err
				return
			}
			for _, p := range pend {
				if err := p.Err(); err != nil {
					errs <- err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	c, err := netclient.Dial(addr, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	total := int64(clients * perConn)
	if n, err := c.Len(); err != nil || n != total {
		t.Fatalf("LEN = (%d, %v), want %d", n, err, total)
	}
	// Every acknowledged SET must be readable: spot-check a stripe.
	for k := int64(0); k < total; k += 37 {
		if v, ok, err := c.Get(k); err != nil || !ok || v != k {
			t.Fatalf("GET %d = (%d, %v, %v)", k, v, ok, err)
		}
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	applied := statInt(t, stats, "applied")
	batches := statInt(t, stats, "batches")
	if applied < total {
		t.Fatalf("applied = %d, want >= %d", applied, total)
	}
	// The whole point: thousands of pipelined writes ride far fewer
	// combiner commits.  Be loose here (CI machines stall); netbench
	// measures the real ratio.
	if batches*4 > applied {
		t.Fatalf("no coalescing: %d batches for %d applied writes", batches, applied)
	}
	t.Logf("coalescing: %d writes in %d commits (%.1f writes/commit)",
		applied, batches, float64(applied)/float64(batches))
}

// TestConsistentScanInvariant: under Config.Consistent, a SCAN rides one
// global GSN cut, so it can never observe an MCAS transfer half-applied —
// the wire-level version of the torn-scan regression.  Writers move value
// between random keys with MCAS (atomic across shards, sum-preserving);
// scanning readers assert the total never wavers.
func TestConsistentScanInvariant(t *testing.T) {
	const keys, balance = 64, 100
	s, addr := startServer(t, Config{Shards: 4, MaxConns: 8, Consistent: true})
	defer s.Shutdown()

	load, err := netclient.Dial(addr, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer load.Close()
	for k := int64(0); k < keys; k++ {
		if err := load.Set(k, balance); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := netclient.Dial(addr, 4)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			rng := uint64(w)*0x9E3779B9 + 5
			for i := 0; i < 300; i++ {
				rng = rng*6364136223846793005 + 1
				a := int64(rng>>33) % keys
				b := (a + 1 + int64(rng>>17)%(keys-1)) % keys
				va, _, err1 := c.Get(a)
				vb, _, err2 := c.Get(b)
				if err1 != nil || err2 != nil {
					t.Error(err1, err2)
					return
				}
				// Stale expectations just fail the MCAS; only successful
				// swaps change state, and every one preserves the sum.
				if _, err := c.MCAS([]int64{a, b}, []int64{va, vb}, []int64{va - 1, vb + 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(stop)
	}()

	c, err := netclient.Dial(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	scans := 0
	for {
		entries, err := c.Scan(0, keys)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != keys {
			t.Fatalf("consistent SCAN returned %d entries, want %d", len(entries), keys)
		}
		var sum int64
		for _, e := range entries {
			sum += e.Val
		}
		if sum != keys*balance {
			t.Fatalf("consistent SCAN observed a torn transfer: sum = %d, want %d", sum, keys*balance)
		}
		scans++
		select {
		case <-stop:
			t.Logf("verified %d consistent scans against the MCAS storm", scans)
			return
		default:
		}
	}
}

// TestGracefulShutdownDrains: a reply is only written after the write's
// combiner commit published, so every SET acknowledged before/through a
// graceful shutdown must be durable, successes must form an order-prefix
// (protocol order), and nothing may hang — even though Shutdown lands in
// the middle of a pipelined burst.
func TestGracefulShutdownDrains(t *testing.T) {
	const n = 2000
	// Long MaxLatency: at shutdown time most accepted writes are still
	// sitting uncommitted in combiner rings, so returning their replies
	// requires the drain path to keep the combiners alive until every
	// writer finished.
	s, addr := startServer(t, Config{Shards: 2, MaxConns: 2, MaxLatency: 20 * time.Millisecond})

	c, err := netclient.Dial(addr, n)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pend := make([]*netclient.Pending, 0, n)
	for i := 0; i < n; i++ {
		pend = append(pend, c.SetAsync(int64(i), int64(i)))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Make sure shutdown lands mid-burst, not before the server has read
	// anything: once the first reply is back, the read loop is deep in the
	// pipeline (replies are in order, so request 0 was read first).
	if err := pend[0].Err(); err != nil {
		t.Fatalf("first SET: %v", err)
	}

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		if err := s.Shutdown(); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	// No pending may hang: each either got its committed "+OK" or failed
	// with a transport error once the drained connection closed.
	acked := 0
	sawFailure := false
	deadline := time.After(30 * time.Second)
	for i, p := range pend {
		done := make(chan error, 1)
		go func() { done <- p.Err() }()
		select {
		case err := <-done:
			if err == nil {
				if sawFailure {
					t.Fatalf("reply %d succeeded after an earlier failure: order violated", i)
				}
				acked++
			} else {
				sawFailure = true
			}
		case <-deadline:
			t.Fatalf("pending %d neither completed nor failed: shutdown lost it", i)
		}
	}
	select {
	case <-shutdownDone:
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown did not return")
	}
	if s.Conns() != 0 {
		t.Fatalf("Conns() = %d after Shutdown", s.Conns())
	}
	t.Logf("graceful shutdown: %d/%d writes acknowledged, all committed", acked, n)

	// Dialing a shut-down server must fail (listener closed).
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestAdmissionControl: more connections than MaxConns — the extras queue
// for a combiner client slot and are served as slots free, none dropped.
func TestAdmissionControl(t *testing.T) {
	const conns = 6
	s, addr := startServer(t, Config{Shards: 1, MaxConns: 2})
	defer s.Shutdown()

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := netclient.Dial(addr, 8)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if err := c.Set(int64(i), int64(i)); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c, err := netclient.Dial(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if n, err := c.Len(); err != nil || n != conns {
		t.Fatalf("LEN = (%d, %v), want %d", n, err, conns)
	}
}

// TestShutdownWALAckedPrefix is the durability contract of graceful
// shutdown: with a WAL attached, a mid-burst Shutdown drains and fsyncs
// everything it acknowledged, and a DB reopened from the same log sees
// exactly the acked prefix — nothing acked missing, nothing unacked
// present.  (Replies are strictly in order, so the acked set IS a prefix.)
func TestShutdownWALAckedPrefix(t *testing.T) {
	const n = 2000
	mem := wal.NewMemFS()
	s, addr := startServer(t, Config{
		Shards: 2, MaxConns: 2, MaxLatency: 20 * time.Millisecond,
		WAL: mvgc.WALOptions{Dir: "wal", FS: mem},
	})

	c, err := netclient.Dial(addr, n)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pend := make([]*netclient.Pending, 0, n)
	for i := 0; i < n; i++ {
		pend = append(pend, c.SetAsync(int64(i), int64(i)*7+3))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pend[0].Err(); err != nil {
		t.Fatalf("first SET: %v", err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	acked := 0
	for _, p := range pend {
		if p.Err() == nil {
			acked++
		}
	}
	if acked == 0 || acked == n {
		t.Logf("shutdown landed at the burst boundary (acked=%d); prefix check is trivial", acked)
	}

	db, err := mvgc.OpenDB[int64, int64, int64](mvgc.DBOptions[int64]{
		Shards: 2, WAL: &mvgc.WALOptions{Dir: "wal", FS: mem},
	}, mvgc.SumAug[int64](), nil)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer db.Close()
	if got := db.Len(); got != int64(acked) {
		t.Fatalf("recovered %d keys, want exactly the %d acked", got, acked)
	}
	for i := 0; i < acked; i++ {
		v, ok := db.Get(int64(i))
		if !ok || v != int64(i)*7+3 {
			t.Fatalf("acked key %d = (%d, %v) after recovery, want (%d, true)", i, v, ok, int64(i)*7+3)
		}
	}
	t.Logf("graceful shutdown with WAL: %d/%d acked, recovered exactly", acked, n)
}

// TestServerKillMidPipeline force-closes the server under a deep pipeline
// (the network-level crash test): every outstanding Pending must complete
// — acked or errored, never hung — and operations issued afterwards fail
// fast on the poisoned connection.
func TestServerKillMidPipeline(t *testing.T) {
	const n = 5000
	s, addr := startServer(t, Config{Shards: 2, MaxConns: 2, MaxLatency: 10 * time.Millisecond})

	c, err := netclient.Dial(addr, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pend := make([]*netclient.Pending, 0, n)
	fed := make(chan struct{})
	go func() {
		defer close(fed)
		for i := 0; i < n; i++ {
			pend = append(pend, c.SetAsync(int64(i), int64(i)))
		}
		c.Flush()
	}()

	// Kill once the pipeline is demonstrably in flight.
	time.Sleep(5 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-fed:
	case <-time.After(30 * time.Second):
		t.Fatal("submission goroutine hung after server kill")
	}

	done := make(chan struct{})
	var acked, failed int
	go func() {
		defer close(done)
		for _, p := range pend {
			if p.Err() == nil {
				acked++
			} else {
				failed++
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pendings hung after server kill")
	}
	if failed == 0 {
		t.Fatal("server kill mid-pipeline produced no client-visible failure")
	}
	start := time.Now()
	c.SetAsync(0, 0).Wait()
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("post-kill op took %v, want fail-fast", d)
	}
	t.Logf("server kill: %d acked, %d failed, none hung", acked, failed)
}

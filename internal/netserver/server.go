// Package netserver is the pipelined binary-protocol serving layer over
// mvgc.DB: the front door that turns N sockets' traffic into the
// concurrency shape the underlying store amortizes best.
//
// Each accepted connection runs two goroutines joined by a bounded FIFO of
// response slots:
//
//   - The read loop decodes requests (netproto) and never blocks on a
//     response.  Writes (SET/DEL) are submitted to the key's shard
//     combiner via the async completion path (shard.Map.SubmitAsync) — the
//     request's response slot is enqueued first, then the submission
//     carries a callback that marks the slot ready when the combiner's
//     batch commit publishes.  Reads (GET) take the cached-handle point
//     path and complete immediately.  MCAS runs mvgc.DB.UpdateAtomicKeys
//     inline.
//   - The writer drains slots strictly in request order, waiting for each
//     slot's completion, so pipelined replies come back in protocol order
//     no matter which shard's combiner commits first.
//
// This is what makes the serving layer cheaper than goroutine-per-request
// over SubmitWait: N connections × D-deep pipelines keep N×D writes in
// flight on 2N goroutines, and all of a shard's in-flight writes ride ONE
// combiner commit per batching interval — O(shards) commits for N sockets'
// traffic instead of N (see DESIGN.md, "The network coalescing path";
// cmd/netbench measures commits-per-op).
//
// Backpressure is layered: a connection may have at most Config.MaxPipeline
// responses outstanding (the read loop stalls on the slot FIFO beyond
// that), each combiner ring bounds in-flight writes per connection, and
// Config.MaxConns bounds connections being served concurrently (each holds
// a combiner client slot for its lifetime).
package netserver

import (
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mvgc"
	"mvgc/internal/batch"
	"mvgc/internal/netproto"
	"mvgc/internal/repl"
)

// Config sizes a Server.  The zero value serves: GOMAXPROCS shards, 64
// connection slots, 1024-deep pipelines, 1ms combiner latency bound.
type Config struct {
	// Shards is the number of independent map shards (default GOMAXPROCS,
	// floor 1).  More shards = more combiners = more parallel commits.
	Shards int
	// MaxConns bounds connections served concurrently; each holds one
	// combiner client slot (an SPSC ring per shard) for its lifetime, so
	// this is also the combiner fan-in.  Further connections are accepted
	// but wait for a slot (admission control).  Default 64.
	MaxConns int
	// MaxPipeline bounds one connection's outstanding responses; a read
	// loop that gets further ahead stalls until the writer catches up.
	// Default 1024.
	MaxPipeline int
	// MaxLatency is the per-shard combiner's batching latency bound: how
	// long a submitted write may wait for its commit (batch.Config).
	// Default 1ms.
	MaxLatency time.Duration
	// BufCap is each combiner ring's capacity (batch.Config).  Default
	// 1024.
	BufCap int
	// Consistent routes the fan-out reads — SUM, LEN and SCAN — through
	// ViewConsistent, so they never observe an MCAS half-applied; plain
	// per-shard fan-out otherwise.  Point reads are unaffected
	// (single-shard reads are atomic either way).
	Consistent bool
	// WAL configures durability (mvgc.WALOptions): a non-empty Dir
	// enables the write-ahead log — every +OK'd write is durable per the
	// fsync policy, New recovers prior state from the directory before
	// serving, and CheckpointBytes/CheckpointAge run the background
	// checkpointer that keeps the log (and the replication bootstrap
	// prefix) bounded.  The zero value disables logging (purely
	// in-memory, the default).
	WAL mvgc.WALOptions
	// Follow starts the server as a replication follower of the leader at
	// this address: it bootstraps/tails the leader's redo stream, applies
	// it continuously, answers read-only commands (writes get -READONLY),
	// and becomes a writable leader on PROMOTE (or Server.Promote).
	// Requires WAL.Dir — the follower relogs what it applies, so it is
	// itself crash-recoverable and shippable.
	Follow string
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards < 1 {
			c.Shards = 1
		}
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.MaxPipeline <= 0 {
		c.MaxPipeline = 1024
	}
	if c.MaxLatency <= 0 {
		c.MaxLatency = time.Millisecond
	}
	if c.BufCap <= 0 {
		c.BufCap = 1024
	}
}

// Server is a pipelined netproto server over one sharded DB.
type Server struct {
	cfg Config
	db  *mvgc.DB[int64, int64, int64]

	// ids holds the free combiner client slots; a connection leases one
	// for its lifetime (the combiner rings are single-producer).
	ids chan int

	mu     sync.Mutex
	lns    []net.Listener
	conns  map[*conn]struct{}
	closed bool
	doneCh chan struct{} // closed by Shutdown/Close to abort slot waiters

	serveWG sync.WaitGroup // accept loops + connection goroutines
	nconns  atomic.Int64

	// Replication state: readOnly gates the write commands while the
	// server follows a leader; Promote clears it.  fmu serializes
	// promotion against shutdown.
	readOnly atomic.Bool
	fmu      sync.Mutex
	follower *repl.Follower
}

// New opens the sharded DB (int64 keys and values, sum-augmented so SUM is
// O(S log n)) and starts one combining writer per shard.  With
// Config.Follow it also starts the replication follower (read-only until
// promoted).  Close releases everything; the caller owns listeners
// (Serve) until then.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.Follow != "" && cfg.WAL.Dir == "" {
		return nil, errors.New("netserver: Follow requires WAL.Dir (the follower relogs the stream)")
	}
	var walOpts *mvgc.WALOptions
	if cfg.WAL.Dir != "" {
		walOpts = &cfg.WAL
	}
	db, err := mvgc.OpenDB[int64, int64, int64](mvgc.DBOptions[int64]{
		Shards: cfg.Shards,
		Grain:  1024,
		WAL:    walOpts,
	}, mvgc.SumAug[int64](), nil)
	if err != nil {
		return nil, err
	}
	db.StartBatching(batch.Config{
		Clients:    cfg.MaxConns,
		BufCap:     cfg.BufCap,
		MaxLatency: cfg.MaxLatency,
	}, nil)
	s := &Server{
		cfg:    cfg,
		db:     db,
		ids:    make(chan int, cfg.MaxConns),
		conns:  make(map[*conn]struct{}),
		doneCh: make(chan struct{}),
	}
	for i := 0; i < cfg.MaxConns; i++ {
		s.ids <- i
	}
	if cfg.Follow != "" {
		s.readOnly.Store(true)
		f, err := repl.Start(repl.Config{
			Addr: cfg.Follow,
			DB:   db,
			Dir:  cfg.WAL.Dir,
			FS:   cfg.WAL.FS,
		})
		if err != nil {
			db.Close()
			return nil, err
		}
		s.follower = f
	}
	return s, nil
}

// Promote turns a follower into a writable leader: the stream stops (its
// final position persists after a local log sync), the GSN floor set by
// replay guarantees new stamps never rewind below anything replayed or
// bootstrapped, and the write commands open up.  Idempotent; a no-op on
// a server that never followed.
func (s *Server) Promote() {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if s.follower != nil {
		s.follower.Stop()
		s.follower = nil
	}
	s.readOnly.Store(false)
}

// DB exposes the underlying store (tests and embedded servers).
func (s *Server) DB() *mvgc.DB[int64, int64, int64] { return s.db }

// Serve accepts connections on ln until the listener fails or the server
// shuts down; it returns nil after Shutdown/Close.  Multiple Serve calls
// (several listeners) are allowed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("netserver: server closed")
	}
	s.lns = append(s.lns, ln)
	s.serveWG.Add(1)
	s.mu.Unlock()
	defer s.serveWG.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.serveWG.Add(1)
		go s.handle(nc)
	}
}

// Shutdown stops the server gracefully: listeners close, every connection's
// read loop is interrupted at its next frame boundary, all responses for
// requests already read are committed, written and flushed, and only then
// are the combiners drained and the DB closed.  No accepted request's
// response is dropped.
func (s *Server) Shutdown() error { return s.stop(true) }

// Close force-closes listeners and connections; in-flight responses may be
// lost (their commits still complete — the combiners drain — but the
// sockets are gone).  Prefer Shutdown.
func (s *Server) Close() error { return s.stop(false) }

func (s *Server) stop(graceful bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.doneCh)
	for _, ln := range s.lns {
		ln.Close()
	}
	for c := range s.conns {
		if graceful {
			// Wake a read loop parked in Read; everything it already
			// enqueued still drains through its writer.
			c.nc.SetReadDeadline(time.Now())
		} else {
			c.nc.Close()
		}
	}
	s.mu.Unlock()
	s.serveWG.Wait()
	// All read loops have exited and all writers have drained: every
	// accepted write's completion callback has fired (the combiners were
	// live throughout).  A following server also stops its stream (the
	// final position persists after a local log sync).  Now the final
	// drain can't strand a response — and Close's WAL flush makes every
	// acked write durable before the log is released.
	s.fmu.Lock()
	if s.follower != nil {
		s.follower.Stop()
		s.follower = nil
	}
	s.fmu.Unlock()
	return s.db.Close()
}

// Conns reports connections currently being served.
func (s *Server) Conns() int64 { return s.nconns.Load() }

// respKind discriminates a slot's prepared response.
type respKind uint8

const (
	respOK respKind = iota
	respPong
	respErr
	respInt
	respValue // BulkInt(n)
	respNull
	respBulk  // Bulk([]byte(msg))
	respArray // BeginArray(len(arr)) + Int per element
)

// slot is one in-flight response: enqueued on the connection's FIFO at
// decode time, completed either immediately (reads, errors) or by the
// shard combiner's commit callback (writes), encoded by the writer in
// FIFO order.
type slot struct {
	kind respKind
	n    int64
	msg  string
	// arr carries an array reply's integer elements (SCAN's alternating
	// key/value stream).  The backing array survives recycling, so a warm
	// connection's scans stop allocating once a slot has grown to the
	// largest scan it has served.
	arr []int64
	// ready gates the writer; buffered so completion never blocks the
	// combiner.  done sends on it and is allocated once per slot, so a
	// recycled slot's async submission costs no closure allocation.  A
	// non-nil error from the combiner (WAL failure, map closing) rewrites
	// the prepared response into a protocol error before release: the
	// client must never see +OK for a write that was not committed (and,
	// with a WAL, not made durable).
	ready chan struct{}
	done  func(error)
}

func newSlot() *slot {
	sl := &slot{ready: make(chan struct{}, 1)}
	sl.done = func(err error) {
		if err != nil {
			sl.kind = respErr
			sl.msg = "ERR " + err.Error()
		}
		sl.ready <- struct{}{}
	}
	return sl
}

// conn is one served connection.
type conn struct {
	srv     *Server
	nc      net.Conn
	client  int // leased combiner client slot
	pending chan *slot
	free    chan *slot

	// repl, when set by a REPL command, hands the connection over to the
	// log shipper once the read loop returns and the writer drains (the
	// +OK is the last RESP bytes on the wire).
	repl *replHandoff
}

// replHandoff carries a REPL command's arguments from the read loop to
// the shipper.
type replHandoff struct {
	afterGSN uint64 // follower's resume position
	floor    uint64 // follower's snapshot coverage
}

// handle serves one connection to completion; it runs on the connection's
// read-loop goroutine.
func (s *Server) handle(nc net.Conn) {
	defer s.serveWG.Done()
	// Lease a combiner client slot; bail out if the server shuts down
	// while this connection is queued for admission.
	var id int
	select {
	case id = <-s.ids:
	case <-s.doneCh:
		nc.Close()
		return
	}
	defer func() { s.ids <- id }()

	c := &conn{
		srv:     s,
		nc:      nc,
		client:  id,
		pending: make(chan *slot, s.cfg.MaxPipeline),
		free:    make(chan *slot, s.cfg.MaxPipeline),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.nconns.Add(1)
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.nconns.Add(-1)
	}()

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		c.writeLoop()
	}()
	c.readLoop()
	close(c.pending) // no more slots; the writer drains and flushes
	writerWG.Wait()
	if c.repl != nil {
		// RESP is fully drained (+OK for REPL was the writer's last
		// flush); the connection now belongs to the log shipper until it
		// breaks or the server stops.  serveWG still covers us, so stop()
		// waits for the shipper before closing the DB and its log.
		s.runShipper(c.nc, c.repl)
	}
	nc.Close()
}

// runShipper streams the WAL to one follower connection, aborting when
// the server stops (a graceful stop's read deadline cannot interrupt a
// blocked shipper, so a watchdog tears the stream down explicitly).
func (s *Server) runShipper(nc net.Conn, h *replHandoff) {
	sh := repl.NewShipper(s.db.WAL(), nc)
	stopped := make(chan struct{})
	go func() {
		select {
		case <-s.doneCh:
			sh.Abort()
		case <-stopped:
		}
	}()
	sh.Run(h.afterGSN, h.floor) //nolint:errcheck // the follower reconnects
	close(stopped)
}

// slot leases a response slot, recycling the writer's returns.  Recycled
// slots carry the previous response's payload, so every field a handler
// might leave unset is cleared here — a handler that sets kind but not n
// (MCAS's failure path, say) must not echo a stale value.
func (c *conn) slot() *slot {
	select {
	case sl := <-c.free:
		sl.kind = 0
		sl.n = 0
		sl.msg = ""
		sl.arr = sl.arr[:0]
		return sl
	default:
		return newSlot()
	}
}

// enqueue places sl at the back of the response FIFO (applying the
// pipeline-depth backpressure) — always BEFORE the operation that will
// complete it, so wire order is request order.
func (c *conn) enqueue(sl *slot) { c.pending <- sl }

// complete finishes an operation handled inline on the read loop.
func (sl *slot) complete() { sl.ready <- struct{}{} }

// writeLoop encodes responses in FIFO order.  Before parking on an
// incomplete slot it flushes everything already encoded, so a stalled
// write never withholds earlier completed responses from the client.
// Write errors go sticky inside the buffered writer; the loop keeps
// draining so every combiner callback finds its slot (and the recycle
// list) in place.
func (c *conn) writeLoop() {
	w := netproto.NewWriter(c.nc)
	for sl := range c.pending {
		select {
		case <-sl.ready:
		default:
			w.Flush()
			<-sl.ready
		}
		switch sl.kind {
		case respOK:
			w.Simple("OK")
		case respPong:
			w.Simple("PONG")
		case respErr:
			w.Error(sl.msg)
		case respInt:
			w.Int(sl.n)
		case respValue:
			w.BulkInt(sl.n)
		case respNull:
			w.Null()
		case respBulk:
			w.Bulk([]byte(sl.msg))
		case respArray:
			w.BeginArray(len(sl.arr))
			for _, v := range sl.arr {
				w.Int(v)
			}
		}
		sl.msg = ""
		select {
		case c.free <- sl:
		default: // recycle list full; let it be collected
		}
		if len(c.pending) == 0 {
			w.Flush()
		}
	}
	w.Flush()
}

// fail enqueues an error response; the connection survives (framing is
// intact — parse errors of VALUES are command errors, not protocol
// errors).
func (c *conn) fail(msg string) {
	sl := c.slot()
	sl.kind = respErr
	sl.msg = msg
	sl.complete()
	c.enqueue(sl)
}

// eqFold reports ASCII case-insensitive equality with an upper-case name.
func eqFold(b []byte, upper string) bool {
	if len(b) != len(upper) {
		return false
	}
	for i := 0; i < len(b); i++ {
		ch := b[i]
		if 'a' <= ch && ch <= 'z' {
			ch -= 'a' - 'A'
		}
		if ch != upper[i] {
			return false
		}
	}
	return true
}

// argInt parses one int64 argument.
func argInt(b []byte) (int64, bool) {
	v, err := netproto.ParseInt(b)
	return v, err == nil
}

// readLoop decodes and dispatches until EOF, a protocol error, or
// shutdown.  It never waits for a response: the only things that block it
// are its own backpressure bounds (pipeline FIFO, combiner ring).
func (c *conn) readLoop() {
	r := netproto.NewReader(c.nc)
	var cmd netproto.Command
	for {
		if err := r.ReadCommand(&cmd); err != nil {
			// EOF (client finished), deadline (shutdown), or a framing
			// error: in every case the connection stops reading and the
			// writer drains what was accepted.
			return
		}
		name := cmd.Args[0]
		switch {
		case eqFold(name, netproto.CmdSet):
			c.execWrite(&cmd, batch.OpInsert)
		case eqFold(name, netproto.CmdDel):
			c.execWrite(&cmd, batch.OpDelete)
		case eqFold(name, netproto.CmdGet):
			c.execGet(&cmd)
		case eqFold(name, netproto.CmdSum):
			c.execSum(&cmd)
		case eqFold(name, netproto.CmdLen):
			c.execLen()
		case eqFold(name, netproto.CmdScan):
			c.execScan(&cmd)
		case eqFold(name, netproto.CmdScanCursor):
			c.execScanCursor(&cmd)
		case eqFold(name, netproto.CmdMCAS):
			c.execMCAS(&cmd)
		case eqFold(name, netproto.CmdPing):
			sl := c.slot()
			sl.kind = respPong
			sl.complete()
			c.enqueue(sl)
		case eqFold(name, netproto.CmdStats):
			c.execStats()
		case eqFold(name, netproto.CmdRepl):
			if c.execRepl(&cmd) {
				return // connection handed over to the shipper
			}
		case eqFold(name, netproto.CmdPromote):
			c.srv.Promote()
			sl := c.slot()
			sl.kind = respOK
			sl.complete()
			c.enqueue(sl)
		default:
			c.fail(fmt.Sprintf("ERR unknown command %q", name))
		}
	}
}

// execWrite is the coalescing path: enqueue the response slot, then hand
// the write to the key's shard combiner with the slot's completion
// callback.  The reply reaches the wire only after the combiner commit
// containing this write has published — a replied SET is committed — yet
// the read loop moves on immediately, so every write this and other
// connections pipeline meanwhile rides the same O(shards) commits.
func (c *conn) execWrite(cmd *netproto.Command, op batch.Op) {
	if c.srv.readOnly.Load() {
		c.fail("READONLY following a leader; PROMOTE to enable writes")
		return
	}
	wantArgs := 3
	if op == batch.OpDelete {
		wantArgs = 2
	}
	if len(cmd.Args) != wantArgs {
		c.fail("ERR wrong number of arguments")
		return
	}
	k, ok1 := argInt(cmd.Args[1])
	var v int64
	ok2 := true
	if op == batch.OpInsert {
		v, ok2 = argInt(cmd.Args[2])
	}
	if !ok1 || !ok2 {
		c.fail("ERR bad integer")
		return
	}
	sl := c.slot()
	sl.kind = respOK
	c.enqueue(sl)
	c.srv.db.SubmitAsync(c.client, batch.Request[int64, int64]{Op: op, Key: k, Val: v}, sl.done)
}

// execGet serves the cached-handle point read: decode, read, complete —
// all inline, 0 B/op on the store side.
func (c *conn) execGet(cmd *netproto.Command) {
	if len(cmd.Args) != 2 {
		c.fail("ERR wrong number of arguments")
		return
	}
	k, ok := argInt(cmd.Args[1])
	if !ok {
		c.fail("ERR bad integer")
		return
	}
	sl := c.slot()
	if v, found := c.srv.db.Get(k); found {
		sl.kind = respValue
		sl.n = v
	} else {
		sl.kind = respNull
	}
	sl.complete()
	c.enqueue(sl)
}

// view is the fan-out read mode SUM and LEN use: globally consistent when
// the server was configured for it, per-shard otherwise.
func (c *conn) view(f func(sn mvgc.DBSnapshot[int64, int64, int64])) {
	if c.srv.cfg.Consistent {
		c.srv.db.ViewConsistent(f)
		return
	}
	c.srv.db.View(f)
}

func (c *conn) execSum(cmd *netproto.Command) {
	if len(cmd.Args) != 3 {
		c.fail("ERR wrong number of arguments")
		return
	}
	lo, ok1 := argInt(cmd.Args[1])
	hi, ok2 := argInt(cmd.Args[2])
	if !ok1 || !ok2 {
		c.fail("ERR bad integer")
		return
	}
	sl := c.slot()
	sl.kind = respInt
	c.view(func(sn mvgc.DBSnapshot[int64, int64, int64]) { sl.n = sn.AugRange(lo, hi) })
	sl.complete()
	c.enqueue(sl)
}

// maxScanEntries bounds one SCAN's result so the reply's element count
// (two per entry) stays within the protocol's array bound.
const maxScanEntries = netproto.MaxArgs / 2

// execScan streams up to n entries with keys ≥ lo — the loser-tree merge
// over all shards — into the slot's reusable element buffer and replies
// with an array of alternating keys and values in ascending key order.
// Under Config.Consistent the scan observes one global GSN cut, so a
// concurrent MCAS (or any atomic transaction) is never seen half-applied
// mid-scan; per-shard snapshots otherwise.  Like GET it runs inline on
// the read loop against a pinned snapshot, so it never blocks writers.
func (c *conn) execScan(cmd *netproto.Command) {
	if len(cmd.Args) != 3 {
		c.fail("ERR wrong number of arguments")
		return
	}
	lo, ok1 := argInt(cmd.Args[1])
	n, ok2 := argInt(cmd.Args[2])
	if !ok1 || !ok2 {
		c.fail("ERR bad integer")
		return
	}
	if n < 0 || n > maxScanEntries {
		c.fail(fmt.Sprintf("ERR scan count must be in [0, %d]", maxScanEntries))
		return
	}
	sl := c.slot()
	sl.kind = respArray
	c.view(func(sn mvgc.DBSnapshot[int64, int64, int64]) {
		sn.ScanFunc(lo, int(n), func(k, v int64) bool {
			sl.arr = append(sl.arr, k, v)
			return true
		})
	})
	sl.complete()
	c.enqueue(sl)
}

// maxCursorEntries bounds one SCANC chunk: the reply carries two extra
// integers (more + next) ahead of the pairs.
const maxCursorEntries = (netproto.MaxArgs - 2) / 2

// execScanCursor is the cursor-style chunked scan — the wire form of
// DB.ForEachChunked, with the chunking driven by the client: each SCANC
// pins a fresh snapshot, streams at most n entries from the cursor, and
// releases every pin before replying, so an analytics client walking the
// whole keyspace never stretches any shard's uncollected-version window
// beyond one chunk.  Commits landing between chunks are observed, keys
// stream in strictly increasing order, each at most once — exactly
// ForEachChunked's bounded-staleness contract.
//
// Reply: *<2m+2> of integers [more, next, k1, v1, ...] — more is 1 when
// entries remain past this chunk, next is the last key returned (pass it
// back with excl=1 to continue).
func (c *conn) execScanCursor(cmd *netproto.Command) {
	if len(cmd.Args) != 4 {
		c.fail("ERR usage: SCANC <lo> <n> <excl>")
		return
	}
	lo, ok1 := argInt(cmd.Args[1])
	n, ok2 := argInt(cmd.Args[2])
	excl, ok3 := argInt(cmd.Args[3])
	if !ok1 || !ok2 || !ok3 {
		c.fail("ERR bad integer")
		return
	}
	if n < 1 || n > maxCursorEntries {
		c.fail(fmt.Sprintf("ERR scan count must be in [1, %d]", maxCursorEntries))
		return
	}
	sl := c.slot()
	sl.kind = respArray
	sl.arr = append(sl.arr, 0, lo) // [more, next] backfilled below
	start := lo
	if excl != 0 {
		if lo == math.MaxInt64 { // nothing can follow the cursor
			sl.complete()
			c.enqueue(sl)
			return
		}
		start = lo + 1
	}
	c.view(func(sn mvgc.DBSnapshot[int64, int64, int64]) {
		sn.ScanFunc(start, int(n)+1, func(k, v int64) bool {
			if int64(len(sl.arr))-2 >= 2*n {
				sl.arr[0] = 1 // the probe entry: more remain
				return false
			}
			sl.arr = append(sl.arr, k, v)
			sl.arr[1] = k
			return true
		})
	})
	sl.complete()
	c.enqueue(sl)
}

// execRepl validates a REPL handshake and schedules the connection
// handover; it reports whether the read loop should return.  The +OK
// travels through the normal slot path, so any pipelined commands ahead
// of REPL are answered first and the handover happens at a clean frame
// boundary.
func (c *conn) execRepl(cmd *netproto.Command) bool {
	if len(cmd.Args) != 3 {
		c.fail("ERR usage: REPL <afterGSN> <floor>")
		return false
	}
	after, err1 := strconv.ParseUint(string(cmd.Args[1]), 10, 64)
	floor, err2 := strconv.ParseUint(string(cmd.Args[2]), 10, 64)
	if err1 != nil || err2 != nil {
		c.fail("ERR bad position")
		return false
	}
	if c.srv.db.WAL() == nil {
		c.fail("ERR replication requires a WAL (-wal)")
		return false
	}
	c.repl = &replHandoff{afterGSN: after, floor: floor}
	sl := c.slot()
	sl.kind = respOK
	sl.complete()
	c.enqueue(sl)
	return true
}

func (c *conn) execLen() {
	sl := c.slot()
	sl.kind = respInt
	c.view(func(sn mvgc.DBSnapshot[int64, int64, int64]) { sl.n = sn.Len() })
	sl.complete()
	c.enqueue(sl)
}

// execMCAS maps MCAS onto DB.UpdateAtomicKeys: the declared footprint is
// the swapped keys, expectations are validated reads, and the commit is a
// serializable multi-key compare-and-swap against every other writer —
// including the combiners all pipelined SETs flow through.  It runs inline
// on the read loop (it must observe its own connection's earlier SETs no
// differently than any other writer's), so an MCAS is a pipeline barrier
// for its connection; replies stay in order regardless.
func (c *conn) execMCAS(cmd *netproto.Command) {
	if c.srv.readOnly.Load() {
		c.fail("READONLY following a leader; PROMOTE to enable writes")
		return
	}
	if len(cmd.Args) < 4 || (len(cmd.Args)-1)%3 != 0 {
		c.fail("ERR usage: MCAS <key> <expect> <new> [...]")
		return
	}
	n := (len(cmd.Args) - 1) / 3
	keys := make([]int64, n)
	expects := make([]int64, n)
	news := make([]int64, n)
	for i := 0; i < n; i++ {
		var ok [3]bool
		keys[i], ok[0] = argInt(cmd.Args[1+3*i])
		expects[i], ok[1] = argInt(cmd.Args[2+3*i])
		news[i], ok[2] = argInt(cmd.Args[3+3*i])
		if !ok[0] || !ok[1] || !ok[2] {
			c.fail("ERR bad integer")
			return
		}
	}
	swapped := false
	c.srv.db.UpdateAtomicKeys(keys, func(t *mvgc.DBTxn[int64, int64, int64]) {
		swapped = false // f may re-run after an OCC abort
		for i, k := range keys {
			if v, ok := t.Get(k); !ok || v != expects[i] {
				return // no intents buffered: nothing commits
			}
		}
		swapped = true
		for i, k := range keys {
			t.Insert(k, news[i])
		}
	})
	sl := c.slot()
	sl.kind = respInt
	if swapped {
		sl.n = 1
	}
	sl.complete()
	c.enqueue(sl)
}

// execStats renders the serving-layer counters netbench uses to prove
// coalescing: batches/applied are the shard combiners' commit and request
// totals (applied/batches = writes per combiner commit), commits is the
// store's total committed write transactions.  gsn is the store's commit
// sequence high-water mark and repl_pos/repl_floor the follower's stream
// position — leader gsn minus follower repl_pos is the replication lag
// cmd/netbench and cmd/replloop sample; wal_live is the log's live bytes
// (what the background checkpointer bounds).
func (c *conn) execStats() {
	s := c.srv
	sl := c.slot()
	sl.kind = respBulk
	readonly := int64(0)
	if s.readOnly.Load() {
		readonly = 1
	}
	var pos, floor uint64
	s.fmu.Lock()
	if s.follower != nil {
		pos, floor = s.follower.Pos()
	}
	s.fmu.Unlock()
	sl.msg = "batches=" + strconv.FormatInt(s.db.Batches(), 10) +
		" applied=" + strconv.FormatInt(s.db.Applied(), 10) +
		" commits=" + strconv.FormatInt(s.db.Commits(), 10) +
		" conns=" + strconv.FormatInt(s.Conns(), 10) +
		" shards=" + strconv.FormatInt(int64(s.db.NumShards()), 10) +
		" gsn=" + strconv.FormatUint(s.db.CommitGSN(), 10) +
		" readonly=" + strconv.FormatInt(readonly, 10) +
		" repl_pos=" + strconv.FormatUint(pos, 10) +
		" repl_floor=" + strconv.FormatUint(floor, 10) +
		" wal_live=" + strconv.FormatInt(s.db.WALStats().LiveBytes, 10)
	sl.complete()
	c.enqueue(sl)
}

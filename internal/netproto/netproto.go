// Package netproto is the RESP-style wire protocol spoken between the
// mvgcd server (cmd/mvgcd, internal/netserver) and the pipelining client
// (internal/netclient).  The framing is deliberately the Redis
// serialization protocol's core subset, because it is trivial to parse
// incrementally, self-delimiting (a reader never needs to peek past a
// request to know where it ends), and pipelining-friendly: a client may
// write any number of commands before reading the first reply, and replies
// come back strictly in request order.
//
// Requests are arrays of bulk strings:
//
//	*<nargs>\r\n  then per arg:  $<len>\r\n<bytes>\r\n
//
// Replies are one of:
//
//	+<text>\r\n        simple string (e.g. +OK)
//	-<text>\r\n        error
//	:<int>\r\n         integer
//	$<len>\r\n<bytes>\r\n  bulk string
//	$-1\r\n            null (e.g. GET on a missing key)
//	*<n>\r\n:<int>...  array of n integers (SCAN's key/value pairs)
//
// Reader and Writer reuse their buffers across calls — a warm
// request/reply cycle performs no heap allocation in this package — which
// is what lets the server's per-connection read loop keep pace with deep
// pipelines.  Command and Reply values returned by a Reader alias its
// internal buffer and are valid only until the next Read call on the same
// Reader.
package netproto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Command names understood by the mvgcd server.  Keys and values travel as
// decimal int64 bulk strings.
const (
	CmdPing  = "PING"  // PING                      → +PONG
	CmdSet   = "SET"   // SET <key> <val>           → +OK   (committed when replied)
	CmdDel   = "DEL"   // DEL <key>                 → +OK   (committed when replied)
	CmdGet   = "GET"   // GET <key>                 → $<val> | $-1
	CmdSum   = "SUM"   // SUM <lo> <hi>             → :<sum of values in [lo,hi]>
	CmdLen   = "LEN"   // LEN                       → :<keys>
	CmdScan  = "SCAN"  // SCAN <lo> <n>             → *<2m> of :k :v pairs, ascending keys
	CmdMCAS  = "MCAS"  // MCAS (<k> <expect> <new>)+ → :1 swapped | :0 conflict
	CmdStats = "STATS" // STATS                     → $key=value ... (see netserver)

	// CmdScanCursor is the cursor-style chunked scan: the client drives the
	// walk, so no server-side state (and no long-pinned shard snapshot)
	// outlives a single request.
	CmdScanCursor = "SCANC" // SCANC <lo> <n> <excl>  → *<2m+2>: :more :next then k/v pairs
	// CmdRepl hands the connection over to the replication shipper: after
	// the +OK the server stops speaking RESP on this connection and streams
	// raw repl frames (see internal/repl) forever.  Args are the follower's
	// resume position and snapshot floor.
	CmdRepl = "REPL" // REPL <afterGSN> <floor>      → +OK then raw repl frames
	// CmdPromote flips a follower into a writable leader.
	CmdPromote = "PROMOTE" // PROMOTE               → +OK
)

// Reply kinds, the reply's leading byte on the wire.
const (
	KindSimple = '+'
	KindError  = '-'
	KindInt    = ':'
	KindBulk   = '$'
	// KindArray is an array reply (*<n>).  This protocol's arrays carry
	// integer elements only — SCAN's alternating key/value stream — which
	// keeps the decoder reuse-friendly: elements land in Reply.Array with
	// no per-element allocation.
	KindArray = '*'
)

// Wire limits.  A frame that exceeds them is a protocol error: the peer is
// broken or hostile, and the connection should be dropped rather than
// buffered without bound.
const (
	// MaxArgs bounds a command's argument count (an MCAS touches 3 args
	// per key, so this allows >1000-key swaps).
	MaxArgs = 4096
	// MaxBulk bounds one bulk string's length.
	MaxBulk = 1 << 20
)

// ErrProtocol reports a malformed frame; errors wrapping it are fatal to
// the connection (framing is lost).
var ErrProtocol = errors.New("netproto: protocol error")

func protoErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrProtocol, fmt.Sprintf(format, args...))
}

// Command is one decoded request.  Args alias the Reader's buffer and are
// valid only until the next ReadCommand on that Reader.
type Command struct {
	Args [][]byte

	buf  []byte // backing storage for all args
	offs []int  // arg boundaries within buf: arg i is buf[offs[i]:offs[i+1]]
}

// Reply is one decoded response.  Line, Bulk and Array alias the Reply's
// reused storage and are valid only until the next ReadReply decoding
// into the same Reply.
type Reply struct {
	Kind  byte
	Int   int64   // KindInt
	Line  []byte  // KindSimple / KindError text
	Bulk  []byte  // KindBulk payload; nil means the null bulk ($-1)
	Array []int64 // KindArray integer elements (SCAN's k,v,k,v,... stream)
}

// Err returns the reply's error when it is a KindError reply, nil
// otherwise.  The returned error does not alias the Reader's buffer.
func (r *Reply) Err() error {
	if r.Kind == KindError {
		return errors.New(string(r.Line))
	}
	return nil
}

// Reader decodes frames from a peer.  Not safe for concurrent use.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r; the buffer absorbs pipelined bursts so deep pipelines
// cost one syscall per burst, not per command.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// readLine returns the next CRLF-terminated line without its terminator.
// Lines carry only type markers and decimal lengths, so a line that
// overflows the buffer is a protocol error, not a resize trigger.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, protoErrf("header line too long")
		}
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, protoErrf("line not CRLF-terminated")
	}
	return line[:len(line)-2], nil
}

// parseInt is a no-allocation decimal int64 parser for wire numbers.
func parseInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, protoErrf("empty integer")
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i = 1
		if len(b) == 1 {
			return 0, protoErrf("bare minus")
		}
	}
	var n int64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, protoErrf("bad digit %q", b[i])
		}
		nn := n*10 + int64(d)
		if nn < n {
			return 0, protoErrf("integer overflow")
		}
		n = nn
	}
	if neg {
		n = -n
	}
	return n, nil
}

// ParseInt decodes a decimal int64 argument (how keys and values travel).
func ParseInt(b []byte) (int64, error) { return parseInt(b) }

// ReadCommand decodes the next request into cmd, reusing its buffers.
// io.EOF is returned clean only between commands (the peer closed after a
// complete frame); mid-frame EOF surfaces as io.ErrUnexpectedEOF.
func (r *Reader) ReadCommand(cmd *Command) error {
	line, err := r.readLine()
	if err != nil {
		return err
	}
	if len(line) == 0 || line[0] != '*' {
		return protoErrf("expected array header, got %q", line)
	}
	n, err := parseInt(line[1:])
	if err != nil {
		return err
	}
	if n <= 0 || n > MaxArgs {
		return protoErrf("bad arg count %d", n)
	}
	cmd.buf = cmd.buf[:0]
	cmd.offs = append(cmd.offs[:0], 0)
	for i := int64(0); i < n; i++ {
		line, err := r.readLine()
		if err != nil {
			return noEOF(err)
		}
		if len(line) == 0 || line[0] != '$' {
			return protoErrf("expected bulk header, got %q", line)
		}
		l, err := parseInt(line[1:])
		if err != nil {
			return err
		}
		if l < 0 || l > MaxBulk {
			return protoErrf("bad bulk length %d", l)
		}
		start := len(cmd.buf)
		cmd.buf = append(cmd.buf, make([]byte, l+2)...)
		if _, err := io.ReadFull(r.br, cmd.buf[start:start+int(l)+2]); err != nil {
			return noEOF(err)
		}
		if cmd.buf[start+int(l)] != '\r' || cmd.buf[start+int(l)+1] != '\n' {
			return protoErrf("bulk not CRLF-terminated")
		}
		cmd.buf = cmd.buf[:start+int(l)] // drop the terminator from storage
		cmd.offs = append(cmd.offs, len(cmd.buf))
	}
	// Slicing happens after all appends: buf's backing array is final now.
	cmd.Args = cmd.Args[:0]
	for i := 0; i+1 < len(cmd.offs); i++ {
		cmd.Args = append(cmd.Args, cmd.buf[cmd.offs[i]:cmd.offs[i+1]])
	}
	return nil
}

// noEOF converts a mid-frame EOF into ErrUnexpectedEOF so callers can tell
// a clean close from a truncated frame.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadReply decodes the next response into rep, reusing its storage.
func (r *Reader) ReadReply(rep *Reply) error {
	line, err := r.readLine()
	if err != nil {
		return err
	}
	if len(line) == 0 {
		return protoErrf("empty reply line")
	}
	rep.Kind = line[0]
	rep.Int = 0
	rep.Line = nil
	rep.Bulk = nil
	rep.Array = rep.Array[:0]
	switch rep.Kind {
	case KindSimple, KindError:
		rep.Line = line[1:]
		return nil
	case KindInt:
		rep.Int, err = parseInt(line[1:])
		return err
	case KindBulk:
		l, err := parseInt(line[1:])
		if err != nil {
			return err
		}
		if l == -1 {
			return nil // null bulk: Bulk stays nil
		}
		if l < 0 || l > MaxBulk {
			return protoErrf("bad bulk length %d", l)
		}
		buf := make([]byte, l+2)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return noEOF(err)
		}
		if buf[l] != '\r' || buf[l+1] != '\n' {
			return protoErrf("bulk not CRLF-terminated")
		}
		rep.Bulk = buf[:l]
		return nil
	case KindArray:
		n, err := parseInt(line[1:])
		if err != nil {
			return err
		}
		// MaxArgs bounds the element count like a request's: a SCAN reply
		// carries two elements per entry, so this allows 2048-entry scans.
		if n < 0 || n > MaxArgs {
			return protoErrf("bad array length %d", n)
		}
		for i := int64(0); i < n; i++ {
			el, err := r.readLine()
			if err != nil {
				return noEOF(err)
			}
			if len(el) == 0 || el[0] != KindInt {
				return protoErrf("array element must be an integer, got %q", el)
			}
			v, err := parseInt(el[1:])
			if err != nil {
				return err
			}
			rep.Array = append(rep.Array, v)
		}
		return nil
	default:
		return protoErrf("unknown reply kind %q", rep.Kind)
	}
}

// Writer encodes frames.  Not safe for concurrent use; callers own
// flushing (see Flush) so pipelined bursts batch into few syscalls.
type Writer struct {
	bw  *bufio.Writer
	num [24]byte // scratch for decimal lengths and integers
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 64<<10)}
}

func (w *Writer) line(kind byte, body []byte) {
	w.bw.WriteByte(kind)
	w.bw.Write(body)
	w.bw.WriteString("\r\n")
}

func (w *Writer) lineInt(kind byte, v int64) {
	w.line(kind, strconv.AppendInt(w.num[:0], v, 10))
}

// BeginCommand starts a request frame of nargs arguments; exactly nargs
// Arg* calls must follow.
func (w *Writer) BeginCommand(nargs int) { w.lineInt('*', int64(nargs)) }

// ArgBytes appends one bulk-string argument.
func (w *Writer) ArgBytes(b []byte) {
	w.lineInt('$', int64(len(b)))
	w.bw.Write(b)
	w.bw.WriteString("\r\n")
}

// ArgString appends one bulk-string argument.
func (w *Writer) ArgString(s string) {
	w.lineInt('$', int64(len(s)))
	w.bw.WriteString(s)
	w.bw.WriteString("\r\n")
}

// ArgInt appends one decimal int64 argument (how keys and values travel).
func (w *Writer) ArgInt(v int64) {
	b := strconv.AppendInt(w.num[:0], v, 10)
	w.lineInt('$', int64(len(b)))
	// num was only scratch for the length line above; re-render the value.
	w.bw.Write(strconv.AppendInt(w.num[:0], v, 10))
	w.bw.WriteString("\r\n")
}

// Simple writes a +text reply.
func (w *Writer) Simple(s string) {
	w.bw.WriteByte(KindSimple)
	w.bw.WriteString(s)
	w.bw.WriteString("\r\n")
}

// Error writes a -text reply.  The connection survives: protocol framing
// is intact, only the command failed.
func (w *Writer) Error(msg string) {
	w.bw.WriteByte(KindError)
	w.bw.WriteString(msg)
	w.bw.WriteString("\r\n")
}

// Int writes a :n reply.
func (w *Writer) Int(v int64) { w.lineInt(KindInt, v) }

// Bulk writes a $len reply carrying b.
func (w *Writer) Bulk(b []byte) {
	w.lineInt(KindBulk, int64(len(b)))
	w.bw.Write(b)
	w.bw.WriteString("\r\n")
}

// BulkInt writes an int64 as a bulk-string reply (GET's value encoding).
func (w *Writer) BulkInt(v int64) {
	b := strconv.AppendInt(w.num[4:4], v, 10)
	w.Bulk(b)
}

// Null writes the null bulk reply ($-1), GET's missing-key encoding.
func (w *Writer) Null() { w.bw.WriteString("$-1\r\n") }

// BeginArray starts a *<n> array reply; exactly n integer elements (Int
// calls) must follow.  SCAN replies are arrays of 2m integers: the m
// scanned entries' keys and values, alternating, in ascending key order.
func (w *Writer) BeginArray(n int) { w.lineInt(KindArray, int64(n)) }

// Flush writes buffered frames to the connection and reports the sticky
// write error, if any.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Buffered reports bytes encoded but not yet flushed.
func (w *Writer) Buffered() int { return w.bw.Buffered() }

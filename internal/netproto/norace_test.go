//go:build !race

package netproto

const raceEnabled = false

package netproto

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestCommandRoundTrip: commands written by the client-side encoder decode
// identically through the server-side reader, across several frames on one
// connection (buffer reuse must not bleed between frames).
func TestCommandRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginCommand(3)
	w.ArgString(CmdSet)
	w.ArgInt(42)
	w.ArgInt(-7)
	w.BeginCommand(1)
	w.ArgString(CmdLen)
	w.BeginCommand(2)
	w.ArgBytes([]byte(CmdGet))
	w.ArgInt(9223372036854775807)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	var cmd Command
	want := [][]string{
		{"SET", "42", "-7"},
		{"LEN"},
		{"GET", "9223372036854775807"},
	}
	for _, frame := range want {
		if err := r.ReadCommand(&cmd); err != nil {
			t.Fatal(err)
		}
		if len(cmd.Args) != len(frame) {
			t.Fatalf("got %d args, want %d", len(cmd.Args), len(frame))
		}
		for i, a := range frame {
			if string(cmd.Args[i]) != a {
				t.Fatalf("arg %d = %q, want %q", i, cmd.Args[i], a)
			}
		}
	}
	if err := r.ReadCommand(&cmd); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestReplyRoundTrip covers every reply kind, including the null bulk.
func TestReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Simple("OK")
	w.Error("ERR nope")
	w.Int(-123)
	w.Bulk([]byte("hello"))
	w.BulkInt(-9007)
	w.Null()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	var rep Reply
	check := func(f func()) {
		t.Helper()
		if err := r.ReadReply(&rep); err != nil {
			t.Fatal(err)
		}
		f()
	}
	check(func() {
		if rep.Kind != KindSimple || string(rep.Line) != "OK" {
			t.Fatalf("simple = %q", rep.Line)
		}
	})
	check(func() {
		if rep.Kind != KindError || rep.Err() == nil || rep.Err().Error() != "ERR nope" {
			t.Fatalf("error = %v", rep.Err())
		}
	})
	check(func() {
		if rep.Kind != KindInt || rep.Int != -123 {
			t.Fatalf("int = %d", rep.Int)
		}
	})
	check(func() {
		if rep.Kind != KindBulk || string(rep.Bulk) != "hello" {
			t.Fatalf("bulk = %q", rep.Bulk)
		}
	})
	check(func() {
		if v, err := ParseInt(rep.Bulk); err != nil || v != -9007 {
			t.Fatalf("bulk int = %q (%v)", rep.Bulk, err)
		}
	})
	check(func() {
		if rep.Kind != KindBulk || rep.Bulk != nil {
			t.Fatalf("null bulk decoded as %q", rep.Bulk)
		}
	})
}

// TestArrayReplyRoundTrip: the SCAN reply shape — an integer-only array —
// encodes and decodes through the same Reply, including the empty array
// and buffer reuse across frames.
func TestArrayReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.BeginArray(4)
	w.Int(10)
	w.Int(-100)
	w.Int(20)
	w.Int(200)
	w.BeginArray(0)
	w.BeginArray(1)
	w.Int(7)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	var rep Reply
	if err := r.ReadReply(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindArray || len(rep.Array) != 4 {
		t.Fatalf("array reply = kind %q, %d elems", rep.Kind, len(rep.Array))
	}
	for i, want := range []int64{10, -100, 20, 200} {
		if rep.Array[i] != want {
			t.Fatalf("array[%d] = %d, want %d", i, rep.Array[i], want)
		}
	}
	if err := r.ReadReply(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Kind != KindArray || len(rep.Array) != 0 {
		t.Fatalf("empty array reply = kind %q, %d elems", rep.Kind, len(rep.Array))
	}
	// The reused Reply must not accrete the previous frames' elements.
	if err := r.ReadReply(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Array) != 1 || rep.Array[0] != 7 {
		t.Fatalf("reused Reply array = %v, want [7]", rep.Array)
	}
}

// TestMalformedArrayReplies: array framing violations on the reply stream
// are hard errors, same as command-side violations.
func TestMalformedArrayReplies(t *testing.T) {
	cases := []string{
		"*2\r\n:1\r\n",         // truncated mid-array
		"*1\r\n$1\r\n5\r\n",    // bulk element in an integer-only array
		"*-1\r\n",              // negative element count
		"*1\r\n:abc\r\n",       // non-numeric element
		"*100000000000000\r\n", // element count overflow
	}
	for _, in := range cases {
		r := NewReader(strings.NewReader(in))
		var rep Reply
		if err := r.ReadReply(&rep); err == nil || err == io.EOF {
			t.Fatalf("input %.40q: err = %v, want protocol error", in, err)
		}
	}
}

// TestMalformedFrames: every framing violation must be a hard error (the
// connection's framing is lost) rather than a silent mis-parse.
func TestMalformedFrames(t *testing.T) {
	cases := []string{
		"*2\r\n$3\r\nGET\r\n",         // truncated mid-frame
		"$3\r\nGET\r\n",               // bulk where an array must start
		"*1\r\n:5\r\n",                // int where a bulk must start
		"*0\r\n",                      // empty command
		"*-1\r\n",                     // negative arg count
		"*1\r\n$-1\r\n",               // null bulk inside a command
		"*1\r\n$3\r\nGETX\r\n",        // bulk body longer than declared
		"*1\r\n$3\r\nGE\r\n\r\n",      // bulk body shorter than declared
		"*1\r\n$abc\r\n",              // non-numeric length
		"*1\n$3\nGET\n",               // LF-only line endings
		"*1000000000000000000000\r\n", // arg count overflow
		strings.Repeat("x", 100_000),  // unterminated garbage line
	}
	for _, in := range cases {
		r := NewReader(strings.NewReader(in))
		var cmd Command
		err := r.ReadCommand(&cmd)
		if err == nil {
			t.Fatalf("input %.40q: decoded without error", in)
		}
		if err == io.EOF {
			t.Fatalf("input %.40q: clean EOF for a broken frame", in)
		}
	}
	// Oversized frames are rejected before buffering them.
	r := NewReader(strings.NewReader("*4097\r\n"))
	var cmd Command
	if err := r.ReadCommand(&cmd); !errors.Is(err, ErrProtocol) {
		t.Fatalf("MaxArgs violation: err = %v", err)
	}
	r = NewReader(strings.NewReader("*1\r\n$1048577\r\n"))
	if err := r.ReadCommand(&cmd); !errors.Is(err, ErrProtocol) {
		t.Fatalf("MaxBulk violation: err = %v", err)
	}
}

// TestCommandReuseNoAlloc: a warm ReadCommand decodes without touching the
// heap, the property that lets the server's read loop keep pace with deep
// pipelines.
func TestCommandReuseNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are meaningless")
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const frames = 100
	for i := 0; i < frames; i++ {
		w.BeginCommand(3)
		w.ArgString(CmdSet)
		w.ArgInt(int64(i))
		w.ArgInt(int64(i * 2))
	}
	w.Flush()
	wire := buf.Bytes()

	r := NewReader(bytes.NewReader(wire))
	var cmd Command
	// Warm the buffers.
	for i := 0; i < frames; i++ {
		if err := r.ReadCommand(&cmd); err != nil {
			t.Fatal(err)
		}
	}
	reader := bytes.NewReader(wire)
	r = NewReader(reader)
	_ = r.ReadCommand(&cmd) // size cmd's buffers for this reader's frames
	reader.Seek(0, io.SeekStart)
	allocs := testing.AllocsPerRun(50, func() {
		reader.Seek(0, io.SeekStart)
		r.br.Reset(reader)
		for i := 0; i < frames; i++ {
			if err := r.ReadCommand(&cmd); err != nil {
				t.Fatal(err)
			}
		}
	})
	// One alloc of slack is tolerated (Args header growth on odd sizes);
	// what must not happen is per-frame or per-arg allocation.
	if allocs > 1 {
		t.Fatalf("warm decode allocates %.1f times per %d frames", allocs, frames)
	}
}

package snzi

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSequential(t *testing.T) {
	s := New(2)
	if s.NonZero() {
		t.Fatal("fresh indicator non-zero")
	}
	s.Arrive(0)
	if !s.NonZero() {
		t.Fatal("zero after arrival")
	}
	s.Arrive(0)
	s.Arrive(1)
	if s.Depart(0) {
		t.Fatal("became zero with surplus remaining")
	}
	if s.Depart(1) {
		t.Fatal("became zero with surplus remaining")
	}
	if !s.Depart(0) {
		t.Fatal("last departure did not report zero")
	}
	if s.NonZero() {
		t.Fatal("non-zero after all departed")
	}
}

// TestExactlyOneZeroReport: across concurrent departures, exactly one
// reports the transition to zero (the collector must fire once).
func TestExactlyOneZeroReport(t *testing.T) {
	const procs = 8
	for round := 0; round < 500; round++ {
		s := New(procs)
		for p := 0; p < procs; p++ {
			s.Arrive(p)
		}
		var zeros atomic.Int32
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				if s.Depart(p) {
					zeros.Add(1)
				}
			}(p)
		}
		wg.Wait()
		if z := zeros.Load(); z != 1 {
			t.Fatalf("round %d: %d zero reports, want exactly 1", round, z)
		}
		if s.NonZero() {
			t.Fatalf("round %d: still non-zero", round)
		}
	}
}

// TestNonZeroWhileAnyHolds: the indicator must stay non-zero while any
// process holds a surplus through churn by others.
func TestNonZeroWhileAnyHolds(t *testing.T) {
	const procs = 4
	s := New(procs)
	s.Arrive(0) // pinned
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 1; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Arrive(p)
				if s.Depart(p) {
					t.Errorf("proc %d observed zero while proc 0 holds", p)
					return
				}
			}
		}(p)
	}
	for i := 0; i < 100000; i++ {
		if !s.NonZero() {
			t.Fatal("indicator dropped to zero while held")
		}
	}
	close(stop)
	wg.Wait()
	if !s.Depart(0) {
		t.Fatal("final departure did not report zero")
	}
}

// BenchmarkSNZI compares arrive/depart cycles against a shared atomic
// counter under all-core symmetric traffic — the contention the paper's
// §4 remark is about.
func BenchmarkSNZI(b *testing.B) {
	b.Run("snzi", func(b *testing.B) {
		s := New(64)
		var procGen atomic.Int32
		b.RunParallel(func(pb *testing.PB) {
			proc := int(procGen.Add(1)-1) % 64
			for pb.Next() {
				s.Arrive(proc)
				s.Depart(proc)
			}
		})
	})
	b.Run("shared-counter", func(b *testing.B) {
		var c atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
				c.Add(-1)
			}
		})
	})
}

// Package snzi implements a scalable non-zero indicator (Ellen, Lev,
// Luchangco, Moir, SPAA 2007) in the simplified form the paper cites as a
// contention-mitigation option for reference counters (§4, citing Acar,
// Ben-David and Rainey's dynamic non-zero indicators): a tree of counters
// where arrivals and departures touch a leaf chosen per process, and only
// a leaf's 0↔nonzero transitions propagate toward the root.  Query reads
// one word at the root.
//
// The collector only ever needs to know whether a count *reached zero* —
// not its exact value — so an indicator is a drop-in replacement for a
// fetch-and-add counter with P-way lower contention under symmetric
// arrive/depart traffic.  BenchmarkSNZI in this package quantifies the
// difference; wiring an indicator into every tree node would cost too
// much memory for this repo's workloads, which is the same engineering
// judgement the paper makes by defaulting to fetch-and-add ("we leave
// this general on purpose").
package snzi

import "sync/atomic"

// node is one counter in the indicator tree.  surplus counts arrivals
// minus departures filtered through this node.
type node struct {
	surplus atomic.Int64
	parent  *node
	_       [6]uint64
}

// SNZI is a fixed-fanout non-zero indicator for up to P processes.
type SNZI struct {
	root   node
	leaves []node
}

// New creates an indicator with one leaf per process.
func New(p int) *SNZI {
	s := &SNZI{leaves: make([]node, p)}
	for i := range s.leaves {
		s.leaves[i].parent = &s.root
	}
	return s
}

// Arrive records one arrival by process proc.  Only a leaf's 0→1
// transition touches the root, so P processes arriving repeatedly on
// their own leaves contend only on first arrival.
func (s *SNZI) Arrive(proc int) {
	l := &s.leaves[proc]
	if l.surplus.Add(1) == 1 {
		l.parent.surplus.Add(1)
	}
}

// Depart records one departure by process proc and reports whether the
// whole indicator just became zero — the collector's trigger.
func (s *SNZI) Depart(proc int) bool {
	l := &s.leaves[proc]
	if l.surplus.Add(-1) == 0 {
		return l.parent.surplus.Add(-1) == 0
	}
	return false
}

// NonZero reports whether any process has a surplus.  One shared read.
func (s *SNZI) NonZero() bool { return s.root.surplus.Load() != 0 }

// Caveat: this simplified indicator is linearizable only when each
// process's surplus never goes negative (arrivals precede departures on
// the same process), which is exactly the discipline of reference counting:
// a process departs only from counts it (or a transferred token) arrived
// on.  The full SNZI protocol's versioned root handles reorderings this
// package does not need.

package vlist

import (
	"sync"
	"testing"
)

func TestSnapshotIsolation(t *testing.T) {
	s := New(2, 64)
	s.Commit(map[uint64]uint64{1: 10, 2: 20})
	sn := s.Begin(0)
	s.Commit(map[uint64]uint64{1: 11})
	s.Commit(map[uint64]uint64{2: 22, 3: 33})
	// The old snapshot still reads the old world.
	if v, _ := sn.Get(1); v != 10 {
		t.Fatalf("snapshot read %d, want 10", v)
	}
	if v, _ := sn.Get(2); v != 20 {
		t.Fatalf("snapshot read %d, want 20", v)
	}
	if _, ok := sn.Get(3); ok {
		t.Fatal("snapshot sees future key")
	}
	sn.End()
	// A fresh snapshot reads the new world.
	sn2 := s.Begin(0)
	if v, _ := sn2.Get(1); v != 11 {
		t.Fatalf("new snapshot read %d, want 11", v)
	}
	if v, _ := sn2.Get(3); v != 33 {
		t.Fatalf("new snapshot read %d, want 33", v)
	}
	sn2.End()
}

func TestMissingKey(t *testing.T) {
	s := New(1, 8)
	sn := s.Begin(0)
	if _, ok := sn.Get(99); ok {
		t.Fatal("absent key found")
	}
	sn.End()
}

// TestGCWatermark: versions below every active snapshot are truncated;
// versions a snapshot still needs survive.
func TestGCWatermark(t *testing.T) {
	s := New(2, 8)
	for i := uint64(0); i < 10; i++ {
		s.Commit(map[uint64]uint64{7: i})
	}
	if s.Depth(7) != 10 {
		t.Fatalf("depth = %d", s.Depth(7))
	}
	sn := s.Begin(1) // pins the current timestamp
	s.Commit(map[uint64]uint64{7: 100})
	freed := s.GC()
	if freed != 9 {
		t.Fatalf("GC freed %d, want 9 (all below the pinned snapshot)", freed)
	}
	// The pinned snapshot still reads its version.
	if v, _ := sn.Get(7); v != 9 {
		t.Fatalf("pinned snapshot reads %d, want 9", v)
	}
	sn.End()
	if freed := s.GC(); freed != 1 {
		t.Fatalf("post-release GC freed %d, want 1", freed)
	}
	if s.Depth(7) != 1 {
		t.Fatalf("depth after GC = %d", s.Depth(7))
	}
	if s.Retired() != 0 {
		t.Fatalf("retired = %d", s.Retired())
	}
}

// TestReadDelayGrowsWithVersions is the paper's §1 complaint made
// executable: a snapshot's read cost on a hot object grows linearly with
// the number of versions committed above it.
func TestReadDelayGrowsWithVersions(t *testing.T) {
	s := New(2, 8)
	s.Commit(map[uint64]uint64{5: 0})
	sn := s.Begin(1)
	if d := s.Depth(5); d != 1 {
		t.Fatalf("depth %d", d)
	}
	for i := uint64(1); i <= 1000; i++ {
		s.Commit(map[uint64]uint64{5: i})
	}
	// The pinned reader must now walk 1001 versions to find its value.
	if d := s.Depth(5); d != 1001 {
		t.Fatalf("depth %d, want 1001", d)
	}
	if v, ok := sn.Get(5); !ok || v != 0 {
		t.Fatalf("snapshot read %d,%v want 0", v, ok)
	}
	sn.End()
}

// TestConcurrentReadersWriter: one writer, many snapshot readers; every
// snapshot must see a consistent prefix (monotone counter pairs).
func TestConcurrentReadersWriter(t *testing.T) {
	const procs = 6
	s := New(procs, 64)
	s.Commit(map[uint64]uint64{1: 0, 2: 0})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= 3000; i++ {
			s.Commit(map[uint64]uint64{1: i, 2: i}) // both keys move together
			if i%100 == 0 {
				s.GC()
			}
		}
		close(stop)
	}()
	for p := 1; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Begin(p)
				a, _ := sn.Get(1)
				b, _ := sn.Get(2)
				sn.End()
				if a != b {
					t.Errorf("torn snapshot: %d vs %d", a, b)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	// After all readers quiesce, GC drains to one version per key.
	if freed := s.GC(); freed < 0 {
		t.Fatal("negative free count")
	}
	if s.Depth(1) != 1 || s.Depth(2) != 1 {
		t.Fatalf("depths %d,%d after final GC", s.Depth(1), s.Depth(2))
	}
}

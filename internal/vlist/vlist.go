// Package vlist implements the classic version-list multiversion store the
// paper argues against (§1, §8): every object keeps a timestamp-ordered
// list of versions (multiversion timestamp ordering in the style of Reed
// 1978 / Bernstein–Goodman 1983), readers pick a snapshot timestamp and
// walk each object's list to the newest version not exceeding it, and
// garbage collection truncates lists below the oldest active snapshot.
//
// It exists as a measurable foil: the paper's central complaint is that a
// version-list read costs time proportional to the number of versions
// stacked on the object since the reader's snapshot — "the delay is not
// just a constant, but can be asymptotic in the number of versions" — and
// that GC needs watermark scans.  BenchmarkVersionListDelay in the root
// bench suite demonstrates both against the functional-tree system, which
// pays O(1) per transaction regardless of version depth.
package vlist

import (
	"sync"
	"sync/atomic"
)

// version is one entry in an object's version chain, newest first.
type version struct {
	ts   uint64
	val  uint64
	next *version // older
}

// object is one key's version list.
type object struct {
	mu   sync.Mutex // writers only; readers traverse lock-free
	head atomic.Pointer[version]
}

// Store is a multiversion key-value store with per-object version lists
// and timestamp snapshots.
type Store struct {
	clock   atomic.Uint64 // last committed timestamp
	active  []padTS       // per-process active snapshot timestamps
	buckets []bucket
	mask    uint64
	// retired counts versions that are superseded but not yet truncated;
	// exposed so experiments can compare against the precise collector.
	retired atomic.Int64
}

type padTS struct {
	ts atomic.Uint64 // 0 = inactive
	_  [7]uint64
}

type bucket struct {
	mu sync.RWMutex
	m  map[uint64]*object
}

// New creates a store for p processes with the given hash-bucket count
// (rounded up to a power of two).
func New(p, buckets int) *Store {
	n := 1
	for n < buckets {
		n <<= 1
	}
	s := &Store{
		active:  make([]padTS, p),
		buckets: make([]bucket, n),
		mask:    uint64(n - 1),
	}
	for i := range s.buckets {
		s.buckets[i].m = make(map[uint64]*object)
	}
	s.clock.Store(1)
	return s
}

func (s *Store) bucketFor(key uint64) *bucket {
	return &s.buckets[(key*0x9e3779b97f4a7c15)&s.mask]
}

func (s *Store) obj(key uint64, create bool) *object {
	b := s.bucketFor(key)
	b.mu.RLock()
	o := b.m[key]
	b.mu.RUnlock()
	if o != nil || !create {
		return o
	}
	b.mu.Lock()
	o = b.m[key]
	if o == nil {
		o = &object{}
		b.m[key] = o
	}
	b.mu.Unlock()
	return o
}

// Snapshot is a read transaction's view: a frozen timestamp.
type Snapshot struct {
	s    *Store
	ts   uint64
	slot int
}

// Begin opens a read snapshot in reader slot slot at the current
// timestamp.  O(1), but every Get inside it pays a version-list walk.
// A slot is a per-reader index into the active-timestamp array; at most
// one snapshot may occupy a slot at a time.
func (s *Store) Begin(slot int) Snapshot {
	ts := s.clock.Load()
	s.active[slot].ts.Store(ts)
	return Snapshot{s: s, ts: ts, slot: slot}
}

// Get returns key's value at the snapshot's timestamp, walking the
// object's version list past every version committed after the snapshot —
// the delay the paper's design eliminates.
func (sn Snapshot) Get(key uint64) (uint64, bool) {
	o := sn.s.obj(key, false)
	if o == nil {
		return 0, false
	}
	for v := o.head.Load(); v != nil; v = v.next {
		if v.ts <= sn.ts {
			return v.val, true
		}
	}
	return 0, false
}

// End closes the snapshot, allowing GC past it.
func (sn Snapshot) End() { sn.s.active[sn.slot].ts.Store(0) }

// Commit applies a write batch atomically at a fresh timestamp and
// returns that timestamp.  Single writer assumed (matching the paper's
// single-writer deployment); concurrent writers would need write locks or
// timestamp validation on every object.
func (s *Store) Commit(batch map[uint64]uint64) uint64 {
	ts := s.clock.Load() + 1
	for key, val := range batch {
		o := s.obj(key, true)
		o.mu.Lock()
		old := o.head.Load()
		o.head.Store(&version{ts: ts, val: val, next: old})
		o.mu.Unlock()
		if old != nil {
			s.retired.Add(1)
		}
	}
	s.clock.Store(ts) // publish: readers beginning now see the batch
	return ts
}

// Retired reports superseded-but-untruncated version counts.
func (s *Store) Retired() int64 { return s.retired.Load() }

// Watermark returns the oldest timestamp any active snapshot could still
// read, scanning the whole active array — the O(P) scan version-list GC
// cannot avoid.
func (s *Store) Watermark() uint64 {
	w := s.clock.Load()
	for i := range s.active {
		if ts := s.active[i].ts.Load(); ts != 0 && ts < w {
			w = ts
		}
	}
	return w
}

// GC truncates every object's version list below the watermark: for each
// object it keeps the newest version at-or-below the watermark and frees
// everything older.  Unlike the paper's precise collector this must visit
// every object (cost proportional to the whole store, not to the garbage)
// and can only reclaim whole prefixes.
func (s *Store) GC() int64 {
	w := s.Watermark()
	var freed int64
	for i := range s.buckets {
		b := &s.buckets[i]
		b.mu.RLock()
		objs := make([]*object, 0, len(b.m))
		for _, o := range b.m {
			objs = append(objs, o)
		}
		b.mu.RUnlock()
		for _, o := range objs {
			o.mu.Lock()
			// Find the newest version with ts ≤ w; cut below it.
			for v := o.head.Load(); v != nil; v = v.next {
				if v.ts <= w {
					for dead := v.next; dead != nil; dead = dead.next {
						freed++
					}
					v.next = nil
					break
				}
			}
			o.mu.Unlock()
		}
	}
	s.retired.Add(-freed)
	return freed
}

// Depth returns the version-list length of key — the read delay a
// snapshot at timestamp 0 would pay.
func (s *Store) Depth(key uint64) int {
	o := s.obj(key, false)
	n := 0
	if o == nil {
		return 0
	}
	for v := o.head.Load(); v != nil; v = v.next {
		n++
	}
	return n
}

package bench

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

func TestRunCountsAllWorkers(t *testing.T) {
	r := Run(4, 50*time.Millisecond, func(worker int, stop *atomic.Bool, c *Counter) {
		for !stop.Load() {
			c.Add(1)
		}
	})
	if r.Ops == 0 {
		t.Fatal("no operations counted")
	}
	if r.Elapsed < 50*time.Millisecond {
		t.Fatalf("elapsed %v shorter than requested", r.Elapsed)
	}
	if r.Mops() <= 0 {
		t.Fatal("Mops not positive")
	}
}

func TestResultMopsZeroElapsed(t *testing.T) {
	r := Result{Ops: 100, Elapsed: 0}
	if r.Mops() != 0 {
		t.Fatal("zero elapsed must yield zero Mops")
	}
}

func TestAverage(t *testing.T) {
	n := 0
	avg := Average(3, func() Result {
		n++
		return Result{Ops: int64(n) * 1_000_000, Elapsed: time.Second}
	})
	if n != 3 {
		t.Fatalf("ran %d reps", n)
	}
	if avg < 1.99 || avg > 2.01 { // (1+2+3)/3 = 2 Mops
		t.Fatalf("average = %v", avg)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "col1", "longer-column")
	tb.AddRow("a", "b")
	tb.AddRow("wide-cell-value", "c")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "Title") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "wide-cell-value") {
		t.Fatal("missing cell")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("header and separator misaligned:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Fatalf("F = %q", F(1.23456))
	}
	if F2(1.23456) != "1.23" {
		t.Fatalf("F2 = %q", F2(1.23456))
	}
}

func TestCounterPadding(t *testing.T) {
	// Counters must be at least a cache line apart when adjacent.
	cs := make([]Counter, 2)
	a := unsafe.Pointer(&cs[0])
	b := unsafe.Pointer(&cs[1])
	if uintptr(b)-uintptr(a) < 64 {
		t.Fatalf("adjacent counters only %d bytes apart", uintptr(b)-uintptr(a))
	}
}

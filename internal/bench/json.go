package bench

import (
	"encoding/json"
	"io"
)

// YCSBSchema identifies the machine-readable result format emitted by
// cmd/ycsbbench -json; bump the version when fields change meaning.
const YCSBSchema = "BENCH_ycsb/v1"

// YCSBRecord is one (structure, workload) measurement.
type YCSBRecord struct {
	Structure string  `json:"structure"`
	Workload  string  `json:"workload"`
	Mops      float64 `json:"mops"`
}

// YCSBReport is the BENCH_ycsb.json document: run configuration plus every
// measured cell, so successive PRs can track the throughput trajectory.
type YCSBReport struct {
	Schema      string       `json:"schema"`
	Threads     int          `json:"threads"`
	Shards      int          `json:"shards,omitempty"`
	Records     uint64       `json:"records"`
	DurationSec float64      `json:"duration_sec"`
	Results     []YCSBRecord `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func (r *YCSBReport) WriteJSON(w io.Writer) error {
	r.Schema = YCSBSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// InvSchema identifies the machine-readable result format emitted by
// cmd/invbench -json; bump the version when fields change meaning.
const InvSchema = "BENCH_inv/v1"

// InvRecord is one Table 3 row: p query threads co-running with one
// ingesting writer (Shards > 0 marks the hash-sharded index).
type InvRecord struct {
	QueryThreads int     `json:"query_threads"`
	Shards       int     `json:"shards,omitempty"`
	Updates      int64   `json:"updates"`
	Queries      int64   `json:"queries"`
	TuSec        float64 `json:"tu_sec"`
	TqSec        float64 `json:"tq_sec"`
	TuqSec       float64 `json:"tuq_sec"`
}

// InvReport is the BENCH_inv.json document: run configuration plus every
// measured row, so successive PRs can track the co-running trajectory.
type InvReport struct {
	Schema      string      `json:"schema"`
	Threads     int         `json:"threads"`
	Vocab       uint64      `json:"vocab"`
	InitialDocs int         `json:"initial_docs"`
	WindowSec   float64     `json:"window_sec"`
	Results     []InvRecord `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func (r *InvReport) WriteJSON(w io.Writer) error {
	r.Schema = InvSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

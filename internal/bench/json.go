package bench

import (
	"encoding/json"
	"io"
)

// YCSBSchema identifies the machine-readable result format emitted by
// cmd/ycsbbench -json; bump the version when fields change meaning.
const YCSBSchema = "BENCH_ycsb/v1"

// YCSBRecord is one (structure, workload) measurement.
type YCSBRecord struct {
	Structure string  `json:"structure"`
	Workload  string  `json:"workload"`
	Mops      float64 `json:"mops"`
	// WAL marks cells measured with the write-ahead log attached (every
	// batch commit appends and fsyncs).  Omitted when false so pre-WAL
	// baselines stay byte-identical.
	WAL bool `json:"wal,omitempty"`
}

// YCSBReport is the BENCH_ycsb.json document: run configuration plus every
// measured cell, so successive PRs can track the throughput trajectory.
type YCSBReport struct {
	Schema      string       `json:"schema"`
	Threads     int          `json:"threads"`
	Shards      int          `json:"shards,omitempty"`
	Records     uint64       `json:"records"`
	DurationSec float64      `json:"duration_sec"`
	Results     []YCSBRecord `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func (r *YCSBReport) WriteJSON(w io.Writer) error {
	r.Schema = YCSBSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// AllocSchema identifies the machine-readable allocator-benchmark format
// emitted by cmd/allocbench -json; bump the version when fields change
// meaning.
const AllocSchema = "BENCH_alloc/v1"

// AllocRecord is one allocator cell: a measured path (point-update,
// batch-commit) under one allocator setting (recycle on or off), with the
// Go-heap bytes and allocations per operation alongside latency.  BPerOp
// is the headline: 0 on the warm point-update path is the magazine
// allocator working as designed.
type AllocRecord struct {
	Path        string  `json:"path"`
	Recycle     bool    `json:"recycle"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
}

// AllocReport is the BENCH_alloc.json document: run configuration plus
// every measured cell, so successive PRs can track the write path's
// allocation trajectory the same way BENCH_ycsb tracks throughput.
type AllocReport struct {
	Schema    string        `json:"schema"`
	Records   uint64        `json:"records"`
	BatchSize int           `json:"batch_size"`
	Procs     int           `json:"procs"`
	Results   []AllocRecord `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func (r *AllocReport) WriteJSON(w io.Writer) error {
	r.Schema = AllocSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// InvSchema identifies the machine-readable result format emitted by
// cmd/invbench -json; bump the version when fields change meaning.
const InvSchema = "BENCH_inv/v1"

// InvRecord is one Table 3 row: p query threads co-running with one
// ingesting writer (Shards > 0 marks the hash-sharded index).
type InvRecord struct {
	QueryThreads int     `json:"query_threads"`
	Shards       int     `json:"shards,omitempty"`
	Updates      int64   `json:"updates"`
	Queries      int64   `json:"queries"`
	TuSec        float64 `json:"tu_sec"`
	TqSec        float64 `json:"tq_sec"`
	TuqSec       float64 `json:"tuq_sec"`
}

// InvReport is the BENCH_inv.json document: run configuration plus every
// measured row, so successive PRs can track the co-running trajectory.
type InvReport struct {
	Schema      string      `json:"schema"`
	Threads     int         `json:"threads"`
	Vocab       uint64      `json:"vocab"`
	InitialDocs int         `json:"initial_docs"`
	WindowSec   float64     `json:"window_sec"`
	Results     []InvRecord `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func (r *InvReport) WriteJSON(w io.Writer) error {
	r.Schema = InvSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// MemSchema identifies the machine-readable result format emitted by
// cmd/ycsbbench -longreader; bump the version when fields change meaning.
const MemSchema = "BENCH_mem/v1"

// MemRecord is one algorithm's long-reader-plus-write-storm cell.
// PeakVersions is the headline space metric: the largest retained-version
// count observed while one read transaction pinned a snapshot through a
// fixed-size write storm — a space-bounded collector plateaus at O(P),
// an epoch-style one grows with the op count.  PeakHeapBytes is the
// matching Go-heap high-water mark and WriteMops the writers' committed
// throughput while contending with the pin.
type MemRecord struct {
	Algorithm     string  `json:"algorithm"`
	PeakVersions  int64   `json:"peak_versions"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	WriteMops     float64 `json:"write_mops"`
}

// MemReport is the BENCH_mem.json document: storm configuration plus every
// measured cell, so successive PRs can track the space-under-pinned-reader
// trajectory the same way BENCH_ycsb tracks throughput.
type MemReport struct {
	Schema       string      `json:"schema"`
	Records      uint64      `json:"records"`
	Writers      int         `json:"writers"`
	OpsPerWriter int         `json:"ops_per_writer"`
	Results      []MemRecord `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func (r *MemReport) WriteJSON(w io.Writer) error {
	r.Schema = MemSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// NetSchema identifies the machine-readable result format emitted by
// cmd/netbench -json; bump the version when fields change meaning.
const NetSchema = "BENCH_net/v1"

// NetRecord is one (connections, pipeline-depth) cell of the serving-layer
// sweep.  CommitsPerOp is the headline coalescing metric: combiner commits
// divided by write ops — it should fall toward shards/(batch arrival rate)
// as connections and depth grow, far below the 1.0 of an unbatched server.
// ScanFrac is zero for the classic GET/SET grid and positive for the scan
// cell, where that fraction of operations are SCAN commands streaming a
// merged range off one consistent cut; it is part of the cell's identity
// (omitempty keeps pre-scan baselines' keys byte-identical).
// Repl marks the replication cell, which runs against a WAL-backed leader
// with a live follower attached: ReplLagP50Us/ReplLagP99Us are the probe
// writes' acked-on-leader to visible-on-follower latency percentiles.
// Like ScanFrac, Repl is part of the cell's identity and omitted when
// false so pre-replication baselines' keys stay byte-identical.
type NetRecord struct {
	Conns        int     `json:"conns"`
	Depth        int     `json:"depth"`
	ScanFrac     float64 `json:"scan_frac,omitempty"`
	Repl         bool    `json:"repl,omitempty"`
	Ops          int64   `json:"ops"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	P50Us        float64 `json:"p50_us"`
	P99Us        float64 `json:"p99_us"`
	CommitsPerOp float64 `json:"commits_per_op"`
	ReplLagP50Us float64 `json:"repl_lag_p50_us,omitempty"`
	ReplLagP99Us float64 `json:"repl_lag_p99_us,omitempty"`
}

// NetReport is the BENCH_net.json document: serving-layer configuration
// plus every swept cell, so successive PRs can track the network front
// door's throughput, tail latency and write-coalescing trajectory.
type NetReport struct {
	Schema      string      `json:"schema"`
	Shards      int         `json:"shards"`
	WriteFrac   float64     `json:"write_frac"`
	Keys        int64       `json:"keys"`
	DurationSec float64     `json:"duration_sec"`
	Results     []NetRecord `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func (r *NetReport) WriteJSON(w io.Writer) error {
	r.Schema = NetSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

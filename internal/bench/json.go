package bench

import (
	"encoding/json"
	"io"
)

// YCSBSchema identifies the machine-readable result format emitted by
// cmd/ycsbbench -json; bump the version when fields change meaning.
const YCSBSchema = "BENCH_ycsb/v1"

// YCSBRecord is one (structure, workload) measurement.
type YCSBRecord struct {
	Structure string  `json:"structure"`
	Workload  string  `json:"workload"`
	Mops      float64 `json:"mops"`
}

// YCSBReport is the BENCH_ycsb.json document: run configuration plus every
// measured cell, so successive PRs can track the throughput trajectory.
type YCSBReport struct {
	Schema      string       `json:"schema"`
	Threads     int          `json:"threads"`
	Shards      int          `json:"shards,omitempty"`
	Records     uint64       `json:"records"`
	DurationSec float64      `json:"duration_sec"`
	Results     []YCSBRecord `json:"results"`
}

// WriteJSON renders the report as indented JSON.
func (r *YCSBReport) WriteJSON(w io.Writer) error {
	r.Schema = YCSBSchema
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

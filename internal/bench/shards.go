package bench

import (
	"flag"
	"runtime"
)

// DefaultShards is the one place every cmd/* benchmark derives its -shards
// default from: GOMAXPROCS capped at 8, floor 1.  More shards than cores
// buys no commit parallelism but still splits the combiners' batches
// (worse coalescing), and past 8 the fan-out read cost dominates on the
// machines these benchmarks target.  CI passes -shards explicitly so
// recorded configs stay comparable across runners; the default is for
// humans at a terminal.
func DefaultShards() int {
	s := runtime.GOMAXPROCS(0)
	if s > 8 {
		s = 8
	}
	if s < 1 {
		s = 1
	}
	return s
}

// ShardsFlag registers the standard -shards flag with the shared default.
// usage may be empty for the stock description.
func ShardsFlag(usage string) *int {
	if usage == "" {
		usage = "shard count (default: GOMAXPROCS capped at 8)"
	}
	return flag.Int("shards", DefaultShards(), usage)
}

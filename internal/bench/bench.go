// Package bench is the measurement harness shared by the experiment
// binaries (cmd/vmbench, cmd/ycsbbench, cmd/invbench) and the root
// bench_test.go: fixed-duration throughput runs with per-worker padded
// counters, repeat-and-average in the paper's style (3 runs), and plain
// text table/series formatting that mirrors the paper's tables.
package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a cache-line padded operation counter owned by one worker.
type Counter struct {
	n atomic.Int64
	_ [7]uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n.Add(d) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.n.Load() }

// Result is the outcome of one throughput run.
type Result struct {
	// Ops is the total operations completed across the measured workers.
	Ops int64
	// Elapsed is the measured wall time.
	Elapsed time.Duration
}

// Mops returns millions of operations per second, the paper's unit.
func (r Result) Mops() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

// Run starts one goroutine per worker, lets them run for d, and collects
// their counters.  Each worker must loop "for !stop.Load() { ...; c.Add(1) }".
func Run(workers int, d time.Duration, body func(worker int, stop *atomic.Bool, c *Counter)) Result {
	counters := make([]Counter, workers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body(w, &stop, &counters[w])
		}(w)
	}
	start := time.Now()
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	var total int64
	for i := range counters {
		total += counters[i].Load()
	}
	return Result{Ops: total, Elapsed: elapsed}
}

// Average runs f reps times and averages the Mops, as the paper averages
// over 3 runs.
func Average(reps int, f func() Result) float64 {
	var sum float64
	for i := 0; i < reps; i++ {
		sum += f().Mops()
	}
	return sum / float64(reps)
}

// Table accumulates rows and renders a fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	for i, h := range t.Headers {
		fmt.Fprintf(w, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w)
	for i := range t.Headers {
		for j := 0; j < widths[i]; j++ {
			fmt.Fprint(w, "-")
		}
		fmt.Fprint(w, "  ")
	}
	fmt.Fprintln(w)
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// F formats a float with 3 significant decimals, the paper's table style.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// F2 formats a float with 2 decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

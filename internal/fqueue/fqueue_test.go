package fqueue

import (
	"math/rand"
	"sync"
	"testing"

	"mvgc/internal/plm"
	"mvgc/internal/vm"
)

func TestEmptyQueue(t *testing.T) {
	o := New()
	q := o.Empty()
	o.Retain(q)
	if _, _, ok := o.Pop(q); ok {
		t.Fatal("pop from empty succeeded")
	}
	if _, ok := o.Peek(q); ok {
		t.Fatal("peek at empty succeeded")
	}
	if o.Len(q) != 0 {
		t.Fatal("empty queue has length")
	}
	o.Collect(q)
	if o.A.Live() != 0 {
		t.Fatalf("leaked %d tuples", o.A.Live())
	}
}

func TestFIFOOrder(t *testing.T) {
	o := New()
	q := o.Empty()
	o.Retain(q)
	for i := int64(0); i < 100; i++ {
		nq := o.Push(q, i)
		o.Retain(nq)
		o.Collect(q)
		q = nq
	}
	for i := int64(0); i < 100; i++ {
		v, nq, ok := o.Pop(q)
		if !ok || v != i {
			t.Fatalf("pop #%d = %d,%v", i, v, ok)
		}
		o.Retain(nq)
		o.Collect(q)
		q = nq
	}
	if _, _, ok := o.Pop(q); ok {
		t.Fatal("queue should be empty")
	}
	o.Collect(q)
	if o.A.Live() != 0 {
		t.Fatalf("leaked %d tuples", o.A.Live())
	}
}

// TestPersistence: old queue versions remain readable and correct after
// arbitrary later operations.
func TestPersistence(t *testing.T) {
	o := New()
	type snap struct {
		q   *plm.Tuple
		ref []int64
	}
	q := o.Empty()
	o.Retain(q)
	var model []int64
	var snaps []snap
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		if rng.Intn(3) != 0 {
			v := rng.Int63n(1000)
			nq := o.Push(q, v)
			o.Retain(nq)
			o.Collect(q)
			q = nq
			model = append(model, v)
		} else if len(model) > 0 {
			v, nq, ok := o.Pop(q)
			if !ok || v != model[0] {
				t.Fatalf("pop = %d,%v want %d", v, ok, model[0])
			}
			o.Retain(nq)
			o.Collect(q)
			q = nq
			model = model[1:]
		}
		if i%40 == 0 {
			o.Retain(q)
			snaps = append(snaps, snap{q, append([]int64(nil), model...)})
		}
	}
	for i, s := range snaps {
		got := o.ToSlice(s.q)
		if len(got) != len(s.ref) {
			t.Fatalf("snapshot %d: len %d want %d", i, len(got), len(s.ref))
		}
		for j := range got {
			if got[j] != s.ref[j] {
				t.Fatalf("snapshot %d[%d]: %d want %d", i, j, got[j], s.ref[j])
			}
		}
		o.Collect(s.q)
	}
	o.Collect(q)
	if o.A.Live() != 0 {
		t.Fatalf("leaked %d tuples", o.A.Live())
	}
}

// TestVersionedQueueUnderVM wires the queue into the paper's transaction
// loop with the PSWF Version Maintenance algorithm: a single writer
// pushes and pops while readers snapshot; at the end, exact tuple
// accounting proves safe and precise GC on a non-tree structure.
func TestVersionedQueueUnderVM(t *testing.T) {
	const procs = 6
	o := New()
	init := o.Empty()
	o.Retain(init) // token owned by the VM
	m := vm.NewPSWF(procs, init)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer: process 0 (Figure 1, right)
		defer wg.Done()
		var pushed, popped int64
		for i := 0; i < 4000; i++ {
			cur := m.Acquire(0)
			var next *plm.Tuple
			if i%3 == 2 {
				v, nq, ok := o.Pop(cur)
				if !ok {
					m.Release(0)
					continue
				}
				if v != popped {
					t.Errorf("FIFO violated: popped %d want %d", v, popped)
				}
				popped++
				next = nq
			} else {
				next = o.Push(cur, pushed)
				pushed++
			}
			o.Retain(next) // output increment
			if !m.Set(0, next) {
				t.Error("single-writer set failed")
			}
			for _, dead := range m.Release(0) {
				o.Collect(dead)
			}
		}
		close(stop)
	}()
	for p := 1; p < procs; p++ {
		wg.Add(1)
		go func(p int) { // readers (Figure 1, left)
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := m.Acquire(p)
				// The snapshot must be internally consistent: ToSlice is
				// strictly increasing because the writer pushes a counter.
				s := o.ToSlice(q)
				for j := 1; j < len(s); j++ {
					if s[j] != s[j-1]+1 {
						t.Errorf("torn queue snapshot: %v", s)
						return
					}
				}
				for _, dead := range m.Release(p) {
					o.Collect(dead)
				}
			}
		}(p)
	}
	wg.Wait()
	for _, dead := range m.Drain() {
		o.Collect(dead)
	}
	if o.A.Live() != 0 {
		t.Fatalf("leaked %d tuples after drain", o.A.Live())
	}
}

// TestAmortizedReversal: pops that trigger reversal keep exact accounting.
func TestAmortizedReversal(t *testing.T) {
	o := New()
	q := o.Empty()
	o.Retain(q)
	// Push 50 (all land in back), then pop all (first pop reverses).
	for i := int64(0); i < 50; i++ {
		nq := o.Push(q, i)
		o.Retain(nq)
		o.Collect(q)
		q = nq
	}
	for i := int64(0); i < 50; i++ {
		if v, _ := o.Peek(q); v != i {
			t.Fatalf("peek = %d want %d", v, i)
		}
		v, nq, ok := o.Pop(q)
		if !ok || v != i {
			t.Fatalf("pop = %d,%v", v, ok)
		}
		o.Retain(nq)
		o.Collect(q)
		q = nq
	}
	o.Collect(q)
	if o.A.Live() != 0 {
		t.Fatalf("leaked %d tuples", o.A.Live())
	}
}

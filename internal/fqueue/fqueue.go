// Package fqueue is a purely functional FIFO queue on the PLM substrate
// (internal/plm) — the classic two-list persistent queue (Okasaki), built
// only from tuple and nth instructions so that Algorithm 5's collector
// reclaims it precisely.  The paper (§1) names queues alongside trees as
// data types that are efficient in the functional setting; this package is
// the repo's demonstration that the transaction framework is not
// tree-specific: any PLM structure versioned through a Version Maintenance
// object gets delay-free readers and precise GC for free.
//
// Representation: a queue is tuple(front, back) of two cons lists
// (tuple(head, rest)); Push conses onto back, Pop takes from front,
// reversing back into front when front runs dry — O(1) amortized.
package fqueue

import "mvgc/internal/plm"

// Ops provides queue operations over one arena.  All operations borrow
// their inputs (old versions stay intact) and return fresh version roots
// with reference count zero; publishing a root as a version requires
// Arena.Retain (the paper's "output" increment), and releasing a version
// is Arena.Collect.
type Ops struct {
	// A is the arena all queue tuples live in.
	A *plm.Arena
}

// New returns queue operations over a fresh arena.
func New() *Ops { return &Ops{A: plm.NewArena()} }

// Empty returns a new empty queue.
func (o *Ops) Empty() *plm.Tuple {
	return o.A.Tuple(plm.Value{}, plm.Value{})
}

// cons prepends v to list l.
func (o *Ops) cons(v int64, l plm.Value) *plm.Tuple {
	return o.A.Tuple(plm.Scalar(v), l)
}

// Push returns a new queue version with v appended.  Borrows q.
func (o *Ops) Push(q *plm.Tuple, v int64) *plm.Tuple {
	front := plm.Nth(q, 0)
	back := plm.Nth(q, 1)
	return o.A.Tuple(front, plm.Ref(o.cons(v, back)))
}

// Pop returns the oldest element and the queue version without it.
// Borrows q; ok is false on an empty queue (and the returned version is
// nil).  When the front list is empty the back list is reversed into a
// fresh front — O(len) tuples, amortized O(1) per operation across a
// version chain.
func (o *Ops) Pop(q *plm.Tuple) (v int64, rest *plm.Tuple, ok bool) {
	front := plm.Nth(q, 0)
	back := plm.Nth(q, 1)
	if front.T == nil {
		if back.T == nil {
			return 0, nil, false
		}
		// Reverse back into a new front list (fresh tuples; the old back
		// remains owned by the old version).
		rev := plm.Value{}
		for cur := back; cur.T != nil; cur = plm.Nth(cur.T, 1) {
			rev = plm.Ref(o.cons(plm.Nth(cur.T, 0).S, rev))
		}
		head := plm.Nth(rev.T, 0).S
		tail := plm.Nth(rev.T, 1)
		nq := o.A.Tuple(tail, plm.Value{})
		// The reversal's head cons carried the popped element and belongs
		// to no version: collect it now that nq holds the tail.
		o.A.Collect(rev)
		return head, nq, true
	}
	head := plm.Nth(front.T, 0).S
	tail := plm.Nth(front.T, 1)
	return head, o.A.Tuple(tail, back), true
}

// Peek returns the oldest element without constructing a new version.
func (o *Ops) Peek(q *plm.Tuple) (int64, bool) {
	front := plm.Nth(q, 0)
	if front.T != nil {
		return plm.Nth(front.T, 0).S, true
	}
	back := plm.Nth(q, 1)
	if back.T == nil {
		return 0, false
	}
	// Oldest element is the last cons of back.
	var last int64
	for cur := back; cur.T != nil; cur = plm.Nth(cur.T, 1) {
		last = plm.Nth(cur.T, 0).S
	}
	return last, true
}

// Len counts the queue's elements.  Borrows q; pure reads.
func (o *Ops) Len(q *plm.Tuple) int {
	n := 0
	for cur := plm.Nth(q, 0); cur.T != nil; cur = plm.Nth(cur.T, 1) {
		n++
	}
	for cur := plm.Nth(q, 1); cur.T != nil; cur = plm.Nth(cur.T, 1) {
		n++
	}
	return n
}

// ToSlice returns the elements oldest-first.  Borrows q.
func (o *Ops) ToSlice(q *plm.Tuple) []int64 {
	var out []int64
	for cur := plm.Nth(q, 0); cur.T != nil; cur = plm.Nth(cur.T, 1) {
		out = append(out, plm.Nth(cur.T, 0).S)
	}
	var back []int64
	for cur := plm.Nth(q, 1); cur.T != nil; cur = plm.Nth(cur.T, 1) {
		back = append(back, plm.Nth(cur.T, 0).S)
	}
	for i := len(back) - 1; i >= 0; i-- {
		out = append(out, back[i])
	}
	return out
}

// Collect releases one ownership token on a version root (Algorithm 5).
func (o *Ops) Collect(q *plm.Tuple) {
	if q != nil {
		o.A.Collect(plm.Ref(q))
	}
}

// Retain adds an ownership token to a version root (the paper's output
// increment, performed when a writer publishes the version).
func (o *Ops) Retain(q *plm.Tuple) { o.A.Retain(q) }

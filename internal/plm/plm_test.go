package plm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTupleAndNth(t *testing.T) {
	a := NewArena()
	leaf := a.Tuple(Scalar(7), Scalar(8))
	root := a.Tuple(Ref(leaf), Scalar(9))
	if got := Nth(root, 1).S; got != 9 {
		t.Fatalf("Nth(root,1) = %d, want 9", got)
	}
	if got := Nth(Nth(root, 0).T, 0).S; got != 7 {
		t.Fatalf("Nth(Nth(root,0),0) = %d, want 7", got)
	}
	if leaf.Ref() != 1 {
		t.Fatalf("leaf ref = %d, want 1 (one parent)", leaf.Ref())
	}
	if root.Ref() != 0 {
		t.Fatalf("fresh root ref = %d, want 0", root.Ref())
	}
}

func TestTupleTooWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-wide tuple")
		}
	}()
	a := NewArena()
	a.Tuple(Scalar(1), Scalar(2), Scalar(3), Scalar(4), Scalar(5))
}

// TestCollectChain: collecting the root of a linked list frees every node
// (S frees for a chain of length S, Theorem 4.2's linear cost in spirit).
func TestCollectChain(t *testing.T) {
	a := NewArena()
	var head *Tuple
	for i := 0; i < 100; i++ {
		head = a.Tuple(Scalar(int64(i)), Ref(head))
	}
	a.Retain(head)
	if a.Live() != 100 {
		t.Fatalf("live = %d, want 100", a.Live())
	}
	a.Collect(Ref(head))
	if a.Live() != 0 {
		t.Fatalf("live = %d after collect, want 0", a.Live())
	}
	if a.Frees() != 100 {
		t.Fatalf("frees = %d, want 100", a.Frees())
	}
}

// TestCollectShared: a diamond-shaped DAG is freed only after both parents
// release it, never before (safety) and immediately after (precision).
func TestCollectShared(t *testing.T) {
	a := NewArena()
	shared := a.Tuple(Scalar(1))
	p1 := a.Tuple(Ref(shared))
	p2 := a.Tuple(Ref(shared))
	a.Retain(p1)
	a.Retain(p2)
	if shared.Ref() != 2 {
		t.Fatalf("shared ref = %d, want 2", shared.Ref())
	}
	a.Collect(Ref(p1))
	if a.Live() != 2 {
		t.Fatalf("live = %d after first collect, want 2 (p2 + shared)", a.Live())
	}
	if shared.Ref() != 1 {
		t.Fatalf("shared ref = %d after first collect, want 1", shared.Ref())
	}
	a.Collect(Ref(p2))
	if a.Live() != 0 {
		t.Fatalf("live = %d after second collect, want 0", a.Live())
	}
}

// TestUseAfterFreePoisoning: reading a freed tuple panics, which is how the
// test suite turns safety violations into failures.
func TestUseAfterFreePoisoning(t *testing.T) {
	a := NewArena()
	x := a.Tuple(Scalar(1))
	a.Retain(x)
	a.Collect(Ref(x))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from Nth on freed tuple")
		}
	}()
	Nth(x, 0)
}

// TestFreelistRecycling: freed tuples are reused by later allocations.
func TestFreelistRecycling(t *testing.T) {
	a := NewArena()
	x := a.Tuple(Scalar(1))
	a.Retain(x)
	a.Collect(Ref(x))
	y := a.Tuple(Scalar(2))
	if x != y {
		t.Fatal("expected the freed tuple to be recycled")
	}
	if y.freed.Load() {
		t.Fatal("recycled tuple still poisoned")
	}
	if a.Live() != 1 || a.Allocs() != 2 || a.Frees() != 1 {
		t.Fatalf("accounting live=%d allocs=%d frees=%d", a.Live(), a.Allocs(), a.Frees())
	}
}

// buildVersions simulates path-copying updates: each version copies a
// random path of the previous version's list and shares the rest, exactly
// like the tree update of Figure 2 in one dimension.
func buildVersions(a *Arena, rng *rand.Rand, n, depth int) []*Tuple {
	// initial chain
	var head *Tuple
	for i := 0; i < depth; i++ {
		head = a.Tuple(Scalar(int64(i)), Ref(head))
	}
	a.Retain(head)
	roots := []*Tuple{head}
	for v := 1; v < n; v++ {
		// copy a prefix of random length, share the suffix
		k := rng.Intn(depth)
		var nodes []*Tuple
		cur := roots[len(roots)-1]
		for i := 0; i < k; i++ {
			nodes = append(nodes, cur)
			cur = Nth(cur, 1).T
		}
		nv := cur // shared suffix
		var root *Tuple
		for i := len(nodes) - 1; i >= 0; i-- {
			root = a.Tuple(Scalar(Nth(nodes[i], 0).S+1000), Ref(nv))
			nv = root
		}
		if root == nil {
			root = nv // k == 0: new version is the shared suffix itself
		}
		a.Retain(root)
		roots = append(roots, root)
	}
	return roots
}

// TestVersionedCollectRandomOrder builds many path-copied versions and
// collects them in random order, checking after every collect that the
// allocated space equals the reachable space of the remaining roots — the
// conjunction of Definitions 2.1 and 2.2.
func TestVersionedCollectRandomOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a := NewArena()
		roots := buildVersions(a, rng, 20, 30)
		alive := make(map[int]*Tuple, len(roots))
		for i, r := range roots {
			alive[i] = r
		}
		order := rng.Perm(len(roots))
		for _, idx := range order {
			a.Collect(Ref(alive[idx]))
			delete(alive, idx)
			var rs []*Tuple
			for _, r := range alive {
				rs = append(rs, r)
			}
			if got, want := int(a.Live()), Reachable(rs...); got != want {
				t.Fatalf("trial %d: live=%d reachable=%d after collecting version %d",
					trial, got, want, idx)
			}
		}
		if a.Live() != 0 {
			t.Fatalf("trial %d: %d tuples leaked", trial, a.Live())
		}
	}
}

// TestCollectLinearCost checks Theorem 4.2's O(S+1) bound observationally:
// collecting a version that frees S tuples performs exactly S free
// instructions, and a collect that frees nothing performs none.
func TestCollectLinearCost(t *testing.T) {
	a := NewArena()
	shared := a.Tuple(Scalar(0))
	v1 := a.Tuple(Ref(shared))
	v2 := a.Tuple(Ref(shared))
	a.Retain(v1)
	a.Retain(v2)
	f0 := a.Frees()
	a.Collect(Ref(v1)) // frees v1 only
	if a.Frees()-f0 != 1 {
		t.Fatalf("collect freed %d tuples, want 1", a.Frees()-f0)
	}
	a.Collect(Ref(v2)) // frees v2 and shared
	if a.Frees()-f0 != 3 {
		t.Fatalf("total freed %d, want 3", a.Frees()-f0)
	}
}

// TestQuickRandomDAGs uses testing/quick to generate random small DAGs
// plus a random collect order and asserts exact accounting every time.
func TestQuickRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewArena()
		n := 2 + rng.Intn(40)
		tuples := make([]*Tuple, 0, n)
		for i := 0; i < n; i++ {
			// pick up to Arity-1 children from existing tuples
			var vs []Value
			vs = append(vs, Scalar(int64(i)))
			for j := 0; j < rng.Intn(Arity); j++ {
				if len(tuples) > 0 {
					vs = append(vs, Ref(tuples[rng.Intn(len(tuples))]))
				}
			}
			tuples = append(tuples, a.Tuple(vs...))
		}
		// Roots: every tuple with refcount 0 gets a token, plus a random
		// subset of shared ones.
		roots := map[*Tuple]int{}
		for _, tp := range tuples {
			if tp.Ref() == 0 || rng.Intn(3) == 0 {
				a.Retain(tp)
				roots[tp]++
			}
		}
		var order []*Tuple
		for r, c := range roots {
			for i := 0; i < c; i++ {
				order = append(order, r)
			}
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for i, r := range order {
			a.Collect(Ref(r))
			var rs []*Tuple
			for _, rest := range order[i+1:] {
				rs = append(rs, rest)
			}
			if int(a.Live()) != Reachable(rs...) {
				return false
			}
		}
		return a.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

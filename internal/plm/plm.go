// Package plm implements the pure LISP machine (PLM) memory model of
// Section 2 together with the reference-counting collector of Section 4
// (Algorithm 5).
//
// A PLM program manipulates memory only through two instructions:
// Tuple(v1, …, vl) creates an immutable tuple of at most Arity fields, and
// Nth(t, i) reads a field.  Values are either scalars or pointers to other
// tuples, so the memory graph is an immutable DAG and reference counting
// collects everything.
//
// Each tuple carries the count of its parents in the memory graph plus one
// "ownership token" per version root handed to the Version Maintenance
// layer.  Collect(x) (Algorithm 5) releases one token: it decrements x's
// count and, if the count reaches zero, frees x and recursively collects
// its children.  Theorem 4.2: Collect is correct and takes O(S+1) time for
// S freed tuples.
//
// Go's tracing garbage collector would of course reclaim unreachable
// tuples on its own; what it cannot do is tell us which tuples the
// paper's precise collector identifies as dead, and when.  An Arena
// therefore accounts for every Tuple and every Free with atomic counters
// and recycles freed tuples through a free list, making "allocated space"
// an observable quantity that tests and benchmarks compare against the
// reachable space (Definitions 2.1 and 2.2).
package plm

import (
	"sync"
	"sync/atomic"
)

// Arity is l, the fixed maximum number of fields per tuple.  The paper
// requires a small constant; 4 covers a binary tree node with a key and a
// value.
const Arity = 4

// Value is a PLM register value: a scalar or a pointer to a tuple.
type Value struct {
	T *Tuple // nil for scalars
	S int64  // scalar payload, meaningful when T == nil
}

// Scalar wraps an integer as a PLM value.
func Scalar(s int64) Value { return Value{S: s} }

// Ref wraps a tuple pointer as a PLM value.
func Ref(t *Tuple) Value { return Value{T: t} }

// Tuple is an immutable PLM tuple.  The reference count records the number
// of parent tuples plus outstanding ownership tokens.
type Tuple struct {
	ch    [Arity]Value
	ref   atomic.Int32
	freed atomic.Bool // poison flag: set between Free and reuse
	next  *Tuple      // free-list link
}

// Arena allocates and frees tuples, tracking the allocated space.
type Arena struct {
	live   atomic.Int64 // tuples allocated and not yet freed
	allocs atomic.Int64 // total Tuple instructions executed
	frees  atomic.Int64 // total free instructions executed

	mu   sync.Mutex
	free *Tuple // recycled tuples
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Live reports the allocated space: tuples created and not yet freed.
func (a *Arena) Live() int64 { return a.live.Load() }

// Allocs reports the total number of Tuple instructions executed.
func (a *Arena) Allocs() int64 { return a.allocs.Load() }

// Frees reports the total number of free instructions executed.
func (a *Arena) Frees() int64 { return a.frees.Load() }

// Tuple executes the PLM tuple instruction: it allocates an immutable tuple
// holding vs and increments the reference count of every tuple-valued
// field, since the new tuple becomes their parent (Algorithm 5).  The new
// tuple itself starts with count zero; callers that intend to keep it as a
// version root must Retain it (the paper's "output" increment).
func (a *Arena) Tuple(vs ...Value) *Tuple {
	if len(vs) > Arity {
		panic("plm: tuple wider than Arity")
	}
	t := a.alloc()
	for i, v := range vs {
		t.ch[i] = v
		if v.T != nil {
			v.T.ref.Add(1)
		}
	}
	return t
}

func (a *Arena) alloc() *Tuple {
	a.allocs.Add(1)
	a.live.Add(1)
	a.mu.Lock()
	t := a.free
	if t != nil {
		a.free = t.next
	}
	a.mu.Unlock()
	if t == nil {
		t = new(Tuple)
	} else {
		*t = Tuple{}
	}
	return t
}

// Nth executes the PLM nth instruction: it returns field i of t.  It panics
// if t has been freed, which is exactly the use-after-free a safe collector
// must prevent (Definition 2.2); tests rely on this poisoning.
func Nth(t *Tuple, i int) Value {
	if t.freed.Load() {
		panic("plm: nth on freed tuple (GC safety violation)")
	}
	return t.ch[i]
}

// Ref returns the current reference count; exposed for tests.
func (t *Tuple) Ref() int32 { return t.ref.Load() }

// Retain adds an ownership token to t: the "output" increment performed by
// a writer when it commits t as a version root.
func (a *Arena) Retain(t *Tuple) { t.ref.Add(1) }

// Collect executes Algorithm 5's collect on a version root or child value:
// it decrements the tuple's count and, when the count reaches zero, frees
// the tuple and collects its children.  Scalars are ignored.  The iterative
// formulation (explicit stack) preserves the O(S+1) bound without risking
// goroutine stack growth on deep structures.
func (a *Arena) Collect(v Value) {
	if v.T == nil {
		return
	}
	stack := []*Tuple{v.T}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x.ref.Add(-1) > 0 {
			continue // other parents or tokens remain
		}
		var tmp [Arity]Value
		for i := 0; i < Arity; i++ {
			tmp[i] = Nth(x, i)
		}
		a.freeTuple(x)
		for i := 0; i < Arity; i++ {
			if tmp[i].T != nil {
				stack = append(stack, tmp[i].T)
			}
		}
	}
}

func (a *Arena) freeTuple(t *Tuple) {
	if !t.freed.CompareAndSwap(false, true) {
		panic("plm: double free")
	}
	a.frees.Add(1)
	a.live.Add(-1)
	t.ch = [Arity]Value{}
	a.mu.Lock()
	t.next = a.free
	a.free = t
	a.mu.Unlock()
}

// Reachable walks the memory graph from the given roots and returns the
// number of distinct live tuples, i.e. |R(T)| from Section 2.  Used by
// tests to check Definition 2.1 (precision: allocated ⊆ reachable) and
// Definition 2.2 (safety: allocated ⊇ reachable).
func Reachable(roots ...*Tuple) int {
	seen := make(map[*Tuple]struct{})
	var walk func(t *Tuple)
	walk = func(t *Tuple) {
		if t == nil {
			return
		}
		if _, ok := seen[t]; ok {
			return
		}
		seen[t] = struct{}{}
		for i := 0; i < Arity; i++ {
			walk(t.ch[i].T)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return len(seen)
}

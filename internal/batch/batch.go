// Package batch implements the paper's batching scheme (Appendix F): many
// client processes append update requests to private buffers, and a single
// combining writer periodically drains all buffers and commits the whole
// batch atomically as one write transaction, applying it with the parallel
// multi-insert.  Readers never batch — they run delay-free read
// transactions directly against the map.
//
// Each client owns a single-producer ring buffer whose tail only the client
// advances and whose head only the combiner advances, so clients and the
// combiner never contend on the same index (Appendix F: "There is no
// contention between processes").  Batching trades wait-freedom of
// individual writes for contention-free parallel throughput and atomic
// multi-operation commits; the paper's Figure 7 measures the payoff.
package batch

import (
	"runtime"
	"sync/atomic"
	"time"

	"mvgc/internal/core"
	"mvgc/internal/ftree"
)

// Op is the kind of a batched request.
type Op uint8

const (
	// OpInsert inserts or overwrites a key.
	OpInsert Op = iota
	// OpDelete removes a key.
	OpDelete
)

// Request is one buffered update.
type Request[K, V any] struct {
	Op  Op
	Key K
	Val V

	// done, when non-nil, is the completion callback SubmitAsync attached:
	// the combiner invokes it exactly once, after the commit containing the
	// request has been published (or during the final drain on Stop).  A
	// non-nil argument means the batch was NOT committed: the persist hook
	// refused it (e.g. the WAL is poisoned or full) and the request's write
	// was discarded.
	done func(error)
}

// Persist is the durability hook a Batcher's owner may install with
// SetPersist: the combiner calls it once per gathered batch, handing over
// the batch's inserts and deletes plus a commit closure that applies the
// batch to the in-memory map and returns the commit's GSN (0 when the
// batch was a no-op).  The hook decides whether to run the commit at all
// (fail-fast when the log is unusable), logs the committed batch keyed by
// the returned GSN, and makes it durable; its error is delivered to every
// request callback in the batch.  The slices are owned by the combiner
// and valid only for the duration of the call.
type Persist[K, V any] func(inserts []ftree.Entry[K, V], deletes []K, commit func() uint64) error

// ring is a single-producer single-consumer bounded queue.  The producer
// (client) advances tail; the consumer (combiner) advances head.
type ring[K, V any] struct {
	buf       []Request[K, V]
	mask      uint64
	head      atomic.Uint64 // next slot the combiner will read
	tail      atomic.Uint64 // next slot the client will write
	committed atomic.Uint64 // requests ≤ this index are durably committed
	_         [4]uint64
}

// Batcher owns the single combining writer for a Map.  Clients call Submit
// (SubmitWait, or SubmitAsync for pipelined completion callbacks) from
// their own goroutine; the combiner goroutine commits
// batches until Stop.  The combiner's process identity is a Handle leased
// from the map's pool, so callers never assign it a pid.
type Batcher[K, V, A any] struct {
	m        *core.Map[K, V, A]
	w        *core.Handle[K, V, A]
	rings    []*ring[K, V]
	comb     func(old, new V) V
	persist  Persist[K, V]
	interval time.Duration
	maxBatch int

	stop    chan struct{}
	done    chan struct{}
	batches atomic.Int64
	applied atomic.Int64
	maxSeen atomic.Int64
}

// Config tunes a Batcher.
type Config struct {
	// Clients is the number of client buffers (their ids are 0..Clients-1,
	// independent of map process ids since clients never touch the VM).
	Clients int
	// BufCap is each client's buffer capacity (rounded up to a power of
	// two, default 8192).  Submit applies backpressure when full.
	BufCap int
	// MaxLatency bounds how long a submitted request may wait before the
	// combiner picks it up (the paper bounds update latency to ~50 ms).
	// Default 2 ms.
	MaxLatency time.Duration
	// MaxBatch caps requests per commit; 0 means unlimited.
	MaxBatch int
}

// New creates a Batcher for m and leases the combiner's process identity
// from m's pool (blocking if all P are in use, so size Procs for your
// readers plus one writer).  comb defines how an inserted value merges
// with an existing one (nil overwrites).  Start must be called before any
// Submit; Stop returns the identity to the pool.
func New[K, V, A any](m *core.Map[K, V, A], cfg Config, comb func(old, new V) V) *Batcher[K, V, A] {
	capacity := cfg.BufCap
	if capacity <= 0 {
		capacity = 8192
	}
	capacity = nextPow2(capacity)
	b := &Batcher[K, V, A]{
		m:        m,
		w:        m.Handle(),
		comb:     comb,
		interval: cfg.MaxLatency,
		maxBatch: cfg.MaxBatch,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if b.interval <= 0 {
		b.interval = 2 * time.Millisecond
	}
	b.rings = make([]*ring[K, V], cfg.Clients)
	for i := range b.rings {
		b.rings[i] = &ring[K, V]{buf: make([]Request[K, V], capacity), mask: uint64(capacity - 1)}
	}
	return b
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SetPersist installs the durability hook; call before Start.  See
// Persist for the contract.
func (b *Batcher[K, V, A]) SetPersist(p Persist[K, V]) { b.persist = p }

// Start launches the combiner goroutine.
func (b *Batcher[K, V, A]) Start() { go b.run() }

// Stop drains every buffer, commits the final batch, shuts the combiner
// down, and returns its process identity to the map's pool.
func (b *Batcher[K, V, A]) Stop() {
	close(b.stop)
	<-b.done
	b.w.Close()
}

// Batches reports how many write transactions the combiner committed.
func (b *Batcher[K, V, A]) Batches() int64 { return b.batches.Load() }

// Applied reports how many requests have been committed.
func (b *Batcher[K, V, A]) Applied() int64 { return b.applied.Load() }

// MaxBatchSeen reports the largest committed batch.
func (b *Batcher[K, V, A]) MaxBatchSeen() int64 { return b.maxSeen.Load() }

// Submit enqueues an update from client (0..Clients-1).  It blocks —
// yielding, not spinning hot — while the client's buffer is full.
func (b *Batcher[K, V, A]) Submit(client int, r Request[K, V]) {
	q := b.rings[client]
	for {
		t := q.tail.Load()
		if t-q.head.Load() < uint64(len(q.buf)) {
			q.buf[t&q.mask] = r
			q.tail.Store(t + 1)
			return
		}
		runtime.Gosched() // backpressure: combiner is behind
	}
}

// SubmitWait enqueues an update and blocks until it has been committed,
// giving per-request durability at batching latency.
func (b *Batcher[K, V, A]) SubmitWait(client int, r Request[K, V]) {
	q := b.rings[client]
	b.Submit(client, r)
	seq := q.tail.Load()
	for q.committed.Load() < seq {
		runtime.Gosched()
	}
}

// SubmitAsync enqueues an update and returns without waiting for the
// commit; done is invoked exactly once, after the commit containing the
// request has been published — including the final drain commit when the
// combiner is stopped with requests still buffered.  This is the
// pipelining primitive: N in-flight writes cost N ring slots, not N
// blocked goroutines (SubmitWait parks its caller per request).
//
// done runs on the combiner goroutine, after the batch's watermarks are
// published, so it may itself call Submit/SubmitAsync — but it must not
// block: every callback in the batch (and every later commit) waits
// behind it.  Hand off to a channel or flip a flag; don't do work there.
// Like Submit, SubmitAsync applies backpressure (blocks) while the
// client's ring is full.
func (b *Batcher[K, V, A]) SubmitAsync(client int, r Request[K, V], done func(error)) {
	r.done = done
	b.Submit(client, r)
}

// Flush blocks until everything submitted by client before the call has
// committed.
func (b *Batcher[K, V, A]) Flush(client int) {
	q := b.rings[client]
	seq := q.tail.Load()
	for q.committed.Load() < seq {
		runtime.Gosched()
	}
}

// run is the combiner loop: gather all buffers, commit one transaction,
// publish per-ring committed watermarks, sleep out the latency budget if
// there was nothing to do.
func (b *Batcher[K, V, A]) run() {
	defer close(b.done)
	type mark struct {
		q   *ring[K, V]
		seq uint64
	}
	var inserts []ftree.Entry[K, V]
	var deletes []K
	var cbs []func(error)
	marks := make([]mark, 0, len(b.rings))
	for {
		inserts = inserts[:0]
		deletes = deletes[:0]
		cbs = cbs[:0]
		marks = marks[:0]
		total := 0
		for _, q := range b.rings {
			h, t := q.head.Load(), q.tail.Load()
			if b.maxBatch > 0 && t-h > uint64(b.maxBatch-total) {
				t = h + uint64(b.maxBatch-total)
			}
			for i := h; i < t; i++ {
				r := q.buf[i&q.mask]
				if r.done != nil {
					// The slot is ours until head advances; dropping the
					// closure now keeps a drained ring from retaining it
					// until the producer happens to overwrite the slot.
					cbs = append(cbs, r.done)
					q.buf[i&q.mask].done = nil
				}
				if r.Op == OpInsert {
					inserts = append(inserts, ftree.Entry[K, V]{Key: r.Key, Val: r.Val})
				} else {
					deletes = append(deletes, r.Key)
				}
			}
			if t != h {
				q.head.Store(t)
				marks = append(marks, mark{q, t})
				total += int(t - h)
			}
			if b.maxBatch > 0 && total >= b.maxBatch {
				break
			}
		}
		if total > 0 {
			// Pre-fill the combiner's arena for the whole gathered batch —
			// inserts and deletes in one sweep — so the commit's node
			// allocations come out of the pid-local magazine in O(total/M)
			// block transfers instead of touching the shared free lists per
			// node.  MultiInsert/MultiDelete self-reserve too, but after
			// this combined reservation those are O(1) no-ops.  The
			// magazine keeps its high-water capacity between commits, so a
			// steady batch size reserves for free.
			b.w.ReserveNodes(total + total/4)
			err := b.commit(inserts, deletes)
			if err == nil {
				b.batches.Add(1)
				b.applied.Add(int64(total))
				if int64(total) > b.maxSeen.Load() {
					b.maxSeen.Store(int64(total))
				}
			}
			// Watermarks advance even when the persist hook refused the
			// batch: "committed" means resolved — SubmitWait and Flush must
			// never wedge behind a poisoned log; only the callbacks carry
			// the verdict.
			for _, mk := range marks {
				mk.q.committed.Store(mk.seq)
			}
			// Completion callbacks fire after the watermarks: an async
			// waiter's callback and a SubmitWait on the same batch agree on
			// what "committed" means.  Exactly once per request: the gather
			// consumed each slot's callback before advancing head, and each
			// slot is gathered by exactly one commit (this one).
			for i, cb := range cbs {
				cb(err)
				cbs[i] = nil
			}
			continue // stay hot while work is flowing
		}
		select {
		case <-b.stop:
			// Final drain: clients must have stopped submitting.
			b.finalDrain()
			return
		case <-time.After(b.interval):
		}
	}
}

// commit applies one gathered batch under the writer slot, routing it
// through the persist hook when one is installed.  The hook receives a
// closure over the in-memory commit so it can bracket {apply, log} under
// its own ordering lock and group-sync afterwards; without a hook the
// closure just runs.
func (b *Batcher[K, V, A]) commit(inserts []ftree.Entry[K, V], deletes []K) error {
	do := func() uint64 {
		// Commit under the map's writer slot: one uncontended mutex per
		// batch (thousands of requests), so a cross-shard atomic install
		// or a fenced consistent view never has to chase a stream of
		// combiner commits — the combiner "respects the fence".  The
		// commit is GSN-stamped like any other (core stamps on Set), so
		// batched updates order correctly under ViewConsistent.
		b.m.LockWriterSlot()
		b.w.Update(func(tx *core.Txn[K, V, A]) {
			if len(inserts) > 0 {
				tx.InsertBatch(inserts, b.comb)
			}
			if len(deletes) > 0 {
				tx.DeleteBatch(deletes)
			}
		})
		b.m.UnlockWriterSlot()
		return b.w.LastStamp()
	}
	if b.persist != nil {
		return b.persist(inserts, deletes, do)
	}
	do()
	return nil
}

func (b *Batcher[K, V, A]) finalDrain() {
	var inserts []ftree.Entry[K, V]
	var deletes []K
	var cbs []func(error)
	for _, q := range b.rings {
		h, t := q.head.Load(), q.tail.Load()
		for i := h; i < t; i++ {
			r := q.buf[i&q.mask]
			if r.done != nil {
				cbs = append(cbs, r.done)
				q.buf[i&q.mask].done = nil
			}
			if r.Op == OpInsert {
				inserts = append(inserts, ftree.Entry[K, V]{Key: r.Key, Val: r.Val})
			} else {
				deletes = append(deletes, r.Key)
			}
		}
		q.head.Store(t)
	}
	var err error
	if len(inserts)+len(deletes) > 0 {
		err = b.commit(inserts, deletes)
		if err == nil {
			b.batches.Add(1)
			b.applied.Add(int64(len(inserts) + len(deletes)))
		}
	}
	for _, q := range b.rings {
		q.committed.Store(q.tail.Load())
	}
	// Shutdown keeps the exactly-once contract: every callback gathered by
	// the final drain fires here, after its commit, and no other commit can
	// have gathered it (head was advanced under this goroutine throughout).
	for _, cb := range cbs {
		cb(err)
	}
}

package batch

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvgc/internal/core"
	"mvgc/internal/ftree"
)

// read runs a read transaction on a leased handle: the combiner holds one
// pid, so tests never hard-code a reader pid next to it.
func read(m *core.Map[int64, int64, int64], f func(s core.Snapshot[int64, int64, int64])) {
	m.With(func(h *core.Handle[int64, int64, int64]) { h.Read(f) })
}

func newIntMap(t testing.TB, procs int) *core.Map[int64, int64, int64] {
	t.Helper()
	ops := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 256)
	m, err := core.NewMap(core.Config{Algorithm: "pswf", Procs: procs}, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSubmitFlush(t *testing.T) {
	m := newIntMap(t, 2)
	b := New(m, Config{Clients: 1, MaxLatency: time.Millisecond}, nil)
	b.Start()
	for i := int64(0); i < 100; i++ {
		b.Submit(0, Request[int64, int64]{Op: OpInsert, Key: i, Val: i * 3})
	}
	b.Flush(0)
	read(m, func(s core.Snapshot[int64, int64, int64]) {
		if s.Len() != 100 {
			t.Fatalf("Len = %d", s.Len())
		}
		if v, _ := s.Get(42); v != 126 {
			t.Fatalf("Get(42) = %d", v)
		}
	})
	b.Stop()
	m.Close()
	if m.Ops().Live() != 0 {
		t.Fatalf("leaked %d nodes", m.Ops().Live())
	}
}

func TestSubmitWaitDurability(t *testing.T) {
	m := newIntMap(t, 2)
	b := New(m, Config{Clients: 1, MaxLatency: time.Millisecond}, nil)
	b.Start()
	b.SubmitWait(0, Request[int64, int64]{Op: OpInsert, Key: 7, Val: 70})
	// After SubmitWait returns the write must be visible with no Flush.
	read(m, func(s core.Snapshot[int64, int64, int64]) {
		if v, ok := s.Get(7); !ok || v != 70 {
			t.Fatalf("Get(7) = %d,%v after SubmitWait", v, ok)
		}
	})
	b.Stop()
	m.Close()
}

func TestDeletesAndCombine(t *testing.T) {
	m := newIntMap(t, 2)
	comb := func(old, new int64) int64 { return old + new }
	b := New(m, Config{Clients: 1, MaxLatency: time.Millisecond}, comb)
	b.Start()
	for i := 0; i < 5; i++ {
		b.Submit(0, Request[int64, int64]{Op: OpInsert, Key: 1, Val: 10})
	}
	b.Submit(0, Request[int64, int64]{Op: OpInsert, Key: 2, Val: 1})
	b.Submit(0, Request[int64, int64]{Op: OpDelete, Key: 2})
	b.Flush(0)
	read(m, func(s core.Snapshot[int64, int64, int64]) {
		if v, _ := s.Get(1); v != 50 {
			t.Fatalf("combined value = %d, want 50", v)
		}
		if s.Has(2) {
			t.Fatal("deleted key survived the batch")
		}
	})
	b.Stop()
	m.Close()
}

// TestManyClientsNoLostUpdates: concurrent clients hammer disjoint key
// ranges while readers run; every submitted update must be present at the
// end and GC accounting must balance.
func TestManyClientsNoLostUpdates(t *testing.T) {
	const clients, perClient = 8, 3000
	m := newIntMap(t, 2)
	b := New(m, Config{Clients: clients, BufCap: 512, MaxLatency: time.Millisecond}, nil)
	b.Start()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := int64(c) * perClient
			for i := int64(0); i < perClient; i++ {
				b.Submit(c, Request[int64, int64]{Op: OpInsert, Key: base + i, Val: base + i})
			}
			b.Flush(c)
		}(c)
	}
	// A reader concurrently checks snapshot consistency.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			read(m, func(s core.Snapshot[int64, int64, int64]) {
				n := s.Len()
				sum := s.AugRange(0, clients*perClient)
				_ = n
				_ = sum
			})
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	read(m, func(s core.Snapshot[int64, int64, int64]) {
		if s.Len() != clients*perClient {
			t.Fatalf("Len = %d, want %d", s.Len(), clients*perClient)
		}
	})
	if b.Applied() != clients*perClient {
		t.Fatalf("Applied = %d", b.Applied())
	}
	if b.Batches() > b.Applied() {
		t.Fatal("more batches than requests")
	}
	b.Stop()
	m.Close()
	if m.Ops().Live() != 0 {
		t.Fatalf("leaked %d nodes", m.Ops().Live())
	}
}

// TestStopDrains: requests submitted before Stop must be committed by the
// final drain even if the combiner never woke for them.
func TestStopDrains(t *testing.T) {
	m := newIntMap(t, 2)
	b := New(m, Config{Clients: 1, MaxLatency: time.Hour}, nil) // never wakes on its own
	b.Start()
	time.Sleep(5 * time.Millisecond) // let the combiner park in its timer
	for i := int64(0); i < 10; i++ {
		b.Submit(0, Request[int64, int64]{Op: OpInsert, Key: i, Val: i})
	}
	b.Stop()
	read(m, func(s core.Snapshot[int64, int64, int64]) {
		if s.Len() != 10 {
			t.Fatalf("Len = %d after Stop drain", s.Len())
		}
	})
	m.Close()
}

// TestBackpressure: a tiny buffer forces Submit to block until the
// combiner catches up, without losing or reordering a client's updates.
func TestBackpressure(t *testing.T) {
	m := newIntMap(t, 2)
	b := New(m, Config{Clients: 1, BufCap: 4, MaxLatency: 100 * time.Microsecond}, nil)
	b.Start()
	rng := rand.New(rand.NewSource(1))
	last := map[int64]int64{}
	for i := 0; i < 5000; i++ {
		k := rng.Int63n(50)
		v := rng.Int63n(1 << 30)
		b.Submit(0, Request[int64, int64]{Op: OpInsert, Key: k, Val: v})
		last[k] = v
	}
	b.Flush(0)
	read(m, func(s core.Snapshot[int64, int64, int64]) {
		for k, v := range last {
			if got, _ := s.Get(k); got != v {
				t.Fatalf("key %d = %d, want %d (reordered within client)", k, got, v)
			}
		}
	})
	b.Stop()
	m.Close()
}

// TestMaxBatchRespected: the combiner never commits more than MaxBatch
// requests per transaction.
func TestMaxBatchRespected(t *testing.T) {
	m := newIntMap(t, 2)
	b := New(m, Config{Clients: 2, MaxLatency: time.Millisecond, MaxBatch: 64}, nil)
	b.Start()
	for i := int64(0); i < 1000; i++ {
		b.Submit(int(i%2), Request[int64, int64]{Op: OpInsert, Key: i, Val: i})
	}
	b.Flush(0)
	b.Flush(1)
	if b.MaxBatchSeen() > 64 {
		t.Fatalf("MaxBatchSeen = %d, cap 64", b.MaxBatchSeen())
	}
	b.Stop()
	m.Close()
}

// TestCombinerPublishesKeyVersions: on a key-versioned map the combiner's
// batch commits must move the written keys' version stripes like any other
// writer — otherwise batched writes would be invisible to the optimistic
// read validation of shard.Map.UpdateAtomicKeys and become a new unfenced
// writer class.  The recording rides in core.Txn.InsertBatch/DeleteBatch,
// so the combiner gets it without any code of its own; this pins that.
func TestCombinerPublishesKeyVersions(t *testing.T) {
	m := newIntMap(t, 3)
	m.EnableKeyVersions(func(k int64) uint64 { return uint64(k) }, 256)
	b := New(m, Config{Clients: 1, MaxLatency: time.Millisecond}, nil)
	b.Start()

	const k = int64(42)
	stripe := m.KeyStripe(k)
	w0 := m.StripeWord(stripe)
	b.SubmitWait(0, Request[int64, int64]{Op: OpInsert, Key: k, Val: 7})
	w1 := m.StripeWord(stripe)
	if !core.StableStripe(w1) || w1 <= w0 {
		t.Fatalf("batched insert left stripe at %#x (was %#x); combiner commits must bump key versions", w1, w0)
	}
	b.SubmitWait(0, Request[int64, int64]{Op: OpDelete, Key: k})
	if w2 := m.StripeWord(stripe); !core.StableStripe(w2) || w2 <= w1 {
		t.Fatalf("batched delete left stripe at %#x (was %#x)", w2, w1)
	}
	b.Stop()
	m.Close()
}

// TestSubmitAsyncExactlyOnce: every SubmitAsync callback fires exactly
// once, after the commit containing its request — the contract the
// pipelined network server's in-order response writers depend on.
func TestSubmitAsyncExactlyOnce(t *testing.T) {
	const n = 2000
	m := newIntMap(t, 2)
	b := New(m, Config{Clients: 2, BufCap: 64, MaxLatency: 100 * time.Microsecond}, nil)
	b.Start()
	fired := make([]atomic.Int32, n)
	var done atomic.Int32
	all := make(chan struct{})
	for i := int64(0); i < n; i++ {
		i := i
		b.SubmitAsync(int(i)%2, Request[int64, int64]{Op: OpInsert, Key: i, Val: i * 2}, func(err error) {
			if err != nil {
				t.Errorf("callback %d got error %v", i, err)
			}
			fired[i].Add(1)
			if done.Add(1) == n {
				close(all)
			}
		})
	}
	select {
	case <-all:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d callbacks fired", done.Load(), n)
	}
	// Callbacks fire after the watermark publication, so by now every
	// request is committed and visible.
	read(m, func(s core.Snapshot[int64, int64, int64]) {
		if s.Len() != n {
			t.Fatalf("Len = %d after all callbacks, want %d", s.Len(), n)
		}
	})
	b.Stop()
	for i := range fired {
		if c := fired[i].Load(); c != 1 {
			t.Fatalf("callback %d fired %d times", i, c)
		}
	}
	m.Close()
}

// TestSubmitAsyncShutdownDrain: callbacks for requests still buffered when
// Stop is called fire exactly once from the final drain — a server shutting
// down must complete every accepted write's response, never drop or double
// it.
func TestSubmitAsyncShutdownDrain(t *testing.T) {
	const n = 100
	m := newIntMap(t, 2)
	b := New(m, Config{Clients: 1, MaxLatency: time.Hour}, nil) // combiner never wakes on its own
	b.Start()
	time.Sleep(5 * time.Millisecond) // let it park in its timer
	fired := make([]atomic.Int32, n)
	for i := int64(0); i < n; i++ {
		i := i
		b.SubmitAsync(0, Request[int64, int64]{Op: OpInsert, Key: i, Val: i}, func(error) { fired[i].Add(1) })
	}
	b.Stop() // final drain commits and must fire every callback
	for i := range fired {
		if c := fired[i].Load(); c != 1 {
			t.Fatalf("callback %d fired %d times across shutdown", i, c)
		}
	}
	read(m, func(s core.Snapshot[int64, int64, int64]) {
		if s.Len() != n {
			t.Fatalf("Len = %d after Stop drain", s.Len())
		}
	})
	m.Close()
}

// TestPersistHook: the persist hook brackets every batch commit, sees the
// commit GSN, and its error (fail-fast: commit closure never run) is
// delivered to every callback in the batch while watermarks still advance.
func TestPersistHook(t *testing.T) {
	m := newIntMap(t, 2)
	defer m.Close()
	b := New(m, Config{Clients: 1, MaxLatency: 100 * time.Microsecond}, nil)
	var gsns []uint64
	var failing atomic.Bool
	errRefused := errors.New("log refused")
	b.SetPersist(func(ins []ftree.Entry[int64, int64], dels []int64, commit func() uint64) error {
		if failing.Load() {
			return errRefused // fail fast: no memory commit either
		}
		g := commit()
		if g != 0 {
			gsns = append(gsns, g)
		}
		return nil
	})
	b.Start()

	okCh := make(chan error, 1)
	b.SubmitAsync(0, Request[int64, int64]{Op: OpInsert, Key: 1, Val: 10}, func(err error) { okCh <- err })
	if err := <-okCh; err != nil {
		t.Fatalf("healthy persist delivered error %v", err)
	}
	if len(gsns) == 0 || gsns[0] == 0 {
		t.Fatalf("persist hook saw no commit GSN: %v", gsns)
	}

	failing.Store(true)
	b.SubmitAsync(0, Request[int64, int64]{Op: OpInsert, Key: 2, Val: 20}, func(err error) { okCh <- err })
	if err := <-okCh; !errors.Is(err, errRefused) {
		t.Fatalf("refused batch delivered %v, want %v", err, errRefused)
	}
	b.Flush(0) // must not wedge on a failing persist hook
	read(m, func(s core.Snapshot[int64, int64, int64]) {
		if _, ok := s.Get(2); ok {
			t.Fatal("refused batch was committed to memory")
		}
		if v, ok := s.Get(1); !ok || v != 10 {
			t.Fatal("accepted batch missing")
		}
	})
	b.Stop()
}

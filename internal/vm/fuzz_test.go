package vm

import "testing"

// FuzzPSWFSequential decodes fuzz input into a sequential operation
// history over the PSWF object and checks it against the sequential
// specification plus exactly-once collection.  Run long with
// `go test -fuzz FuzzPSWFSequential ./internal/vm`.
func FuzzPSWFSequential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1, 2})
	f.Add([]byte{0, 0, 1, 1, 2, 2, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		const procs = 3
		m := NewPSWF(procs, &payload{id: 0})
		current := uint64(0)
		nextID := uint64(1)
		held := map[int]uint64{}
		holders := map[uint64]int{}
		returned := map[uint64]bool{}
		phase := make([]int, procs)
		release := func(k int) {
			v := held[k]
			delete(held, k)
			holders[v]--
			out := m.Release(k)
			dead := v != current && holders[v] == 0 && !returned[v]
			if dead {
				if len(out) != 1 || out[0].id != v {
					t.Fatalf("release(%d) = %v, want [%d]", k, ids(out), v)
				}
				returned[v] = true
			} else if len(out) != 0 {
				t.Fatalf("release(%d) = %v, want []", k, ids(out))
			}
		}
		for _, b := range data {
			k := int(b) % procs
			switch phase[k] {
			case 0:
				got := m.Acquire(k)
				if got.id != current {
					t.Fatalf("acquire(%d) = %d, current %d", k, got.id, current)
				}
				held[k] = got.id
				holders[got.id]++
				phase[k] = 1
			case 1:
				if b&0x80 != 0 {
					ok := m.Set(k, &payload{id: nextID})
					if want := held[k] == current; ok != want {
						t.Fatalf("set(%d) = %v, want %v", k, ok, want)
					}
					if ok {
						current = nextID
					}
					nextID++
					phase[k] = 2
				} else {
					release(k)
					phase[k] = 0
				}
			case 2:
				release(k)
				phase[k] = 0
			}
		}
	})
}

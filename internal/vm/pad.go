package vm

import "sync/atomic"

// Cache-line padded atomics.  The announcement array is written by its
// owning process on every Acquire/Release and scanned by setters and
// releasers; without padding, neighbouring slots share cache lines and every
// announcement invalidates unrelated processes' lines.  The paper's
// contention bounds (Theorem 3.5) are about logical contention, but padding
// keeps the physical measurement honest on real hardware.

// word is a cache-line padded atomic uint64.
type word struct {
	v atomic.Uint64
	_ [7]uint64
}

func (w *word) load() uint64             { return w.v.Load() }
func (w *word) store(x uint64)           { w.v.Store(x) }
func (w *word) cas(old, new uint64) bool { return w.v.CompareAndSwap(old, new) }

// ptr is a cache-line padded atomic pointer.
type ptr[T any] struct {
	p atomic.Pointer[T]
	_ [6]uint64
}

// counter is a cache-line padded statistics counter, written by one process
// and read by anyone.
type counter struct {
	v atomic.Int64
	_ [7]uint64
}

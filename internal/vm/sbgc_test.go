package vm

import "testing"

// TestSBGCCompactionKeepsPinnedInterval pins down the interval-keep rule:
// under a pinned reader, a compacting Release returns every retired version
// EXCEPT the one whose lifetime interval contains the reader's announced
// timestamp — including the intermediate versions the reader skipped over,
// which HP-style exact-pointer protection would also free but epoch-based
// schemes strand.  procs = 4, so the compaction threshold is 2P = 8.
func TestSBGCCompactionKeepsPinnedInterval(t *testing.T) {
	m := NewSBGC(4, &payload{id: 0})
	var id uint64
	write := func() []*payload {
		m.Acquire(0)
		id++
		if !m.Set(0, &payload{id: id}) {
			t.Fatalf("solo Set %d failed", id)
		}
		return m.Release(0)
	}

	// v1..v3; the reader pins v3.
	for i := 0; i < 3; i++ {
		if out := write(); len(out) != 0 {
			t.Fatalf("early release returned %v before the threshold", ids(out))
		}
	}
	pinned := m.Acquire(1)
	if pinned.id != 3 {
		t.Fatalf("reader pinned id %d, want 3", pinned.id)
	}

	// v4..v7 stay under the threshold; the 8th Set (v8) retires the 8th
	// version and its Release compacts against the reader's announcement.
	for i := 0; i < 4; i++ {
		if out := write(); len(out) != 0 {
			t.Fatalf("early release returned %v before the threshold", ids(out))
		}
	}
	freed := write()
	want := map[uint64]bool{0: true, 1: true, 2: true, 4: true, 5: true, 6: true, 7: true}
	if len(freed) != len(want) {
		t.Fatalf("compacting release returned %v, want exactly {0,1,2,4,5,6,7}", ids(freed))
	}
	for _, f := range freed {
		if !want[f.id] {
			t.Fatalf("compaction freed version %d (reader pinned 3)", f.id)
		}
		if f.id == pinned.id {
			t.Fatal("compaction freed the pinned version")
		}
	}
	// Survivors: the pinned v3 and the current v8.
	if got := m.Uncollected(); got != 2 {
		t.Fatalf("Uncollected = %d after compaction, want 2 (pinned + current)", got)
	}
	if pinned.id != 3 {
		t.Fatal("pinned version mutated under compaction")
	}

	// Once the reader leaves, the next compaction collects v3 too.
	m.Release(1)
	var later []*payload
	for len(later) == 0 {
		later = append(later, write()...)
	}
	sawPinned := false
	for _, f := range later {
		if f.id == 3 {
			sawPinned = true
		}
	}
	if !sawPinned {
		t.Fatalf("post-release compaction %v never returned the unpinned v3", ids(later))
	}

	// Full accounting: everything created comes back exactly once.
	seen := map[uint64]bool{}
	for _, f := range freed {
		seen[f.id] = true
	}
	for _, f := range later {
		if seen[f.id] {
			t.Fatalf("version %d returned twice", f.id)
		}
		seen[f.id] = true
	}
	for _, f := range m.Drain() {
		if seen[f.id] {
			t.Fatalf("version %d returned twice in drain", f.id)
		}
		seen[f.id] = true
	}
	if len(seen) != int(id)+1 {
		t.Fatalf("returned %d distinct versions, want %d", len(seen), id+1)
	}
}

// TestSBGCTwoPinsTwoSurvivors: two readers pinned to different intervals
// each protect exactly their own version; everything between and around
// them is compacted away.
func TestSBGCTwoPinsTwoSurvivors(t *testing.T) {
	m := NewSBGC(4, &payload{id: 0})
	var id uint64
	write := func() []*payload {
		m.Acquire(0)
		id++
		if !m.Set(0, &payload{id: id}) {
			t.Fatalf("solo Set %d failed", id)
		}
		return m.Release(0)
	}

	write() // v1
	a := m.Acquire(1)
	if a.id != 1 {
		t.Fatalf("reader 1 pinned %d, want 1", a.id)
	}
	write() // v2
	write() // v3
	write() // v4
	b := m.Acquire(2)
	if b.id != 4 {
		t.Fatalf("reader 2 pinned %d, want 4", b.id)
	}
	for i := 0; i < 3; i++ {
		write() // v5..v7
	}
	freed := write() // v8: retired list hits 2P = 8, compacts
	want := map[uint64]bool{0: true, 2: true, 3: true, 5: true, 6: true, 7: true}
	if len(freed) != len(want) {
		t.Fatalf("compacting release returned %v, want exactly {0,2,3,5,6,7}", ids(freed))
	}
	for _, f := range freed {
		if !want[f.id] {
			t.Fatalf("compaction freed version %d with pins on 1 and 4", f.id)
		}
	}
	if got := m.Uncollected(); got != 3 {
		t.Fatalf("Uncollected = %d, want 3 (two pins + current)", got)
	}
	m.Release(1)
	m.Release(2)
}

// TestSBGCSteadyStateAllocs: once the wrapper pool and scratch buffers are
// warm, a full acquire/set/release cycle allocates only the caller's
// payload — the compaction slow path reuses the announcement scratch, the
// retired list and the node pool in place.
func TestSBGCSteadyStateAllocs(t *testing.T) {
	m := NewSBGC(2, &payload{id: 0})
	var id uint64
	cycle := func() {
		m.Acquire(0)
		id++
		if !m.Set(0, &payload{id: id}) {
			t.Fatalf("solo Set %d failed", id)
		}
		m.Release(0)
	}
	for i := 0; i < 64; i++ {
		cycle() // warm the pool past the first few compactions
	}
	avg := testing.AllocsPerRun(500, cycle)
	if avg > 1.1 {
		t.Errorf("steady-state cycle allocates %.2f objects/op, want only the payload (1)", avg)
	}
}

// FuzzSBGCSequential decodes fuzz input into a sequential operation history
// and checks the safety half of the specification (SBGC is imprecise, so
// unlike FuzzPSWFSequential it cannot demand exact releases): a Release may
// return only versions that are not current, held by nobody, and never
// returned before — and at the end of the history every version created
// comes back exactly once across releases and Drain.
func FuzzSBGCSequential(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1, 2})
	f.Add([]byte{0, 0, 1, 1, 2, 2, 3, 3})
	f.Add([]byte{0, 0x80, 0, 1, 0, 0x80, 0, 2, 0x81, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		const procs = 3
		m := NewSBGC(procs, &payload{id: 0})
		current := uint64(0)
		nextID := uint64(1)
		held := map[int]uint64{}
		holders := map[uint64]int{}
		returned := map[uint64]bool{}
		phase := make([]int, procs)
		release := func(k int) {
			v := held[k]
			delete(held, k)
			holders[v]--
			if holders[v] == 0 {
				delete(holders, v)
			}
			for _, f := range m.Release(k) {
				if f.id == current {
					t.Fatalf("release(%d) returned current version %d", k, f.id)
				}
				if holders[f.id] > 0 {
					t.Fatalf("release(%d) returned held version %d", k, f.id)
				}
				if returned[f.id] {
					t.Fatalf("version %d returned twice", f.id)
				}
				returned[f.id] = true
			}
		}
		for _, b := range data {
			k := int(b) % procs
			switch phase[k] {
			case 0:
				got := m.Acquire(k)
				if got.id != current {
					t.Fatalf("acquire(%d) = %d, current %d", k, got.id, current)
				}
				held[k] = got.id
				holders[got.id]++
				phase[k] = 1
			case 1:
				if b&0x80 != 0 {
					ok := m.Set(k, &payload{id: nextID})
					if want := held[k] == current; ok != want {
						t.Fatalf("set(%d) = %v, want %v", k, ok, want)
					}
					if ok {
						current = nextID
					}
					nextID++
					phase[k] = 2
				} else {
					release(k)
					phase[k] = 0
				}
			case 2:
				release(k)
				phase[k] = 0
			}
		}
		// Quiesce and account for every version that entered the system:
		// ids of failed Sets never did, so count is 1 (initial) + successes
		// = current's id has no gaps... successes carry arbitrary ids, so
		// count via the model instead.
		for _, f := range m.Drain() {
			if returned[f.id] {
				t.Fatalf("drain returned version %d twice", f.id)
			}
			returned[f.id] = true
		}
	})
}

// Package vm implements the Version Maintenance (VM) problem from
// Ben-David, Blelloch, Sun and Wei, "Multiversion Concurrency with Bounded
// Delay and Precise Garbage Collection" (SPAA 2019), Section 3.
//
// A Version Maintenance object manages the handoff of immutable versions
// between one-or-more writers and any number of readers.  It supports three
// operations, all taking the identifier k of the calling process:
//
//   - Acquire(k) returns the current version and guarantees it cannot be
//     collected until the matching Release(k).
//   - Set(k, d) installs d as the new current version.  It may fail (return
//     false) only if another Set succeeded since this process's last Acquire.
//   - Release(k) declares the acquired version no longer needed and returns
//     the versions whose last user has now departed, so the caller can
//     collect them.
//
// The operations must be called in acquire → [set] → release order for each
// k, and no two operations with the same k may run concurrently.  A solution
// is precise when Release returns a version exactly at the moment it stops
// being live (Definition 3.2), which implies each Release returns at most
// one version.
//
// Six solutions match the paper's evaluation (Section 7.1), plus one from
// the follow-on space-bounded GC literature:
//
//	PSWF   precise, safe and wait-free (Algorithm 4, the paper's contribution)
//	PSLF   PSWF without helping; precise and lock-free (Section 7.1)
//	HP     hazard-pointer based; safe but imprecise (Section 6)
//	Epoch  epoch based; safe but imprecise (Section 6)
//	RCU    read-copy-update based; precise but the writer blocks (Section 6)
//	Base   no maintenance at all; the no-VM baseline of Table 2
//	SBGC   timestamp-interval compaction; safe, imprecise, space-bounded
//	       under pinned readers (after arXiv 2108.02775 / 2212.13557)
package vm

// Maintainer is a solution to the Version Maintenance problem for versions
// of type *T.  Implementations must be safe for concurrent use by up to
// Procs processes, where process k only ever invokes operations with its own
// identifier and respects the acquire → [set] → release protocol order.
type Maintainer[T any] interface {
	// Acquire returns the current version and protects it from collection
	// until the next Release(k).  It never returns nil after the object was
	// initialized with a non-nil version.
	Acquire(k int) *T

	// Set installs data as the current version.  It returns false without
	// effect if a conflicting Set succeeded since this process's Acquire.
	Set(k int, data *T) bool

	// Release ends this process's use of its acquired version and returns
	// the versions that may now be collected.  Precise implementations
	// return at most one version, and exactly when the caller was its last
	// user.  Imprecise implementations may return a batch, or defer
	// versions to a later Release.
	Release(k int) []*T

	// ReleaseInto is Release appending the collectable versions to out
	// instead of allocating a fresh slice, so a caller that releases on
	// every transaction (the transaction layer's cleanup phase) can reuse
	// one per-process buffer and keep the commit path allocation-free.
	ReleaseInto(k int, out []*T) []*T

	// Procs reports the number of processes P the object was created for.
	Procs() int

	// Uncollected reports the number of versions currently retained by the
	// algorithm: the current version plus every version that has been
	// superseded but not yet handed back by a Release.  This is the
	// "number of live versions" metric of Table 2 and Figure 6.
	Uncollected() int

	// Drain returns every version still retained, exactly once, including
	// the current version.  It must only be called after all processes
	// have stopped (quiescence), and it leaves the object unusable.  It
	// exists so callers can hand the remaining versions to their collector
	// and verify precise end-of-run accounting.
	Drain() []*T

	// Name identifies the algorithm, e.g. "pswf" or "epoch".
	Name() string
}

// version is a packed (timestamp, index) pair as used by Algorithm 4.  The
// timestamp occupies the high bits and increases monotonically over the
// lifetime of a Maintainer; the index locates the version's slot in the
// status and data arrays.  The zero value is the paper's ⟨⊥,⊥⟩ sentinel:
// real versions always carry timestamp ≥ 1.
type version uint64

const (
	idxBits = 16
	idxMask = 1<<idxBits - 1
)

// MaxProcs is the largest process count any algorithm supports: the precise
// algorithms keep 3P+1 version slots and pack a slot index into idxBits
// bits, so 3P must not exceed idxMask.
const MaxProcs = idxMask / 3

func mkVersion(ts uint64, idx int) version {
	return version(ts<<idxBits | uint64(idx))
}

func (v version) ts() uint64 { return uint64(v) >> idxBits }
func (v version) idx() int   { return int(uint64(v) & idxMask) }

// Announcement words pack (version, help) with the help flag in bit 0, so
// the zero word is the empty announcement ⟨⊥, false⟩.
func annPack(v version, help bool) uint64 {
	w := uint64(v) << 1
	if help {
		w |= 1
	}
	return w
}

func annVer(w uint64) version { return version(w >> 1) }
func annHelp(w uint64) bool   { return w&1 != 0 }

// Status words pack (version, status) with the status in bits 0-1, so the
// zero word is the empty slot ⟨⊥, usable⟩ that Set scans for.
const (
	stUsable  = 0
	stPending = 1
	stFrozen  = 2
)

func stPack(v version, st uint64) uint64 { return uint64(v)<<2 | st }
func stVer(w uint64) version             { return version(w >> 2) }
func stStatus(w uint64) uint64           { return w & 3 }

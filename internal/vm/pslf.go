package vm

// PSLF is the paper's "algorithm without helping" (Section 7.1): the PSWF
// data structures and release path, but Set never helps announcements, so
// an Acquire may have to retry each time the current version moves.  A
// retry only happens when some Set succeeded, hence the algorithm is
// lock-free rather than wait-free; it remains precise and safe.
//
// Releases still help announcements of the version they are freezing — that
// helping is what makes the frozen state final, and removing it would break
// precision, not just progress.
type PSLF[T any] struct {
	p int
	v word
	s []word
	a []word
	d []ptr[T]
}

// NewPSLF returns a PSLF Version Maintenance object for p processes with
// the given initial version.
func NewPSLF[T any](p int, initial *T) *PSLF[T] {
	m := &PSLF[T]{
		p: p,
		s: make([]word, 3*p+1),
		a: make([]word, p),
		d: make([]ptr[T], 3*p+1),
	}
	v0 := mkVersion(1, 0)
	m.d[0].p.Store(initial)
	m.s[0].store(stPack(v0, stUsable))
	m.v.store(uint64(v0))
	return m
}

func (m *PSLF[T]) Name() string { return "pslf" }
func (m *PSLF[T]) Procs() int   { return m.p }

func (m *PSLF[T]) getData(v version) *T { return m.d[v.idx()].p.Load() }

// Acquire announces and revalidates until an announcement sticks.  With no
// setter-side helping the loop is unbounded, but each extra iteration
// witnesses a distinct successful Set, so the system as a whole progresses.
func (m *PSLF[T]) Acquire(k int) *T {
	u := version(m.v.load())
	m.a[k].store(annPack(u, true))
	for {
		if version(m.v.load()) == u {
			m.a[k].cas(annPack(u, true), annPack(u, false))
			return m.getData(annVer(m.a[k].load()))
		}
		v := version(m.v.load())
		if !m.a[k].cas(annPack(u, true), annPack(v, true)) {
			// A releaser committed our announcement while freezing u's
			// predecessor; whatever is in A[k] is ours to use.
			return m.getData(annVer(m.a[k].load()))
		}
		u = v
	}
}

// Set is Algorithm 4's set without the helping loop.
func (m *PSLF[T]) Set(k int, data *T) bool {
	oldVer := annVer(m.a[k].load())
	slot := -1
	var newVer version
	for i := range m.s {
		if m.s[i].load() == 0 {
			newVer = mkVersion(version(m.v.load()).ts()+1, i)
			if m.s[i].cas(0, stPack(newVer, stUsable)) {
				m.d[i].p.Store(data)
				slot = i
				break
			}
		}
	}
	if slot < 0 {
		return false
	}
	if m.v.cas(uint64(oldVer), uint64(newVer)) {
		return true
	}
	m.s[slot].store(0)
	return false
}

// Release is identical to PSWF's: the usable → pending → frozen → empty
// status machine with releaser-side helping.
func (m *PSLF[T]) Release(k int) []*T { return m.ReleaseInto(k, nil) }

// ReleaseInto is Release appending to a caller-provided buffer; see
// Maintainer.
func (m *PSLF[T]) ReleaseInto(k int, out []*T) []*T {
	v := annVer(m.a[k].load())
	m.a[k].store(0)
	if version(m.v.load()) == v {
		return out
	}
	si := v.idx()
	s := m.s[si].load()
	if stVer(s) != v {
		return out
	}
	if stStatus(s) == stUsable {
		if !m.s[si].cas(s, stPack(v, stPending)) {
			return out
		}
		for i := 0; i < m.p; i++ {
			a := m.a[i].load()
			if a == annPack(v, true) {
				m.a[i].cas(a, annPack(v, false))
			}
		}
		s = stPack(v, stFrozen)
		m.s[si].store(s)
	}
	if stStatus(s) == stFrozen {
		for i := 0; i < m.p; i++ {
			if m.a[i].load() == annPack(v, false) {
				return out
			}
		}
		data := m.d[si].p.Load()
		if m.s[si].cas(s, 0) {
			return append(out, data)
		}
		return out
	}
	return out
}

// Uncollected counts occupied status slots, as in PSWF.
func (m *PSLF[T]) Uncollected() int {
	n := 0
	for i := range m.s {
		if m.s[i].load() != 0 {
			n++
		}
	}
	return n
}

// Drain returns all retained versions exactly once; see Maintainer.Drain.
func (m *PSLF[T]) Drain() []*T {
	var out []*T
	for i := range m.s {
		if m.s[i].load() != 0 {
			out = append(out, m.d[i].p.Load())
			m.s[i].store(0)
		}
	}
	m.v.store(0)
	return out
}

package vm

import (
	"runtime"
	"sync/atomic"
)

// RCU is the read-copy-update based Version Maintenance solution of
// Section 6, in the style of the Citrus RCU used by the paper: read_lock
// records the current grace period in the caller's padded slot, and
// synchronize advances the grace period and waits for every read-side
// critical section that began before the advance.
//
// RCU is precise — at most two versions exist and the old one is returned
// the moment its last pre-existing reader leaves — but the writer's Release
// blocks on readers, which is exactly the behaviour Table 2 shows as
// collapsed update throughput under long queries.
type RCU[T any] struct {
	p    int
	cur  atomic.Pointer[T]
	gp   atomic.Uint64 // grace-period counter, even values; bit 0 of a slot means "reading"
	rc   []word        // per-process read-side state: 0 = quiescent, gp|1 = reading
	acq  []ptr[T]      // per-process acquired version (private)
	pend []ptr[T]      // per-process version awaiting a grace period (private)
	live counter       // 1 or 2
}

// NewRCU returns an RCU-based Version Maintenance object for p processes.
func NewRCU[T any](p int, initial *T) *RCU[T] {
	m := &RCU[T]{
		p:    p,
		rc:   make([]word, p),
		acq:  make([]ptr[T], p),
		pend: make([]ptr[T], p),
	}
	m.cur.Store(initial)
	m.gp.Store(2)
	m.live.v.Store(1)
	return m
}

func (m *RCU[T]) Name() string { return "rcu" }
func (m *RCU[T]) Procs() int   { return m.p }

// Acquire enters a read-side critical section and returns the current
// version.  Wait-free, O(1).
func (m *RCU[T]) Acquire(k int) *T {
	m.rc[k].store(m.gp.Load() | 1)
	v := m.cur.Load()
	m.acq[k].p.Store(v)
	return v
}

// Set publishes the new version; the replaced version is remembered so the
// following Release can wait out its readers and return it.
func (m *RCU[T]) Set(k int, data *T) bool {
	old := m.acq[k].p.Load()
	if !m.cur.CompareAndSwap(old, data) {
		return false
	}
	m.pend[k].p.Store(old)
	m.live.v.Add(1)
	return true
}

// Release leaves the read-side critical section.  If the caller's Set
// succeeded it then synchronizes — blocking until every reader that
// predates the new version has left — and returns the superseded version.
func (m *RCU[T]) Release(k int) []*T { return m.ReleaseInto(k, nil) }

// ReleaseInto is Release appending to a caller-provided buffer; see
// Maintainer.
func (m *RCU[T]) ReleaseInto(k int, out []*T) []*T {
	m.rc[k].store(0)
	m.acq[k].p.Store(nil)
	old := m.pend[k].p.Load()
	if old == nil {
		return out
	}
	m.pend[k].p.Store(nil)
	m.synchronize()
	m.live.v.Add(-1)
	return append(out, old)
}

// synchronize starts a new grace period and waits for all read-side
// critical sections that existed when it began.
func (m *RCU[T]) synchronize() {
	next := m.gp.Add(2)
	for i := 0; i < m.p; i++ {
		for {
			v := m.rc[i].load()
			if v == 0 || v >= next {
				break // quiescent, or started after the grace period began
			}
			runtime.Gosched()
		}
	}
}

// Uncollected is at most 2: the current version plus at most one awaiting a
// grace period.
func (m *RCU[T]) Uncollected() int { return int(m.live.v.Load()) }

// Drain returns any pending version and the current version exactly once.
func (m *RCU[T]) Drain() []*T {
	var out []*T
	for k := range m.pend {
		if v := m.pend[k].p.Load(); v != nil {
			out = append(out, v)
			m.pend[k].p.Store(nil)
		}
	}
	if c := m.cur.Load(); c != nil {
		out = append(out, c)
		m.cur.Store(nil)
	}
	m.live.v.Store(0)
	return out
}

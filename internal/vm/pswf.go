package vm

// PSWF is the paper's precise, safe and wait-free solution to the Version
// Maintenance problem (Algorithm 4).
//
// Data layout (Figure 3): a current-version word V, a status array S of
// 3P+1 slots each holding ⟨version, usable|pending|frozen⟩, a data array D
// parallel to S, and an announcement array A of P slots each holding
// ⟨version, help⟩.
//
// Cost bounds (Theorems 3.4 and 3.5): Acquire takes O(1) steps, Set and
// Release take O(P) steps; in the single-writer setting every operation has
// O(1) amortized contention per step.  The steps* fields expose instrumented
// shared-memory step counts so the bounds can be checked by tests.
type PSWF[T any] struct {
	p int
	v word     // V: the current version
	s []word   // S[3P+1]: version statuses
	a []word   // A[P]: announcements
	d []ptr[T] // D[3P+1]: data pointers

	// instr enables per-call shared-memory step counting (Table 1 checks).
	instr bool
	steps []counter // per-process step count for the last instrumented call
	casA  counter   // total CAS instructions executed on A (Lemma B.13)
}

// NewPSWF returns a PSWF Version Maintenance object for p processes with
// the given initial version.  The initial version occupies slot 0 with
// timestamp 1.
func NewPSWF[T any](p int, initial *T) *PSWF[T] {
	m := &PSWF[T]{
		p: p,
		s: make([]word, 3*p+1),
		a: make([]word, p),
		d: make([]ptr[T], 3*p+1),
	}
	v0 := mkVersion(1, 0)
	m.d[0].p.Store(initial)
	m.s[0].store(stPack(v0, stUsable))
	m.v.store(uint64(v0))
	return m
}

// NewPSWFInstrumented is NewPSWF with shared-memory step counting enabled;
// see StepCount.
func NewPSWFInstrumented[T any](p int, initial *T) *PSWF[T] {
	m := NewPSWF(p, initial)
	m.instr = true
	m.steps = make([]counter, p)
	return m
}

func (m *PSWF[T]) Name() string { return "pswf" }
func (m *PSWF[T]) Procs() int   { return m.p }

// StepCount returns the number of shared-memory operations executed by
// process k's last Acquire/Set/Release when instrumentation is enabled.
func (m *PSWF[T]) StepCount(k int) int64 { return m.steps[k].v.Load() }

func (m *PSWF[T]) step(k int, n int64) {
	if m.instr {
		m.steps[k].v.Add(n)
	}
}

func (m *PSWF[T]) resetSteps(k int) {
	if m.instr {
		m.steps[k].v.Store(0)
	}
}

// annCAS performs a CAS on announcement slot i, counting it toward the
// Lemma B.13 bound when instrumentation is on.
func (m *PSWF[T]) annCAS(i int, old, new uint64) bool {
	if m.instr {
		m.casA.v.Add(1)
	}
	return m.a[i].cas(old, new)
}

// AnnouncementCASCount returns the total number of CAS instructions
// executed on the announcement array (instrumented mode only); Lemma B.13
// bounds it by 8 CASes per Acquire.
func (m *PSWF[T]) AnnouncementCASCount() int64 { return m.casA.v.Load() }

func (m *PSWF[T]) getData(v version) *T { return m.d[v.idx()].p.Load() }

// Acquire implements Algorithm 4's acquire(k): read the current version,
// announce it with the help flag raised, and commit it by lowering the flag
// once the announced version is revalidated against V.  If V moves twice
// while we retry, some successful Set is guaranteed to have committed a
// version into A[k] on our behalf (Lemma B.2), so the loop is bounded by
// two iterations and the operation is wait-free with O(1) steps.
func (m *PSWF[T]) Acquire(k int) *T {
	m.resetSteps(k)
	u := version(m.v.load()) // read current version V
	m.a[k].store(annPack(u, true))
	if version(m.v.load()) == u {
		m.annCAS(k, annPack(u, true), annPack(u, false))
		m.step(k, 5)
		return m.getData(annVer(m.a[k].load()))
	}
	m.step(k, 3)
	// Try again with the new version, at most twice.
	for i := 0; i < 2; i++ {
		v := version(m.v.load())
		if !m.annCAS(k, annPack(u, true), annPack(v, true)) {
			// A Set or Release helped us: our announcement was committed.
			m.step(k, 4)
			return m.getData(annVer(m.a[k].load()))
		}
		if version(m.v.load()) == v {
			m.annCAS(k, annPack(v, true), annPack(v, false))
			m.step(k, 6)
			return m.getData(annVer(m.a[k].load()))
		}
		m.step(k, 3)
		u = v
	}
	// Two version changes were observed, so a successful Set performed its
	// three helping CASes on A[k] and committed a version for us.
	m.step(k, 2)
	return m.getData(annVer(m.a[k].load()))
}

// Set implements Algorithm 4's set(k, data): claim an empty slot in S for
// the new version, help every raised announcement so no Acquire is starved,
// then CAS the new version into V.  It aborts (returns false) only when a
// conflicting successful Set is guaranteed to exist (Lemma B.10).
func (m *PSWF[T]) Set(k int, data *T) bool {
	m.resetSteps(k)
	oldVer := annVer(m.a[k].load()) // the version this process acquired
	m.step(k, 1)

	// Find an empty slot for the new version.  S has 3P+1 slots and at most
	// 2P can be occupied at once, so finding none proves we overlapped
	// 2P+1 other Sets, one of which must have succeeded.
	slot := -1
	var newVer version
	for i := range m.s {
		m.step(k, 1)
		if m.s[i].load() == 0 { // ⟨empty, usable⟩
			newVer = mkVersion(version(m.v.load()).ts()+1, i)
			m.step(k, 2)
			if m.s[i].cas(0, stPack(newVer, stUsable)) {
				m.d[i].p.Store(data)
				m.step(k, 1)
				slot = i
				break
			}
		}
	}
	if slot < 0 {
		return false
	}

	// Try to help everyone; three CASes guarantee the help lands because an
	// Acquire can thwart at most two of them (Lemma B.2).
	for i := 0; i < m.p; i++ {
		for j := 0; j < 3; j++ {
			a := m.a[i].load()
			m.step(k, 1)
			if annHelp(a) {
				if version(m.v.load()) != oldVer {
					// A conflicting Set succeeded.  Algorithm 4 returns
					// here without clearing S[slot]; we clear it so the
					// slot does not leak — the claimed version was never
					// installed in V, so no Acquire can have committed it
					// (see DESIGN.md, "Set-failure slot reclamation").
					m.s[slot].store(0)
					m.step(k, 2)
					return false
				}
				m.annCAS(i, a, annPack(oldVer, false))
				m.step(k, 2)
			}
		}
	}

	if m.v.cas(uint64(oldVer), uint64(newVer)) {
		m.step(k, 1)
		return true
	}
	// Lost the race: clear the slot we occupied so others can use it.
	m.s[slot].store(0)
	m.step(k, 2)
	return false
}

// Release implements Algorithm 4's release(k).  It clears this process's
// announcement, then drives the released version's status machine:
// usable → pending (one releaser wins and helps outstanding announcements
// of this version) → frozen (no new process can ever commit it) → empty.
// The releaser that erases the frozen status owns the version and returns
// it for collection; everyone else returns nil.  Precision (Theorem 3.3):
// the version is returned exactly when it stops being live.
func (m *PSWF[T]) Release(k int) []*T { return m.ReleaseInto(k, nil) }

// ReleaseInto is Release appending to a caller-provided buffer, so the
// transaction layer's per-commit cleanup allocates nothing; see Maintainer.
func (m *PSWF[T]) ReleaseInto(k int, out []*T) []*T {
	m.resetSteps(k)
	v := annVer(m.a[k].load())
	m.a[k].store(0) // ⟨empty, false⟩
	m.step(k, 2)
	if version(m.v.load()) == v {
		m.step(k, 1)
		return out // still the current version: live by definition
	}
	si := v.idx()
	s := m.s[si].load()
	m.step(k, 2)
	if stVer(s) != v {
		// Some other Release of v already returned it and the slot was
		// cleared or reused.
		return out
	}
	if stStatus(s) == stUsable {
		if !m.s[si].cas(s, stPack(v, stPending)) {
			m.step(k, 1)
			return out // another releaser of v is scanning; it will finish
		}
		// Help every process that announced v so that after the freeze no
		// Acquire of v can be in limbo.
		for i := 0; i < m.p; i++ {
			a := m.a[i].load()
			m.step(k, 1)
			if a == annPack(v, true) {
				m.annCAS(i, a, annPack(v, false))
				m.step(k, 1)
			}
		}
		s = stPack(v, stFrozen)
		m.s[si].store(s)
		m.step(k, 1)
	}
	if stStatus(s) == stFrozen {
		for i := 0; i < m.p; i++ {
			m.step(k, 1)
			if m.a[i].load() == annPack(v, false) {
				return out // someone still has v committed: v is live
			}
		}
		// Read the data before erasing the slot: once S[si] is empty a
		// concurrent Set may claim it and overwrite D[si].
		data := m.d[si].p.Load()
		m.step(k, 2)
		if m.s[si].cas(s, 0) {
			return append(out, data)
		}
		return out // raced with the winning releaser
	}
	return out // pending: another releaser owns the scan
}

// Uncollected counts the versions currently resident in the status array:
// the current version, every acquired-but-unreleased version, and versions
// mid-Set.  For PSWF this is exactly the paper's live-version metric.
func (m *PSWF[T]) Uncollected() int {
	n := 0
	for i := range m.s {
		if m.s[i].load() != 0 {
			n++
		}
	}
	return n
}

// Drain returns the data pointer of every still-occupied slot exactly once,
// clearing the object.  Callers must have quiesced all processes first.
func (m *PSWF[T]) Drain() []*T {
	var out []*T
	for i := range m.s {
		if m.s[i].load() != 0 {
			out = append(out, m.d[i].p.Load())
			m.s[i].store(0)
		}
	}
	m.v.store(0)
	return out
}

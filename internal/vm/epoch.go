package vm

import (
	"sync"
	"sync/atomic"
)

// Epoch is the epoch-based Version Maintenance solution of Section 6.
// Execution is divided into epochs; Acquire announces the current epoch and
// then reads the current version, Set retires the superseded version into
// the current epoch's bag, and a Release that follows a successful Set
// scans the announcements — if every active process has announced the
// current epoch it advances the epoch with a CAS and returns the versions
// retired two epochs ago, which no one can still reach.
//
// Epoch-based reclamation is safe but imprecise: a single slow reader
// pinned to an old epoch stalls reclamation globally, so the number of
// uncollected versions is unbounded in theory (and reaches the hundreds in
// the paper's Figure 6 under frequent updates).
type Epoch[T any] struct {
	p     int
	cur   atomic.Pointer[T]
	epoch atomic.Uint64
	ann   []word   // per-process ⟨epoch, active⟩ announcements
	acq   []ptr[T] // per-process acquired version (private)
	wrote []bool   // per-process "my Set succeeded" flag (private per k)

	mu   sync.Mutex // guards bags (cold path: retire + epoch advance)
	bags [3]epochBag[T]
	nRet counter
}

type epochBag[T any] struct {
	epoch    uint64
	versions []*T
}

// Epoch announcements pack ⟨epoch, active⟩ with active in bit 0, so the
// zero word means "never participated".
func epPack(e uint64, active bool) uint64 {
	w := e << 1
	if active {
		w |= 1
	}
	return w
}

func epActive(w uint64) bool  { return w&1 != 0 }
func epEpoch(w uint64) uint64 { return w >> 1 }

// NewEpoch returns an epoch-based Version Maintenance object for p
// processes.
func NewEpoch[T any](p int, initial *T) *Epoch[T] {
	m := &Epoch[T]{
		p:     p,
		ann:   make([]word, p),
		acq:   make([]ptr[T], p),
		wrote: make([]bool, p),
	}
	m.cur.Store(initial)
	m.epoch.Store(3) // start past the bag window so indices never underflow
	for i := range m.bags {
		m.bags[i].epoch = uint64(i)
	}
	return m
}

func (m *Epoch[T]) Name() string { return "epoch" }
func (m *Epoch[T]) Procs() int   { return m.p }

// Acquire announces the current epoch and returns the current version.
// Unlike hazard pointers there is no revalidation loop, so Acquire is
// wait-free with O(1) steps — imprecision is the price.
func (m *Epoch[T]) Acquire(k int) *T {
	e := m.epoch.Load()
	m.ann[k].store(epPack(e, true))
	v := m.cur.Load()
	m.acq[k].p.Store(v)
	return v
}

// Set CASes the new version in and retires the replaced version into the
// current epoch's bag.  The epoch is sampled under the bag mutex so that a
// retire into epoch e+1 cannot recycle the slot still holding epoch e-2's
// versions before the concurrent epoch-advance drains it.
func (m *Epoch[T]) Set(k int, data *T) bool {
	old := m.acq[k].p.Load()
	if !m.cur.CompareAndSwap(old, data) {
		return false
	}
	m.mu.Lock()
	e := m.epoch.Load()
	m.bag(e).versions = append(m.bag(e).versions, old)
	m.mu.Unlock()
	m.nRet.v.Add(1)
	m.wrote[k] = true
	return true
}

// bag returns the retirement bag for epoch e, recycling the slot that held
// epoch e-3 (whose contents must have been reclaimed before the epoch could
// advance this far).  Callers hold mu.
func (m *Epoch[T]) bag(e uint64) *epochBag[T] {
	b := &m.bags[e%3]
	if b.epoch != e {
		b.epoch = e
		b.versions = b.versions[:0]
	}
	return b
}

// Release marks the caller quiescent.  Only a Release following the
// caller's own successful Set pays for the announcement scan (the paper's
// optimization, which increases the uncollected count by at most one); if
// every active process has announced the current epoch it advances the
// epoch and returns the bag retired two epochs ago.
func (m *Epoch[T]) Release(k int) []*T { return m.ReleaseInto(k, nil) }

// ReleaseInto is Release appending to a caller-provided buffer; see
// Maintainer.
func (m *Epoch[T]) ReleaseInto(k int, out []*T) []*T {
	e := m.epoch.Load()
	m.ann[k].store(epPack(e, false))
	m.acq[k].p.Store(nil)
	if !m.wrote[k] {
		return out
	}
	m.wrote[k] = false
	for i := 0; i < m.p; i++ {
		a := m.ann[i].load()
		if epActive(a) && epEpoch(a) != e {
			return out // someone is still reading in an older epoch
		}
	}
	m.mu.Lock()
	if !m.epoch.CompareAndSwap(e, e+1) {
		m.mu.Unlock()
		return out // another releaser advanced the epoch and took the bag
	}
	// Drain epoch e-2's bag before releasing the mutex, so no retire into
	// epoch e+1 (which shares the slot mod 3) can recycle it first.
	b := m.bag(e - 2)
	n := len(b.versions)
	out = append(out, b.versions...)
	b.versions = b.versions[:0]
	m.mu.Unlock()
	m.nRet.v.Add(-int64(n))
	return out
}

// Uncollected reports retired-but-unfreed versions plus the current one.
func (m *Epoch[T]) Uncollected() int {
	n := int(m.nRet.v.Load())
	if m.cur.Load() != nil {
		n++
	}
	return n
}

// Drain empties every epoch bag and the current version exactly once.
func (m *Epoch[T]) Drain() []*T {
	var out []*T
	m.mu.Lock()
	for i := range m.bags {
		out = append(out, m.bags[i].versions...)
		m.bags[i].versions = nil
	}
	m.mu.Unlock()
	m.nRet.v.Store(0)
	if c := m.cur.Load(); c != nil {
		out = append(out, c)
		m.cur.Store(nil)
	}
	return out
}

package vm

import (
	"sync"
	"sync/atomic"
)

// Base is the no-maintenance baseline of Table 2 ("Base"): Acquire loads
// the current version, Set CASes it, and Release never returns anything, so
// superseded versions are never collected during the run.  It measures the
// cost of the transactional loop with zero version-maintenance and zero GC
// overhead.  Superseded versions are recorded (cheaply, writer-side) only
// so Drain can hand every allocation back for end-of-run accounting.
type Base[T any] struct {
	p   int
	cur atomic.Pointer[T]
	acq []ptr[T]

	mu     sync.Mutex
	leaked []*T
}

// NewBase returns the no-VM baseline for p processes.
func NewBase[T any](p int, initial *T) *Base[T] {
	m := &Base[T]{p: p, acq: make([]ptr[T], p)}
	m.cur.Store(initial)
	return m
}

func (m *Base[T]) Name() string { return "base" }
func (m *Base[T]) Procs() int   { return m.p }

// Acquire returns the current version with no protection whatsoever.
func (m *Base[T]) Acquire(k int) *T {
	v := m.cur.Load()
	m.acq[k].p.Store(v)
	return v
}

// Set CASes the new version into place.
func (m *Base[T]) Set(k int, data *T) bool {
	old := m.acq[k].p.Load()
	if !m.cur.CompareAndSwap(old, data) {
		return false
	}
	m.mu.Lock()
	m.leaked = append(m.leaked, old)
	m.mu.Unlock()
	return true
}

// Release returns nothing: the baseline never collects.
func (m *Base[T]) Release(k int) []*T { return m.ReleaseInto(k, nil) }

// ReleaseInto is Release with a caller-provided buffer; see Maintainer.
func (m *Base[T]) ReleaseInto(k int, out []*T) []*T {
	m.acq[k].p.Store(nil)
	return out
}

// Uncollected reports every version ever superseded plus the current one.
func (m *Base[T]) Uncollected() int {
	m.mu.Lock()
	n := len(m.leaked)
	m.mu.Unlock()
	return n + 1
}

// Drain returns all superseded versions and the current version.
func (m *Base[T]) Drain() []*T {
	m.mu.Lock()
	out := m.leaked
	m.leaked = nil
	m.mu.Unlock()
	if c := m.cur.Load(); c != nil {
		out = append(out, c)
		m.cur.Store(nil)
	}
	return out
}

// New constructs the named Version Maintenance algorithm for p processes.
// Recognized names: pswf, pslf, hp, epoch, rcu, sbgc, base.  It returns nil
// for unknown names.
func New[T any](name string, p int, initial *T) Maintainer[T] {
	switch name {
	case "pswf":
		return NewPSWF(p, initial)
	case "pslf":
		return NewPSLF(p, initial)
	case "hp":
		return NewHP(p, initial)
	case "epoch":
		return NewEpoch(p, initial)
	case "rcu":
		return NewRCU(p, initial)
	case "sbgc":
		return NewSBGC(p, initial)
	case "base":
		return NewBase(p, initial)
	}
	return nil
}

// Names lists the available algorithms in the order the paper's tables
// report them, followed by the post-paper additions.
func Names() []string { return []string{"base", "pswf", "pslf", "hp", "epoch", "rcu", "sbgc"} }

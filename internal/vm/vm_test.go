package vm

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// payload is the version body used throughout the tests.  The collected
// flag turns use-after-free into a detectable assertion: collectors set it
// exactly once, and holders assert it is unset while they hold the version.
type payload struct {
	id        uint64
	collected atomic.Bool
}

func newMaintainer(t testing.TB, name string, p int, initial *payload) Maintainer[payload] {
	t.Helper()
	m := New[payload](name, p, initial)
	if m == nil {
		t.Fatalf("unknown maintainer %q", name)
	}
	return m
}

var allNames = Names()

// preciseNames are the algorithms whose Release must return a version
// exactly when its last user departs.
var preciseNames = []string{"pswf", "pslf", "rcu"}

func TestNames(t *testing.T) {
	if len(allNames) != 7 {
		t.Fatalf("expected 7 algorithms, got %v", allNames)
	}
	for _, n := range allNames {
		m := New[payload](n, 2, &payload{})
		if m == nil {
			t.Fatalf("New(%q) = nil", n)
		}
		if m.Name() != n {
			t.Errorf("Name() = %q, want %q", m.Name(), n)
		}
		if m.Procs() != 2 {
			t.Errorf("%s: Procs() = %d, want 2", n, m.Procs())
		}
	}
	if New[payload]("nope", 2, &payload{}) != nil {
		t.Error("New with unknown name should return nil")
	}
}

func TestPackingRoundTrip(t *testing.T) {
	f := func(ts uint64, idx uint16, help bool, st uint8) bool {
		ts &= 1<<40 - 1
		v := mkVersion(ts, int(idx))
		if v.ts() != ts || v.idx() != int(idx) {
			return false
		}
		a := annPack(v, help)
		if annVer(a) != v || annHelp(a) != help {
			return false
		}
		s := stPack(v, uint64(st%3))
		return stVer(s) == v && stStatus(s) == uint64(st%3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroWordsAreSentinels(t *testing.T) {
	if annVer(0) != 0 || annHelp(0) {
		t.Error("zero announcement word must be ⟨⊥, false⟩")
	}
	if stVer(0) != 0 || stStatus(0) != stUsable {
		t.Error("zero status word must be ⟨⊥, usable⟩")
	}
}

// TestSequentialProtocol drives the basic acquire/set/release cycle on one
// process and checks the sequential specification of Section 3.
func TestSequentialProtocol(t *testing.T) {
	for _, name := range allNames {
		t.Run(name, func(t *testing.T) {
			v0 := &payload{id: 0}
			m := newMaintainer(t, name, 4, v0)

			if got := m.Acquire(0); got != v0 {
				t.Fatalf("first Acquire = %v, want initial", got)
			}
			if out := m.Release(0); len(out) != 0 {
				t.Fatalf("Release of current version returned %d versions, want 0", len(out))
			}

			// acquire → set → release must publish and (for everything but
			// base) eventually hand back the superseded version.
			var freed []*payload
			for i := 1; i <= 10; i++ {
				if got := m.Acquire(0); got.id != uint64(i-1) {
					t.Fatalf("Acquire #%d = id %d, want %d", i, got.id, i-1)
				}
				if !m.Set(0, &payload{id: uint64(i)}) {
					t.Fatalf("uncontended Set #%d failed", i)
				}
				freed = append(freed, m.Release(0)...)
			}
			freed = append(freed, m.Drain()...)
			if len(freed) != 11 {
				t.Fatalf("released+drained %d versions, want 11", len(freed))
			}
			seen := make(map[uint64]bool)
			for _, f := range freed {
				if seen[f.id] {
					t.Fatalf("version %d returned twice", f.id)
				}
				seen[f.id] = true
			}
		})
	}
}

// TestPreciseSequentialRelease checks that for the precise algorithms, a
// sequentially executed Release returns the superseded version immediately
// (not deferred to a later call) and returns a singleton.
func TestPreciseSequentialRelease(t *testing.T) {
	for _, name := range preciseNames {
		t.Run(name, func(t *testing.T) {
			m := newMaintainer(t, name, 2, &payload{id: 0})
			for i := 1; i <= 100; i++ {
				m.Acquire(0)
				if !m.Set(0, &payload{id: uint64(i)}) {
					t.Fatalf("Set %d failed", i)
				}
				out := m.Release(0)
				if len(out) != 1 {
					t.Fatalf("precise Release returned %d versions, want exactly 1", len(out))
				}
				if out[0].id != uint64(i-1) {
					t.Fatalf("Release returned id %d, want %d", out[0].id, i-1)
				}
				if m.Uncollected() != 1 {
					t.Fatalf("Uncollected = %d after precise release, want 1", m.Uncollected())
				}
			}
		})
	}
}

// TestReaderHoldsVersionAcrossSet: a reader that acquired version v keeps v
// protected while a writer installs new versions; v is returned only by the
// reader's release (precise algorithms), and never before it.
func TestReaderHoldsVersionAcrossSet(t *testing.T) {
	for _, name := range allNames {
		if name == "base" {
			continue
		}
		if name == "rcu" {
			// RCU's writer Release blocks until the pinned reader leaves,
			// so this single-goroutine scenario would deadlock by design;
			// TestRCUWriterBlocksOnReader covers the same ground.
			continue
		}
		t.Run(name, func(t *testing.T) {
			m := newMaintainer(t, name, 4, &payload{id: 0})
			got := m.Acquire(1) // reader on process 1 pins version 0
			if got.id != 0 {
				t.Fatalf("reader acquired id %d", got.id)
			}
			var freedByWriter []*payload
			for i := 1; i <= 5; i++ {
				m.Acquire(0)
				if !m.Set(0, &payload{id: uint64(i)}) {
					t.Fatalf("Set %d failed", i)
				}
				freedByWriter = append(freedByWriter, m.Release(0)...)
			}
			for _, f := range freedByWriter {
				if f.id == 0 {
					t.Fatal("writer's release returned the version a reader still holds")
				}
			}
			freedByReader := m.Release(1)
			all := append(freedByWriter, freedByReader...)
			all = append(all, m.Drain()...)
			seen := make(map[uint64]bool)
			for _, f := range all {
				if seen[f.id] {
					t.Fatalf("version %d returned twice", f.id)
				}
				seen[f.id] = true
			}
			for i := uint64(0); i <= 5; i++ {
				if !seen[i] {
					t.Fatalf("version %d never returned", i)
				}
			}
			if isPrecise(name) {
				if len(freedByReader) != 1 || freedByReader[0].id != 0 {
					t.Fatalf("precise reader release = %v, want exactly [version 0]", ids(freedByReader))
				}
			}
		})
	}
}

func isPrecise(name string) bool {
	for _, p := range preciseNames {
		if p == name {
			return true
		}
	}
	return false
}

func ids(ps []*payload) []uint64 {
	out := make([]uint64, len(ps))
	for i, p := range ps {
		out[i] = p.id
	}
	return out
}

// TestSetAbortsOnlyOnConflict: a Set may return false only if another Set
// succeeded since the caller's Acquire (Lemma B.10's guarantee, sequential
// case): with a single process, Set never fails.
func TestSetAbortsOnlyOnConflict(t *testing.T) {
	for _, name := range allNames {
		t.Run(name, func(t *testing.T) {
			m := newMaintainer(t, name, 1, &payload{id: 0})
			for i := 1; i <= 1000; i++ {
				m.Acquire(0)
				if !m.Set(0, &payload{id: uint64(i)}) {
					t.Fatalf("solo Set #%d aborted", i)
				}
				m.Release(0)
			}
		})
	}
}

// TestSetConflictDetected: two processes acquire the same version; after one
// sets successfully, the other's Set must fail, and its retry after a fresh
// Acquire must succeed.
func TestSetConflictDetected(t *testing.T) {
	for _, name := range allNames {
		t.Run(name, func(t *testing.T) {
			m := newMaintainer(t, name, 2, &payload{id: 0})
			m.Acquire(0)
			m.Acquire(1)
			if !m.Set(0, &payload{id: 1}) {
				t.Fatal("first Set failed")
			}
			if m.Set(1, &payload{id: 2}) {
				t.Fatal("conflicting Set succeeded; versions diverged")
			}
			// Release the reader side first: RCU's writer Release blocks
			// until readers of the superseded version are gone.
			m.Release(1)
			m.Release(0)
			m.Acquire(1)
			if !m.Set(1, &payload{id: 3}) {
				t.Fatal("retry after fresh Acquire failed")
			}
			m.Release(1)
			if got := m.Acquire(0); got.id != 3 {
				t.Fatalf("current version id = %d, want 3", got.id)
			}
			m.Release(0)
		})
	}
}

// modelStep is one operation in the sequential model used by
// TestSequentialModelEquivalence.
type modelState struct {
	current  uint64
	held     map[int]uint64 // process → version id (present only while held)
	holders  map[uint64]int // version id → number of holders
	returned map[uint64]bool
}

// TestSequentialModelEquivalence executes long random—but sequentially
// interleaved—operation histories on the precise algorithms and compares
// every response against the sequential specification of the Version
// Maintenance problem.  Any linearizable implementation must agree with the
// model on sequential histories.
func TestSequentialModelEquivalence(t *testing.T) {
	const procs = 5
	// RCU is precise but not non-blocking: a writer's Release blocks while
	// any other process holds the old version, so random sequential
	// histories cannot always be completed.  Only the non-blocking precise
	// algorithms are model-checked here.
	for _, name := range []string{"pswf", "pslf"} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			byID := map[uint64]*payload{0: {id: 0}}
			m := newMaintainer(t, name, procs, byID[0])
			st := modelState{
				current:  0,
				held:     map[int]uint64{},
				holders:  map[uint64]int{},
				returned: map[uint64]bool{},
			}
			nextID := uint64(1)
			// phase per process: 0 = idle (may acquire), 1 = held (may set
			// or release), 2 = set done (must release)
			phase := make([]int, procs)
			for step := 0; step < 20000; step++ {
				k := rng.Intn(procs)
				switch phase[k] {
				case 0:
					got := m.Acquire(k)
					if got.id != st.current {
						t.Fatalf("step %d: Acquire(%d) = %d, want current %d", step, k, got.id, st.current)
					}
					st.held[k] = got.id
					st.holders[got.id]++
					phase[k] = 1
				case 1:
					if rng.Intn(2) == 0 { // set
						p := &payload{id: nextID}
						byID[nextID] = p
						ok := m.Set(k, p)
						wantOK := st.held[k] == st.current
						if ok != wantOK {
							t.Fatalf("step %d: Set(%d) = %v, want %v", step, k, ok, wantOK)
						}
						if ok {
							st.current = nextID
						}
						nextID++
						phase[k] = 2
					} else {
						sequentialRelease(t, step, m, k, &st)
						phase[k] = 0
					}
				case 2:
					sequentialRelease(t, step, m, k, &st)
					phase[k] = 0
				}
			}
		})
	}
}

func sequentialRelease(t *testing.T, step int, m Maintainer[payload], k int, st *modelState) {
	t.Helper()
	v := st.held[k]
	delete(st.held, k)
	st.holders[v]--
	if st.holders[v] == 0 {
		delete(st.holders, v)
	}
	out := m.Release(k)
	// Precise spec: return exactly v iff v is dead after this release.
	dead := v != st.current && st.holders[v] == 0 && !st.returned[v]
	if dead {
		if len(out) != 1 || out[0].id != v {
			t.Fatalf("step %d: Release(%d) = %v, want [%d]", step, k, ids(out), v)
		}
		st.returned[v] = true
	} else if len(out) != 0 {
		t.Fatalf("step %d: Release(%d) = %v, want [] (version %d still live)", step, k, ids(out), v)
	}
}

// TestConcurrentSingleWriter is the paper's primary deployment: one writer
// streams updates while P-1 readers acquire, inspect and release.  It
// checks safety (no version is collected while any process holds it),
// exactly-once collection, per-process monotonicity of acquired versions,
// and complete accounting at the end of the run.
func TestConcurrentSingleWriter(t *testing.T) {
	const (
		procs  = 8
		writes = 3000
	)
	for _, name := range allNames {
		t.Run(name, func(t *testing.T) {
			m := newMaintainer(t, name, procs, &payload{id: 0})
			var created atomic.Uint64 // ids handed out; id 0 pre-created
			var collectedCount atomic.Uint64
			collect := func(ps []*payload) {
				for _, p := range ps {
					if !p.collected.CompareAndSwap(false, true) {
						t.Errorf("version %d collected twice", p.id)
					}
					collectedCount.Add(1)
				}
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})
			// Writer: process 0.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 1; i <= writes; i++ {
					v := m.Acquire(0)
					if v.collected.Load() {
						t.Errorf("writer acquired already-collected version %d", v.id)
					}
					p := &payload{id: uint64(i)}
					created.Add(1)
					if !m.Set(0, p) {
						t.Errorf("single-writer Set %d failed", i)
					}
					collect(m.Release(0))
				}
				close(stop)
			}()
			// Readers: processes 1..procs-1.
			for k := 1; k < procs; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					last := uint64(0)
					for {
						select {
						case <-stop:
							return
						default:
						}
						v := m.Acquire(k)
						if v.collected.Load() {
							t.Errorf("reader %d acquired collected version %d", k, v.id)
							return
						}
						if v.id < last {
							t.Errorf("reader %d: versions went backwards: %d after %d", k, v.id, last)
							return
						}
						last = v.id
						// Simulate user code that dereferences the version.
						for i := 0; i < 32; i++ {
							if v.collected.Load() {
								t.Errorf("reader %d: version %d collected while held", k, v.id)
								return
							}
						}
						collect(m.Release(k))
					}
				}(k)
			}
			wg.Wait()
			collect(m.Drain())
			total := created.Load() + 1 // + initial version
			if collectedCount.Load() != total {
				t.Errorf("created %d versions, collected %d", total, collectedCount.Load())
			}
			if m.Uncollected() != 0 && name != "base" {
				// base reports leaks; others must be empty after Drain.
				t.Errorf("Uncollected = %d after Drain", m.Uncollected())
			}
		})
	}
}

// TestConcurrentMultiWriter exercises the lock-free multi-writer mode: all
// processes contend with Set.  At least one Set in every round of conflicts
// must succeed, every failure must coincide with some success, and
// accounting must balance.
func TestConcurrentMultiWriter(t *testing.T) {
	const (
		procs     = 6
		perWriter = 2000
	)
	for _, name := range allNames {
		t.Run(name, func(t *testing.T) {
			m := newMaintainer(t, name, procs, &payload{id: 0})
			var idGen atomic.Uint64
			var successes, failures atomic.Uint64
			var collectedCount atomic.Uint64
			var created atomic.Uint64
			var wg sync.WaitGroup
			for k := 0; k < procs; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						v := m.Acquire(k)
						if v.collected.Load() {
							t.Errorf("writer %d acquired collected version", k)
							return
						}
						p := &payload{id: idGen.Add(1)}
						if m.Set(k, p) {
							successes.Add(1)
							created.Add(1)
						} else {
							failures.Add(1)
							// The failed version never entered the system;
							// the transaction layer collects it directly.
						}
						for _, f := range m.Release(k) {
							if !f.collected.CompareAndSwap(false, true) {
								t.Errorf("version %d collected twice", f.id)
							}
							collectedCount.Add(1)
						}
					}
				}(k)
			}
			wg.Wait()
			if successes.Load() == 0 {
				t.Fatal("no Set ever succeeded")
			}
			for _, f := range m.Drain() {
				if !f.collected.CompareAndSwap(false, true) {
					t.Errorf("version %d collected twice in drain", f.id)
				}
				collectedCount.Add(1)
			}
			if got, want := collectedCount.Load(), created.Load()+1; got != want {
				t.Errorf("collected %d versions, want %d", got, want)
			}
		})
	}
}

// TestUncollectedBounds verifies the per-algorithm bounds on resident
// versions claimed in Section 7.1: RCU ≤ 2 always; PSWF/PSLF ≤ 2P+1 (P
// acquired + P mid-set + current); HP ≤ 2P per process + current.
func TestUncollectedBounds(t *testing.T) {
	const procs = 4
	// This test drives concurrent writers on every process, so the RCU
	// bound is P+1 (each writer may hold one version pending a grace
	// period); the paper's "at most 2 live versions" claim is for the
	// single-writer setting and is checked in TestPreciseSequentialRelease.
	bounds := map[string]int{
		"pswf": 2*procs + 1,
		"pslf": 2*procs + 1,
		"rcu":  procs + 1,
		"hp":   2*procs*procs + 1,
		// SBGC compacts each retired list down to ≤ P entries once it
		// reaches 2P, so at most 2P can be outstanding per process.
		"sbgc": 2*procs*procs + 1,
	}
	for name, bound := range bounds {
		t.Run(name, func(t *testing.T) {
			m := newMaintainer(t, name, procs, &payload{id: 0})
			var wg sync.WaitGroup
			for k := 0; k < procs; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					var id uint64
					for i := 0; i < 3000; i++ {
						m.Acquire(k)
						id++
						m.Set(k, &payload{id: id})
						m.Release(k)
						if u := m.Uncollected(); u > bound {
							t.Errorf("%s: Uncollected = %d exceeds bound %d", name, u, bound)
							return
						}
					}
				}(k)
			}
			wg.Wait()
		})
	}
}

// TestStepBoundsAcquire checks Theorem 3.4's O(1) bound: the number of
// shared-memory steps in Acquire is a constant independent of P, even under
// maximal write pressure.
func TestStepBoundsAcquire(t *testing.T) {
	for _, procs := range []int{2, 8, 32, 128} {
		m := NewPSWFInstrumented(procs, &payload{id: 0})
		var maxSteps int64
		// Writer churns versions from process 0; reader on process 1.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			var id uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Acquire(0)
				id++
				m.Set(0, &payload{id: id})
				m.Release(0)
			}
		}()
		for i := 0; i < 2000; i++ {
			m.Acquire(1)
			if s := m.StepCount(1); s > maxSteps {
				maxSteps = s
			}
			m.Release(1)
		}
		close(stop)
		wg.Wait()
		// The instrumented acquire executes at most ~20 shared steps on any
		// path; the bound must not grow with P.
		if maxSteps > 25 {
			t.Errorf("P=%d: acquire took %d shared steps, want O(1) ≤ 25", procs, maxSteps)
		}
	}
}

// TestStepBoundsSetRelease checks Theorem 3.4's O(P) bounds for Set and
// Release: steps grow at most linearly in P with a small constant.
func TestStepBoundsSetRelease(t *testing.T) {
	for _, procs := range []int{2, 8, 32, 128} {
		m := NewPSWFInstrumented(procs, &payload{id: 0})
		var maxSet, maxRel int64
		var id uint64
		for i := 0; i < 500; i++ {
			m.Acquire(0)
			id++
			m.Set(0, &payload{id: id})
			if s := m.StepCount(0); s > maxSet {
				maxSet = s
			}
			m.Release(0)
			if s := m.StepCount(0); s > maxRel {
				maxRel = s
			}
		}
		limit := int64(12*procs + 30)
		if maxSet > limit {
			t.Errorf("P=%d: set took %d steps, want O(P) ≤ %d", procs, maxSet, limit)
		}
		if maxRel > limit {
			t.Errorf("P=%d: release took %d steps, want O(P) ≤ %d", procs, maxRel, limit)
		}
	}
}

// TestRCUWriterBlocksOnReader demonstrates RCU's known weakness (and
// precision): the writer's Release cannot finish until pre-existing readers
// leave their critical sections.
func TestRCUWriterBlocksOnReader(t *testing.T) {
	m := NewRCU(2, &payload{id: 0})
	m.Acquire(1) // reader pins version 0

	m.Acquire(0)
	if !m.Set(0, &payload{id: 1}) {
		t.Fatal("Set failed")
	}
	released := make(chan []*payload, 1)
	go func() { released <- m.Release(0) }()

	// The writer must not complete while the reader is inside.
	for i := 0; i < 100; i++ {
		select {
		case <-released:
			t.Fatal("RCU writer release completed while a reader held the old version")
		default:
		}
		runtime.Gosched()
	}
	m.Release(1) // reader exits; the writer may now finish
	out := <-released
	if len(out) != 1 || out[0].id != 0 {
		t.Fatalf("writer release = %v, want [0]", ids(out))
	}
}

// TestHPReleaseAmortization: HP's expensive Release happens only once the
// retired list reaches 2P, and then frees at least P versions.
func TestHPReleaseAmortization(t *testing.T) {
	const procs = 4
	m := NewHP(procs, &payload{id: 0})
	var id uint64
	emptyReleases := 0
	for i := 0; i < 10*procs; i++ {
		m.Acquire(0)
		id++
		if !m.Set(0, &payload{id: id}) {
			t.Fatal("Set failed")
		}
		out := m.Release(0)
		if len(out) == 0 {
			emptyReleases++
			continue
		}
		if len(out) < procs {
			t.Fatalf("expensive HP release returned %d < P versions", len(out))
		}
	}
	if emptyReleases == 0 {
		t.Fatal("HP release was never cheap; amortization broken")
	}
}

// TestEpochAdvanceRequiresQuiescence: a reader pinned to an old epoch
// prevents reclamation (the imprecision the paper measures in Figure 6).
func TestEpochAdvanceRequiresQuiescence(t *testing.T) {
	m := NewEpoch(2, &payload{id: 0})
	m.Acquire(1) // reader enters and never leaves
	var id uint64
	for i := 0; i < 50; i++ {
		m.Acquire(0)
		id++
		if !m.Set(0, &payload{id: id}) {
			t.Fatal("Set failed")
		}
		if out := m.Release(0); len(out) != 0 {
			t.Fatalf("epoch release reclaimed %v while a reader is pinned", ids(out))
		}
	}
	if m.Uncollected() < 50 {
		t.Fatalf("expected ≥50 uncollected versions behind a pinned reader, got %d", m.Uncollected())
	}
	m.Release(1)
	// After the reader leaves, a few writer cycles flush the backlog down
	// to the 3-epoch window.
	for i := 0; i < 10; i++ {
		m.Acquire(0)
		id++
		m.Set(0, &payload{id: id})
		m.Release(0)
	}
	if m.Uncollected() > 10 {
		t.Fatalf("backlog not reclaimed after reader left: %d", m.Uncollected())
	}
}

// TestDrainExactlyOnce: Drain returns every resident version exactly once
// for every algorithm, including versions pinned by never-released readers
// (the processes are quiesced, so this is legal).
func TestDrainExactlyOnce(t *testing.T) {
	for _, name := range allNames {
		t.Run(name, func(t *testing.T) {
			m := newMaintainer(t, name, 3, &payload{id: 0})
			var id uint64
			var collected []uint64
			for i := 0; i < 7; i++ {
				m.Acquire(0)
				id++
				m.Set(0, &payload{id: id})
				for _, f := range m.Release(0) {
					collected = append(collected, f.id)
				}
			}
			for _, f := range m.Drain() {
				collected = append(collected, f.id)
			}
			seen := make(map[uint64]bool)
			for _, c := range collected {
				if seen[c] {
					t.Fatalf("version %d returned twice", c)
				}
				seen[c] = true
			}
			if len(seen) != 8 {
				t.Fatalf("returned %d distinct versions, want 8", len(seen))
			}
		})
	}
}

package vm

import "sync/atomic"

// HP is the hazard-pointer based Version Maintenance solution of Section 6.
// Each process announces the version it intends to use and revalidates
// against the current version; a successful Set retires the superseded
// version onto the setter's retired list, and a Release whose retired list
// has grown to 2P scans the announcements and returns every unannounced
// retired version.
//
// HP is safe but imprecise: a dead version can linger on a retired list for
// arbitrarily long (until that process's next expensive Release), and up to
// 2P versions per process can be outstanding.  Acquire is lock-free, not
// wait-free: it retries whenever the current version moves between the read
// and the announcement.
type HP[T any] struct {
	p       int
	cur     atomic.Pointer[T]
	ann     []ptr[T] // hazard announcements, one per process
	acq     []ptr[T] // the version each process acquired (private, padded)
	retired [][]*T   // per-process retired lists (private)
	nRet    counter  // total retired-and-uncollected versions
}

// NewHP returns a hazard-pointer Version Maintenance object for p processes.
func NewHP[T any](p int, initial *T) *HP[T] {
	m := &HP[T]{
		p:       p,
		ann:     make([]ptr[T], p),
		acq:     make([]ptr[T], p),
		retired: make([][]*T, p),
	}
	m.cur.Store(initial)
	return m
}

func (m *HP[T]) Name() string { return "hp" }
func (m *HP[T]) Procs() int   { return m.p }

// Acquire reads the current version, announces it, and revalidates; it
// restarts if the current version moved in between.
func (m *HP[T]) Acquire(k int) *T {
	for {
		v := m.cur.Load()
		m.ann[k].p.Store(v)
		if m.cur.Load() == v {
			m.acq[k].p.Store(v)
			return v
		}
	}
}

// Set CASes the new version into place and retires the one it replaced.
func (m *HP[T]) Set(k int, data *T) bool {
	old := m.acq[k].p.Load()
	if !m.cur.CompareAndSwap(old, data) {
		return false
	}
	m.retired[k] = append(m.retired[k], old)
	m.nRet.v.Add(1)
	return true
}

// Release clears the announcement.  When the caller's retired list has
// reached 2P entries it scans all announcements and returns the retired
// versions nobody has announced; at least P of the 2P entries must be
// unannounced, so the O(P) scan returns Ω(P) versions and the amortized
// cost is O(1).  Otherwise it returns nothing — in particular, read-only
// processes always return an empty list.
func (m *HP[T]) Release(k int) []*T { return m.ReleaseInto(k, nil) }

// ReleaseInto is Release appending to a caller-provided buffer; see
// Maintainer.
func (m *HP[T]) ReleaseInto(k int, out []*T) []*T {
	m.ann[k].p.Store(nil)
	m.acq[k].p.Store(nil)
	if len(m.retired[k]) < 2*m.p {
		return out
	}
	return m.scan(k, out)
}

func (m *HP[T]) scan(k int, out []*T) []*T {
	announced := make(map[*T]struct{}, m.p)
	for i := 0; i < m.p; i++ {
		if v := m.ann[i].p.Load(); v != nil {
			announced[v] = struct{}{}
		}
	}
	keep := m.retired[k][:0]
	freed := 0
	for _, v := range m.retired[k] {
		if _, ok := announced[v]; ok {
			keep = append(keep, v)
		} else {
			out = append(out, v)
			freed++
		}
	}
	m.retired[k] = keep
	m.nRet.v.Add(-int64(freed))
	return out
}

// Uncollected reports retired-but-unfreed versions plus the current one.
func (m *HP[T]) Uncollected() int {
	n := int(m.nRet.v.Load())
	if m.cur.Load() != nil {
		n++
	}
	return n
}

// Drain returns every retired version and the current version exactly once.
func (m *HP[T]) Drain() []*T {
	var out []*T
	for k := range m.retired {
		out = append(out, m.retired[k]...)
		m.retired[k] = nil
	}
	m.nRet.v.Store(0)
	if c := m.cur.Load(); c != nil {
		out = append(out, c)
		m.cur.Store(nil)
	}
	return out
}

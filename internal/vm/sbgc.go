package vm

import "sync/atomic"

// SBGC is a space-bounded Version Maintenance solution in the spirit of the
// follow-on work on bounded-space multiversion GC (Space and Time Bounded
// Multiversion Garbage Collection, arXiv 2108.02775; Practically and
// Theoretically Efficient Garbage Collection for Multiversioning, arXiv
// 2212.13557).  Where HP protects the exact pointer a reader announced,
// SBGC protects a *timestamp*: every successful Set stamps its version with
// a fresh value of a global clock, a reader announces the birth timestamp
// of the version it acquired, and compaction keeps, per announced
// timestamp, only the one retired version whose lifetime interval
// [born, died) contains it — every intermediate version a pinned reader
// skipped over is collected even while the pin is held.  That is what
// bounds space under a long-reader-plus-write-storm: retired lists hold at
// most 2P entries each regardless of how long any reader stays pinned.
//
// Like HP it is safe but imprecise (a dead version can wait on a retired
// list until its owner's next compacting Release), and Acquire is
// lock-free, not wait-free: it retries when the current version moves
// between the read and the announcement.  Unlike HP, validation compares
// timestamps rather than pointers, which lets SBGC recycle its node
// wrappers through per-process pools without reuse-ABA: a node's timestamp
// strictly increases across lifetimes, so a stale reader that announced an
// old birth can never validate against a recycled node.
type SBGC[T any] struct {
	p     int
	cur   atomic.Pointer[sbgcNode[T]]
	clock atomic.Uint64 // last issued birth timestamp; real stamps are >= 1
	ann   []word        // announced birth timestamps, one per process; 0 = idle

	acq     []sbgcPriv[T]    // the node each process acquired (private, padded)
	retired [][]sbgcEntry[T] // per-process retired lists, born-ascending (private)
	pool    [][]*sbgcNode[T] // per-process recycled node wrappers (private)
	annBuf  [][]uint64       // per-process scratch for compaction scans (private)

	nRet counter // total retired-and-uncollected versions
}

// sbgcNode wraps a version with its birth timestamp.  Wrappers are recycled
// through per-process pools; ts strictly increases across a wrapper's
// lifetimes (every Set stamps a fresh clock value), which is what defeats
// reuse-ABA during Acquire's validation.
type sbgcNode[T any] struct {
	data atomic.Pointer[T]
	ts   atomic.Uint64
}

// sbgcEntry is one retired version with its lifetime interval [born, died):
// a reader whose announced timestamp a satisfies born <= a < died acquired
// exactly this version.  Within one process's retired list the intervals
// are disjoint and born-ascending, because died(old) = born(new) for each
// successful Set and a process's successive successful Sets carry strictly
// increasing stamps.
type sbgcEntry[T any] struct {
	n    *sbgcNode[T]
	born uint64
	died uint64
}

// sbgcPriv is one process's private acquired-node slot, padded so
// neighbouring processes do not share cache lines.
type sbgcPriv[T any] struct {
	n *sbgcNode[T]
	_ [7]uint64
}

// NewSBGC returns a space-bounded Version Maintenance object for p
// processes.
func NewSBGC[T any](p int, initial *T) *SBGC[T] {
	m := &SBGC[T]{
		p:       p,
		ann:     make([]word, p),
		acq:     make([]sbgcPriv[T], p),
		retired: make([][]sbgcEntry[T], p),
		pool:    make([][]*sbgcNode[T], p),
		annBuf:  make([][]uint64, p),
	}
	n := &sbgcNode[T]{}
	n.data.Store(initial)
	n.ts.Store(1)
	m.clock.Store(1)
	m.cur.Store(n)
	return m
}

func (m *SBGC[T]) Name() string { return "sbgc" }
func (m *SBGC[T]) Procs() int   { return m.p }

// Acquire reads the current version, announces its birth timestamp, and
// revalidates both the pointer and the stamp.  Once the validation passes
// the announcement protects the version: any later compaction keeps the
// newest version born at-or-below the announced stamp, which is exactly
// this one (successors are born strictly later).  A recycled wrapper
// cannot satisfy the validation because its stamp has moved on.
func (m *SBGC[T]) Acquire(k int) *T {
	for {
		n := m.cur.Load()
		if n == nil {
			return nil
		}
		b := n.ts.Load()
		m.ann[k].store(b)
		if m.cur.Load() == n && n.ts.Load() == b {
			m.acq[k].n = n
			return n.data.Load()
		}
	}
}

// Set stamps a (possibly recycled) wrapper with a fresh clock value and
// CASes it into place; on success the replaced version is retired with the
// interval [its birth, the new birth).  The data store precedes the stamp
// store, so a reader that validates the new stamp reads the new data.
func (m *SBGC[T]) Set(k int, data *T) bool {
	old := m.acq[k].n
	n := m.node(k)
	n.data.Store(data)
	born := m.clock.Add(1)
	n.ts.Store(born)
	if !m.cur.CompareAndSwap(old, n) {
		n.data.Store(nil)
		m.pool[k] = append(m.pool[k], n)
		return false
	}
	// ann[k] still holds old's birth from this process's Acquire, and the
	// announcement keeps old's stamp frozen while we hold it.
	m.retired[k] = append(m.retired[k], sbgcEntry[T]{n: old, born: m.ann[k].load(), died: born})
	m.nRet.v.Add(1)
	return true
}

// node pops a recycled wrapper or allocates one.  The pool refills from
// compaction, so a steady-state writer stops allocating wrappers entirely.
func (m *SBGC[T]) node(k int) *sbgcNode[T] {
	if n := len(m.pool[k]); n > 0 {
		nd := m.pool[k][n-1]
		m.pool[k] = m.pool[k][:n-1]
		return nd
	}
	return new(sbgcNode[T])
}

// Release clears the announcement.  When the caller's retired list has
// reached 2P entries it compacts: each of the at-most-P live announcements
// protects at most one entry (the intervals are disjoint), so at least P
// entries are returned and the amortized cost per Set is O(1).
func (m *SBGC[T]) Release(k int) []*T { return m.ReleaseInto(k, nil) }

// ReleaseInto is Release appending to a caller-provided buffer; see
// Maintainer.
func (m *SBGC[T]) ReleaseInto(k int, out []*T) []*T {
	m.ann[k].store(0)
	m.acq[k].n = nil
	if len(m.retired[k]) < 2*m.p {
		return out
	}
	return m.compact(k, out)
}

// compact walks the born-ascending retired list against the sorted live
// announcements and keeps an entry exactly when some announced timestamp a
// falls inside its interval (born <= a < died) — the interval-keep rule.
// Everything else, including intermediate versions a long-pinned reader
// skipped over, is returned for collection and its wrapper pooled.  The
// scan is allocation-free: the announcement scratch, the retired list and
// the pool are all reused in place.
func (m *SBGC[T]) compact(k int, out []*T) []*T {
	anns := m.annBuf[k][:0]
	for i := 0; i < m.p; i++ {
		if a := m.ann[i].load(); a != 0 {
			anns = append(anns, a)
		}
	}
	// Insertion sort: at most P elements, and sort.Slice would allocate.
	for i := 1; i < len(anns); i++ {
		for j := i; j > 0 && anns[j] < anns[j-1]; j-- {
			anns[j], anns[j-1] = anns[j-1], anns[j]
		}
	}
	keep := m.retired[k][:0]
	freed := 0
	j := 0
	for _, e := range m.retired[k] {
		for j < len(anns) && anns[j] < e.born {
			j++
		}
		if j < len(anns) && anns[j] < e.died {
			keep = append(keep, e)
			continue
		}
		out = append(out, e.n.data.Load())
		e.n.data.Store(nil)
		m.pool[k] = append(m.pool[k], e.n)
		freed++
	}
	m.retired[k] = keep
	m.annBuf[k] = anns[:0]
	m.nRet.v.Add(-int64(freed))
	return out
}

// Uncollected reports retired-but-unfreed versions plus the current one.
func (m *SBGC[T]) Uncollected() int {
	n := int(m.nRet.v.Load())
	if m.cur.Load() != nil {
		n++
	}
	return n
}

// Drain returns every retired version and the current version exactly once.
func (m *SBGC[T]) Drain() []*T {
	var out []*T
	for k := range m.retired {
		for _, e := range m.retired[k] {
			out = append(out, e.n.data.Load())
		}
		m.retired[k] = nil
		m.pool[k] = nil
	}
	m.nRet.v.Store(0)
	if c := m.cur.Load(); c != nil {
		out = append(out, c.data.Load())
		m.cur.Store(nil)
	}
	return out
}

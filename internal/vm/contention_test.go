package vm

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestLemmaB13AnnouncementCASes checks Lemma B.13 observationally: in the
// single-writer setting, the announcement array experiences at most 8 CAS
// instructions per Acquire — 3 from the acquire itself, 3 from the one
// helping Set per acquire, 2 from releasers (one per announced version).
// This is the combinatorial core of the O(1) amortized contention bound
// (Theorem 3.5).
func TestLemmaB13AnnouncementCASes(t *testing.T) {
	const procs = 8
	m := NewPSWFInstrumented(procs, &payload{id: 0})
	var acquires atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Single writer churns versions as fast as possible.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var id uint64
		for i := 0; i < 20000; i++ {
			m.Acquire(0)
			acquires.Add(1)
			id++
			if !m.Set(0, &payload{id: id}) {
				t.Error("single-writer Set failed")
			}
			m.Release(0)
		}
		close(stop)
	}()
	for k := 1; k < procs; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Acquire(k)
				acquires.Add(1)
				m.Release(k)
			}
		}(k)
	}
	wg.Wait()
	cas := m.AnnouncementCASCount()
	bound := 8 * acquires.Load()
	if cas > bound {
		t.Fatalf("announcement CASes %d exceed Lemma B.13 bound 8a = %d", cas, bound)
	}
	if cas == 0 {
		t.Fatal("instrumentation recorded no CASes; counter broken")
	}
}

// TestStalledReaderIsHelped is the adversarial schedule that motivates the
// helping mechanism: a reader announces a version and then stalls before
// revalidating; writers must commit a version on its behalf within a
// bounded number of Sets, and the version committed for the stalled
// reader must never be collected under it.
func TestStalledReaderIsHelped(t *testing.T) {
	const procs = 4
	m := NewPSWF(procs, &payload{id: 0})

	// Manually simulate the first half of Acquire(1): read V, announce
	// with the help flag raised, then "stall".
	u := version(m.v.load())
	m.a[1].store(annPack(u, true))

	// The writer now commits versions; its Set's helping loop must lower
	// reader 1's help flag within a bounded number of commits.
	var id uint64
	helped := false
	for i := 0; i < 3 && !helped; i++ {
		m.Acquire(0)
		id++
		if !m.Set(0, &payload{id: id}) {
			t.Fatal("set failed")
		}
		m.Release(0)
		helped = !annHelp(m.a[1].load())
	}
	if !helped {
		t.Fatal("stalled reader was not helped within 3 single-writer commits")
	}

	// The reader resumes: whatever was committed for it must be a live,
	// uncollected version with valid data.
	got := m.getData(annVer(m.a[1].load()))
	if got == nil {
		t.Fatal("helped announcement points at no data")
	}
	if got.collected.Load() {
		t.Fatal("helped reader's version was collected while announced")
	}
	// Releasing it must account exactly once, like any other version.
	out := m.Release(1)
	for _, f := range out {
		if !f.collected.CompareAndSwap(false, true) {
			t.Fatal("double collection")
		}
	}
	for _, f := range m.Drain() {
		if !f.collected.CompareAndSwap(false, true) {
			t.Fatal("double collection in drain")
		}
	}
}

// TestStalledReaderBlocksCollection: once helped, the stalled reader's
// version must be treated as live — concurrent releases by other processes
// must not return it until the reader releases.
func TestStalledReaderBlocksCollection(t *testing.T) {
	const procs = 4
	m := NewPSWF(procs, &payload{id: 0})
	// Reader 1 fully acquires version 0.
	v0 := m.Acquire(1)
	if v0.id != 0 {
		t.Fatal("unexpected initial version")
	}
	// Writer supersedes it repeatedly; version 0 must never be returned by
	// the writer's releases.
	var id uint64
	for i := 0; i < 10; i++ {
		m.Acquire(0)
		id++
		m.Set(0, &payload{id: id})
		for _, f := range m.Release(0) {
			if f.id == 0 {
				t.Fatal("version 0 collected while reader 1 holds it")
			}
		}
	}
	out := m.Release(1)
	if len(out) != 1 || out[0].id != 0 {
		t.Fatalf("reader's release returned %v, want [0]", ids(out))
	}
}

package vm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickSequentialSafetyAll runs random sequential histories against
// every algorithm and checks the safety half of the specification, which
// even the imprecise algorithms must satisfy: a Release may return only
// versions that are (a) not current, (b) held by no process, and (c) never
// returned before.  Liveness/precision is checked separately for the
// precise algorithms (TestSequentialModelEquivalence); RCU histories avoid
// release-after-set while another process holds, since RCU blocks there by
// design.
func TestQuickSequentialSafetyAll(t *testing.T) {
	for _, name := range allNames {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				const procs = 4
				rng := rand.New(rand.NewSource(seed))
				m := newMaintainer(t, name, procs, &payload{id: 0})
				current := uint64(0)
				held := map[int]uint64{}
				holders := map[uint64]int{}
				returned := map[uint64]bool{}
				nextID := uint64(1)
				phase := make([]int, procs) // 0 idle, 1 held, 2 set-done
				checkReleased := func(out []*payload, k int, v uint64) bool {
					for _, f := range out {
						if f.id == current {
							t.Logf("%s: released current version %d", name, f.id)
							return false
						}
						if holders[f.id] > 0 {
							t.Logf("%s: released held version %d", name, f.id)
							return false
						}
						if returned[f.id] {
							t.Logf("%s: version %d returned twice", name, f.id)
							return false
						}
						returned[f.id] = true
					}
					return true
				}
				for step := 0; step < 3000; step++ {
					k := rng.Intn(procs)
					switch phase[k] {
					case 0:
						got := m.Acquire(k)
						if got.id != current {
							t.Logf("%s: acquired %d, current %d", name, got.id, current)
							return false
						}
						held[k] = got.id
						holders[got.id]++
						phase[k] = 1
					case 1:
						doSet := rng.Intn(2) == 0
						if name == "rcu" && doSet && len(held) != 1 {
							// An RCU writer's release synchronizes against
							// every other read-side critical section; on a
							// single goroutine a Set is only safe when the
							// setter is the sole holder.
							doSet = false
						}
						if doSet {
							p := &payload{id: nextID}
							ok := m.Set(k, p)
							wantOK := held[k] == current
							if ok != wantOK {
								t.Logf("%s: Set=%v want %v", name, ok, wantOK)
								return false
							}
							if ok {
								current = nextID
							}
							nextID++
							if name == "rcu" {
								// Release immediately, before any other
								// process can re-enter a critical section.
								v := held[k]
								holders[v]--
								delete(held, k)
								if !checkReleased(m.Release(k), k, v) {
									return false
								}
								phase[k] = 0
							} else {
								phase[k] = 2
							}
						} else {
							v := held[k]
							holders[v]--
							delete(held, k)
							if !checkReleased(m.Release(k), k, v) {
								return false
							}
							phase[k] = 0
						}
					case 2: // set done (rcu never reaches here); release
						v := held[k]
						holders[v]--
						delete(held, k)
						if !checkReleased(m.Release(k), k, v) {
							return false
						}
						phase[k] = 0
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

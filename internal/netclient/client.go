// Package netclient is the pipelining client for the netproto serving
// layer.  Every operation has an async form returning a *Pending: the
// request is encoded into the connection's write buffer and the call
// returns immediately; Pending.Wait blocks until the in-order reply
// arrives.  Because the server replies strictly in request order, one
// reader goroutine matching replies to a FIFO of pendings is all the
// demultiplexing the protocol needs.
//
// Pipelining is what lets a single connection amortize the server's
// combiner commits: D outstanding SETs from this client land in the same
// shard batches as every other connection's, so per-op commit cost falls
// as depth and connection count grow (cmd/netbench sweeps both).
//
// The client is safe for concurrent use; requests from multiple goroutines
// are serialized onto the wire in submission order.
package netclient

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"mvgc/internal/netproto"
)

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("netclient: client closed")

// Pending is one in-flight request's future reply.
type Pending struct {
	done chan struct{}
	err  error

	kind byte
	n    int64
	null bool
	text string  // error line or bulk payload, copied out of the read buffer
	arr  []int64 // array reply elements, copied out of the read buffer
}

// Wait blocks until the reply arrives (or the connection fails) and
// returns the transport/protocol error, if any.  Command-level errors
// (server "-ERR ..." replies) surface on the typed accessors, not here.
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

// Err waits and returns the first error of any kind — transport, protocol
// or server-reported.
func (p *Pending) Err() error {
	if err := p.Wait(); err != nil {
		return err
	}
	if p.kind == netproto.KindError {
		return errors.New(p.text)
	}
	return nil
}

// Int waits and returns an integer reply (SUM, LEN, MCAS).
func (p *Pending) Int() (int64, error) {
	if err := p.Err(); err != nil {
		return 0, err
	}
	if p.kind != netproto.KindInt {
		return 0, fmt.Errorf("netclient: unexpected reply kind %q", p.kind)
	}
	return p.n, nil
}

// Value waits and returns a GET reply: value, whether the key was present.
func (p *Pending) Value() (int64, bool, error) {
	if err := p.Err(); err != nil {
		return 0, false, err
	}
	if p.kind != netproto.KindBulk {
		return 0, false, fmt.Errorf("netclient: unexpected reply kind %q", p.kind)
	}
	if p.null {
		return 0, false, nil
	}
	v, err := netproto.ParseInt([]byte(p.text))
	if err != nil {
		return 0, false, err
	}
	return v, true, nil
}

// Text waits and returns a bulk or simple reply as a string (STATS, PING).
func (p *Pending) Text() (string, error) {
	if err := p.Err(); err != nil {
		return "", err
	}
	return p.text, nil
}

// Entry is one scanned key-value pair.
type Entry struct{ Key, Val int64 }

// Entries waits and decodes a SCAN reply's alternating key/value array
// into entries in ascending key order.
func (p *Pending) Entries() ([]Entry, error) {
	if err := p.Err(); err != nil {
		return nil, err
	}
	if p.kind != netproto.KindArray {
		return nil, fmt.Errorf("netclient: unexpected reply kind %q", p.kind)
	}
	if len(p.arr)%2 != 0 {
		return nil, fmt.Errorf("netclient: odd scan reply length %d", len(p.arr))
	}
	out := make([]Entry, 0, len(p.arr)/2)
	for i := 0; i+1 < len(p.arr); i += 2 {
		out = append(out, Entry{Key: p.arr[i], Val: p.arr[i+1]})
	}
	return out, nil
}

// ScanChunk is one SCANC page: up to n entries in ascending key order
// plus the cursor to continue from.  When More is set, resuming at Next
// with excl=true yields the following page; pages from different calls
// may observe different snapshots (the cursor lives on the client).
type ScanChunk struct {
	Entries []Entry
	Next    int64 // last key of this page; resume point when More
	More    bool  // the range may hold entries beyond Next
}

// Chunk waits and decodes a SCANC reply: [more, next, k1, v1, ...].
func (p *Pending) Chunk() (ScanChunk, error) {
	if err := p.Err(); err != nil {
		return ScanChunk{}, err
	}
	if p.kind != netproto.KindArray {
		return ScanChunk{}, fmt.Errorf("netclient: unexpected reply kind %q", p.kind)
	}
	if len(p.arr) < 2 || len(p.arr)%2 != 0 {
		return ScanChunk{}, fmt.Errorf("netclient: malformed cursor-scan reply length %d", len(p.arr))
	}
	ch := ScanChunk{More: p.arr[0] != 0, Next: p.arr[1]}
	ch.Entries = make([]Entry, 0, (len(p.arr)-2)/2)
	for i := 2; i+1 < len(p.arr); i += 2 {
		ch.Entries = append(ch.Entries, Entry{Key: p.arr[i], Val: p.arr[i+1]})
	}
	return ch, nil
}

// Client is one pipelined connection.
type Client struct {
	nc net.Conn

	mu     sync.Mutex // serializes encoding + enqueueing (wire order = FIFO order)
	w      *netproto.Writer
	closed bool

	// fail is the sticky transport error (*errorBox); once set, every new
	// operation fails fast.  Lock-free on purpose: the read loop must be
	// able to poison the client while an op goroutine holds mu blocked on
	// a full queue — taking mu here would deadlock exactly when the
	// connection dies under a saturated pipeline.
	fail atomic.Pointer[errorBox]

	queue    chan *Pending // FIFO the reader goroutine completes in order
	readDone chan struct{}
}

type errorBox struct{ err error }

// failErr returns the sticky transport error, or nil.
func (c *Client) failErr() error {
	if b := c.fail.Load(); b != nil {
		return b.err
	}
	return nil
}

// Dial connects with the given pipeline window: up to depth requests may
// be outstanding before an async call implicitly flushes and blocks.
// depth <= 0 means 256.
func Dial(addr string, depth int) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc, depth), nil
}

// NewClient wraps an established connection (tests use net.Pipe-like
// transports).
func NewClient(nc net.Conn, depth int) *Client {
	if depth <= 0 {
		depth = 256
	}
	c := &Client{
		nc:       nc,
		w:        netproto.NewWriter(nc),
		queue:    make(chan *Pending, depth),
		readDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// readLoop completes pendings in FIFO order; on transport failure it fails
// the current and all later pendings with the same error, poisons the
// client so new operations fail fast instead of encoding onto a dead
// connection, and closes the socket to unwedge any writer blocked in the
// kernel.
func (c *Client) readLoop() {
	defer close(c.readDone)
	r := netproto.NewReader(c.nc)
	var rep netproto.Reply
	var fail error
	for p := range c.queue {
		if fail == nil {
			if err := r.ReadReply(&rep); err != nil {
				fail = err
				c.poison(err)
			}
		}
		if fail != nil {
			p.err = fail
			close(p.done)
			continue
		}
		p.kind = rep.Kind
		switch rep.Kind {
		case netproto.KindInt:
			p.n = rep.Int
		case netproto.KindSimple:
			p.text = string(rep.Line)
		case netproto.KindError:
			p.text = string(rep.Line)
		case netproto.KindBulk:
			if rep.Bulk == nil {
				p.null = true
			} else {
				p.text = string(rep.Bulk)
			}
		case netproto.KindArray:
			p.arr = append(p.arr, rep.Array...)
		}
		close(p.done)
	}
}

// poison records the first transport error (new operations fail fast with
// it) and closes the socket so a writer blocked against a dead peer's full
// kernel buffer gets unstuck.  Safe from any goroutine without locks;
// Close-induced read errors are shadowed by the closed flag, which ops
// check first.
func (c *Client) poison(err error) {
	if c.fail.CompareAndSwap(nil, &errorBox{err}) {
		c.nc.Close()
	}
}

// enqueue registers p as the next expected reply.  Called with mu held,
// immediately after encoding p's request.  If the window is full, the
// write buffer is flushed first — the server can only drain the window by
// seeing the requests — and then the send blocks until the reader frees a
// slot, which bounds outstanding requests without deadlock (on a failed
// connection the reader drains the queue failing everything, so the send
// still returns promptly).
func (c *Client) enqueue(p *Pending) error {
	select {
	case c.queue <- p:
	default:
		if err := c.w.Flush(); err != nil {
			c.fail.CompareAndSwap(nil, &errorBox{err})
			p.err = err
			close(p.done)
			return err
		}
		c.queue <- p
	}
	return nil
}

func (c *Client) newPending() *Pending { return &Pending{done: make(chan struct{})} }

// dead reports (with mu held) whether new operations must fail fast, and
// fails p with the reason when so.
func (c *Client) dead(p *Pending) bool {
	switch {
	case c.closed:
		p.err = ErrClosed
	case c.failErr() != nil:
		p.err = c.failErr()
	default:
		return false
	}
	close(p.done)
	return true
}

// SetAsync pipelines SET key val.
func (c *Client) SetAsync(key, val int64) *Pending {
	p := c.newPending()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead(p) {
		return p
	}
	c.w.BeginCommand(3)
	c.w.ArgString(netproto.CmdSet)
	c.w.ArgInt(key)
	c.w.ArgInt(val)
	c.enqueue(p)
	return p
}

// DelAsync pipelines DEL key.
func (c *Client) DelAsync(key int64) *Pending {
	p := c.newPending()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead(p) {
		return p
	}
	c.w.BeginCommand(2)
	c.w.ArgString(netproto.CmdDel)
	c.w.ArgInt(key)
	c.enqueue(p)
	return p
}

// GetAsync pipelines GET key.
func (c *Client) GetAsync(key int64) *Pending {
	p := c.newPending()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead(p) {
		return p
	}
	c.w.BeginCommand(2)
	c.w.ArgString(netproto.CmdGet)
	c.w.ArgInt(key)
	c.enqueue(p)
	return p
}

// SumAsync pipelines SUM lo hi.
func (c *Client) SumAsync(lo, hi int64) *Pending {
	p := c.newPending()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead(p) {
		return p
	}
	c.w.BeginCommand(3)
	c.w.ArgString(netproto.CmdSum)
	c.w.ArgInt(lo)
	c.w.ArgInt(hi)
	c.enqueue(p)
	return p
}

// ScanAsync pipelines SCAN lo n: up to n entries with keys ≥ lo in
// ascending key order, merged across all shards (one consistent cut when
// the server runs with Config.Consistent).
func (c *Client) ScanAsync(lo int64, n int) *Pending {
	p := c.newPending()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead(p) {
		return p
	}
	c.w.BeginCommand(3)
	c.w.ArgString(netproto.CmdScan)
	c.w.ArgInt(lo)
	c.w.ArgInt(int64(n))
	c.enqueue(p)
	return p
}

// ScanChunkAsync pipelines SCANC lo n excl: one cursor page of up to n
// entries with keys ≥ lo (or > lo when excl), in ascending key order.
func (c *Client) ScanChunkAsync(lo int64, n int, excl bool) *Pending {
	p := c.newPending()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead(p) {
		return p
	}
	c.w.BeginCommand(4)
	c.w.ArgString(netproto.CmdScanCursor)
	c.w.ArgInt(lo)
	c.w.ArgInt(int64(n))
	if excl {
		c.w.ArgInt(1)
	} else {
		c.w.ArgInt(0)
	}
	c.enqueue(p)
	return p
}

// LenAsync pipelines LEN.
func (c *Client) LenAsync() *Pending {
	p := c.newPending()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead(p) {
		return p
	}
	c.w.BeginCommand(1)
	c.w.ArgString(netproto.CmdLen)
	c.enqueue(p)
	return p
}

// MCASAsync pipelines MCAS k1 e1 n1 [...]: swap every keys[i] from
// expects[i] to news[i] atomically, all or nothing.
func (c *Client) MCASAsync(keys, expects, news []int64) *Pending {
	p := c.newPending()
	if len(keys) == 0 || len(keys) != len(expects) || len(keys) != len(news) {
		p.err = errors.New("netclient: MCAS wants equal-length non-empty key/expect/new slices")
		close(p.done)
		return p
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead(p) {
		return p
	}
	c.w.BeginCommand(1 + 3*len(keys))
	c.w.ArgString(netproto.CmdMCAS)
	for i := range keys {
		c.w.ArgInt(keys[i])
		c.w.ArgInt(expects[i])
		c.w.ArgInt(news[i])
	}
	c.enqueue(p)
	return p
}

// PromoteAsync pipelines PROMOTE: a following server stops replicating
// and starts accepting writes.
func (c *Client) PromoteAsync() *Pending {
	p := c.newPending()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead(p) {
		return p
	}
	c.w.BeginCommand(1)
	c.w.ArgString(netproto.CmdPromote)
	c.enqueue(p)
	return p
}

// PingAsync pipelines PING.
func (c *Client) PingAsync() *Pending {
	p := c.newPending()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead(p) {
		return p
	}
	c.w.BeginCommand(1)
	c.w.ArgString(netproto.CmdPing)
	c.enqueue(p)
	return p
}

// StatsAsync pipelines STATS.
func (c *Client) StatsAsync() *Pending {
	p := c.newPending()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead(p) {
		return p
	}
	c.w.BeginCommand(1)
	c.w.ArgString(netproto.CmdStats)
	c.enqueue(p)
	return p
}

// Flush pushes all encoded-but-buffered requests to the wire.  Waiting on
// a Pending without flushing first can deadlock a quiet connection — the
// synchronous wrappers and window-full sends flush for you.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if err := c.failErr(); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		c.fail.CompareAndSwap(nil, &errorBox{err})
		return err
	}
	return nil
}

// Set is the synchronous SET: flushes and waits.
func (c *Client) Set(key, val int64) error {
	p := c.SetAsync(key, val)
	c.Flush()
	return p.Err()
}

// Del is the synchronous DEL.
func (c *Client) Del(key int64) error {
	p := c.DelAsync(key)
	c.Flush()
	return p.Err()
}

// Get is the synchronous GET.
func (c *Client) Get(key int64) (int64, bool, error) {
	p := c.GetAsync(key)
	c.Flush()
	return p.Value()
}

// Sum is the synchronous SUM over [lo, hi].
func (c *Client) Sum(lo, hi int64) (int64, error) {
	p := c.SumAsync(lo, hi)
	c.Flush()
	return p.Int()
}

// Scan is the synchronous SCAN: up to n entries with keys ≥ lo.
func (c *Client) Scan(lo int64, n int) ([]Entry, error) {
	p := c.ScanAsync(lo, n)
	c.Flush()
	return p.Entries()
}

// ScanChunk is the synchronous SCANC: one cursor page.
func (c *Client) ScanChunk(lo int64, n int, excl bool) (ScanChunk, error) {
	p := c.ScanChunkAsync(lo, n, excl)
	c.Flush()
	return p.Chunk()
}

// Promote is the synchronous PROMOTE.
func (c *Client) Promote() error {
	p := c.PromoteAsync()
	c.Flush()
	return p.Err()
}

// Len is the synchronous LEN.
func (c *Client) Len() (int64, error) {
	p := c.LenAsync()
	c.Flush()
	return p.Int()
}

// MCAS is the synchronous multi-key compare-and-swap; true = swapped.
func (c *Client) MCAS(keys, expects, news []int64) (bool, error) {
	p := c.MCASAsync(keys, expects, news)
	c.Flush()
	n, err := p.Int()
	return n == 1, err
}

// Ping is the synchronous PING.
func (c *Client) Ping() error {
	p := c.PingAsync()
	c.Flush()
	return p.Err()
}

// Stats fetches the server's coalescing counters as "k=v ..." text.
func (c *Client) Stats() (string, error) {
	p := c.StatsAsync()
	c.Flush()
	return p.Text()
}

// Scanner iterates a key range in ascending order, fetching one SCANC
// page at a time:
//
//	sc := c.Scanner(0, 512)
//	for sc.Next() {
//		e := sc.Entry()
//		...
//	}
//	if err := sc.Err(); err != nil { ... }
//
// Each page is served from a fresh server-side snapshot, so a long
// iteration observes a sequence of consistent cuts rather than one; the
// keys still arrive in strictly ascending order with no duplicates.
type Scanner struct {
	c     *Client
	chunk int
	cur   int64
	excl  bool
	page  []Entry
	i     int // index of the current entry in page; -1 before first Next
	more  bool
	err   error
}

// Scanner starts an iteration at keys ≥ lo fetching pages of the given
// size (<= 0 means 512).
func (c *Client) Scanner(lo int64, chunk int) *Scanner {
	if chunk <= 0 {
		chunk = 512
	}
	return &Scanner{c: c, chunk: chunk, cur: lo, i: -1, more: true}
}

// Next advances to the next entry, fetching a new page when the current
// one is exhausted; false means the range is done or the scan failed
// (check Err).
func (s *Scanner) Next() bool {
	if s.err != nil {
		return false
	}
	if s.i+1 < len(s.page) {
		s.i++
		return true
	}
	for s.more {
		ch, err := s.c.ScanChunk(s.cur, s.chunk, s.excl)
		if err != nil {
			s.err = err
			return false
		}
		s.page, s.i = ch.Entries, -1
		s.cur, s.excl, s.more = ch.Next, true, ch.More
		if len(s.page) > 0 {
			s.i = 0
			return true
		}
	}
	return false
}

// Entry returns the current entry; valid after a true Next.
func (s *Scanner) Entry() Entry { return s.page[s.i] }

// Err returns the first error the iteration hit, if any.
func (s *Scanner) Err() error { return s.err }

// Close flushes, closes the connection, and waits for the reader to finish
// failing or completing every outstanding Pending.  Safe to call twice.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.w.Flush()
	close(c.queue) // senders are excluded by closed; reader drains and exits
	err := c.nc.Close()
	c.mu.Unlock()
	<-c.readDone
	return err
}

package netclient

import (
	"net"
	"testing"
	"time"
)

// TestAbruptConnectionLoss is the regression test for a server dying with
// a pipeline in flight: a fake server acks the first few requests and then
// drops the connection.  Every outstanding Pending must complete (acked
// ones cleanly, the rest with the transport error), and — the part that
// used to hang — every operation issued after the loss must fail fast
// instead of encoding onto the dead connection.
func TestAbruptConnectionLoss(t *testing.T) {
	const acks = 5
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		// Ack the first few in-order requests, then die mid-pipeline.
		// (Replies may race ahead of the requests themselves; the
		// protocol is strictly in-order so the client pairs them up.)
		for i := 0; i < acks; i++ {
			nc.Write([]byte("+OK\r\n"))
		}
		nc.Close()
	}()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(nc, 8)
	defer c.Close()

	const total = 100
	pend := make([]*Pending, 0, total)
	for i := 0; i < total; i++ {
		pend = append(pend, c.SetAsync(int64(i), int64(i)))
	}
	c.Flush()

	// Every pending completes; none may hang.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i, p := range pend {
			err := p.Err()
			if i < acks && err != nil {
				t.Errorf("acked request %d: %v", i, err)
			}
			if i >= acks && err == nil {
				t.Errorf("request %d succeeded after connection loss", i)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pendings did not complete after connection loss")
	}

	// New operations fail fast with the sticky transport error.
	start := time.Now()
	if err := c.SetAsync(1, 1).Err(); err == nil {
		t.Fatal("SetAsync after loss returned nil error")
	}
	if err := c.Flush(); err == nil {
		t.Fatal("Flush after loss returned nil error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("post-loss operations took %v, want fail-fast", d)
	}
}

package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mvgc/internal/bench"
	"mvgc/internal/invindex"
	"mvgc/internal/ycsb"
)

// Table3Config parameterizes the inverted-index co-running experiment.
type Table3Config struct {
	// Vocab and MeanDocLen shape the synthetic corpus.
	Vocab      uint64
	MeanDocLen int
	// InitialDocs is the corpus size before measurement begins.
	InitialDocs int
	// Threads is the total worker count (paper: 144); QueryThreads is the
	// sweep variable p (paper: 10, 20, 40, 80).
	Threads      int
	QueryThreads []int
	// Window is the co-running measurement window (paper: 30 s).
	Window time.Duration
	// DocsPerBatch is the ingestion batch size.
	DocsPerBatch int
	// TopK is the query result size (paper: top-10).
	TopK int
	// Shards selects the hash-partitioned ShardedIndex when positive; zero
	// runs the paper's single index.  RunTable3 sweeps the single index and
	// then appends one sharded row at this shard count.
	Shards int
}

// QueryThreadSweep returns the default sweep of query-thread counts for a
// total thread budget: 25%, 50% and all-but-one, mirroring the paper's
// p ∈ {10, 20, 40, 80} of 144.
func QueryThreadSweep(threads int) []int {
	var qts []int
	for _, f := range []int{4, 2} {
		if threads/f >= 1 {
			qts = append(qts, threads/f)
		}
	}
	if threads > 1 {
		qts = append(qts, threads-1)
	}
	if len(qts) == 0 {
		qts = []int{1}
	}
	return qts
}

// DefaultTable3 returns a host-scaled configuration.
func DefaultTable3() Table3Config {
	threads := runtime.GOMAXPROCS(0)
	qts := QueryThreadSweep(threads)
	return Table3Config{
		Vocab:        50_000,
		MeanDocLen:   48,
		InitialDocs:  2_000,
		Threads:      threads,
		QueryThreads: qts,
		Window:       3 * time.Second,
		DocsPerBatch: 16,
		TopK:         10,
		Shards:       2,
	}
}

// Table3Row is one line of Table 3: the time to run the updates alone
// (Tu), the queries alone (Tq), and both together (Tuq ≈ the window).
type Table3Row struct {
	QueryThreads int
	Shards       int   // 0 for the paper's single index
	Updates      int64 // documents ingested during the window
	Queries      int64 // and-queries answered during the window
	Tu, Tq, Tuq  float64
}

// table3Index is the surface the experiment drives; invindex.Index and
// invindex.ShardedIndex both provide it, pid-free.
type table3Index interface {
	AddDocuments(docs []invindex.Doc)
	AndQuery(term1, term2 uint64, k int) []invindex.ScoredDoc
	Close()
}

// RunTable3Row measures one sweep point: p query threads and one ingesting
// writer share the window; then the same number of updates and queries are
// re-run separately with all threads.  cfg.Shards > 0 swaps in the sharded
// index.
func RunTable3Row(cfg Table3Config, p int) Table3Row {
	if p >= cfg.Threads {
		p = cfg.Threads - 1 // leave room for the writer process
	}
	if p < 1 {
		p = 1
	}
	ix := mustIndex(cfg)
	corpus := invindex.NewCorpus(invindex.CorpusConfig{Vocab: cfg.Vocab, MeanDocLen: cfg.MeanDocLen, Seed: 7})
	for d := 0; d < cfg.InitialDocs; d += cfg.DocsPerBatch {
		ix.AddDocuments(nextDocs(corpus, cfg.DocsPerBatch))
	}
	hot := corpus.HotTerms(64)

	// Phase 1: co-run queries and updates for the window.
	var updates, queries atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the single ingesting writer (parallel unions inside)
		defer wg.Done()
		for !stop.Load() {
			ix.AddDocuments(nextDocs(corpus, cfg.DocsPerBatch))
			updates.Add(int64(cfg.DocsPerBatch))
		}
	}()
	for q := 0; q < p; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := ycsb.NewSplitMix64(uint64(q)*31 + 5)
			for !stop.Load() {
				t1 := hot[rng.Intn(uint64(len(hot)))]
				t2 := hot[rng.Intn(uint64(len(hot)))]
				ix.AndQuery(t1, t2, cfg.TopK)
				queries.Add(1)
			}
		}(q)
	}
	start := time.Now()
	time.Sleep(cfg.Window)
	stop.Store(true)
	wg.Wait()
	tuq := time.Since(start).Seconds()
	u, q := updates.Load(), queries.Load()
	ix.Close()

	// Phase 2: the same number of updates alone, all threads available to
	// the parallel union.
	ix2 := mustIndex(cfg)
	corpus2 := invindex.NewCorpus(invindex.CorpusConfig{Vocab: cfg.Vocab, MeanDocLen: cfg.MeanDocLen, Seed: 7})
	for d := 0; d < cfg.InitialDocs; d += cfg.DocsPerBatch {
		ix2.AddDocuments(nextDocs(corpus2, cfg.DocsPerBatch))
	}
	startU := time.Now()
	for done := int64(0); done < u; done += int64(cfg.DocsPerBatch) {
		ix2.AddDocuments(nextDocs(corpus2, cfg.DocsPerBatch))
	}
	tu := time.Since(startU).Seconds()

	// Phase 3: the same number of queries alone, across all threads.
	startQ := time.Now()
	var qwg sync.WaitGroup
	per := q / int64(cfg.Threads)
	for w := 0; w < cfg.Threads; w++ {
		qwg.Add(1)
		go func(w int) {
			defer qwg.Done()
			rng := ycsb.NewSplitMix64(uint64(w)*13 + 3)
			n := per
			if w == 0 {
				n += q % int64(cfg.Threads)
			}
			for i := int64(0); i < n; i++ {
				t1 := hot[rng.Intn(uint64(len(hot)))]
				t2 := hot[rng.Intn(uint64(len(hot)))]
				ix2.AndQuery(t1, t2, cfg.TopK)
			}
		}(w)
	}
	qwg.Wait()
	tq := time.Since(startQ).Seconds()
	ix2.Close()

	return Table3Row{QueryThreads: p, Shards: cfg.Shards, Updates: u, Queries: q, Tu: tu, Tq: tq, Tuq: tuq}
}

func mustIndex(cfg Table3Config) table3Index {
	var (
		ix  table3Index
		err error
	)
	if cfg.Shards > 0 {
		ix, err = invindex.NewSharded(cfg.Shards, cfg.Threads+1, 2048)
	} else {
		ix, err = invindex.New(cfg.Threads+1, 2048)
	}
	if err != nil {
		panic(err)
	}
	return ix
}

func nextDocs(c *invindex.Corpus, n int) []invindex.Doc {
	docs := make([]invindex.Doc, n)
	for i := range docs {
		docs[i] = c.Next()
	}
	return docs
}

// RunTable3 sweeps query-thread counts on the paper's single index and
// renders Table 3 (if co-running adds little overhead, Tu + Tq ≈ Tu+q),
// then appends one row for the hash-sharded index (cfg.Shards shards) at
// the sweep's largest p.  It returns the measured rows in the BENCH_inv/v1
// record form for machine-readable output.
func RunTable3(cfg Table3Config, w io.Writer) []bench.InvRecord {
	t := bench.NewTable(
		fmt.Sprintf("Table 3: inverted index, %d threads total (times in seconds)", cfg.Threads),
		"p (query threads)", "updates", "queries", "Tu", "Tq", "Tu+Tq", "Tu+q")
	var recs []bench.InvRecord
	addRow := func(label string, r Table3Row) {
		t.AddRow(label, fmt.Sprint(r.Updates), fmt.Sprint(r.Queries),
			bench.F2(r.Tu), bench.F2(r.Tq), bench.F2(r.Tu+r.Tq), bench.F2(r.Tuq))
		recs = append(recs, bench.InvRecord{
			QueryThreads: r.QueryThreads, Shards: r.Shards,
			Updates: r.Updates, Queries: r.Queries,
			TuSec: r.Tu, TqSec: r.Tq, TuqSec: r.Tuq,
		})
	}
	single := cfg
	single.Shards = 0
	for _, p := range single.QueryThreads {
		r := RunTable3Row(single, p)
		addRow(fmt.Sprint(r.QueryThreads), r)
	}
	if cfg.Shards > 0 && len(cfg.QueryThreads) > 0 {
		r := RunTable3Row(cfg, cfg.QueryThreads[len(cfg.QueryThreads)-1])
		addRow(fmt.Sprintf("%d (S=%d)", r.QueryThreads, r.Shards), r)
	}
	t.Fprint(w)
	return recs
}

package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"mvgc/internal/bench"
	"mvgc/internal/core"
	"mvgc/internal/ftree"
	"mvgc/internal/ycsb"
)

// LongReaderConfig parameterizes the long-reader-plus-write-storm
// experiment: one read transaction pins a snapshot for the whole run while
// W writers each commit a fixed number of point updates.  The fixed op
// count (rather than a duration) makes the retained-version ceiling a
// deterministic function of the configuration, so peaks are comparable
// across algorithms and across runs.
type LongReaderConfig struct {
	// Records is the loaded key-space size.
	Records uint64
	// Writers is the number of concurrent writer processes W.
	Writers int
	// OpsPerWriter is the number of committed point updates per writer.
	OpsPerWriter int
	// Algorithms to run; nil means sbgc, epoch, hp, pswf.  rcu is excluded
	// by default: its writers block on the pinned reader, so the storm
	// would deadlock by design rather than measure anything.
	Algorithms []string
}

// DefaultLongReader returns a host-scaled configuration.
func DefaultLongReader() LongReaderConfig {
	w := runtime.GOMAXPROCS(0) - 1
	if w < 1 {
		w = 1
	}
	if w > 8 {
		w = 8
	}
	return LongReaderConfig{
		Records:      100_000,
		Writers:      w,
		OpsPerWriter: 200_000,
		Algorithms:   []string{"sbgc", "epoch", "hp", "pswf"},
	}
}

// RunLongReaderCell runs the storm against one Version Maintenance
// algorithm and returns its measured cell.  PeakVersions is the largest
// Uncollected() observed while the reader was pinned; for a space-bounded
// algorithm it plateaus at O(P·pins), while an epoch-style collector —
// unable to advance past the pinned reader — retains O(total ops).
// PeakHeapBytes is the matching Go-heap high-water mark (sampled
// HeapAlloc after a normalizing GC), and WriteMops the writers' combined
// committed-update throughput while contending with the pinned snapshot.
func RunLongReaderCell(cfg LongReaderConfig, alg string) bench.MemRecord {
	ops := ftree.New[uint64, uint64, struct{}](ftree.IntCmp[uint64], ftree.NoAug[uint64, uint64](), 512)
	initial := make([]ftree.Entry[uint64, uint64], cfg.Records)
	for i := range initial {
		initial[i] = ftree.Entry[uint64, uint64]{Key: uint64(i), Val: uint64(i)}
	}
	// pid 0 is the pinned reader; pids 1..W are the writers.
	m, err := core.NewMap(core.Config{Algorithm: alg, Procs: cfg.Writers + 1}, ops, initial)
	if err != nil {
		panic(err)
	}
	runtime.GC() // normalize the heap baseline across cells

	// The long reader: pin a snapshot and hold it (blocked on release)
	// until the storm is over and the peaks have been sampled.
	release := make(chan struct{})
	pinned := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		m.Read(0, func(s core.Snapshot[uint64, uint64, struct{}]) {
			s.Get(0)
			close(pinned)
			<-release
		})
	}()
	<-pinned

	// The sampler tracks the peak retained-version count and heap
	// high-water mark, taking one final sample after the last commit (the
	// true peak for every algorithm) before acknowledging the stop.
	var (
		peakVersions int64
		peakHeap     uint64
		stopSample   = make(chan struct{})
		samplerDone  = make(chan struct{})
	)
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		sample := func() {
			if u := int64(m.Uncollected()); u > peakVersions {
				peakVersions = u
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peakHeap {
				peakHeap = ms.HeapAlloc
			}
		}
		for {
			sample()
			select {
			case <-stopSample:
				sample()
				return
			case <-tick.C:
			}
		}
	}()

	start := time.Now()
	var writerWG sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		writerWG.Add(1)
		go func(pid int) {
			defer writerWG.Done()
			g := ycsb.NewSplitMix64(uint64(pid)*0x9e3779b9 + 1)
			for i := 0; i < cfg.OpsPerWriter; i++ {
				k := g.Intn(cfg.Records)
				v := uint64(i)
				m.Update(pid, func(t *core.Txn[uint64, uint64, struct{}]) {
					t.Insert(k, v)
				})
			}
		}(w + 1)
	}
	writerWG.Wait()
	elapsed := time.Since(start)

	close(stopSample)
	<-samplerDone
	close(release)
	readerWG.Wait()

	m.Close()
	if live := ops.Live(); live != 0 {
		panic(fmt.Sprintf("longreader %s: leaked %d nodes", alg, live))
	}
	totalOps := float64(cfg.Writers) * float64(cfg.OpsPerWriter)
	return bench.MemRecord{
		Algorithm:     alg,
		PeakVersions:  peakVersions,
		PeakHeapBytes: peakHeap,
		WriteMops:     totalOps / elapsed.Seconds() / 1e6,
	}
}

// RunLongReader runs the storm on every configured algorithm, renders the
// comparison table, and returns the measured cells (for -memjson).
func RunLongReader(cfg LongReaderConfig, w io.Writer) []bench.MemRecord {
	algs := cfg.Algorithms
	if len(algs) == 0 {
		algs = DefaultLongReader().Algorithms
	}
	title := fmt.Sprintf("Long reader + write storm: %d writers x %d ops, %d records",
		cfg.Writers, cfg.OpsPerWriter, cfg.Records)
	t := bench.NewTable(title, "algorithm", "peak versions", "peak heap MiB", "write Mop/s")
	var records []bench.MemRecord
	for _, alg := range algs {
		r := RunLongReaderCell(cfg, alg)
		records = append(records, r)
		t.AddRow(alg,
			fmt.Sprintf("%d", r.PeakVersions),
			bench.F2(float64(r.PeakHeapBytes)/(1<<20)),
			bench.F2(r.WriteMops))
	}
	t.Fprint(w)
	return records
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mvgc/internal/ycsb"
)

// Tiny configurations: these tests verify the harnesses are wired
// correctly (leak-free, right rows, plausible metrics), not performance.

func tinyTable2() Table2Config {
	return Table2Config{
		N:          5_000,
		Procs:      4,
		Duration:   80 * time.Millisecond,
		Reps:       1,
		Algorithms: []string{"pswf", "epoch"},
		NQs:        []int{10},
		NUs:        []int{10},
	}
}

func TestRunTable2CellMetrics(t *testing.T) {
	c := RunTable2Cell(tinyTable2(), "pswf", 10, 10)
	if c.QueryMops <= 0 {
		t.Error("no queries measured")
	}
	if c.UpdateMops <= 0 {
		t.Error("no updates measured")
	}
	if c.MaxVersions < 1 || c.MaxVersions > 2*4+1 {
		t.Errorf("MaxVersions = %d outside PSWF bound", c.MaxVersions)
	}
}

func TestRunTable2Renders(t *testing.T) {
	var buf bytes.Buffer
	cells := RunTable2(tinyTable2(), &buf)
	if len(cells) != 2 { // 2 algorithms × 1 grid point
		t.Fatalf("got %d cells", len(cells))
	}
	out := buf.String()
	for _, want := range []string{"Table 2a", "Table 2b", "Table 2c", "pswf", "epoch"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFigure6Renders(t *testing.T) {
	cfg := Figure6Config{Table2Config: tinyTable2(), NQ: 10}
	cfg.NUs = []int{10, 100}
	var buf bytes.Buffer
	RunFigure6(cfg, &buf)
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("missing title")
	}
	if got := strings.Count(buf.String(), "\n"); got < 4 {
		t.Errorf("too few lines: %d", got)
	}
}

func TestRunFigure7CellOursAndBaseline(t *testing.T) {
	cfg := DefaultFigure7()
	cfg.Records = 20_000
	cfg.Threads = 4
	cfg.Duration = 80 * time.Millisecond
	cfg.MaxLatency = time.Millisecond
	for _, s := range []string{"ours", "ours-sharded", "hashmap"} {
		if mops := RunFigure7Cell(cfg, s, ycsb.WorkloadA); mops <= 0 {
			t.Errorf("%s: no throughput measured", s)
		}
	}
}

func TestRunFigure7ReturnsRecords(t *testing.T) {
	cfg := DefaultFigure7()
	cfg.Records = 5_000
	cfg.Threads = 2
	cfg.Shards = 2
	cfg.Duration = 50 * time.Millisecond
	cfg.Structures = []string{"ours-sharded"}
	cfg.Workloads = []ycsb.Workload{ycsb.WorkloadB}
	var buf bytes.Buffer
	recs := RunFigure7(cfg, &buf)
	if len(recs) != 1 || recs[0].Structure != "ours-sharded" || recs[0].Workload != ycsb.WorkloadB.Name || recs[0].Mops <= 0 {
		t.Fatalf("records = %+v", recs)
	}
}

func TestRunFigure7Renders(t *testing.T) {
	cfg := DefaultFigure7()
	cfg.Records = 10_000
	cfg.Threads = 2
	cfg.Duration = 50 * time.Millisecond
	cfg.Structures = []string{"ours", "skiplist"}
	cfg.Workloads = []ycsb.Workload{ycsb.WorkloadC}
	var buf bytes.Buffer
	RunFigure7(cfg, &buf)
	out := buf.String()
	for _, want := range []string{"Figure 7", "ours", "skiplist", "C (100/0)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTable3Row(t *testing.T) {
	cfg := DefaultTable3()
	cfg.Threads = 4
	cfg.InitialDocs = 100
	cfg.Vocab = 2_000
	cfg.MeanDocLen = 16
	cfg.Window = 100 * time.Millisecond
	r := RunTable3Row(cfg, 2)
	if r.Updates <= 0 || r.Queries <= 0 {
		t.Fatalf("no work measured: %+v", r)
	}
	if r.Tu <= 0 || r.Tq <= 0 || r.Tuq <= 0 {
		t.Fatalf("missing timings: %+v", r)
	}
	// p is clamped into [1, Threads-1].
	r2 := RunTable3Row(cfg, 100)
	if r2.QueryThreads != cfg.Threads-1 {
		t.Fatalf("p not clamped: %d", r2.QueryThreads)
	}
}

func TestQueryThreadSweep(t *testing.T) {
	if got := QueryThreadSweep(8); len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 7 {
		t.Fatalf("sweep(8) = %v", got)
	}
	if got := QueryThreadSweep(1); len(got) != 1 {
		t.Fatalf("sweep(1) = %v", got)
	}
}

package experiments

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mvgc/internal/baseline"
	"mvgc/internal/batch"
	"mvgc/internal/bench"
	"mvgc/internal/core"
	"mvgc/internal/ftree"
	"mvgc/internal/shard"
	"mvgc/internal/wal"
	"mvgc/internal/ycsb"
)

// Figure7Config parameterizes the YCSB comparison of the batched
// functional tree against the concurrent baselines.
type Figure7Config struct {
	// Records is the loaded key-space size (paper: 5e7).
	Records uint64
	// Threads is the number of client threads.
	Threads int
	// Shards is the shard count S for the "ours-sharded" structure
	// (default 8).
	Shards int
	// Duration is the measured window per run.
	Duration time.Duration
	// MaxLatency bounds batched-update latency (paper: 50 ms).
	MaxLatency time.Duration
	// Structures to run; nil means ours plus every baseline.
	Structures []string
	// Workloads to run; nil means YCSB A, B, C.
	Workloads []ycsb.Workload
	// WAL attaches a write-ahead log (temp directory, real disk) to the
	// ours-sharded structure: every batch commit appends its post-images
	// and fsyncs per WALFsync, measuring the durability tax.  Other
	// structures ignore it.
	WAL bool
	// WALFsync is the fsync policy for WAL cells ("always", "interval",
	// "off"; default always).
	WALFsync string
}

// DefaultFigure7 returns a host-scaled configuration.
func DefaultFigure7() Figure7Config {
	return Figure7Config{
		Records:    1_000_000,
		Threads:    runtime.GOMAXPROCS(0),
		Shards:     8,
		Duration:   3 * time.Second,
		MaxLatency: 50 * time.Millisecond,
		Structures: append([]string{"ours", "ours-sharded"}, baseline.Names()...),
		Workloads:  []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC},
	}
}

// RunFigure7Cell measures one (structure, workload) pair and returns
// million operations per second.
func RunFigure7Cell(cfg Figure7Config, structure string, w ycsb.Workload) float64 {
	switch structure {
	case "ours":
		return runYCSBOurs(cfg, w)
	case "ours-sharded":
		return runYCSBOursSharded(cfg, w)
	}
	m := baseline.New(structure)
	if m == nil {
		panic("unknown structure " + structure)
	}
	// Load phase: parallel, not measured.
	loadBaseline(m, cfg.Records, cfg.Threads)
	r := bench.Run(cfg.Threads, cfg.Duration, func(worker int, stop *atomic.Bool, c *bench.Counter) {
		g := ycsb.NewGenerator(w, cfg.Records, uint64(worker)*0x9e3779b9+1)
		for !stop.Load() {
			op := g.Next()
			switch op.Kind {
			case ycsb.OpRead:
				m.Get(op.Key)
			case ycsb.OpScan:
				// The baselines are point structures with no ordered
				// iteration; a scan degrades to Len consecutive point
				// reads, the closest unordered analogue, and still counts
				// as one operation like everywhere else.
				for i := 0; i < op.Len; i++ {
					m.Get(op.Key + uint64(i))
				}
			default:
				m.Put(op.Key, op.Val)
			}
			c.Add(1)
		}
	})
	return r.Mops()
}

// loadBaseline inserts keys 0..records-1 in per-thread shuffled order:
// sorted insertion would degenerate the unbalanced external BST into a
// path and unfairly skew Figure 7 (YCSB's own loader inserts hashed keys).
func loadBaseline(m baseline.Map, records uint64, threads int) {
	var wg sync.WaitGroup
	per := records / uint64(threads)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			lo := uint64(t) * per
			hi := lo + per
			if t == threads-1 {
				hi = records
			}
			keys := make([]uint64, 0, hi-lo)
			for k := lo; k < hi; k++ {
				keys = append(keys, k)
			}
			rng := ycsb.NewSplitMix64(uint64(t)*2654435761 + 17)
			for i := len(keys) - 1; i > 0; i-- {
				j := rng.Intn(uint64(i + 1))
				keys[i], keys[j] = keys[j], keys[i]
			}
			for _, k := range keys {
				m.Put(k, k)
			}
		}(t)
	}
	wg.Wait()
}

// runYCSBOurs runs the workload against the transactional functional tree
// with Appendix-F batching: reads are delay-free read transactions;
// updates are submitted to the single combining writer.
func runYCSBOurs(cfg Figure7Config, w ycsb.Workload) float64 {
	// A fine grain lets a large commit batch fan out across all cores:
	// a 32k-request batch at grain 512 yields ~64-way parallelism.
	ops := ftree.New[uint64, uint64, struct{}](ftree.IntCmp[uint64], ftree.NoAug[uint64, uint64](), 512)
	initial := make([]ftree.Entry[uint64, uint64], cfg.Records)
	for i := range initial {
		initial[i] = ftree.Entry[uint64, uint64]{Key: uint64(i), Val: uint64(i)}
	}
	// Processes: Threads readers + 1 combining writer, all leased handles.
	m, err := core.NewMap(core.Config{Algorithm: "pswf", Procs: cfg.Threads + 1}, ops, initial)
	if err != nil {
		panic(err)
	}
	b := batch.New(m, batch.Config{
		Clients:    cfg.Threads,
		BufCap:     1 << 15,
		MaxLatency: cfg.MaxLatency,
	}, nil)
	b.Start()
	r := bench.Run(cfg.Threads, cfg.Duration, func(worker int, stop *atomic.Bool, c *bench.Counter) {
		h := m.Handle()
		defer h.Close()
		g := ycsb.NewGenerator(w, cfg.Records, uint64(worker)*0x51ed2701+1)
		for !stop.Load() {
			op := g.Next()
			switch op.Kind {
			case ycsb.OpRead:
				h.Read(func(s core.Snapshot[uint64, uint64, struct{}]) {
					s.Get(op.Key)
				})
			case ycsb.OpScan:
				// A short ordered scan streamed off the pinned snapshot;
				// one map, so every snapshot is trivially consistent.
				h.Read(func(s core.Snapshot[uint64, uint64, struct{}]) {
					s.ScanFunc(op.Key, op.Len, func(uint64, uint64) bool { return true })
				})
			default:
				// Updates and workload E's inserts both route through the
				// combining writer.
				b.Submit(worker, batch.Request[uint64, uint64]{Op: batch.OpInsert, Key: op.Key, Val: op.Val})
			}
			c.Add(1)
		}
	})
	b.Stop()
	m.Close()
	if live := ops.Live(); live != 0 {
		panic(fmt.Sprintf("figure7 ours: leaked %d nodes", live))
	}
	return r.Mops()
}

// runYCSBOursSharded runs the workload against the sharded transactional
// tree: S independent map instances, each with its own combining writer, so
// updates commit S-wide in parallel while reads stay delay-free on their
// key's shard.  Each worker leases one long-lived handle per shard.
func runYCSBOursSharded(cfg Figure7Config, w ycsb.Workload) float64 {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 8
	}
	initial := make([]ftree.Entry[uint64, uint64], cfg.Records)
	for i := range initial {
		initial[i] = ftree.Entry[uint64, uint64]{Key: uint64(i), Val: uint64(i)}
	}
	// Smaller per-shard batches need a finer grain to keep the
	// multi-insert parallel; each shard also commits concurrently with
	// the others, so per-commit parallelism matters less than for the
	// single writer.
	sm, err := shard.New(
		shard.Config[uint64]{
			Shards: shards,
			// Each worker holds a long-lived read handle on every shard
			// AND pins a second per-shard lease inside ViewConsistent
			// during workload E scans; without headroom for that second
			// lease the scan would wait on a pid its own handle holds.
			Procs: 2*cfg.Threads + 1, // handle + in-scan pin per worker, 1 combiner, per shard
			Hash:  ycsb.Mix64,        // spread the sequential key space across shards
		},
		func() *ftree.Ops[uint64, uint64, struct{}] {
			return ftree.New[uint64, uint64, struct{}](ftree.IntCmp[uint64], ftree.NoAug[uint64, uint64](), 512)
		},
		initial,
	)
	if err != nil {
		panic(err)
	}
	if cfg.WAL {
		dir, derr := os.MkdirTemp("", "figure7-wal-")
		if derr != nil {
			panic(derr)
		}
		defer os.RemoveAll(dir)
		pol, perr := wal.ParsePolicy(cfg.WALFsync)
		if perr != nil {
			panic(perr)
		}
		log, _, werr := wal.Open(wal.Options{Dir: dir, Policy: pol})
		if werr != nil {
			panic(werr)
		}
		u64 := func(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
		du64 := func(b []byte) (uint64, error) { return binary.LittleEndian.Uint64(b), nil }
		if aerr := sm.AttachWAL(shard.WALConfig[uint64, uint64]{
			Log: log, EncKey: u64, DecKey: du64, EncVal: u64, DecVal: du64,
		}); aerr != nil {
			panic(aerr)
		}
	}
	sm.StartBatching(batch.Config{
		Clients:    cfg.Threads,
		BufCap:     1 << 15,
		MaxLatency: cfg.MaxLatency,
	}, nil)
	r := bench.Run(cfg.Threads, cfg.Duration, func(worker int, stop *atomic.Bool, c *bench.Counter) {
		// One long-lived handle per shard: reads go straight to the
		// owning shard with zero per-op leasing overhead.
		handles := make([]*core.Handle[uint64, uint64, struct{}], sm.NumShards())
		for i := range handles {
			handles[i] = sm.Shard(i).Handle()
			defer handles[i].Close()
		}
		g := ycsb.NewGenerator(w, cfg.Records, uint64(worker)*0x51ed2701+1)
		for !stop.Load() {
			op := g.Next()
			switch op.Kind {
			case ycsb.OpRead:
				handles[sm.ShardFor(op.Key)].Read(func(s core.Snapshot[uint64, uint64, struct{}]) {
					s.Get(op.Key)
				})
			case ycsb.OpScan:
				// Cross-shard scans pin one consistent GSN cut and stream
				// it through the pooled loser-tree merge, so workload E
				// measures the scan path with its full semantics: one
				// global snapshot per scan, never a torn per-shard mix.
				sm.ViewConsistent(func(s shard.Snap[uint64, uint64, struct{}]) {
					s.ScanFunc(op.Key, op.Len, func(uint64, uint64) bool { return true })
				})
			default:
				sm.Submit(worker, batch.Request[uint64, uint64]{Op: batch.OpInsert, Key: op.Key, Val: op.Val})
			}
			c.Add(1)
		}
	})
	sm.Close()
	if live := sm.Live(); live != 0 {
		panic(fmt.Sprintf("figure7 ours-sharded: leaked %d nodes", live))
	}
	return r.Mops()
}

// RunFigure7 runs every structure on every workload, renders the Figure 7
// bar groups as a table, and returns the measured cells (for -json).
func RunFigure7(cfg Figure7Config, w io.Writer) []bench.YCSBRecord {
	var records []bench.YCSBRecord
	headers := append([]string{"workload"}, cfg.Structures...)
	title := fmt.Sprintf("Figure 7: YCSB throughput (Mop/s), %d threads, %d records",
		cfg.Threads, cfg.Records)
	if cfg.WAL {
		fsync := cfg.WALFsync
		if fsync == "" {
			fsync = "always"
		}
		title += fmt.Sprintf(", WAL fsync=%s", fsync)
	}
	t := bench.NewTable(title, headers...)
	for _, wl := range cfg.Workloads {
		row := []string{wl.Name}
		for _, s := range cfg.Structures {
			mops := RunFigure7Cell(cfg, s, wl)
			records = append(records, bench.YCSBRecord{Structure: s, Workload: wl.Name, Mops: mops, WAL: cfg.WAL})
			row = append(row, bench.F2(mops))
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
	return records
}

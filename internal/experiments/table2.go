// Package experiments implements the paper's evaluation (Section 7): one
// function per table or figure, shared by the cmd/ binaries and the root
// benchmark suite.  Parameters default to host-scaled values; the paper's
// exact configuration (n=1e8 keys, P=141 threads, 15 s runs on 144
// hyperthreads) is reachable through the same knobs.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mvgc/internal/bench"
	"mvgc/internal/core"
	"mvgc/internal/ftree"
	"mvgc/internal/ycsb"
)

// Table2Config parameterizes the Table 2 / Figure 6 experiment: a
// single-writer multi-reader workload over an augmented functional tree,
// sweeping transaction granularity and the Version Maintenance algorithm.
type Table2Config struct {
	// N is the initial tree size (paper: 1e8).
	N int
	// Procs is the total thread count: 1 writer + Procs-1 query threads
	// (paper: 141).
	Procs int
	// Duration is the measured run time per cell (paper: 15 s).
	Duration time.Duration
	// Reps averages this many runs (paper: 3).
	Reps int
	// Algorithms to compare; nil means all of them.
	Algorithms []string
	// NQs and NUs are the query/update granularities to sweep
	// (paper: {10, 1000} × {10, 1000}).
	NQs, NUs []int
}

// DefaultTable2 returns a host-scaled configuration.
func DefaultTable2() Table2Config {
	return Table2Config{
		N:          1_000_000,
		Procs:      runtime.GOMAXPROCS(0),
		Duration:   3 * time.Second,
		Reps:       1,
		Algorithms: []string{"base", "pswf", "pslf", "hp", "epoch", "rcu", "sbgc"},
		NQs:        []int{10, 1000},
		NUs:        []int{10, 1000},
	}
}

// Table2Cell is the measurement for one (algorithm, nq, nu) setting.
type Table2Cell struct {
	Alg         string
	NQ, NU      int
	QueryMops   float64
	UpdateMops  float64
	MaxVersions int64
}

// RunTable2Cell measures one cell: one writer committing transactions of
// nu random insertions each, Procs-1 readers each running transactions of
// nq augmented range-sum queries, for the configured duration.
func RunTable2Cell(cfg Table2Config, alg string, nq, nu int) Table2Cell {
	ops := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
	initial := make([]ftree.Entry[int64, int64], cfg.N)
	for i := range initial {
		initial[i] = ftree.Entry[int64, int64]{Key: int64(i) * 2, Val: int64(i)}
	}
	m, err := core.NewMap(core.Config{Algorithm: alg, Procs: cfg.Procs}, ops, initial)
	if err != nil {
		panic(err)
	}
	m.TrackVersions = true
	keyRange := int64(cfg.N) * 2

	queries := make([]bench.Counter, cfg.Procs)
	updates := make([]bench.Counter, cfg.Procs)
	var stop atomic.Bool
	var wg sync.WaitGroup
	// Writer: one long-lived leased process identity.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := m.Handle()
		defer h.Close()
		rng := ycsb.NewSplitMix64(99)
		for !stop.Load() {
			h.Update(func(tx *core.Txn[int64, int64, int64]) {
				for i := 0; i < nu; i++ {
					tx.Insert(int64(rng.Intn(uint64(keyRange))), int64(rng.Next()>>40))
				}
			})
			updates[0].Add(int64(nu))
		}
	}()
	// Readers: Procs-1 leased identities, each transaction is nq range sums.
	for p := 1; p < cfg.Procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := m.Handle()
			defer h.Close()
			rng := ycsb.NewSplitMix64(uint64(p) * 7919)
			width := keyRange / 1000
			for !stop.Load() {
				h.Read(func(s core.Snapshot[int64, int64, int64]) {
					for i := 0; i < nq; i++ {
						lo := int64(rng.Intn(uint64(keyRange)))
						_ = s.AugRange(lo, lo+width)
					}
				})
				queries[p].Add(int64(nq))
			}
		}(p)
	}
	start := time.Now()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var q, u int64
	for i := range queries {
		q += queries[i].Load()
		u += updates[i].Load()
	}
	cell := Table2Cell{
		Alg:         alg,
		NQ:          nq,
		NU:          nu,
		QueryMops:   float64(q) / elapsed / 1e6,
		UpdateMops:  float64(u) / elapsed / 1e6,
		MaxVersions: m.MaxVersions(),
	}
	m.Close()
	if live := ops.Live(); live != 0 {
		panic(fmt.Sprintf("table2 %s: leaked %d nodes", alg, live))
	}
	return cell
}

// RunTable2 sweeps the full grid and renders the three sub-tables of
// Table 2 (query throughput, update throughput, max live versions).
func RunTable2(cfg Table2Config, w io.Writer) []Table2Cell {
	var cells []Table2Cell
	headers := append([]string{"nq", "nu"}, cfg.Algorithms...)
	qt := bench.NewTable("Table 2a: Query Throughput (Mop/s)", headers...)
	ut := bench.NewTable("Table 2b: Update Throughput (Mop/s)", headers...)
	vt := bench.NewTable("Table 2c: Max # Versions", headers...)
	for _, nq := range cfg.NQs {
		for _, nu := range cfg.NUs {
			qrow := []string{fmt.Sprint(nq), fmt.Sprint(nu)}
			urow := []string{fmt.Sprint(nq), fmt.Sprint(nu)}
			vrow := []string{fmt.Sprint(nq), fmt.Sprint(nu)}
			for _, alg := range cfg.Algorithms {
				var qSum, uSum float64
				var vMax int64
				for r := 0; r < max(cfg.Reps, 1); r++ {
					c := RunTable2Cell(cfg, alg, nq, nu)
					qSum += c.QueryMops
					uSum += c.UpdateMops
					if c.MaxVersions > vMax {
						vMax = c.MaxVersions
					}
					cells = append(cells, c)
				}
				reps := float64(max(cfg.Reps, 1))
				qrow = append(qrow, bench.F2(qSum/reps))
				urow = append(urow, bench.F(uSum/reps))
				if alg == "base" {
					vrow = append(vrow, "—")
				} else {
					vrow = append(vrow, fmt.Sprint(vMax))
				}
			}
			qt.AddRow(qrow...)
			ut.AddRow(urow...)
			vt.AddRow(vrow...)
		}
	}
	qt.Fprint(w)
	ut.Fprint(w)
	vt.Fprint(w)
	return cells
}

// Figure6Config parameterizes the uncollected-version sweep.
type Figure6Config struct {
	Table2Config
	// NQ is fixed (paper: 10); NUs is the x-axis sweep
	// (paper: 1 … 10000).
	NQ int
}

// DefaultFigure6 returns a host-scaled configuration.
func DefaultFigure6() Figure6Config {
	c := DefaultTable2()
	c.NUs = []int{1, 10, 100, 1000, 10000}
	c.Algorithms = []string{"pswf", "pslf", "hp", "epoch", "rcu"}
	return Figure6Config{Table2Config: c, NQ: 10}
}

// RunFigure6 sweeps update granularity at fixed nq and prints the maximum
// number of uncollected versions per algorithm — the series of Figure 6.
func RunFigure6(cfg Figure6Config, w io.Writer) {
	headers := append([]string{"nu"}, cfg.Algorithms...)
	t := bench.NewTable(fmt.Sprintf("Figure 6: Max uncollected versions (nq=%d, %d query threads)",
		cfg.NQ, cfg.Procs-1), headers...)
	for _, nu := range cfg.NUs {
		row := []string{fmt.Sprint(nu)}
		for _, alg := range cfg.Algorithms {
			c := RunTable2Cell(cfg.Table2Config, alg, cfg.NQ, nu)
			row = append(row, fmt.Sprint(c.MaxVersions))
		}
		t.AddRow(row...)
	}
	t.Fprint(w)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"mvgc/internal/bench"
	"mvgc/internal/ftree"
	"mvgc/internal/shard"
	"mvgc/internal/ycsb"
)

// TxnConfig parameterizes the multi-key transfer workload: every
// transaction debits one account and credits KeysPerTxn-1 others, so the
// account-balance sum is invariant and the benchmark exercises exactly the
// cross-shard commit path the GSN protocol protects.
type TxnConfig struct {
	// Accounts is the account key-space size.
	Accounts uint64
	// Threads is the number of transfer threads.
	Threads int
	// Shards is the shard count S.
	Shards int
	// KeysPerTxn is the number of keys each transfer touches (>= 2).
	KeysPerTxn int
	// Duration is the measured window per cell.
	Duration time.Duration
}

// DefaultTxn returns a host-scaled configuration.
func DefaultTxn() TxnConfig {
	return TxnConfig{
		Accounts:   1_000_000,
		Threads:    runtime.GOMAXPROCS(0),
		Shards:     8,
		KeysPerTxn: 2,
		Duration:   3 * time.Second,
	}
}

// txnMode selects the commit path a transfer cell measures.
type txnMode int

const (
	// txnPerShard commits shard by shard (plain Update): fastest, torn
	// under concurrent consistent views.
	txnPerShard txnMode = iota
	// txnAtomicMode commits all touched shards under one GSN
	// (UpdateAtomic) with commutative InsertWith deltas.
	txnAtomicMode
	// txnOCCMode is the validated multi-key CAS (UpdateAtomicKeys): read
	// the balances, write absolute values, and let install-time read
	// validation abort and retry on conflict — the price of serializability
	// against unfenced point writers.
	txnOCCMode
)

// runTxnCell measures transfer throughput (million transactions per second)
// in one commit mode: UpdateAtomicKeys (validated OCC), UpdateAtomic (one
// GSN per transaction) or the plain per-shard Update.
func runTxnCell(cfg TxnConfig, mode txnMode) float64 {
	initial := make([]ftree.Entry[uint64, int64], cfg.Accounts)
	for i := range initial {
		initial[i] = ftree.Entry[uint64, int64]{Key: uint64(i), Val: 1000}
	}
	sm, err := shard.New(
		shard.Config[uint64]{Shards: cfg.Shards, Procs: cfg.Threads + 1, Hash: ycsb.Mix64},
		func() *ftree.Ops[uint64, int64, struct{}] {
			return ftree.New[uint64, int64, struct{}](ftree.IntCmp[uint64], ftree.NoAug[uint64, int64](), 0)
		},
		initial,
	)
	if err != nil {
		panic(err)
	}
	add := func(old, delta int64) int64 { return old + delta }
	r := bench.Run(cfg.Threads, cfg.Duration, func(worker int, stop *atomic.Bool, c *bench.Counter) {
		rng := ycsb.NewSplitMix64(uint64(worker)*0x9e3779b9 + 7)
		keys := make([]uint64, cfg.KeysPerTxn)
		for !stop.Load() {
			keys[0] = rng.Intn(cfg.Accounts)
			for i := 1; i < len(keys); i++ {
				// Distinct keys: a transfer must not credit its own debit.
				for {
					keys[i] = rng.Intn(cfg.Accounts)
					if keys[i] != keys[0] {
						break
					}
				}
			}
			switch mode {
			case txnOCCMode:
				// The CAS transfer shape: read every balance, write absolute
				// new balances.  Correctness rests entirely on the read set
				// validating at install — exactly what the cell prices.
				sm.UpdateAtomicKeys(keys, func(t *shard.Txn[uint64, int64, struct{}]) {
					amt := int64(len(keys) - 1)
					bal, _ := t.Get(keys[0])
					if bal < amt {
						return // overdrawn: commit nothing
					}
					t.Insert(keys[0], bal-amt)
					for _, k := range keys[1:] {
						b, _ := t.Get(k)
						t.Insert(k, b+1)
					}
				})
			default:
				// The delta transfer shape: read the source balance, then
				// commit commutative deltas (InsertWith re-evaluates against
				// the committed value, so concurrent transfers never lose
				// updates).
				transfer := func(t *shard.Txn[uint64, int64, struct{}]) {
					amt := int64(len(keys) - 1)
					if bal, _ := t.Get(keys[0]); bal < amt {
						return // overdrawn: commit nothing
					}
					t.InsertWith(keys[0], -amt, add)
					for _, k := range keys[1:] {
						t.InsertWith(k, 1, add)
					}
				}
				if mode == txnAtomicMode {
					sm.UpdateAtomic(transfer)
				} else {
					sm.Update(transfer)
				}
			}
			c.Add(1)
		}
	})
	sm.Close()
	if live := sm.Live(); live != 0 {
		panic(fmt.Sprintf("txn workload: leaked %d nodes", live))
	}
	return r.Mops()
}

// RunTxn measures the transfer workload in all three commit modes and
// returns BENCH_ycsb/v1 cells (structure "ours-sharded", workloads
// "txn-atomic", "txn-pershard" and "txn-occ") so cmd/benchdiff gates the
// atomic and validated commit paths' throughput like every other cell.
func RunTxn(cfg TxnConfig, w io.Writer) []bench.YCSBRecord {
	t := bench.NewTable(fmt.Sprintf("Transfers: %d-key cross-shard txns (Mtxn/s), %d threads, %d accounts, %d shards",
		cfg.KeysPerTxn, cfg.Threads, cfg.Accounts, cfg.Shards), "commit mode", "Mtxn/s")
	var records []bench.YCSBRecord
	for _, m := range []struct {
		workload string
		mode     txnMode
	}{
		{"txn-atomic", txnAtomicMode},
		{"txn-pershard", txnPerShard},
		{"txn-occ", txnOCCMode},
	} {
		mops := runTxnCell(cfg, m.mode)
		records = append(records, bench.YCSBRecord{Structure: "ours-sharded", Workload: m.workload, Mops: mops})
		t.AddRow(m.workload, bench.F2(mops))
	}
	t.Fprint(w)
	return records
}

package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"mvgc/internal/ftree"
	"mvgc/internal/vm"
)

func newIntMap(t testing.TB, alg string, procs int, initial []ftree.Entry[int64, int64]) *Map[int64, int64, int64] {
	t.Helper()
	ops := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
	m, err := NewMap(Config{Algorithm: alg, Procs: procs}, ops, initial)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMapErrors(t *testing.T) {
	ops := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
	if _, err := NewMap(Config{Algorithm: "bogus", Procs: 2}, ops, nil); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
	if ops.Live() != 0 {
		t.Fatalf("failed construction leaked %d nodes", ops.Live())
	}
	if _, err := NewMap(Config{Procs: 0}, ops, nil); err == nil {
		t.Fatal("expected error for zero procs")
	}
}

func TestBasicReadUpdate(t *testing.T) {
	for _, alg := range vm.Names() {
		t.Run(alg, func(t *testing.T) {
			m := newIntMap(t, alg, 2, []ftree.Entry[int64, int64]{{Key: 1, Val: 10}, {Key: 2, Val: 20}})
			m.Read(0, func(s Snapshot[int64, int64, int64]) {
				if v, ok := s.Get(1); !ok || v != 10 {
					t.Errorf("Get(1) = %d,%v", v, ok)
				}
				if s.Len() != 2 {
					t.Errorf("Len = %d", s.Len())
				}
				if got := s.AugRange(0, 100); got != 30 {
					t.Errorf("AugRange = %d", got)
				}
			})
			m.Update(0, func(tx *Txn[int64, int64, int64]) {
				tx.Insert(3, 30)
				tx.Delete(1)
			})
			m.Read(1, func(s Snapshot[int64, int64, int64]) {
				if s.Has(1) {
					t.Error("deleted key still present")
				}
				if v, _ := s.Get(3); v != 30 {
					t.Errorf("Get(3) = %d", v)
				}
			})
			m.Close()
			if m.Ops().Live() != 0 {
				t.Errorf("leaked %d nodes after Close", m.Ops().Live())
			}
		})
	}
}

func TestUpdateAtomicity(t *testing.T) {
	m := newIntMap(t, "pswf", 2, nil)
	m.Update(0, func(tx *Txn[int64, int64, int64]) {
		tx.Insert(1, 1)
		if v, ok := tx.Get(1); !ok || v != 1 {
			t.Error("transaction cannot read its own write")
		}
		tx.Insert(1, 2) // overwrite within the transaction
		tx.InsertWith(1, 5, func(old, new int64) int64 { return old + new })
	})
	m.Read(0, func(s Snapshot[int64, int64, int64]) {
		if v, _ := s.Get(1); v != 7 {
			t.Errorf("Get(1) = %d, want 7", v)
		}
	})
	m.Close()
}

func TestNoOpUpdate(t *testing.T) {
	for _, alg := range vm.Names() {
		t.Run(alg, func(t *testing.T) {
			m := newIntMap(t, alg, 1, []ftree.Entry[int64, int64]{{Key: 1, Val: 1}})
			// A transaction that deletes an absent key ends at the acquired
			// root; publishing it would retire the current version while it
			// stays current.
			for i := 0; i < 5; i++ {
				m.Update(0, func(tx *Txn[int64, int64, int64]) { tx.Delete(99) })
			}
			// Pure read-only "update".
			m.Update(0, func(tx *Txn[int64, int64, int64]) { tx.Get(1) })
			m.Read(0, func(s Snapshot[int64, int64, int64]) {
				if s.Len() != 1 {
					t.Errorf("Len = %d", s.Len())
				}
			})
			if m.Commits() != 0 {
				t.Errorf("no-op updates recorded %d commits", m.Commits())
			}
			m.Close()
			if m.Ops().Live() != 0 {
				t.Errorf("leaked %d nodes", m.Ops().Live())
			}
		})
	}
}

func TestBatchUpdate(t *testing.T) {
	m := newIntMap(t, "pswf", 2, nil)
	batch := make([]ftree.Entry[int64, int64], 1000)
	for i := range batch {
		batch[i] = ftree.Entry[int64, int64]{Key: int64(i), Val: int64(i) * 2}
	}
	m.Update(0, func(tx *Txn[int64, int64, int64]) { tx.InsertBatch(batch, nil) })
	m.Read(1, func(s Snapshot[int64, int64, int64]) {
		if s.Len() != 1000 {
			t.Fatalf("Len = %d", s.Len())
		}
		if got := s.AugRange(0, 999); got != 999*1000 {
			t.Fatalf("sum = %d", got)
		}
	})
	var keys []int64
	for i := int64(0); i < 500; i++ {
		keys = append(keys, i*2)
	}
	m.Update(0, func(tx *Txn[int64, int64, int64]) { tx.DeleteBatch(keys) })
	m.Read(1, func(s Snapshot[int64, int64, int64]) {
		if s.Len() != 500 {
			t.Fatalf("Len after batch delete = %d", s.Len())
		}
	})
	m.Close()
	if m.Ops().Live() != 0 {
		t.Errorf("leaked %d nodes", m.Ops().Live())
	}
}

// TestStrictSerializabilitySingleWriter is the Theorem 5.1 check in the
// paper's primary deployment.  The writer commits counter increments that
// keep a derived invariant (key 0 holds the sum of keys 1..8); every read
// snapshot must satisfy the invariant and observe a monotonically
// non-decreasing commit sequence number.
func TestStrictSerializabilitySingleWriter(t *testing.T) {
	const procs = 6
	commits := 2000
	if testing.Short() {
		commits = 200 // the full run starves the writer on small CI hosts
	}
	for _, alg := range vm.Names() {
		t.Run(alg, func(t *testing.T) {
			var initial []ftree.Entry[int64, int64]
			for k := int64(0); k <= 8; k++ {
				initial = append(initial, ftree.Entry[int64, int64]{Key: k, Val: 0})
			}
			m := newIntMap(t, alg, procs, initial)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // writer: process 0
				defer wg.Done()
				rng := rand.New(rand.NewSource(1))
				for i := 0; i < commits; i++ {
					k := int64(1 + rng.Intn(8))
					m.Update(0, func(tx *Txn[int64, int64, int64]) {
						v, _ := tx.Get(k)
						tx.Insert(k, v+1)
						sum, _ := tx.Get(0)
						tx.Insert(0, sum+1)
					})
				}
				close(stop)
			}()
			for p := 1; p < procs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					var lastSum int64 = -1
					for {
						select {
						case <-stop:
							return
						default:
						}
						m.Read(p, func(s Snapshot[int64, int64, int64]) {
							sum, _ := s.Get(0)
							var total int64
							for k := int64(1); k <= 8; k++ {
								v, _ := s.Get(k)
								total += v
							}
							if total != sum {
								t.Errorf("torn snapshot: sum key=%d, computed=%d", sum, total)
							}
							if sum < lastSum {
								t.Errorf("snapshots went backwards: %d after %d", sum, lastSum)
							}
							lastSum = sum
						})
						// Yield between read transactions: on a 1-core host,
						// spinning readers otherwise starve the rcu writer's
						// synchronize down to one grace period per ~100ms of
						// async preemptions, timing the test out.
						runtime.Gosched()
					}
				}(p)
			}
			wg.Wait()
			m.Close()
			if m.Ops().Live() != 0 {
				t.Errorf("leaked %d nodes", m.Ops().Live())
			}
		})
	}
}

// TestMultiWriterCounter: concurrent writers increment a shared counter
// through retrying transactions; lock-freedom plus conflict detection means
// the final value equals the number of commits, with no lost updates.
func TestMultiWriterCounter(t *testing.T) {
	const procs, perProc = 4, 500
	for _, alg := range []string{"pswf", "pslf", "hp", "epoch", "base"} {
		t.Run(alg, func(t *testing.T) {
			m := newIntMap(t, alg, procs, []ftree.Entry[int64, int64]{{Key: 0, Val: 0}})
			var wg sync.WaitGroup
			for p := 0; p < procs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perProc; i++ {
						m.Update(p, func(tx *Txn[int64, int64, int64]) {
							v, _ := tx.Get(0)
							tx.Insert(0, v+1)
						})
					}
				}(p)
			}
			wg.Wait()
			var final int64
			m.Read(0, func(s Snapshot[int64, int64, int64]) { final, _ = s.Get(0) })
			if final != procs*perProc {
				t.Errorf("final counter = %d, want %d (lost updates)", final, procs*perProc)
			}
			if m.Commits() != procs*perProc {
				t.Errorf("commits = %d", m.Commits())
			}
			m.Close()
			if m.Ops().Live() != 0 {
				t.Errorf("leaked %d nodes", m.Ops().Live())
			}
		})
	}
}

// TestTryUpdateAbort: TryUpdate must abort rather than retry, and an abort
// implies a concurrent commit happened.
func TestTryUpdateAbort(t *testing.T) {
	m := newIntMap(t, "pswf", 4, []ftree.Entry[int64, int64]{{Key: 0, Val: 0}})
	var committed, aborted atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				ok := m.TryUpdate(p, func(tx *Txn[int64, int64, int64]) {
					v, _ := tx.Get(0)
					tx.Insert(0, v+1)
				})
				if ok {
					committed.Add(1)
				} else {
					aborted.Add(1)
				}
			}
		}(p)
	}
	wg.Wait()
	var final int64
	m.Read(0, func(s Snapshot[int64, int64, int64]) { final, _ = s.Get(0) })
	if final != committed.Load() {
		t.Errorf("final = %d, commits = %d", final, committed.Load())
	}
	if aborted.Load() != m.Aborts() {
		t.Errorf("abort accounting: %d vs %d", aborted.Load(), m.Aborts())
	}
	m.Close()
	if m.Ops().Live() != 0 {
		t.Errorf("leaked %d nodes", m.Ops().Live())
	}
}

// TestPreciseGCEndToEnd runs the full system hard for a while, then closes
// it and checks the precise-GC end state: zero live nodes.  It also checks
// that with the precise PSWF algorithm the version population stays within
// its 2P+1 bound during the run (safety of Theorem 5.3's "as soon as"
// claim is covered by ftree's poisoned refcounts, which would panic on any
// premature collection).
func TestPreciseGCEndToEnd(t *testing.T) {
	const procs = 8
	m := newIntMap(t, "pswf", procs, nil)
	m.TrackVersions = true
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 1500; i++ {
			batch := make([]ftree.Entry[int64, int64], 20)
			for j := range batch {
				batch[j] = ftree.Entry[int64, int64]{Key: rng.Int63n(5000), Val: rng.Int63n(100)}
			}
			m.Update(0, func(tx *Txn[int64, int64, int64]) { tx.InsertBatch(batch, nil) })
		}
		close(stop)
	}()
	for p := 1; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := rng.Int63n(5000)
				m.Read(p, func(s Snapshot[int64, int64, int64]) {
					_ = s.AugRange(lo, lo+100)
				})
			}
		}(p)
	}
	wg.Wait()
	if mv := m.MaxVersions(); mv > 2*procs+1 {
		t.Errorf("peak versions %d exceeds PSWF bound %d", mv, 2*procs+1)
	}
	m.Close()
	if m.Ops().Live() != 0 {
		t.Errorf("leaked %d nodes after Close", m.Ops().Live())
	}
}

// TestSnapshotStability: a long-running read transaction sees a frozen
// view regardless of concurrent commits.
func TestSnapshotStability(t *testing.T) {
	m := newIntMap(t, "pswf", 2, nil)
	batch := make([]ftree.Entry[int64, int64], 1000)
	for i := range batch {
		batch[i] = ftree.Entry[int64, int64]{Key: int64(i), Val: 1}
	}
	m.Update(0, func(tx *Txn[int64, int64, int64]) { tx.InsertBatch(batch, nil) })

	started := make(chan struct{})
	writerDone := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		m.Read(1, func(s Snapshot[int64, int64, int64]) {
			close(started)
			<-writerDone // hold the snapshot across many commits
			if got := s.AugRange(0, 999); got != 1000 {
				t.Errorf("pinned snapshot sum = %d, want 1000", got)
			}
			if s.Len() != 1000 {
				t.Errorf("pinned snapshot len = %d", s.Len())
			}
		})
	}()
	<-started
	for i := 0; i < 200; i++ {
		m.Update(0, func(tx *Txn[int64, int64, int64]) {
			tx.Insert(int64(i), 100)
			tx.Delete(int64(999 - i))
		})
	}
	close(writerDone)
	<-readerDone
	m.Close()
	if m.Ops().Live() != 0 {
		t.Errorf("leaked %d nodes", m.Ops().Live())
	}
}

func TestClosedMapIdempotent(t *testing.T) {
	m := newIntMap(t, "pswf", 1, nil)
	m.Close()
	m.Close() // second close must be a no-op
}

package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"mvgc/internal/ftree"
)

func newStampMap(t *testing.T, stamp *atomic.Uint64, procs int) *Map[int64, int64, struct{}] {
	t.Helper()
	ops := ftree.New[int64, int64, struct{}](ftree.IntCmp[int64], ftree.NoAug[int64, int64](), 0)
	m, err := NewMap(Config{Procs: procs, Stamp: stamp}, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStampAdvancesPerCommit: every stamped commit allocates a fresh GSN
// and publishes it; reads and no-op writes do not.
func TestStampAdvancesPerCommit(t *testing.T) {
	m := newStampMap(t, nil, 2)
	defer m.Close()
	if g := m.LatestStamp(); g != 0 {
		t.Fatalf("fresh map LatestStamp = %d, want 0", g)
	}
	m.WithCached(func(h *Handle[int64, int64, struct{}]) {
		h.Read(func(s Snapshot[int64, int64, struct{}]) {})
		h.Update(func(tx *Txn[int64, int64, struct{}]) {}) // no-op: nothing published
	})
	if g := m.LatestStamp(); g != 0 {
		t.Fatalf("LatestStamp after read + no-op write = %d, want 0", g)
	}
	for i := int64(1); i <= 5; i++ {
		m.WithCached(func(h *Handle[int64, int64, struct{}]) {
			h.Update(func(tx *Txn[int64, int64, struct{}]) { tx.Insert(i, i) })
		})
		if g := m.LatestStamp(); g != uint64(i) {
			t.Fatalf("LatestStamp after commit %d = %d", i, g)
		}
	}
}

// TestStampSharedSource: maps sharing one counter stamp their commits in
// one global order — every commit gets a distinct GSN and each map's
// LatestStamp is the max it committed.
func TestStampSharedSource(t *testing.T) {
	var src atomic.Uint64
	m1 := newStampMap(t, &src, 4)
	m2 := newStampMap(t, &src, 4)
	defer m1.Close()
	defer m2.Close()
	if m1.StampSource() != &src || m2.StampSource() != &src {
		t.Fatal("StampSource does not expose the shared counter")
	}
	const per = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := m1
			if w%2 == 1 {
				m = m2
			}
			for i := 0; i < per; i++ {
				k := int64(w*per + i)
				m.WithCached(func(h *Handle[int64, int64, struct{}]) {
					h.Update(func(tx *Txn[int64, int64, struct{}]) { tx.Insert(k, k) })
				})
			}
		}(w)
	}
	wg.Wait()
	if total := src.Load(); total != 4*per {
		t.Fatalf("shared counter = %d, want %d", total, 4*per)
	}
	if g1, g2 := m1.LatestStamp(), m2.LatestStamp(); g1 == 0 || g2 == 0 || g1 == g2 {
		t.Fatalf("per-map latest stamps = %d, %d: want distinct non-zero maxima", g1, g2)
	}
}

// TestUnstampedInstallProtocol walks the atomic-install primitives: an
// unstamped commit publishes its root without moving LatestStamp, BumpStamp
// is a CAS-max, and the install seqlock toggles odd/even around the window.
func TestUnstampedInstallProtocol(t *testing.T) {
	m := newStampMap(t, nil, 2)
	defer m.Close()
	m.WithCached(func(h *Handle[int64, int64, struct{}]) {
		h.Update(func(tx *Txn[int64, int64, struct{}]) { tx.Insert(1, 1) })
	})
	base := m.LatestStamp()
	if q := m.InstallSeq(); q != 0 {
		t.Fatalf("fresh InstallSeq = %d, want 0", q)
	}
	m.LockWriterSlot()
	m.BeginInstall()
	if q := m.InstallSeq(); q&1 != 1 {
		t.Fatalf("InstallSeq during install = %d, want odd", q)
	}
	m.WithCached(func(h *Handle[int64, int64, struct{}]) {
		h.UpdateUnstamped(func(tx *Txn[int64, int64, struct{}]) { tx.Insert(2, 2) })
	})
	if g := m.LatestStamp(); g != base {
		t.Fatalf("unstamped commit moved LatestStamp %d → %d", base, g)
	}
	g := m.StampSource().Add(1)
	m.BumpStamp(g)
	if got := m.LatestStamp(); got != g {
		t.Fatalf("LatestStamp after BumpStamp(%d) = %d", g, got)
	}
	m.BumpStamp(g - 1) // CAS-max: smaller stamps never regress the word
	if got := m.LatestStamp(); got != g {
		t.Fatalf("BumpStamp(%d) regressed LatestStamp to %d", g-1, got)
	}
	m.EndInstall()
	m.UnlockWriterSlot()
	if q := m.InstallSeq(); q&1 != 0 || q == 0 {
		t.Fatalf("InstallSeq after install = %d, want non-zero even", q)
	}
	if v, ok := m.get(2); !ok || v != 2 {
		t.Fatalf("unstamped commit lost: Get(2) = %d,%v", v, ok)
	}
}

// get is a test convenience point read.
func (m *Map[K, V, A]) get(k K) (v V, ok bool) {
	m.WithCached(func(h *Handle[K, V, A]) {
		h.Read(func(s Snapshot[K, V, A]) { v, ok = s.Get(k) })
	})
	return
}

package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mvgc/internal/ftree"
)

// TestHandleNoConcurrentLease: many goroutines churn handles on a small
// map; a pid must never be leased by two handles at once.  Run with -race
// to catch unsynchronized hand-offs.
func TestHandleNoConcurrentLease(t *testing.T) {
	const procs, workers, iters = 4, 32, 2000
	ops := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
	m, err := NewMap(Config{Procs: procs}, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	inUse := make([]atomic.Bool, procs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.With(func(h *Handle[int64, int64, int64]) {
					if !inUse[h.Pid()].CompareAndSwap(false, true) {
						t.Errorf("pid %d leased twice concurrently", h.Pid())
					}
					h.Update(func(tx *Txn[int64, int64, int64]) {
						tx.Insert(int64(w), int64(i))
					})
					if !inUse[h.Pid()].CompareAndSwap(true, false) {
						t.Errorf("pid %d released while not marked leased", h.Pid())
					}
				})
			}
		}(w)
	}
	wg.Wait()
	m.Close()
	if live := ops.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestHandleAcquireMakesProgress: with P=1 every transaction serializes
// through one pid; all blocked Acquires must still complete (admission
// control admits them one at a time, no lost wakeups).
func TestHandleAcquireMakesProgress(t *testing.T) {
	const workers, iters = 16, 500
	ops := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
	m, err := NewMap(Config{Procs: 1}, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h := m.Handle() // blocks while the sole pid is leased
				h.Update(func(tx *Txn[int64, int64, int64]) {
					tx.InsertWith(0, 1, func(old, new int64) int64 { return old + new })
				})
				h.Close()
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got := done.Load(); got != workers*iters {
		t.Fatalf("only %d of %d acquisitions completed", got, workers*iters)
	}
	var total int64
	m.With(func(h *Handle[int64, int64, int64]) {
		h.Read(func(s Snapshot[int64, int64, int64]) { total, _ = s.Get(0) })
	})
	if total != workers*iters {
		t.Fatalf("counter = %d, want %d (lost update through handle churn)", total, workers*iters)
	}
	m.Close()
	if live := ops.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestTryHandleExhaustion: TryHandle must fail exactly when all P pids are
// leased and succeed again after a release; Close is idempotent.
func TestTryHandleExhaustion(t *testing.T) {
	ops := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
	m, err := NewMap(Config{Procs: 2}, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	h1, ok1 := m.TryHandle()
	h2, ok2 := m.TryHandle()
	if !ok1 || !ok2 {
		t.Fatal("TryHandle failed with pids available")
	}
	if h1.Pid() == h2.Pid() {
		t.Fatalf("both handles leased pid %d", h1.Pid())
	}
	if _, ok := m.TryHandle(); ok {
		t.Fatal("TryHandle succeeded with all pids leased")
	}
	h1.Close()
	h1.Close() // idempotent: must not double-free the pid
	h3, ok := m.TryHandle()
	if !ok {
		t.Fatal("TryHandle failed after a release")
	}
	if _, ok := m.TryHandle(); ok {
		t.Fatal("idempotent Close returned the pid twice")
	}
	h3.Close()
	h2.Close()
	m.Close()
}

// TestNewMapErrorReporting: the resolved algorithm name appears in the
// unknown-algorithm error (not the raw, possibly empty, config string) and
// Procs is validated at both ends.
func TestNewMapErrorReporting(t *testing.T) {
	ops := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
	if _, err := NewMap(Config{Algorithm: "nope", Procs: 2}, ops, nil); err == nil || !strings.Contains(err.Error(), `"nope"`) {
		t.Fatalf("unknown algorithm error = %v, want the resolved name quoted", err)
	}
	if _, err := NewMap(Config{Procs: 0}, ops, nil); err == nil {
		t.Fatal("Procs=0 accepted")
	}
	if _, err := NewMap(Config{Procs: 1 << 20}, ops, nil); err == nil {
		t.Fatal("absurd Procs accepted (would overflow the version index)")
	}
	if live := ops.Live(); live != 0 {
		t.Fatalf("failed constructors leaked %d nodes", live)
	}
	// The default algorithm resolves to pswf, and an empty Algorithm in
	// the config must not produce a confusing "" in any error path.
	m, err := NewMap(Config{Procs: 1}, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Algorithm() != "pswf" {
		t.Fatalf("default algorithm = %q", m.Algorithm())
	}
	m.Close()
}

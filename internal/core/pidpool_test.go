package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPidPoolLeasesDistinct(t *testing.T) {
	p := NewPidPool(2, 6) // ids 2..5
	seen := map[int]bool{}
	var ids []int
	for i := 0; i < 4; i++ {
		id := p.Acquire()
		if id < 2 || id > 5 {
			t.Fatalf("id %d out of range", id)
		}
		if seen[id] {
			t.Fatalf("id %d leased twice", id)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded on an empty pool")
	}
	p.Release(ids[0])
	if id, ok := p.TryAcquire(); !ok || id != ids[0] {
		t.Fatalf("TryAcquire = %d,%v", id, ok)
	}
}

// TestPidPoolNoConcurrentLease: under heavy churn, a leased id is never
// held by two goroutines at once — the Version Maintenance contract.
func TestPidPoolNoConcurrentLease(t *testing.T) {
	const procs = 4
	p := NewPidPool(0, procs)
	inUse := make([]atomic.Bool, procs)
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				p.Do(func(pid int) {
					if !inUse[pid].CompareAndSwap(false, true) {
						t.Errorf("pid %d leased concurrently", pid)
						return
					}
					inUse[pid].Store(false)
				})
			}
		}()
	}
	wg.Wait()
}

// TestPidPoolWithMap drives transactions from more goroutines than
// processes through the pool.
func TestPidPoolWithMap(t *testing.T) {
	m := newIntMap(t, "pswf", 4, nil)
	pool := NewPidPool(0, 4)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pool.Do(func(pid int) {
					m.Update(pid, func(tx *Txn[int64, int64, int64]) {
						v, _ := tx.Get(0)
						tx.Insert(0, v+1)
					})
				})
			}
		}(w)
	}
	wg.Wait()
	var final int64
	pool.Do(func(pid int) {
		m.Read(pid, func(s Snapshot[int64, int64, int64]) { final, _ = s.Get(0) })
	})
	if final != 16*200 {
		t.Fatalf("counter = %d, want %d", final, 16*200)
	}
	m.Close()
	if m.Ops().Live() != 0 {
		t.Fatalf("leaked %d nodes", m.Ops().Live())
	}
}

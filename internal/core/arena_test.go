package core

import (
	"sync"
	"testing"

	"mvgc/internal/ftree"
)

func arenaMap(t *testing.T, procs int) *Map[int64, int64, int64] {
	t.Helper()
	ops := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
	m, err := NewMap(Config{Algorithm: "pswf", Procs: procs}, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ops.Recycle {
		t.Fatal("NewMap no longer turns recycling on by default")
	}
	return m
}

// TestArenaPidChurn: releasing a pid and re-leasing it must find the
// magazine still warm — the arena belongs to the pid, not the handle — so
// steady-state churn through Handle/Close performs zero fresh chunk carves
// after warmup.
func TestArenaPidChurn(t *testing.T) {
	m := arenaMap(t, 1) // one pid: every lease is the same arena
	defer m.Close()
	warm := func() (refills, spills, carves int64) {
		h := m.Handle()
		defer h.Close()
		for i := int64(0); i < 2000; i++ {
			h.Update(func(tx *Txn[int64, int64, int64]) { tx.Insert(i%64, i) })
		}
		return h.ArenaStats()
	}
	warm()
	_, _, carvesAfterWarm := warm()
	// Many further lease → use → release cycles: all magazine hits.
	for round := 0; round < 50; round++ {
		h := m.Handle()
		for i := int64(0); i < 100; i++ {
			h.Update(func(tx *Txn[int64, int64, int64]) { tx.Insert(i%64, i) })
		}
		_, _, carves := h.ArenaStats()
		if carves != carvesAfterWarm {
			t.Fatalf("round %d: re-leased pid carved fresh chunks (%d → %d); magazine did not survive the lease churn",
				round, carvesAfterWarm, carves)
		}
		h.Close()
	}
}

// TestArenaLiveExactAtQuiescence: with arenas on by default, Live() must
// equal the reachable node count at every quiescent point and zero after
// Close — magazine-parked nodes are free, not live.
func TestArenaLiveExactAtQuiescence(t *testing.T) {
	m := arenaMap(t, 4)
	ops := m.Ops()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := m.Handle()
			defer h.Close()
			for i := int64(0); i < 3000; i++ {
				k := int64(w)*1000 + i%200
				if i%5 == 4 {
					h.Update(func(tx *Txn[int64, int64, int64]) { tx.Delete(k) })
				} else {
					h.Update(func(tx *Txn[int64, int64, int64]) { tx.Insert(k, i) })
				}
			}
		}(w)
	}
	wg.Wait()
	// Quiescent: exactly the retained versions' nodes are live.
	var roots []*ftree.Node[int64, int64, int64]
	m.Read(0, func(s Snapshot[int64, int64, int64]) {
		roots = append(roots, s.Root())
		if live, reach := ops.Live(), ops.ReachableNodes(roots...); live != reach {
			t.Errorf("quiescent: live %d ≠ reachable %d", live, reach)
		}
	})
	m.Close()
	if live := ops.Live(); live != 0 {
		t.Fatalf("leaked %d nodes after Close", live)
	}
}

// TestArenaConcurrentHandles runs leased and cached handles from many
// goroutines under -race: pid exclusivity must keep every arena
// single-owner (the race detector sees any violation), and accounting must
// come back to zero.
func TestArenaConcurrentHandles(t *testing.T) {
	m := arenaMap(t, 6)
	ops := m.Ops()
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 500; i++ {
				k := int64(w)*100 + i%97
				if w%2 == 0 {
					m.WithCached(func(h *Handle[int64, int64, int64]) {
						h.Update(func(tx *Txn[int64, int64, int64]) { tx.Insert(k, i) })
					})
				} else {
					m.With(func(h *Handle[int64, int64, int64]) {
						h.Update(func(tx *Txn[int64, int64, int64]) { tx.Insert(k, i) })
						h.Read(func(s Snapshot[int64, int64, int64]) {
							if v, ok := s.Get(k); !ok || v != i {
								t.Errorf("lost own write: key %d got (%d,%v) want %d", k, v, ok, i)
							}
						})
					})
				}
			}
		}(w)
	}
	wg.Wait()
	m.Close()
	if live := ops.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestNoRecycleAblation: Config.NoRecycle must really turn the allocator
// off — no node ever parks, every path still correct and exact.
func TestNoRecycleAblation(t *testing.T) {
	ops := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
	m, err := NewMap(Config{Procs: 2, NoRecycle: true}, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ops.Recycle {
		t.Fatal("NoRecycle did not disable recycling")
	}
	h := m.Handle()
	for i := int64(0); i < 1000; i++ {
		h.Update(func(tx *Txn[int64, int64, int64]) { tx.Insert(i%50, i) })
	}
	refills, spills, carves := h.ArenaStats()
	if refills != 0 || spills != 0 || carves != 0 {
		t.Fatalf("arena moved with recycling off: refills=%d spills=%d carves=%d", refills, spills, carves)
	}
	h.Close()
	m.Close()
	if live := ops.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

package core

import (
	"sync"
	"testing"
	"time"

	"mvgc/internal/ftree"
)

func newKVMap(t *testing.T, procs, stripes int) *Map[int, int, struct{}] {
	t.Helper()
	ops := ftree.New[int, int, struct{}](ftree.IntCmp[int], ftree.NoAug[int, int](), 0)
	m, err := NewMap(Config{Algorithm: "pswf", Procs: procs}, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableKeyVersions(func(k int) uint64 { return uint64(k) }, stripes)
	return m
}

// TestKeyVersionBumpPerCommit: every committed write moves its key's stripe
// word by exactly one completed write and returns it stable, for stamped
// and unstamped commits alike; untouched stripes never move.
func TestKeyVersionBumpPerCommit(t *testing.T) {
	m := newKVMap(t, 2, 64)
	defer m.Close()
	if !m.KeyVersionsEnabled() {
		t.Fatal("KeyVersionsEnabled() = false after EnableKeyVersions")
	}

	k := 7
	stripe := m.KeyStripe(k)
	w0 := m.StripeWord(stripe)
	if !StableStripe(w0) {
		t.Fatalf("idle stripe unstable: %#x", w0)
	}
	m.Update(0, func(tx *Txn[int, int, struct{}]) { tx.Insert(k, 1) })
	if w := m.StripeWord(stripe); w != w0+1 {
		t.Fatalf("stamped commit moved stripe %#x -> %#x, want +1", w0, w)
	}
	m.UpdateUnstamped(0, func(tx *Txn[int, int, struct{}]) { tx.Insert(k, 2) })
	if w := m.StripeWord(stripe); w != w0+2 {
		t.Fatalf("unstamped commit moved stripe to %#x, want %#x", m.StripeWord(stripe), w0+2)
	}
	m.Update(0, func(tx *Txn[int, int, struct{}]) { tx.Delete(k) })
	if w := m.StripeWord(stripe); w != w0+3 {
		t.Fatalf("delete moved stripe to %#x, want %#x", w, w0+3)
	}

	// A pure read and a no-op write leave every stripe alone.
	before := make([]uint64, 8)
	for i := range before {
		before[i] = m.StripeWord(uint64(i))
	}
	m.Read(0, func(s Snapshot[int, int, struct{}]) { s.Get(k) })
	m.Update(0, func(tx *Txn[int, int, struct{}]) { tx.Delete(k) }) // absent: no-op commit
	for i := range before {
		if w := m.StripeWord(uint64(i)); w != before[i] {
			t.Fatalf("stripe %d moved on a no-op (%#x -> %#x)", i, before[i], w)
		}
	}
}

// TestKeyVersionWholesale: a batch past half the table, and SetRoot, bump
// every stripe (the conservative fallback for unknown/huge key sets), while
// a small batch only bumps its keys' stripes.
func TestKeyVersionWholesale(t *testing.T) {
	m := newKVMap(t, 2, 64) // rounded to 64 stripes
	defer m.Close()

	// Small batch: only the touched stripes move.
	small := []ftree.Entry[int, int]{{Key: 1, Val: 1}, {Key: 2, Val: 2}}
	idle := m.KeyStripe(999)
	if idle == m.KeyStripe(1) || idle == m.KeyStripe(2) {
		t.Skip("stripe collision with probe key")
	}
	w0 := m.StripeWord(idle)
	m.Update(0, func(tx *Txn[int, int, struct{}]) { tx.InsertBatch(small, nil) })
	if w := m.StripeWord(idle); w != w0 {
		t.Fatalf("small batch moved an untouched stripe (%#x -> %#x)", w0, w)
	}

	// Table-scale batch: every stripe moves (wholesale bracket).  256
	// distinct keys over 64 stripes, so the unique-stripe count is well
	// past the half-table threshold whatever the hash does.
	big := make([]ftree.Entry[int, int], 256)
	for i := range big {
		big[i] = ftree.Entry[int, int]{Key: i + 100, Val: i}
	}
	m.Update(0, func(tx *Txn[int, int, struct{}]) { tx.InsertBatch(big, nil) })
	if w := m.StripeWord(idle); w != w0+1 {
		t.Fatalf("wholesale batch left stripe at %#x, want %#x", w, w0+1)
	}
}

// TestKeyVersionDuplicateWritesStayPerKey: the wholesale-degrade threshold
// counts unique stripes, not write calls — a transaction rewriting one key
// hundreds of times must keep its per-key bracket instead of flipping to a
// whole-table bracket that would stall every optimistic reader on the map.
func TestKeyVersionDuplicateWritesStayPerKey(t *testing.T) {
	m := newKVMap(t, 2, 64)
	defer m.Close()
	idle := m.KeyStripe(999)
	if idle == m.KeyStripe(1) {
		t.Skip("stripe collision with probe key")
	}
	w0 := m.StripeWord(idle)
	m.Update(0, func(tx *Txn[int, int, struct{}]) {
		for n := 0; n < 200; n++ { // 200 notes, one unique stripe
			tx.Insert(1, n)
		}
	})
	if w := m.StripeWord(idle); w != w0 {
		t.Fatalf("duplicate-key transaction degraded to a wholesale bracket (%#x -> %#x)", w0, w)
	}
	// The written stripe may tick more than once (surviving duplicates
	// each count a completed write — harmless, false-abort fodder only)
	// but must return stable and moved.
	if w := m.StripeWord(m.KeyStripe(1)); !StableStripe(w) || w == 0 {
		t.Fatalf("written key's stripe %#x, want stable and moved", w)
	}
}

// TestKeyVersionStableUnderConcurrency: under concurrent committers every
// stripe word returns to a stable state with completed-write counts
// conserved (enters and exits balance exactly).
func TestKeyVersionStableUnderConcurrency(t *testing.T) {
	const procs = 4
	m := newKVMap(t, procs, 64)
	defer m.Close()

	var wg sync.WaitGroup
	const per = 300
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for n := 0; n < per; n++ {
				k := (pid*per + n) % 32
				m.Update(pid, func(tx *Txn[int, int, struct{}]) { tx.Insert(k, n) })
			}
		}(p)
	}
	wg.Wait()

	var versions uint64
	for i := uint64(0); i < 64; i++ {
		w := m.StripeWord(i)
		if !StableStripe(w) {
			t.Fatalf("stripe %d still marked in-flight after quiescence: %#x", i, w)
		}
		versions += w
	}
	// Committed writes: one per Update (all succeed eventually); retries add
	// extra version ticks, so the total must be at least the commit count.
	if versions < procs*per {
		t.Fatalf("completed-write count %d < committed writes %d", versions, procs*per)
	}
}

// TestStripeLockStallsUnfencedWriter: a plain commit whose key hashes to an
// install-locked stripe must not become visible until the lock clears —
// the write-lock half of the OCC install — while a transaction declaring
// HoldsStripeLocks (the installer's own replay) passes immediately.  After
// the unlock the stalled writer's commit lands on the installed state, so
// its value wins (it serializes after the install).
func TestStripeLockStallsUnfencedWriter(t *testing.T) {
	m := newKVMap(t, 2, 64)
	defer m.Close()
	k := 5
	stripe := m.KeyStripe(k)
	m.Update(0, func(tx *Txn[int, int, struct{}]) { tx.Insert(k, 1) })

	m.LockStripes([]uint64{stripe})
	if w := m.StripeWord(stripe); StableStripe(w) {
		t.Fatalf("locked stripe reads stable: %#x", w)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Update(1, func(tx *Txn[int, int, struct{}]) { tx.Insert(k, 2) })
	}()
	select {
	case <-done:
		t.Fatal("unfenced commit crossed an install-locked stripe")
	case <-time.After(30 * time.Millisecond):
	}

	// The lock holder's own install passes through and stays invisible to
	// the stalled writer until the unlock.
	m.UpdateUnstamped(0, func(tx *Txn[int, int, struct{}]) {
		tx.HoldsStripeLocks()
		tx.Insert(k, 3)
	})
	m.UnlockStripes([]uint64{stripe})
	<-done

	var v int
	m.Read(0, func(s Snapshot[int, int, struct{}]) { v, _ = s.Get(k) })
	if v != 2 {
		t.Fatalf("k = %d after unlock, want 2 (stalled writer must land on the installed state)", v)
	}
	if w := m.StripeWord(stripe); !StableStripe(w) {
		t.Fatalf("stripe still unstable after unlock and drain: %#x", w)
	}
}

// TestStripeLockBlocksStableRead: StableStripeWord must wait out an install
// lock (an optimistic reader must not sample a stripe whose keys are
// mid-install), and duplicate stripe indices in Lock/UnlockStripes are
// idempotent, leaving the completed-write count untouched.
func TestStripeLockBlocksStableRead(t *testing.T) {
	m := newKVMap(t, 2, 64)
	defer m.Close()
	stripe := m.KeyStripe(9)
	w0 := m.StripeWord(stripe)

	m.LockStripes([]uint64{stripe, stripe}) // duplicates are idempotent
	got := make(chan uint64, 1)
	go func() { got <- m.StableStripeWord(stripe) }()
	select {
	case w := <-got:
		t.Fatalf("stable read %#x crossed an install lock", w)
	case <-time.After(30 * time.Millisecond):
	}
	m.UnlockStripes([]uint64{stripe, stripe})
	if w := <-got; w != w0 {
		t.Fatalf("lock/unlock changed the stripe word: %#x -> %#x", w0, w)
	}
}

// TestInstallAtomicValidated: the validation gate aborts without touching
// roots or stamps, and the read-only form (no touched maps) validates
// without the seqlock window.
func TestInstallAtomicValidated(t *testing.T) {
	m := newKVMap(t, 2, 64)
	defer m.Close()
	maps := []*Map[int, int, struct{}]{m}

	committed := false
	g0, ok := InstallAtomicValidated(maps, []int{0}, func() bool { return false }, func() { committed = true })
	if ok || committed || g0 != 0 {
		t.Fatalf("failed validation must not install (ok=%v committed=%v gsn=%d)", ok, committed, g0)
	}
	if seq := m.InstallSeq(); seq%2 != 0 {
		t.Fatalf("seqlock left odd after aborted install: %d", seq)
	}
	if g := m.LatestStamp(); g != 0 {
		t.Fatalf("aborted install published a stamp: %d", g)
	}

	gsn, ok := InstallAtomicValidated(maps, []int{0}, func() bool { return true }, func() {
		m.UpdateUnstamped(0, func(tx *Txn[int, int, struct{}]) { tx.Insert(1, 1) })
	})
	if !ok || gsn == 0 {
		t.Fatalf("passing validation must install and return its GSN (ok=%v gsn=%d)", ok, gsn)
	}
	if g := m.LatestStamp(); g != gsn {
		t.Fatalf("validated install published stamp %d, returned %d", g, gsn)
	}

	// Read-only: no seqlock movement, verdict is the validator's.
	seq := m.InstallSeq()
	if _, ok := InstallAtomicValidated(maps, nil, func() bool { return true }, nil); !ok {
		t.Fatal("read-only validation should pass")
	}
	if _, ok := InstallAtomicValidated(maps, nil, func() bool { return false }, nil); ok {
		t.Fatal("read-only validation should fail")
	}
	if m.InstallSeq() != seq {
		t.Fatal("read-only validation moved the install seqlock")
	}
}

package core

import (
	"sync"
	"testing"

	"mvgc/internal/ftree"
)

func newKVMap(t *testing.T, procs, stripes int) *Map[int, int, struct{}] {
	t.Helper()
	ops := ftree.New[int, int, struct{}](ftree.IntCmp[int], ftree.NoAug[int, int](), 0)
	m, err := NewMap(Config{Algorithm: "pswf", Procs: procs}, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableKeyVersions(func(k int) uint64 { return uint64(k) }, stripes)
	return m
}

// TestKeyVersionBumpPerCommit: every committed write moves its key's stripe
// word by exactly one completed write and returns it stable, for stamped
// and unstamped commits alike; untouched stripes never move.
func TestKeyVersionBumpPerCommit(t *testing.T) {
	m := newKVMap(t, 2, 64)
	defer m.Close()
	if !m.KeyVersionsEnabled() {
		t.Fatal("KeyVersionsEnabled() = false after EnableKeyVersions")
	}

	k := 7
	stripe := m.KeyStripe(k)
	w0 := m.StripeWord(stripe)
	if !StableStripe(w0) {
		t.Fatalf("idle stripe unstable: %#x", w0)
	}
	m.Update(0, func(tx *Txn[int, int, struct{}]) { tx.Insert(k, 1) })
	if w := m.StripeWord(stripe); w != w0+1 {
		t.Fatalf("stamped commit moved stripe %#x -> %#x, want +1", w0, w)
	}
	m.UpdateUnstamped(0, func(tx *Txn[int, int, struct{}]) { tx.Insert(k, 2) })
	if w := m.StripeWord(stripe); w != w0+2 {
		t.Fatalf("unstamped commit moved stripe to %#x, want %#x", m.StripeWord(stripe), w0+2)
	}
	m.Update(0, func(tx *Txn[int, int, struct{}]) { tx.Delete(k) })
	if w := m.StripeWord(stripe); w != w0+3 {
		t.Fatalf("delete moved stripe to %#x, want %#x", w, w0+3)
	}

	// A pure read and a no-op write leave every stripe alone.
	before := make([]uint64, 8)
	for i := range before {
		before[i] = m.StripeWord(uint64(i))
	}
	m.Read(0, func(s Snapshot[int, int, struct{}]) { s.Get(k) })
	m.Update(0, func(tx *Txn[int, int, struct{}]) { tx.Delete(k) }) // absent: no-op commit
	for i := range before {
		if w := m.StripeWord(uint64(i)); w != before[i] {
			t.Fatalf("stripe %d moved on a no-op (%#x -> %#x)", i, before[i], w)
		}
	}
}

// TestKeyVersionWholesale: a batch past half the table, and SetRoot, bump
// every stripe (the conservative fallback for unknown/huge key sets), while
// a small batch only bumps its keys' stripes.
func TestKeyVersionWholesale(t *testing.T) {
	m := newKVMap(t, 2, 64) // rounded to 64 stripes
	defer m.Close()

	// Small batch: only the touched stripes move.
	small := []ftree.Entry[int, int]{{Key: 1, Val: 1}, {Key: 2, Val: 2}}
	idle := m.KeyStripe(999)
	if idle == m.KeyStripe(1) || idle == m.KeyStripe(2) {
		t.Skip("stripe collision with probe key")
	}
	w0 := m.StripeWord(idle)
	m.Update(0, func(tx *Txn[int, int, struct{}]) { tx.InsertBatch(small, nil) })
	if w := m.StripeWord(idle); w != w0 {
		t.Fatalf("small batch moved an untouched stripe (%#x -> %#x)", w0, w)
	}

	// Table-scale batch: every stripe moves (wholesale bracket).
	big := make([]ftree.Entry[int, int], 64)
	for i := range big {
		big[i] = ftree.Entry[int, int]{Key: i + 100, Val: i}
	}
	m.Update(0, func(tx *Txn[int, int, struct{}]) { tx.InsertBatch(big, nil) })
	if w := m.StripeWord(idle); w != w0+1 {
		t.Fatalf("wholesale batch left stripe at %#x, want %#x", w, w0+1)
	}
}

// TestKeyVersionStableUnderConcurrency: under concurrent committers every
// stripe word returns to a stable state with completed-write counts
// conserved (enters and exits balance exactly).
func TestKeyVersionStableUnderConcurrency(t *testing.T) {
	const procs = 4
	m := newKVMap(t, procs, 64)
	defer m.Close()

	var wg sync.WaitGroup
	const per = 300
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for n := 0; n < per; n++ {
				k := (pid*per + n) % 32
				m.Update(pid, func(tx *Txn[int, int, struct{}]) { tx.Insert(k, n) })
			}
		}(p)
	}
	wg.Wait()

	var versions uint64
	for i := uint64(0); i < 64; i++ {
		w := m.StripeWord(i)
		if !StableStripe(w) {
			t.Fatalf("stripe %d still marked in-flight after quiescence: %#x", i, w)
		}
		versions += w
	}
	// Committed writes: one per Update (all succeed eventually); retries add
	// extra version ticks, so the total must be at least the commit count.
	if versions < procs*per {
		t.Fatalf("completed-write count %d < committed writes %d", versions, procs*per)
	}
}

// TestInstallAtomicValidated: the validation gate aborts without touching
// roots or stamps, and the read-only form (no touched maps) validates
// without the seqlock window.
func TestInstallAtomicValidated(t *testing.T) {
	m := newKVMap(t, 2, 64)
	defer m.Close()
	maps := []*Map[int, int, struct{}]{m}

	committed := false
	ok := InstallAtomicValidated(maps, []int{0}, func() bool { return false }, func() { committed = true })
	if ok || committed {
		t.Fatalf("failed validation must not install (ok=%v committed=%v)", ok, committed)
	}
	if seq := m.InstallSeq(); seq%2 != 0 {
		t.Fatalf("seqlock left odd after aborted install: %d", seq)
	}
	if g := m.LatestStamp(); g != 0 {
		t.Fatalf("aborted install published a stamp: %d", g)
	}

	ok = InstallAtomicValidated(maps, []int{0}, func() bool { return true }, func() {
		m.UpdateUnstamped(0, func(tx *Txn[int, int, struct{}]) { tx.Insert(1, 1) })
	})
	if !ok {
		t.Fatal("passing validation must install")
	}
	if g := m.LatestStamp(); g == 0 {
		t.Fatal("validated install did not publish a stamp")
	}

	// Read-only: no seqlock movement, verdict is the validator's.
	seq := m.InstallSeq()
	if !InstallAtomicValidated(maps, nil, func() bool { return true }, nil) {
		t.Fatal("read-only validation should pass")
	}
	if InstallAtomicValidated(maps, nil, func() bool { return false }, nil) {
		t.Fatal("read-only validation should fail")
	}
	if m.InstallSeq() != seq {
		t.Fatal("read-only validation moved the install seqlock")
	}
}

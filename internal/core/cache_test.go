package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvgc/internal/ftree"
)

func newCacheTestMap(t testing.TB, procs int) *Map[uint64, uint64, struct{}] {
	t.Helper()
	ops := ftree.New[uint64, uint64, struct{}](ftree.IntCmp[uint64], ftree.NoAug[uint64, uint64](), 0)
	m, err := NewMap(Config{Algorithm: "pswf", Procs: procs}, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestWithCachedNoDoubleLease is the handle cache's safety property under
// the race detector: GOMAXPROCS×4 goroutines hammer cached point ops and
// every transaction asserts that its pid is not concurrently held by any
// other transaction — the Version Maintenance contract the cache must
// uphold without the PidPool mutex serializing anything.
func TestWithCachedNoDoubleLease(t *testing.T) {
	const procs = 8
	m := newCacheTestMap(t, procs)
	inUse := make([]atomic.Int32, procs)
	goroutines := runtime.GOMAXPROCS(0) * 4
	const iters = 2000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := uint64(g*iters + i)
				m.WithCached(func(h *Handle[uint64, uint64, struct{}]) {
					if !inUse[h.Pid()].CompareAndSwap(0, 1) {
						t.Errorf("pid %d double-leased", h.Pid())
						return
					}
					if i%4 == 0 {
						h.Update(func(tx *Txn[uint64, uint64, struct{}]) { tx.Insert(k, k) })
					} else {
						h.Read(func(s Snapshot[uint64, uint64, struct{}]) { s.Get(k) })
					}
					if !inUse[h.Pid()].CompareAndSwap(1, 0) {
						t.Errorf("pid %d released twice", h.Pid())
					}
				})
			}
		}(g)
	}
	wg.Wait()

	if held := m.CachedPids(); held > procs-1 {
		t.Fatalf("cache owns %d pids, exceeding the Procs-1 bound %d", held, procs-1)
	}
	m.Close()
	if live := m.Ops().Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestWithCachedLeavesBlockingPathAlive: with every cacheable pid absorbed
// by concurrent point ops, a plain blocking lease must still make progress
// (the cache reserves one pid for it), and mixing the two paths stays
// correct.
func TestWithCachedLeavesBlockingPathAlive(t *testing.T) {
	const procs = 4
	m := newCacheTestMap(t, procs)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < procs*2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.WithCached(func(h *Handle[uint64, uint64, struct{}]) {
					h.Update(func(tx *Txn[uint64, uint64, struct{}]) {
						tx.Insert(uint64(g), uint64(i))
					})
				})
			}
		}(g)
	}
	// The long-lived lease path (what a combining writer uses) must not
	// starve behind cached leases.
	for i := 0; i < 50; i++ {
		m.With(func(h *Handle[uint64, uint64, struct{}]) {
			h.Update(func(tx *Txn[uint64, uint64, struct{}]) {
				tx.Insert(1000+uint64(i), uint64(i))
			})
		})
	}
	close(stop)
	wg.Wait()
	m.WithCached(func(h *Handle[uint64, uint64, struct{}]) {
		h.Read(func(s Snapshot[uint64, uint64, struct{}]) {
			if _, ok := s.Get(1049); !ok {
				t.Error("blocking-path write lost")
			}
		})
	})
	m.Close()
	if live := m.Ops().Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestWithCachedSingleProc: with Procs == 1 the cache must stay empty
// (max 0) and every op must take the blocking path, still serializing
// correctly.
func TestWithCachedSingleProc(t *testing.T) {
	m := newCacheTestMap(t, 1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.WithCached(func(h *Handle[uint64, uint64, struct{}]) {
					h.Update(func(tx *Txn[uint64, uint64, struct{}]) {
						tx.Insert(uint64(g*200+i), 1)
					})
				})
			}
		}(g)
	}
	wg.Wait()
	if held := m.CachedPids(); held != 0 {
		t.Fatalf("single-proc map cached %d pids, want 0", held)
	}
	m.WithCached(func(h *Handle[uint64, uint64, struct{}]) {
		h.Read(func(s Snapshot[uint64, uint64, struct{}]) {
			if n := s.Len(); n != 800 {
				t.Errorf("Len = %d, want 800", n)
			}
		})
	})
	m.Close()
	if live := m.Ops().Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestWithCachedCloseForfeitsLease: a callback that Closes the cached
// handle returns the pid to the PidPool; the cache must notice and not
// hand the same pid out twice.
func TestWithCachedCloseForfeitsLease(t *testing.T) {
	const procs = 4
	m := newCacheTestMap(t, procs)
	m.WithCached(func(h *Handle[uint64, uint64, struct{}]) {
		h.Update(func(tx *Txn[uint64, uint64, struct{}]) { tx.Insert(1, 1) })
		h.Close()
	})
	if held := m.CachedPids(); held != 0 {
		t.Fatalf("cache still owns %d pids after callback Close", held)
	}
	// The pid must be usable again through either path.
	var leased []*Handle[uint64, uint64, struct{}]
	for i := 0; i < procs; i++ {
		leased = append(leased, m.Handle())
	}
	seen := map[int]bool{}
	for _, h := range leased {
		if seen[h.Pid()] {
			t.Fatalf("pid %d leased twice", h.Pid())
		}
		seen[h.Pid()] = true
		h.Close()
	}
	m.Close()
}

// TestWithCachedNoDeadlockWithLongLivedHandle is the liveness regression
// for the saturated fallback: with a long-lived Handle pinning the one
// non-cacheable pid (the combining-writer pattern) and every cached lease
// in flight, a new WithCached must complete as soon as a cached lease is
// parked again.  A fallback that blocked inside PidPool.Acquire would hang
// here forever: cached leases go back to the cache, never the pool, so no
// Release ever signals the waiter.
func TestWithCachedNoDeadlockWithLongLivedHandle(t *testing.T) {
	m := newCacheTestMap(t, 2) // cache max = 1
	writer := m.Handle()       // pins the reserved pid for the whole test

	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		m.WithCached(func(h *Handle[uint64, uint64, struct{}]) {
			close(entered)
			<-release // hold the only cacheable lease in flight
		})
	}()
	<-entered

	done := make(chan struct{})
	go func() {
		m.WithCached(func(h *Handle[uint64, uint64, struct{}]) {
			h.Update(func(tx *Txn[uint64, uint64, struct{}]) { tx.Insert(1, 1) })
		})
		close(done)
	}()

	close(release)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("WithCached deadlocked behind a parked cached lease")
	}
	writer.Close()
	m.Close()
	if live := m.Ops().Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestWithCachedCloseForfeitRace is the regression for the double-lease
// race in the Close-forfeit path: with cache headroom (Procs >= 3), a
// forfeited pid must not be re-leased — recycling the preallocated handle
// — while the forfeiting WithCached's epilogue still reads it.  The
// cached-Close protocol (Close records intent, the epilogue releases)
// keeps the pid inside the goroutine until after the closed check; the
// race detector plus the per-pid in-use assertions catch a regression.
func TestWithCachedCloseForfeitRace(t *testing.T) {
	const procs = 8
	m := newCacheTestMap(t, procs)
	inUse := make([]atomic.Int32, procs)
	goroutines := runtime.GOMAXPROCS(0) * 4
	const iters = 1500

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.WithCached(func(h *Handle[uint64, uint64, struct{}]) {
					if !inUse[h.Pid()].CompareAndSwap(0, 1) {
						t.Errorf("pid %d double-leased", h.Pid())
						return
					}
					h.Read(func(s Snapshot[uint64, uint64, struct{}]) { s.Get(uint64(i)) })
					pid := h.Pid()
					if i%3 == 0 {
						h.Close() // forfeit the cached lease mid-storm
					}
					if !inUse[pid].CompareAndSwap(1, 0) {
						t.Errorf("pid %d released twice", pid)
					}
				})
			}
		}(g)
	}
	wg.Wait()
	if held := m.CachedPids(); held < 0 || held > procs-1 {
		t.Fatalf("cache owns %d pids after forfeit storm, want 0..%d", held, procs-1)
	}
	// Every pid must still be leasable exactly once.
	var leased []*Handle[uint64, uint64, struct{}]
	for i := 0; i < procs-m.CachedPids(); i++ {
		h, ok := m.TryHandle()
		if !ok {
			t.Fatalf("pool exhausted after %d leases with %d cached", i, m.CachedPids())
		}
		leased = append(leased, h)
	}
	seen := map[int]bool{}
	for _, h := range leased {
		if seen[h.Pid()] {
			t.Fatalf("pid %d leased twice", h.Pid())
		}
		seen[h.Pid()] = true
		h.Close()
	}
	m.Close()
	if live := m.Ops().Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

package core

import "sync"

// PidPool leases process identifiers to short-lived workers.  The Version
// Maintenance contract requires that a given process id is never used
// concurrently; long-lived workers can simply own an id, but servers that
// spawn a goroutine per request need to multiplex many goroutines over P
// ids.  Acquire blocks while all ids are leased, which doubles as
// admission control: at most P transactions run at once.
type PidPool struct {
	mu   sync.Mutex
	cond *sync.Cond
	free []int
}

// NewPidPool returns a pool over ids lo..hi-1.
func NewPidPool(lo, hi int) *PidPool {
	p := &PidPool{}
	p.cond = sync.NewCond(&p.mu)
	for id := hi - 1; id >= lo; id-- {
		p.free = append(p.free, id)
	}
	return p
}

// Acquire leases an id, blocking until one is available.
func (p *PidPool) Acquire() int {
	p.mu.Lock()
	for len(p.free) == 0 {
		p.cond.Wait()
	}
	id := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.mu.Unlock()
	return id
}

// TryAcquire leases an id without blocking; ok is false when all ids are
// in use.
func (p *PidPool) TryAcquire() (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return 0, false
	}
	id := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return id, true
}

// Release returns a leased id to the pool.
func (p *PidPool) Release(id int) {
	p.mu.Lock()
	p.free = append(p.free, id)
	p.mu.Unlock()
	p.cond.Signal()
}

// Do runs f with a leased id, releasing it afterwards.
func (p *PidPool) Do(f func(pid int)) {
	id := p.Acquire()
	defer p.Release(id)
	f(id)
}

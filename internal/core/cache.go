package core

// This file adds the cached-handle fast path for point operations.  The
// plain lease path (Handle/With) pays two PidPool mutex acquisitions per
// transaction — Acquire and Release both lock the pool — which dominates
// the cost of a point read on a hot map.  The cache keeps already-leased
// pids on a bounded lock-free free list, so a goroutine running
// back-to-back point ops reuses a parked lease with one CAS at each end
// instead of two mutex round-trips.
//
// Two designs were considered and rejected:
//
//   - sync.Pool: a lease parked in another P's private pool slot is not
//     stealable, so with the pid space exhausted a WithCached fallback
//     could block on the PidPool until the next GC purge released it — a
//     liveness hazard.
//   - a heap-node Treiber stack: ABA-freedom requires a fresh node per
//     push, and that allocation made the fast path slower than the
//     mutexes it replaces.
//
// Instead the free list is an intrusive stack over the pid space itself:
// next[pid] links parked pids, and head packs the top pid with a version
// counter bumped on every successful push/pop, so a stale CAS can never
// succeed (no ABA) and steady-state point ops allocate nothing.
//
// Invariants:
//
//   - A pid owned by the cache is leased from the PidPool exactly once and
//     stays leased while it sits on the free list or is in use by a
//     WithCached caller; the stack pop's exclusive ownership is what
//     upholds the Version Maintenance rule that a pid never runs
//     concurrently.
//   - The cache owns at most Procs-1 pids, so at least one pid always
//     flows through the blocking lease path: a long-lived Handle (e.g. a
//     combining writer) can never be starved by idle cached leases.
//   - Parked pids stay leased for the map's lifetime (pids are a fixed
//     O(P) resource; there is nothing to shrink), inside the bound above.
//
// When the free list is empty and the pid space is exhausted (or
// Procs == 1), WithCached polls cache and pool with backoff until a pid
// frees (see the method comment for why it must not sleep in
// PidPool.Acquire), preserving admission control: at most P transactions
// run at once, cached or not.

import (
	"runtime"
	"sync/atomic"
	"time"
)

// handleCache is the per-Map cache state; NewMap sets max and sizes next.
type handleCache struct {
	// head packs the free list's top into one CAS-able word: the low 32
	// bits hold pid+1 (0 = empty list), the high 32 bits a version counter
	// incremented by every successful push and pop.
	head atomic.Uint64
	// next[pid] holds the pid+1 below pid on the stack (0 = bottom).  It
	// is written only by the pusher that currently owns pid; a racing pop
	// may read a stale value but its CAS then fails on the version.
	next []atomic.Int32
	// held counts pids currently owned by the cache, whether parked on the
	// free list or in use by a WithCached caller; it grows only while
	// below max.
	held atomic.Int64
	max  int64
}

// pop takes a parked pid off the free list, with exclusive ownership.
func (c *handleCache) pop() (pid int, ok bool) {
	for {
		h := c.head.Load()
		top := uint32(h)
		if top == 0 {
			return 0, false
		}
		below := uint32(c.next[top-1].Load())
		if c.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(below)) {
			return int(top - 1), true
		}
	}
}

// push parks a pid on the free list for the next point op.
func (c *handleCache) push(pid int) {
	for {
		h := c.head.Load()
		c.next[pid].Store(int32(uint32(h)))
		if c.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(pid+1)) {
			return
		}
	}
}

// takeCached returns an exclusively-owned cached pid; ok is false when the
// caller should fall back to the blocking path.
func (m *Map[K, V, A]) takeCached() (int, bool) {
	if pid, ok := m.cache.pop(); ok {
		return pid, true
	}
	for {
		held := m.cache.held.Load()
		if held >= m.cache.max {
			return 0, false
		}
		if !m.cache.held.CompareAndSwap(held, held+1) {
			continue
		}
		pid, ok := m.pool.TryAcquire()
		if !ok {
			m.cache.held.Add(-1)
			return 0, false
		}
		return pid, true
	}
}

// WithCached runs f with a handle from the map's lease cache — the fast
// path for point operations, skipping both PidPool mutex hits on reuse.
// When no cached lease is available and the cache cannot grow (pid space
// exhausted, or Procs == 1), it polls both the cache and the PidPool with
// backoff until a pid frees, so admission control is unchanged: at most P
// transactions run at once.  It must not block inside PidPool.Acquire —
// cached leases are returned to the cache, never the pool, so a pool
// waiter would sleep through every cached-lease release and hang for as
// long as a long-lived Handle (e.g. a combining writer) pins the one
// reserved pid.  Like With, the handle is valid only within f; unlike
// With, f should not Close it (Close is tolerated but forfeits the cached
// lease, returning its pid to the PidPool).
func (m *Map[K, V, A]) WithCached(f func(h *Handle[K, V, A])) {
	pid, ok := m.takeCached()
	for spins := 0; !ok; spins++ {
		// Saturated: every pid is inside a transaction.  One frees within a
		// point op's latency; yield first, then sleep so spinners don't
		// drown the PidPool's cond waiters on the reserved pid.
		if spins < 32 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
		if h, leased := m.TryHandle(); leased {
			defer h.Close()
			f(h)
			return
		}
		pid, ok = m.takeCached()
	}
	// Popping pid grants exclusive ownership of its preallocated handle
	// too, so the fast path allocates nothing.  The pid leaves this
	// goroutine only below — in push or Release, both after the closed
	// check — so no new owner can recycle the handle while we still read
	// it (the cached-Close protocol; see Handle.cached).
	h := &m.chandles[pid]
	h.closed = false
	defer func() {
		if h.closed {
			// The callback closed the handle: forfeit the cached lease and
			// return the pid to the PidPool.
			m.cache.held.Add(-1)
			m.pool.Release(pid)
			return
		}
		m.cache.push(pid)
	}()
	f(h)
}

// CachedPids reports how many pids the cache currently owns (parked or in
// use by a WithCached caller); it never exceeds Procs-1.
func (m *Map[K, V, A]) CachedPids() int { return int(m.cache.held.Load()) }

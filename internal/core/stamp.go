package core

// This file adds the global commit sequence number (GSN) machinery that the
// shard layer builds cross-shard atomicity on.  Every committed root —
// whether a plain per-map commit or one leg of a cross-map atomic install —
// is stamped from a monotone counter, and each Map publishes the largest
// stamp it has committed.  When several Maps share one counter (see
// Config.Stamp), their stamps form a single global commit order, the same
// single-version-stamp discipline EEMARQ (Sheffi et al.) and the epoch-based
// multiversion collectors (Ben-David et al., DISC 2021) use to cut a
// consistent snapshot across independent structures.
//
// Three pieces live here, all lock-free on the commit path:
//
//   - The stamp itself: tryUpdate calls stamp() right after a successful
//     Set — one atomic Add on the (possibly shared) counter plus one
//     CAS-max on the map's latestStamp word.  No lock, no allocation, so
//     the cached-handle point-op path is unchanged apart from those two
//     RMWs.  Stamps are allocated *after* the Set is visible, which is what
//     makes the reader protocol below sound: if a reader observed
//     LatestStamp() >= g before pinning a version, then commit g's root (and
//     those of every smaller stamp on this map) is contained in the pinned
//     version — a stamp can never lead its own visibility.
//
//   - The install seqlock (installSeq): a per-map sequence word that a
//     cross-map atomic installer drives odd before its first Set and even
//     again after its last.  A reader that collects the word before and
//     after pinning, and sees the same even value both times, is guaranteed
//     no atomic install overlapped the pin — the double-collect that makes
//     shard.Map.ViewConsistent tear-free without any reader lock.
//
//   - The writer slot (slotMu): a per-map mutex serializing atomic
//     installers (and the batch combiner's commits, which take it briefly so
//     a multi-shard install never has to chase a firehose of batch commits).
//     Plain transactions never touch it: Read/Update/WithCached stay
//     mutex-free.  Deadlock-freedom: multi-map operations acquire slots in
//     ascending shard order (ordered resource acquisition), and the
//     slot/pid interaction cannot cycle because pids are fungible — a slot
//     holder waiting for a pid waits for *any* pid, never a specific one.
//     The only pid holder that blocks on a slot is the combiner (one
//     long-lived leased pid per batched map), and it can never be the last
//     pid standing: WithCached caps cached leases at Procs-1 and polls
//     rather than sleeping, so every other pid on the map is held only by
//     transactions that complete without touching slots and then free it.
//     (This does assume Procs >= 2 on a batched map — with Procs == 1 the
//     combiner's lease is the whole pid space, with or without slots.)

import "sync/atomic"

// LatestStamp returns the largest global commit sequence number this map has
// committed (0 before the first stamped commit).  Monotone; because stamps
// are published after their Set, any version acquired after observing
// LatestStamp() >= g contains every commit of this map stamped <= g.
func (m *Map[K, V, A]) LatestStamp() uint64 { return m.latestStamp.Load() }

// StampSource exposes the counter commits are stamped from, so sibling
// structures (e.g. an atomic installer allocating the transaction's single
// GSN) draw from the same sequence.
func (m *Map[K, V, A]) StampSource() *atomic.Uint64 { return m.stampSrc }

// BumpStamp publishes g as a committed stamp on this map (CAS-max, so
// concurrent committers with out-of-order stamps cannot regress the word).
// Plain commits call it internally; atomic installers call it once per
// touched map with the transaction's shared GSN after all roots are
// installed.
func (m *Map[K, V, A]) BumpStamp(g uint64) {
	for {
		cur := m.latestStamp.Load()
		if g <= cur || m.latestStamp.CompareAndSwap(cur, g) {
			return
		}
	}
}

// stamp allocates the next GSN, publishes it, and records it as pid's
// last commit stamp; called after every successful stamped Set.  The
// per-pid record is what lets a caller that just committed learn its
// own GSN (Handle.LastStamp) — e.g. to key the commit's redo record —
// without widening every transaction signature.
func (m *Map[K, V, A]) stamp(pid int) {
	g := m.stampSrc.Add(1)
	m.BumpStamp(g)
	m.lastStamps[pid] = g
}

// LockWriterSlot acquires the map's writer slot — the mutual exclusion
// among cross-map atomic installers (and the combiner's batch commits).
// Callers locking slots on several maps must do so in ascending shard
// order.  Plain transactions do not take the slot.
func (m *Map[K, V, A]) LockWriterSlot() { m.slotMu.Lock() }

// UnlockWriterSlot releases the writer slot.
func (m *Map[K, V, A]) UnlockWriterSlot() { m.slotMu.Unlock() }

// BeginInstall marks a cross-map atomic install in progress: the install
// seqlock goes odd.  The caller must hold the writer slot and must pair the
// call with EndInstall after its last Set on this map.
func (m *Map[K, V, A]) BeginInstall() { m.installSeq.Add(1) }

// EndInstall marks the install finished: the seqlock returns to even.  Call
// only after the installed root's stamp has been published (BumpStamp), so
// a reader whose double-collect straddles no install sees stamps and roots
// agree.
func (m *Map[K, V, A]) EndInstall() { m.installSeq.Add(1) }

// InstallSeq returns the install seqlock word: odd while an atomic install
// is mid-flight on this map.  Two equal even reads bracketing a version
// acquisition prove no atomic install overlapped it.
func (m *Map[K, V, A]) InstallSeq() uint64 { return m.installSeq.Load() }

// LockWriterSlots acquires the writer slots of maps[touched...] in
// ascending index order; touched must be sorted ascending (the ordered
// acquisition that keeps multi-map installers deadlock-free).
func LockWriterSlots[K, V, A any](maps []*Map[K, V, A], touched []int) {
	for _, i := range touched {
		maps[i].LockWriterSlot()
	}
}

// UnlockWriterSlots releases the slots taken by LockWriterSlots, in
// reverse order.
func UnlockWriterSlots[K, V, A any](maps []*Map[K, V, A], touched []int) {
	for j := len(touched) - 1; j >= 0; j-- {
		maps[touched[j]].UnlockWriterSlot()
	}
}

// InstallAtomic is the cross-map atomic install protocol, in one audited
// place: with the touched maps' writer slots already held by the caller,
// it drives their install seqlocks odd, runs commitAll — which must
// publish one unstamped commit (UpdateUnstamped) per touched map, in any
// order or in parallel — then allocates ONE stamp from the shared counter,
// publishes it on every touched map, and drives the seqlocks even.  The
// stamp is allocated after the last install so it never leads any of its
// roots' visibility, the invariant consistent readers rest on; the maps
// must share their stamp source (Config.Stamp), or the "one global order"
// the stamp promises would be fiction.
func InstallAtomic[K, V, A any](maps []*Map[K, V, A], touched []int, commitAll func()) {
	InstallAtomicValidated(maps, touched, nil, commitAll)
}

// InstallAtomicValidated is InstallAtomic with an optimistic-concurrency
// gate: after the touched maps' install seqlocks go odd — so no consistent
// reader can cut a snapshot mid-decision — validate runs, and only if it
// returns true does the install proceed.  On false the seqlocks return even
// with nothing published and the call reports failure, which is the abort
// half of shard.Map.UpdateAtomicKeys' validate-at-install loop; validate
// typically re-reads the key-version stripes (keyver.go) of the
// transaction's read set.  A nil validate always installs.
//
// Validation alone does NOT make the install atomic: between validate
// returning true and commitAll's Sets becoming visible, an unfenced point
// writer could commit on a key this transaction writes, and the installed
// roots — absolute values computed from the validated reads — would
// silently erase it (a lost update admitted by no serial order).  A
// validating caller must therefore hold install locks (Map.LockStripes) on
// every stripe its commitAll writes, taken BEFORE validate runs and
// released only after this call returns: the locks stall unfenced writers'
// commit brackets off the write set for the whole validate-to-install
// window, and — because locking precedes validation — two concurrent
// installers that read each other's write sets cannot both pass validation
// (one of them must observe the other's lock, which validation treats as a
// conflict), which forecloses write skew.  commitAll's own transactions
// declare Txn.HoldsStripeLocks so they pass their own locks.  With the
// locks held the transaction linearizes at its validation read: reads of
// unwritten stripes stay current-or-aborted by the stripe-word compare, and
// writes cannot be disturbed or disturb until published.
// shard.Map.installLocked is the reference caller of this protocol.
//
// A read-only transaction (touched empty) skips the seqlock protocol and
// needs no locks: its validation alone proves all reads held simultaneously
// at the validation point, which is its linearization.
//
// On success the allocated stamp is returned (0 on abort or for read-only
// transactions): it is the transaction's global commit sequence number,
// which the WAL layer uses to key the install's redo record.
func InstallAtomicValidated[K, V, A any](maps []*Map[K, V, A], touched []int, validate func() bool, commitAll func()) (uint64, bool) {
	if len(touched) == 0 {
		return 0, validate == nil || validate()
	}
	for _, i := range touched {
		maps[i].BeginInstall()
	}
	// The seqlocks must return even no matter how commitAll exits: a panic
	// out of user code (a comb or cmp) mid-install forfeits the
	// transaction's atomicity — legs already installed stay installed,
	// unstamped — but must not leave the seqlocks odd, which would wedge
	// every future consistent read and install on these maps.  The panic
	// propagates to the caller (which must likewise release its slots).
	defer func() {
		for _, i := range touched {
			maps[i].EndInstall()
		}
	}()
	if validate != nil && !validate() {
		return 0, false
	}
	commitAll()
	g := maps[touched[0]].stampSrc.Add(1)
	for _, i := range touched {
		maps[i].BumpStamp(g)
	}
	return g, true
}

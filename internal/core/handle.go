package core

import "sync"

// This file is the goroutine-facing face of the map: the Version
// Maintenance contract wants a fixed set of P processes, each calling
// Acquire/Set/Release with its own pid and never concurrently, while Go
// servers want to run a transaction from whichever goroutine happens to
// hold the request.  A Handle bridges the two worlds: it owns a leased pid
// and forwards transactions to it, so user code never sees a pid at all.
//
// A Map may be driven either through handles (leased from the map's
// internal pool) or through the raw pid-indexed methods (the seed's
// contract, where the caller statically assigns pids 0..P-1).  The two
// styles must not be mixed on one Map: the pool hands out the full pid
// space, so a raw pid may collide with a leased one.  Code that needs a
// long-lived dedicated pid (a combining writer, a benchmark worker) should
// hold a Handle for its lifetime instead of hard-coding a pid.
//
// Short point operations should prefer WithCached (cache.go), which reuses
// leases through a lock-free cache instead of paying the pool's two mutex
// acquisitions on every transaction.

// PidPool leases process identifiers to short-lived workers.  The Version
// Maintenance contract requires that a given process id is never used
// concurrently; long-lived workers can simply own an id, but servers that
// spawn a goroutine per request need to multiplex many goroutines over P
// ids.  Acquire blocks while all ids are leased, which doubles as
// admission control: at most P transactions run at once.
type PidPool struct {
	mu   sync.Mutex
	cond *sync.Cond
	free []int
}

// NewPidPool returns a pool over ids lo..hi-1.
func NewPidPool(lo, hi int) *PidPool {
	p := &PidPool{}
	p.cond = sync.NewCond(&p.mu)
	for id := hi - 1; id >= lo; id-- {
		p.free = append(p.free, id)
	}
	return p
}

// Acquire leases an id, blocking until one is available.
func (p *PidPool) Acquire() int {
	p.mu.Lock()
	for len(p.free) == 0 {
		p.cond.Wait()
	}
	id := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.mu.Unlock()
	return id
}

// TryAcquire leases an id without blocking; ok is false when all ids are
// in use.
func (p *PidPool) TryAcquire() (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return 0, false
	}
	id := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return id, true
}

// Release returns a leased id to the pool.
func (p *PidPool) Release(id int) {
	p.mu.Lock()
	p.free = append(p.free, id)
	p.mu.Unlock()
	p.cond.Signal()
}

// Do runs f with a leased id, releasing it afterwards.
func (p *PidPool) Do(f func(pid int)) {
	id := p.Acquire()
	defer p.Release(id)
	f(id)
}

// Handle is a leased process identity on a Map.  It may migrate between
// goroutines, but its methods must never run concurrently — exactly the
// Version Maintenance contract, enforced by lease exclusivity rather than
// by caller discipline.  Close returns the pid to the map's pool.
//
// A handle owns its pid's node arena (ftree.Arena) for the duration of the
// lease: transactions run on an Ops view bound to it, so the write path
// allocates and collects through a single-owner magazine with no locks.
// The arena belongs to the pid, not the handle struct — release a pid and
// re-lease it and the magazine is still warm — which is also what makes
// the preallocated WithCached handles (pid-affine by construction) hit the
// same fast path with zero extra plumbing.
type Handle[K, V, A any] struct {
	m   *Map[K, V, A]
	pid int
	// cached marks the preallocated handles WithCached hands out: their
	// Close only records the intent, and WithCached's epilogue performs
	// the actual pool release.  Releasing inside Close would let another
	// goroutine re-lease the pid — and recycle this very struct — while
	// the epilogue still reads closed (a double-lease race).
	cached bool
	closed bool
}

// Handle leases a process identity, blocking while all P are in use
// (admission control: at most P transactions run at once).  The caller
// must Close it.
func (m *Map[K, V, A]) Handle() *Handle[K, V, A] {
	return &Handle[K, V, A]{m: m, pid: m.pool.Acquire()}
}

// TryHandle leases a process identity without blocking; ok is false when
// all P are in use.
func (m *Map[K, V, A]) TryHandle() (*Handle[K, V, A], bool) {
	pid, ok := m.pool.TryAcquire()
	if !ok {
		return nil, false
	}
	return &Handle[K, V, A]{m: m, pid: pid}, true
}

// With runs f with a leased handle, closing it afterwards.  It is the
// scoped form of Handle/Close for short transactions.
func (m *Map[K, V, A]) With(f func(h *Handle[K, V, A])) {
	h := m.Handle()
	defer h.Close()
	f(h)
}

// Close returns the leased pid to the pool.  The handle must not be used
// afterwards; Close is idempotent.  For a cached handle (inside a
// WithCached callback) the release is deferred to WithCached's epilogue;
// see the cached field.
func (h *Handle[K, V, A]) Close() {
	if h.closed {
		return
	}
	h.closed = true
	if h.cached {
		return
	}
	h.m.pool.Release(h.pid)
}

// Pid exposes the leased pid for integration with pid-indexed code (e.g.
// experiment harnesses that index per-process counters).
func (h *Handle[K, V, A]) Pid() int { return h.pid }

// Map returns the map this handle is leased from.
func (h *Handle[K, V, A]) Map() *Map[K, V, A] { return h.m }

// Read runs a read-only transaction on the leased process.
func (h *Handle[K, V, A]) Read(f func(s Snapshot[K, V, A])) { h.m.Read(h.pid, f) }

// Update runs a write transaction on the leased process, retrying on
// conflict until it commits; it returns the number of retries.
func (h *Handle[K, V, A]) Update(f func(t *Txn[K, V, A])) int { return h.m.Update(h.pid, f) }

// UpdateUnstamped runs a write transaction whose commit stamp is deferred:
// the caller is a cross-map atomic installer and will publish the
// transaction's shared GSN via Map.BumpStamp after every touched map's root
// is installed (see stamp.go).
func (h *Handle[K, V, A]) UpdateUnstamped(f func(t *Txn[K, V, A])) int {
	return h.m.UpdateUnstamped(h.pid, f)
}

// TryUpdate runs a write transaction that aborts instead of retrying; it
// reports whether the transaction committed.
func (h *Handle[K, V, A]) TryUpdate(f func(t *Txn[K, V, A])) bool { return h.m.TryUpdate(h.pid, f) }

// LastStamp returns the GSN of the most recent stamped commit made
// through this handle, or 0 when that commit was a no-op (nothing
// published — e.g. a delete of an absent key).  Valid until the next
// transaction on the handle; the WAL layer keys redo records with it.
func (h *Handle[K, V, A]) LastStamp() uint64 { return h.m.lastStamps[h.pid] }

// ReserveNodes pre-fills the leased pid's arena so the next n node
// allocations are magazine hits: block transfers from the global free
// lists, plus at most one contiguous chunk carve.  A combining writer
// calls this with its gathered batch size before committing, bounding the
// batch's shared-list traffic at O(n/M) lock acquisitions.
func (h *Handle[K, V, A]) ReserveNodes(n int) { h.m.pops[h.pid].Reserve(n) }

// ArenaStats exposes the leased pid's arena counters (refills, spills,
// chunk carves) for tests and tuning; call only while holding the lease.
func (h *Handle[K, V, A]) ArenaStats() (refills, spills, carves int64) {
	return h.m.arenas[h.pid].Stats()
}

// Package core assembles the paper's transactional system (Section 5,
// Figure 1): a multiversion ordered map built from a purely functional
// tree (internal/ftree) and a Version Maintenance algorithm (internal/vm),
// with reference-counting garbage collection that is safe and precise
// (Theorem 5.3) and strict serializability (Theorem 5.1).
//
// A read transaction acquires a version, runs arbitrary user code against
// that immutable snapshot, then releases and collects; its response is
// ready as soon as the user code finishes, so reads are delay-free
// (Theorem 5.4).  A write transaction acquires a version, path-copies a new
// one, publishes it with Set, then releases and collects; with the PSWF
// algorithm a solo writer has O(P) delay, and concurrent writers are
// lock-free (a failed Set implies some other writer succeeded).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mvgc/internal/ftree"
	"mvgc/internal/vm"
)

// Map is a multiversion transactional ordered map for P processes.  The
// pid-indexed methods (Read, Update, TryUpdate) take the calling process's
// identifier pid ∈ [0, P); a given pid must not be used concurrently,
// matching the Version Maintenance contract.  Goroutine-oriented callers
// should not manage pids by hand: lease a Handle (see handle.go) and let
// the map's pool enforce the contract.
type Map[K, V, A any] struct {
	ops      *ftree.Ops[K, V, A]
	m        vm.Maintainer[ftree.Node[K, V, A]]
	procs    int
	pool     *PidPool
	cache    handleCache       // cached leases for point ops (see cache.go)
	chandles []Handle[K, V, A] // preallocated per-pid handles for WithCached

	// Global-commit-sequence state (see stamp.go): stampSrc is the counter
	// commits draw their GSN from (shared across sibling shards when
	// Config.Stamp is set), latestStamp the largest stamp committed here,
	// installSeq the seqlock readers double-collect to detect an atomic
	// cross-map install in flight, and slotMu the writer slot serializing
	// such installs (plus combiner commits).
	stampSrc    *atomic.Uint64
	latestStamp atomic.Uint64
	installSeq  atomic.Uint64
	slotMu      sync.Mutex
	// lastStamps[p] is the GSN of pid p's most recent stamped commit, 0
	// when that commit was a no-op (pid exclusivity makes the plain slice
	// safe).  Read back via Handle.LastStamp by callers that need their
	// own commit's GSN, e.g. to key a WAL record.
	lastStamps []uint64

	// Per-key version state (see keyver.go): kvtab is the striped table of
	// (in-flight, completed-writes) seqlock words commits bracket their Set
	// with, kvhash/kvmask map a key onto it.  Nil until EnableKeyVersions;
	// maps without OCC transactions never pay more than a nil check.
	kvtab  []atomic.Uint64
	kvmask uint64
	kvhash func(K) uint64

	// Per-pid allocation state: pid p's transactions run on pops[p], an
	// Ops view bound to arenas[p] — a pid-local node magazine (see
	// ftree.Arena) — so the path-copying write path allocates and collects
	// with no locks.  txns[p] and rbufs[p] are pid p's reusable write
	// transaction and Release collect buffer, which together with the
	// arena make a warm point update allocate nothing from the Go heap.
	// Pid exclusivity (one leaseholder at a time, never concurrent) is
	// exactly the single-owner discipline all four need.
	arenas []*ftree.Arena[K, V, A]
	pops   []*ftree.Ops[K, V, A]
	txns   []Txn[K, V, A]
	rbufs  [][]*ftree.Node[K, V, A]

	// TrackVersions enables sampling of the version count at the start of
	// every write transaction (the Table 2 / Figure 6 metric).
	TrackVersions bool
	maxVersions   atomic.Int64

	commits atomic.Int64
	aborts  atomic.Int64
	closed  atomic.Bool
}

// Config selects the Version Maintenance algorithm and process count.
type Config struct {
	// Algorithm is one of vm.Names(): base, pswf, pslf, hp, epoch, rcu,
	// sbgc.
	// Empty selects pswf.
	Algorithm string
	// Procs is the number of processes P that will use the map.
	Procs int
	// NoRecycle disables node recycling (the pid-local magazine allocator
	// and the global free lists), so every mk allocates fresh from the Go
	// heap — the ablation NewMap's recycling-on default is measured
	// against (BenchmarkAllocPointUpdate, cmd/allocbench).
	NoRecycle bool
	// Stamp, when non-nil, is the shared counter commits draw their global
	// commit sequence number from.  Sibling maps given the same counter
	// (e.g. the shards of one shard.Map) stamp their commits in one global
	// order, which is what lets a cross-shard reader cut a consistent
	// snapshot (see stamp.go).  Nil gives the map a private counter.
	Stamp *atomic.Uint64
}

// NewMap creates a transactional map whose initial version holds the given
// entries (in any order; later duplicates win).  ops supplies ordering,
// augmentation and the collector shared by all versions.
func NewMap[K, V, A any](cfg Config, ops *ftree.Ops[K, V, A], initial []ftree.Entry[K, V]) (*Map[K, V, A], error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("core: Procs must be positive, got %d", cfg.Procs)
	}
	if cfg.Procs > vm.MaxProcs {
		return nil, fmt.Errorf("core: Procs %d exceeds the version-maintenance limit %d", cfg.Procs, vm.MaxProcs)
	}
	alg := cfg.Algorithm
	if alg == "" {
		alg = "pswf"
	}
	// Recycling is on by default: with pid-local arenas the collector's
	// "free instruction" feeds the next allocation without locks, which is
	// the paper's version-memory reuse.  cfg.NoRecycle is the ablation.
	ops.Recycle = !cfg.NoRecycle
	root := ops.MultiInsert(nil, initial, nil) // owned token goes to the VM
	m := vm.New[ftree.Node[K, V, A]](alg, cfg.Procs, root)
	if m == nil {
		ops.Release(root)
		return nil, fmt.Errorf("core: unknown version-maintenance algorithm %q (want one of %v)", alg, vm.Names())
	}
	mp := &Map[K, V, A]{ops: ops, m: m, procs: cfg.Procs, pool: NewPidPool(0, cfg.Procs)}
	mp.stampSrc = cfg.Stamp
	if mp.stampSrc == nil {
		mp.stampSrc = new(atomic.Uint64)
	}
	mp.cache.max = int64(cfg.Procs - 1) // keep one pid on the blocking path
	mp.cache.next = make([]atomic.Int32, cfg.Procs)
	mp.chandles = make([]Handle[K, V, A], cfg.Procs)
	for pid := range mp.chandles {
		mp.chandles[pid] = Handle[K, V, A]{m: mp, pid: pid, cached: true}
	}
	mp.arenas = make([]*ftree.Arena[K, V, A], cfg.Procs)
	mp.pops = make([]*ftree.Ops[K, V, A], cfg.Procs)
	mp.txns = make([]Txn[K, V, A], cfg.Procs)
	mp.rbufs = make([][]*ftree.Node[K, V, A], cfg.Procs)
	mp.lastStamps = make([]uint64, cfg.Procs)
	for pid := 0; pid < cfg.Procs; pid++ {
		mp.arenas[pid] = ops.NewArena()
		mp.pops[pid] = ops.Bound(mp.arenas[pid])
		mp.rbufs[pid] = make([]*ftree.Node[K, V, A], 0, 4)
	}
	return mp, nil
}

// Ops exposes the tree operations (and their allocation accounting).
func (m *Map[K, V, A]) Ops() *ftree.Ops[K, V, A] { return m.ops }

// Procs returns the process count P.
func (m *Map[K, V, A]) Procs() int { return m.procs }

// Algorithm returns the Version Maintenance algorithm in use.
func (m *Map[K, V, A]) Algorithm() string { return m.m.Name() }

// Commits returns the number of committed write transactions.
func (m *Map[K, V, A]) Commits() int64 { return m.commits.Load() }

// Aborts returns the number of Set failures (each implies a conflicting
// concurrent commit).
func (m *Map[K, V, A]) Aborts() int64 { return m.aborts.Load() }

// Uncollected reports the number of versions currently retained.
func (m *Map[K, V, A]) Uncollected() int { return m.m.Uncollected() }

// MaxVersions returns the peak version count sampled at write-transaction
// starts since the last ResetMaxVersions (requires TrackVersions).
func (m *Map[K, V, A]) MaxVersions() int64 { return m.maxVersions.Load() }

// ResetMaxVersions clears the peak version gauge.
func (m *Map[K, V, A]) ResetMaxVersions() { m.maxVersions.Store(0) }

// collect runs Figure 1's cleanup loop for pid: Algorithm 5's collect on
// every version the VM hands back, releasing through pid's bound ops so
// freed nodes land in pid's arena, ready for its next allocation.  The VM
// appends into pid's reusable buffer, so a steady-state cleanup phase
// allocates nothing.
func (m *Map[K, V, A]) collect(pid int) {
	buf := m.m.ReleaseInto(pid, m.rbufs[pid][:0])
	po := m.pops[pid]
	for _, r := range buf {
		po.Release(r)
	}
	m.rbufs[pid] = buf[:0]
}

// Read runs a read-only transaction on process pid (Figure 1, left).  The
// snapshot passed to f is immutable and valid only within f.
func (m *Map[K, V, A]) Read(pid int, f func(s Snapshot[K, V, A])) {
	root := m.m.Acquire(pid)
	f(Snapshot[K, V, A]{ops: m.pops[pid], root: root})
	// Response point: the transaction's result is complete here; what
	// follows is the cleanup phase.
	m.collect(pid)
}

// Snapshot is an immutable view of one version.  Reads cost exactly what
// they cost on the underlying functional tree — no synchronization, no
// version lists — which is what makes read transactions delay-free.
type Snapshot[K, V, A any] struct {
	ops  *ftree.Ops[K, V, A]
	root *ftree.Node[K, V, A]
}

// Get returns the value stored under k.
func (s Snapshot[K, V, A]) Get(k K) (V, bool) { return s.ops.Find(s.root, k) }

// Has reports whether k is present.
func (s Snapshot[K, V, A]) Has(k K) bool { return s.ops.Has(s.root, k) }

// Len returns the number of entries.
func (s Snapshot[K, V, A]) Len() int64 { return s.ops.Size(s.root) }

// AugRange folds the augmented value over keys in [lo, hi] in O(log n).
func (s Snapshot[K, V, A]) AugRange(lo, hi K) A { return s.ops.AugRange(s.root, lo, hi) }

// Range returns the entries with keys in [lo, hi].
func (s Snapshot[K, V, A]) Range(lo, hi K) []ftree.Entry[K, V] {
	return s.ops.RangeEntries(s.root, lo, hi)
}

// ForEach visits all entries in key order.
func (s Snapshot[K, V, A]) ForEach(f func(K, V)) { s.ops.ForEach(s.root, f) }

// ForEachCond visits entries in key order until f returns false; it
// reports whether the walk ran to completion.  This is the streaming
// alternative to Range when the caller wants the first k entries: nothing
// is materialized and the walk stops the moment f says so.
func (s Snapshot[K, V, A]) ForEachCond(f func(K, V) bool) bool {
	return s.ops.ForEachCond(s.root, f)
}

// ScanFunc streams up to n entries with keys ≥ lo, in key order, to f,
// stopping early if f returns false; it returns the number visited.  The
// short ordered scan, without materializing a Range slice.
func (s Snapshot[K, V, A]) ScanFunc(lo K, n int, f func(K, V) bool) int {
	if n <= 0 {
		return 0
	}
	got := 0
	s.ops.ForEachCondFrom(s.root, lo, func(k K, v V) bool {
		got++
		if !f(k, v) {
			return false
		}
		return got < n
	})
	return got
}

// Select returns the entry of zero-based rank i.
func (s Snapshot[K, V, A]) Select(i int64) (ftree.Entry[K, V], bool) {
	return s.ops.Select(s.root, i)
}

// Rank returns the number of keys strictly below k.
func (s Snapshot[K, V, A]) Rank(k K) int64 { return s.ops.Rank(s.root, k) }

// Min returns the smallest entry.
func (s Snapshot[K, V, A]) Min() (ftree.Entry[K, V], bool) { return s.ops.Min(s.root) }

// Max returns the largest entry.
func (s Snapshot[K, V, A]) Max() (ftree.Entry[K, V], bool) { return s.ops.Max(s.root) }

// Root exposes the version root for integration with ftree set operations;
// the pointer is borrowed and must not outlive the transaction.
func (s Snapshot[K, V, A]) Root() *ftree.Node[K, V, A] { return s.root }

// Txn is the mutable handle passed to write transactions.  User code reads
// the acquired version and accumulates a path-copied replacement; the
// original is never modified.  The pointer is valid only within the
// transaction callback: the struct is pid-local and reused by the next
// transaction on the same process.
type Txn[K, V, A any] struct {
	ops   *ftree.Ops[K, V, A]
	m     *Map[K, V, A]        // for key-version noting; nil in tests that build bare Txns
	base  *ftree.Node[K, V, A] // the acquired version (borrowed)
	cur   *ftree.Node[K, V, A] // owned iff dirty
	dirty bool

	// Written-key version stripes (see keyver.go): kstripes lists the
	// stripes this transaction's commit must bracket, kvAll degrades to a
	// wholesale bracket when the key set is table-scale or unknown
	// (SetRoot), and kvOwned (HoldsStripeLocks) exempts the commit bracket
	// from the install-lock stall.  The slice's backing array is pid-local
	// and reused, so noting allocates nothing warm.
	kstripes []uint64
	kvAll    bool
	kvOwned  bool
	kvDedup  int // next kstripes length worth deduplicating at (see kvNote)
}

// HoldsStripeLocks declares that this transaction runs inside an install
// whose caller holds install locks (Map.LockStripes) covering every stripe
// the transaction writes: the commit bracket skips the install-lock stall,
// which would otherwise deadlock on the caller's own locks.  The pid-local
// Txn struct is reset between transactions, so set the flag inside the
// transaction callback on every run.
func (t *Txn[K, V, A]) HoldsStripeLocks() { t.kvOwned = true }

// apply installs a new intermediate root, collecting the previous one if
// this transaction owned it.
func (t *Txn[K, V, A]) apply(root *ftree.Node[K, V, A]) {
	if t.dirty {
		t.ops.Release(t.cur)
	}
	t.cur = root
	t.dirty = true
}

// Snapshot returns a read view of the transaction's current state,
// including its own uncommitted writes.
func (t *Txn[K, V, A]) Snapshot() Snapshot[K, V, A] {
	return Snapshot[K, V, A]{ops: t.ops, root: t.cur}
}

// Get reads through the transaction's current state.
func (t *Txn[K, V, A]) Get(k K) (V, bool) { return t.ops.Find(t.cur, k) }

// Insert adds or replaces one entry.
func (t *Txn[K, V, A]) Insert(k K, v V) {
	t.kvNote(k)
	t.apply(t.ops.Insert(t.cur, k, v))
}

// InsertWith adds one entry, combining with any existing value.
func (t *Txn[K, V, A]) InsertWith(k K, v V, comb func(old, new V) V) {
	t.kvNote(k)
	t.apply(t.ops.InsertWith(t.cur, k, v, comb))
}

// Delete removes one entry.
func (t *Txn[K, V, A]) Delete(k K) {
	t.kvNote(k)
	t.apply(t.ops.Delete(t.cur, k))
}

// InsertBatch adds a whole batch atomically using the parallel
// multi-insert; nil comb overwrites.
func (t *Txn[K, V, A]) InsertBatch(batch []ftree.Entry[K, V], comb func(old, new V) V) {
	for i := range batch {
		t.kvNote(batch[i].Key)
	}
	t.apply(t.ops.MultiInsert(t.cur, batch, comb))
}

// DeleteBatch removes a set of keys atomically.
func (t *Txn[K, V, A]) DeleteBatch(keys []K) {
	for _, k := range keys {
		t.kvNote(k)
	}
	t.apply(t.ops.MultiDelete(t.cur, keys))
}

// SetRoot replaces the transaction's state with an owned tree built by the
// caller through ftree operations (e.g. a Union); the transaction takes
// ownership of root's token.  The written key set is unknown, so on a
// key-versioned map the commit brackets the whole stripe table.
func (t *Txn[K, V, A]) SetRoot(root *ftree.Node[K, V, A]) {
	t.kvWholesale()
	t.apply(root)
}

// Update runs a write transaction on process pid (Figure 1, right),
// retrying on conflict until it commits; it returns the number of retries.
// A transaction that makes no modifications degenerates to a read.  Retries
// imply other writers committed, so the loop is lock-free.
func (m *Map[K, V, A]) Update(pid int, f func(t *Txn[K, V, A])) int {
	retries := 0
	for {
		if m.tryUpdate(pid, f, true) {
			return retries
		}
		retries++
	}
}

// UpdateUnstamped is Update without the commit stamp: the committed root is
// published but LatestStamp does not move.  It exists for cross-map atomic
// installs, where all touched maps' roots share one GSN allocated after the
// last install; the installer must publish it with BumpStamp on every
// touched map before EndInstall.
func (m *Map[K, V, A]) UpdateUnstamped(pid int, f func(t *Txn[K, V, A])) int {
	retries := 0
	for {
		if m.tryUpdate(pid, f, false) {
			return retries
		}
		retries++
	}
}

// TryUpdate runs a write transaction that aborts instead of retrying; it
// reports whether the transaction committed.
func (m *Map[K, V, A]) TryUpdate(pid int, f func(t *Txn[K, V, A])) bool {
	return m.tryUpdate(pid, f, true)
}

func (m *Map[K, V, A]) tryUpdate(pid int, f func(t *Txn[K, V, A]), stamped bool) bool {
	if m.TrackVersions {
		u := int64(m.m.Uncollected())
		for {
			cur := m.maxVersions.Load()
			if u <= cur || m.maxVersions.CompareAndSwap(cur, u) {
				break
			}
		}
	}
	root := m.m.Acquire(pid)
	po := m.pops[pid]
	// Zero pid's stamp record up front so a no-op (or aborted, or
	// unstamped) transaction never leaves a stale GSN for LastStamp.
	m.lastStamps[pid] = 0
	// The transaction struct is pid-local and reused across transactions
	// (pid exclusivity makes that safe), so a warm write allocates only
	// tree nodes — which come from pid's arena.
	tx := &m.txns[pid]
	*tx = Txn[K, V, A]{ops: po, m: m, base: root, cur: root, kstripes: tx.kstripes[:0]}
	f(tx)
	if !tx.dirty || tx.cur == root {
		// Nothing to publish.  A dirty transaction can still end at the
		// acquired root pointer (e.g. deleting an absent key); publishing
		// it would retire the current version while it stays current, so
		// treat it as a no-op too.
		if tx.dirty {
			po.Release(tx.cur)
		}
		m.collect(pid)
		return true
	}
	// Bracket the Set with the written keys' in-flight marks (keyver.go):
	// enter before the write becomes visible, exit after, with no user code
	// in between, so an optimistic validator can never observe a committed
	// root whose stripe words don't yet admit a write happened.
	m.kvEnterTxn(tx)
	ok := m.m.Set(pid, tx.cur)
	if ok && stamped {
		// Stamp after visibility: a commit's GSN is allocated only once its
		// Set is done, so observing LatestStamp() >= g proves commit g is
		// contained in any later-acquired version (see stamp.go).
		m.stamp(pid)
	}
	m.kvExitTxn(tx)
	// Response point for a successful commit: the new version is visible.
	m.collect(pid)
	if ok {
		m.commits.Add(1)
		return true
	}
	m.aborts.Add(1)
	po.Release(tx.cur) // collect the never-published version
	return false
}

// Close drains the Version Maintenance object and collects every remaining
// version, then flushes every pid arena back to the global free lists so
// no parked memory is stranded with the dead map.  All processes must have
// quiesced.  After Close, Live() on the Ops reports any leaked nodes (zero
// when the system is correct; arena- and list-parked nodes count as free).
func (m *Map[K, V, A]) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	for _, r := range m.m.Drain() {
		m.ops.Release(r)
	}
	for _, a := range m.arenas {
		a.Flush()
	}
}

package core

// This file adds per-key version words — the optimistic-concurrency
// metadata that lets a multi-key transaction validate its reads at install
// time against EVERY writer, including plain point updates that never touch
// the writer slot ("unfenced" writers).  The GSN machinery in stamp.go
// orders whole commits; the table here answers a finer question: "has ANY
// write landed on this key since I read it?"  Following the
// keep-validation-metadata-outside-the-version-lists discipline of the
// bounded-space multiversion collectors (Wei et al., PPoPP 2021), the words
// live in a fixed striped table owned by the Map, never in tree nodes: they
// retain no versions, so GC precision (Live() == 0 after Close, per-shard
// version bounds) is untouched by OCC bookkeeping.
//
// # Why a seqlock word and not a CAS-max GSN
//
// The obvious design — after a commit's Set, CAS-max the committing GSN
// into the key's word, mirroring LatestStamp — is unsound for validation:
// a writer preempted between its Set (write visible) and its version bump
// leaves an unbounded window in which a validator re-reads the stale word,
// concludes "unchanged", and commits over the invisible write.  Publishing
// the word BEFORE Set has the mirror-image hole (a reader records the
// pre-announced word, reads the old value, and validates against its own
// staleness).  A single monotone word cannot be ordered with a lock-free
// Set from one side only; the fix — the same one seqlock-style optimistic
// readers use (cf. EEMARQ's revalidation of optimistic reads) — is to
// bracket the Set: announce "writer in flight" before it and retire the
// announcement after it.  Because several lock-free writers can share a
// stripe, the in-flight mark must be a counter, not a parity bit, so each
// stripe word packs two fields:
//
//	bits 63..48  writers in flight (enter +1, exit -1)
//	bits 47..0   completed-write count (exit +1)
//
// Both transitions are single atomic Adds.  A stable read of the word
// (in-flight == 0) names an exact write-state of the stripe: reading the
// same stable word before and after a value read proves the value
// corresponds to that state, and re-reading the identical word at install
// time proves no writer even STARTED a commit on the stripe in between —
// Set is inside the bracket, so "no bracket" implies "no write".  The
// commit path gains two uncontended striped Adds and no allocation (the
// stripe list rides in the pid-local reusable Txn), which allocbench's
// 0 B/op point-update cells gate.
//
// Striping trades false aborts (two keys hashing to one stripe) for O(1)
// space; it can never produce a false commit.  The table is sized off the
// map's process configuration and the stripe hash is remixed so that
// sibling shards — whose key sets are correlated by the shard-routing
// hash — spread over the whole table.

import (
	"runtime"
	"sync/atomic"
)

const (
	// kvEnter is the in-flight field's unit (bits 63..48); the version
	// count lives below it.  48 bits of completed writes (~2.8e14) cannot
	// realistically wrap within one transaction's read-validate window,
	// and 16 bits of concurrent writers exceeds vm.MaxProcs many times
	// over.
	kvEnter = uint64(1) << 48
	// kvExit retires one in-flight mark and records one completed write:
	// -kvEnter + 1 in two's complement.
	kvExit = ^kvEnter + 2
)

// StableStripe reports whether a stripe word was read with no writer in
// flight.  Only stable words may be recorded in a read set: an unstable
// word names no definite write-state.
func StableStripe(w uint64) bool { return w < kvEnter }

// EnableKeyVersions switches on per-key version maintenance: every commit
// brackets its Set with in-flight marks on the (striped) version words of
// the keys it writes, which is what lets an optimistic multi-key
// transaction (shard.Map.UpdateAtomicKeys) validate its reads at install
// time against unfenced point writers.  hash maps a key onto the stripe
// space (it is remixed internally, so the shard-routing hash is fine);
// stripes is rounded up to a power of two, with a default sized off the
// map's process count when <= 0.  Must be called before the map is shared;
// maps that never host OCC transactions skip the call and pay one nil
// check per commit.
func (m *Map[K, V, A]) EnableKeyVersions(hash func(K) uint64, stripes int) {
	if stripes <= 0 {
		stripes = 128 * m.procs
		if stripes < 256 {
			stripes = 256
		}
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	m.kvtab = make([]atomic.Uint64, n)
	m.kvmask = uint64(n - 1)
	m.kvhash = hash
}

// KeyVersionsEnabled reports whether EnableKeyVersions was called.
func (m *Map[K, V, A]) KeyVersionsEnabled() bool { return m.kvtab != nil }

// KeyStripe returns the version-table index key k is striped to.
func (m *Map[K, V, A]) KeyStripe(k K) uint64 { return kvMix(m.kvhash(k)) & m.kvmask }

// StripeWord loads stripe i's raw version word.  Record it in a read set
// only when StableStripe(w); equality with a later load proves no writer
// started a commit on the stripe in between.
func (m *Map[K, V, A]) StripeWord(i uint64) uint64 { return m.kvtab[i].Load() }

// StableStripeWord loads stripe i's word, yielding until no writer is in
// flight on it; the wait is bounded by the bracketing commits' Set calls,
// which contain no user code.
func (m *Map[K, V, A]) StableStripeWord(i uint64) uint64 {
	for {
		if w := m.kvtab[i].Load(); StableStripe(w) {
			return w
		}
		runtime.Gosched()
	}
}

// kvNote records k's stripe in the transaction's touched list; past half
// the table the per-key list stops paying and the commit degrades to a
// wholesale bracket (kvAll).
func (t *Txn[K, V, A]) kvNote(k K) {
	m := t.m
	if m == nil || m.kvtab == nil || t.kvAll {
		return
	}
	if len(t.kstripes) >= len(m.kvtab)/2 {
		t.kvAll = true
		return
	}
	t.kstripes = append(t.kstripes, m.KeyStripe(k))
}

// kvWholesale marks the transaction as touching an unknown or table-scale
// key set (SetRoot, very large batches): the commit brackets every stripe.
func (t *Txn[K, V, A]) kvWholesale() {
	if t.m != nil && t.m.kvtab != nil {
		t.kvAll = true
	}
}

// kvEnterTxn announces the transaction's written stripes as in-flight; it
// must run before Set, and every path out of the commit must pair it with
// kvExitTxn.  Duplicate stripes in the list are harmless (the brackets
// nest).
func (m *Map[K, V, A]) kvEnterTxn(tx *Txn[K, V, A]) {
	if m.kvtab == nil {
		return
	}
	if tx.kvAll {
		for i := range m.kvtab {
			m.kvtab[i].Add(kvEnter)
		}
		return
	}
	for _, s := range tx.kstripes {
		m.kvtab[s].Add(kvEnter)
	}
}

// kvExitTxn retires the in-flight marks and counts one completed write per
// bracket.  It runs after Set whether or not the Set succeeded: a failed
// attempt's spurious version tick can only cause a false abort, never a
// false commit.
func (m *Map[K, V, A]) kvExitTxn(tx *Txn[K, V, A]) {
	if m.kvtab == nil {
		return
	}
	if tx.kvAll {
		for i := range m.kvtab {
			m.kvtab[i].Add(kvExit)
		}
		return
	}
	for _, s := range tx.kstripes {
		m.kvtab[s].Add(kvExit)
	}
}

// kvMix is SplitMix64's finalizer: it decorrelates the stripe index from
// the shard-routing hash (whose low bits are constant within one shard) so
// sibling shards use their whole tables.
func kvMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

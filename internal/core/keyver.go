package core

// This file adds per-key version words — the optimistic-concurrency
// metadata that lets a multi-key transaction validate its reads at install
// time against EVERY writer, including plain point updates that never touch
// the writer slot ("unfenced" writers).  The GSN machinery in stamp.go
// orders whole commits; the table here answers a finer question: "has ANY
// write landed on this key since I read it?"  Following the
// keep-validation-metadata-outside-the-version-lists discipline of the
// bounded-space multiversion collectors (Wei et al., PPoPP 2021), the words
// live in a fixed striped table owned by the Map, never in tree nodes: they
// retain no versions, so GC precision (Live() == 0 after Close, per-shard
// version bounds) is untouched by OCC bookkeeping.
//
// # Why a seqlock word and not a CAS-max GSN
//
// The obvious design — after a commit's Set, CAS-max the committing GSN
// into the key's word, mirroring LatestStamp — is unsound for validation:
// a writer preempted between its Set (write visible) and its version bump
// leaves an unbounded window in which a validator re-reads the stale word,
// concludes "unchanged", and commits over the invisible write.  Publishing
// the word BEFORE Set has the mirror-image hole (a reader records the
// pre-announced word, reads the old value, and validates against its own
// staleness).  A single monotone word cannot be ordered with a lock-free
// Set from one side only; the fix — the same one seqlock-style optimistic
// readers use (cf. EEMARQ's revalidation of optimistic reads) — is to
// bracket the Set: announce "writer in flight" before it and retire the
// announcement after it.  Because several lock-free writers can share a
// stripe, the in-flight mark must be a counter, not a parity bit, so each
// stripe word packs an in-flight count above a completed-write count (the
// full layout, including the install lock added below, is in the next
// section).  Both transitions are single atomic Adds.  A stable read of the word
// (in-flight == 0, not install-locked) names an exact write-state of the
// stripe: reading the same stable word before and after a value read proves
// the value corresponds to that state, and re-reading the identical word at
// install time proves no writer even STARTED a commit on the stripe in
// between — Set is inside the bracket, so "no bracket" implies "no write".
// The commit path gains two uncontended striped Adds and no allocation (the
// stripe list rides in the pid-local reusable Txn), which allocbench's
// 0 B/op point-update cells gate.
//
// # The install lock (bit 63)
//
// Validation alone cannot make a multi-key transaction's install atomic:
// between "validate passed" and "new roots published" an unfenced point
// writer could still commit on a key the transaction WRITES, and the
// install's absolute values — computed from the validated reads — would
// overwrite it: a lost update no serial order admits.  The top bit of each
// stripe word closes that window, the write-lock half of classic OCC (lock
// the write set, validate the read set, install, unlock — the Silo/BOCC
// shape):
//
//	bit  63      install lock (LockStripes / UnlockStripes)
//	bits 62..48  writers in flight (enter +1, exit -1)
//	bits 47..0   completed-write count (exit +1)
//
// An installer — which must hold the map's writer slot, so at most one
// holder per stripe table — sets the bit on its write-set stripes BEFORE
// validating and clears it after its last Set.  The lock has two effects:
// a locked stripe is never stable, so optimistic readers and validators of
// OTHER transactions treat it as moved and abort/wait rather than read a
// value the install is about to replace (this is also what forecloses
// write skew between two concurrent installers that read each other's
// write sets: lock-before-validate means at least one of them sees the
// other's lock and aborts); and an unfenced writer's commit bracket stalls
// on it — kvEnterTxn retracts its in-flight mark and waits — so no point
// write can land on the write set until the install's roots are visible,
// at which point the stalled writer's Set re-reads them (its root CAS fails
// and the transaction re-runs).  The stall is bounded: the lock window
// contains validation and the per-shard Sets, no user code.  Installer-own
// replays skip the stall via Txn.HoldsStripeLocks (stalling on your own
// lock is a deadlock, not a protocol).
//
// Striping trades false aborts (two keys hashing to one stripe) for O(1)
// space; it can never produce a false commit.  The table is sized off the
// map's process configuration and the stripe hash is remixed so that
// sibling shards — whose key sets are correlated by the shard-routing
// hash — spread over the whole table.

import (
	"runtime"
	"slices"
	"sync/atomic"
	"time"
)

const (
	// kvEnter is the in-flight field's unit (bits 62..48); the version
	// count lives below it and the install lock above.  48 bits of
	// completed writes (~2.8e14) cannot realistically wrap within one
	// transaction's read-validate window, and 15 bits of concurrent
	// writers exceeds vm.MaxProcs.
	kvEnter = uint64(1) << 48
	// kvUnenter retracts one in-flight mark without recording a write: the
	// backoff path of a writer that observed the install lock after
	// announcing itself.
	kvUnenter = ^kvEnter + 1
	// kvExit retires one in-flight mark and records one completed write:
	// -kvEnter + 1 in two's complement.
	kvExit = ^kvEnter + 2
)

// StripeLock is the install-lock bit of a stripe word: set by LockStripes
// over an installing transaction's write set, from before its read-set
// validation until after its last Set.  A locked stripe is never stable,
// and unfenced commit brackets stall on it.  Validators that themselves
// hold the lock mask this bit before comparing (their own lock is not a
// conflicting write); a foreign lock must fail validation.
const StripeLock = uint64(1) << 63

// StableStripe reports whether a stripe word was read with no writer in
// flight and no install lock held.  Only stable words may be recorded in a
// read set: an unstable word names no definite write-state.
func StableStripe(w uint64) bool { return w < kvEnter }

// Backoff is iteration i of a bounded-backoff wait: cheap yields first,
// then escalating sleeps capped at 100µs, so a loop that outlives the
// scheduler's patience (a wholesale SetRoot bracket, a mid-install lock, an
// OCC abort storm) stops burning a core without ever giving up.  Shared by
// the stripe wait loops here and the shard layer's read/retry loops.
func Backoff(i int) {
	if i < 16 {
		runtime.Gosched()
		return
	}
	d := time.Duration(i-15) * time.Microsecond
	if d > 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	time.Sleep(d)
}

// EnableKeyVersions switches on per-key version maintenance: every commit
// brackets its Set with in-flight marks on the (striped) version words of
// the keys it writes, which is what lets an optimistic multi-key
// transaction (shard.Map.UpdateAtomicKeys) validate its reads at install
// time against unfenced point writers.  hash maps a key onto the stripe
// space (it is remixed internally, so the shard-routing hash is fine);
// stripes is rounded up to a power of two, with a default sized off the
// map's process count when <= 0.  Must be called before the map is shared;
// maps that never host OCC transactions skip the call and pay one nil
// check per commit.
func (m *Map[K, V, A]) EnableKeyVersions(hash func(K) uint64, stripes int) {
	if stripes <= 0 {
		stripes = 128 * m.procs
		if stripes < 256 {
			stripes = 256
		}
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	m.kvtab = make([]atomic.Uint64, n)
	m.kvmask = uint64(n - 1)
	m.kvhash = hash
}

// KeyVersionsEnabled reports whether EnableKeyVersions was called.
func (m *Map[K, V, A]) KeyVersionsEnabled() bool { return m.kvtab != nil }

// KeyStripe returns the version-table index key k is striped to.
func (m *Map[K, V, A]) KeyStripe(k K) uint64 { return kvMix(m.kvhash(k)) & m.kvmask }

// StripeWord loads stripe i's raw version word.  Record it in a read set
// only when StableStripe(w); equality with a later load proves no writer
// started a commit on the stripe in between.
func (m *Map[K, V, A]) StripeWord(i uint64) uint64 { return m.kvtab[i].Load() }

// StableStripeWord loads stripe i's word, waiting (bounded backoff) until
// no writer is in flight and no install lock is held on it.  The wait is
// bounded by the bracketing commits' Set calls and the install-lock window,
// neither of which contains user code — but a wholesale bracket (SetRoot, a
// table-scale batch) marks every stripe for its whole commit, so a reader
// colliding with one waits for that commit's Set.
func (m *Map[K, V, A]) StableStripeWord(i uint64) uint64 {
	for n := 0; ; n++ {
		if w := m.kvtab[i].Load(); StableStripe(w) {
			return w
		}
		Backoff(n)
	}
}

// LockStripes sets the install lock on each listed stripe.  Contract: the
// caller holds this map's writer slot (slot exclusivity is what makes the
// single bit a lock — at most one fenced transaction per shard can be
// installing), locks only stripes its install will write, and pairs the
// call with UnlockStripes on every path out, including aborts.  Duplicate
// stripe indices are harmless (Or is idempotent).  While a stripe is
// locked, stable reads of it wait, validators not holding the lock fail,
// and unfenced commit brackets stall (see kvEnterTxn); the caller's own
// installs pass by declaring Txn.HoldsStripeLocks.
func (m *Map[K, V, A]) LockStripes(stripes []uint64) {
	for _, s := range stripes {
		m.kvtab[s].Or(StripeLock)
	}
}

// UnlockStripes clears the install lock on each listed stripe, releasing
// any writers stalled on it.
func (m *Map[K, V, A]) UnlockStripes(stripes []uint64) {
	for _, s := range stripes {
		m.kvtab[s].And(^StripeLock)
	}
}

// kvNote records k's stripe in the transaction's touched list; past half
// the table's worth of UNIQUE stripes the per-key list stops paying and
// the commit degrades to a wholesale bracket (kvAll).  The list is
// appended blind (duplicates are harmless to the brackets), so before
// degrading it is deduplicated in place — a transaction rewriting a few
// keys many times must not flip to bracketing the whole table and stall
// every optimistic reader on the shard.  The dedup re-arms only after the
// list doubles (kvDedup), amortizing the sort to O(log n) per note even
// when the unique count hovers at the threshold.
func (t *Txn[K, V, A]) kvNote(k K) {
	m := t.m
	if m == nil || m.kvtab == nil || t.kvAll {
		return
	}
	if limit := len(m.kvtab) / 2; len(t.kstripes) >= limit && len(t.kstripes) >= t.kvDedup {
		slices.Sort(t.kstripes)
		t.kstripes = slices.Compact(t.kstripes)
		if len(t.kstripes) >= limit {
			t.kvAll = true
			return
		}
		t.kvDedup = 2 * len(t.kstripes)
	}
	t.kstripes = append(t.kstripes, m.KeyStripe(k))
}

// kvWholesale marks the transaction as touching an unknown or table-scale
// key set (SetRoot, very large batches): the commit brackets every stripe.
func (t *Txn[K, V, A]) kvWholesale() {
	if t.m != nil && t.m.kvtab != nil {
		t.kvAll = true
	}
}

// kvEnterTxn announces the transaction's written stripes as in-flight; it
// must run before Set, and every path out of the commit must pair it with
// kvExitTxn.  Duplicate stripes in the list are harmless (the brackets
// nest).  An unfenced transaction stalls here on any install-locked stripe
// — the write-lock half of the OCC install (see the header comment) — by
// retracting its announcement and waiting for the lock to clear, so the
// lost-update window between an installer's validation and its Sets does
// not exist.  Transactions that declared HoldsStripeLocks skip the stall:
// they run inside the very install holding the locks (and fenced
// transactions can never meet a foreign lock at all — locking requires the
// writer slot they hold).
func (m *Map[K, V, A]) kvEnterTxn(tx *Txn[K, V, A]) {
	if m.kvtab == nil {
		return
	}
	if tx.kvAll {
		for i := range m.kvtab {
			m.kvEnterStripe(uint64(i), tx.kvOwned)
		}
		return
	}
	for _, s := range tx.kstripes {
		m.kvEnterStripe(s, tx.kvOwned)
	}
}

// kvEnterStripe places one in-flight mark on stripe s, stalling while the
// stripe is install-locked unless the caller owns the lock.  The
// announce-check-retract shape keeps the uncontended path a single Add plus
// one branch on its result (no extra load), and the transient spurious mark
// a racing validator might observe can only cause a false abort.
func (m *Map[K, V, A]) kvEnterStripe(s uint64, owned bool) {
	for {
		if w := m.kvtab[s].Add(kvEnter); owned || w&StripeLock == 0 {
			return
		}
		m.kvtab[s].Add(kvUnenter)
		for n := 0; m.kvtab[s].Load()&StripeLock != 0; n++ {
			Backoff(n)
		}
	}
}

// kvExitTxn retires the in-flight marks and counts one completed write per
// bracket.  It runs after Set whether or not the Set succeeded: a failed
// attempt's spurious version tick can only cause a false abort, never a
// false commit.
func (m *Map[K, V, A]) kvExitTxn(tx *Txn[K, V, A]) {
	if m.kvtab == nil {
		return
	}
	if tx.kvAll {
		for i := range m.kvtab {
			m.kvtab[i].Add(kvExit)
		}
		return
	}
	for _, s := range tx.kstripes {
		m.kvtab[s].Add(kvExit)
	}
}

// kvMix is SplitMix64's finalizer: it decorrelates the stripe index from
// the shard-routing hash (whose low bits are constant within one shard) so
// sibling shards use their whole tables.
func kvMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

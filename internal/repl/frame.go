// Package repl is log-shipping replication: a leader-side Shipper that
// lifts durable records out of the WAL with a wal.Tailer and streams
// them to a follower, and a follower-side Follower that replays the
// stream through the map's GSN-ordered apply path.
//
// The stream rides a netproto connection: the follower sends a normal
// RESP command (REPL <afterGSN> <floor>) and, after the +OK, the
// connection stops speaking RESP and carries raw binary frames forever —
// records can exceed netproto's MaxBulk, so they do not travel as bulk
// strings.  A frame is
//
//	u8 tag | u32 little-endian body length | body
//
// with four tags:
//
//	'S'  u64 cut — a snapshot bootstrap begins (the follower's resume
//	     position was not retained); the follower resets its snapshot
//	     accumulator
//	'c'  one chunk of the snapshot payload
//	'E'  u32 CRC-32C of the whole payload — the follower verifies and
//	     applies the snapshot, floors its GSN at cut, and resets its
//	     stream position
//	'R'  u64 GSN | u32 CRC-32C of the record payload | payload — one
//	     redo record in leader log-append order
//
// Why shipping raw log bytes is sound: records carry absolute
// post-images and replay is idempotent, so the follower applies each 'R'
// frame as one atomic local transaction and equal states converge even
// across reconnects and re-bootstraps.  The follower skips records with
// GSN <= its floor (the newest snapshot cut it has applied) — that is
// what makes checkpoint retirement on the leader safe mid-stream.
package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame tags.
const (
	TagSnapBegin = 'S'
	TagSnapChunk = 'c'
	TagSnapEnd   = 'E'
	TagRecord    = 'R'
)

// maxFrameBody bounds one frame body; matches the WAL's record bound
// plus the record frame header.
const maxFrameBody = (1 << 30) + 16

// snapChunkBytes is the shipper's snapshot chunk size.
const snapChunkBytes = 256 << 10

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteFrame writes one frame.  The caller flushes.
func WriteFrame(w *bufio.Writer, tag byte, body []byte) error {
	var hdr [5]byte
	hdr[0] = tag
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// WriteRecordFrame writes one 'R' frame for a record.
func WriteRecordFrame(w *bufio.Writer, gsn uint64, payload []byte) error {
	var hdr [5 + 12]byte
	hdr[0] = TagRecord
	binary.LittleEndian.PutUint32(hdr[1:], uint32(12+len(payload)))
	binary.LittleEndian.PutUint64(hdr[5:], gsn)
	binary.LittleEndian.PutUint32(hdr[13:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, reusing buf for the body when it fits.
func ReadFrame(r *bufio.Reader, buf []byte) (tag byte, body []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrameBody {
		return 0, nil, fmt.Errorf("repl: frame body of %d bytes exceeds limit", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	body = buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return hdr[0], body, nil
}

// DecodeRecord splits an 'R' frame body and verifies its CRC.
func DecodeRecord(body []byte) (gsn uint64, payload []byte, err error) {
	if len(body) < 12 {
		return 0, nil, fmt.Errorf("repl: record frame of %d bytes is too short", len(body))
	}
	gsn = binary.LittleEndian.Uint64(body)
	crc := binary.LittleEndian.Uint32(body[8:])
	payload = body[12:]
	if crc32.Checksum(payload, crcTable) != crc {
		return 0, nil, fmt.Errorf("repl: record gsn=%d failed CRC", gsn)
	}
	return gsn, payload, nil
}

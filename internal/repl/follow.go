package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mvgc/internal/netproto"
	"mvgc/internal/wal"
)

// Applier is the follower-side apply surface — what shard.Map (and so
// mvgc.DB) provides for replication.
type Applier interface {
	// ReplayRecord applies one shipped record as an atomic transaction
	// and floors the stamp source at its GSN.
	ReplayRecord(gsn uint64, payload []byte) error
	// ApplyReplSnapshot replaces the contents with a shipped checkpoint
	// snapshot and floors the stamp source at its cut.
	ApplyReplSnapshot(cut uint64, payload []byte) error
	// SyncWAL forces the local log durable; called before the stream
	// position is persisted.
	SyncWAL() error
}

// Config configures a Follower.
type Config struct {
	// Addr is the leader's netproto address.
	Addr string
	// DB applies the stream.
	DB Applier
	// Dir is where the stream position file (repl.pos) lives — normally
	// the follower's own WAL directory, so position and log share fate.
	Dir string
	// FS accesses Dir (nil = the real filesystem).
	FS wal.FS
	// RetryInterval paces reconnection attempts (default 500ms).
	RetryInterval time.Duration
	// SyncEvery persists the stream position after this many applied
	// records (default 256).  The position is only persisted after the
	// local log syncs, so it never claims records a follower crash could
	// lose.
	SyncEvery int
	// Logf, when non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// Follower maintains a replication connection to the leader: it
// handshakes with its persisted position, applies the frame stream, and
// reconnects (or re-bootstraps) until Stop.
type Follower struct {
	cfg   Config
	pos   atomic.Uint64 // GSN of the last stream frame processed
	floor atomic.Uint64 // newest snapshot cut applied

	mu   sync.Mutex
	conn net.Conn // live connection, for Stop to abort
	stop chan struct{}
	done chan struct{}
}

// Start loads the persisted position and begins following.  The returned
// Follower runs until Stop.
func Start(cfg Config) (*Follower, error) {
	if cfg.DB == nil || cfg.Addr == "" || cfg.Dir == "" {
		return nil, errors.New("repl: follower requires Addr, DB and Dir")
	}
	if cfg.FS == nil {
		cfg.FS = wal.OsFS{}
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 500 * time.Millisecond
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 256
	}
	f := &Follower{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	pos, floor, err := loadPos(cfg.FS, cfg.Dir)
	if err != nil {
		return nil, err
	}
	f.pos.Store(pos)
	f.floor.Store(floor)
	go f.run()
	return f, nil
}

// Pos reports the stream position: the GSN of the last frame processed
// and the newest snapshot cut applied.
func (f *Follower) Pos() (pos, floor uint64) { return f.pos.Load(), f.floor.Load() }

// Stop severs the connection, stops reconnecting, and persists the
// final position (after a local log sync).  Idempotent.
func (f *Follower) Stop() {
	f.mu.Lock()
	select {
	case <-f.stop:
		f.mu.Unlock()
		<-f.done
		return
	default:
	}
	close(f.stop)
	if f.conn != nil {
		f.conn.Close() //nolint:errcheck
	}
	f.mu.Unlock()
	<-f.done
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

func (f *Follower) run() {
	defer close(f.done)
	defer func() {
		// Best-effort final save; the position is a watermark, so losing
		// it only costs idempotent re-replay.
		if err := f.save(); err != nil {
			f.logf("repl: final position save: %v", err)
		}
	}()
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		if err := f.follow(); err != nil {
			select {
			case <-f.stop:
				return
			default:
			}
			f.logf("repl: stream from %s broke: %v (retrying)", f.cfg.Addr, err)
		}
		select {
		case <-f.stop:
			return
		case <-time.After(f.cfg.RetryInterval):
		}
	}
}

// save syncs the local log and persists the stream position.
func (f *Follower) save() error {
	if err := f.cfg.DB.SyncWAL(); err != nil {
		return err
	}
	return savePos(f.cfg.FS, f.cfg.Dir, f.pos.Load(), f.floor.Load())
}

// follow runs one connection: handshake, then the frame loop.
func (f *Follower) follow() error {
	nc, err := net.Dial("tcp", f.cfg.Addr)
	if err != nil {
		return err
	}
	f.mu.Lock()
	select {
	case <-f.stop:
		f.mu.Unlock()
		nc.Close() //nolint:errcheck
		return errors.New("repl: follower stopped")
	default:
	}
	f.conn = nc
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		nc.Close() //nolint:errcheck
	}()

	br := bufio.NewReaderSize(nc, 256<<10)
	w := netproto.NewWriter(nc)
	w.BeginCommand(3)
	w.ArgString(netproto.CmdRepl)
	w.ArgString(strconv.FormatUint(f.pos.Load(), 10))
	w.ArgString(strconv.FormatUint(f.floor.Load(), 10))
	if err := w.Flush(); err != nil {
		return err
	}
	status, err := br.ReadString('\n')
	if err != nil {
		return err
	}
	if len(status) < 1 || status[0] != '+' {
		return fmt.Errorf("repl: leader refused stream: %s", strings.TrimSpace(status))
	}
	f.logf("repl: streaming from %s at pos=%d floor=%d", f.cfg.Addr, f.pos.Load(), f.floor.Load())
	return f.frameLoop(br)
}

// frameLoop applies the stream until the connection breaks.
func (f *Follower) frameLoop(br *bufio.Reader) error {
	var (
		buf      []byte // frame read buffer, reused
		snap     []byte // accumulating snapshot payload
		snapCut  uint64
		inSnap   bool
		unsynced int // records applied since the last position save
	)
	for {
		tag, body, err := ReadFrame(br, buf)
		if err != nil {
			return err
		}
		buf = body[:0]
		switch tag {
		case TagSnapBegin:
			if len(body) != 8 {
				return fmt.Errorf("repl: snapshot-begin frame of %d bytes", len(body))
			}
			snapCut = binary.LittleEndian.Uint64(body)
			snap, inSnap = snap[:0], true
		case TagSnapChunk:
			if !inSnap {
				return errors.New("repl: snapshot chunk outside a snapshot")
			}
			snap = append(snap, body...)
			// The chunk data was copied out; body (== buf) is free again.
		case TagSnapEnd:
			if !inSnap || len(body) != 4 {
				return errors.New("repl: stray or malformed snapshot-end frame")
			}
			if crc32.Checksum(snap, crcTable) != binary.LittleEndian.Uint32(body) {
				return errors.New("repl: snapshot failed CRC")
			}
			if err := f.cfg.DB.ApplyReplSnapshot(snapCut, snap); err != nil {
				return err
			}
			f.floor.Store(snapCut)
			f.pos.Store(0) // the stream restarts at the earliest retained byte
			inSnap, snap = false, nil
			if err := f.save(); err != nil {
				return err
			}
			unsynced = 0
			f.logf("repl: bootstrapped from snapshot cut=%d", snapCut)
		case TagRecord:
			gsn, payload, err := DecodeRecord(body)
			if err != nil {
				return err
			}
			// Records at or below the floor are already covered by the
			// applied snapshot (retained segments can straddle the cut);
			// applying them would resurrect stale post-images.
			if gsn > f.floor.Load() {
				if err := f.cfg.DB.ReplayRecord(gsn, payload); err != nil {
					return err
				}
			}
			f.pos.Store(gsn)
			if unsynced++; unsynced >= f.cfg.SyncEvery {
				if err := f.save(); err != nil {
					return err
				}
				unsynced = 0
			}
		default:
			return fmt.Errorf("repl: unknown frame tag %q", tag)
		}
	}
}

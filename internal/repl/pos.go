package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"mvgc/internal/wal"
)

// The stream position file lives next to the follower's WAL segments.
// It records the GSN of the last stream frame the follower processed
// (applied or floor-skipped) and the newest snapshot cut applied, and is
// only ever written AFTER the local log synced — so it never claims a
// record a follower crash could lose.  It may lag (the stream re-replays
// idempotently) and it may legitimately move backwards (a re-bootstrap
// resets pos to 0 with a higher floor).
//
// Format: 8-byte magic, u64 pos, u64 floor, u32 CRC-32C over pos+floor.
// Written via temp file + rename + directory sync, so it is either the
// old or the new position after any crash.  wal.Open ignores the file
// (it matches no segment or snapshot pattern).
const (
	posMagic   = "MVRPOS01"
	posName    = "repl.pos"
	posTmpName = "repl.pos.tmp"
)

// loadPos reads the persisted position; a missing or invalid file is a
// fresh start (0, 0) — the stream handshake then bootstraps as needed.
func loadPos(fs wal.FS, dir string) (pos, floor uint64, err error) {
	f, err := fs.Open(filepath.Join(dir, posName))
	if err != nil {
		return 0, 0, nil // missing: fresh follower
	}
	data, err := io.ReadAll(f)
	f.Close() //nolint:errcheck // read-only handle
	if err != nil {
		return 0, 0, fmt.Errorf("repl: read %s: %w", posName, err)
	}
	if len(data) != len(posMagic)+8+8+4 || string(data[:len(posMagic)]) != posMagic {
		return 0, 0, nil // torn write that lost the rename race: fresh start
	}
	body := data[len(posMagic) : len(data)-4]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return 0, 0, nil
	}
	return binary.LittleEndian.Uint64(body), binary.LittleEndian.Uint64(body[8:]), nil
}

// savePos atomically persists the position.
func savePos(fs wal.FS, dir string, pos, floor uint64) error {
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	buf := make([]byte, 0, len(posMagic)+8+8+4)
	buf = append(buf, posMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, pos)
	buf = binary.LittleEndian.AppendUint64(buf, floor)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[len(posMagic):], crcTable))
	tmp := filepath.Join(dir, posTmpName)
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, posName)); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"sync"

	"mvgc/internal/wal"
)

// Shipper streams a log's durable records to one follower connection.
// It is created by the server when a REPL command arrives, after the
// +OK reply has been flushed and the connection's RESP machinery has
// been torn down; Run then owns the connection until it fails or Abort
// is called.
type Shipper struct {
	log *wal.Log
	nc  net.Conn
	bw  *bufio.Writer

	mu     sync.Mutex
	tailer *wal.Tailer
	closed bool
}

// NewShipper wraps a raw connection for shipping from log.
func NewShipper(log *wal.Log, nc net.Conn) *Shipper {
	return &Shipper{log: log, nc: nc, bw: bufio.NewWriterSize(nc, 64<<10)}
}

// Abort tears the shipper down from another goroutine: the connection
// closes (failing any in-flight write) and a Next blocked waiting for
// records wakes and returns.
func (s *Shipper) Abort() {
	s.mu.Lock()
	s.closed = true
	t := s.tailer
	s.mu.Unlock()
	s.nc.Close() //nolint:errcheck // already failing
	if t != nil {
		t.Close() //nolint:errcheck
	}
}

// setTailer registers the live tailer so Abort can wake it; it reports
// false (closing the tailer) when the shipper was already aborted.
func (s *Shipper) setTailer(t *wal.Tailer) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		t.Close() //nolint:errcheck
		return false
	}
	s.tailer = t
	return true
}

// Run ships records starting after the follower's resume position until
// the connection fails, the log closes, or Abort is called.  A position
// that is no longer retained (ErrTailTruncated, initially or mid-stream
// when a checkpoint retires records the follower still needs) falls back
// to a snapshot bootstrap: the latest checkpoint streams as S/c/E
// frames, then tailing resumes from the earliest retained byte.
func (s *Shipper) Run(afterGSN, floor uint64) error {
	t, err := s.log.Tail(afterGSN, floor)
	for {
		if errors.Is(err, wal.ErrTailTruncated) {
			t, err = s.bootstrap()
		}
		if err != nil {
			return err
		}
		if !s.setTailer(t) {
			return errors.New("repl: shipper aborted")
		}
		err = s.stream(t)
		if !errors.Is(err, wal.ErrTailTruncated) {
			t.Close() //nolint:errcheck
			return err
		}
		t.Close() //nolint:errcheck
	}
}

// bootstrap sends the latest checkpoint as S/c/E frames and returns a
// tailer positioned at the earliest retained byte.  It loops if a
// concurrent checkpoint supersedes the snapshot mid-handoff.
func (s *Shipper) bootstrap() (*wal.Tailer, error) {
	for {
		cut, payload, ok, err := s.log.LatestSnapshot()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, errors.New("repl: follower position not retained and no snapshot exists")
		}
		// Acquire the tailer BEFORE shipping the snapshot: TailSnapshot
		// validates cut against the newest checkpoint, so the follower
		// never applies a snapshot we then cannot tail from.
		t, err := s.log.TailSnapshot(cut)
		if errors.Is(err, wal.ErrTailTruncated) {
			continue // a newer checkpoint raced; re-fetch
		}
		if err != nil {
			return nil, err
		}
		if err := s.sendSnapshot(cut, payload); err != nil {
			t.Close() //nolint:errcheck
			return nil, err
		}
		return t, nil
	}
}

func (s *Shipper) sendSnapshot(cut uint64, payload []byte) error {
	var cutBuf [8]byte
	binary.LittleEndian.PutUint64(cutBuf[:], cut)
	if err := WriteFrame(s.bw, TagSnapBegin, cutBuf[:]); err != nil {
		return err
	}
	for off := 0; off < len(payload); off += snapChunkBytes {
		end := min(off+snapChunkBytes, len(payload))
		if err := WriteFrame(s.bw, TagSnapChunk, payload[off:end]); err != nil {
			return err
		}
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(payload, crcTable))
	if err := WriteFrame(s.bw, TagSnapEnd, crcBuf[:]); err != nil {
		return err
	}
	return s.bw.Flush()
}

// stream pumps records from the tailer to the wire.  It drains without
// blocking first and only flushes the wire buffer when the tailer has
// nothing ready — so a busy leader batches frames into large writes and
// an idle one delivers promptly.
func (s *Shipper) stream(t *wal.Tailer) error {
	for {
		recs, err := t.Next(false)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			if err := s.bw.Flush(); err != nil {
				return err
			}
			recs, err = t.Next(true)
			if err != nil {
				return err
			}
		}
		for _, r := range recs {
			if err := WriteRecordFrame(s.bw, r.GSN, r.Payload); err != nil {
				return err
			}
		}
	}
}

package invindex

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestAddAndQuery(t *testing.T) {
	ix, err := New(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix.AddDocument(Doc{ID: 1, Terms: []TermWeight{{10, 5}, {20, 7}}})
	ix.AddDocument(Doc{ID: 2, Terms: []TermWeight{{10, 3}, {30, 1}}})
	ix.AddDocument(Doc{ID: 3, Terms: []TermWeight{{10, 9}, {20, 2}}})

	if n := ix.PostingLen(10); n != 3 {
		t.Fatalf("posting(10) length = %d", n)
	}
	res := ix.AndQuery(10, 20, 10)
	if len(res) != 2 {
		t.Fatalf("and-query returned %d docs, want 2", len(res))
	}
	// doc1: 5+7=12, doc3: 9+2=11 → doc1 first.
	if res[0].Doc != 1 || res[0].Score != 12 || res[1].Doc != 3 || res[1].Score != 11 {
		t.Fatalf("results = %+v", res)
	}
	if res := ix.AndQuery(10, 999, 10); res != nil {
		t.Fatalf("query with absent term returned %v", res)
	}
	ix.Close()
	if o, i := ix.LiveNodes(); o != 0 || i != 0 {
		t.Fatalf("leak: outer %d inner %d", o, i)
	}
}

func TestAtomicDocumentIngestion(t *testing.T) {
	// A document's terms must appear all-or-nothing: while the writer
	// ingests documents with a fixed pair of terms, no snapshot may see one
	// term's posting for a doc without the other's.
	ix, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	const docs = 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for d := uint64(0); d < docs; d++ {
			ix.AddDocument(Doc{ID: d, Terms: []TermWeight{{1, 1}, {2, 1}}})
		}
		close(stop)
	}()
	for p := 1; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n1 := ix.PostingLen(1)
				n2 := ix.PostingLen(2)
				// Both postings grow together; a later read can only see
				// more, and within one snapshot they'd be equal.  Across
				// two reads n2 may exceed n1 but never lag behind the n1
				// read before it.
				if n2 < n1 {
					t.Errorf("torn document: posting(1)=%d then posting(2)=%d", n1, n2)
					return
				}
			}
		}()
	}
	wg.Wait()
	ix.Close()
	if o, i := ix.LiveNodes(); o != 0 || i != 0 {
		t.Fatalf("leak: outer %d inner %d", o, i)
	}
}

func TestRemoveDocument(t *testing.T) {
	ix, err := New(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := Doc{ID: 5, Terms: []TermWeight{{10, 1}, {20, 2}}}
	ix.AddDocument(d)
	ix.AddDocument(Doc{ID: 6, Terms: []TermWeight{{10, 3}}})
	ix.RemoveDocument(d)
	if n := ix.PostingLen(10); n != 1 {
		t.Fatalf("posting(10) = %d after removal, want 1", n)
	}
	if n := ix.Terms(); n != 1 {
		t.Fatalf("vocabulary = %d after removal, want 1 (term 20 dropped)", n)
	}
	ix.Close()
	if o, i := ix.LiveNodes(); o != 0 || i != 0 {
		t.Fatalf("leak: outer %d inner %d", o, i)
	}
}

func TestTopKAgainstBruteForce(t *testing.T) {
	ix, err := New(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	type dw struct {
		d uint64
		w int64
	}
	var all []dw
	var p *Posting
	for i := 0; i < 500; i++ {
		d, w := uint64(i), rng.Int63n(100000)
		all = append(all, dw{d, w})
		np := ix.inner.Insert(p, d, w)
		ix.inner.Release(p)
		p = np
	}
	sort.Slice(all, func(i, j int) bool { return all[i].w > all[j].w })
	for _, k := range []int{1, 10, 100, 500, 1000} {
		got := TopK(p, k)
		want := k
		if want > len(all) {
			want = len(all)
		}
		if len(got) != want {
			t.Fatalf("TopK(%d) returned %d", k, len(got))
		}
		for i, s := range got {
			if s.Score != all[i].w {
				t.Fatalf("TopK(%d)[%d] score %d, want %d", k, i, s.Score, all[i].w)
			}
		}
	}
	if TopK(nil, 5) != nil {
		t.Fatal("TopK(nil) must be empty")
	}
	if TopK(p, 0) != nil {
		t.Fatal("TopK(_, 0) must be empty")
	}
	ix.inner.Release(p)
	ix.Close()
}

func TestCorpusGeneration(t *testing.T) {
	c := NewCorpus(CorpusConfig{Vocab: 1000, MeanDocLen: 32, Seed: 1})
	seen := map[uint64]int{}
	for i := 0; i < 200; i++ {
		d := c.Next()
		if d.ID != uint64(i) {
			t.Fatalf("doc id %d, want %d", d.ID, i)
		}
		if len(d.Terms) < 16 || len(d.Terms) > 48 {
			t.Fatalf("doc length %d outside [16,48]", len(d.Terms))
		}
		dup := map[uint64]bool{}
		for _, tw := range d.Terms {
			if dup[tw.Term] {
				t.Fatal("duplicate term within document")
			}
			dup[tw.Term] = true
			if tw.Weight <= 0 {
				t.Fatal("non-positive weight")
			}
			seen[tw.Term]++
		}
	}
	// Zipf skew: the hottest term should appear in a large share of docs.
	hot := 0
	for _, c := range seen {
		if c > hot {
			hot = c
		}
	}
	if hot < 50 {
		t.Fatalf("hottest term appears only %d times; corpus not skewed", hot)
	}
	ht := c.HotTerms(5)
	if len(ht) != 5 {
		t.Fatal("HotTerms length")
	}
}

// TestConcurrentQueriesDuringIngestion is a miniature of Table 3's dynamic
// setting: queries and batched updates run simultaneously, all pid-free.
func TestConcurrentQueriesDuringIngestion(t *testing.T) {
	const procs = 4
	ix, err := New(procs, 64)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCorpus(CorpusConfig{Vocab: 500, MeanDocLen: 24, Seed: 2})
	hot := c.HotTerms(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for batch := 0; batch < 30; batch++ {
			docs := make([]Doc, 10)
			for i := range docs {
				docs[i] = c.Next()
			}
			ix.AddDocuments(docs)
		}
		close(stop)
	}()
	for p := 1; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				t1 := hot[rng.Intn(len(hot))]
				t2 := hot[rng.Intn(len(hot))]
				res := ix.AndQuery(t1, t2, 10)
				for i := 1; i < len(res); i++ {
					if res[i].Score > res[i-1].Score {
						t.Errorf("results not ranked: %v", res)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	ix.Close()
	if o, i := ix.LiveNodes(); o != 0 || i != 0 {
		t.Fatalf("leak: outer %d inner %d", o, i)
	}
}

func TestOrQuery(t *testing.T) {
	ix, err := New(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix.AddDocument(Doc{ID: 1, Terms: []TermWeight{{10, 5}}})
	ix.AddDocument(Doc{ID: 2, Terms: []TermWeight{{20, 7}}})
	ix.AddDocument(Doc{ID: 3, Terms: []TermWeight{{10, 2}, {20, 2}}})
	res := ix.OrQuery(10, 20, 10)
	if len(res) != 3 {
		t.Fatalf("or-query returned %d docs, want 3", len(res))
	}
	// doc2: 7, doc1: 5, doc3: 4.
	if res[0].Doc != 2 || res[1].Doc != 1 || res[2].Doc != 3 || res[2].Score != 4 {
		t.Fatalf("results = %+v", res)
	}
	// One side absent degrades to the other posting.
	if res := ix.OrQuery(10, 999, 10); len(res) != 2 {
		t.Fatalf("or with absent term = %+v", res)
	}
	if res := ix.OrQuery(998, 999, 10); res != nil {
		t.Fatalf("or with both absent = %+v", res)
	}
	ix.Close()
	if o, i := ix.LiveNodes(); o != 0 || i != 0 {
		t.Fatalf("leak: outer %d inner %d", o, i)
	}
}

func TestAndQueryN(t *testing.T) {
	ix, err := New(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix.AddDocument(Doc{ID: 1, Terms: []TermWeight{{1, 1}, {2, 1}, {3, 1}}})
	ix.AddDocument(Doc{ID: 2, Terms: []TermWeight{{1, 9}, {2, 9}}})
	ix.AddDocument(Doc{ID: 3, Terms: []TermWeight{{1, 4}, {2, 4}, {3, 4}}})
	res := ix.AndQueryN([]uint64{1, 2, 3}, 10)
	if len(res) != 2 {
		t.Fatalf("3-term and returned %d docs, want 2", len(res))
	}
	if res[0].Doc != 3 || res[0].Score != 12 || res[1].Doc != 1 || res[1].Score != 3 {
		t.Fatalf("results = %+v", res)
	}
	// Consistency with the 2-term query.
	a2 := ix.AndQuery(1, 2, 10)
	n2 := ix.AndQueryN([]uint64{1, 2}, 10)
	if len(a2) != len(n2) {
		t.Fatalf("AndQuery and AndQueryN disagree: %v vs %v", a2, n2)
	}
	for i := range a2 {
		if a2[i] != n2[i] {
			t.Fatalf("AndQuery and AndQueryN disagree at %d: %v vs %v", i, a2[i], n2[i])
		}
	}
	if res := ix.AndQueryN(nil, 10); res != nil {
		t.Fatal("empty term list must return nothing")
	}
	if res := ix.AndQueryN([]uint64{1, 99}, 10); res != nil {
		t.Fatal("absent term must empty the intersection")
	}
	ix.Close()
	if o, i := ix.LiveNodes(); o != 0 || i != 0 {
		t.Fatalf("leak: outer %d inner %d", o, i)
	}
}

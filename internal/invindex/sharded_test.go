package invindex

import (
	"math/rand"
	"sync"
	"testing"
)

// queryable is the surface Index and ShardedIndex share; the equivalence
// tests below run both against the same corpus.
type queryable interface {
	AddDocuments(docs []Doc)
	AndQuery(term1, term2 uint64, k int) []ScoredDoc
	AndQueryN(terms []uint64, k int) []ScoredDoc
	OrQuery(term1, term2 uint64, k int) []ScoredDoc
	PostingLen(term uint64) int64
	Terms() int64
	Close()
}

var (
	_ queryable = (*Index)(nil)
	_ queryable = (*ShardedIndex)(nil)
)

func TestShardedAddAndQuery(t *testing.T) {
	ix, err := NewSharded(4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix.AddDocument(Doc{ID: 1, Terms: []TermWeight{{10, 5}, {20, 7}}})
	ix.AddDocument(Doc{ID: 2, Terms: []TermWeight{{10, 3}, {30, 1}}})
	ix.AddDocument(Doc{ID: 3, Terms: []TermWeight{{10, 9}, {20, 2}}})

	if n := ix.PostingLen(10); n != 3 {
		t.Fatalf("posting(10) length = %d", n)
	}
	if n := ix.Terms(); n != 3 {
		t.Fatalf("vocabulary = %d, want 3", n)
	}
	res := ix.AndQuery(10, 20, 10)
	if len(res) != 2 || res[0].Doc != 1 || res[0].Score != 12 || res[1].Doc != 3 || res[1].Score != 11 {
		t.Fatalf("results = %+v", res)
	}
	if res := ix.AndQuery(10, 999, 10); res != nil {
		t.Fatalf("query with absent term returned %v", res)
	}
	ix.Close()
	if o, i := ix.LiveNodes(); o != 0 || i != 0 {
		t.Fatalf("leak: outer %d inner %d", o, i)
	}
}

// TestShardedMatchesUnsharded ingests the same corpus into the unsharded
// and the sharded index and checks that every query form agrees at
// quiescence, for shard counts around and above the vocabulary spread.
func TestShardedMatchesUnsharded(t *testing.T) {
	c := NewCorpus(CorpusConfig{Vocab: 300, MeanDocLen: 24, Seed: 11})
	var docs []Doc
	for i := 0; i < 200; i++ {
		docs = append(docs, c.Next())
	}
	hot := c.HotTerms(12)

	ref, err := New(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref.AddDocuments(docs)
	for _, shards := range []int{1, 3, 8} {
		ix, err := NewSharded(shards, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		ix.AddDocuments(docs)
		if got, want := ix.Terms(), ref.Terms(); got != want {
			t.Fatalf("S=%d: Terms = %d, want %d", shards, got, want)
		}
		rng := rand.New(rand.NewSource(int64(shards)))
		for q := 0; q < 50; q++ {
			t1 := hot[rng.Intn(len(hot))]
			t2 := hot[rng.Intn(len(hot))]
			if got, want := ix.PostingLen(t1), ref.PostingLen(t1); got != want {
				t.Fatalf("S=%d: PostingLen(%d) = %d, want %d", shards, t1, got, want)
			}
			check := func(form string, got, want []ScoredDoc) {
				if len(got) != len(want) {
					t.Fatalf("S=%d: %s(%d,%d) = %v, want %v", shards, form, t1, t2, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("S=%d: %s(%d,%d)[%d] = %v, want %v", shards, form, t1, t2, i, got[i], want[i])
					}
				}
			}
			check("AndQuery", ix.AndQuery(t1, t2, 10), ref.AndQuery(t1, t2, 10))
			check("OrQuery", ix.OrQuery(t1, t2, 5), ref.OrQuery(t1, t2, 5))
			t3 := hot[rng.Intn(len(hot))]
			check("AndQueryN", ix.AndQueryN([]uint64{t1, t2, t3}, 10), ref.AndQueryN([]uint64{t1, t2, t3}, 10))
		}
		ix.Close()
		if o, i := ix.LiveNodes(); o != 0 || i != 0 {
			t.Fatalf("S=%d leak: outer %d inner %d", shards, o, i)
		}
	}

	// Same corpus ingested document by document — the per-document atomic
	// cross-shard install path — must agree with the batch path too.
	perDoc, err := NewSharded(3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		perDoc.AddDocument(d)
	}
	if got, want := perDoc.Terms(), ref.Terms(); got != want {
		t.Fatalf("per-doc ingest: Terms = %d, want %d", got, want)
	}
	for q := 0; q < 20; q++ {
		t1, t2 := hot[q%len(hot)], hot[(q*5+1)%len(hot)]
		got, want := perDoc.AndQuery(t1, t2, 10), ref.AndQuery(t1, t2, 10)
		if len(got) != len(want) {
			t.Fatalf("per-doc ingest: AndQuery(%d,%d) = %v, want %v", t1, t2, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("per-doc ingest: AndQuery(%d,%d)[%d] = %v, want %v", t1, t2, i, got[i], want[i])
			}
		}
	}
	perDoc.Close()
	if o, i := perDoc.LiveNodes(); o != 0 || i != 0 {
		t.Fatalf("per-doc leak: outer %d inner %d", o, i)
	}
	ref.Close()
	if o, i := ref.LiveNodes(); o != 0 || i != 0 {
		t.Fatalf("ref leak: outer %d inner %d", o, i)
	}
}

// TestShardedConcurrent races parallel ingestion against queries on every
// shard and checks ranking invariants plus precise per-shard collection.
func TestShardedConcurrent(t *testing.T) {
	ix, err := NewSharded(3, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCorpus(CorpusConfig{Vocab: 400, MeanDocLen: 24, Seed: 5})
	hot := c.HotTerms(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var mu sync.Mutex // Corpus is single-threaded; two writers share it
	wg.Add(2)
	for w := 0; w < 2; w++ {
		go func() {
			defer wg.Done()
			for batch := 0; batch < 15; batch++ {
				mu.Lock()
				docs := make([]Doc, 10)
				for i := range docs {
					docs[i] = c.Next()
				}
				mu.Unlock()
				ix.AddDocuments(docs)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(stop)
	}()
	var qwg sync.WaitGroup
	for p := 0; p < 3; p++ {
		qwg.Add(1)
		go func(p int) {
			defer qwg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				t1 := hot[rng.Intn(len(hot))]
				t2 := hot[rng.Intn(len(hot))]
				res := ix.AndQuery(t1, t2, 10)
				for i := 1; i < len(res); i++ {
					if res[i].Score > res[i-1].Score {
						t.Errorf("results not ranked: %v", res)
						return
					}
				}
			}
		}(p)
	}
	qwg.Wait()
	ix.Close()
	if o, i := ix.LiveNodes(); o != 0 || i != 0 {
		t.Fatalf("leak: outer %d inner %d", o, i)
	}
}

// TestShardedDocumentAtomicity races per-document ingestion (and removal)
// of documents whose two terms live on different shards against cross-shard
// OrQuerys.  Every document carries both terms with weight 1, so any score
// other than 2 means a query observed the document under one term and not
// the other — exactly the torn state the global-stamp install protocol and
// the stable-pin read protocol exist to prevent.
func TestShardedDocumentAtomicity(t *testing.T) {
	ix, err := NewSharded(4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Find two terms on different shards.
	tA := uint64(1)
	tB := tA + 1
	for ix.shardFor(tB) == ix.shardFor(tA) {
		tB++
	}
	const docs = 300
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for d := uint64(1); d <= docs; d++ {
			doc := Doc{ID: d, Terms: []TermWeight{{tA, 1}, {tB, 1}}}
			ix.AddDocument(doc)
			if d%3 == 0 {
				ix.RemoveDocument(doc)
			}
		}
	}()
	var qwg sync.WaitGroup
	for p := 0; p < 2; p++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sd := range ix.OrQuery(tA, tB, docs+1) {
					if sd.Score != 2 {
						t.Errorf("torn document %d: score %d, want 2", sd.Doc, sd.Score)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	qwg.Wait()
	ix.Close()
	if o, i := ix.LiveNodes(); o != 0 || i != 0 {
		t.Fatalf("leak: outer %d inner %d", o, i)
	}
}

func TestShardedRemoveDocument(t *testing.T) {
	ix, err := NewSharded(4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := Doc{ID: 5, Terms: []TermWeight{{10, 1}, {20, 2}, {30, 3}}}
	ix.AddDocument(d)
	ix.AddDocument(Doc{ID: 6, Terms: []TermWeight{{10, 3}}})
	ix.RemoveDocument(d)
	if n := ix.PostingLen(10); n != 1 {
		t.Fatalf("posting(10) = %d after removal, want 1", n)
	}
	if n := ix.Terms(); n != 1 {
		t.Fatalf("vocabulary = %d after removal, want 1", n)
	}
	ix.Close()
	if o, i := ix.LiveNodes(); o != 0 || i != 0 {
		t.Fatalf("leak: outer %d inner %d", o, i)
	}
}

func TestNewShardedRejectsBadShards(t *testing.T) {
	if _, err := NewSharded(0, 1, 0); err == nil {
		t.Fatal("NewSharded(0, ...) must error")
	}
}

// Package invindex implements the paper's weighted inverted index
// application (Section 7.2, Table 3): an outer functional tree maps each
// term to a posting list — itself an inner functional tree from document to
// weight, augmented with the maximum weight in the subtree — and both
// levels are persistent, so adding a document is one atomic write
// transaction (built with a parallel union) and "and"-queries intersect two
// posting-list snapshots without any synchronization.
//
// No pid appears anywhere in this package's API: the index leases process
// identities internally from its map's pool through the cached-handle fast
// path (core.Map.WithCached), so ingestion and queries may be issued from
// any goroutine.  ShardedIndex (sharded.go) hash-partitions the outer term
// tree across S independent maps for parallel ingestion.
//
// The corpus is synthetic (Zipf-distributed vocabulary), substituting for
// the paper's Wikipedia dump; see DESIGN.md for why the substitution
// preserves the experiment's claim.
package invindex

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"

	"mvgc/internal/core"
	"mvgc/internal/ftree"
	"mvgc/internal/ycsb"
)

// Posting is an inner tree node: document → weight, max-weight augmented.
type Posting = ftree.Node[uint64, int64, int64]

// Index is the two-level persistent inverted index wrapped in the paper's
// transactional system.
type Index struct {
	inner *ftree.Ops[uint64, int64, int64]
	outer *ftree.Ops[uint64, *Posting, struct{}]
	m     *core.Map[uint64, *Posting, struct{}]
}

// TermWeight is one term occurrence in a document.
type TermWeight struct {
	Term   uint64
	Weight int64
}

// Doc is a document to ingest.
type Doc struct {
	ID    uint64
	Terms []TermWeight
}

// New creates an empty index admitting up to procs concurrent transactions
// (procs <= 0 defaults to GOMAXPROCS+1, leaving room for one ingesting
// writer next to GOMAXPROCS queriers) with the given parallel grain for
// batch updates.
func New(procs, grain int) (*Index, error) {
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0) + 1
	}
	inner := ftree.New[uint64, int64, int64](ftree.IntCmp[uint64], ftree.MaxAug[uint64](), grain)
	outer := newOuter(inner, grain)
	m, err := core.NewMap(core.Config{Algorithm: "pswf", Procs: procs}, outer, nil)
	if err != nil {
		return nil, fmt.Errorf("invindex: %w", err)
	}
	return &Index{inner: inner, outer: outer, m: m}, nil
}

// newOuter builds a term → posting tree whose values share the inner
// allocator: retaining an outer node retains its posting list.
func newOuter(inner *ftree.Ops[uint64, int64, int64], grain int) *ftree.Ops[uint64, *Posting, struct{}] {
	outer := ftree.New[uint64, *Posting, struct{}](ftree.IntCmp[uint64], ftree.NoAug[uint64, *Posting](), grain)
	outer.RetainVal = func(p *Posting) *Posting {
		if p == nil {
			return nil
		}
		return inner.Share(p)
	}
	outer.ReleaseVal = func(p *Posting) { inner.Release(p) }
	return outer
}

// read runs a read-only transaction on an internally-leased cached handle.
func (ix *Index) read(f func(s core.Snapshot[uint64, *Posting, struct{}])) {
	ix.m.WithCached(func(h *core.Handle[uint64, *Posting, struct{}]) { h.Read(f) })
}

// update runs a write transaction on an internally-leased cached handle.
func (ix *Index) update(f func(tx *core.Txn[uint64, *Posting, struct{}])) {
	ix.m.WithCached(func(h *core.Handle[uint64, *Posting, struct{}]) { h.Update(f) })
}

// combinePostings merges two owned posting trees into one owned tree,
// summing weights for documents present in both.
func combinePostings(inner *ftree.Ops[uint64, int64, int64]) func(a, b *Posting) *Posting {
	return func(a, b *Posting) *Posting {
		u := inner.Union(a, b, func(x, y int64) int64 { return x + y })
		inner.Release(a)
		inner.Release(b)
		return u
	}
}

// docBatch turns documents into term → single-entry-posting deltas.
func docBatch(inner *ftree.Ops[uint64, int64, int64], docs []Doc) []ftree.Entry[uint64, *Posting] {
	var batch []ftree.Entry[uint64, *Posting]
	for _, d := range docs {
		for _, tw := range d.Terms {
			batch = append(batch, ftree.Entry[uint64, *Posting]{
				Key: tw.Term,
				Val: inner.Insert(nil, d.ID, tw.Weight),
			})
		}
	}
	return batch
}

// AddDocument ingests one document atomically: it builds the document's
// term → posting delta and unions it into the index in a single write
// transaction, so no query ever observes a partial document (the paper's
// atomic-ingestion requirement).
func (ix *Index) AddDocument(d Doc) {
	ix.AddDocuments([]Doc{d})
}

// AddDocuments ingests a batch of documents in one write transaction.
func (ix *Index) AddDocuments(docs []Doc) {
	insertDocBatch(ix.inner, ix.m, docBatch(ix.inner, docs), true)
}

// insertDocBatch commits term → posting deltas into m.  Write transactions
// retry on conflict, so each attempt must be self-contained: it inserts
// fresh shares of the deltas, letting a conflict-aborted attempt release
// its partial tree without consuming the originals (which are released
// exactly once, after the commit).  This makes concurrent AddDocuments
// callers safe — the pid-free API no longer implies a single writer.
// stamped=false is for ShardedIndex's cross-shard atomic ingest, where the
// caller publishes one shared commit stamp after all shards install.
func insertDocBatch(inner *ftree.Ops[uint64, int64, int64], m *core.Map[uint64, *Posting, struct{}], batch []ftree.Entry[uint64, *Posting], stamped bool) {
	comb := combinePostings(inner)
	m.WithCached(func(h *core.Handle[uint64, *Posting, struct{}]) {
		commit := h.Update
		if !stamped {
			commit = h.UpdateUnstamped
		}
		commit(func(tx *core.Txn[uint64, *Posting, struct{}]) {
			attempt := make([]ftree.Entry[uint64, *Posting], len(batch))
			for i, e := range batch {
				attempt[i] = ftree.Entry[uint64, *Posting]{Key: e.Key, Val: inner.Share(e.Val)}
			}
			tx.InsertBatch(attempt, comb)
		})
	})
	for _, e := range batch {
		inner.Release(e.Val)
	}
}

// RemoveDocument deletes a document's postings for the given terms,
// dropping terms whose posting list becomes empty.
func (ix *Index) RemoveDocument(d Doc) {
	ix.update(func(tx *core.Txn[uint64, *Posting, struct{}]) {
		removeDocTerms(ix.inner, tx, d, d.Terms)
	})
}

// removeDocTerms deletes d's postings for the given terms within tx.
func removeDocTerms(inner *ftree.Ops[uint64, int64, int64], tx *core.Txn[uint64, *Posting, struct{}], d Doc, terms []TermWeight) {
	for _, tw := range terms {
		p, ok := tx.Get(tw.Term)
		if !ok {
			continue
		}
		np := inner.Delete(p, d.ID)
		if inner.Size(np) == 0 {
			inner.Release(np)
			tx.Delete(tw.Term)
		} else {
			tx.Insert(tw.Term, np)
		}
	}
}

// ScoredDoc is one "and"-query result.
type ScoredDoc struct {
	Doc   uint64
	Score int64
}

// AndQuery returns the top-k documents containing both terms, ranked by
// summed weight, evaluated against one consistent snapshot.  Because both
// levels are persistent, the two posting lists are snapshots of the same
// version and the query never blocks or is blocked by writers.
func (ix *Index) AndQuery(term1, term2 uint64, k int) []ScoredDoc {
	var out []ScoredDoc
	ix.read(func(s core.Snapshot[uint64, *Posting, struct{}]) {
		p1, ok1 := s.Get(term1)
		p2, ok2 := s.Get(term2)
		if !ok1 || !ok2 {
			return
		}
		inter := ix.inner.Intersect(p1, p2, func(a, b int64) int64 { return a + b })
		out = TopK(inter, k)
		ix.inner.Release(inter)
	})
	return out
}

// AndQueryN generalizes AndQuery to any number of terms: top-k documents
// containing every term, ranked by summed weight.  Intersections proceed
// smallest-posting-first to keep intermediate results minimal.
func (ix *Index) AndQueryN(terms []uint64, k int) []ScoredDoc {
	if len(terms) == 0 {
		return nil
	}
	var out []ScoredDoc
	ix.read(func(s core.Snapshot[uint64, *Posting, struct{}]) {
		postings := make([]*Posting, 0, len(terms))
		for _, t := range terms {
			p, ok := s.Get(t)
			if !ok {
				return
			}
			postings = append(postings, p)
		}
		out = intersectTopK(ix.inner, postings, k)
	})
	return out
}

// intersectTopK intersects borrowed postings smallest-first and returns the
// top-k of the result; the input postings are not consumed.
func intersectTopK(inner *ftree.Ops[uint64, int64, int64], postings []*Posting, k int) []ScoredDoc {
	sum := func(a, b int64) int64 { return a + b }
	sort.Slice(postings, func(i, j int) bool {
		return inner.Size(postings[i]) < inner.Size(postings[j])
	})
	acc := inner.Share(postings[0])
	for _, p := range postings[1:] {
		next := inner.Intersect(acc, p, sum)
		inner.Release(acc)
		acc = next
	}
	out := TopK(acc, k)
	inner.Release(acc)
	return out
}

// OrQuery returns the top-k documents containing either term, ranked by
// summed weight (documents with both terms score the sum of both).
func (ix *Index) OrQuery(term1, term2 uint64, k int) []ScoredDoc {
	var out []ScoredDoc
	ix.read(func(s core.Snapshot[uint64, *Posting, struct{}]) {
		p1, ok1 := s.Get(term1)
		p2, ok2 := s.Get(term2)
		switch {
		case !ok1 && !ok2:
			return
		case !ok1:
			out = TopK(p2, k)
			return
		case !ok2:
			out = TopK(p1, k)
			return
		}
		u := ix.inner.Union(p1, p2, func(a, b int64) int64 { return a + b })
		out = TopK(u, k)
		ix.inner.Release(u)
	})
	return out
}

// PostingLen returns the posting-list length of term.
func (ix *Index) PostingLen(term uint64) int64 {
	var n int64
	ix.read(func(s core.Snapshot[uint64, *Posting, struct{}]) {
		if p, ok := s.Get(term); ok {
			n = ix.inner.Size(p)
		}
	})
	return n
}

// Terms returns the vocabulary size.
func (ix *Index) Terms() int64 {
	var n int64
	ix.read(func(s core.Snapshot[uint64, *Posting, struct{}]) { n = s.Len() })
	return n
}

// Close shuts the underlying transactional map down.
func (ix *Index) Close() { ix.m.Close() }

// LiveNodes reports live (outer, inner) node counts for leak checks.
func (ix *Index) LiveNodes() (outer, inner int64) {
	return ix.outer.Live(), ix.inner.Live()
}

// TopK extracts the k highest-weight entries of a max-augmented posting
// tree in O(k log n) using the augmentation as a priority bound: a heap
// holds subtrees keyed by their max-weight augmentation and single entries
// keyed by their weight; popping a subtree re-inserts its root entry and
// children.  This is the augmented top-k search the paper's index design
// enables.
func TopK(t *Posting, k int) []ScoredDoc {
	if t == nil || k <= 0 {
		return nil
	}
	h := &topkHeap{}
	heap.Push(h, topkItem{sub: t, pri: t.Aug()})
	var out []ScoredDoc
	for h.Len() > 0 && len(out) < k {
		it := heap.Pop(h).(topkItem)
		if it.sub == nil {
			out = append(out, ScoredDoc{Doc: it.doc, Score: it.pri})
			continue
		}
		n := it.sub
		heap.Push(h, topkItem{doc: n.Key(), pri: n.Val()})
		if l := n.Left(); l != nil {
			heap.Push(h, topkItem{sub: l, pri: l.Aug()})
		}
		if r := n.Right(); r != nil {
			heap.Push(h, topkItem{sub: r, pri: r.Aug()})
		}
	}
	return out
}

type topkItem struct {
	sub *Posting // nil for a single-entry item
	doc uint64
	pri int64
}

type topkHeap []topkItem

func (h topkHeap) Len() int           { return len(h) }
func (h topkHeap) Less(i, j int) bool { return h[i].pri > h[j].pri }
func (h topkHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *topkHeap) Push(x any)        { *h = append(*h, x.(topkItem)) }
func (h *topkHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// CorpusConfig shapes the synthetic corpus standing in for the paper's
// Wikipedia dump.
type CorpusConfig struct {
	// Vocab is the vocabulary size.
	Vocab uint64
	// MeanDocLen is the average number of distinct terms per document.
	MeanDocLen int
	// Seed makes generation deterministic.
	Seed uint64
}

// Corpus generates documents with Zipf-distributed term choice (natural
// language's rank-frequency law) and uniform weights.
type Corpus struct {
	cfg   CorpusConfig
	terms *ycsb.ScrambledZipfian
	rng   *ycsb.SplitMix64
	next  uint64
}

// NewCorpus creates a generator.
func NewCorpus(cfg CorpusConfig) *Corpus {
	if cfg.Vocab == 0 {
		cfg.Vocab = 100000
	}
	if cfg.MeanDocLen == 0 {
		cfg.MeanDocLen = 64
	}
	return &Corpus{
		cfg:   cfg,
		terms: ycsb.NewScrambledZipfian(cfg.Vocab),
		rng:   ycsb.NewSplitMix64(cfg.Seed ^ 0xabcdef),
	}
}

// Next produces the next document: distinct Zipf-drawn terms with weights.
func (c *Corpus) Next() Doc {
	n := c.cfg.MeanDocLen/2 + int(c.rng.Intn(uint64(c.cfg.MeanDocLen)))
	seen := make(map[uint64]struct{}, n)
	d := Doc{ID: c.next}
	c.next++
	for len(d.Terms) < n {
		t := c.terms.Next(c.rng)
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		d.Terms = append(d.Terms, TermWeight{Term: t, Weight: int64(1 + c.rng.Intn(1000))})
	}
	return d
}

// HotTerms returns frequent terms for query generation: scrambled ranks
// 0..n-1, which are the zipfian hot set.
func (c *Corpus) HotTerms(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = ycsb.FNV64(uint64(i)) % c.cfg.Vocab
	}
	return out
}

package invindex

// ShardedIndex hash-partitions the outer term tree across S independent
// core.Map instances, the way internal/shard does for the KV map: each
// shard has its own Version Maintenance object and pid space, so S
// ingesting writers commit in parallel instead of one.  All shards share
// one inner (posting) allocator — posting trees are reference-counted, so
// a posting pinned by one shard's snapshot stays live while another shard
// commits.
//
// # Semantics
//
// Sharding trades the single index's global snapshot for per-shard
// snapshots (the same trade internal/shard documents).  Terms that hash to
// the same shard keep the paper's full guarantees — an AndQuery whose two
// terms share a shard runs against one consistent snapshot.  Cross-shard
// queries pin one snapshot per involved shard, so a document mid-ingestion
// may be visible under one of its terms and not yet under another;
// likewise AddDocuments is atomic per shard, not per document, when a
// document's terms span shards.  Use the unsharded Index when global
// document atomicity matters more than ingest parallelism.

import (
	"fmt"
	"runtime"
	"sync"

	"mvgc/internal/core"
	"mvgc/internal/ftree"
	"mvgc/internal/ycsb"
)

// ShardedIndex is the S-way partitioned inverted index.  Like Index, no
// pid appears anywhere in its API.
type ShardedIndex struct {
	inner  *ftree.Ops[uint64, int64, int64]
	outers []*ftree.Ops[uint64, *Posting, struct{}]
	maps   []*core.Map[uint64, *Posting, struct{}]
}

// NewSharded creates an empty index over S shards, each admitting up to
// procs concurrent transactions (procs <= 0 defaults to GOMAXPROCS+1).
func NewSharded(shards, procs, grain int) (*ShardedIndex, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("invindex: shards must be positive, got %d", shards)
	}
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0) + 1
	}
	inner := ftree.New[uint64, int64, int64](ftree.IntCmp[uint64], ftree.MaxAug[uint64](), grain)
	ix := &ShardedIndex{inner: inner}
	for i := 0; i < shards; i++ {
		outer := newOuter(inner, grain)
		m, err := core.NewMap(core.Config{Algorithm: "pswf", Procs: procs}, outer, nil)
		if err != nil {
			for _, prev := range ix.maps {
				prev.Close()
			}
			return nil, fmt.Errorf("invindex: shard %d: %w", i, err)
		}
		ix.outers = append(ix.outers, outer)
		ix.maps = append(ix.maps, m)
	}
	return ix, nil
}

// NumShards returns S.
func (ix *ShardedIndex) NumShards() int { return len(ix.maps) }

// shardFor routes a term to its shard; Mix64 spreads sequential term ids
// uniformly.
func (ix *ShardedIndex) shardFor(term uint64) int {
	return int(ycsb.Mix64(term) % uint64(len(ix.maps)))
}

// read runs a read-only transaction on shard i's cached handle.
func (ix *ShardedIndex) read(i int, f func(s core.Snapshot[uint64, *Posting, struct{}])) {
	ix.maps[i].WithCached(func(h *core.Handle[uint64, *Posting, struct{}]) { h.Read(f) })
}

// update runs a write transaction on shard i's cached handle.
func (ix *ShardedIndex) update(i int, f func(tx *core.Txn[uint64, *Posting, struct{}])) {
	ix.maps[i].WithCached(func(h *core.Handle[uint64, *Posting, struct{}]) { h.Update(f) })
}

// AddDocument ingests one document.  Atomicity is per shard: the terms
// that hash to one shard appear together, but terms on different shards
// commit in separate transactions (see the type comment).
func (ix *ShardedIndex) AddDocument(d Doc) {
	ix.AddDocuments([]Doc{d})
}

// AddDocuments ingests a batch of documents, one atomic write transaction
// per affected shard, all shards in parallel.
func (ix *ShardedIndex) AddDocuments(docs []Doc) {
	parts := make([][]ftree.Entry[uint64, *Posting], len(ix.maps))
	for _, e := range docBatch(ix.inner, docs) {
		i := ix.shardFor(e.Key)
		parts[i] = append(parts[i], e)
	}
	var wg sync.WaitGroup
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part []ftree.Entry[uint64, *Posting]) {
			defer wg.Done()
			insertDocBatch(ix.inner, ix.maps[i], part)
		}(i, part)
	}
	wg.Wait()
}

// RemoveDocument deletes a document's postings for the given terms, one
// write transaction per affected shard.
func (ix *ShardedIndex) RemoveDocument(d Doc) {
	parts := make([][]TermWeight, len(ix.maps))
	for _, tw := range d.Terms {
		i := ix.shardFor(tw.Term)
		parts[i] = append(parts[i], tw)
	}
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		ix.update(i, func(tx *core.Txn[uint64, *Posting, struct{}]) {
			removeDocTerms(ix.inner, tx, d, part)
		})
	}
}

// sharePostings pins each term's posting list, reading every involved
// shard exactly once and returning owned (shared) postings the caller must
// Release.  ok is false — and nothing is retained — when any term is
// absent.
func (ix *ShardedIndex) sharePostings(terms []uint64) (postings []*Posting, ok bool) {
	postings = make([]*Posting, len(terms))
	byShard := make(map[int][]int, len(ix.maps))
	for i, t := range terms {
		s := ix.shardFor(t)
		byShard[s] = append(byShard[s], i)
	}
	ok = true
	for s, idxs := range byShard {
		if !ok {
			break
		}
		ix.read(s, func(sn core.Snapshot[uint64, *Posting, struct{}]) {
			for _, i := range idxs {
				p, found := sn.Get(terms[i])
				if !found {
					ok = false
					return
				}
				postings[i] = ix.inner.Share(p)
			}
		})
	}
	if !ok {
		for _, p := range postings {
			if p != nil {
				ix.inner.Release(p)
			}
		}
		return nil, false
	}
	return postings, true
}

// AndQuery returns the top-k documents containing both terms, ranked by
// summed weight.  When the terms share a shard the query runs against one
// consistent snapshot; otherwise it intersects two per-shard snapshots.
func (ix *ShardedIndex) AndQuery(term1, term2 uint64, k int) []ScoredDoc {
	sum := func(a, b int64) int64 { return a + b }
	if s1 := ix.shardFor(term1); s1 == ix.shardFor(term2) {
		var out []ScoredDoc
		ix.read(s1, func(sn core.Snapshot[uint64, *Posting, struct{}]) {
			p1, ok1 := sn.Get(term1)
			p2, ok2 := sn.Get(term2)
			if !ok1 || !ok2 {
				return
			}
			inter := ix.inner.Intersect(p1, p2, sum)
			out = TopK(inter, k)
			ix.inner.Release(inter)
		})
		return out
	}
	// Cross-shard: two direct reads (cheaper than sharePostings' grouping,
	// which earns its keep only for N-term queries).
	var p1, p2 *Posting
	ix.read(ix.shardFor(term1), func(sn core.Snapshot[uint64, *Posting, struct{}]) {
		if p, ok := sn.Get(term1); ok {
			p1 = ix.inner.Share(p)
		}
	})
	if p1 == nil {
		return nil
	}
	ix.read(ix.shardFor(term2), func(sn core.Snapshot[uint64, *Posting, struct{}]) {
		if p, ok := sn.Get(term2); ok {
			p2 = ix.inner.Share(p)
		}
	})
	if p2 == nil {
		ix.inner.Release(p1)
		return nil
	}
	inter := ix.inner.Intersect(p1, p2, sum)
	out := TopK(inter, k)
	ix.inner.Release(inter)
	ix.inner.Release(p1)
	ix.inner.Release(p2)
	return out
}

// AndQueryN generalizes AndQuery to any number of terms: top-k documents
// containing every term, intersected smallest-posting-first.
func (ix *ShardedIndex) AndQueryN(terms []uint64, k int) []ScoredDoc {
	if len(terms) == 0 {
		return nil
	}
	ps, ok := ix.sharePostings(terms)
	if !ok {
		return nil
	}
	out := intersectTopK(ix.inner, ps, k)
	for _, p := range ps {
		ix.inner.Release(p)
	}
	return out
}

// OrQuery returns the top-k documents containing either term, ranked by
// summed weight (documents with both terms score the sum of both).  Like
// AndQuery, same-shard term pairs are answered from one consistent
// snapshot; cross-shard pairs pin one snapshot per shard.
func (ix *ShardedIndex) OrQuery(term1, term2 uint64, k int) []ScoredDoc {
	var p1, p2 *Posting
	if s1 := ix.shardFor(term1); s1 == ix.shardFor(term2) {
		ix.read(s1, func(sn core.Snapshot[uint64, *Posting, struct{}]) {
			if p, ok := sn.Get(term1); ok {
				p1 = ix.inner.Share(p)
			}
			if p, ok := sn.Get(term2); ok {
				p2 = ix.inner.Share(p)
			}
		})
	} else {
		ix.read(s1, func(sn core.Snapshot[uint64, *Posting, struct{}]) {
			if p, ok := sn.Get(term1); ok {
				p1 = ix.inner.Share(p)
			}
		})
		ix.read(ix.shardFor(term2), func(sn core.Snapshot[uint64, *Posting, struct{}]) {
			if p, ok := sn.Get(term2); ok {
				p2 = ix.inner.Share(p)
			}
		})
	}
	switch {
	case p1 == nil && p2 == nil:
		return nil
	case p1 == nil:
		out := TopK(p2, k)
		ix.inner.Release(p2)
		return out
	case p2 == nil:
		out := TopK(p1, k)
		ix.inner.Release(p1)
		return out
	}
	u := ix.inner.Union(p1, p2, func(a, b int64) int64 { return a + b })
	out := TopK(u, k)
	ix.inner.Release(u)
	ix.inner.Release(p1)
	ix.inner.Release(p2)
	return out
}

// PostingLen returns the posting-list length of term.
func (ix *ShardedIndex) PostingLen(term uint64) int64 {
	var n int64
	ix.read(ix.shardFor(term), func(sn core.Snapshot[uint64, *Posting, struct{}]) {
		if p, ok := sn.Get(term); ok {
			n = ix.inner.Size(p)
		}
	})
	return n
}

// Terms returns the vocabulary size, summed over per-shard snapshots
// (approximate under concurrent ingestion, like shard.Map.Len).
func (ix *ShardedIndex) Terms() int64 {
	var n int64
	for i := range ix.maps {
		ix.read(i, func(sn core.Snapshot[uint64, *Posting, struct{}]) { n += sn.Len() })
	}
	return n
}

// Close shuts every shard's transactional map down.
func (ix *ShardedIndex) Close() {
	for _, m := range ix.maps {
		m.Close()
	}
}

// LiveNodes reports live (outer, inner) node counts for leak checks; the
// outer count sums all shards.
func (ix *ShardedIndex) LiveNodes() (outer, inner int64) {
	for _, o := range ix.outers {
		outer += o.Live()
	}
	return outer, ix.inner.Live()
}

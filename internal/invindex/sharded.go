package invindex

// ShardedIndex hash-partitions the outer term tree across S independent
// core.Map instances, the way internal/shard does for the KV map: each
// shard has its own Version Maintenance object and pid space, so S
// ingesting writers commit in parallel instead of one.  All shards share
// one inner (posting) allocator — posting trees are reference-counted, so
// a posting pinned by one shard's snapshot stays live while another shard
// commits.
//
// # Semantics
//
// Terms that hash to the same shard keep the paper's full guarantees — an
// AndQuery whose two terms share a shard runs against one consistent
// snapshot.  Ingestion is atomic per document (and per AddDocuments batch):
// when a document's terms span shards, the affected shards' roots are
// installed under one global commit sequence number behind per-shard
// install seqlocks, the same two-phase protocol internal/shard uses for
// UpdateAtomic.  Cross-shard queries double-collect the involved shards'
// install seqlocks around pinning their posting snapshots (bounded retry,
// then a brief writer-slot fence), so a query never observes a document
// under one of its terms but not another.  The only remaining per-shard
// weakening is statistical: Terms sums per-shard counts pinned at slightly
// different instants.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"mvgc/internal/core"
	"mvgc/internal/ftree"
	"mvgc/internal/ycsb"
)

// ShardedIndex is the S-way partitioned inverted index.  Like Index, no
// pid appears anywhere in its API.
type ShardedIndex struct {
	inner  *ftree.Ops[uint64, int64, int64]
	outers []*ftree.Ops[uint64, *Posting, struct{}]
	maps   []*core.Map[uint64, *Posting, struct{}]
	gsn    atomic.Uint64 // shared commit-stamp source across shards
}

// NewSharded creates an empty index over S shards, each admitting up to
// procs concurrent transactions (procs <= 0 defaults to GOMAXPROCS+1).
func NewSharded(shards, procs, grain int) (*ShardedIndex, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("invindex: shards must be positive, got %d", shards)
	}
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0) + 1
	}
	inner := ftree.New[uint64, int64, int64](ftree.IntCmp[uint64], ftree.MaxAug[uint64](), grain)
	ix := &ShardedIndex{inner: inner}
	for i := 0; i < shards; i++ {
		outer := newOuter(inner, grain)
		m, err := core.NewMap(core.Config{Algorithm: "pswf", Procs: procs, Stamp: &ix.gsn}, outer, nil)
		if err != nil {
			for _, prev := range ix.maps {
				prev.Close()
			}
			return nil, fmt.Errorf("invindex: shard %d: %w", i, err)
		}
		ix.outers = append(ix.outers, outer)
		ix.maps = append(ix.maps, m)
	}
	return ix, nil
}

// NumShards returns S.
func (ix *ShardedIndex) NumShards() int { return len(ix.maps) }

// shardFor routes a term to its shard; Mix64 spreads sequential term ids
// uniformly.
func (ix *ShardedIndex) shardFor(term uint64) int {
	return int(ycsb.Mix64(term) % uint64(len(ix.maps)))
}

// read runs a read-only transaction on shard i's cached handle.
func (ix *ShardedIndex) read(i int, f func(s core.Snapshot[uint64, *Posting, struct{}])) {
	ix.maps[i].WithCached(func(h *core.Handle[uint64, *Posting, struct{}]) { h.Read(f) })
}

// update runs a write transaction on shard i's cached handle.
func (ix *ShardedIndex) update(i int, f func(tx *core.Txn[uint64, *Posting, struct{}])) {
	ix.maps[i].WithCached(func(h *core.Handle[uint64, *Posting, struct{}]) { h.Update(f) })
}

// AddDocument ingests one document atomically, even when its terms span
// shards: no query ever observes the document under some of its terms and
// not others (the unsharded Index's atomic-ingestion guarantee, recovered
// via the global-stamp install protocol).
func (ix *ShardedIndex) AddDocument(d Doc) {
	ix.AddDocuments([]Doc{d})
}

// touchedShards returns the ascending indices of shards with a non-empty
// part.
func touchedShards[T any](parts [][]T) []int {
	var out []int
	for i, p := range parts {
		if len(p) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// parallelIngestFloor is the per-shard batch size below which an atomic
// cross-shard ingest commits its shards sequentially: a single document's
// handful of entries is cheaper to commit inline than to spawn goroutines
// for, and a shorter install window means fewer stablePins retries.  Large
// AddDocuments batches keep the S-way parallel commit that is the point of
// sharding.
const parallelIngestFloor = 64

// installAtomic runs commit(i) for every touched shard under the two-phase
// global-stamp protocol (core.InstallAtomic): writer slots in ascending
// shard order, install seqlocks odd, all commits unstamped, then one
// shared GSN published everywhere before the seqlocks return to even.
// Consistent readers (stablePins) can therefore never observe a subset of
// the commits.  parallel selects S-way commits (independent shards) versus
// a cheaper inline loop.
func (ix *ShardedIndex) installAtomic(touched []int, parallel bool, commit func(i int)) {
	core.LockWriterSlots(ix.maps, touched)
	defer core.UnlockWriterSlots(ix.maps, touched)
	core.InstallAtomic(ix.maps, touched, func() {
		if !parallel {
			for _, i := range touched {
				commit(i)
			}
			return
		}
		var wg sync.WaitGroup
		for _, i := range touched {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				commit(i)
			}(i)
		}
		wg.Wait()
	})
}

// AddDocuments ingests a batch of documents in one atomic cross-shard
// transaction: per-shard parts commit in parallel, but all become visible
// to consistent queries together, under one global commit sequence number.
func (ix *ShardedIndex) AddDocuments(docs []Doc) {
	parts := make([][]ftree.Entry[uint64, *Posting], len(ix.maps))
	for _, e := range docBatch(ix.inner, docs) {
		i := ix.shardFor(e.Key)
		parts[i] = append(parts[i], e)
	}
	touched := touchedShards(parts)
	if len(touched) == 1 {
		// One shard's commit is atomic on its own and stamps itself.
		insertDocBatch(ix.inner, ix.maps[touched[0]], parts[touched[0]], true)
		return
	}
	parallel := false
	for _, i := range touched {
		if len(parts[i]) >= parallelIngestFloor {
			parallel = true
			break
		}
	}
	ix.installAtomic(touched, parallel, func(i int) {
		insertDocBatch(ix.inner, ix.maps[i], parts[i], false)
	})
}

// RemoveDocument deletes a document's postings for the given terms,
// atomically across shards like AddDocument.
func (ix *ShardedIndex) RemoveDocument(d Doc) {
	parts := make([][]TermWeight, len(ix.maps))
	for _, tw := range d.Terms {
		i := ix.shardFor(tw.Term)
		parts[i] = append(parts[i], tw)
	}
	touched := touchedShards(parts)
	if len(touched) == 1 {
		ix.update(touched[0], func(tx *core.Txn[uint64, *Posting, struct{}]) {
			removeDocTerms(ix.inner, tx, d, parts[touched[0]])
		})
		return
	}
	// A single document's removal is small; commit inline.
	ix.installAtomic(touched, false, func(i int) {
		ix.maps[i].WithCached(func(h *core.Handle[uint64, *Posting, struct{}]) {
			h.UpdateUnstamped(func(tx *core.Txn[uint64, *Posting, struct{}]) {
				removeDocTerms(ix.inner, tx, d, parts[i])
			})
		})
	})
}

// stablePins runs pin — which reads the involved shards and retains shared
// postings — under a double-collect of those shards' install seqlocks: if
// an atomic ingest overlapped the pins, undo releases whatever pin retained
// and the pair runs again, so queries never observe a torn document.
// Bounded retries, then a brief fence on the involved shards' writer slots
// (which atomic ingests hold for their whole install) makes the last
// attempt definitive.  involved must be ascending (slot lock order).  Only
// seqlocks are collected, not stamps: plain single-shard ingests are atomic
// on their own, so a moving stamp alone cannot tear a document.
func (ix *ShardedIndex) stablePins(involved []int, pin func(), undo func()) {
	const maxTries = 8
	seqs := make([]uint64, len(involved))
	for try := 0; try < maxTries; try++ {
		ok := true
		for j, s := range involved {
			q := ix.maps[s].InstallSeq()
			if q&1 != 0 {
				ok = false
				break
			}
			seqs[j] = q
		}
		if !ok {
			runtime.Gosched()
			continue
		}
		pin()
		stable := true
		for j, s := range involved {
			if ix.maps[s].InstallSeq() != seqs[j] {
				stable = false
				break
			}
		}
		if stable {
			return
		}
		undo()
		runtime.Gosched()
	}
	for _, s := range involved {
		ix.maps[s].LockWriterSlot()
	}
	pin()
	for j := len(involved) - 1; j >= 0; j-- {
		ix.maps[involved[j]].UnlockWriterSlot()
	}
}

// sharePostings pins each term's posting list under a stable-pin pass over
// the involved shards (no torn documents; see stablePins), reading every
// involved shard exactly once and returning owned (shared) postings the
// caller must Release.  ok is false — and nothing is retained — when any
// term is absent.
func (ix *ShardedIndex) sharePostings(terms []uint64) (postings []*Posting, ok bool) {
	postings = make([]*Posting, len(terms))
	byShard := make(map[int][]int, len(ix.maps))
	for i, t := range terms {
		s := ix.shardFor(t)
		byShard[s] = append(byShard[s], i)
	}
	involved := make([]int, 0, len(byShard))
	for s := range byShard {
		involved = append(involved, s)
	}
	sort.Ints(involved)
	undo := func() {
		for i, p := range postings {
			if p != nil {
				ix.inner.Release(p)
				postings[i] = nil
			}
		}
	}
	ix.stablePins(involved, func() {
		ok = true
		for _, s := range involved {
			if !ok {
				break
			}
			idxs := byShard[s]
			ix.read(s, func(sn core.Snapshot[uint64, *Posting, struct{}]) {
				for _, i := range idxs {
					p, found := sn.Get(terms[i])
					if !found {
						ok = false
						return
					}
					postings[i] = ix.inner.Share(p)
				}
			})
		}
	}, undo)
	if !ok {
		undo()
		return nil, false
	}
	return postings, true
}

// sharePair pins two terms living on different shards into *p1/*p2 (nil
// for absent terms) under one stable-pin pass, so the pair reflects a cut
// no atomic ingest tears.
func (ix *ShardedIndex) sharePair(term1, term2 uint64, p1, p2 **Posting) {
	s1, s2 := ix.shardFor(term1), ix.shardFor(term2)
	involved := []int{s1, s2}
	if s2 < s1 {
		involved[0], involved[1] = s2, s1
	}
	ix.stablePins(involved, func() {
		ix.read(s1, func(sn core.Snapshot[uint64, *Posting, struct{}]) {
			if p, ok := sn.Get(term1); ok {
				*p1 = ix.inner.Share(p)
			}
		})
		ix.read(s2, func(sn core.Snapshot[uint64, *Posting, struct{}]) {
			if p, ok := sn.Get(term2); ok {
				*p2 = ix.inner.Share(p)
			}
		})
	}, func() {
		if *p1 != nil {
			ix.inner.Release(*p1)
			*p1 = nil
		}
		if *p2 != nil {
			ix.inner.Release(*p2)
			*p2 = nil
		}
	})
}

// AndQuery returns the top-k documents containing both terms, ranked by
// summed weight.  When the terms share a shard the query runs against one
// consistent snapshot; otherwise it intersects two stably-pinned per-shard
// snapshots (see stablePins).
func (ix *ShardedIndex) AndQuery(term1, term2 uint64, k int) []ScoredDoc {
	sum := func(a, b int64) int64 { return a + b }
	if s1 := ix.shardFor(term1); s1 == ix.shardFor(term2) {
		var out []ScoredDoc
		ix.read(s1, func(sn core.Snapshot[uint64, *Posting, struct{}]) {
			p1, ok1 := sn.Get(term1)
			p2, ok2 := sn.Get(term2)
			if !ok1 || !ok2 {
				return
			}
			inter := ix.inner.Intersect(p1, p2, sum)
			out = TopK(inter, k)
			ix.inner.Release(inter)
		})
		return out
	}
	// Cross-shard: two direct reads (cheaper than sharePostings' grouping,
	// which earns its keep only for N-term queries), under a stable-pin
	// pass so a concurrent atomic ingest cannot show the document under
	// one term and hide it under the other.
	var p1, p2 *Posting
	ix.sharePair(term1, term2, &p1, &p2)
	if p1 == nil || p2 == nil {
		if p1 != nil {
			ix.inner.Release(p1)
		}
		if p2 != nil {
			ix.inner.Release(p2)
		}
		return nil
	}
	inter := ix.inner.Intersect(p1, p2, sum)
	out := TopK(inter, k)
	ix.inner.Release(inter)
	ix.inner.Release(p1)
	ix.inner.Release(p2)
	return out
}

// AndQueryN generalizes AndQuery to any number of terms: top-k documents
// containing every term, intersected smallest-posting-first.
func (ix *ShardedIndex) AndQueryN(terms []uint64, k int) []ScoredDoc {
	if len(terms) == 0 {
		return nil
	}
	ps, ok := ix.sharePostings(terms)
	if !ok {
		return nil
	}
	out := intersectTopK(ix.inner, ps, k)
	for _, p := range ps {
		ix.inner.Release(p)
	}
	return out
}

// OrQuery returns the top-k documents containing either term, ranked by
// summed weight (documents with both terms score the sum of both).  Like
// AndQuery, same-shard term pairs are answered from one consistent
// snapshot; cross-shard pairs are stably pinned, so a document carrying
// both terms always scores both or neither (never a torn single weight).
func (ix *ShardedIndex) OrQuery(term1, term2 uint64, k int) []ScoredDoc {
	var p1, p2 *Posting
	if s1 := ix.shardFor(term1); s1 == ix.shardFor(term2) {
		ix.read(s1, func(sn core.Snapshot[uint64, *Posting, struct{}]) {
			if p, ok := sn.Get(term1); ok {
				p1 = ix.inner.Share(p)
			}
			if p, ok := sn.Get(term2); ok {
				p2 = ix.inner.Share(p)
			}
		})
	} else {
		ix.sharePair(term1, term2, &p1, &p2)
	}
	switch {
	case p1 == nil && p2 == nil:
		return nil
	case p1 == nil:
		out := TopK(p2, k)
		ix.inner.Release(p2)
		return out
	case p2 == nil:
		out := TopK(p1, k)
		ix.inner.Release(p1)
		return out
	}
	u := ix.inner.Union(p1, p2, func(a, b int64) int64 { return a + b })
	out := TopK(u, k)
	ix.inner.Release(u)
	ix.inner.Release(p1)
	ix.inner.Release(p2)
	return out
}

// PostingLen returns the posting-list length of term.
func (ix *ShardedIndex) PostingLen(term uint64) int64 {
	var n int64
	ix.read(ix.shardFor(term), func(sn core.Snapshot[uint64, *Posting, struct{}]) {
		if p, ok := sn.Get(term); ok {
			n = ix.inner.Size(p)
		}
	})
	return n
}

// Terms returns the vocabulary size, summed over per-shard snapshots
// (approximate under concurrent ingestion, like shard.Map.Len).
func (ix *ShardedIndex) Terms() int64 {
	var n int64
	for i := range ix.maps {
		ix.read(i, func(sn core.Snapshot[uint64, *Posting, struct{}]) { n += sn.Len() })
	}
	return n
}

// Close shuts every shard's transactional map down.
func (ix *ShardedIndex) Close() {
	for _, m := range ix.maps {
		m.Close()
	}
}

// LiveNodes reports live (outer, inner) node counts for leak checks; the
// outer count sums all shards.
func (ix *ShardedIndex) LiveNodes() (outer, inner int64) {
	for _, o := range ix.outers {
		outer += o.Live()
	}
	return outer, ix.inner.Live()
}

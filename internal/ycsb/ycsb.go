// Package ycsb generates Yahoo! Cloud Serving Benchmark style workloads
// (Cooper et al., SoCC 2010) as used in the paper's Figure 7: zipfian
// skewed key-access patterns over a loaded key space with the standard
// read/update mixes of workloads A (50/50), B (95/5) and C (100/0).
//
// The zipfian generator follows the reference YCSB implementation
// (Gray et al.'s algorithm with incremental zeta), including the
// "scrambled zipfian" variant that hashes ranks so that hot keys are
// spread across the key space instead of clustered at its start.
package ycsb

import "math"

// SplitMix64 is a tiny, fast, seedable PRNG (Steele et al., OOPSLA 2014);
// each worker owns one, so op generation is contention-free.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 seeds a generator.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next 64 random bits.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return Mix64(s.state)
}

// Mix64 is SplitMix64's finalizer on its own: a fast, well-distributed
// integer hash, also used as the default shard-routing hash so sequential
// key spaces spread uniformly.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Next()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (s *SplitMix64) Intn(n uint64) uint64 { return s.Next() % n }

// zipfConstant is YCSB's default skew parameter θ.
const zipfConstant = 0.99

// Zipfian draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^θ.  The zeta normalizer is precomputed once per item count;
// generators sharing the same n can share it via NewZipfianWithZeta.
type Zipfian struct {
	items        uint64
	theta        float64
	alpha        float64
	zetan, zeta2 float64
	eta          float64
}

// Zeta computes the zeta(n, θ) normalization sum.  O(n), done once.
func Zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / pow(float64(i), theta)
	}
	return sum
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// NewZipfian builds a zipfian generator over [0, items).
func NewZipfian(items uint64) *Zipfian {
	return NewZipfianWithZeta(items, Zeta(items, zipfConstant))
}

// NewZipfianWithZeta builds a generator with a precomputed zeta(items, θ).
func NewZipfianWithZeta(items uint64, zetan float64) *Zipfian {
	z := &Zipfian{
		items: items,
		theta: zipfConstant,
		zetan: zetan,
		zeta2: Zeta(2, zipfConstant),
	}
	z.alpha = 1 / (1 - z.theta)
	z.eta = (1 - pow(2/float64(items), 1-z.theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// Next draws the next rank using rng.
func (z *Zipfian) Next(rng *SplitMix64) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.items) * pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledZipfian spreads zipfian ranks over the key space with FNV-1a so
// the hot set is not contiguous — YCSB's default request distribution.
type ScrambledZipfian struct {
	z     *Zipfian
	items uint64
}

// NewScrambledZipfian builds the standard YCSB request generator over
// [0, items).
func NewScrambledZipfian(items uint64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(items), items: items}
}

// Next draws the next key index.
func (s *ScrambledZipfian) Next(rng *SplitMix64) uint64 {
	return FNV64(s.z.Next(rng)) % s.items
}

// FNV64 is the FNV-1a hash of a uint64, YCSB's scrambling function.
func FNV64(v uint64) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 0x100000001B3
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// OpKind is a workload operation type.
type OpKind uint8

const (
	// OpRead is a point lookup.
	OpRead OpKind = iota
	// OpUpdate overwrites the value of an existing key.
	OpUpdate
	// OpScan is a short ordered range scan: read Op.Len consecutive
	// entries starting at the first key ≥ Op.Key.
	OpScan
	// OpInsert adds a record beyond the loaded key space, growing the
	// dataset under the scanners' feet (YCSB workload E's write side).
	OpInsert
)

// Workload is an operation mix over a loaded key space.  Proportions not
// claimed by ReadProp or ScanProp are updates — except that a scan
// workload's remainder is inserts, per the YCSB E definition.
type Workload struct {
	// Name is the YCSB letter, for reporting.
	Name string
	// ReadProp is the fraction of point reads.
	ReadProp float64
	// ScanProp is the fraction of short scans; when it is positive the
	// non-read, non-scan remainder becomes inserts instead of updates.
	ScanProp float64
	// MaxScanLen is the scan-length ceiling: each scan's length is drawn
	// uniformly from [1, MaxScanLen], the YCSB default distribution.
	MaxScanLen int
}

// Standard mixes from the YCSB core workloads: A/B/C as run in Figure 7,
// E as the short-range-scan workload the scan subsystem is benched on.
var (
	// WorkloadA is the update-heavy mix: 50% reads, 50% updates.
	WorkloadA = Workload{Name: "A (50/50)", ReadProp: 0.5}
	// WorkloadB is the read-mostly mix: 95% reads, 5% updates.
	WorkloadB = Workload{Name: "B (95/5)", ReadProp: 0.95}
	// WorkloadC is read-only.
	WorkloadC = Workload{Name: "C (100/0)", ReadProp: 1.0}
	// WorkloadE is the short-ranges mix: 95% scans of uniform length
	// 1–100 starting at zipfian-drawn keys, 5% inserts of fresh records.
	WorkloadE = Workload{Name: "E (95/5 scan)", ScanProp: 0.95, MaxScanLen: 100}
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  uint64
	// Len is the scan length for OpScan (1 ≤ Len ≤ MaxScanLen).
	Len int
}

// Generator produces the operation stream for one worker.
type Generator struct {
	w    Workload
	keys *ScrambledZipfian
	rng  *SplitMix64
	// records is the loaded key-space size; inserts land above it.
	records uint64
}

// NewGenerator builds a per-worker generator over records keys with an
// independent seed.
func NewGenerator(w Workload, records uint64, seed uint64) *Generator {
	return &Generator{w: w, keys: NewScrambledZipfian(records), rng: NewSplitMix64(seed), records: records}
}

// Next produces the next operation.  Scan starts and read/update keys are
// drawn from the scrambled-zipfian request distribution over the loaded
// space; insert keys are drawn uniformly from the fringe [records,
// 2·records), so the dataset grows while scan starts stay in the loaded
// region (repeated fringe keys degrade to overwrites, which keeps workers
// coordination-free).
func (g *Generator) Next() Op {
	u := g.rng.Float64()
	switch {
	case u < g.w.ReadProp:
		return Op{Kind: OpRead, Key: g.keys.Next(g.rng)}
	case u < g.w.ReadProp+g.w.ScanProp:
		return Op{
			Kind: OpScan,
			Key:  g.keys.Next(g.rng),
			Len:  1 + int(g.rng.Intn(uint64(g.w.MaxScanLen))),
		}
	case g.w.ScanProp > 0:
		return Op{Kind: OpInsert, Key: g.records + g.rng.Intn(g.records), Val: g.rng.Next()}
	default:
		return Op{Kind: OpUpdate, Key: g.keys.Next(g.rng), Val: g.rng.Next()}
	}
}

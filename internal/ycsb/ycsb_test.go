package ycsb

import (
	"math"
	"testing"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewSplitMix64(43)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewSplitMix64(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

// TestZipfianSkew: with θ=0.99 the most popular rank must dominate and the
// empirical frequencies must decrease by rank.
func TestZipfianSkew(t *testing.T) {
	const n, draws = 1000, 200000
	z := NewZipfian(n)
	rng := NewSplitMix64(1)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		r := z.Next(rng)
		if r >= n {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	if counts[0] < counts[1] || counts[1] < counts[5] || counts[5] < counts[100] {
		t.Fatalf("zipfian frequencies not decreasing: %d %d %d %d",
			counts[0], counts[1], counts[5], counts[100])
	}
	// Expected mass of rank 0 is 1/zeta(n) ≈ 0.13 for n=1000, θ=0.99.
	p0 := float64(counts[0]) / draws
	want := 1 / Zeta(n, 0.99)
	if math.Abs(p0-want) > 0.02 {
		t.Fatalf("rank-0 mass %.3f, want ≈ %.3f", p0, want)
	}
}

// TestScrambledZipfianSpreads: scrambling must keep the skew (some key is
// hot) but destroy the rank order (hot keys not clustered at the bottom).
func TestScrambledZipfianSpreads(t *testing.T) {
	const n, draws = 10000, 100000
	s := NewScrambledZipfian(n)
	rng := NewSplitMix64(3)
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		k := s.Next(rng)
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	var hotKey uint64
	hot := 0
	for k, c := range counts {
		if c > hot {
			hot, hotKey = c, k
		}
	}
	if hot < draws/20 {
		t.Fatalf("no hot key after scrambling: max %d", hot)
	}
	if hotKey < 100 {
		t.Fatalf("hot key %d suspiciously small; scrambling broken?", hotKey)
	}
}

func TestWorkloadMixes(t *testing.T) {
	cases := []struct {
		w    Workload
		want float64
	}{{WorkloadA, 0.5}, {WorkloadB, 0.95}, {WorkloadC, 1.0}}
	for _, c := range cases {
		g := NewGenerator(c.w, 1000, 9)
		reads := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if g.Next().Kind == OpRead {
				reads++
			}
		}
		got := float64(reads) / n
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("%s: read fraction %.3f, want %.2f", c.w.Name, got, c.want)
		}
	}
}

func TestFNV64Distributes(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		h := FNV64(i)
		if seen[h] {
			t.Fatalf("FNV collision at %d", i)
		}
		seen[h] = true
	}
}

func TestZetaIncremental(t *testing.T) {
	// zeta is increasing and concave-ish in n.
	z10 := Zeta(10, 0.99)
	z100 := Zeta(100, 0.99)
	if z100 <= z10 {
		t.Fatal("zeta not increasing")
	}
	if Zeta(2, 0.99) <= 1 {
		t.Fatal("zeta(2) must exceed 1")
	}
}

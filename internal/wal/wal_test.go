package wal

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openMem(t *testing.T, fs FS, opts Options) (*Log, *Recovered) {
	t.Helper()
	opts.FS = fs
	if opts.Dir == "" {
		opts.Dir = "db"
	}
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func appendCommit(t *testing.T, l *Log, gsn uint64, payload string) {
	t.Helper()
	if err := l.Append(gsn, []byte(payload)); err != nil {
		t.Fatalf("Append(%d): %v", gsn, err)
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit(%d): %v", gsn, err)
	}
}

// TestRoundTrip: appended records come back in GSN order across segments.
func TestRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l, rec := openMem(t, fs, Options{SegmentBytes: 64}) // tiny: force rotations
	if rec.MaxGSN != 0 || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	// Deliberately out-of-order GSNs: per-shard commit order is only
	// locally monotone, recovery must sort globally.
	gsns := []uint64{2, 1, 5, 3, 4, 9, 7, 6, 8, 10}
	for _, g := range gsns {
		appendCommit(t, l, g, fmt.Sprintf("v%d", g))
	}
	if st := l.Stat(); st.Segments < 2 {
		t.Fatalf("expected rotations at SegmentBytes=64, got %d segments", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec := openMem(t, fs, Options{SegmentBytes: 64})
	defer l2.Close()
	if rec.MaxGSN != 10 {
		t.Fatalf("MaxGSN = %d, want 10", rec.MaxGSN)
	}
	if len(rec.Records) != len(gsns) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(gsns))
	}
	for i, r := range rec.Records {
		want := uint64(i + 1)
		if r.GSN != want || string(r.Payload) != fmt.Sprintf("v%d", want) {
			t.Fatalf("record %d = (%d, %q)", i, r.GSN, r.Payload)
		}
	}
}

// TestTornTail: unsynced bytes left by a crash are truncated, synced
// records survive.
func TestTornTail(t *testing.T) {
	for torn := 0; torn < 24; torn++ {
		fs := NewMemFS()
		l, _ := openMem(t, fs, Options{})
		appendCommit(t, l, 1, "acked")
		// Appended but never committed: may tear.
		if err := l.Append(2, []byte("unacked")); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Sync(); err != nil { // flush to the file...
			t.Fatalf("Sync: %v", err)
		}
		fs.Crash(torn) // ...but torn tails model partial page flushes

		_, rec, err := Open(Options{Dir: "db", FS: fs})
		if err != nil {
			t.Fatalf("torn=%d: Open: %v", torn, err)
		}
		if len(rec.Records) < 1 || string(rec.Records[0].Payload) != "acked" {
			t.Fatalf("torn=%d: acked record lost: %+v", torn, rec.Records)
		}
		for _, r := range rec.Records[1:] {
			if string(r.Payload) != "unacked" {
				t.Fatalf("torn=%d: phantom record %q", torn, r.Payload)
			}
		}
	}
}

// TestTornTailMidFrame corrupts synced bytes' tail directly: only the
// valid prefix comes back.
func TestTornTailMidFrame(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{})
	appendCommit(t, l, 1, "first")
	appendCommit(t, l, 2, "second")
	l.Close()

	// Chop bytes off the tail of the (single) segment one at a time.
	name := filepath.Join("db", segName(1))
	fs.mu.Lock()
	full := append([]byte(nil), fs.files[name].data...)
	fs.mu.Unlock()
	for cut := len(full) - 1; cut > len(segMagic); cut-- {
		fs.mu.Lock()
		fs.files[name].data = append([]byte(nil), full[:cut]...)
		fs.files[name].synced = cut
		fs.mu.Unlock()
		l2, rec, err := Open(Options{Dir: "db", FS: fs})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		l2.Close()
		for _, r := range rec.Records {
			want := "first"
			if r.GSN == 2 {
				want = "second"
			}
			if string(r.Payload) != want {
				t.Fatalf("cut=%d: record %d = %q", cut, r.GSN, r.Payload)
			}
		}
		// Clean up the fresh segments Open created so the next iteration
		// sees only the corrupted one.
		names, _ := fs.ReadDir("db")
		for _, n := range names {
			if n != segName(1) {
				fs.Remove(filepath.Join("db", n))
			}
		}
	}
}

// TestRecoverAfterHeaderTornCrash: a crash between segment creation and
// its first fsync leaves a durable zero/partial-header segment.  Recovery
// must remove it — keeping a truncated-to-empty segment bricked every
// later Open with "torn frame in non-final segment" once a new segment
// was created after it.
func TestRecoverAfterHeaderTornCrash(t *testing.T) {
	for torn := 0; torn <= len(segMagic); torn++ {
		fs := NewMemFS()
		openMem(t, fs, Options{}) // creates seg-1: entry SyncDir'd, header never fsynced
		fs.Crash(torn)            // durable entry, 0..len(segMagic) header bytes

		l, _ := openMem(t, fs, Options{}) // recovery #1 must clean up, not truncate-to-empty
		appendCommit(t, l, 1, "v1")
		if err := l.Close(); err != nil {
			t.Fatalf("torn=%d: Close: %v", torn, err)
		}

		l2, rec := openMem(t, fs, Options{}) // the review's bricked Open
		l2.Close()
		if len(rec.Records) != 1 || rec.Records[0].GSN != 1 || string(rec.Records[0].Payload) != "v1" {
			t.Fatalf("torn=%d: acked record lost after headerless-segment cleanup: %+v", torn, rec.Records)
		}
	}
}

// TestEmptyNonFinalSegmentTolerated: a header-sized-or-smaller non-final
// segment (a headerless-segment removal that did not survive a power cut)
// is cleaned up, while a larger magic-less non-final segment is real
// corruption and still fails Open.
func TestEmptyNonFinalSegmentTolerated(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{})
	appendCommit(t, l, 1, "v1")
	l.Close()

	// Plant an empty durable segment below the real one.
	empty := filepath.Join("db", segName(0))
	if f, err := fs.Create(empty); err != nil {
		t.Fatalf("Create: %v", err)
	} else {
		f.Close()
	}
	fs.SyncDir("db")

	l2, rec := openMem(t, fs, Options{})
	l2.Close()
	if len(rec.Records) != 1 || string(rec.Records[0].Payload) != "v1" {
		t.Fatalf("records after empty-segment cleanup: %+v", rec.Records)
	}
	if names, _ := fs.ReadDir("db"); func() bool {
		for _, n := range names {
			if n == segName(0) {
				return true
			}
		}
		return false
	}() {
		t.Fatalf("empty segment not removed: %v", names)
	}

	// A magic-less non-final segment LARGER than the header cannot be a
	// creation artifact: Open must refuse it.
	if f, err := fs.Create(empty); err != nil {
		t.Fatalf("Create: %v", err)
	} else {
		f.Write([]byte("garbage-not-magic")) //nolint:errcheck
		f.Sync()                             //nolint:errcheck
		f.Close()
	}
	fs.SyncDir("db")
	if _, _, err := Open(Options{Dir: "db", FS: fs}); err == nil {
		t.Fatal("Open accepted a corrupt non-final segment")
	}
	fs.Remove(empty)
}

// snapFailFS fails reads of one file by name; FaultFS deliberately never
// injects on the read side, so snapshot I/O errors need their own shim.
type snapFailFS struct {
	FS
	base string
}

func (f snapFailFS) Open(name string) (File, error) {
	if filepath.Base(name) == f.base {
		return nil, errors.New("injected read failure")
	}
	return f.FS.Open(name)
}

// TestSnapshotReadErrorFailsOpen: an I/O error reading the newest
// snapshot must fail Open — deleting it as "invalid" would silently lose
// every acked write it covers, since the checkpoint already retired the
// segments (and older snapshot) below its cut.
func TestSnapshotReadErrorFailsOpen(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{})
	appendCommit(t, l, 7, "v7")
	if err := l.Checkpoint(7, []byte("snap@7")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	l.Close()

	snap := snapName(1)
	if _, _, err := Open(Options{Dir: "db", FS: snapFailFS{FS: fs, base: snap}}); err == nil {
		t.Fatal("Open succeeded despite unreadable snapshot")
	}
	names, _ := fs.ReadDir("db")
	present := false
	for _, n := range names {
		if n == snap {
			present = true
		}
	}
	if !present {
		t.Fatalf("snapshot deleted after transient read error: %v", names)
	}

	// The error really was transient: a plain reopen recovers the cut.
	_, rec, err := Open(Options{Dir: "db", FS: fs})
	if err != nil {
		t.Fatalf("Open after transient error: %v", err)
	}
	if rec.SnapshotCut != 7 || string(rec.Snapshot) != "snap@7" {
		t.Fatalf("snapshot = (%d, %q)", rec.SnapshotCut, rec.Snapshot)
	}
}

// TestCheckpointRetires: a checkpoint removes superseded segments and
// snapshots, and recovery starts from the snapshot.
func TestCheckpointRetires(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{SegmentBytes: 64})
	for g := uint64(1); g <= 8; g++ {
		appendCommit(t, l, g, fmt.Sprintf("v%d", g))
	}
	if err := l.Checkpoint(6, []byte("snap@6")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for g := uint64(9); g <= 10; g++ {
		appendCommit(t, l, g, fmt.Sprintf("v%d", g))
	}
	if err := l.Checkpoint(8, []byte("snap@8")); err != nil {
		t.Fatalf("Checkpoint 2: %v", err)
	}
	l.Close()

	names, _ := fs.ReadDir("db")
	snaps := 0
	for _, n := range names {
		if _, ok := parseName(n, "ck-", ".snap"); ok {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("want 1 snapshot after second checkpoint, dir: %v", names)
	}

	_, rec, err := Open(Options{Dir: "db", FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rec.SnapshotCut != 8 || string(rec.Snapshot) != "snap@8" {
		t.Fatalf("snapshot = (%d, %q)", rec.SnapshotCut, rec.Snapshot)
	}
	for _, r := range rec.Records {
		if r.GSN <= 8 {
			t.Fatalf("record %d not filtered by cut", r.GSN)
		}
	}
	if rec.MaxGSN != 10 {
		t.Fatalf("MaxGSN = %d", rec.MaxGSN)
	}
}

// TestSnapshotOnly: recovery from a checkpoint with no later records
// still reports the cut as MaxGSN (the GSN counter must resume above it).
func TestSnapshotOnly(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{})
	appendCommit(t, l, 41, "x")
	if err := l.Checkpoint(41, []byte("snap")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	l.Close()
	_, rec, err := Open(Options{Dir: "db", FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rec.MaxGSN != 41 || len(rec.Records) != 0 {
		t.Fatalf("rec = %+v", rec)
	}
}

// TestWALFull: MaxBytes rejects appends without poisoning the log, and a
// checkpoint that retires segments clears the condition.
func TestWALFull(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{SegmentBytes: 64, MaxBytes: 256})
	var g uint64
	for {
		g++
		err := l.Append(g, bytes.Repeat([]byte("x"), 16))
		if errors.Is(err, ErrWALFull) {
			break
		}
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := l.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if g > 100 {
			t.Fatal("MaxBytes never enforced")
		}
	}
	if err := l.Err(); err != nil {
		t.Fatalf("ErrWALFull must not be sticky, got %v", err)
	}
	if err := l.Checkpoint(g, []byte("snap")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := l.Append(g+1, []byte("after")); err != nil {
		t.Fatalf("Append after checkpoint: %v", err)
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit after checkpoint: %v", err)
	}
	l.Close()
}

// TestStickyError: an fsync failure poisons the log; later appends and
// commits fail fast.
func TestStickyError(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l, _ := openMem(t, ffs, Options{})
	appendCommit(t, l, 1, "ok")
	ffs.Script(ffs.Ops()+2, FaultErr) // next op is the append's Write, then its Sync
	if err := l.Append(2, []byte("doomed")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Commit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Commit = %v, want injected", err)
	}
	if err := l.Append(3, []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append after poison = %v", err)
	}
	if err := l.Err(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Err = %v", err)
	}
}

// TestGroupCommit: concurrent committers all return with their records
// durable; under -race this also exercises the leader/follower protocol.
func TestGroupCommit(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{})
	const writers, each = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				gsn := uint64(w*each + i + 1)
				if err := l.Append(gsn, []byte{byte(w)}); err != nil {
					errs <- err
					return
				}
				if err := l.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("writer: %v", err)
	}
	st := l.Stat()
	if st.Synced != st.Appended {
		t.Fatalf("synced %d < appended %d after all commits", st.Synced, st.Appended)
	}
	l.Close()
	_, rec, err := Open(Options{Dir: "db", FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(rec.Records) != writers*each {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), writers*each)
	}
}

// TestLogCrashMatrix: crash at every write-side operation of a fixed
// workload; every committed record must survive, every surviving record
// must be one that was at least appended.
func TestLogCrashMatrix(t *testing.T) {
	// Dry run to learn the op count.
	workload := func(ffs *FaultFS) (acked []uint64, attempted []uint64) {
		l, _, err := Open(Options{Dir: "db", FS: ffs, SegmentBytes: 96})
		if err != nil {
			return nil, nil
		}
		defer l.Close()
		for g := uint64(1); g <= 12; g++ {
			if g == 7 {
				// Mid-workload checkpoint covering the first half.
				l.Checkpoint(4, []byte("snap@4")) //nolint:errcheck
			}
			attempted = append(attempted, g)
			if l.Append(g, []byte(fmt.Sprintf("v%d", g))) != nil {
				continue
			}
			if l.Commit() == nil {
				acked = append(acked, g)
			}
		}
		return acked, attempted
	}
	dry := NewFaultFS(NewMemFS())
	workload(dry)
	n := dry.Ops()
	if n < 20 {
		t.Fatalf("workload too small to be interesting: %d ops", n)
	}

	for op := 1; op <= n; op++ {
		for _, torn := range []int{0, 3} {
			mem := NewMemFS()
			ffs := NewFaultFS(mem)
			ffs.SetTorn(torn)
			ffs.Script(op, FaultCrash)
			acked, _ := workload(ffs)

			l1, rec, err := Open(Options{Dir: "db", FS: mem})
			if err != nil {
				t.Fatalf("op=%d torn=%d: recovery failed: %v", op, torn, err)
			}
			got := make(map[uint64]bool)
			if rec.Snapshot != nil {
				if string(rec.Snapshot) != "snap@4" {
					t.Fatalf("op=%d: bad snapshot %q", op, rec.Snapshot)
				}
				for g := uint64(1); g <= 4; g++ {
					got[g] = true
				}
			}
			for _, r := range rec.Records {
				if want := fmt.Sprintf("v%d", r.GSN); string(r.Payload) != want {
					t.Fatalf("op=%d torn=%d: record %d corrupt: %q", op, torn, r.GSN, r.Payload)
				}
				got[r.GSN] = true
			}
			for _, g := range acked {
				if !got[g] {
					t.Fatalf("op=%d torn=%d: acked record %d lost (have %v)", op, torn, g, got)
				}
			}
			if len(got) > 12 {
				t.Fatalf("op=%d torn=%d: phantom records: %v", op, torn, got)
			}
			// Recovery must leave a log that survives a full clean cycle:
			// append, close, reopen (regression for the headerless-segment
			// state that bricked every Open after recovery #1).
			if err := l1.Append(99, []byte("v99")); err != nil {
				t.Fatalf("op=%d torn=%d: append after recovery: %v", op, torn, err)
			}
			if err := l1.Commit(); err != nil {
				t.Fatalf("op=%d torn=%d: commit after recovery: %v", op, torn, err)
			}
			if err := l1.Close(); err != nil {
				t.Fatalf("op=%d torn=%d: close after recovery: %v", op, torn, err)
			}
			l2, rec2, err := Open(Options{Dir: "db", FS: mem})
			if err != nil {
				t.Fatalf("op=%d torn=%d: second recovery failed: %v", op, torn, err)
			}
			l2.Close()
			got2 := make(map[uint64]bool)
			if rec2.Snapshot != nil {
				for g := uint64(1); g <= 4; g++ {
					got2[g] = true
				}
			}
			for _, r := range rec2.Records {
				got2[r.GSN] = true
			}
			for _, g := range append(append([]uint64(nil), acked...), 99) {
				if !got2[g] {
					t.Fatalf("op=%d torn=%d: record %d lost across second recovery (have %v)", op, torn, g, got2)
				}
			}
		}
	}
}

// TestShortWrite: a short write is poisonous but recovery still sees the
// previously synced prefix.
func TestShortWrite(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l, _ := openMem(t, ffs, Options{})
	appendCommit(t, l, 1, "good")
	ffs.Script(ffs.Ops()+1, FaultShortWrite)
	if err := l.Append(2, []byte("short")); err == nil {
		if err := l.Commit(); err == nil {
			t.Fatal("short write went unnoticed")
		}
	}
	_, rec, err := Open(Options{Dir: "db", FS: mem})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	found := false
	for _, r := range rec.Records {
		if r.GSN == 1 && string(r.Payload) == "good" {
			found = true
		}
	}
	if !found {
		t.Fatalf("synced record lost after short write: %+v", rec.Records)
	}
}

// TestParsePolicy covers the flag spellings.
func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"": FsyncAlways, "always": FsyncAlways, "interval": FsyncInterval, "off": FsyncOff} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

// TestPolicies: interval and off ack immediately; Close syncs both.
func TestPolicies(t *testing.T) {
	for _, pol := range []Policy{FsyncInterval, FsyncOff} {
		fs := NewMemFS()
		l, _ := openMem(t, fs, Options{Policy: pol, Interval: time.Hour})
		for g := uint64(1); g <= 5; g++ {
			appendCommit(t, l, g, "v")
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		fs.Crash(0) // Close must have synced everything
		_, rec, err := Open(Options{Dir: "db", FS: fs})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if len(rec.Records) != 5 {
			t.Fatalf("policy %v: %d records survived Close, want 5", pol, len(rec.Records))
		}
	}
}

// TestIntervalLatencyBound: FsyncInterval is a group-commit latency bound,
// not a fixed ticker.  A record becomes durable within roughly Interval of
// its append without any Commit-side fsync, and an idle log performs no
// fsyncs at all — the previous ticker implementation fsynced every
// Interval forever whether or not anything was appended.
func TestIntervalLatencyBound(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{Policy: FsyncInterval, Interval: 10 * time.Millisecond})
	defer l.Close()

	waitSynced := func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			st := l.Stat()
			if st.Synced >= st.Appended {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("record still unsynced long past the latency bound: %+v", st)
			}
			time.Sleep(time.Millisecond)
		}
	}

	appendCommit(t, l, 1, "v1") // Commit is a no-op under FsyncInterval
	waitSynced()

	// Idle: nothing unsynced, so the armed deadline never fires and the
	// fsync count must stay put across many would-be ticker periods.
	base := fs.Syncs()
	time.Sleep(100 * time.Millisecond)
	if got := fs.Syncs(); got != base {
		t.Fatalf("idle log fsynced %d times (fixed-ticker behavior); want 0", got-base)
	}

	// A fresh append re-arms the deadline and is synced within the bound.
	appendCommit(t, l, 2, "v2")
	waitSynced()
	if fs.Syncs() == base {
		t.Fatal("new unsynced record never triggered an fsync")
	}
}

// TestCloseIdempotent: double Close is a no-op.
func TestCloseIdempotent(t *testing.T) {
	l, _ := openMem(t, NewMemFS(), Options{})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append(1, []byte("x")); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("Append after Close = %v", err)
	}
}

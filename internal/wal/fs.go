// Package wal is a segmented, CRC-framed, GSN-ordered redo log with
// group commit and snapshot checkpoints.
//
// The log stores opaque payloads keyed by the shard layer's global
// sequence numbers (GSNs): every committed write transaction appends one
// record stamped with its commit GSN, and recovery replays records in
// ascending GSN order on top of the newest valid checkpoint snapshot.
// Durability is group-commit shaped: Append buffers, Commit fsyncs once
// for every record appended so far, so the batch combiner's N-writes-one-
// commit gathering turns into N-writes-one-fsync (see internal/batch and
// DESIGN.md "Durability").
//
// All file I/O goes through the FS interface so tests can run the whole
// stack against MemFS (an in-memory filesystem with a power-cut model)
// wrapped in FaultFS (a failpoint injector producing short writes, fsync
// errors, and hard crashes at any chosen operation).
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the slice of filesystem the log needs.  OsFS implements it over
// the real filesystem; MemFS implements it in memory with simulated
// power cuts; FaultFS wraps either with fault injection.
type FS interface {
	// Create truncates-or-creates the named file for writing.
	Create(name string) (File, error)
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// ReadDir lists the base names of the directory's entries.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(dir string) error
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's file.  The new
	// directory entry is only crash-durable after SyncDir.
	Rename(oldname, newname string) error
	// Truncate shortens the named file to size bytes.
	Truncate(name string, size int64) error
	// SyncDir makes the directory's entries (creates, renames) durable.
	SyncDir(dir string) error
}

// File is the read/write handle surface the log uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync makes all written bytes durable.
	Sync() error
}

// OsFS is the real filesystem.
type OsFS struct{}

func (OsFS) Create(name string) (File, error) { return os.Create(name) }
func (OsFS) Open(name string) (File, error)   { return os.Open(name) }

func (OsFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (OsFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }
func (OsFS) Remove(name string) error             { return os.Remove(name) }
func (OsFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (OsFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}

func (OsFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// MemFS is an in-memory FS with a power-cut model:
//
//   - each file tracks its synced prefix (bytes made durable by Sync);
//   - directory entries created or renamed-in since the last SyncDir are
//     pending: a crash removes them entirely;
//   - Crash(torn) truncates every surviving file to its synced prefix
//     plus up to torn unsynced bytes (simulating a partially flushed OS
//     write cache) and drops pending entries.
//
// Deliberate simplifications, each conservative (MemFS loses at least as
// much as a real power cut can): Remove and Truncate are durable
// immediately, and a Rename makes the removal of the old name durable
// immediately while the new name stays pending until SyncDir.  Recovery
// must therefore cope with e.g. a checkpoint rename that lost both the
// temp file and the final name.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	syncs int
}

// Syncs reports how many file fsyncs have been performed, so tests can
// assert fsync *scheduling* (e.g. an idle FsyncInterval log must not
// fsync at all), not just durability outcomes.
func (fs *MemFS) Syncs() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncs
}

type memFile struct {
	data    []byte
	synced  int  // durable prefix length
	durable bool // directory entry survives a crash (SyncDir'd)
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

// Crash simulates a power cut: pending directory entries vanish and every
// surviving file keeps its synced prefix plus at most torn unsynced bytes.
func (fs *MemFS) Crash(torn int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for name, f := range fs.files {
		if !f.durable {
			delete(fs.files, name)
			continue
		}
		keep := f.synced + torn
		if keep > len(f.data) {
			keep = len(f.data)
		}
		if keep < f.synced {
			keep = f.synced
		}
		f.data = f.data[:keep]
		if f.synced > len(f.data) {
			f.synced = len(f.data)
		}
	}
}

func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &memFile{}
	fs.files[name] = f
	return &memHandle{fs: fs, name: name, write: true}, nil
}

func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memHandle{fs: fs, name: name}, nil
}

func (fs *MemFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	prefix := dir + string(filepath.Separator)
	var names []string
	for name := range fs.files {
		if filepath.Dir(name) == dir {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (fs *MemFS) MkdirAll(string) error { return nil }

func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.files, name)
	return nil
}

func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(fs.files, oldname)
	f.durable = false // the new entry needs a SyncDir to survive a crash
	fs.files[newname] = f
	return nil
}

func (fs *MemFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("truncate %s: size %d out of range", name, size)
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

func (fs *MemFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for name, f := range fs.files {
		if filepath.Dir(name) == dir {
			f.durable = true
		}
	}
	return nil
}

// memHandle is one open descriptor; reads have their own offset, writes
// always append (the log never seeks).
type memHandle struct {
	fs    *MemFS
	name  string
	off   int
	write bool
}

var errMemClosed = errors.New("memfs: file deleted under open handle")

func (h *memHandle) file() (*memFile, error) {
	f, ok := h.fs.files[h.name]
	if !ok {
		return nil, errMemClosed
	}
	return f, nil
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	if h.off >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[h.off:])
	h.off += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if !h.write {
		return 0, errors.New("memfs: file not open for writing")
	}
	f, err := h.file()
	if err != nil {
		return 0, err
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f, err := h.file()
	if err != nil {
		return err
	}
	h.fs.syncs++
	f.synced = len(f.data)
	return nil
}

func (h *memHandle) Close() error { return nil }

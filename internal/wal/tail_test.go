package wal

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// drainTailer collects records with non-blocking Next until the tailer is
// caught up.
func drainTailer(t *testing.T, tl *Tailer) []Record {
	t.Helper()
	var out []Record
	for {
		recs, err := tl.Next(false)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if len(recs) == 0 {
			return out
		}
		out = append(out, recs...)
	}
}

func gsns(recs []Record) []uint64 {
	out := make([]uint64, len(recs))
	for i, r := range recs {
		out[i] = r.GSN
	}
	return out
}

// TestTailStream: a tailer sees every committed record in log-append
// order, across segment seals, and never sees bytes that are not yet
// durable.
func TestTailStream(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{SegmentBytes: 64, Policy: FsyncOff})
	defer l.Close()

	tl, err := l.Tail(0, 0)
	if err != nil {
		t.Fatalf("Tail: %v", err)
	}
	defer tl.Close()

	// FsyncOff: records buffered in the (never-sealed, never-synced)
	// current segment must not be shipped by a non-blocking Next.
	// (Records in SEALED segments are durable regardless of policy —
	// sealing syncs before closing the file.)
	if err := l.Append(1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if recs, err := tl.Next(false); err != nil || len(recs) != 0 {
		t.Fatalf("undurable records shipped: %v, %v", gsns(recs), err)
	}
	for g := uint64(2); g <= 10; g++ {
		if err := l.Append(g, []byte(fmt.Sprintf("v%d", g))); err != nil {
			t.Fatalf("Append(%d): %v", g, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got := drainTailer(t, tl)
	if len(got) != 10 {
		t.Fatalf("drained %v, want 1..10", gsns(got))
	}
	for i, r := range got {
		if r.GSN != uint64(i+1) || string(r.Payload) != fmt.Sprintf("v%d", r.GSN) {
			t.Fatalf("record %d = gsn %d payload %q", i, r.GSN, r.Payload)
		}
	}
	if st := l.Stat(); st.Segments < 2 {
		t.Fatalf("expected seals at SegmentBytes=64, got %d segments", st.Segments)
	}
}

// TestTailResume: Tail(afterGSN) continues exactly after the given
// record; an unknown afterGSN is a truncation.
func TestTailResume(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{SegmentBytes: 64})
	defer l.Close()
	for g := uint64(1); g <= 8; g++ {
		appendCommit(t, l, g, fmt.Sprintf("v%d", g))
	}

	tl, err := l.Tail(5, 0)
	if err != nil {
		t.Fatalf("Tail(5): %v", err)
	}
	if got := gsns(drainTailer(t, tl)); len(got) != 3 || got[0] != 6 || got[2] != 8 {
		t.Fatalf("resume after 5 yielded %v, want [6 7 8]", got)
	}
	tl.Close()

	// Resuming at the newest record yields nothing (caught up).
	tl, err = l.Tail(8, 0)
	if err != nil {
		t.Fatalf("Tail(8): %v", err)
	}
	if got := drainTailer(t, tl); len(got) != 0 {
		t.Fatalf("resume at tip yielded %v", gsns(got))
	}
	tl.Close()

	if _, err := l.Tail(99, 0); !errors.Is(err, ErrTailTruncated) {
		t.Fatalf("Tail(unknown GSN) = %v, want ErrTailTruncated", err)
	}
}

// TestTailBlockingWake: a Next(wait=true) blocked at the durable tip is
// woken by a later Append and ships it even under FsyncOff (the tailer
// forces the sync itself).
func TestTailBlockingWake(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{Policy: FsyncOff})
	defer l.Close()
	tl, err := l.Tail(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	type result struct {
		recs []Record
		err  error
	}
	done := make(chan result, 1)
	go func() {
		recs, err := tl.Next(true)
		done <- result{recs, err}
	}()
	select {
	case r := <-done:
		t.Fatalf("Next returned early: %v %v", gsns(r.recs), r.err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := l.Append(7, []byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil || len(r.recs) != 1 || r.recs[0].GSN != 7 {
			t.Fatalf("woken Next = %v, %v", gsns(r.recs), r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never woke after Append")
	}
}

// TestTailerCloseWakes: Close from another goroutine unblocks a waiting
// Next with ErrTailerClosed.
func TestTailerCloseWakes(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{})
	defer l.Close()
	tl, err := l.Tail(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tl.Next(true)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	tl.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTailerClosed) {
			t.Fatalf("Next after Close = %v, want ErrTailerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never woke after Close")
	}
}

// TestTailTruncatedBootstrap: a checkpoint strands tailers without floor
// coverage; LatestSnapshot + TailSnapshot is the recovery path, and a
// stale cut is rejected so a bootstrapping consumer can never apply a
// snapshot it cannot tail from.
func TestTailTruncatedBootstrap(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{SegmentBytes: 64})
	defer l.Close()
	for g := uint64(1); g <= 8; g++ {
		appendCommit(t, l, g, fmt.Sprintf("v%d", g))
	}
	if err := l.Checkpoint(8, []byte("snap-8")); err != nil {
		t.Fatal(err)
	}

	// Without floor coverage the earliest retained byte is useless.
	if _, err := l.Tail(0, 0); !errors.Is(err, ErrTailTruncated) {
		t.Fatalf("Tail(0, 0) past a checkpoint = %v, want ErrTailTruncated", err)
	}
	cut, payload, ok, err := l.LatestSnapshot()
	if err != nil || !ok || cut != 8 || string(payload) != "snap-8" {
		t.Fatalf("LatestSnapshot = (%d, %q, %v, %v)", cut, payload, ok, err)
	}
	tl, err := l.TailSnapshot(cut)
	if err != nil {
		t.Fatalf("TailSnapshot: %v", err)
	}
	appendCommit(t, l, 9, "v9")
	var after []Record
	for _, r := range drainTailer(t, tl) {
		if r.GSN > cut {
			after = append(after, r)
		}
	}
	if len(after) != 1 || after[0].GSN != 9 {
		t.Fatalf("post-bootstrap stream = %v, want [9]", gsns(after))
	}
	tl.Close()

	// A superseding checkpoint invalidates the older cut.
	if err := l.Checkpoint(9, []byte("snap-9")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.TailSnapshot(8); !errors.Is(err, ErrTailTruncated) {
		t.Fatalf("TailSnapshot(stale cut) = %v, want ErrTailTruncated", err)
	}
}

// TestTailGapJumpFloor: retirement is per-segment by max GSN, so a
// middle segment can vanish while its neighbours stay.  A tailer whose
// floor covers the checkpoint cut jumps the gap (the retired records
// were all below the cut); one without coverage must re-bootstrap.
func TestTailGapJumpFloor(t *testing.T) {
	fs := NewMemFS()
	// SegmentBytes 1: every record seals the previous segment.
	l, _ := openMem(t, fs, Options{SegmentBytes: 1})
	defer l.Close()
	appendCommit(t, l, 2, "v2") // seg 1
	appendCommit(t, l, 1, "v1") // seg 2
	appendCommit(t, l, 3, "v3") // seg 3 (current)

	// Retires seg 2 only (maxGSN 1 <= cut); seg 1 (maxGSN 2) stays.
	if err := l.Checkpoint(1, []byte("snap-1")); err != nil {
		t.Fatal(err)
	}

	if _, err := l.Tail(0, 0); !errors.Is(err, ErrTailTruncated) {
		t.Fatalf("floorless Tail across a gap = %v, want ErrTailTruncated", err)
	}
	tl, err := l.Tail(0, 1)
	if err != nil {
		t.Fatalf("Tail(0, floor=1): %v", err)
	}
	defer tl.Close()
	if got := gsns(drainTailer(t, tl)); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("gap-jump stream = %v, want [2 3]", got)
	}
}

// TestTailMidStreamRetirement: a checkpoint that retires the segment a
// tailer is parked in (floor not covering) surfaces as ErrTailTruncated,
// not silent record loss.
func TestTailMidStreamRetirement(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{SegmentBytes: 1})
	defer l.Close()
	appendCommit(t, l, 1, "v1") // seg 1
	appendCommit(t, l, 2, "v2") // seg 2
	appendCommit(t, l, 3, "v3") // seg 3 (current)

	tl, err := l.Tail(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	// Park the tailer inside seg 1 by draining nothing yet, then retire
	// seg 1 and 2 out from under it.
	if err := l.Checkpoint(2, []byte("snap-2")); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Next(false); !errors.Is(err, ErrTailTruncated) {
		t.Fatalf("Next after retirement = %v, want ErrTailTruncated", err)
	}
}

// TestTailLogClose: a tailer at the tip of a closed log gets
// ErrLogClosed after the final durable byte.
func TestTailLogClose(t *testing.T) {
	fs := NewMemFS()
	l, _ := openMem(t, fs, Options{})
	appendCommit(t, l, 1, "v1")
	tl, err := l.Tail(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if got := gsns(drainTailer(t, tl)); len(got) != 1 || got[0] != 1 {
		t.Fatalf("pre-close stream = %v", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Next(true); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("Next on closed log = %v, want ErrLogClosed", err)
	}
}

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sync"
	"time"
)

// Policy selects when appended records are fsynced.
type Policy int

const (
	// FsyncAlways syncs on every Commit: an acked write is a durable
	// write.  This is the only policy under which the recovery matrix
	// asserts acked-write survival.
	FsyncAlways Policy = iota
	// FsyncInterval bounds group-commit latency instead of syncing every
	// Commit: the background syncer fsyncs once the oldest unsynced
	// record has waited Interval (MaxLatency-style, not a fixed ticker —
	// an idle log never fsyncs).  Commit returns immediately, so a crash
	// can lose up to Interval (plus one fsync) of acked writes.
	FsyncInterval
	// FsyncOff never syncs except on Close.
	FsyncOff
)

// ParsePolicy maps the -wal-fsync flag spellings onto policies.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

// Options configures a Log.
type Options struct {
	// Dir holds the segments and snapshots.  Created if missing.
	Dir string
	// FS defaults to the real filesystem (OsFS).
	FS FS
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds it (default 64 MiB).
	SegmentBytes int64
	// MaxBytes, when non-zero, bounds the log's live bytes (sealed
	// segments plus the current one): Append fails with ErrWALFull
	// beyond it until a checkpoint retires segments.  The bound is
	// soft — a record in flight may overshoot it by one record.
	MaxBytes int64
	// Policy is the fsync policy (default FsyncAlways).
	Policy Policy
	// Interval is the FsyncInterval latency bound: the longest any
	// appended record waits before the background syncer fsyncs it
	// (default 50 ms).
	Interval time.Duration
}

// ErrWALFull is returned by Append when MaxBytes is exceeded.  It is not
// sticky: a checkpoint that retires segments makes Append usable again.
var ErrWALFull = errors.New("wal: log full (checkpoint to retire segments)")

// ErrLogClosed is returned by operations on a closed Log.
var ErrLogClosed = errors.New("wal: log closed")

const (
	segMagic  = "MVWAL001"
	snapMagic = "MVCKPT01"
	// frameHeader is u32 body length + u32 CRC-32C of the body.
	frameHeader = 8
	// maxRecordBytes bounds a single record body; recovery treats a
	// larger length field as a torn frame.
	maxRecordBytes = 1 << 30
	// flushThreshold flushes the append buffer to the file (without
	// syncing) once it grows past this, bounding memory under FsyncOff.
	flushThreshold = 256 << 10
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segInfo describes a sealed (closed, fully synced) segment.
type segInfo struct {
	seq    uint64
	name   string
	maxGSN uint64 // highest record GSN inside; 0 when empty
	size   int64
}

// Log is the write side of the WAL.  Append buffers a framed record;
// Commit group-syncs everything appended so far — concurrent committers
// elect one fsync leader and the rest ride its barrier, so a burst of
// batches costs one fsync, not one per batch.
type Log struct {
	fs   FS
	dir  string
	opts Options

	mu        sync.Mutex // file state; never acquired while holding syncMu
	cur       File
	curName   string
	curSeq    uint64
	curSize   int64 // bytes appended to the current segment (incl. header)
	curMaxGSN uint64
	buf       []byte // framed records not yet written to cur
	appended  int64  // logical watermark: total framed bytes ever appended
	sealed    []segInfo
	liveBytes int64
	snapSeq   uint64
	snapCut   uint64 // GSN the newest durable snapshot covers; 0 when none
	err       error  // sticky: the log is unusable after an I/O failure
	closed    bool

	// curDurable is the current segment's durable prefix in bytes: 0 until
	// its first fsync, l.curSize after every successful flushAndSync.
	// Sealed segments are fully durable (sealing syncs before closing), so
	// this single watermark plus the sealed sizes define exactly the byte
	// range a Tailer may ship — a shipped record is never one a crash on
	// this log could un-happen.
	curDurable int64
	// tailCond (on mu) wakes Tailers when their window can move: durable
	// bytes grew, a segment sealed, a checkpoint retired segments, new
	// records were appended (so a waiting tailer can force a sync), or the
	// log closed.  tailWaiters gates the broadcasts so the common no-tailer
	// path pays one integer check.
	tailCond    sync.Cond
	tailWaiters int

	syncMu   sync.Mutex
	syncCond sync.Cond
	synced   int64 // watermark: appended bytes known durable
	syncing  bool  // a leader is inside flushAndSync

	ckptMu sync.Mutex // single-flight checkpoints

	// FsyncInterval deadline state (under mu): armed is set by the first
	// Append past the synced watermark and cleared by the background
	// syncer just before it syncs, so the oldest unsynced record waits at
	// most Interval plus one fsync.  armCh (capacity 1) kicks the syncer.
	armed    bool
	armedAt  time.Time
	armCh    chan struct{}
	stopTick chan struct{}
	tickDone chan struct{}
}

func segName(seq uint64) string  { return fmt.Sprintf("seg-%08d.wal", seq) }
func snapName(seq uint64) string { return fmt.Sprintf("ck-%08d.snap", seq) }

const snapTmpName = "ck.tmp"

// Create opens a Log in dir, recovering any existing state; see Open for
// the recovery contract.  Most callers want Open (which also returns
// what was recovered); Create discards it.
func Create(opts Options) (*Log, error) {
	l, _, err := Open(opts)
	return l, err
}

// newSegmentLocked seals the current segment (if any) and starts the
// next one.  The seal syncs the old file before the new one exists, so
// a torn tail can only ever be in the highest-numbered segment; the
// SyncDir makes the new entry crash-durable before any record lands in
// it.
func (l *Log) newSegmentLocked() error {
	if l.cur != nil {
		if err := l.flushLocked(); err != nil {
			return err
		}
		if err := l.cur.Sync(); err != nil {
			l.err = fmt.Errorf("wal: seal %s: %w", l.curName, err)
			return l.err
		}
		if err := l.cur.Close(); err != nil {
			l.err = fmt.Errorf("wal: seal %s: %w", l.curName, err)
			return l.err
		}
		l.sealed = append(l.sealed, segInfo{seq: l.curSeq, name: l.curName, maxGSN: l.curMaxGSN, size: l.curSize})
		if l.tailWaiters > 0 {
			l.tailCond.Broadcast() // the sealed segment is fully durable
		}
	}
	seq := l.curSeq + 1
	name := filepath.Join(l.dir, segName(seq))
	f, err := l.fs.Create(name)
	if err != nil {
		l.err = fmt.Errorf("wal: create segment: %w", err)
		return l.err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		l.err = fmt.Errorf("wal: segment header: %w", err)
		return l.err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		l.err = fmt.Errorf("wal: sync dir: %w", err)
		return l.err
	}
	l.cur, l.curName, l.curSeq = f, name, seq
	l.curSize = int64(len(segMagic))
	l.curMaxGSN = 0
	l.curDurable = 0
	l.liveBytes += int64(len(segMagic))
	return nil
}

// flushLocked writes the append buffer to the current segment without
// syncing.  A failed or short write poisons the log: the file may now
// hold a partial frame that later appends would bury, so no further
// record can ever be acked from this Log.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	_, err := l.cur.Write(l.buf)
	if err != nil {
		l.err = fmt.Errorf("wal: write %s: %w", l.curName, err)
		return l.err
	}
	l.buf = l.buf[:0]
	return nil
}

// Append frames one record and buffers it.  It does not make the record
// durable — call Commit (typically once per gathered batch).  Append
// returns ErrWALFull when MaxBytes is exceeded and the sticky log error
// after any I/O failure.
func (l *Log) Append(gsn uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrLogClosed
	case l.err != nil:
		return l.err
	case len(payload)+8 > maxRecordBytes:
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	// curSize and liveBytes already count buffered-but-unflushed frames.
	frame := int64(frameHeader + 8 + len(payload))
	if l.opts.MaxBytes > 0 && l.liveBytes+frame > l.opts.MaxBytes {
		return ErrWALFull
	}
	if l.curSize+frame > l.opts.SegmentBytes && l.curSize > int64(len(segMagic)) {
		if err := l.newSegmentLocked(); err != nil {
			return err
		}
	}
	l.buf = appendFrame(l.buf, gsn, payload)
	l.appended += frame
	l.curSize += frame
	l.liveBytes += frame
	if gsn > l.curMaxGSN {
		l.curMaxGSN = gsn
	}
	// First unsynced record under FsyncInterval: arm the latency bound.
	// Later appends ride the existing deadline, so the OLDEST unsynced
	// record is what waits at most Interval.
	if l.opts.Policy == FsyncInterval && !l.armed {
		l.armed = true
		l.armedAt = time.Now()
		select {
		case l.armCh <- struct{}{}:
		default:
		}
	}
	if l.tailWaiters > 0 {
		// A caught-up Tailer waits for appends so it can force a sync and
		// ship under FsyncOff/Interval, where no Commit would ever wake it.
		l.tailCond.Broadcast()
	}
	if len(l.buf) >= flushThreshold {
		return l.flushLocked()
	}
	return nil
}

// appendFrame encodes one record: u32 body length, u32 CRC-32C of the
// body, body = u64 GSN + payload.
func appendFrame(dst []byte, gsn uint64, payload []byte) []byte {
	body := 8 + len(payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // CRC placeholder
	dst = binary.LittleEndian.AppendUint64(dst, gsn)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start+4:], crcTable)
	binary.LittleEndian.PutUint32(dst[start:], crc)
	return dst
}

// Commit makes every record appended so far durable under FsyncAlways
// (group commit: one leader fsyncs for all concurrent committers) and is
// a no-op returning only the sticky error under the other policies.
func (l *Log) Commit() error {
	l.mu.Lock()
	target := l.appended
	err := l.err
	closed := l.closed
	l.mu.Unlock()
	if err != nil {
		return err
	}
	if closed {
		return ErrLogClosed
	}
	if l.opts.Policy != FsyncAlways {
		return nil
	}
	return l.syncTo(target)
}

// Sync forces a flush+fsync regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.appended
	l.mu.Unlock()
	return l.syncTo(target)
}

// syncTo blocks until the durable watermark covers target.  One caller
// becomes the fsync leader; the rest wait on its barrier and re-elect if
// the watermark still falls short (e.g. records appended after the
// leader snapped its target).
func (l *Log) syncTo(target int64) error {
	l.syncMu.Lock()
	for {
		if l.synced >= target {
			l.syncMu.Unlock()
			return nil
		}
		if !l.syncing {
			break
		}
		l.syncCond.Wait()
	}
	l.syncing = true
	l.syncMu.Unlock()

	reached, err := l.flushAndSync()

	l.syncMu.Lock()
	l.syncing = false
	if err == nil && reached > l.synced {
		l.synced = reached
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return err
}

// flushAndSync writes the buffer and fsyncs the current segment,
// returning the appended watermark the fsync covered.
func (l *Log) flushAndSync() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.cur == nil {
		return 0, ErrLogClosed
	}
	if err := l.flushLocked(); err != nil {
		return 0, err
	}
	reached := l.appended
	if err := l.cur.Sync(); err != nil {
		l.err = fmt.Errorf("wal: fsync %s: %w", l.curName, err)
		return 0, l.err
	}
	// flushLocked emptied the buffer, so curSize is exactly the segment's
	// file length and the fsync just made all of it durable.
	l.curDurable = l.curSize
	if l.tailWaiters > 0 {
		l.tailCond.Broadcast()
	}
	return reached, nil
}

// Err returns the sticky log error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Checkpoint atomically installs a snapshot covering every commit with
// GSN <= cut, then retires sealed segments (and older snapshots) wholly
// below the cut.  The snapshot is written to a temp file, synced,
// renamed into place, and the directory synced — only then is anything
// deleted, so a crash at any point leaves either the old or the new
// snapshot fully intact.  Checkpoints are single-flight; errors are not
// sticky (a failed checkpoint leaves the log usable).
func (l *Log) Checkpoint(cut uint64, snapshot []byte) error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrLogClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	seq := l.snapSeq + 1
	l.mu.Unlock()

	tmp := filepath.Join(l.dir, snapTmpName)
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if _, err := f.Write(encodeSnapshotFile(cut, snapshot)); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	final := filepath.Join(l.dir, snapName(seq))
	if err := l.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: checkpoint sync dir: %w", err)
	}

	// The snapshot is durable: retire everything it supersedes.
	l.mu.Lock()
	oldSnap := l.snapSeq
	l.snapSeq = seq
	if cut > l.snapCut {
		l.snapCut = cut
	}
	if l.tailWaiters > 0 {
		l.tailCond.Broadcast() // retirement may invalidate a tail position
	}
	keep := l.sealed[:0]
	var retire []segInfo
	for _, s := range l.sealed {
		if s.maxGSN <= cut {
			retire = append(retire, s)
		} else {
			keep = append(keep, s)
		}
	}
	l.sealed = keep
	for _, s := range retire {
		l.liveBytes -= s.size
	}
	l.mu.Unlock()

	for _, s := range retire {
		if err := l.fs.Remove(s.name); err != nil {
			return fmt.Errorf("wal: retire %s: %w", s.name, err)
		}
	}
	if oldSnap != 0 {
		if err := l.fs.Remove(filepath.Join(l.dir, snapName(oldSnap))); err != nil {
			return fmt.Errorf("wal: retire snapshot %d: %w", oldSnap, err)
		}
	}
	return nil
}

// encodeSnapshotFile frames a snapshot: magic, u64 cut, u64 payload
// length, payload, u32 CRC-32C over cut+length+payload.
func encodeSnapshotFile(cut uint64, payload []byte) []byte {
	buf := make([]byte, 0, len(snapMagic)+8+8+len(payload)+4)
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, cut)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.Checksum(buf[len(snapMagic):], crcTable)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// Stats is a point-in-time snapshot of the log's shape, for tests and
// STATS-style introspection.
type Stats struct {
	Segments    int    // sealed + current
	LiveBytes   int64  // bytes MaxBytes accounts against
	Appended    int64  // logical bytes appended
	Synced      int64  // logical bytes known durable
	SnapshotCut uint64 // GSN the newest durable checkpoint covers; 0 when none
}

// Stat reports the log's current shape.
func (l *Log) Stat() Stats {
	l.mu.Lock()
	segs := len(l.sealed) + 1
	live := l.liveBytes
	app := l.appended
	cut := l.snapCut
	l.mu.Unlock()
	l.syncMu.Lock()
	syn := l.synced
	l.syncMu.Unlock()
	return Stats{Segments: segs, LiveBytes: live, Appended: app, Synced: syn, SnapshotCut: cut}
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Close flushes and fsyncs outstanding records under every policy (the
// graceful-shutdown path: SIGTERM must not lose interval/off-policy
// acks), then closes the segment.  Safe to call once; the Log is
// unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stopTick
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.tickDone
	}

	_, serr := l.flushAndSync()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tailCond.Broadcast() // wake Tailers so they observe closed
	if l.cur != nil {
		if err := l.cur.Close(); err != nil && serr == nil {
			serr = err
		}
		l.cur = nil
	}
	if errors.Is(serr, ErrLogClosed) {
		serr = nil
	}
	return serr
}

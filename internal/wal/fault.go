package wal

import (
	"errors"
	"fmt"
	"sync"
)

// FaultKind selects what a scripted fault does when its operation fires.
type FaultKind int

const (
	// FaultErr fails the operation with ErrInjected without side effects.
	FaultErr FaultKind = iota
	// FaultShortWrite applies only half of a Write's bytes, then fails.
	// On non-write operations it behaves like FaultErr.
	FaultShortWrite
	// FaultCrash power-cuts the underlying filesystem (MemFS.Crash) before
	// the operation takes effect; every later operation fails with
	// ErrCrashed until the FaultFS is re-armed.
	FaultCrash
)

// ErrInjected is returned by operations a FaultFS script fails.
var ErrInjected = errors.New("wal: injected fault")

// ErrCrashed is returned by every operation after a scripted crash.
var ErrCrashed = errors.New("wal: crashed")

// Crasher is implemented by filesystems that can simulate a power cut
// (MemFS).  FaultCrash requires the wrapped FS to implement it.
type Crasher interface {
	Crash(torn int)
}

// FaultFS wraps an FS and injects faults at scripted operation indices.
// Every write-side operation (Write, Sync, Create, Rename, Remove,
// Truncate, SyncDir) increments a counter; when the counter hits a
// scripted index the fault fires.  Read-side operations never count, so
// a script's indices are stable across recovery re-reads.
//
// The intended use is a two-pass matrix: run the workload once with an
// empty script to learn the operation count N via Ops(), then re-run it
// N times with a crash scripted at each index 1..N and assert recovery
// invariants after each.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	script map[int]FaultKind
	torn   int // unsynced bytes a crash may leave behind
	ops    int
	crash  bool
}

// NewFaultFS wraps inner with an empty script.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, script: make(map[int]FaultKind)}
}

// Script arms a fault at the given 1-based write-operation index.
func (f *FaultFS) Script(opIndex int, kind FaultKind) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.script[opIndex] = kind
}

// SetTorn sets how many unsynced bytes a scripted crash may leave behind
// (the torn tail recovery must truncate).
func (f *FaultFS) SetTorn(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.torn = n
}

// Ops returns how many write-side operations have executed (or tried to).
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether a scripted crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crash
}

// step counts one write-side operation and returns the fault to apply,
// if any.  After a crash every operation fails.
func (f *FaultFS) step() (kind FaultKind, fire bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crash {
		return 0, false, ErrCrashed
	}
	f.ops++
	kind, fire = f.script[f.ops]
	if !fire {
		return 0, false, nil
	}
	if kind == FaultCrash {
		c, okc := f.inner.(Crasher)
		if !okc {
			return 0, false, fmt.Errorf("wal: FaultCrash requires a Crasher FS, got %T", f.inner)
		}
		f.crash = true
		c.Crash(f.torn)
		return 0, false, ErrCrashed
	}
	return kind, true, nil
}

// stepOp is step for operations with no short-write variant: any armed
// fault degrades to a plain injected error.
func (f *FaultFS) stepOp() error {
	_, fire, err := f.step()
	if err != nil {
		return err
	}
	if fire {
		return ErrInjected
	}
	return nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if err := f.stepOp(); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }
func (f *FaultFS) MkdirAll(dir string) error            { return f.inner.MkdirAll(dir) }

func (f *FaultFS) Remove(name string) error {
	if err := f.stepOp(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.stepOp(); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.stepOp(); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.stepOp(); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes a file's write-side calls through the injector.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.inner.Read(p) }

func (ff *faultFile) Write(p []byte) (int, error) {
	kind, fire, err := ff.fs.step()
	if err != nil {
		return 0, err
	}
	if fire {
		if kind == FaultShortWrite {
			n, _ := ff.inner.Write(p[:len(p)/2])
			return n, ErrInjected
		}
		return 0, ErrInjected
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.stepOp(); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }

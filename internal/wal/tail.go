package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
)

// ErrTailTruncated means the requested tail position is no longer
// retained (a checkpoint retired it, or records the tailer has not
// shipped were retired out from under it).  The caller recovers by
// bootstrapping from LatestSnapshot and tailing again with
// TailSnapshot.
var ErrTailTruncated = fmt.Errorf("wal: tail position retired (bootstrap from the latest snapshot)")

// ErrTailerClosed is returned by Next after Close.
var ErrTailerClosed = fmt.Errorf("wal: tailer closed")

// maxTailRead bounds one read from a segment file, so a tailer never
// materialises a whole segment at once.
const maxTailRead = 256 << 10

// Tailer follows the log's durable byte stream: every record fsynced to
// a segment, in log-append (byte) order, across segment seals and
// checkpoint retirements.  Only durable bytes are ever returned — a
// record a crash could still un-happen is never shipped.
//
// The tailer's floor is the GSN its consumer already covers via a
// snapshot: records at or below it may be skipped.  That is what makes
// checkpoint retirement safe mid-tail — a retired segment only holds
// records with GSN <= the checkpoint cut, so when the log's newest cut
// is <= floor the tailer silently jumps the gap; otherwise it reports
// ErrTailTruncated and the consumer re-bootstraps.
//
// A Tailer is owned by one goroutine; only Close may be called
// concurrently (it wakes a blocked Next, which then returns
// ErrTailerClosed).
type Tailer struct {
	l     *Log
	floor uint64 // consumer's snapshot coverage: GSNs <= floor are skippable
	seq   uint64 // segment being read
	off   int64  // next unread byte offset within seq
	f     File   // open sequential handle on seq, positioned at off (nil until used)
	buf   []byte // carry: bytes read from the file but not yet parsed into frames

	closed bool // under l.mu
}

// Tail returns a Tailer positioned immediately after the durable record
// stamped afterGSN, resuming a consumer whose snapshot coverage is
// floor.  afterGSN 0 starts at the earliest retained byte (valid only
// when floor covers the newest checkpoint cut, or no checkpoint exists).
// ErrTailTruncated means the position is not resumable and the consumer
// must bootstrap from the latest snapshot.
func (l *Log) Tail(afterGSN, floor uint64) (*Tailer, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrLogClosed
	}
	segs := l.retainedLocked()
	snapCut := l.snapCut
	l.mu.Unlock()

	if afterGSN == 0 {
		if snapCut > floor {
			return nil, ErrTailTruncated
		}
		first := segs[0]
		return &Tailer{l: l, floor: floor, seq: first.seq, off: int64(len(segMagic))}, nil
	}
	for _, sg := range segs {
		off, found, err := scanForGSN(l.fs, sg.name, sg.limit, afterGSN)
		if err != nil {
			// The segment may have been retired mid-scan; report that as
			// a truncation so the caller bootstraps instead of failing.
			if gone := !l.isRetained(sg.seq); gone {
				return nil, ErrTailTruncated
			}
			return nil, err
		}
		if found {
			return &Tailer{l: l, floor: floor, seq: sg.seq, off: off}, nil
		}
	}
	return nil, ErrTailTruncated
}

// TailSnapshot returns a Tailer for a consumer that just applied the
// checkpoint covering cut: it starts at the earliest retained byte with
// floor = cut.  ErrTailTruncated means a newer checkpoint superseded
// cut before the tail began; re-fetch LatestSnapshot and retry.
func (l *Log) TailSnapshot(cut uint64) (*Tailer, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrLogClosed
	}
	if cut < l.snapCut {
		l.mu.Unlock()
		return nil, ErrTailTruncated
	}
	first := l.retainedLocked()[0]
	l.mu.Unlock()
	return &Tailer{l: l, floor: cut, seq: first.seq, off: int64(len(segMagic))}, nil
}

// LatestSnapshot reads the newest durable checkpoint (cut + payload).
// ok=false with nil err means no checkpoint exists yet.  Concurrent
// checkpoints can retire the file mid-read; the read retries against
// the newer snapshot.
func (l *Log) LatestSnapshot() (cut uint64, payload []byte, ok bool, err error) {
	for tries := 0; tries < 5; tries++ {
		l.mu.Lock()
		seq := l.snapSeq
		closed := l.closed
		l.mu.Unlock()
		if closed {
			return 0, nil, false, ErrLogClosed
		}
		if seq == 0 {
			return 0, nil, false, nil
		}
		cut, payload, ok, err = readSnapshot(l.fs, filepath.Join(l.dir, snapName(seq)))
		if err == nil && ok {
			return cut, payload, true, nil
		}
		l.mu.Lock()
		raced := l.snapSeq != seq
		l.mu.Unlock()
		if !raced {
			if err == nil {
				err = fmt.Errorf("wal: snapshot %d failed validation", seq)
			}
			return 0, nil, false, err
		}
	}
	return 0, nil, false, fmt.Errorf("wal: snapshot read kept racing with checkpoints")
}

// tailSeg is one retained segment as a Tailer sees it: name plus the
// byte limit it may read (full size for sealed segments, the durable
// watermark for the current one).
type tailSeg struct {
	seq   uint64
	name  string
	limit int64
}

// retainedLocked lists the retained segments in sequence order, the
// current segment last.  Caller holds l.mu.
func (l *Log) retainedLocked() []tailSeg {
	segs := make([]tailSeg, 0, len(l.sealed)+1)
	for _, s := range l.sealed {
		segs = append(segs, tailSeg{seq: s.seq, name: s.name, limit: s.size})
	}
	return append(segs, tailSeg{seq: l.curSeq, name: l.curName, limit: l.curDurable})
}

// isRetained reports whether seq is still a retained segment.
func (l *Log) isRetained(seq uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq == l.curSeq {
		return true
	}
	for _, s := range l.sealed {
		if s.seq == seq {
			return true
		}
	}
	return false
}

// windowLocked reports the byte limit a tailer may read in its current
// segment.  live means the segment is the log's current one (the limit
// can still grow); gone means it was retired.  Caller holds l.mu.
func (t *Tailer) windowLocked() (limit int64, name string, live, gone bool) {
	l := t.l
	if t.seq == l.curSeq {
		return l.curDurable, l.curName, true, false
	}
	for _, s := range l.sealed {
		if s.seq == t.seq {
			return s.size, s.name, false, false
		}
	}
	return 0, "", false, true
}

// nextRetainedLocked returns the smallest retained sequence number
// strictly above seq.  Caller holds l.mu; the current segment always
// qualifies, so ok is false only if seq is at or past it.
func (l *Log) nextRetainedLocked(seq uint64) (uint64, bool) {
	if seq >= l.curSeq {
		return 0, false
	}
	next := l.curSeq
	for _, s := range l.sealed {
		if s.seq > seq && s.seq < next {
			next = s.seq
		}
	}
	return next, true
}

// Next returns the next batch of durable records in log-append order.
// With wait=true it blocks until records are available (forcing a sync
// of buffered appends first, so FsyncOff/Interval logs still ship
// promptly); with wait=false it returns (nil, nil) when caught up.
// Terminal returns: ErrTailTruncated (re-bootstrap), ErrLogClosed (the
// log closed and every durable byte has been returned), ErrTailerClosed
// (Close was called), or the log's sticky error.
func (t *Tailer) Next(wait bool) ([]Record, error) {
	l := t.l
	for {
		l.mu.Lock()
		if t.closed {
			l.mu.Unlock()
			t.drop()
			return nil, ErrTailerClosed
		}
		limit, name, live, gone := t.windowLocked()
		switch {
		case gone:
			// Retired out from under us.  The unread remainder held only
			// records <= the checkpoint cut; without floor coverage the
			// consumer must re-bootstrap.
			snapCut := l.snapCut
			l.mu.Unlock()
			t.drop()
			if snapCut <= t.floor {
				if next, ok := t.advance(); ok {
					t.seq, t.off = next, int64(len(segMagic))
					continue
				}
			}
			return nil, ErrTailTruncated
		case t.off < limit:
			l.mu.Unlock()
			recs, err := t.read(name, limit)
			if err != nil {
				t.drop()
				// Distinguish a retirement race from real I/O failure.
				if !l.isRetained(t.seq) {
					return nil, ErrTailTruncated
				}
				return nil, err
			}
			if len(recs) > 0 {
				return recs, nil
			}
			continue // read stopped mid-frame; next pass reads the rest
		case !live:
			// Sealed segment fully consumed: move to the next retained
			// one.  A sequence gap means segments were retired (or
			// removed as headerless at recovery); jumping it is lossless
			// only when the newest checkpoint cut is within our floor.
			if len(t.buf) != 0 {
				l.mu.Unlock()
				t.drop()
				return nil, fmt.Errorf("wal: tail %s: partial frame at sealed segment end", name)
			}
			next, ok := l.nextRetainedLocked(t.seq)
			if !ok || (next != t.seq+1 && l.snapCut > t.floor) {
				l.mu.Unlock()
				t.drop()
				return nil, ErrTailTruncated
			}
			l.mu.Unlock()
			t.drop()
			t.seq, t.off = next, int64(len(segMagic))
		case l.closed:
			l.mu.Unlock()
			t.drop()
			return nil, ErrLogClosed
		case l.err != nil:
			err := l.err
			l.mu.Unlock()
			t.drop()
			return nil, err
		case !wait:
			l.mu.Unlock()
			return nil, nil
		default:
			// Caught up with the active segment's durable bytes: push any
			// buffered appends toward durability, then sleep until the
			// window can move.
			l.mu.Unlock()
			l.Sync() //nolint:errcheck // a sticky error surfaces next pass
			l.mu.Lock()
			lim, _, _, gone := t.windowLocked()
			if !gone && lim <= t.off && !t.closed && !l.closed && l.err == nil {
				l.tailWaiters++
				l.tailCond.Wait()
				l.tailWaiters--
			}
			l.mu.Unlock()
		}
	}
}

// advance finds the next retained sequence after t.seq (used on the
// retired-under-us path, where the caller dropped l.mu).
func (t *Tailer) advance() (uint64, bool) {
	t.l.mu.Lock()
	defer t.l.mu.Unlock()
	return t.l.nextRetainedLocked(t.seq)
}

// read pulls up to maxTailRead bytes of the durable window into the
// carry buffer and parses whole frames out of it.  Frames split by the
// read cap stay in the carry until the next call.
func (t *Tailer) read(name string, limit int64) ([]Record, error) {
	if t.f == nil {
		f, err := t.l.fs.Open(name)
		if err != nil {
			return nil, err
		}
		t.f = f
		if t.off > 0 {
			if _, err := io.CopyN(io.Discard, f, t.off); err != nil {
				return nil, fmt.Errorf("wal: tail %s: seek to %d: %w", name, t.off, err)
			}
		}
	}
	n := limit - t.off
	if n > maxTailRead {
		n = maxTailRead
	}
	start := len(t.buf)
	t.buf = append(t.buf, make([]byte, n)...)
	if _, err := io.ReadFull(t.f, t.buf[start:]); err != nil {
		t.buf = t.buf[:start]
		return nil, fmt.Errorf("wal: tail %s: %w", name, err)
	}
	t.off += n

	var recs []Record
	off := 0
	for off+frameHeader <= len(t.buf) {
		blen := int(binary.LittleEndian.Uint32(t.buf[off:]))
		crc := binary.LittleEndian.Uint32(t.buf[off+4:])
		if blen < 8 || blen > maxRecordBytes {
			return nil, fmt.Errorf("wal: tail %s: bad frame length %d", name, blen)
		}
		if off+frameHeader+blen > len(t.buf) {
			break
		}
		body := t.buf[off+frameHeader : off+frameHeader+blen]
		if crc32.Checksum(body, crcTable) != crc {
			return nil, fmt.Errorf("wal: tail %s: frame CRC mismatch inside durable window", name)
		}
		payload := make([]byte, blen-8)
		copy(payload, body[8:])
		recs = append(recs, Record{GSN: binary.LittleEndian.Uint64(body), Payload: payload})
		off += frameHeader + blen
	}
	t.buf = append(t.buf[:0], t.buf[off:]...)
	return recs, nil
}

// drop closes the segment handle and clears the carry buffer.
func (t *Tailer) drop() {
	if t.f != nil {
		t.f.Close() //nolint:errcheck // read-only handle
		t.f = nil
	}
	t.buf = t.buf[:0]
}

// Close stops the tailer: a concurrent Next blocked in wait wakes and
// returns ErrTailerClosed (dropping the file handle on its way out).
func (t *Tailer) Close() error {
	l := t.l
	l.mu.Lock()
	if !t.closed {
		t.closed = true
		l.tailCond.Broadcast()
	}
	l.mu.Unlock()
	return nil
}

// scanForGSN walks the first limit bytes of a segment looking for the
// frame stamped gsn, returning the offset just past it.
func scanForGSN(fs FS, name string, limit int64, gsn uint64) (after int64, found bool, err error) {
	if limit <= int64(len(segMagic)) {
		return 0, false, nil
	}
	f, err := fs.Open(name)
	if err != nil {
		return 0, false, err
	}
	data := make([]byte, limit)
	_, err = io.ReadFull(f, data)
	f.Close() //nolint:errcheck // read-only handle
	if err != nil {
		return 0, false, fmt.Errorf("wal: scan %s: %w", name, err)
	}
	if string(data[:len(segMagic)]) != segMagic {
		return 0, false, fmt.Errorf("wal: scan %s: bad segment header", name)
	}
	off := len(segMagic)
	for off+frameHeader <= len(data) {
		blen := int(binary.LittleEndian.Uint32(data[off:]))
		if blen < 8 || blen > maxRecordBytes || off+frameHeader+blen > len(data) {
			return 0, false, fmt.Errorf("wal: scan %s: torn frame inside durable window", name)
		}
		body := data[off+frameHeader : off+frameHeader+blen]
		off += frameHeader + blen
		if binary.LittleEndian.Uint64(body) == gsn {
			return int64(off), true, nil
		}
	}
	return 0, false, nil
}

package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Record is one recovered redo record.
type Record struct {
	GSN     uint64
	Payload []byte
}

// Recovered is what Open found on disk.
type Recovered struct {
	// SnapshotCut is the GSN the snapshot covers (0 when no snapshot).
	SnapshotCut uint64
	// Snapshot is the newest valid checkpoint payload, nil when none.
	Snapshot []byte
	// Records holds every valid record with GSN > SnapshotCut, in
	// ascending GSN order (stable, so equal-GSN records — impossible
	// today but cheap to guarantee — keep log order).
	Records []Record
	// MaxGSN is the highest GSN seen anywhere (records or cut): the
	// caller must resume its GSN counter strictly above it.
	MaxGSN uint64
}

// Open recovers the log in opts.Dir and returns a Log ready for new
// appends plus what was recovered.  Recovery rules:
//
//   - the newest snapshot whose CRC validates wins; invalid or temp
//     snapshot files are removed;
//   - segments are scanned in sequence order; a torn tail (bad CRC,
//     short frame) in the highest-numbered segment is truncated away —
//     rotation seals segments with an fsync before creating the next,
//     so a tear anywhere else is real corruption and fails Open;
//   - new appends always go to a fresh segment, never a recovered one,
//     so recovery never has to distinguish old bytes from new.
func Open(opts Options) (*Log, *Recovered, error) {
	if opts.FS == nil {
		opts.FS = OsFS{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if opts.Interval <= 0 {
		opts.Interval = 50 * time.Millisecond
	}
	fs, dir := opts.FS, opts.Dir
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: readdir %s: %w", dir, err)
	}

	var segSeqs, snapSeqs []uint64
	stray := []string{}
	for _, name := range names {
		if seq, ok := parseName(name, "seg-", ".wal"); ok {
			segSeqs = append(segSeqs, seq)
		} else if seq, ok := parseName(name, "ck-", ".snap"); ok {
			snapSeqs = append(snapSeqs, seq)
		} else if name == snapTmpName {
			stray = append(stray, name)
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })

	rec := &Recovered{}
	var snapSeq uint64
	// Newest valid snapshot wins; anything newer that fails validation
	// is an interrupted checkpoint and is removed.
	for i := len(snapSeqs) - 1; i >= 0; i-- {
		name := filepath.Join(dir, snapName(snapSeqs[i]))
		cut, payload, ok := readSnapshot(fs, name)
		if !ok {
			stray = append(stray, snapName(snapSeqs[i]))
			continue
		}
		snapSeq = snapSeqs[i]
		rec.SnapshotCut, rec.Snapshot = cut, payload
		// Older snapshots are superseded; an interrupted checkpoint may
		// have left them behind.
		for j := 0; j < i; j++ {
			stray = append(stray, snapName(snapSeqs[j]))
		}
		break
	}
	for _, name := range stray {
		// Best-effort: a failed cleanup leaves garbage the next Open
		// retries, never wrong state.
		fs.Remove(filepath.Join(dir, name)) //nolint:errcheck
	}

	var sealed []segInfo
	var liveBytes int64
	var maxSeq uint64
	for i, seq := range segSeqs {
		name := filepath.Join(dir, segName(seq))
		last := i == len(segSeqs)-1
		recs, maxGSN, good, torn, err := readSegment(fs, name)
		if err != nil {
			return nil, nil, err
		}
		if torn {
			if !last {
				return nil, nil, fmt.Errorf("wal: %s: torn frame in non-final segment", name)
			}
			if err := fs.Truncate(name, good); err != nil {
				return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", name, err)
			}
		}
		for _, r := range recs {
			if r.GSN > rec.MaxGSN {
				rec.MaxGSN = r.GSN
			}
			if r.GSN > rec.SnapshotCut {
				rec.Records = append(rec.Records, r)
			}
		}
		sealed = append(sealed, segInfo{seq: seq, name: name, maxGSN: maxGSN, size: good})
		liveBytes += good
		maxSeq = seq
	}
	if rec.SnapshotCut > rec.MaxGSN {
		rec.MaxGSN = rec.SnapshotCut
	}
	sort.SliceStable(rec.Records, func(i, j int) bool { return rec.Records[i].GSN < rec.Records[j].GSN })

	l := &Log{
		fs:        fs,
		dir:       dir,
		opts:      opts,
		curSeq:    maxSeq,
		sealed:    sealed,
		liveBytes: liveBytes,
		snapSeq:   snapSeq,
	}
	l.syncCond.L = &l.syncMu
	l.mu.Lock()
	err = l.newSegmentLocked()
	l.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	if opts.Policy == FsyncInterval {
		l.stopTick = make(chan struct{})
		l.tickDone = make(chan struct{})
		go l.tickLoop()
	}
	return l, rec, nil
}

// tickLoop is the FsyncInterval background syncer.
func (l *Log) tickLoop() {
	defer close(l.tickDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopTick:
			return
		case <-t.C:
			l.Sync() //nolint:errcheck // sticky error surfaces on the next write
		}
	}
}

// parseName parses names like seg-00000042.wal into their sequence.
func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if mid == "" {
		return 0, false
	}
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// readSnapshot validates one snapshot file.
func readSnapshot(fs FS, name string) (cut uint64, payload []byte, ok bool) {
	f, err := fs.Open(name)
	if err != nil {
		return 0, nil, false
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return 0, nil, false
	}
	if len(data) < len(snapMagic)+8+8+4 || string(data[:len(snapMagic)]) != snapMagic {
		return 0, nil, false
	}
	body := data[len(snapMagic) : len(data)-4]
	crc := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != crc {
		return 0, nil, false
	}
	cut = binary.LittleEndian.Uint64(body)
	plen := binary.LittleEndian.Uint64(body[8:])
	if plen != uint64(len(body)-16) {
		return 0, nil, false
	}
	return cut, body[16:], true
}

// readSegment parses one segment file.  good is the byte offset of the
// end of the last valid frame (the truncation point when torn).
func readSegment(fs FS, name string) (recs []Record, maxGSN uint64, good int64, torn bool, err error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("wal: open %s: %w", name, err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, 0, 0, false, fmt.Errorf("wal: read %s: %w", name, err)
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		// An empty or truncated-to-nothing header is a torn creation.
		return nil, 0, 0, true, nil
	}
	off := len(segMagic)
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, maxGSN, int64(off), true, nil
		}
		blen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if blen < 8 || blen > maxRecordBytes || off+frameHeader+blen > len(data) {
			return recs, maxGSN, int64(off), true, nil
		}
		body := data[off+frameHeader : off+frameHeader+blen]
		if crc32.Checksum(body, crcTable) != crc {
			return recs, maxGSN, int64(off), true, nil
		}
		gsn := binary.LittleEndian.Uint64(body)
		payload := make([]byte, blen-8)
		copy(payload, body[8:])
		recs = append(recs, Record{GSN: gsn, Payload: payload})
		if gsn > maxGSN {
			maxGSN = gsn
		}
		off += frameHeader + blen
	}
	return recs, maxGSN, int64(off), false, nil
}

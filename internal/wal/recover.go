package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Record is one recovered redo record.
type Record struct {
	GSN     uint64
	Payload []byte
}

// Recovered is what Open found on disk.
type Recovered struct {
	// SnapshotCut is the GSN the snapshot covers (0 when no snapshot).
	SnapshotCut uint64
	// Snapshot is the newest valid checkpoint payload, nil when none.
	Snapshot []byte
	// Records holds every valid record with GSN > SnapshotCut, in
	// ascending GSN order (stable, so equal-GSN records — impossible
	// today but cheap to guarantee — keep log order).
	Records []Record
	// MaxGSN is the highest GSN seen anywhere (records or cut): the
	// caller must resume its GSN counter strictly above it.
	MaxGSN uint64
}

// Open recovers the log in opts.Dir and returns a Log ready for new
// appends plus what was recovered.  Recovery rules:
//
//   - the newest snapshot whose CRC validates wins; snapshots whose
//     bytes are readable but fail validation (an interrupted checkpoint)
//     are removed, while an I/O error reading one fails Open — deleting
//     a snapshot we could not read would silently lose every write it
//     covers;
//   - segments are scanned in sequence order; a torn tail (bad CRC,
//     short frame) in the highest-numbered segment is truncated away
//     and the truncate fsynced — rotation seals segments with an fsync
//     before creating the next, so a tear anywhere else is real
//     corruption and fails Open;
//   - a segment whose header never made it to disk (a crash between
//     segment creation and its first fsync) cannot hold acked data and
//     is removed, not truncated to an empty file a later Open would
//     refuse as a torn non-final segment;
//   - new appends always go to a fresh segment, never a recovered one,
//     so recovery never has to distinguish old bytes from new.
func Open(opts Options) (*Log, *Recovered, error) {
	if opts.FS == nil {
		opts.FS = OsFS{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if opts.Interval <= 0 {
		opts.Interval = 50 * time.Millisecond
	}
	fs, dir := opts.FS, opts.Dir
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: readdir %s: %w", dir, err)
	}

	var segSeqs, snapSeqs []uint64
	stray := []string{}
	for _, name := range names {
		if seq, ok := parseName(name, "seg-", ".wal"); ok {
			segSeqs = append(segSeqs, seq)
		} else if seq, ok := parseName(name, "ck-", ".snap"); ok {
			snapSeqs = append(snapSeqs, seq)
		} else if name == snapTmpName {
			stray = append(stray, name)
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })

	rec := &Recovered{}
	var snapSeq uint64
	// Newest valid snapshot wins; anything newer that fails validation
	// is an interrupted checkpoint and is removed.
	for i := len(snapSeqs) - 1; i >= 0; i-- {
		name := filepath.Join(dir, snapName(snapSeqs[i]))
		cut, payload, ok, rerr := readSnapshot(fs, name)
		if rerr != nil {
			// A transient read failure is NOT an invalid snapshot: the
			// checkpoint that wrote it already retired the segments (and
			// the older snapshot) it supersedes, so deleting it here
			// would silently lose every acked write it covers.
			return nil, nil, fmt.Errorf("wal: snapshot %s: %w", name, rerr)
		}
		if !ok {
			stray = append(stray, snapName(snapSeqs[i]))
			continue
		}
		snapSeq = snapSeqs[i]
		rec.SnapshotCut, rec.Snapshot = cut, payload
		// Older snapshots are superseded; an interrupted checkpoint may
		// have left them behind.
		for j := 0; j < i; j++ {
			stray = append(stray, snapName(snapSeqs[j]))
		}
		break
	}
	for _, name := range stray {
		// Best-effort: a failed cleanup leaves garbage the next Open
		// retries, never wrong state.
		fs.Remove(filepath.Join(dir, name)) //nolint:errcheck
	}

	var sealed []segInfo
	var liveBytes int64
	var maxSeq uint64
	for i, seq := range segSeqs {
		name := filepath.Join(dir, segName(seq))
		last := i == len(segSeqs)-1
		recs, maxGSN, good, size, torn, err := readSegment(fs, name)
		if err != nil {
			return nil, nil, err
		}
		if torn && good == 0 && (last || size <= int64(len(segMagic))) {
			// The header never became durable: a crash hit between
			// Create+SyncDir and the segment's first fsync.  No record
			// in it was ever acked (an ack requires a successful fsync,
			// which would have made the header durable too), so remove
			// the file — truncating it to zero bytes would leave an
			// empty segment a later Open refuses as torn-non-final once
			// new segments are created after it.  Non-final is the same
			// artifact reappearing when a removal did not survive a
			// power cut, but only while the file is at most header-sized;
			// a larger magic-less non-final segment is real corruption
			// and falls through to the error below.  The SyncDir makes
			// the removal stick.
			if err := fs.Remove(name); err != nil {
				return nil, nil, fmt.Errorf("wal: remove headerless %s: %w", name, err)
			}
			if err := fs.SyncDir(dir); err != nil {
				return nil, nil, fmt.Errorf("wal: sync dir: %w", err)
			}
			maxSeq = seq // never reuse the dead name
			continue
		}
		if torn {
			if !last {
				return nil, nil, fmt.Errorf("wal: %s: torn frame in non-final segment", name)
			}
			if err := fs.Truncate(name, good); err != nil {
				return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", name, err)
			}
			// Truncate alone is not crash-durable: fsync the file so the
			// torn bytes cannot reappear after a power cut, by which time
			// this segment may no longer be final and the tear would fail
			// Open outright.
			if err := syncFile(fs, name); err != nil {
				return nil, nil, fmt.Errorf("wal: sync truncated %s: %w", name, err)
			}
		}
		for _, r := range recs {
			if r.GSN > rec.MaxGSN {
				rec.MaxGSN = r.GSN
			}
			if r.GSN > rec.SnapshotCut {
				rec.Records = append(rec.Records, r)
			}
		}
		sealed = append(sealed, segInfo{seq: seq, name: name, maxGSN: maxGSN, size: good})
		liveBytes += good
		maxSeq = seq
	}
	if rec.SnapshotCut > rec.MaxGSN {
		rec.MaxGSN = rec.SnapshotCut
	}
	sort.SliceStable(rec.Records, func(i, j int) bool { return rec.Records[i].GSN < rec.Records[j].GSN })

	l := &Log{
		fs:        fs,
		dir:       dir,
		opts:      opts,
		curSeq:    maxSeq,
		sealed:    sealed,
		liveBytes: liveBytes,
		snapSeq:   snapSeq,
		snapCut:   rec.SnapshotCut,
	}
	l.syncCond.L = &l.syncMu
	l.tailCond.L = &l.mu
	l.mu.Lock()
	err = l.newSegmentLocked()
	l.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	if opts.Policy == FsyncInterval {
		l.armCh = make(chan struct{}, 1)
		l.stopTick = make(chan struct{})
		l.tickDone = make(chan struct{})
		go l.tickLoop()
	}
	return l, rec, nil
}

// tickLoop is the FsyncInterval background syncer.  It is not a fixed
// ticker but a group-commit latency bound in the combiner's MaxLatency
// style: Append arms a deadline when the first record past the synced
// watermark lands, the loop sleeps until that record is Interval old, then
// syncs everything appended so far — one fsync covers the whole burst.  An
// idle log therefore performs no fsyncs at all, and the oldest unsynced
// record waits at most Interval plus one fsync.
func (l *Log) tickLoop() {
	defer close(l.tickDone)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-l.stopTick:
			return
		case <-l.armCh:
		}
		l.mu.Lock()
		at := l.armedAt
		l.mu.Unlock()
		if d := l.opts.Interval - time.Since(at); d > 0 {
			timer.Reset(d)
			select {
			case <-l.stopTick:
				if !timer.Stop() {
					<-timer.C
				}
				return
			case <-timer.C:
			}
		}
		// Disarm BEFORE syncing: a record appended after the sync leader
		// snapshots its target re-arms a fresh deadline instead of being
		// silently absorbed into a sync that will not cover it.
		l.mu.Lock()
		l.armed = false
		l.mu.Unlock()
		l.Sync() //nolint:errcheck // sticky error surfaces on the next write
	}
}

// parseName parses names like seg-00000042.wal into their sequence.
func parseName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if mid == "" {
		return 0, false
	}
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// readSnapshot validates one snapshot file.  ok=false (with nil err)
// means the bytes were read but fail validation — an interrupted
// checkpoint the caller may delete; a non-nil err is an I/O failure and
// says nothing about the snapshot's contents.
func readSnapshot(fs FS, name string) (cut uint64, payload []byte, ok bool, err error) {
	f, err := fs.Open(name)
	if err != nil {
		return 0, nil, false, err
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return 0, nil, false, err
	}
	if len(data) < len(snapMagic)+8+8+4 || string(data[:len(snapMagic)]) != snapMagic {
		return 0, nil, false, nil
	}
	body := data[len(snapMagic) : len(data)-4]
	crc := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != crc {
		return 0, nil, false, nil
	}
	cut = binary.LittleEndian.Uint64(body)
	plen := binary.LittleEndian.Uint64(body[8:])
	if plen != uint64(len(body)-16) {
		return 0, nil, false, nil
	}
	return cut, body[16:], true, nil
}

// syncFile fsyncs the named file, making a recovery-time truncate itself
// durable.  Opening read-only is fine: fsync flushes a file's data and
// size regardless of the handle's access mode.
func syncFile(fs FS, name string) error {
	f, err := fs.Open(name)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readSegment parses one segment file.  good is the byte offset of the
// end of the last valid frame (the truncation point when torn); size is
// the raw file length (good == 0 with torn means the header itself is
// missing or invalid).
func readSegment(fs FS, name string) (recs []Record, maxGSN uint64, good, size int64, torn bool, err error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, 0, 0, 0, false, fmt.Errorf("wal: open %s: %w", name, err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, 0, 0, 0, false, fmt.Errorf("wal: read %s: %w", name, err)
	}
	size = int64(len(data))
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		// An empty or truncated-to-nothing header is a torn creation.
		return nil, 0, 0, size, true, nil
	}
	off := len(segMagic)
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, maxGSN, int64(off), size, true, nil
		}
		blen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if blen < 8 || blen > maxRecordBytes || off+frameHeader+blen > len(data) {
			return recs, maxGSN, int64(off), size, true, nil
		}
		body := data[off+frameHeader : off+frameHeader+blen]
		if crc32.Checksum(body, crcTable) != crc {
			return recs, maxGSN, int64(off), size, true, nil
		}
		gsn := binary.LittleEndian.Uint64(body)
		payload := make([]byte, blen-8)
		copy(payload, body[8:])
		recs = append(recs, Record{GSN: gsn, Payload: payload})
		if gsn > maxGSN {
			maxGSN = gsn
		}
		off += frameHeader + blen
	}
	return recs, maxGSN, int64(off), size, false, nil
}

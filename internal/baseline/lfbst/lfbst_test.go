package lfbst

import (
	"math/rand"
	"sync"
	"testing"
)

// TestInternalStructure: after inserts, leaves hold exactly the key set
// and internal nodes only route.
func TestInternalStructure(t *testing.T) {
	tr := New()
	keys := []uint64{5, 3, 8, 1, 9, 7}
	for _, k := range keys {
		tr.Put(k, k*10)
	}
	var leaves []uint64
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			if n.key < inf1 {
				leaves = append(leaves, n.key)
			}
			return
		}
		walk(n.left.Load())
		walk(n.right.Load())
	}
	walk(tr.root)
	if len(leaves) != len(keys) {
		t.Fatalf("tree holds %d real leaves, want %d", len(leaves), len(keys))
	}
	for i := 1; i < len(leaves); i++ {
		if leaves[i-1] >= leaves[i] {
			t.Fatalf("leaves out of order: %v", leaves)
		}
	}
}

// TestReplaceLinearizesStructurally: value replacement goes through the
// flag protocol, so a replaced value is immediately visible and old leaves
// are unreachable.
func TestReplaceLinearizesStructurally(t *testing.T) {
	tr := New()
	tr.Put(10, 1)
	for i := uint64(2); i <= 100; i++ {
		tr.Put(10, i)
		if v, ok := tr.Get(10); !ok || v != i {
			t.Fatalf("after replace %d: Get = %d,%v", i, v, ok)
		}
	}
}

// TestDeleteBacktrack provokes the dflag-then-fail path: deletes of
// neighbouring keys race so a delete's mark CAS can fail and must
// backtrack (unflag the grandparent) rather than wedge the tree.
func TestDeleteBacktrack(t *testing.T) {
	for round := 0; round < 200; round++ {
		tr := New()
		for k := uint64(0); k < 8; k++ {
			tr.Put(k, k)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := uint64(0); k < 8; k++ {
					tr.Delete(k)
				}
			}(w)
		}
		wg.Wait()
		// Tree must be empty of real keys and still fully operational.
		for k := uint64(0); k < 8; k++ {
			if _, ok := tr.Get(k); ok {
				t.Fatalf("round %d: key %d survived deletion storm", round, k)
			}
		}
		tr.Put(3, 33)
		if v, ok := tr.Get(3); !ok || v != 33 {
			t.Fatalf("round %d: tree wedged after deletes", round)
		}
	}
}

// TestDeleteExactlyOnce: concurrent deleters of the same key — exactly one
// wins per insert.
func TestDeleteExactlyOnce(t *testing.T) {
	tr := New()
	const rounds = 2000
	var succeeded int64
	var mu sync.Mutex
	for r := 0; r < rounds; r++ {
		tr.Put(5, uint64(r))
		var wg sync.WaitGroup
		wins := 0
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if tr.Delete(5) {
					mu.Lock()
					wins++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if wins != 1 {
			t.Fatalf("round %d: %d deleters succeeded, want exactly 1", r, wins)
		}
		succeeded += int64(wins)
	}
	if succeeded != rounds {
		t.Fatalf("total wins %d", succeeded)
	}
}

// TestInsertDeleteAdjacent stresses helping between an insert flagging a
// parent and a delete flagging the same node as grandparent.
func TestInsertDeleteAdjacent(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 30000; i++ {
				k := uint64(rng.Intn(32))
				if w%2 == 0 {
					tr.Put(k, uint64(i))
				} else {
					tr.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	// Structure must answer queries for the full range without panicking.
	for k := uint64(0); k < 32; k++ {
		tr.Get(k)
	}
}

// Package lfbst implements the non-blocking external binary search tree of
// Ellen, Fatourou, Ruppert and van Breugel ("Non-blocking Binary Search
// Trees", PODC 2010) — the synchronization core of the chromatic trees the
// paper compares against in Figure 7 (chromatic trees are this structure
// plus relaxed rebalancing; see DESIGN.md).
//
// Keys live in leaves; internal nodes route.  Every update first flags the
// affected internal node(s) with an operation descriptor via CAS, so any
// thread encountering a flag can help the operation finish: updates are
// lock-free.  Value replacement for an existing key swaps in a fresh leaf
// through the same insert-flag protocol, keeping every operation
// linearizable at a CAS.
package lfbst

import "sync/atomic"

// Sentinel keys: all user keys must be below inf1.
const (
	inf1 = ^uint64(0) - 1
	inf2 = ^uint64(0)
)

const (
	clean = iota
	iflag
	dflag
	mark
)

// update is an operation descriptor.  state distinguishes how the fields
// are used; descriptors are immutable after publication.
type update struct {
	state int
	// iflag: insert/replace of leaf l under parent p with newNode.
	p, l, newNode *node
	// dflag: delete of leaf l under parent p with grandparent gp, where
	// pupdate was p's update field when the delete was prepared.
	gp      *node
	pupdate *update
	// mark: del points at the dflag descriptor being helped.
	del *update
}

type node struct {
	key    uint64
	val    uint64 // leaves only; immutable (replacement allocates)
	leaf   bool
	left   atomic.Pointer[node] // internal only
	right  atomic.Pointer[node]
	update atomic.Pointer[update] // internal only; nil means clean
}

// Tree is a concurrent non-blocking map from uint64 to uint64.
type Tree struct {
	root *node
}

// New returns an empty tree: root(inf2) over leaves inf1 and inf2.
func New() *Tree {
	r := &node{key: inf2}
	r.left.Store(&node{key: inf1, leaf: true})
	r.right.Store(&node{key: inf2, leaf: true})
	return &Tree{root: r}
}

// Name implements baseline.Map.
func (t *Tree) Name() string { return "lfbst" }

func isClean(u *update) bool { return u == nil || u.state == clean }

// search descends to the leaf for key, returning the grandparent, parent,
// leaf, and the update fields read on the way (gp's before stepping to p,
// p's before stepping to l), as in the paper's Search.
func (t *Tree) search(key uint64) (gp, p, l *node, pupdate, gpupdate *update) {
	p = t.root
	pupdate = p.update.Load()
	if key < p.key {
		l = p.left.Load()
	} else {
		l = p.right.Load()
	}
	for !l.leaf {
		gp, gpupdate = p, pupdate
		p = l
		pupdate = p.update.Load()
		if key < p.key {
			l = p.left.Load()
		} else {
			l = p.right.Load()
		}
	}
	return
}

// Get returns the value stored under key.  Wait-free for a fixed tree
// height; no helping, no writes.
func (t *Tree) Get(key uint64) (uint64, bool) {
	cur := t.root
	for !cur.leaf {
		if key < cur.key {
			cur = cur.left.Load()
		} else {
			cur = cur.right.Load()
		}
	}
	if cur.key == key {
		return cur.val, true
	}
	return 0, false
}

// casChild swaps parent's child pointer from old to new on the side where
// old resides (ichild/dchild helper of the paper).
func casChild(parent, old, new *node) {
	if parent.left.Load() == old {
		parent.left.CompareAndSwap(old, new)
	} else if parent.right.Load() == old {
		parent.right.CompareAndSwap(old, new)
	}
}

// help advances whatever operation u describes.
func (t *Tree) help(u *update) {
	if u == nil {
		return
	}
	switch u.state {
	case iflag:
		t.helpInsert(u)
	case dflag:
		t.helpDelete(u)
	case mark:
		t.helpMarked(u.del)
	}
}

// helpInsert completes an insert/replace: swing the child pointer, then
// unflag the parent.
func (t *Tree) helpInsert(u *update) {
	casChild(u.p, u.l, u.newNode)
	u.p.update.CompareAndSwap(u, &update{state: clean})
}

// Put inserts key or replaces its value.  Lock-free: each retry implies
// some other operation's flag made progress.
func (t *Tree) Put(key, val uint64) {
	for {
		_, p, l, pupdate, _ := t.search(key)
		if !isClean(pupdate) {
			t.help(pupdate)
			continue
		}
		var op *update
		if l.key == key {
			// Replace: swap the leaf for a fresh one carrying val, through
			// the same flag protocol as an insert so the replacement
			// linearizes at the child CAS.
			op = &update{state: iflag, p: p, l: l, newNode: &node{key: key, val: val, leaf: true}}
		} else {
			// Insert: new internal routing node adopting l and a new leaf.
			nl := &node{key: key, val: val, leaf: true}
			ni := &node{key: maxU64(key, l.key)}
			if key < l.key {
				ni.left.Store(nl)
				ni.right.Store(l)
			} else {
				ni.left.Store(l)
				ni.right.Store(nl)
			}
			op = &update{state: iflag, p: p, l: l, newNode: ni}
		}
		if p.update.CompareAndSwap(pupdate, op) {
			t.helpInsert(op)
			return
		}
		t.help(p.update.Load())
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key uint64) bool {
	for {
		gp, p, l, pupdate, gpupdate := t.search(key)
		if l.key != key {
			return false
		}
		if !isClean(gpupdate) {
			t.help(gpupdate)
			continue
		}
		if !isClean(pupdate) {
			t.help(pupdate)
			continue
		}
		op := &update{state: dflag, gp: gp, p: p, l: l, pupdate: pupdate}
		if gp.update.CompareAndSwap(gpupdate, op) {
			if t.helpDelete(op) {
				return true
			}
			continue
		}
		t.help(gp.update.Load())
	}
}

// helpDelete tries to mark the parent; on success the delete is committed
// and completed by helpMarked.  On failure the grandparent is unflagged and
// the delete retried (backtrack).
func (t *Tree) helpDelete(op *update) bool {
	markU := &update{state: mark, del: op}
	if op.p.update.CompareAndSwap(op.pupdate, markU) {
		t.helpMarked(op)
		return true
	}
	cur := op.p.update.Load()
	if cur != nil && cur.state == mark && cur.del == op {
		// Someone else installed the mark for this same delete.
		t.helpMarked(op)
		return true
	}
	t.help(cur)
	// Backtrack: remove our flag from the grandparent.
	op.gp.update.CompareAndSwap(op, &update{state: clean})
	return false
}

// helpMarked splices the marked parent out, replacing it in the
// grandparent by the leaf's sibling, then unflags the grandparent.
func (t *Tree) helpMarked(op *update) {
	var other *node
	if op.p.right.Load() == op.l {
		other = op.p.left.Load()
	} else {
		other = op.p.right.Load()
	}
	casChild(op.gp, op.p, other)
	op.gp.update.CompareAndSwap(op, &update{state: clean})
}

// Package baseline defines the concurrent key-value comparators used by
// the Figure 7 (YCSB) benchmark, standing in for the C++ structures the
// paper compares against (skip list, OpenBW tree, Masstree, B+tree,
// chromatic tree — see DESIGN.md for the substitution table):
//
//	skiplist  lazy concurrent skip list (per-node locks, wait-free reads)
//	lfbst     non-blocking external BST (Ellen et al. family, the base of
//	          chromatic trees)
//	bptree    B+tree with read-write lock coupling and preemptive splits
//	hashmap   striped-lock hash map (unordered point-op ceiling)
//
// All implementations store uint64 → uint64, the paper's 64-bit-integer
// YCSB configuration.
package baseline

import (
	"mvgc/internal/baseline/bptree"
	"mvgc/internal/baseline/lfbst"
	"mvgc/internal/baseline/skiplist"
	"mvgc/internal/baseline/stripedmap"
)

// Map is the concurrent key-value contract shared by all baselines.
type Map interface {
	// Get returns the value stored under key.
	Get(key uint64) (uint64, bool)
	// Put inserts or overwrites key.
	Put(key, val uint64)
	// Delete removes key, reporting whether it was present.
	Delete(key uint64) bool
	// Name identifies the structure.
	Name() string
}

// New constructs the named baseline, or nil for unknown names.
func New(name string) Map {
	switch name {
	case "skiplist":
		return skiplist.New()
	case "lfbst":
		return lfbst.New()
	case "bptree":
		return bptree.New()
	case "hashmap":
		return stripedmap.New()
	}
	return nil
}

// Names lists the baselines in the order Figure 7 reports them.
func Names() []string { return []string{"skiplist", "lfbst", "bptree", "hashmap"} }

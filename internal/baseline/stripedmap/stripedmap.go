// Package stripedmap implements a hash map sharded over independently
// locked stripes.  It is unordered, so it upper-bounds what a point-op-only
// workload can achieve, standing in for Masstree's role in Figure 7 as the
// fastest-point-lookup comparator (see DESIGN.md).
package stripedmap

import "sync"

const stripes = 256 // power of two

type stripe struct {
	mu sync.RWMutex
	m  map[uint64]uint64
	_  [6]uint64 // keep neighbouring stripe locks off one cache line
}

// Map is a concurrent unordered map from uint64 to uint64.
type Map struct {
	s [stripes]stripe
}

// New returns an empty striped map.
func New() *Map {
	m := &Map{}
	for i := range m.s {
		m.s[i].m = make(map[uint64]uint64)
	}
	return m
}

// Name implements baseline.Map.
func (m *Map) Name() string { return "hashmap" }

// fibonacci hashing spreads adjacent keys across stripes.
func idx(key uint64) int { return int((key * 0x9e3779b97f4a7c15) >> 56) }

// Get returns the value stored under key.
func (m *Map) Get(key uint64) (uint64, bool) {
	s := &m.s[idx(key)]
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// Put inserts or overwrites key.
func (m *Map) Put(key, val uint64) {
	s := &m.s[idx(key)]
	s.mu.Lock()
	s.m[key] = val
	s.mu.Unlock()
}

// Delete removes key, reporting whether it was present.
func (m *Map) Delete(key uint64) bool {
	s := &m.s[idx(key)]
	s.mu.Lock()
	_, ok := s.m[key]
	if ok {
		delete(s.m, key)
	}
	s.mu.Unlock()
	return ok
}

package stripedmap

import (
	"sync"
	"testing"
)

func TestBasic(t *testing.T) {
	m := New()
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map has key")
	}
	m.Put(1, 100)
	if v, ok := m.Get(1); !ok || v != 100 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if !m.Delete(1) {
		t.Fatal("delete failed")
	}
	if m.Delete(1) {
		t.Fatal("double delete succeeded")
	}
}

// TestStripeSpread: fibonacci hashing must not funnel sequential keys into
// one stripe.
func TestStripeSpread(t *testing.T) {
	counts := make(map[int]int)
	for k := uint64(0); k < 10000; k++ {
		counts[idx(k)]++
	}
	if len(counts) < stripes/2 {
		t.Fatalf("sequential keys hit only %d of %d stripes", len(counts), stripes)
	}
	for s, c := range counts {
		if c > 10000/stripes*8 {
			t.Fatalf("stripe %d absorbed %d of 10000 keys", s, c)
		}
	}
}

func TestConcurrent(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 10000
			for i := uint64(0); i < 10000; i++ {
				m.Put(base+i, base+i)
			}
			for i := uint64(0); i < 10000; i += 2 {
				m.Delete(base + i)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 8; w++ {
		base := uint64(w) * 10000
		for i := uint64(1); i < 10000; i += 2 {
			if v, ok := m.Get(base + i); !ok || v != base+i {
				t.Fatalf("key %d = %d,%v", base+i, v, ok)
			}
		}
		if _, ok := m.Get(base); ok {
			t.Fatal("deleted key present")
		}
	}
}

package skiplist

import (
	"math/rand"
	"sync"
	"testing"
)

// TestTowerLevelDistribution: random levels must be geometric(1/2)-ish —
// about half the nodes at each successive level — or search degenerates.
func TestTowerLevelDistribution(t *testing.T) {
	l := New()
	counts := make([]int, maxLevel)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[l.randomLevel()]++
	}
	if counts[0] < n/3 || counts[0] > 2*n/3 {
		t.Fatalf("level-0 frequency %d of %d not ≈ 1/2", counts[0], n)
	}
	for lvl := 1; lvl < 6; lvl++ {
		if counts[lvl] == 0 {
			t.Fatalf("no towers of level %d in %d draws", lvl, n)
		}
		if counts[lvl] > counts[lvl-1] {
			t.Fatalf("level %d more frequent than level %d", lvl, lvl-1)
		}
	}
}

// TestSentinelsUntouchable: operations on the extremes of the key space
// must not disturb the sentinels.
func TestSentinelsUntouchable(t *testing.T) {
	l := New()
	l.Put(1, 10)
	if _, ok := l.Get(0); ok {
		t.Fatal("head sentinel key visible")
	}
	if ok := l.Delete(0); ok {
		t.Fatal("deleted head sentinel")
	}
	if v, ok := l.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
}

// TestDeleteReinsertSameKey cycles one key through delete/reinsert while
// readers watch: a reader must only ever see the key absent or with one of
// the written values.
func TestDeleteReinsertSameKey(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= 20000; i++ {
			l.Put(42, i)
			l.Delete(42)
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v, ok := l.Get(42); ok && (v < 1 || v > 20000) {
					t.Errorf("impossible value %d", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	if _, ok := l.Get(42); ok {
		t.Fatal("key present after final delete")
	}
}

// TestPutOverwriteConcurrent: concurrent overwrites of one key leave one
// writer's value.
func TestPutOverwriteConcurrent(t *testing.T) {
	l := New()
	l.Put(7, 0)
	var wg sync.WaitGroup
	for w := 1; w <= 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				l.Put(7, uint64(w))
			}
		}(w)
	}
	wg.Wait()
	v, ok := l.Get(7)
	if !ok || v < 1 || v > 8 {
		t.Fatalf("final value %d,%v", v, ok)
	}
}

// TestMixedDense: sequential model check with a dense key space that keeps
// towers overlapping.
func TestMixedDense(t *testing.T) {
	l := New()
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		k := uint64(rng.Intn(128))
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64() >> 1
			l.Put(k, v)
			ref[k] = v
		case 1:
			_, want := ref[k]
			if got := l.Delete(k); got != want {
				t.Fatalf("Delete(%d) = %v, want %v", k, got, want)
			}
			delete(ref, k)
		case 2:
			want, wantOK := ref[k]
			got, ok := l.Get(k)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("Get(%d) = %d,%v want %d,%v", k, got, ok, want, wantOK)
			}
		}
	}
}

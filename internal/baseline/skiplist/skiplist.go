// Package skiplist implements a lazy concurrent skip list (Herlihy &
// Shavit, The Art of Multiprocessor Programming §14.3; after Pugh's skip
// lists, the structure the paper benchmarks against in Figure 7): wait-free
// lock-free reads via fullyLinked/marked flags, and per-node locks with
// optimistic validation for updates.
package skiplist

import (
	"math"
	"sync"
	"sync/atomic"
)

const maxLevel = 24 // supports ~16M keys at p=1/2 with comfortable slack

type node struct {
	key         uint64
	val         atomic.Uint64
	next        [maxLevel]atomic.Pointer[node]
	mu          sync.Mutex
	topLevel    int         // highest level this node occupies (0-based)
	fullyLinked atomic.Bool // set once the node is linked at every level
	marked      atomic.Bool // set while the node is being unlinked
}

// List is a concurrent sorted map from uint64 to uint64.
type List struct {
	head, tail *node
	seed       atomic.Uint64
}

// New returns an empty skip list covering the full uint64 key range
// except the two sentinel extremes.
func New() *List {
	l := &List{head: &node{key: 0, topLevel: maxLevel - 1}, tail: &node{key: math.MaxUint64, topLevel: maxLevel - 1}}
	for i := 0; i < maxLevel; i++ {
		l.head.next[i].Store(l.tail)
	}
	l.head.fullyLinked.Store(true)
	l.tail.fullyLinked.Store(true)
	l.seed.Store(0x9e3779b97f4a7c15)
	return l
}

// Name implements baseline.Map.
func (l *List) Name() string { return "skiplist" }

// randomLevel draws a geometric(1/2) tower height from a splitmix64 stream.
func (l *List) randomLevel() int {
	for {
		s := l.seed.Load()
		n := s + 0x9e3779b97f4a7c15
		if l.seed.CompareAndSwap(s, n) {
			z := n
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			lvl := 0
			for z&1 == 1 && lvl < maxLevel-1 {
				lvl++
				z >>= 1
			}
			return lvl
		}
	}
}

// findNode fills preds/succs at every level and returns the level at which
// key was found, or -1.
func (l *List) findNode(key uint64, preds, succs *[maxLevel]*node) int {
	found := -1
	pred := l.head
	for lvl := maxLevel - 1; lvl >= 0; lvl-- {
		cur := pred.next[lvl].Load()
		for cur.key < key {
			pred = cur
			cur = pred.next[lvl].Load()
		}
		if found == -1 && cur.key == key {
			found = lvl
		}
		preds[lvl] = pred
		succs[lvl] = cur
	}
	return found
}

// Get returns the value stored under key.  Lock-free: it traverses without
// acquiring any lock and succeeds only on fully linked, unmarked nodes.
func (l *List) Get(key uint64) (uint64, bool) {
	pred := l.head
	for lvl := maxLevel - 1; lvl >= 0; lvl-- {
		cur := pred.next[lvl].Load()
		for cur.key < key {
			pred = cur
			cur = pred.next[lvl].Load()
		}
		if cur.key == key {
			if cur.fullyLinked.Load() && !cur.marked.Load() {
				return cur.val.Load(), true
			}
			return 0, false
		}
	}
	return 0, false
}

// Put inserts key or overwrites its value.
func (l *List) Put(key, val uint64) {
	var preds, succs [maxLevel]*node
	topLevel := l.randomLevel()
	for {
		if lvl := l.findNode(key, &preds, &succs); lvl != -1 {
			n := succs[lvl]
			if !n.marked.Load() {
				for !n.fullyLinked.Load() {
					// an insert in progress; wait for it to appear
				}
				n.val.Store(val)
				return
			}
			continue // being removed: retry until it is gone
		}
		// Lock the predecessors bottom-up and validate.
		var highest int
		valid := true
		for lvl := 0; valid && lvl <= topLevel; lvl++ {
			pred, succ := preds[lvl], succs[lvl]
			if lvl == 0 || preds[lvl] != preds[lvl-1] {
				pred.mu.Lock()
			}
			highest = lvl
			valid = !pred.marked.Load() && !succ.marked.Load() && pred.next[lvl].Load() == succ
		}
		if !valid {
			unlockPreds(&preds, highest)
			continue
		}
		n := &node{key: key, topLevel: topLevel}
		n.val.Store(val)
		for lvl := 0; lvl <= topLevel; lvl++ {
			n.next[lvl].Store(succs[lvl])
		}
		for lvl := 0; lvl <= topLevel; lvl++ {
			preds[lvl].next[lvl].Store(n)
		}
		n.fullyLinked.Store(true)
		unlockPreds(&preds, highest)
		return
	}
}

func unlockPreds(preds *[maxLevel]*node, highest int) {
	for lvl := 0; lvl <= highest; lvl++ {
		if lvl == 0 || preds[lvl] != preds[lvl-1] {
			preds[lvl].mu.Unlock()
		}
	}
}

// Delete removes key, reporting whether it was present.
func (l *List) Delete(key uint64) bool {
	var preds, succs [maxLevel]*node
	var victim *node
	isMarked := false
	topLevel := -1
	for {
		lvl := l.findNode(key, &preds, &succs)
		if !isMarked {
			if lvl == -1 {
				return false
			}
			victim = succs[lvl]
			if !victim.fullyLinked.Load() || victim.marked.Load() || victim.topLevel != lvl {
				return false
			}
			topLevel = victim.topLevel
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return false
			}
			victim.marked.Store(true)
			isMarked = true
		}
		// Lock predecessors and validate they still point at the victim.
		var highest int
		valid := true
		for lv := 0; valid && lv <= topLevel; lv++ {
			pred := preds[lv]
			if lv == 0 || preds[lv] != preds[lv-1] {
				pred.mu.Lock()
			}
			highest = lv
			valid = !pred.marked.Load() && pred.next[lv].Load() == victim
		}
		if !valid {
			unlockPreds(&preds, highest)
			continue
		}
		for lv := topLevel; lv >= 0; lv-- {
			preds[lv].next[lv].Store(victim.next[lv].Load())
		}
		victim.mu.Unlock()
		unlockPreds(&preds, highest)
		return true
	}
}

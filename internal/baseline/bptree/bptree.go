// Package bptree implements a concurrent B+tree with read-write lock
// coupling and preemptive splitting, the classic tuned-B+tree baseline
// (Figure 7's "B+tree"; the OpenBW paper's strongest comparator was a
// similarly structured optimistically locked B+tree — see DESIGN.md).
//
// Readers descend with hand-over-hand read locks.  Writers descend with
// write locks and split every full node on the way down, so a split never
// needs to propagate upward and at most two locks are held at any moment.
// Deletion removes keys from leaves without merging (B+trees with lazy
// deletion), which preserves correctness and lookup cost for the paper's
// workloads, where deletions never dominate.
package bptree

import "sync"

const fanout = 64 // max keys per node

type node struct {
	mu       sync.RWMutex
	isLeaf   bool
	n        int
	keys     [fanout]uint64
	vals     [fanout]uint64    // leaves only
	children [fanout + 1]*node // inner nodes only
}

// Tree is a concurrent B+tree from uint64 to uint64.
type Tree struct {
	mu   sync.RWMutex // guards the root pointer
	root *node
}

// New returns an empty tree.
func New() *Tree { return &Tree{root: &node{isLeaf: true}} }

// Name implements baseline.Map.
func (t *Tree) Name() string { return "bptree" }

// search returns the index of the first key ≥ k in nd.
func (nd *node) search(k uint64) int {
	lo, hi := 0, nd.n
	for lo < hi {
		mid := (lo + hi) / 2
		if nd.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child to descend into for key k.  Inner keys are
// separators: child i holds keys < keys[i]; keys ≥ keys[n-1] go to child n.
func (nd *node) childIndex(k uint64) int {
	i := nd.search(k)
	if i < nd.n && nd.keys[i] == k {
		return i + 1 // equal separators route right (copied-up leaf keys)
	}
	return i
}

// Get returns the value stored under key, using hand-over-hand read locks.
func (t *Tree) Get(key uint64) (uint64, bool) {
	t.mu.RLock()
	cur := t.root
	cur.mu.RLock()
	t.mu.RUnlock()
	for !cur.isLeaf {
		next := cur.children[cur.childIndex(key)]
		next.mu.RLock()
		cur.mu.RUnlock()
		cur = next
	}
	i := cur.search(key)
	if i < cur.n && cur.keys[i] == key {
		v := cur.vals[i]
		cur.mu.RUnlock()
		return v, true
	}
	cur.mu.RUnlock()
	return 0, false
}

// split divides full child c of parent p (both write-locked); after the
// call both remain locked and c holds the lower half.
func split(p *node, ci int, c *node) {
	mid := c.n / 2
	right := &node{isLeaf: c.isLeaf}
	var sep uint64
	if c.isLeaf {
		// Leaf split: right gets keys[mid:], separator is right's first key.
		copy(right.keys[:], c.keys[mid:c.n])
		copy(right.vals[:], c.vals[mid:c.n])
		right.n = c.n - mid
		c.n = mid
		sep = right.keys[0]
	} else {
		// Inner split: keys[mid] moves up, right gets keys[mid+1:].
		sep = c.keys[mid]
		copy(right.keys[:], c.keys[mid+1:c.n])
		copy(right.children[:], c.children[mid+1:c.n+1])
		right.n = c.n - mid - 1
		c.n = mid
	}
	// Insert sep and right into p after position ci.
	copy(p.keys[ci+1:p.n+1], p.keys[ci:p.n])
	copy(p.children[ci+2:p.n+2], p.children[ci+1:p.n+1])
	p.keys[ci] = sep
	p.children[ci+1] = right
	p.n++
}

// Put inserts or overwrites key, splitting full nodes on the way down.
func (t *Tree) Put(key, val uint64) {
	// Fast path: share the root pointer lock; escalate only to grow a new
	// root above a full one.
	t.mu.RLock()
	cur := t.root
	cur.mu.Lock()
	if cur.n < fanout {
		t.mu.RUnlock()
	} else {
		cur.mu.Unlock()
		t.mu.RUnlock()
		t.mu.Lock()
		cur = t.root
		cur.mu.Lock()
		if cur.n == fanout {
			// Grow a new root and split the old one under it.
			nr := &node{}
			nr.children[0] = cur
			nr.mu.Lock()
			split(nr, 0, cur)
			t.root = nr
			cur.mu.Unlock()
			cur = nr
		}
		t.mu.Unlock()
	}
	for !cur.isLeaf {
		ci := cur.childIndex(key)
		next := cur.children[ci]
		next.mu.Lock()
		if next.n == fanout {
			split(cur, ci, next)
			// Re-route: the key may belong in the new right sibling.
			if nci := cur.childIndex(key); nci != ci {
				right := cur.children[nci]
				right.mu.Lock()
				next.mu.Unlock()
				next = right
			}
		}
		cur.mu.Unlock()
		cur = next
	}
	i := cur.search(key)
	if i < cur.n && cur.keys[i] == key {
		cur.vals[i] = val
		cur.mu.Unlock()
		return
	}
	copy(cur.keys[i+1:cur.n+1], cur.keys[i:cur.n])
	copy(cur.vals[i+1:cur.n+1], cur.vals[i:cur.n])
	cur.keys[i] = key
	cur.vals[i] = val
	cur.n++
	cur.mu.Unlock()
}

// Delete removes key from its leaf (no merging), reporting presence.
func (t *Tree) Delete(key uint64) bool {
	t.mu.RLock()
	cur := t.root
	cur.mu.Lock()
	t.mu.RUnlock()
	for !cur.isLeaf {
		next := cur.children[cur.childIndex(key)]
		next.mu.Lock()
		cur.mu.Unlock()
		cur = next
	}
	i := cur.search(key)
	if i < cur.n && cur.keys[i] == key {
		copy(cur.keys[i:cur.n-1], cur.keys[i+1:cur.n])
		copy(cur.vals[i:cur.n-1], cur.vals[i+1:cur.n])
		cur.n--
		cur.mu.Unlock()
		return true
	}
	cur.mu.Unlock()
	return false
}

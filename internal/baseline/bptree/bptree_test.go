package bptree

import (
	"math/rand"
	"sync"
	"testing"
)

// TestSplitsPreserveOrder fills the tree far past several split levels and
// checks every key, exercising leaf splits, inner splits and root growth.
func TestSplitsPreserveOrder(t *testing.T) {
	tr := New()
	const n = fanout * fanout * 4 // forces ≥3 levels
	for i := uint64(0); i < n; i++ {
		tr.Put(i, i+1)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tr.Get(i)
		if !ok || v != i+1 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := tr.Get(n); ok {
		t.Fatal("absent key present")
	}
}

// TestReverseAndRandomOrders: split correctness must not depend on
// insertion order.
func TestReverseAndRandomOrders(t *testing.T) {
	const n = fanout * 20
	t.Run("reverse", func(t *testing.T) {
		tr := New()
		for i := n; i > 0; i-- {
			tr.Put(uint64(i), uint64(i))
		}
		for i := uint64(1); i <= n; i++ {
			if v, ok := tr.Get(i); !ok || v != i {
				t.Fatalf("Get(%d) = %d,%v", i, v, ok)
			}
		}
	})
	t.Run("random", func(t *testing.T) {
		tr := New()
		rng := rand.New(rand.NewSource(1))
		perm := rng.Perm(n)
		for _, i := range perm {
			tr.Put(uint64(i), uint64(i)*7)
		}
		for i := uint64(0); i < n; i++ {
			if v, ok := tr.Get(i); !ok || v != i*7 {
				t.Fatalf("Get(%d) = %d,%v", i, v, ok)
			}
		}
	})
}

// TestDuplicateSeparators: keys equal to copied-up separators must route
// right and stay findable after deletion and reinsertion.
func TestDuplicateSeparators(t *testing.T) {
	tr := New()
	for i := uint64(0); i < fanout+1; i++ { // force one leaf split
		tr.Put(i, i)
	}
	// The separator is the right leaf's first key; overwrite and delete it.
	sep := uint64(fanout / 2)
	tr.Put(sep, 999)
	if v, _ := tr.Get(sep); v != 999 {
		t.Fatalf("separator-key value = %d", v)
	}
	if !tr.Delete(sep) {
		t.Fatal("delete of separator key failed")
	}
	if _, ok := tr.Get(sep); ok {
		t.Fatal("deleted separator key still visible")
	}
	tr.Put(sep, 1000)
	if v, _ := tr.Get(sep); v != 1000 {
		t.Fatalf("reinserted separator key = %d", v)
	}
}

// TestConcurrentRootGrowth: hammer an empty tree so root splits race with
// descents.
func TestConcurrentRootGrowth(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	const workers, per = 8, 20000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				k := uint64(rng.Intn(1 << 16))
				tr.Put(k, k)
				if v, ok := tr.Get(k); ok && v != k {
					t.Errorf("Get(%d) = %d", k, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

package baseline

import (
	"math/rand"
	"sync"
	"testing"
)

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		m := New(name)
		if m == nil {
			t.Fatalf("New(%q) = nil", name)
		}
		if m.Name() != name {
			t.Errorf("Name() = %q, want %q", m.Name(), name)
		}
	}
	if New("bogus") != nil {
		t.Error("unknown name must return nil")
	}
}

// TestSequentialAgainstModel runs long random op sequences against Go's map
// as the reference model.
func TestSequentialAgainstModel(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			m := New(name)
			ref := map[uint64]uint64{}
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < 30000; i++ {
				k := uint64(rng.Intn(2000))
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4: // put
					v := rng.Uint64() >> 1
					m.Put(k, v)
					ref[k] = v
				case 5, 6: // delete
					_, want := ref[k]
					if got := m.Delete(k); got != want {
						t.Fatalf("step %d: Delete(%d) = %v, want %v", i, k, got, want)
					}
					delete(ref, k)
				default: // get
					want, wantOK := ref[k]
					got, ok := m.Get(k)
					if ok != wantOK || (ok && got != want) {
						t.Fatalf("step %d: Get(%d) = %d,%v want %d,%v", i, k, got, ok, want, wantOK)
					}
				}
			}
		})
	}
}

// TestConcurrentDisjointKeys: each goroutine owns a key range; all its own
// writes must be visible to itself immediately and to everyone at the end.
func TestConcurrentDisjointKeys(t *testing.T) {
	const workers, perWorker = 8, 5000
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			m := New(name)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := uint64(w) * perWorker
					for i := uint64(0); i < perWorker; i++ {
						m.Put(base+i, base+i+1)
						if v, ok := m.Get(base + i); !ok || v != base+i+1 {
							t.Errorf("worker %d: own write invisible at key %d", w, base+i)
							return
						}
						if i%3 == 0 {
							if !m.Delete(base + i) {
								t.Errorf("worker %d: delete of own key %d failed", w, base+i)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				base := uint64(w) * perWorker
				for i := uint64(0); i < perWorker; i++ {
					v, ok := m.Get(base + i)
					if i%3 == 0 {
						if ok {
							t.Fatalf("deleted key %d still present", base+i)
						}
					} else if !ok || v != base+i+1 {
						t.Fatalf("key %d = %d,%v", base+i, v, ok)
					}
				}
			}
		})
	}
}

// TestConcurrentSameKeys: all goroutines fight over a small key set; final
// values must be one of the written values and deletes/puts must not
// corrupt the structure.
func TestConcurrentSameKeys(t *testing.T) {
	const workers, ops, keys = 8, 4000, 16
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			m := New(name)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < ops; i++ {
						k := uint64(rng.Intn(keys))
						switch rng.Intn(4) {
						case 0:
							m.Delete(k)
						case 1:
							m.Get(k)
						default:
							m.Put(k, uint64(w)<<32|uint64(i))
						}
					}
				}(w)
			}
			wg.Wait()
			// The structure must still answer queries consistently.
			for k := uint64(0); k < keys; k++ {
				if v, ok := m.Get(k); ok {
					w := v >> 32
					if w >= workers {
						t.Fatalf("key %d holds impossible value %d", k, v)
					}
				}
			}
			// And still be fully operational.
			m.Put(99, 1)
			if v, ok := m.Get(99); !ok || v != 1 {
				t.Fatal("structure corrupted after contention")
			}
		})
	}
}

// TestInsertDeleteInterleave targets the delete helping paths: pairs of
// goroutines insert and delete the same sliding window of keys.
func TestInsertDeleteInterleave(t *testing.T) {
	const rounds = 3000
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			m := New(name)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						k := uint64(i % 64)
						if w%2 == 0 {
							m.Put(k, uint64(i))
						} else {
							m.Delete(k)
						}
					}
				}(w)
			}
			wg.Wait()
			// Re-insert everything; all keys must be present afterwards.
			for k := uint64(0); k < 64; k++ {
				m.Put(k, k)
			}
			for k := uint64(0); k < 64; k++ {
				if v, ok := m.Get(k); !ok || v != k {
					t.Fatalf("key %d = %d,%v after re-insert", k, v, ok)
				}
			}
		})
	}
}

// TestLargeSequentialLoad loads ascending keys (worst case for unbalanced
// trees) and spot-checks.
func TestLargeSequentialLoad(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			n := uint64(200000)
			if name == "lfbst" {
				// The external BST has no rebalancing, so sorted input
				// degenerates it to a path; keep the quadratic part small.
				n = 20000
			}
			m := New(name)
			for i := uint64(0); i < n; i++ {
				m.Put(i, i*2)
			}
			for i := uint64(0); i < n; i += 997 {
				if v, ok := m.Get(i); !ok || v != i*2 {
					t.Fatalf("key %d = %d,%v", i, v, ok)
				}
			}
			if _, ok := m.Get(n + 1); ok {
				t.Fatal("absent key found")
			}
		})
	}
}

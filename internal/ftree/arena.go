package ftree

// Arena is a pid-local node magazine: a private allocation cache that lets
// one process (in the paper's sense — one leased pid, never used
// concurrently) allocate and free tree nodes with no locks and no
// shared-state atomics.  The transaction layer gives every pid its own
// arena and runs that pid's transactions on an Ops view Bound to it, so
// the path-copying write path touches only single-owner memory:
//
//   - get/put hit the magazine, a plain LIFO of freed nodes.
//   - A magazine that fills up spills a block of magMove nodes to one
//     sharded global list under a single lock, so memory migrates between
//     pids at O(1/M) locks per node instead of one lock per node.
//   - An empty magazine refills the same way: a block of magMove nodes off
//     one global list, one lock.
//   - When the global lists are empty too (cold start, growing tree), the
//     arena carves nodes sequentially out of chunk-allocated []Node blocks,
//     so nodes born together — which path copying tends to link together —
//     share cache lines.
//
// Accounting is unchanged by any of this: mk and freeNode count through the
// family's exact sharded counters whether a node moves through an arena, a
// global list or the Go heap, so Live() == Allocs() − Frees() holds at
// every instant and equals the reachable-node count at quiescent points.
// DESIGN.md ("Pid-local node magazines") explains why the cache is per-pid
// rather than a per-P sync.Pool.
//
// An Arena is deliberately not goroutine-safe: exclusivity comes from pid
// leasing, exactly like the Version Maintenance contract.  Parallel bulk
// operations fork onto the unbound root Ops (see maybeParallel), so a
// bound arena is only ever touched by the goroutine running its pid.
type Arena[K, V, A any] struct {
	sh *allocShared[K, V, A]

	// mag is the magazine: parked freed nodes, most recently freed first
	// (LIFO keeps reuse cache-warm).  Its capacity is the spill threshold;
	// Reserve may grow it, and the slice then keeps its high-water
	// capacity so steady state allocates nothing.
	mag []*Node[K, V, A]

	// blk is the current locality chunk; blk[bi:] are raw never-allocated
	// nodes handed out sequentially when the magazine and global lists are
	// both empty.
	blk []Node[K, V, A]
	bi  int

	// scratch is the collector's reusable traversal stack (see
	// Ops.Release); parked here because the arena is exactly the
	// single-owner state a bound view may scribble on.
	scratch []*Node[K, V, A]

	// Counters for tests and tuning; single-owner like the rest.
	refills int64 // block transfers in from the global lists
	spills  int64 // block transfers out to the global lists
	carves  int64 // fresh chunks allocated from the Go heap
}

const (
	// magCap is the magazine's initial capacity and default spill
	// threshold M·2: a put into a full magazine moves magMove nodes out,
	// a get from an empty one moves up to magMove nodes in, so a process
	// ping-ponging around the threshold still amortizes one lock per
	// magMove node operations.
	magCap = 256
	// magMove is M, the block size of spills and refills.
	magMove = magCap / 2
	// chunkNodes is how many nodes a fresh locality chunk carves.
	chunkNodes = 256
)

// NewArena returns an empty arena belonging to o's Ops family.  Bind it
// with Ops.Bound; the caller must guarantee the arena (and every view
// bound to it) is used by one goroutine at a time.
func (o *Ops[K, V, A]) NewArena() *Arena[K, V, A] {
	return &Arena[K, V, A]{sh: o.sh, mag: make([]*Node[K, V, A], 0, magCap)}
}

// get returns a node for mk: magazine first, then the current chunk, then
// a block refill from the global lists, then a fresh chunk.
func (a *Arena[K, V, A]) get() *Node[K, V, A] {
	if n := len(a.mag); n > 0 {
		nd := a.mag[n-1]
		a.mag[n-1] = nil
		a.mag = a.mag[:n-1]
		return nd
	}
	if a.bi < len(a.blk) {
		nd := &a.blk[a.bi]
		a.bi++
		return nd
	}
	if a.refill(magMove) {
		n := len(a.mag)
		nd := a.mag[n-1]
		a.mag[n-1] = nil
		a.mag = a.mag[:n-1]
		return nd
	}
	a.blk = make([]Node[K, V, A], chunkNodes)
	a.bi = 1
	a.carves++
	return &a.blk[0]
}

// put parks a freed node in the magazine, spilling a block to the global
// lists when the magazine is at capacity.
func (a *Arena[K, V, A]) put(n *Node[K, V, A]) {
	if len(a.mag) == cap(a.mag) {
		a.spill(magMove)
	}
	a.mag = append(a.mag, n)
}

// spill moves the top k parked nodes onto one global free list under a
// single lock.  Taking the top keeps the operation O(k) however large the
// magazine has grown (a Reserve-widened magazine never pays O(cap) here).
func (a *Arena[K, V, A]) spill(k int) {
	if k > len(a.mag) {
		k = len(a.mag)
	}
	if k == 0 {
		return
	}
	// Chain the block through the nodes' right pointers, as the global
	// lists store them.
	top := a.mag[len(a.mag)-k:]
	head := top[0]
	tail := head
	for _, nd := range top[1:] {
		tail.right = nd
		tail = nd
	}
	for i := range top {
		top[i] = nil
	}
	a.mag = a.mag[:len(a.mag)-k]
	fl := &a.sh.free[a.sh.freeHint.Add(1)%freeShards]
	fl.mu.Lock()
	tail.right = fl.head
	fl.head = head
	fl.mu.Unlock()
	a.spills++
}

// refill pulls up to k nodes off the global lists into the magazine.  It
// sweeps every shard before giving up: a refill only happens when the
// magazine and chunk are both empty, where the alternative is carving a
// fresh chunk from the heap — 16 uncontended mutexes are far cheaper than
// letting spilled memory strand while the heap grows.  Reports whether it
// got at least one node.
func (a *Arena[K, V, A]) refill(k int) bool {
	got := 0
	start := int(a.sh.freeHint.Add(1))
	for i := 0; i < freeShards && got < k; i++ {
		fl := &a.sh.free[(start+i)%freeShards]
		fl.mu.Lock()
		for got < k && fl.head != nil {
			nd := fl.head
			fl.head = nd.right
			nd.right = nil
			a.mag = append(a.mag, nd)
			got++
		}
		fl.mu.Unlock()
	}
	if got > 0 {
		a.refills++
	}
	return got > 0
}

// Reserve pre-fills the arena so the next n allocations are magazine or
// chunk hits: it sweeps the global lists in blocks, then carves whatever
// is still missing as one contiguous chunk.  An n-entry batch build after
// Reserve(n) touches the shared lists O(n/M) times instead of O(n).
// Growing the magazine raises its spill threshold permanently — the
// magazine's capacity is its high-water mark, which is what lets a
// combining writer keep a whole batch's worth of nodes parked between
// commits without ping-ponging them through the global lists.
func (a *Arena[K, V, A]) Reserve(n int) {
	have := a.Cached()
	if have >= n {
		return
	}
	if cap(a.mag) < n {
		mag := make([]*Node[K, V, A], len(a.mag), n)
		copy(mag, a.mag)
		a.mag = mag
	}
	for i := 0; i < freeShards && have < n; i++ {
		before := len(a.mag)
		if !a.refill(n - have) {
			break
		}
		have += len(a.mag) - before
	}
	if have < n {
		// Park the current chunk's remainder in the magazine so carving a
		// fresh chunk strands nothing, then carve the whole shortfall in
		// one contiguous block.
		for a.bi < len(a.blk) {
			a.mag = append(a.mag, &a.blk[a.bi])
			a.bi++
		}
		need := n - have
		if need < chunkNodes {
			need = chunkNodes
		}
		a.blk = make([]Node[K, V, A], need)
		a.bi = 0
		a.carves++
	}
}

// Flush spills every parked node back to the global free lists, in blocks.
// The transaction layer calls it when an arena's owner goes away for good
// (Map.Close), so parked memory is never stranded with a dead pid.  The
// current chunk's unallocated remainder is dropped: those nodes were never
// allocated, so no accounting moves.
func (a *Arena[K, V, A]) Flush() {
	for len(a.mag) > 0 {
		a.spill(magMove)
	}
	a.blk, a.bi = nil, 0
}

// Cached reports how many allocations the arena can serve without touching
// the global lists: parked magazine nodes plus the current chunk's
// remainder.  Like all arena state it is single-owner — read it only from
// the owning process or at quiescence.
func (a *Arena[K, V, A]) Cached() int {
	return len(a.mag) + len(a.blk) - a.bi
}

// Stats reports the arena's lifetime block-transfer counters: refills and
// spills against the global lists, and fresh chunks carved from the heap.
// Single-owner; read from the owning process or at quiescence.
func (a *Arena[K, V, A]) Stats() (refills, spills, carves int64) {
	return a.refills, a.spills, a.carves
}

//go:build !race

package ftree

const raceEnabled = false

package ftree

import "sync"

// Join-based bulk set operations (Just Join, SPAA 2016 — the algorithms in
// the paper's PAM library).  Each runs in O(m·log(n/m + 1)) work for input
// sizes m ≤ n and parallelizes by divide-and-conquer: the two recursive
// halves are independent and are forked when the subproblem exceeds
// Ops.Grain keys.

// maybeParallel runs f and g, forking f onto its own goroutine when the
// combined problem size exceeds the grain.  Both callbacks receive the Ops
// to continue on: sequentially that is o itself, but a forked f gets the
// unbound root, because an arena-bound view is single-owner and must never
// be touched from two goroutines.  The sequential spine — the goroutine
// that owns the arena — keeps its bound view the whole way down.
func (o *Ops[K, V, A]) maybeParallel(sz int64, f, g func(o *Ops[K, V, A])) {
	if o.Grain <= 0 || sz <= int64(o.Grain) {
		f(o)
		g(o)
		return
	}
	fo := o.Unbound()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f(fo)
	}()
	g(o)
	wg.Wait()
}

// Union returns a tree containing every key of borrowed trees a and b.
// For keys present in both, the value is comb(aVal, bVal); a nil comb keeps
// b's value.  Neither input is consumed; the result shares subtrees with
// both.
func (o *Ops[K, V, A]) Union(a, b *Node[K, V, A], comb func(av, bv V) V) *Node[K, V, A] {
	return o.unionOwned(o.share(a), o.share(b), comb)
}

// unionOwned consumes its tokens on a and b.
func (o *Ops[K, V, A]) unionOwned(a, b *Node[K, V, A], comb func(av, bv V) V) *Node[K, V, A] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	sz := a.size + b.size
	ak, av, al, ar := o.decompose(a)
	bl, br, found, bv := o.splitOwned(b, ak)
	var l, r *Node[K, V, A]
	o.maybeParallel(sz,
		func(o *Ops[K, V, A]) { l = o.unionOwned(al, bl, comb) },
		func(o *Ops[K, V, A]) { r = o.unionOwned(ar, br, comb) },
	)
	v := av
	if found {
		if comb != nil {
			v = comb(av, bv) // comb consumes both owned references
		} else {
			o.releaseVal(av) // b's value wins; drop a's reference
			v = bv
		}
	}
	return o.Join(l, ak, v, r)
}

// Intersect returns a tree containing the keys present in both borrowed
// trees, with values comb(aVal, bVal) (nil comb keeps a's value).
func (o *Ops[K, V, A]) Intersect(a, b *Node[K, V, A], comb func(av, bv V) V) *Node[K, V, A] {
	return o.intersectOwned(o.share(a), o.share(b), comb)
}

func (o *Ops[K, V, A]) intersectOwned(a, b *Node[K, V, A], comb func(av, bv V) V) *Node[K, V, A] {
	if a == nil || b == nil {
		o.Release(a)
		o.Release(b)
		return nil
	}
	sz := a.size + b.size
	ak, av, al, ar := o.decompose(a)
	bl, br, found, bv := o.splitOwned(b, ak)
	var l, r *Node[K, V, A]
	o.maybeParallel(sz,
		func(o *Ops[K, V, A]) { l = o.intersectOwned(al, bl, comb) },
		func(o *Ops[K, V, A]) { r = o.intersectOwned(ar, br, comb) },
	)
	if found {
		v := av
		if comb != nil {
			v = comb(av, bv)
		} else {
			o.releaseVal(bv) // a's value wins; drop b's reference
		}
		return o.Join(l, ak, v, r)
	}
	o.releaseVal(av) // key absent from b: the entry is dropped
	return o.Join2(l, r)
}

// Difference returns a tree containing the keys of borrowed tree a that are
// absent from borrowed tree b.
func (o *Ops[K, V, A]) Difference(a, b *Node[K, V, A]) *Node[K, V, A] {
	return o.differenceOwned(o.share(a), o.share(b))
}

func (o *Ops[K, V, A]) differenceOwned(a, b *Node[K, V, A]) *Node[K, V, A] {
	if a == nil {
		o.Release(b)
		return nil
	}
	if b == nil {
		return a
	}
	sz := a.size + b.size
	ak, av, al, ar := o.decompose(a)
	bl, br, found, bv := o.splitOwned(b, ak)
	var l, r *Node[K, V, A]
	o.maybeParallel(sz,
		func(o *Ops[K, V, A]) { l = o.differenceOwned(al, bl) },
		func(o *Ops[K, V, A]) { r = o.differenceOwned(ar, br) },
	)
	if found {
		o.releaseVal(av) // the entry is subtracted away
		o.releaseVal(bv)
		return o.Join2(l, r)
	}
	return o.Join(l, ak, av, r)
}

// MapValues returns a tree with the same keys as borrowed tree t and
// values f(k, v).  The result is structurally fresh (augmentations are
// recomputed from the new values) but shares nothing, so it costs O(n)
// work with parallel halves.  f must return an owned value reference.
func (o *Ops[K, V, A]) MapValues(t *Node[K, V, A], f func(K, V) V) *Node[K, V, A] {
	if t == nil {
		return nil
	}
	var l, r *Node[K, V, A]
	o.maybeParallel(t.size,
		func(o *Ops[K, V, A]) { l = o.MapValues(t.left, f) },
		func(o *Ops[K, V, A]) { r = o.MapValues(t.right, f) },
	)
	return o.mk(l, t.key, f(t.key, t.val), r)
}

// Filter returns a tree with the entries of borrowed tree t satisfying
// keep.  O(n) work, parallel.
func (o *Ops[K, V, A]) Filter(t *Node[K, V, A], keep func(K, V) bool) *Node[K, V, A] {
	if t == nil {
		return nil
	}
	var l, r *Node[K, V, A]
	o.maybeParallel(t.size,
		func(o *Ops[K, V, A]) { l = o.Filter(t.left, keep) },
		func(o *Ops[K, V, A]) { r = o.Filter(t.right, keep) },
	)
	if keep(t.key, t.val) {
		return o.Join(l, t.key, o.retainVal(t.val), r)
	}
	return o.Join2(l, r)
}

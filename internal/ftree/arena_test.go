package ftree

import (
	"math/rand"
	"sync"
	"testing"
)

func arenaOps() *Ops[int64, int64, int64] {
	o := New[int64, int64, int64](IntCmp[int64], SumAug[int64](), 0)
	o.Recycle = true
	return o
}

// TestArenaRoundTrip: a bound view's single-writer churn must recycle
// entirely through the magazine, with Live() exact at every step and the
// tree identical to a map model.
func TestArenaRoundTrip(t *testing.T) {
	o := arenaOps()
	a := o.NewArena()
	bo := o.Bound(a)
	rng := rand.New(rand.NewSource(1))
	model := map[int64]int64{}
	var root *Node[int64, int64, int64]
	for i := 0; i < 20_000; i++ {
		k := int64(rng.Intn(500))
		var nr *Node[int64, int64, int64]
		if rng.Intn(3) == 0 {
			nr = bo.Delete(root, k)
			delete(model, k)
		} else {
			v := int64(i)
			nr = bo.Insert(root, k, v)
			model[k] = v
		}
		bo.Release(root)
		root = nr
		if i%4096 == 0 {
			if live, reach := o.Live(), o.ReachableNodes(root); live != reach {
				t.Fatalf("step %d: live %d ≠ reachable %d", i, live, reach)
			}
		}
	}
	if got, want := bo.Size(root), int64(len(model)); got != want {
		t.Fatalf("size %d, want %d", got, want)
	}
	for k, v := range model {
		if got, ok := bo.Find(root, k); !ok || got != v {
			t.Fatalf("key %d: got (%d,%v), want %d", k, got, ok, v)
		}
	}
	bo.Release(root)
	if o.Live() != 0 {
		t.Fatalf("leaked %d nodes", o.Live())
	}
	refills, spills, _ := a.Stats()
	t.Logf("arena: cached=%d refills=%d spills=%d", a.Cached(), refills, spills)
}

// TestArenaNoCrossReuseWhileLive: nodes reachable from a version committed
// by one arena must never be handed out by another arena (or any
// allocator) while that version is live.  Two owners churn their own trees
// concurrently off the same shared Ops family under -race; the freedMark
// poison plus ref panics turn any reuse-while-live into a loud failure,
// and each owner re-validates its own tree's contents continuously.
func TestArenaNoCrossReuseWhileLive(t *testing.T) {
	o := arenaOps()
	const owners = 4
	var wg sync.WaitGroup
	errs := make(chan error, owners)
	for w := 0; w < owners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := o.NewArena()
			bo := o.Bound(a)
			rng := rand.New(rand.NewSource(int64(w)))
			base := int64(w) * 1_000_000 // disjoint key spaces
			var root *Node[int64, int64, int64]
			for i := 0; i < 4000; i++ {
				k := base + int64(rng.Intn(200))
				nr := bo.Insert(root, k, k*2)
				bo.Release(root)
				root = nr
				// Spot-check a key: a node stolen by another owner while
				// this version is live would corrupt keys or panic.
				if v, ok := bo.Find(root, k); !ok || v != k*2 {
					errs <- errAt(w, i, k, v, ok)
					return
				}
			}
			bo.Release(root)
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if o.Live() != 0 {
		t.Fatalf("leaked %d nodes", o.Live())
	}
}

type ownerErr struct {
	w, i int
	k, v int64
	ok   bool
}

func errAt(w, i int, k, v int64, ok bool) error { return ownerErr{w, i, k, v, ok} }
func (e ownerErr) Error() string {
	return "owner tree corrupted (cross-arena reuse of a live node?)"
}

// TestArenaSpillRefillMigration: nodes freed by one arena must become
// allocatable by another via the shared lists — spill on one side, refill
// on the other — without disturbing exact accounting.
func TestArenaSpillRefillMigration(t *testing.T) {
	o := arenaOps()
	a1 := o.NewArena()
	b1 := o.Bound(a1)
	// Build and fully release a chunky tree on arena 1: far more nodes
	// than one magazine holds, so the surplus spills to the global lists.
	var root *Node[int64, int64, int64]
	for i := int64(0); i < 4*magCap; i++ {
		nr := b1.Insert(root, i, i)
		b1.Release(root)
		root = nr
	}
	b1.Release(root)
	if o.Live() != 0 {
		t.Fatalf("phase 1 leaked %d nodes", o.Live())
	}
	_, spills, _ := a1.Stats()
	if spills == 0 {
		t.Fatalf("freeing %d nodes never spilled past magazine capacity %d", 4*magCap, magCap)
	}

	// Arena 2 must refill off those spilled nodes rather than carving
	// fresh chunks for everything.
	a2 := o.NewArena()
	b2 := o.Bound(a2)
	allocsBefore := o.Allocs()
	root = nil
	for i := int64(0); i < int64(magCap); i++ {
		nr := b2.Insert(root, i, i)
		b2.Release(root)
		root = nr
	}
	refills, _, _ := a2.Stats()
	if refills == 0 {
		t.Fatalf("arena 2 never refilled from the shared lists")
	}
	if o.Allocs() == allocsBefore {
		t.Fatalf("accounting stopped moving")
	}
	b2.Release(root)
	if o.Live() != 0 {
		t.Fatalf("phase 2 leaked %d nodes", o.Live())
	}
}

// TestArenaReserve: Reserve must make the next n allocations magazine or
// chunk hits and must never shrink what is already parked.
func TestArenaReserve(t *testing.T) {
	o := arenaOps()
	a := o.NewArena()
	bo := o.Bound(a)
	const n = 3 * magCap
	a.Reserve(n)
	if got := a.Cached(); got < n {
		t.Fatalf("Reserve(%d) left only %d cached", n, got)
	}
	carvesBefore, refillsBefore := int64(0), int64(0)
	refillsBefore, _, carvesBefore = a.Stats()
	entries := make([]Entry[int64, int64], n)
	for i := range entries {
		entries[i] = Entry[int64, int64]{Key: int64(i), Val: int64(i)}
	}
	root := bo.Build(entries)
	refillsAfter, _, carvesAfter := a.Stats()
	if carvesAfter != carvesBefore || refillsAfter != refillsBefore {
		t.Fatalf("reserved build still hit the slow path: carves %d→%d refills %d→%d",
			carvesBefore, carvesAfter, refillsBefore, refillsAfter)
	}
	bo.Release(root)
	if o.Live() != 0 {
		t.Fatalf("leaked %d nodes", o.Live())
	}
}

// TestArenaParallelBulk: with Grain forcing forks, parallel bulk ops on a
// bound view must stay correct and exact — forked branches run on the
// unbound root (see maybeParallel), the spine keeps the arena.  Run with
// -race this doubles as the no-two-goroutines-on-one-arena check.
func TestArenaParallelBulk(t *testing.T) {
	o := New[int64, int64, int64](IntCmp[int64], SumAug[int64](), 64)
	o.Recycle = true
	a := o.NewArena()
	bo := o.Bound(a)
	rng := rand.New(rand.NewSource(7))
	var root *Node[int64, int64, int64]
	model := map[int64]int64{}
	for round := 0; round < 10; round++ {
		batch := make([]Entry[int64, int64], 1000)
		for i := range batch {
			k := int64(rng.Intn(5000))
			batch[i] = Entry[int64, int64]{Key: k, Val: int64(round)}
		}
		for _, e := range batch {
			model[e.Key] = e.Val
		}
		nr := bo.MultiInsert(root, batch, nil)
		bo.Release(root)
		root = nr
		if live, reach := o.Live(), o.ReachableNodes(root); live != reach {
			t.Fatalf("round %d: live %d ≠ reachable %d", round, live, reach)
		}
	}
	if got, want := bo.Size(root), int64(len(model)); got != want {
		t.Fatalf("size %d, want %d", got, want)
	}
	for k, v := range model {
		if got, ok := bo.Find(root, k); !ok || got != v {
			t.Fatalf("key %d: got (%d,%v), want %d", k, got, ok, v)
		}
	}
	bo.Release(root)
	if o.Live() != 0 {
		t.Fatalf("leaked %d nodes", o.Live())
	}
}

// TestArenaFlush: Flush must park nothing and push everything back where
// other arenas can get it.
func TestArenaFlush(t *testing.T) {
	o := arenaOps()
	a := o.NewArena()
	bo := o.Bound(a)
	var root *Node[int64, int64, int64]
	for i := int64(0); i < 100; i++ {
		nr := bo.Insert(root, i, i)
		bo.Release(root)
		root = nr
	}
	bo.Release(root) // everything parks in the magazine
	if a.Cached() == 0 {
		t.Fatalf("nothing parked before Flush")
	}
	a.Flush()
	if a.Cached() != 0 {
		t.Fatalf("%d nodes still parked after Flush", a.Cached())
	}
	if o.Live() != 0 {
		t.Fatalf("leaked %d nodes", o.Live())
	}
	// The flushed nodes are now on the global lists, available to any
	// arena or to the unbound root.
	parked := 0
	for i := range o.sh.free {
		for n := o.sh.free[i].head; n != nil; n = n.right {
			parked++
		}
	}
	if parked == 0 {
		t.Fatalf("global lists empty after Flush")
	}
}

// TestDeleteAbsentSharesInput: the fused single-pass Delete must return a
// token on the unchanged input for absent keys and allocate nothing.
func TestDeleteAbsentSharesInput(t *testing.T) {
	o := arenaOps()
	var root *Node[int64, int64, int64]
	for i := int64(0); i < 100; i++ {
		nr := o.Insert(root, 2*i, i)
		o.Release(root)
		root = nr
	}
	allocs := o.Allocs()
	out := o.Delete(root, 51) // absent (odd)
	if out != root {
		t.Fatalf("absent-key delete returned a different tree")
	}
	if o.Allocs() != allocs {
		t.Fatalf("absent-key delete allocated %d nodes", o.Allocs()-allocs)
	}
	o.Release(out)
	o.Release(root)
	if o.Live() != 0 {
		t.Fatalf("leaked %d nodes", o.Live())
	}
}

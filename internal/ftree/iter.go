package ftree

// Iter is an in-order iterator over a borrowed tree, with O(log n) seek
// and amortized O(1) advance.  It holds no tokens: the tree version must
// stay live (e.g. inside a read transaction) for the iterator's lifetime.
// Because versions are immutable, iterators never observe mutation and
// need no invalidation protocol — one more consequence of the functional
// representation.
//
// An Iter is reusable: Reset and SeekGE re-position it on a (possibly
// different) tree of the same Ops family while keeping the descent
// stack's backing array, so a warm re-seek allocates nothing.  That is
// what makes iterators poolable — the shard layer keeps S of them parked
// per scan slot and re-seeks them for every scan (see internal/shard's
// scan state pool).  Like an Arena, a given Iter is single-owner state:
// it may be reused freely, but never concurrently.
type Iter[K, V, A any] struct {
	ops   *Ops[K, V, A]
	stack []*Node[K, V, A] // path of nodes whose entry is still pending
	cur   *Node[K, V, A]
}

// NewIter returns an iterator positioned at t's smallest entry; Valid
// reports whether any entry exists.
func (o *Ops[K, V, A]) NewIter(t *Node[K, V, A]) *Iter[K, V, A] {
	it := &Iter[K, V, A]{ops: o}
	it.Reset(t)
	return it
}

// NewIterAt returns an iterator positioned at the smallest entry with
// key ≥ k.
func (o *Ops[K, V, A]) NewIterAt(t *Node[K, V, A], k K) *Iter[K, V, A] {
	it := &Iter[K, V, A]{ops: o}
	it.SeekGE(t, k)
	return it
}

// Bind attaches a zero-value Iter to an Ops family so a pooled iterator
// can be created without going through NewIter's seek.  Reset or SeekGE
// must follow before use.
func (it *Iter[K, V, A]) Bind(o *Ops[K, V, A]) { it.ops = o }

// Reset re-positions the iterator at borrowed tree t's smallest entry,
// reusing the descent stack's backing array: after the stack has grown to
// the tree's height once, further Resets allocate nothing.
func (it *Iter[K, V, A]) Reset(t *Node[K, V, A]) {
	it.stack = it.stack[:0]
	it.descendLeft(t)
	it.advance()
}

// SeekGE re-positions the iterator at the smallest entry of borrowed tree
// t with key ≥ k, in O(log n).  Like Reset it keeps the stack's backing
// array, so a warm seek is allocation-free.
func (it *Iter[K, V, A]) SeekGE(t *Node[K, V, A], k K) {
	it.stack = it.stack[:0]
	for t != nil {
		c := it.ops.Cmp(k, t.key)
		switch {
		case c == 0:
			it.stack = append(it.stack, t)
			t = nil
		case c < 0:
			it.stack = append(it.stack, t)
			t = t.left
		default:
			t = t.right
		}
	}
	it.advance()
}

func (it *Iter[K, V, A]) descendLeft(t *Node[K, V, A]) {
	for t != nil {
		it.stack = append(it.stack, t)
		t = t.left
	}
}

// advance moves to the next pending entry.
func (it *Iter[K, V, A]) advance() {
	if len(it.stack) == 0 {
		it.cur = nil
		return
	}
	it.cur = it.stack[len(it.stack)-1]
	it.stack = it.stack[:len(it.stack)-1]
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iter[K, V, A]) Valid() bool { return it.cur != nil }

// Key returns the current entry's key; requires Valid.
func (it *Iter[K, V, A]) Key() K { return it.cur.key }

// Val returns the current entry's value; requires Valid.
func (it *Iter[K, V, A]) Val() V { return it.cur.val }

// Next moves to the following entry in key order.
func (it *Iter[K, V, A]) Next() {
	if it.cur == nil {
		return
	}
	it.descendLeft(it.cur.right)
	it.advance()
}

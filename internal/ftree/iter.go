package ftree

// Iter is an in-order iterator over a borrowed tree, with O(log n) seek
// and amortized O(1) advance.  It holds no tokens: the tree version must
// stay live (e.g. inside a read transaction) for the iterator's lifetime.
// Because versions are immutable, iterators never observe mutation and
// need no invalidation protocol — one more consequence of the functional
// representation.
type Iter[K, V, A any] struct {
	ops   *Ops[K, V, A]
	stack []*Node[K, V, A] // path of nodes whose entry is still pending
	cur   *Node[K, V, A]
}

// NewIter returns an iterator positioned at t's smallest entry; Valid
// reports whether any entry exists.
func (o *Ops[K, V, A]) NewIter(t *Node[K, V, A]) *Iter[K, V, A] {
	it := &Iter[K, V, A]{ops: o}
	it.descendLeft(t)
	it.advance()
	return it
}

// NewIterAt returns an iterator positioned at the smallest entry with
// key ≥ k.
func (o *Ops[K, V, A]) NewIterAt(t *Node[K, V, A], k K) *Iter[K, V, A] {
	it := &Iter[K, V, A]{ops: o}
	for t != nil {
		c := o.Cmp(k, t.key)
		switch {
		case c == 0:
			it.stack = append(it.stack, t)
			t = nil
		case c < 0:
			it.stack = append(it.stack, t)
			t = t.left
		default:
			t = t.right
		}
	}
	it.advance()
	return it
}

func (it *Iter[K, V, A]) descendLeft(t *Node[K, V, A]) {
	for t != nil {
		it.stack = append(it.stack, t)
		t = t.left
	}
}

// advance moves to the next pending entry.
func (it *Iter[K, V, A]) advance() {
	if len(it.stack) == 0 {
		it.cur = nil
		return
	}
	it.cur = it.stack[len(it.stack)-1]
	it.stack = it.stack[:len(it.stack)-1]
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iter[K, V, A]) Valid() bool { return it.cur != nil }

// Key returns the current entry's key; requires Valid.
func (it *Iter[K, V, A]) Key() K { return it.cur.key }

// Val returns the current entry's value; requires Valid.
func (it *Iter[K, V, A]) Val() V { return it.cur.val }

// Next moves to the following entry in key order.
func (it *Iter[K, V, A]) Next() {
	if it.cur == nil {
		return
	}
	it.descendLeft(it.cur.right)
	it.advance()
}

package ftree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIterEmpty(t *testing.T) {
	o := intOps(0)
	it := o.NewIter(nil)
	if it.Valid() {
		t.Fatal("iterator over empty tree is valid")
	}
	it.Next() // must not panic
}

func TestIterFullScan(t *testing.T) {
	o := intOps(0)
	rng := rand.New(rand.NewSource(13))
	root, ref := buildRandom(o, rng, 1000, 5000)
	var prev int64 = -1
	n := 0
	for it := o.NewIter(root); it.Valid(); it.Next() {
		if it.Key() <= prev {
			t.Fatalf("keys out of order: %d after %d", it.Key(), prev)
		}
		if ref[it.Key()] != it.Val() {
			t.Fatalf("key %d = %d, want %d", it.Key(), it.Val(), ref[it.Key()])
		}
		prev = it.Key()
		n++
	}
	if n != len(ref) {
		t.Fatalf("visited %d entries, want %d", n, len(ref))
	}
	o.Release(root)
	checkExact(t, o)
}

func TestIterSeek(t *testing.T) {
	o := intOps(0)
	var root *Node[int64, int64, int64]
	for i := int64(0); i < 100; i += 2 { // even keys 0..98
		nr := o.Insert(root, i, i)
		o.Release(root)
		root = nr
	}
	cases := []struct {
		seek int64
		want int64 // first key ≥ seek; -1 for exhausted
	}{{-5, 0}, {0, 0}, {1, 2}, {50, 50}, {51, 52}, {98, 98}, {99, -1}, {1000, -1}}
	for _, c := range cases {
		it := o.NewIterAt(root, c.seek)
		if c.want == -1 {
			if it.Valid() {
				t.Fatalf("seek(%d): valid at %d, want exhausted", c.seek, it.Key())
			}
			continue
		}
		if !it.Valid() || it.Key() != c.want {
			t.Fatalf("seek(%d) at %v, want %d", c.seek, it, c.want)
		}
	}
	// Seek then scan covers the ordered suffix.
	n := 0
	for it := o.NewIterAt(root, 51); it.Valid(); it.Next() {
		n++
	}
	if n != 24 { // 52..98 step 2
		t.Fatalf("suffix scan visited %d, want 24", n)
	}
	o.Release(root)
}

// TestIterReuse: Reset and SeekGE re-position one iterator across
// different trees of the same family, and a value-typed Bind+SeekGE works
// exactly like NewIterAt — the contract the shard scan pool leans on.
func TestIterReuse(t *testing.T) {
	o := intOps(0)
	rng := rand.New(rand.NewSource(29))
	rootA, refA := buildRandom(o, rng, 500, 2000)
	rootB, refB := buildRandom(o, rng, 500, 2000)

	var it Iter[int64, int64, int64] // zero value, as pooled state
	it.Bind(o)
	count := func(reseek func()) int {
		reseek()
		n := 0
		for ; it.Valid(); it.Next() {
			n++
		}
		return n
	}
	if n := count(func() { it.Reset(rootA) }); n != len(refA) {
		t.Fatalf("Reset(A) visited %d, want %d", n, len(refA))
	}
	if n := count(func() { it.Reset(rootB) }); n != len(refB) {
		t.Fatalf("Reset(B) after A visited %d, want %d", n, len(refB))
	}
	// SeekGE on a reused iterator matches a fresh NewIterAt.
	for seek := int64(0); seek < 2100; seek += 97 {
		fresh := o.NewIterAt(rootA, seek)
		it.SeekGE(rootA, seek)
		if it.Valid() != fresh.Valid() {
			t.Fatalf("SeekGE(%d): valid=%v, fresh=%v", seek, it.Valid(), fresh.Valid())
		}
		if it.Valid() && (it.Key() != fresh.Key() || it.Val() != fresh.Val()) {
			t.Fatalf("SeekGE(%d) at %d, fresh at %d", seek, it.Key(), fresh.Key())
		}
	}
	o.Release(rootA)
	o.Release(rootB)
	checkExact(t, o)
}

// TestIterWarmSeekNoAlloc pins the pooling payoff: once the descent stack
// has grown to the tree's height, Reset and SeekGE never touch the heap.
func TestIterWarmSeekNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are meaningless")
	}
	o := intOps(0)
	rng := rand.New(rand.NewSource(31))
	root, _ := buildRandom(o, rng, 5000, 20000)
	defer o.Release(root)

	var it Iter[int64, int64, int64]
	it.Bind(o)
	it.Reset(root) // grow the stack once
	seek := int64(0)
	allocs := testing.AllocsPerRun(200, func() {
		it.SeekGE(root, seek)
		for i := 0; i < 10 && it.Valid(); i++ {
			it.Next()
		}
		it.Reset(root)
		seek = (seek + 613) % 20000
	})
	if allocs != 0 {
		t.Fatalf("warm re-seek allocates %.1f times per run", allocs)
	}
}

// TestIterQuickMatchesEntries: for random trees, iteration equals the
// recursive in-order traversal, from any seek point.
func TestIterQuickMatchesEntries(t *testing.T) {
	o := intOps(0)
	f := func(seed int64, seekRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		root, _ := buildRandom(o, rng, 200, 400)
		defer o.Release(root)
		seek := int64(seekRaw) % 450
		var want []Entry[int64, int64]
		o.ForEach(root, func(k, v int64) {
			if k >= seek {
				want = append(want, Entry[int64, int64]{k, v})
			}
		})
		var got []Entry[int64, int64]
		for it := o.NewIterAt(root, seek); it.Valid(); it.Next() {
			got = append(got, Entry[int64, int64]{it.Key(), it.Val()})
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
	checkExact(t, o)
}

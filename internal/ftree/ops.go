package ftree

// Augmenter computes the augmented value attached to every subtree, in the
// style of PAM's augmented maps: an associative Combine with identity Zero
// folded over the in-order sequence of Single(k, v) values.  Range-sum
// queries (Table 2's workload) use a sum augmenter; the inverted index uses
// a max-weight augmenter.
type Augmenter[K, V, A any] interface {
	// Zero is the augmented value of the empty tree.
	Zero() A
	// Single is the augmented value of a single entry.
	Single(k K, v V) A
	// Combine merges the augmented values of adjacent in-order ranges.
	// It must be associative with Zero as identity.
	Combine(a, b A) A
}

// Ops holds the comparison function, augmenter and allocation accounting
// for one family of trees.  All trees operated on by the same Ops family
// share its statistics.  Ops is safe for concurrent use.
//
// An Ops value is either the root returned by New, or an arena-bound view
// returned by Bound: a shallow copy that routes node allocation and
// collection through a caller-owned Arena with no locks or shared-state
// atomics (see arena.go).  Views share the root's statistics and global
// free lists, so Allocs/Frees/Live stay exact however allocation is
// routed.  Construct Ops only through New; the zero value is unusable.
type Ops[K, V, A any] struct {
	// Cmp is a three-way comparison: negative if a<b, zero if equal.
	Cmp func(a, b K) int
	// Aug computes subtree augmentations; see Augmenter.
	Aug Augmenter[K, V, A]
	// Grain is the sequential cutoff for parallel divide-and-conquer:
	// subproblems with at most Grain keys run sequentially.  Zero means
	// fully sequential.  DESIGN.md lists this as an ablation.
	Grain int
	// NoSteal disables decompose's exclusive-node fast path (ablation).
	NoSteal bool
	// Recycle routes freed nodes back to the next mk — through the bound
	// Arena's magazine when one is attached, through the sharded global
	// free lists otherwise — making the collector's "free instruction"
	// literal (the paper's C++ implementation reuses version memory the
	// same way).  Safe because precise GC guarantees a freed node is
	// reachable from no live version.  core.NewMap turns this on by
	// default; BenchmarkAblationRecycle quantifies the difference.
	Recycle bool

	// RetainVal and ReleaseVal make values themselves reference-counted
	// resources (e.g. inner trees of a nested map, as in the paper's
	// inverted index §7.2).  When set, the tree operations call RetainVal
	// every time they copy a value out of a node that stays alive, and
	// ReleaseVal when a node holding a value is freed or a bulk operation
	// drops a value.  Ownership contract: every value passed into an
	// operation (Insert's v, batch entries, combine results) is an owned
	// reference that the tree consumes; combine functions receive two
	// owned references and must return an owned reference.  Leave both nil
	// for plain values.
	RetainVal  func(V) V
	ReleaseVal func(V)

	// sh is the allocation state shared by the root Ops and every bound
	// view: statistics plus the sharded global free lists that magazines
	// spill to and refill from.  Set by New.
	sh *allocShared[K, V, A]
	// arena is the pid-local magazine this view allocates through; nil on
	// the root Ops (global sharded lists with per-shard locking).
	arena *Arena[K, V, A]
	// root points back at the unbound Ops a view was Bound from; nil on
	// the root itself.  maybeParallel hands forked goroutines the root so
	// a single-owner arena is never touched from two goroutines.
	root *Ops[K, V, A]
}

// retainVal duplicates a value reference when values are refcounted.
func (o *Ops[K, V, A]) retainVal(v V) V {
	if o.RetainVal != nil {
		return o.RetainVal(v)
	}
	return v
}

// releaseVal drops an owned value reference.
func (o *Ops[K, V, A]) releaseVal(v V) {
	if o.ReleaseVal != nil {
		o.ReleaseVal(v)
	}
}

// New returns an Ops for the given comparison and augmenter with parallel
// grain g.
func New[K, V, A any](cmp func(a, b K) int, aug Augmenter[K, V, A], g int) *Ops[K, V, A] {
	return &Ops[K, V, A]{Cmp: cmp, Aug: aug, Grain: g, sh: &allocShared[K, V, A]{}}
}

// Bound returns a view of o whose allocations and frees go through arena a
// with no locks or atomics: the fast path for a process that owns a (see
// Arena).  The view shares o's statistics and global free lists, and
// captures o's configuration at call time.  Like the arena itself, the
// view's mutating operations must not run concurrently with each other;
// read-only operations (Find, ForEach, AugRange, ...) touch no allocator
// state and stay safe from any goroutine.
func (o *Ops[K, V, A]) Bound(a *Arena[K, V, A]) *Ops[K, V, A] {
	if a != nil && a.sh != o.sh {
		panic("ftree: Bound with an arena from a different Ops family")
	}
	root := o
	if o.root != nil {
		root = o.root
	}
	v := *root
	v.arena = a
	v.root = root
	return &v
}

// Unbound returns the root Ops a view was Bound from (o itself when o is
// already the root).  Parallel forks allocate through it so a single-owner
// arena never crosses goroutines.
func (o *Ops[K, V, A]) Unbound() *Ops[K, V, A] {
	if o.root != nil {
		return o.root
	}
	return o
}

// Reserve pre-fills the bound arena so the next n allocations hit the
// magazine without touching the shared lists — the combining writer calls
// this before applying an n-entry batch, turning n per-node lock
// acquisitions into O(n/M) block transfers.  It is a no-op on an unbound
// Ops or with Recycle off.
func (o *Ops[K, V, A]) Reserve(n int) {
	if o.arena != nil && o.Recycle {
		o.arena.Reserve(n)
	}
}

// Entry is a key-value pair, used by batch operations and iteration.
type Entry[K, V any] struct {
	Key K
	Val V
}

// noAug is the trivial augmenter for plain maps.
type noAug[K, V any] struct{}

func (noAug[K, V]) Zero() struct{}                 { return struct{}{} }
func (noAug[K, V]) Single(K, V) struct{}           { return struct{}{} }
func (noAug[K, V]) Combine(_, _ struct{}) struct{} { return struct{}{} }

// NoAug returns the trivial augmenter for plain (unaugmented) maps.
func NoAug[K, V any]() Augmenter[K, V, struct{}] { return noAug[K, V]{} }

// sumAug augments with the sum of values, for range-sum queries.
type sumAug[K any] struct{}

func (sumAug[K]) Zero() int64               { return 0 }
func (sumAug[K]) Single(_ K, v int64) int64 { return v }
func (sumAug[K]) Combine(a, b int64) int64  { return a + b }

// SumAug returns an augmenter computing the sum of int64 values; this is
// the augmentation used for the paper's range-sum query workload (§7.1).
func SumAug[K any]() Augmenter[K, int64, int64] { return sumAug[K]{} }

// maxAug augments with the maximum value, as in the inverted index's
// max-weight-in-subtree augmentation (§7.2).
type maxAug[K any] struct{}

func (maxAug[K]) Zero() int64               { return -1 << 62 }
func (maxAug[K]) Single(_ K, v int64) int64 { return v }
func (maxAug[K]) Combine(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// MaxAug returns an augmenter computing the maximum int64 value in a
// subtree.
func MaxAug[K any]() Augmenter[K, int64, int64] { return maxAug[K]{} }

// IntCmp is a three-way comparison for any ordered integer type.
func IntCmp[T ~int | ~int32 | ~int64 | ~uint | ~uint32 | ~uint64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

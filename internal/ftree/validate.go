package ftree

import "fmt"

// Invariant checking and debugging support.  These walk borrowed trees and
// are used by the property tests; they are not part of the hot paths.

// Validate checks every structural invariant of borrowed tree t: BST key
// order, BB[α] weight balance, correct cached sizes and augmented values,
// and positive reference counts on every reachable node.  It returns the
// first violation found, or nil.
func (o *Ops[K, V, A]) Validate(t *Node[K, V, A], augEqual func(a, b A) bool) error {
	_, err := o.validate(t, nil, nil, augEqual)
	return err
}

func (o *Ops[K, V, A]) validate(t *Node[K, V, A], lo, hi *K, augEqual func(a, b A) bool) (int64, error) {
	if t == nil {
		return 0, nil
	}
	if r := t.ref.Load(); r <= 0 {
		return 0, fmt.Errorf("ftree: reachable node has ref %d", r)
	}
	if lo != nil && o.Cmp(t.key, *lo) <= 0 {
		return 0, fmt.Errorf("ftree: key order violated (≤ lower bound)")
	}
	if hi != nil && o.Cmp(t.key, *hi) >= 0 {
		return 0, fmt.Errorf("ftree: key order violated (≥ upper bound)")
	}
	ls, err := o.validate(t.left, lo, &t.key, augEqual)
	if err != nil {
		return 0, err
	}
	rs, err := o.validate(t.right, &t.key, hi, augEqual)
	if err != nil {
		return 0, err
	}
	if t.size != ls+rs+1 {
		return 0, fmt.Errorf("ftree: size cache %d, computed %d", t.size, ls+rs+1)
	}
	if !balancedWeights(ls+1, rs+1) {
		return 0, fmt.Errorf("ftree: weight balance violated: |left|=%d |right|=%d", ls, rs)
	}
	if augEqual != nil {
		want := o.Aug.Single(t.key, t.val)
		if t.left != nil {
			want = o.Aug.Combine(t.left.aug, want)
		}
		if t.right != nil {
			want = o.Aug.Combine(want, t.right.aug)
		}
		if !augEqual(t.aug, want) {
			return 0, fmt.Errorf("ftree: augmentation cache mismatch at key %v", t.key)
		}
	}
	return ls + rs + 1, nil
}

// Height returns the height of borrowed tree t (0 for empty).
func (o *Ops[K, V, A]) Height(t *Node[K, V, A]) int {
	if t == nil {
		return 0
	}
	lh := o.Height(t.left)
	rh := o.Height(t.right)
	if lh > rh {
		return lh + 1
	}
	return rh + 1
}

// ReachableNodes counts the distinct nodes reachable from the given
// borrowed roots; the GC-exactness property tests compare this against
// Live().
func (o *Ops[K, V, A]) ReachableNodes(roots ...*Node[K, V, A]) int64 {
	seen := make(map[*Node[K, V, A]]struct{})
	var walk func(*Node[K, V, A])
	walk = func(n *Node[K, V, A]) {
		if n == nil {
			return
		}
		if _, ok := seen[n]; ok {
			return
		}
		seen[n] = struct{}{}
		walk(n.left)
		walk(n.right)
	}
	for _, r := range roots {
		walk(r)
	}
	return int64(len(seen))
}

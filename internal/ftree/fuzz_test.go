package ftree

import (
	"testing"
)

// FuzzTreeOps drives the persistent map with an op sequence decoded from
// fuzz input, checking contents against a reference map, structural
// invariants, and exact space accounting.  Run long with
// `go test -fuzz FuzzTreeOps ./internal/ftree`.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{1, 10, 2, 20, 3, 30})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2, 2})
	f.Add([]byte{255, 254, 253, 252, 251, 250})
	f.Fuzz(func(t *testing.T, data []byte) {
		o := intOps(0)
		var root *Node[int64, int64, int64]
		var snaps []*Node[int64, int64, int64]
		ref := map[int64]int64{}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%5, int64(data[i+1])
			switch op {
			case 0, 1: // insert
				nr := o.Insert(root, arg, int64(i))
				o.Release(root)
				root = nr
				ref[arg] = int64(i)
			case 2: // delete
				nr := o.Delete(root, arg)
				o.Release(root)
				root = nr
				delete(ref, arg)
			case 3: // snapshot
				if len(snaps) < 8 {
					snaps = append(snaps, o.share(root))
				}
			case 4: // find must agree with the model
				got, ok := o.Find(root, arg)
				want, wantOK := ref[arg]
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("find(%d) = %d,%v want %d,%v", arg, got, ok, want, wantOK)
				}
			}
		}
		if err := o.Validate(root, augEq); err != nil {
			t.Fatal(err)
		}
		if o.Size(root) != int64(len(ref)) {
			t.Fatalf("size %d want %d", o.Size(root), len(ref))
		}
		all := append(snaps, root)
		if o.Live() != o.ReachableNodes(all...) {
			t.Fatalf("allocated %d ≠ reachable %d", o.Live(), o.ReachableNodes(all...))
		}
		for _, s := range all {
			o.Release(s)
		}
		if o.Live() != 0 {
			t.Fatalf("leaked %d nodes", o.Live())
		}
	})
}

package ftree

// Weight-balanced (BB[α]) trees with α = 1/4: two subtrees may hang from
// the same node iff neither weight exceeds three times the other.  α = 1/4
// lies in the range for which the join-based algorithms of Blelloch,
// Ferizovic and Sun ("Just Join for Parallel Ordered Sets", SPAA 2016) —
// the algorithms inside the PAM library used by the paper — preserve
// balance.

// balancedWeights reports whether weights wl and wr may be siblings.
func balancedWeights(wl, wr int64) bool { return wl <= 3*wr && wr <= 3*wl }

// isBalancedPair reports whether trees l and r may be joined directly.
func isBalancedPair[K, V, A any](l, r *Node[K, V, A]) bool {
	return balancedWeights(weight(l), weight(r))
}

// Join combines owned trees l and r and entry (k, v) where every key of l
// is less than k and every key of r is greater, rebalancing as needed.
// O(|log w(l) − log w(r)|) amortized.  Consumes l and r.
func (o *Ops[K, V, A]) Join(l *Node[K, V, A], k K, v V, r *Node[K, V, A]) *Node[K, V, A] {
	switch {
	case isBalancedPair(l, r):
		return o.mk(l, k, v, r)
	case weight(l) > weight(r):
		return o.joinRight(l, k, v, r)
	default:
		return o.joinLeft(l, k, v, r)
	}
}

// joinRight handles w(l) > 3·w(r): descend l's right spine until the join
// balances, then restore balance on the way up with the single/double
// rotations of joinRightWB (Just Join, Figure 1).  Consumes l and r.
func (o *Ops[K, V, A]) joinRight(l *Node[K, V, A], k K, v V, r *Node[K, V, A]) *Node[K, V, A] {
	lk, lv, ll, lr := o.decompose(l)
	var t1 *Node[K, V, A]
	if balancedWeights(weight(lr), weight(r)) {
		t1 = o.mk(lr, k, v, r)
	} else {
		t1 = o.joinRight(lr, k, v, r)
	}
	if balancedWeights(weight(ll), weight(t1)) {
		return o.mk(ll, lk, lv, t1)
	}
	// t1 grew too heavy for ll.  Expose t1 = (l1, k1, r1) and rotate.
	k1, v1, l1, r1 := o.decompose(t1)
	if balancedWeights(weight(ll), weight(l1)) &&
		balancedWeights(weight(ll)+weight(l1), weight(r1)) {
		// single left rotation: ((ll lk l1) k1 r1)
		return o.mk(o.mk(ll, lk, lv, l1), k1, v1, r1)
	}
	// double rotation: rotate l1 right inside t1, then the whole left.
	k2, v2, l1l, l1r := o.decompose(l1)
	return o.mk(o.mk(ll, lk, lv, l1l), k2, v2, o.mk(l1r, k1, v1, r1))
}

// joinLeft mirrors joinRight for w(r) > 3·w(l).  Consumes l and r.
func (o *Ops[K, V, A]) joinLeft(l *Node[K, V, A], k K, v V, r *Node[K, V, A]) *Node[K, V, A] {
	rk, rv, rl, rr := o.decompose(r)
	var t1 *Node[K, V, A]
	if balancedWeights(weight(l), weight(rl)) {
		t1 = o.mk(l, k, v, rl)
	} else {
		t1 = o.joinLeft(l, k, v, rl)
	}
	if balancedWeights(weight(t1), weight(rr)) {
		return o.mk(t1, rk, rv, rr)
	}
	k1, v1, l1, r1 := o.decompose(t1)
	if balancedWeights(weight(r1), weight(rr)) &&
		balancedWeights(weight(r1)+weight(rr), weight(l1)) {
		// single right rotation: (l1 k1 (r1 rk rr))
		return o.mk(l1, k1, v1, o.mk(r1, rk, rv, rr))
	}
	// double rotation through r1.
	k2, v2, r1l, r1r := o.decompose(r1)
	return o.mk(o.mk(l1, k1, v1, r1l), k2, v2, o.mk(r1r, rk, rv, rr))
}

// Join2 concatenates owned trees l and r (all keys of l below all keys of
// r) without a middle entry.  Consumes both.
func (o *Ops[K, V, A]) Join2(l, r *Node[K, V, A]) *Node[K, V, A] {
	if l == nil {
		return r
	}
	l2, k, v := o.splitLast(l)
	return o.Join(l2, k, v, r)
}

// splitLast removes the maximum entry from owned tree t, returning the
// remaining tree and the entry.  Consumes t.
func (o *Ops[K, V, A]) splitLast(t *Node[K, V, A]) (rest *Node[K, V, A], k K, v V) {
	tk, tv, l, r := o.decompose(t)
	if r == nil {
		return l, tk, tv
	}
	r2, k, v := o.splitLast(r)
	return o.Join(l, tk, tv, r2), k, v
}

// Split divides borrowed tree t by key k into owned trees of keys below
// and above k, reporting k's value if present.  O(log n).
func (o *Ops[K, V, A]) Split(t *Node[K, V, A], k K) (l, r *Node[K, V, A], found bool, fv V) {
	if t == nil {
		return nil, nil, false, fv
	}
	c := o.Cmp(k, t.key)
	switch {
	case c == 0:
		return o.share(t.left), o.share(t.right), true, t.val
	case c < 0:
		ll, lr, f, v := o.Split(t.left, k)
		return ll, o.Join(lr, t.key, o.retainVal(t.val), o.share(t.right)), f, v
	default:
		rl, rr, f, v := o.Split(t.right, k)
		return o.Join(o.share(t.left), t.key, o.retainVal(t.val), rl), rr, f, v
	}
}

// splitOwned is Split for an owned tree: it consumes its token on t, which
// lets union-style algorithms destructure exclusively-owned intermediate
// trees without touching shared subtrees.
func (o *Ops[K, V, A]) splitOwned(t *Node[K, V, A], k K) (l, r *Node[K, V, A], found bool, fv V) {
	if t == nil {
		return nil, nil, false, fv
	}
	tk, tv, tl, tr := o.decompose(t)
	c := o.Cmp(k, tk)
	switch {
	case c == 0:
		return tl, tr, true, tv
	case c < 0:
		ll, lr, f, v := o.splitOwned(tl, k)
		return ll, o.Join(lr, tk, tv, tr), f, v
	default:
		rl, rr, f, v := o.splitOwned(tr, k)
		return o.Join(tl, tk, tv, rl), rr, f, v
	}
}

// Find looks k up in borrowed tree t.  Pure reads: no reference-count
// traffic, no synchronization — this is why the paper's read transactions
// are delay-free.
func (o *Ops[K, V, A]) Find(t *Node[K, V, A], k K) (V, bool) {
	for t != nil {
		c := o.Cmp(k, t.key)
		if c == 0 {
			return t.val, true
		}
		if c < 0 {
			t = t.left
		} else {
			t = t.right
		}
	}
	var zero V
	return zero, false
}

// Has reports whether k is present in borrowed tree t.
func (o *Ops[K, V, A]) Has(t *Node[K, V, A], k K) bool {
	_, ok := o.Find(t, k)
	return ok
}

// Insert returns a new owned tree equal to borrowed t with (k, v) added,
// replacing any existing value for k.  The original version is untouched
// (path copying, Figure 2).  O(log n).
func (o *Ops[K, V, A]) Insert(t *Node[K, V, A], k K, v V) *Node[K, V, A] {
	return o.InsertWith(t, k, v, nil)
}

// InsertWith is Insert with a combine function applied when k is already
// present: the stored value becomes comb(old, v).  A nil comb replaces.
func (o *Ops[K, V, A]) InsertWith(t *Node[K, V, A], k K, v V, comb func(old, new V) V) *Node[K, V, A] {
	if t == nil {
		return o.mk(nil, k, v, nil)
	}
	c := o.Cmp(k, t.key)
	switch {
	case c == 0:
		if comb != nil {
			v = comb(o.retainVal(t.val), v)
		} // plain replace: the old value stays owned by the old node
		return o.mk(o.share(t.left), k, v, o.share(t.right))
	case c < 0:
		return o.Join(o.InsertWith(t.left, k, v, comb), t.key, o.retainVal(t.val), o.share(t.right))
	default:
		return o.Join(o.share(t.left), t.key, o.retainVal(t.val), o.InsertWith(t.right, k, v, comb))
	}
}

// Delete returns a new owned tree equal to borrowed t with k removed.
// When k is absent the result shares the whole input.  One traversal in
// either case: the descent looks for k and only builds the path-copied
// spine on the way back up once k was found, so an absent key costs a pure
// search and allocates nothing.  O(log n).
func (o *Ops[K, V, A]) Delete(t *Node[K, V, A], k K) *Node[K, V, A] {
	if out, found := o.deleteFound(t, k); found {
		return out
	}
	return o.share(t)
}

// deleteFound searches borrowed t for k; when present it returns the new
// owned tree with k removed, otherwise it returns found == false having
// touched no reference counts.
func (o *Ops[K, V, A]) deleteFound(t *Node[K, V, A], k K) (out *Node[K, V, A], found bool) {
	if t == nil {
		return nil, false
	}
	c := o.Cmp(k, t.key)
	switch {
	case c == 0:
		return o.Join2(o.share(t.left), o.share(t.right)), true
	case c < 0:
		nl, ok := o.deleteFound(t.left, k)
		if !ok {
			return nil, false
		}
		return o.Join(nl, t.key, o.retainVal(t.val), o.share(t.right)), true
	default:
		nr, ok := o.deleteFound(t.right, k)
		if !ok {
			return nil, false
		}
		return o.Join(o.share(t.left), t.key, o.retainVal(t.val), nr), true
	}
}

// Size returns the number of keys in borrowed tree t.
func (o *Ops[K, V, A]) Size(t *Node[K, V, A]) int64 { return size(t) }

// Min returns the smallest entry of borrowed tree t.
func (o *Ops[K, V, A]) Min(t *Node[K, V, A]) (Entry[K, V], bool) {
	if t == nil {
		return Entry[K, V]{}, false
	}
	for t.left != nil {
		t = t.left
	}
	return Entry[K, V]{t.key, t.val}, true
}

// Max returns the largest entry of borrowed tree t.
func (o *Ops[K, V, A]) Max(t *Node[K, V, A]) (Entry[K, V], bool) {
	if t == nil {
		return Entry[K, V]{}, false
	}
	for t.right != nil {
		t = t.right
	}
	return Entry[K, V]{t.key, t.val}, true
}

// Select returns the entry with zero-based rank i in borrowed tree t.
func (o *Ops[K, V, A]) Select(t *Node[K, V, A], i int64) (Entry[K, V], bool) {
	for t != nil {
		ls := size(t.left)
		switch {
		case i < ls:
			t = t.left
		case i == ls:
			return Entry[K, V]{t.key, t.val}, true
		default:
			i -= ls + 1
			t = t.right
		}
	}
	return Entry[K, V]{}, false
}

// Rank returns the number of keys in borrowed tree t strictly below k.
func (o *Ops[K, V, A]) Rank(t *Node[K, V, A], k K) int64 {
	var r int64
	for t != nil {
		if o.Cmp(k, t.key) <= 0 {
			t = t.left
		} else {
			r += size(t.left) + 1
			t = t.right
		}
	}
	return r
}

package ftree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intOps(grain int) *Ops[int64, int64, int64] {
	return New[int64, int64, int64](IntCmp[int64], SumAug[int64](), grain)
}

func augEq(a, b int64) bool { return a == b }

// checkExact asserts the GC-exactness invariant: the allocated space equals
// the space reachable from the given live roots (Definitions 2.1 + 2.2 at
// node granularity).
func checkExact(t *testing.T, o *Ops[int64, int64, int64], roots ...*Node[int64, int64, int64]) {
	t.Helper()
	if live, reach := o.Live(), o.ReachableNodes(roots...); live != reach {
		t.Fatalf("allocated space %d ≠ reachable space %d", live, reach)
	}
}

func TestEmptyTree(t *testing.T) {
	o := intOps(0)
	if o.Size(nil) != 0 {
		t.Fatal("empty size")
	}
	if _, ok := o.Find(nil, 1); ok {
		t.Fatal("find in empty")
	}
	if got := o.AugRange(nil, 0, 100); got != 0 {
		t.Fatalf("empty range sum = %d", got)
	}
	if _, ok := o.Min(nil); ok {
		t.Fatal("min of empty")
	}
	d := o.Delete(nil, 1)
	if d != nil {
		t.Fatal("delete from empty")
	}
}

func TestInsertFindDelete(t *testing.T) {
	o := intOps(0)
	var root *Node[int64, int64, int64]
	ref := map[int64]int64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4000; i++ {
		k := int64(rng.Intn(1000))
		switch rng.Intn(3) {
		case 0, 1:
			v := int64(rng.Intn(1 << 20))
			nr := o.Insert(root, k, v)
			o.Release(root)
			root = nr
			ref[k] = v
		case 2:
			nr := o.Delete(root, k)
			o.Release(root)
			root = nr
			delete(ref, k)
		}
		if i%500 == 0 {
			if err := o.Validate(root, augEq); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			checkExact(t, o, root)
		}
	}
	if o.Size(root) != int64(len(ref)) {
		t.Fatalf("size %d, want %d", o.Size(root), len(ref))
	}
	for k, v := range ref {
		got, ok := o.Find(root, k)
		if !ok || got != v {
			t.Fatalf("find(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	o.Release(root)
	checkExact(t, o)
}

// TestPersistence: updating a tree must leave every older version's
// contents bit-for-bit intact.
func TestPersistence(t *testing.T) {
	o := intOps(0)
	type snap struct {
		root *Node[int64, int64, int64]
		ref  map[int64]int64
	}
	var root *Node[int64, int64, int64]
	ref := map[int64]int64{}
	var snaps []snap
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		for j := 0; j < 20; j++ {
			k, v := int64(rng.Intn(300)), int64(rng.Intn(1000))
			nr := o.Insert(root, k, v)
			o.Release(root)
			root = nr
			ref[k] = v
			if rng.Intn(4) == 0 {
				k := int64(rng.Intn(300))
				nr := o.Delete(root, k)
				o.Release(root)
				root = nr
				delete(ref, k)
			}
		}
		cp := make(map[int64]int64, len(ref))
		for k, v := range ref {
			cp[k] = v
		}
		snaps = append(snaps, snap{o.share(root), cp})
	}
	// Every snapshot must still read exactly as it did when taken.
	for i, s := range snaps {
		if o.Size(s.root) != int64(len(s.ref)) {
			t.Fatalf("snapshot %d: size %d want %d", i, o.Size(s.root), len(s.ref))
		}
		for k, v := range s.ref {
			if got, ok := o.Find(s.root, k); !ok || got != v {
				t.Fatalf("snapshot %d: find(%d) = %d,%v want %d", i, k, got, ok, v)
			}
		}
	}
	// Release snapshots in random order; accounting must stay exact.
	roots := []*Node[int64, int64, int64]{root}
	for _, s := range snaps {
		roots = append(roots, s.root)
	}
	rng.Shuffle(len(roots), func(i, j int) { roots[i], roots[j] = roots[j], roots[i] })
	for len(roots) > 0 {
		o.Release(roots[len(roots)-1])
		roots = roots[:len(roots)-1]
		checkExact(t, o, roots...)
	}
	if o.Live() != 0 {
		t.Fatalf("%d nodes leaked", o.Live())
	}
}

func TestBalanceInvariant(t *testing.T) {
	o := intOps(0)
	var root *Node[int64, int64, int64]
	// Sorted insertion is the classic adversary for unbalanced BSTs.
	for i := int64(0); i < 20000; i++ {
		nr := o.Insert(root, i, i)
		o.Release(root)
		root = nr
	}
	if err := o.Validate(root, augEq); err != nil {
		t.Fatal(err)
	}
	h := o.Height(root)
	bound := int(3.5*math.Log2(20000)) + 2
	if h > bound {
		t.Fatalf("height %d exceeds BB[1/4] bound %d", h, bound)
	}
	o.Release(root)
	checkExact(t, o)
}

// TestJoinExtremeSizes joins trees of wildly different weights, the case
// where naive rotation heuristics break the weight-balance invariant.
func TestJoinExtremeSizes(t *testing.T) {
	for _, sizes := range [][2]int64{{1, 100000}, {100000, 1}, {3, 50000}, {50000, 3}, {0, 10000}, {10000, 0}} {
		o := intOps(0)
		var l, r *Node[int64, int64, int64]
		for i := int64(0); i < sizes[0]; i++ {
			nr := o.Insert(l, i, i)
			o.Release(l)
			l = nr
		}
		for i := int64(0); i < sizes[1]; i++ {
			k := 1_000_000 + i
			nr := o.Insert(r, k, k)
			o.Release(r)
			r = nr
		}
		j := o.Join(l, 500_000, 0, r)
		if err := o.Validate(j, augEq); err != nil {
			t.Fatalf("join %v: %v", sizes, err)
		}
		if o.Size(j) != sizes[0]+sizes[1]+1 {
			t.Fatalf("join size %d", o.Size(j))
		}
		o.Release(j)
		checkExact(t, o)
	}
}

func TestSplit(t *testing.T) {
	o := intOps(0)
	var root *Node[int64, int64, int64]
	for i := int64(0); i < 1000; i += 2 { // even keys
		nr := o.Insert(root, i, i*10)
		o.Release(root)
		root = nr
	}
	for _, k := range []int64{-1, 0, 1, 499, 500, 999, 1000} {
		l, r, found, fv := o.Split(root, k)
		wantFound := k >= 0 && k < 1000 && k%2 == 0
		if found != wantFound {
			t.Fatalf("split(%d): found=%v want %v", k, found, wantFound)
		}
		if found && fv != k*10 {
			t.Fatalf("split(%d): value %d", k, fv)
		}
		o.ForEach(l, func(kk, _ int64) {
			if kk >= k {
				t.Fatalf("split(%d): %d in left", k, kk)
			}
		})
		o.ForEach(r, func(kk, _ int64) {
			if kk <= k {
				t.Fatalf("split(%d): %d in right", k, kk)
			}
		})
		if err := o.Validate(l, augEq); err != nil {
			t.Fatal(err)
		}
		if err := o.Validate(r, augEq); err != nil {
			t.Fatal(err)
		}
		o.Release(l)
		o.Release(r)
		checkExact(t, o, root)
	}
	o.Release(root)
	checkExact(t, o)
}

func buildRandom(o *Ops[int64, int64, int64], rng *rand.Rand, n int, keyRange int64) (*Node[int64, int64, int64], map[int64]int64) {
	var root *Node[int64, int64, int64]
	ref := map[int64]int64{}
	for i := 0; i < n; i++ {
		k, v := rng.Int63n(keyRange), rng.Int63n(1<<30)
		nr := o.Insert(root, k, v)
		o.Release(root)
		root = nr
		ref[k] = v
	}
	return root, ref
}

func TestSetOperations(t *testing.T) {
	for _, grain := range []int{0, 8} { // sequential and parallel
		rng := rand.New(rand.NewSource(3))
		o := intOps(grain)
		a, refA := buildRandom(o, rng, 800, 1000)
		b, refB := buildRandom(o, rng, 600, 1000)

		comb := func(x, y int64) int64 { return x + y }
		u := o.Union(a, b, comb)
		wantU := map[int64]int64{}
		for k, v := range refA {
			wantU[k] = v
		}
		for k, v := range refB {
			if av, ok := refA[k]; ok {
				wantU[k] = comb(av, v)
			} else {
				wantU[k] = v
			}
		}
		assertTreeEquals(t, o, u, wantU)

		i := o.Intersect(a, b, comb)
		wantI := map[int64]int64{}
		for k, av := range refA {
			if bv, ok := refB[k]; ok {
				wantI[k] = comb(av, bv)
			}
		}
		assertTreeEquals(t, o, i, wantI)

		d := o.Difference(a, b)
		wantD := map[int64]int64{}
		for k, av := range refA {
			if _, ok := refB[k]; !ok {
				wantD[k] = av
			}
		}
		assertTreeEquals(t, o, d, wantD)

		for _, r := range []*Node[int64, int64, int64]{u, i, d} {
			if err := o.Validate(r, augEq); err != nil {
				t.Fatal(err)
			}
		}
		checkExact(t, o, a, b, u, i, d)
		for _, r := range []*Node[int64, int64, int64]{a, b, u, i, d} {
			o.Release(r)
		}
		checkExact(t, o)
	}
}

func assertTreeEquals(t *testing.T, o *Ops[int64, int64, int64], root *Node[int64, int64, int64], want map[int64]int64) {
	t.Helper()
	if o.Size(root) != int64(len(want)) {
		t.Fatalf("size %d, want %d", o.Size(root), len(want))
	}
	o.ForEach(root, func(k, v int64) {
		if want[k] != v {
			t.Fatalf("key %d = %d, want %d", k, v, want[k])
		}
	})
}

func TestMultiInsert(t *testing.T) {
	for _, grain := range []int{0, 16} {
		rng := rand.New(rand.NewSource(4))
		o := intOps(grain)
		root, ref := buildRandom(o, rng, 500, 2000)
		batch := make([]Entry[int64, int64], 700)
		for i := range batch {
			batch[i] = Entry[int64, int64]{rng.Int63n(2000), rng.Int63n(1 << 20)}
		}
		// Reference: apply in order with overwrite semantics.
		for _, e := range batch {
			ref[e.Key] = e.Val
		}
		nr := o.MultiInsert(root, append([]Entry[int64, int64](nil), batch...), nil)
		assertTreeEquals(t, o, nr, ref)
		if err := o.Validate(nr, augEq); err != nil {
			t.Fatal(err)
		}
		checkExact(t, o, root, nr)
		o.Release(root)
		o.Release(nr)
		checkExact(t, o)
	}
}

func TestMultiInsertCombine(t *testing.T) {
	o := intOps(0)
	var root *Node[int64, int64, int64]
	nr := o.MultiInsert(root, []Entry[int64, int64]{{1, 1}, {1, 2}, {1, 4}, {2, 10}}, func(old, new int64) int64 { return old + new })
	if v, _ := o.Find(nr, 1); v != 7 {
		t.Fatalf("combined duplicate batch value = %d, want 7", v)
	}
	nr2 := o.MultiInsert(nr, []Entry[int64, int64]{{1, 100}, {2, 1}}, func(old, new int64) int64 { return old + new })
	if v, _ := o.Find(nr2, 1); v != 107 {
		t.Fatalf("tree+batch combine = %d, want 107", v)
	}
	if v, _ := o.Find(nr2, 2); v != 11 {
		t.Fatalf("tree+batch combine = %d, want 11", v)
	}
	o.Release(nr)
	o.Release(nr2)
	checkExact(t, o)
}

func TestMultiDelete(t *testing.T) {
	o := intOps(0)
	rng := rand.New(rand.NewSource(5))
	root, ref := buildRandom(o, rng, 400, 600)
	var keys []int64
	for i := 0; i < 200; i++ {
		k := rng.Int63n(600)
		keys = append(keys, k)
		delete(ref, k)
	}
	nr := o.MultiDelete(root, keys)
	assertTreeEquals(t, o, nr, ref)
	o.Release(root)
	o.Release(nr)
	checkExact(t, o)
}

func TestAugRangeAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	o := intOps(0)
	root, ref := buildRandom(o, rng, 1000, 5000)
	type kv struct{ k, v int64 }
	var all []kv
	for k, v := range ref {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].k < all[j].k })
	for trial := 0; trial < 500; trial++ {
		lo := rng.Int63n(5500) - 250
		hi := lo + rng.Int63n(2000)
		var want int64
		for _, e := range all {
			if e.k >= lo && e.k <= hi {
				want += e.v
			}
		}
		if got := o.AugRange(root, lo, hi); got != want {
			t.Fatalf("AugRange(%d,%d) = %d, want %d", lo, hi, got, want)
		}
	}
	o.Release(root)
}

func TestSelectRank(t *testing.T) {
	o := intOps(0)
	var root *Node[int64, int64, int64]
	for i := int64(0); i < 100; i++ {
		nr := o.Insert(root, i*2, i)
		o.Release(root)
		root = nr
	}
	for i := int64(0); i < 100; i++ {
		e, ok := o.Select(root, i)
		if !ok || e.Key != i*2 {
			t.Fatalf("select(%d) = %v,%v", i, e, ok)
		}
	}
	if _, ok := o.Select(root, 100); ok {
		t.Fatal("select out of range succeeded")
	}
	if r := o.Rank(root, 50); r != 25 {
		t.Fatalf("rank(50) = %d, want 25", r)
	}
	if r := o.Rank(root, 51); r != 26 {
		t.Fatalf("rank(51) = %d, want 26", r)
	}
	if r := o.Rank(root, -5); r != 0 {
		t.Fatalf("rank(-5) = %d", r)
	}
	if r := o.Rank(root, 1000); r != 100 {
		t.Fatalf("rank(1000) = %d", r)
	}
	o.Release(root)
}

func TestRangeEntries(t *testing.T) {
	o := intOps(0)
	var root *Node[int64, int64, int64]
	for i := int64(0); i < 50; i++ {
		nr := o.Insert(root, i, i)
		o.Release(root)
		root = nr
	}
	got := o.RangeEntries(root, 10, 20)
	if len(got) != 11 || got[0].Key != 10 || got[10].Key != 20 {
		t.Fatalf("range [10,20] = %v", got)
	}
	o.Release(root)
}

func TestFilter(t *testing.T) {
	o := intOps(0)
	rng := rand.New(rand.NewSource(8))
	root, ref := buildRandom(o, rng, 500, 1000)
	f := o.Filter(root, func(k, _ int64) bool { return k%3 == 0 })
	want := map[int64]int64{}
	for k, v := range ref {
		if k%3 == 0 {
			want[k] = v
		}
	}
	assertTreeEquals(t, o, f, want)
	if err := o.Validate(f, augEq); err != nil {
		t.Fatal(err)
	}
	o.Release(root)
	o.Release(f)
	checkExact(t, o)
}

// TestDoubleReleasePanics: the poisoned refcount must catch a double
// collect, which would be a GC-safety bug in the transaction layer.
func TestDoubleReleasePanics(t *testing.T) {
	o := intOps(0)
	root := o.Insert(nil, 1, 1)
	o.Release(root)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	o.Release(root)
}

// TestNoStealMatchesSteal: the decompose fast path is a pure optimization;
// results and accounting must be identical with it disabled.
func TestNoStealMatchesSteal(t *testing.T) {
	for _, noSteal := range []bool{false, true} {
		o := intOps(0)
		o.NoSteal = noSteal
		rng := rand.New(rand.NewSource(9))
		a, refA := buildRandom(o, rng, 300, 500)
		b, refB := buildRandom(o, rng, 300, 500)
		u := o.Union(a, b, nil)
		want := map[int64]int64{}
		for k, v := range refA {
			want[k] = v
		}
		for k, v := range refB {
			want[k] = v
		}
		assertTreeEquals(t, o, u, want)
		o.Release(a)
		o.Release(b)
		o.Release(u)
		checkExact(t, o)
	}
}

// TestQuickRandomHistories drives random persistent-op histories with
// version retention and random release order, asserting exact space
// accounting throughout — the node-granularity analogue of the paper's
// precise-GC theorem.
func TestQuickRandomHistories(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := intOps(0)
		var roots []*Node[int64, int64, int64]
		var cur *Node[int64, int64, int64]
		for step := 0; step < 200; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // insert
				nr := o.Insert(cur, rng.Int63n(200), rng.Int63())
				o.Release(cur)
				cur = nr
			case 5, 6: // delete
				nr := o.Delete(cur, rng.Int63n(200))
				o.Release(cur)
				cur = nr
			case 7: // snapshot
				roots = append(roots, o.share(cur))
			case 8: // drop a random snapshot
				if len(roots) > 0 {
					i := rng.Intn(len(roots))
					o.Release(roots[i])
					roots[i] = roots[len(roots)-1]
					roots = roots[:len(roots)-1]
				}
			case 9: // batch insert
				n := rng.Intn(20)
				batch := make([]Entry[int64, int64], n)
				for i := range batch {
					batch[i] = Entry[int64, int64]{rng.Int63n(200), rng.Int63()}
				}
				nr := o.MultiInsert(cur, batch, nil)
				o.Release(cur)
				cur = nr
			}
		}
		all := append(append([]*Node[int64, int64, int64]{}, roots...), cur)
		if o.Live() != o.ReachableNodes(all...) {
			return false
		}
		for _, r := range all {
			o.Release(r)
		}
		return o.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelMatchesSequential: the same operations with an aggressive
// parallel grain must produce identical contents and exact accounting.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seqO := intOps(0)
	parO := intOps(4)
	mkBatch := func() []Entry[int64, int64] {
		batch := make([]Entry[int64, int64], 3000)
		for i := range batch {
			batch[i] = Entry[int64, int64]{rng.Int63n(10000), rng.Int63n(1 << 20)}
		}
		return batch
	}
	b1, b2 := mkBatch(), mkBatch()
	seqR := seqO.MultiInsert(nil, append([]Entry[int64, int64](nil), b1...), nil)
	seqR2 := seqO.MultiInsert(seqR, append([]Entry[int64, int64](nil), b2...), nil)
	parR := parO.MultiInsert(nil, append([]Entry[int64, int64](nil), b1...), nil)
	parR2 := parO.MultiInsert(parR, append([]Entry[int64, int64](nil), b2...), nil)

	se := seqO.Entries(seqR2)
	pe := parO.Entries(parR2)
	if len(se) != len(pe) {
		t.Fatalf("sizes differ: %d vs %d", len(se), len(pe))
	}
	for i := range se {
		if se[i] != pe[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, se[i], pe[i])
		}
	}
	if err := parO.Validate(parR2, augEq); err != nil {
		t.Fatal(err)
	}
	parO.Release(parR)
	parO.Release(parR2)
	if parO.Live() != 0 {
		t.Fatalf("parallel run leaked %d nodes", parO.Live())
	}
	seqO.Release(seqR)
	seqO.Release(seqR2)
}

// TestConcurrentReadersDuringUpdates: readers traverse immutable snapshots
// with no synchronization while a writer path-copies new versions — the
// foundation of the paper's delay-free reads.
func TestConcurrentReadersDuringUpdates(t *testing.T) {
	o := intOps(0)
	var root *Node[int64, int64, int64]
	for i := int64(0); i < 10000; i += 2 {
		nr := o.Insert(root, i, 1)
		o.Release(root)
		root = nr
	}
	snap := o.share(root) // reader's pinned version
	done := make(chan int64)
	go func() {
		// Reader: sum via augmented range queries; the answer must be
		// stable no matter what the writer does.
		var bad int64
		for i := 0; i < 200; i++ {
			if got := o.AugRange(snap, 0, 10000); got != 5000 {
				bad = got
				break
			}
		}
		done <- bad
	}()
	cur := o.share(root)
	for i := int64(1); i < 2000; i += 2 { // odd keys, interleaved with reads
		nr := o.Insert(cur, i, 100)
		o.Release(cur)
		cur = nr
	}
	if bad := <-done; bad != 0 {
		t.Fatalf("reader observed a mutating snapshot: sum=%d", bad)
	}
	o.Release(snap)
	o.Release(cur)
	o.Release(root)
	checkExact(t, o)
}

func TestMaxAug(t *testing.T) {
	o := New[int64, int64, int64](IntCmp[int64], MaxAug[int64](), 0)
	var root *Node[int64, int64, int64]
	rng := rand.New(rand.NewSource(12))
	ref := map[int64]int64{}
	for i := 0; i < 500; i++ {
		k, v := rng.Int63n(1000), rng.Int63n(1<<30)
		nr := o.Insert(root, k, v)
		o.Release(root)
		root = nr
		ref[k] = v
	}
	for trial := 0; trial < 100; trial++ {
		lo := rng.Int63n(1000)
		hi := lo + rng.Int63n(300)
		want := int64(-1 << 62)
		any := false
		for k, v := range ref {
			if k >= lo && k <= hi && v > want {
				want, any = v, true
			}
		}
		got := o.AugRange(root, lo, hi)
		if any && got != want {
			t.Fatalf("max in [%d,%d] = %d, want %d", lo, hi, got, want)
		}
		if !any && got != -1<<62 {
			t.Fatalf("max of empty range = %d", got)
		}
	}
	o.Release(root)
}

func TestForEachCond(t *testing.T) {
	o := intOps(0)
	var root *Node[int64, int64, int64]
	for i := int64(0); i < 100; i++ {
		nr := o.Insert(root, i, i)
		o.Release(root)
		root = nr
	}
	var n int
	complete := o.ForEachCond(root, func(k, _ int64) bool {
		n++
		return k < 49 // returns false at key 49, after visiting it
	})
	if complete || n != 50 {
		t.Fatalf("ForEachCond stopped after %d (complete=%v), want 50", n, complete)
	}
	o.Release(root)
}

func TestMapValues(t *testing.T) {
	for _, grain := range []int{0, 8} {
		o := intOps(grain)
		rng := rand.New(rand.NewSource(14))
		root, ref := buildRandom(o, rng, 600, 1200)
		doubled := o.MapValues(root, func(_, v int64) int64 { return v * 2 })
		want := map[int64]int64{}
		for k, v := range ref {
			want[k] = v * 2
		}
		assertTreeEquals(t, o, doubled, want)
		if err := o.Validate(doubled, augEq); err != nil {
			t.Fatal(err) // augmentations must reflect the new values
		}
		// The original is untouched.
		assertTreeEquals(t, o, root, ref)
		o.Release(root)
		o.Release(doubled)
		checkExact(t, o)
	}
}

// TestRecycleCorrectness re-runs the random-history property with node
// recycling enabled: recycled nodes must behave exactly like fresh ones,
// and accounting stays exact (a recycled node counts as a new alloc).
func TestRecycleCorrectness(t *testing.T) {
	o := intOps(0)
	o.Recycle = true
	rng := rand.New(rand.NewSource(21))
	var root *Node[int64, int64, int64]
	ref := map[int64]int64{}
	var snaps []*Node[int64, int64, int64]
	for i := 0; i < 6000; i++ {
		k := int64(rng.Intn(500))
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Int63n(1 << 20)
			nr := o.Insert(root, k, v)
			o.Release(root)
			root = nr
			ref[k] = v
		case 2:
			nr := o.Delete(root, k)
			o.Release(root)
			root = nr
			delete(ref, k)
		case 3:
			if len(snaps) < 4 {
				snaps = append(snaps, o.share(root))
			} else {
				o.Release(snaps[0])
				snaps = snaps[1:]
			}
		}
		if i%1000 == 0 {
			if err := o.Validate(root, augEq); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			all := append(append([]*Node[int64, int64, int64]{}, snaps...), root)
			if o.Live() != o.ReachableNodes(all...) {
				t.Fatalf("step %d: live %d ≠ reachable %d", i, o.Live(), o.ReachableNodes(all...))
			}
		}
	}
	for k, v := range ref {
		if got, ok := o.Find(root, k); !ok || got != v {
			t.Fatalf("find(%d) = %d,%v want %d", k, got, ok, v)
		}
	}
	for _, s := range snaps {
		o.Release(s)
	}
	o.Release(root)
	if o.Live() != 0 {
		t.Fatalf("leaked %d nodes with recycling", o.Live())
	}
}

// TestRecycleParallel: recycling under parallel bulk operations — free
// lists are shared across goroutines.
func TestRecycleParallel(t *testing.T) {
	o := intOps(64)
	o.Recycle = true
	rng := rand.New(rand.NewSource(22))
	var root *Node[int64, int64, int64]
	for round := 0; round < 30; round++ {
		batch := make([]Entry[int64, int64], 2000)
		for i := range batch {
			batch[i] = Entry[int64, int64]{rng.Int63n(10000), rng.Int63n(1 << 20)}
		}
		nr := o.MultiInsert(root, batch, nil)
		o.Release(root)
		root = nr
	}
	if err := o.Validate(root, augEq); err != nil {
		t.Fatal(err)
	}
	o.Release(root)
	if o.Live() != 0 {
		t.Fatalf("leaked %d nodes", o.Live())
	}
}

//go:build race

package ftree

// raceEnabled gates allocation-count assertions: race instrumentation
// allocates per memory access, so AllocsPerRun is meaningless under -race.
const raceEnabled = true

package ftree

import (
	"math/rand"
	"testing"
)

// inner and outer tree types for the nested-map tests: outer maps a key to
// an inner tree (the paper's inverted-index shape, §7.2).
type innerNode = Node[int64, int64, int64]

func nestedOps() (inner *Ops[int64, int64, int64], outer *Ops[int64, *innerNode, struct{}]) {
	inner = New[int64, int64, int64](IntCmp[int64], MaxAug[int64](), 0)
	outer = New[int64, *innerNode, struct{}](IntCmp[int64], NoAug[int64, *innerNode](), 0)
	outer.RetainVal = func(t *innerNode) *innerNode {
		if t == nil {
			return nil
		}
		return inner.share(t)
	}
	outer.ReleaseVal = func(t *innerNode) { inner.Release(t) }
	return inner, outer
}

// TestNestedInsertRelease: inserting inner trees as outer values and
// releasing outer versions must free every inner node exactly once.
func TestNestedInsertRelease(t *testing.T) {
	inner, outer := nestedOps()
	var root *Node[int64, *innerNode, struct{}]
	for term := int64(0); term < 50; term++ {
		var p *innerNode
		for d := int64(0); d < 20; d++ {
			np := inner.Insert(p, d, term*100+d)
			inner.Release(p)
			p = np
		}
		nr := outer.Insert(root, term, p) // outer consumes p's token
		outer.Release(root)
		root = nr
	}
	if inner.Live() == 0 {
		t.Fatal("no inner nodes live?")
	}
	// Read through: posting for term 7, doc 3.
	p, ok := outer.Find(root, 7)
	if !ok {
		t.Fatal("term 7 missing")
	}
	if w, ok := inner.Find(p, 3); !ok || w != 703 {
		t.Fatalf("posting weight = %d,%v", w, ok)
	}
	outer.Release(root)
	if outer.Live() != 0 {
		t.Fatalf("outer leaked %d nodes", outer.Live())
	}
	if inner.Live() != 0 {
		t.Fatalf("inner leaked %d nodes", inner.Live())
	}
}

// TestNestedUnionCombine models document ingestion: union of outer trees
// combining posting lists by inner union — then checks exact accounting on
// both levels after all versions are dropped.
func TestNestedUnionCombine(t *testing.T) {
	inner, outer := nestedOps()
	combine := func(a, b *innerNode) *innerNode {
		u := inner.Union(a, b, nil)
		inner.Release(a)
		inner.Release(b)
		return u
	}
	rng := rand.New(rand.NewSource(20))
	var corpus *Node[int64, *innerNode, struct{}]
	ref := map[int64]map[int64]int64{}
	for doc := int64(0); doc < 40; doc++ {
		// Build the document's delta: term → single-doc posting.
		var batch []Entry[int64, *innerNode]
		for i := 0; i < 15; i++ {
			term := rng.Int63n(30)
			w := rng.Int63n(1000)
			batch = append(batch, Entry[int64, *innerNode]{
				Key: term,
				Val: inner.Insert(nil, doc, w),
			})
			if ref[term] == nil {
				ref[term] = map[int64]int64{}
			}
			ref[term][doc] = w
		}
		next := outer.MultiInsert(corpus, batch, combine)
		outer.Release(corpus)
		corpus = next
	}
	// Verify a handful of postings against the reference.
	for term, docs := range ref {
		p, ok := outer.Find(corpus, term)
		if !ok {
			t.Fatalf("term %d missing", term)
		}
		if inner.Size(p) != int64(len(docs)) {
			t.Fatalf("term %d posting size %d, want %d", term, inner.Size(p), len(docs))
		}
		for doc, w := range docs {
			if got, ok := inner.Find(p, doc); !ok || got != w {
				t.Fatalf("term %d doc %d = %d,%v want %d", term, doc, got, ok, w)
			}
		}
	}
	outer.Release(corpus)
	if outer.Live() != 0 || inner.Live() != 0 {
		t.Fatalf("leak: outer %d inner %d", outer.Live(), inner.Live())
	}
}

// TestNestedSnapshotSharing: two outer versions sharing posting lists keep
// the inner trees alive until both versions die.
func TestNestedSnapshotSharing(t *testing.T) {
	inner, outer := nestedOps()
	p := inner.Insert(nil, 1, 1)
	v1 := outer.Insert(nil, 10, p)
	v2 := outer.Insert(v1, 20, inner.Insert(nil, 2, 2)) // v2 shares term 10's posting
	outer.Release(v1)
	// v1 is gone but v2 still references posting p through the shared node.
	got, ok := outer.Find(v2, 10)
	if !ok {
		t.Fatal("term 10 missing from v2")
	}
	if w, ok := inner.Find(got, 1); !ok || w != 1 {
		t.Fatalf("posting read failed: %d,%v", w, ok)
	}
	outer.Release(v2)
	if outer.Live() != 0 || inner.Live() != 0 {
		t.Fatalf("leak: outer %d inner %d", outer.Live(), inner.Live())
	}
}

// TestNestedDeleteReleasesPostings: deleting an outer key must free its
// posting tree once the last version referencing it dies.
func TestNestedDeleteReleasesPostings(t *testing.T) {
	inner, outer := nestedOps()
	v1 := outer.Insert(nil, 1, inner.Insert(nil, 5, 50))
	v2 := outer.Delete(v1, 1)
	outer.Release(v1) // posting must die with v1: v2 does not reference it
	if inner.Live() != 0 {
		t.Fatalf("posting survived deletion: %d inner nodes", inner.Live())
	}
	outer.Release(v2)
	if outer.Live() != 0 {
		t.Fatalf("outer leaked %d", outer.Live())
	}
}

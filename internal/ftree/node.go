// Package ftree implements the purely functional (persistent)
// weight-balanced trees the paper builds its transactions on (Sections 2,
// 5.3 and 7), equivalent to the PAM library used in the paper's
// experiments: path-copying updates, join-based set operations (union,
// intersection, difference, multi-insert) with parallel divide-and-conquer,
// user-defined augmentation, and precise reference-counting garbage
// collection following Algorithm 5.
//
// # Ownership discipline
//
// Every node carries a reference count equal to the number of parent
// pointers in the memory graph plus the number of outstanding ownership
// tokens (a version root held by the transaction layer, or an intermediate
// result held by an operation in progress).  All code manipulates nodes
// through four primitives, which make reference-count exactness
// compositional:
//
//   - mk(l, k, v, r) creates a node, consuming the caller's tokens on l
//     and r (they become parent edges) and minting a token on the new node.
//   - share(t) mints a new token on a borrowed node (t.ref++).
//   - decompose(t) trades the caller's token on t for tokens on t's
//     children plus t's payload, freeing t when the token was the last.
//   - release(t) destroys a token: Algorithm 5's collect.
//
// Functions document whether they borrow or consume (own) their tree
// arguments; everything returned is owned by the caller.
//
// # Allocation
//
// With Recycle on, freed nodes are reused by the next mk.  An Ops view
// bound to an Arena (the per-pid magazine allocator, arena.go) recycles
// through the arena with no locks or shared-state atomics; the unbound
// root Ops recycles through sharded mutex-protected global lists, which
// double as the depot magazines spill to and refill from.
package ftree

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Node is an immutable tree node.  Exported so the transaction layer can
// name the type, but its fields are managed exclusively by this package.
type Node[K, V, A any] struct {
	ref   atomic.Int32
	left  *Node[K, V, A]
	right *Node[K, V, A]
	size  int64
	key   K
	val   V
	aug   A
}

// freedMark poisons the refcount of freed nodes so that sharing or
// decomposing a node after its last release fails loudly in tests rather
// than corrupting the heap silently.
const freedMark = -1 << 24

// Key returns the node's key; used by iterators.
func (n *Node[K, V, A]) Key() K { return n.key }

// Val returns the node's value (borrowed: valid while the tree is live).
func (n *Node[K, V, A]) Val() V { return n.val }

// Aug returns the augmented value of the subtree rooted at n.
func (n *Node[K, V, A]) Aug() A { return n.aug }

// Left returns the left child for read-only traversals (borrowed).
func (n *Node[K, V, A]) Left() *Node[K, V, A] { return n.left }

// Right returns the right child for read-only traversals (borrowed).
func (n *Node[K, V, A]) Right() *Node[K, V, A] { return n.right }

// Size returns the number of keys in the subtree rooted at n (nil-safe).
func size[K, V, A any](n *Node[K, V, A]) int64 {
	if n == nil {
		return 0
	}
	return n.size
}

// weight is the BB[α] weight: size + 1, so empty trees weigh 1.
func weight[K, V, A any](n *Node[K, V, A]) int64 { return size(n) + 1 }

// stats tracks allocation accounting with cache-line padded shards, indexed
// by node address, so that parallel operations do not serialize on a single
// counter.  live = allocs − frees is the "allocated space" of Section 2.
const statShards = 64

type padCounter struct {
	v atomic.Int64
	_ [7]uint64
}

type stats struct {
	allocs [statShards]padCounter
	frees  [statShards]padCounter
}

// freeShards is the number of independent global free lists when Recycle
// is on; sharding keeps unbound collectors and allocators from serializing
// on one lock, and gives arenas independent depots to spill to.
const freeShards = 16

type freeList[K, V, A any] struct {
	mu   sync.Mutex
	head *Node[K, V, A]
	_    [4]uint64
}

// allocShared is the allocation state every view of one Ops family shares:
// exact statistics plus the sharded global free lists.  Arenas hold a
// pointer to it so spills and refills stay inside the family and Live()
// accounting cannot drift between views.
type allocShared[K, V, A any] struct {
	st       stats
	free     [freeShards]freeList[K, V, A]
	freeHint atomic.Uint32
}

func shard(p unsafe.Pointer) int { return int((uintptr(p) >> 7) % statShards) }

func (s *stats) addAlloc(p unsafe.Pointer) { s.allocs[shard(p)].v.Add(1) }
func (s *stats) addFree(p unsafe.Pointer)  { s.frees[shard(p)].v.Add(1) }

func (s *stats) totals() (allocs, frees int64) {
	for i := range s.allocs {
		allocs += s.allocs[i].v.Load()
		frees += s.frees[i].v.Load()
	}
	return
}

// Allocs reports the total number of nodes ever created by this Ops family.
func (o *Ops[K, V, A]) Allocs() int64 { a, _ := o.sh.st.totals(); return a }

// Frees reports the total number of nodes freed by the collector.
func (o *Ops[K, V, A]) Frees() int64 { _, f := o.sh.st.totals(); return f }

// Live reports the allocated space in nodes: Allocs() − Frees().  After all
// versions are released this must be zero; the property tests assert that
// at every quiescent point Live equals the number of nodes reachable from
// the live version roots.  Nodes parked in magazines or on the global free
// lists are counted free: they are reachable from no version.
func (o *Ops[K, V, A]) Live() int64 {
	a, f := o.sh.st.totals()
	return a - f
}

// mk allocates a node with key k, value v and children l and r, consuming
// the caller's tokens on l and r and returning a token on the new node.
// Size and augmentation are computed here so they are correct by
// construction everywhere.  With Recycle on, a bound view takes the node
// from its arena (no locks, no shared-state atomics); the unbound root
// scans the sharded global lists.
func (o *Ops[K, V, A]) mk(l *Node[K, V, A], k K, v V, r *Node[K, V, A]) *Node[K, V, A] {
	var n *Node[K, V, A]
	if o.Recycle {
		if a := o.arena; a != nil {
			n = a.get()
		} else {
			n = o.popFree()
		}
	}
	if n == nil {
		n = &Node[K, V, A]{}
	}
	n.left, n.right, n.key, n.val = l, r, k, v
	n.ref.Store(1)
	n.size = size(l) + size(r) + 1
	a := o.Aug.Single(k, v)
	if l != nil {
		a = o.Aug.Combine(l.aug, a)
	}
	if r != nil {
		a = o.Aug.Combine(a, r.aug)
	}
	n.aug = a
	o.sh.st.addAlloc(unsafe.Pointer(n))
	return n
}

// Share mints an ownership token on a borrowed tree, turning it into an
// owned reference the caller must eventually Release.  Exposed so trees can
// be used as reference-counted values of other trees (via RetainVal) and so
// the transaction layer can pin snapshots.
func (o *Ops[K, V, A]) Share(t *Node[K, V, A]) *Node[K, V, A] { return o.share(t) }

// share mints an ownership token on a borrowed subtree (nil-safe).
func (o *Ops[K, V, A]) share(t *Node[K, V, A]) *Node[K, V, A] {
	if t == nil {
		return nil
	}
	if t.ref.Add(1) <= 1 {
		panic("ftree: share of freed or unowned node")
	}
	return t
}

// Release destroys one ownership token on t: Algorithm 5's collect.  When
// the token was the last reference the node is freed and its children are
// collected recursively (iteratively, to bound stack use).  Runs in
// O(freed+1) time (Theorem 4.2).
func (o *Ops[K, V, A]) Release(t *Node[K, V, A]) {
	if t == nil {
		return
	}
	// A bound view lends the traversal stack from its arena so steady-state
	// collection allocates nothing; taking it by swap keeps a reentrant
	// Release (via a ReleaseVal callback into the same Ops) correct — the
	// inner call just sees nil and falls back to a local stack.
	var stack []*Node[K, V, A]
	a := o.arena
	if a != nil {
		stack, a.scratch = a.scratch[:0], nil
	}
	defer func() {
		if a != nil {
			a.scratch = stack[:0]
		}
	}()
	cur := t
	for {
		n := cur.ref.Add(-1)
		if n < 0 {
			panic("ftree: release of freed node (double collect)")
		}
		if n == 0 {
			l, r := cur.left, cur.right
			o.releaseVal(cur.val)
			o.freeNode(cur)
			if l != nil {
				if r != nil {
					stack = append(stack, r)
				}
				cur = l
				continue
			}
			if r != nil {
				cur = r
				continue
			}
		}
		if len(stack) == 0 {
			return
		}
		cur = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
	}
}

func (o *Ops[K, V, A]) freeNode(n *Node[K, V, A]) {
	n.ref.Store(freedMark)
	o.sh.st.addFree(unsafe.Pointer(n))
	if !o.Recycle {
		n.left, n.right = nil, nil
		return
	}
	// The node is unreachable from any live version, so no reader can
	// observe it; drop its references so parked nodes pin nothing.
	var zeroK K
	var zeroV V
	n.left, n.right, n.key, n.val = nil, nil, zeroK, zeroV
	if a := o.arena; a != nil {
		a.put(n)
		return
	}
	fl := &o.sh.free[(uintptr(unsafe.Pointer(n))>>7)%freeShards]
	fl.mu.Lock()
	n.right = fl.head
	fl.head = n
	fl.mu.Unlock()
}

// popFree takes a recycled node off the global lists, scanning a couple of
// shards so one empty shard does not force an allocation while others are
// full.  Only the unbound root allocates this way; bound views go through
// their arena.
func (o *Ops[K, V, A]) popFree() *Node[K, V, A] {
	start := int(o.sh.freeHint.Add(1))
	for i := 0; i < 2; i++ {
		fl := &o.sh.free[(start+i)%freeShards]
		fl.mu.Lock()
		n := fl.head
		if n != nil {
			fl.head = n.right
			fl.mu.Unlock()
			n.right = nil
			return n
		}
		fl.mu.Unlock()
	}
	return nil
}

// decompose trades the caller's token on t for t's payload plus tokens on
// both children.  With the steal fast path (the default), a node whose
// token is the only reference is freed immediately and its child edges are
// handed to the caller without touching the children's counts; otherwise
// the children are shared first and the node released, which is always
// correct but costs two extra atomic operations.  DESIGN.md lists this
// choice as an ablation (BenchmarkAblationSteal).
func (o *Ops[K, V, A]) decompose(t *Node[K, V, A]) (k K, v V, l, r *Node[K, V, A]) {
	k, v, l, r = t.key, t.val, t.left, t.right
	if !o.NoSteal && t.ref.Load() == 1 {
		// We hold the only token, so no concurrent share can target t:
		// shares require reaching t through some other owned reference,
		// and there is none.  Transfer the child edges and the value
		// reference to the caller.
		o.freeNode(t)
		return
	}
	v = o.retainVal(v) // the node lives on with its own value reference
	o.share(l)
	o.share(r)
	o.Release(t)
	return
}

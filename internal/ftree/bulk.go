package ftree

import "slices"

// Build constructs a perfectly balanced owned tree from entries sorted by
// key with no duplicates.  O(n) work, O(log n) span with parallel halves.
func (o *Ops[K, V, A]) Build(entries []Entry[K, V]) *Node[K, V, A] {
	if len(entries) == 0 {
		return nil
	}
	mid := len(entries) / 2
	var l, r *Node[K, V, A]
	o.maybeParallel(int64(len(entries)),
		func(o *Ops[K, V, A]) { l = o.Build(entries[:mid]) },
		func(o *Ops[K, V, A]) { r = o.Build(entries[mid+1:]) },
	)
	return o.mk(l, entries[mid].Key, entries[mid].Val, r)
}

// SortEntries sorts a batch by key and coalesces duplicates, applying comb
// left-to-right (nil comb keeps the last occurrence).  The input slice is
// reordered in place and the result aliases it.  This is the preprocessing
// step of MultiInsert.
func (o *Ops[K, V, A]) SortEntries(batch []Entry[K, V], comb func(old, new V) V) []Entry[K, V] {
	slices.SortStableFunc(batch, func(a, b Entry[K, V]) int { return o.Cmp(a.Key, b.Key) })
	// Dedup in place: skip ahead to the first duplicate so the common
	// all-unique batch pays one comparison per entry and no copies.
	dup := -1
	for i := 1; i < len(batch); i++ {
		if o.Cmp(batch[i-1].Key, batch[i].Key) == 0 {
			dup = i
			break
		}
	}
	if dup < 0 {
		return batch
	}
	out := batch[:dup]
	for _, e := range batch[dup:] {
		if o.Cmp(out[len(out)-1].Key, e.Key) == 0 {
			if comb != nil {
				out[len(out)-1].Val = comb(out[len(out)-1].Val, e.Val)
			} else {
				o.releaseVal(out[len(out)-1].Val) // superseded duplicate
				out[len(out)-1].Val = e.Val
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// MultiInsert returns a new owned tree equal to borrowed t with the whole
// batch inserted atomically: it sorts and deduplicates the batch, builds a
// balanced tree from it in parallel, and unions it into t — PAM's
// multi_insert, the primitive behind the paper's batched single writer
// (Section 7.2 and Appendix F).  For a key already in t, the stored value
// becomes comb(old, new); nil comb overwrites.
func (o *Ops[K, V, A]) MultiInsert(t *Node[K, V, A], batch []Entry[K, V], comb func(old, new V) V) *Node[K, V, A] {
	if len(batch) == 0 {
		return o.share(t)
	}
	sorted := o.SortEntries(batch, comb)
	// Build needs one node per entry and the union re-joins O(m·log(n/m))
	// more; pre-fill the bound arena so those allocations are block
	// transfers, not per-node lock acquisitions.
	o.Reserve(len(sorted) + len(sorted)/4)
	built := o.Build(sorted)
	return o.unionOwned(o.share(t), built, comb)
}

// MultiDelete returns a new owned tree equal to borrowed t with every key
// of the batch removed.
func (o *Ops[K, V, A]) MultiDelete(t *Node[K, V, A], keys []K) *Node[K, V, A] {
	if len(keys) == 0 {
		return o.share(t)
	}
	entries := make([]Entry[K, V], len(keys))
	for i, k := range keys {
		entries[i].Key = k
	}
	sorted := o.SortEntries(entries, nil)
	o.Reserve(len(sorted))
	built := o.Build(sorted)
	out := o.Difference(t, built)
	o.Release(built)
	return out
}

// ForEach visits borrowed tree t in key order.  Pure reads.
func (o *Ops[K, V, A]) ForEach(t *Node[K, V, A], f func(K, V)) {
	if t == nil {
		return
	}
	o.ForEach(t.left, f)
	f(t.key, t.val)
	o.ForEach(t.right, f)
}

// ForEachCond visits borrowed tree t in key order until f returns false;
// it reports whether the walk ran to completion.
func (o *Ops[K, V, A]) ForEachCond(t *Node[K, V, A], f func(K, V) bool) bool {
	if t == nil {
		return true
	}
	if !o.ForEachCond(t.left, f) {
		return false
	}
	if !f(t.key, t.val) {
		return false
	}
	return o.ForEachCond(t.right, f)
}

// ForEachCondFrom visits borrowed tree t's entries with key ≥ lo in key
// order until f returns false; it reports whether the walk ran to
// completion.  The pre-lo prefix is skipped structurally (O(log n) to
// reach the first qualifying entry), so a short scan near lo never touches
// the rest of the tree.
func (o *Ops[K, V, A]) ForEachCondFrom(t *Node[K, V, A], lo K, f func(K, V) bool) bool {
	if t == nil {
		return true
	}
	if o.Cmp(t.key, lo) < 0 {
		// t and everything left of it are below lo.
		return o.ForEachCondFrom(t.right, lo, f)
	}
	if !o.ForEachCondFrom(t.left, lo, f) {
		return false
	}
	if !f(t.key, t.val) {
		return false
	}
	return o.ForEachCond(t.right, f)
}

// Entries returns the contents of borrowed tree t in key order.
func (o *Ops[K, V, A]) Entries(t *Node[K, V, A]) []Entry[K, V] {
	out := make([]Entry[K, V], 0, size(t))
	o.ForEach(t, func(k K, v V) { out = append(out, Entry[K, V]{k, v}) })
	return out
}

// RangeEntries returns the entries of borrowed tree t with lo ≤ key ≤ hi.
func (o *Ops[K, V, A]) RangeEntries(t *Node[K, V, A], lo, hi K) []Entry[K, V] {
	var out []Entry[K, V]
	o.visitRange(t, lo, hi, func(k K, v V) { out = append(out, Entry[K, V]{k, v}) })
	return out
}

func (o *Ops[K, V, A]) visitRange(t *Node[K, V, A], lo, hi K, f func(K, V)) {
	if t == nil {
		return
	}
	geLo := o.Cmp(t.key, lo) >= 0
	leHi := o.Cmp(t.key, hi) <= 0
	if geLo {
		o.visitRange(t.left, lo, hi, f)
		if leHi {
			f(t.key, t.val)
		}
	}
	if leHi {
		o.visitRange(t.right, lo, hi, f)
	}
}

// AugRange returns the augmented value of the entries of borrowed tree t
// with lo ≤ key ≤ hi in O(log n) time — the paper's range-sum query
// (Section 7.1) when used with SumAug.
func (o *Ops[K, V, A]) AugRange(t *Node[K, V, A], lo, hi K) A {
	for t != nil {
		if o.Cmp(t.key, lo) < 0 {
			t = t.right
			continue
		}
		if o.Cmp(t.key, hi) > 0 {
			t = t.left
			continue
		}
		// lo ≤ t.key ≤ hi: the range straddles this node.
		a := o.augGE(t.left, lo)
		a = o.Aug.Combine(a, o.Aug.Single(t.key, t.val))
		return o.Aug.Combine(a, o.augLE(t.right, hi))
	}
	return o.Aug.Zero()
}

// augGE folds the augmentation of all entries with key ≥ lo.
func (o *Ops[K, V, A]) augGE(t *Node[K, V, A], lo K) A {
	a := o.Aug.Zero()
	for t != nil {
		if o.Cmp(t.key, lo) < 0 {
			t = t.right
			continue
		}
		// t.key ≥ lo: everything right of t (and t itself) qualifies.
		e := o.Aug.Single(t.key, t.val)
		if t.right != nil {
			e = o.Aug.Combine(e, t.right.aug)
		}
		a = o.Aug.Combine(e, a)
		t = t.left
	}
	return a
}

// augLE folds the augmentation of all entries with key ≤ hi.
func (o *Ops[K, V, A]) augLE(t *Node[K, V, A], hi K) A {
	a := o.Aug.Zero()
	for t != nil {
		if o.Cmp(t.key, hi) > 0 {
			t = t.left
			continue
		}
		e := o.Aug.Single(t.key, t.val)
		if t.left != nil {
			e = o.Aug.Combine(t.left.aug, e)
		}
		a = o.Aug.Combine(a, e)
		t = t.right
	}
	return a
}

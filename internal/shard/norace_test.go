//go:build !race

package shard

const raceEnabled = false

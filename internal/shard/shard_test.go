package shard

import (
	"sync"
	"testing"
	"time"

	"mvgc/internal/batch"
	"mvgc/internal/core"
	"mvgc/internal/ftree"
	"mvgc/internal/vm"
	"mvgc/internal/ycsb"
)

func newSharded(t testing.TB, alg string, shards, procs int, initial []ftree.Entry[int64, int64]) *Map[int64, int64, int64] {
	t.Helper()
	m, err := New(
		Config[int64]{Shards: shards, Procs: procs, Algorithm: alg, Hash: func(k int64) uint64 { return ycsb.Mix64(uint64(k)) }},
		func() *ftree.Ops[int64, int64, int64] {
			return ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
		},
		initial,
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestShardedMatrix runs the full point-op/batch/fan-out surface over every
// Version Maintenance algorithm and checks per-shard precise collection:
// after Close, every shard's allocator must report zero live nodes.
func TestShardedMatrix(t *testing.T) {
	for _, alg := range vm.Names() {
		t.Run(alg, func(t *testing.T) {
			initial := make([]ftree.Entry[int64, int64], 500)
			for i := range initial {
				initial[i] = ftree.Entry[int64, int64]{Key: int64(i), Val: int64(i)}
			}
			m := newSharded(t, alg, 4, 3, initial)

			// Point ops route to the right shard.
			if v, ok := m.Get(123); !ok || v != 123 {
				t.Fatalf("Get(123) = %d,%v", v, ok)
			}
			m.Insert(1000, -5)
			if v, ok := m.Get(1000); !ok || v != -5 {
				t.Fatalf("Get(1000) = %d,%v", v, ok)
			}
			m.Delete(0)
			if m.Has(0) {
				t.Fatal("deleted key still present")
			}
			m.InsertWith(1000, 6, func(old, new int64) int64 { return old + new })
			if v, _ := m.Get(1000); v != 1 {
				t.Fatalf("InsertWith = %d, want 1", v)
			}

			// Batched writes: per-shard atomic parts.
			var entries []ftree.Entry[int64, int64]
			for i := int64(2000); i < 2100; i++ {
				entries = append(entries, ftree.Entry[int64, int64]{Key: i, Val: i})
			}
			m.InsertBatch(entries, nil)
			var dels []int64
			for i := int64(2000); i < 2050; i++ {
				dels = append(dels, i)
			}
			m.DeleteBatch(dels)
			want := int64(500) - 1 + 1 + 50 // initial - Delete(0) + Insert(1000) + surviving batch half
			if n := m.Len(); n != want {
				t.Fatalf("Len = %d, want %d", n, want)
			}

			// Cross-shard transaction with read-your-writes.
			m.Update(func(tx *Txn[int64, int64, int64]) {
				tx.Insert(7777, 1)
				if v, ok := tx.Get(7777); !ok || v != 1 {
					t.Fatalf("txn Get(7777) = %d,%v (no read-your-writes)", v, ok)
				}
				tx.Delete(7777)
				if _, ok := tx.Get(7777); ok {
					t.Fatal("txn sees key it just deleted")
				}
				tx.Insert(7777, 2)
				tx.Insert(8888, 3)
			})
			if v, _ := m.Get(7777); v != 2 {
				t.Fatalf("committed txn value = %d, want 2", v)
			}

			// Fan-out reads in global key order.
			m.View(func(s Snap[int64, int64, int64]) {
				got := s.Range(100, 110)
				if len(got) != 11 {
					t.Fatalf("Range(100,110) returned %d entries", len(got))
				}
				for i, e := range got {
					if e.Key != int64(100+i) {
						t.Fatalf("Range out of order at %d: key %d", i, e.Key)
					}
				}
				var sum int64
				for _, e := range got {
					sum += e.Val
				}
				if ar := s.AugRange(100, 110); ar != sum {
					t.Fatalf("AugRange = %d, range sum = %d", ar, sum)
				}
				prev := int64(-1 << 62)
				n := 0
				s.ForEach(func(k, v int64) {
					if k <= prev {
						t.Fatalf("ForEach out of order: %d after %d", k, prev)
					}
					prev = k
					n++
				})
				if int64(n) != s.Len() {
					t.Fatalf("ForEach visited %d, Len = %d", n, s.Len())
				}
				if v, ok := s.Get(7777); !ok || v != 2 {
					t.Fatalf("Snap.Get(7777) = %d,%v", v, ok)
				}
			})

			m.Close()
			for i := 0; i < m.NumShards(); i++ {
				if live := m.Shard(i).Ops().Live(); live != 0 {
					t.Fatalf("%s: shard %d leaked %d nodes", alg, i, live)
				}
			}
		})
	}
}

// TestShardedConcurrent hammers a sharded map from many goroutines doing
// point ops while batched writers stream through per-shard combiners; -race
// checks the pid discipline, and Close checks precise collection.
func TestShardedConcurrent(t *testing.T) {
	// Each worker owns its client buffer: the rings are single-producer.
	const workers, iters = 8, 400
	const clients = workers
	m := newSharded(t, "pswf", 4, workers+2, nil)
	m.StartBatching(batch.Config{Clients: clients, BufCap: 256, MaxLatency: time.Millisecond}, nil)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := int64(w*iters + i)
				if w%2 == 0 {
					m.Insert(k, k) // direct single-shard write transactions
				} else {
					m.Submit(w, batch.Request[int64, int64]{Op: batch.OpInsert, Key: k, Val: k})
				}
				if i%16 == 0 {
					m.Get(int64(i))
					_ = m.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		m.Flush(c)
	}
	if n := m.Len(); n != workers*iters {
		t.Fatalf("Len = %d, want %d", n, workers*iters)
	}
	if m.Commits() <= 0 {
		t.Fatal("no commits recorded")
	}
	m.Close()
	if live := m.Live(); live != 0 {
		t.Fatalf("leaked %d nodes across shards", live)
	}
}

// TestShardedUncollectedBound: every shard individually respects PSWF's
// 2P+1 version bound, so the aggregate is at most S*(2P+1).
func TestShardedUncollectedBound(t *testing.T) {
	const shards, procs = 4, 3
	m := newSharded(t, "pswf", shards, procs, nil)
	for i := int64(0); i < 500; i++ {
		m.Insert(i, i)
	}
	if u := m.Uncollected(); u < shards || u > shards*(2*procs+1) {
		t.Fatalf("Uncollected = %d outside [S, S*(2P+1)] = [%d, %d]", u, shards, shards*(2*procs+1))
	}
	m.Close()
	if live := m.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestShardedConfigErrors: constructor validation, including the wrapped
// per-shard core error.
func TestShardedConfigErrors(t *testing.T) {
	mk := func() *ftree.Ops[int64, int64, int64] {
		return ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
	}
	hash := func(k int64) uint64 { return uint64(k) }
	if _, err := New(Config[int64]{Shards: 0, Procs: 1, Hash: hash}, mk, nil); err == nil {
		t.Fatal("Shards=0 accepted")
	}
	if _, err := New(Config[int64]{Shards: 2, Procs: 1}, mk, nil); err == nil {
		t.Fatal("nil Hash accepted")
	}
	if _, err := New(Config[int64]{Shards: 2, Procs: 1, Algorithm: "bogus", Hash: hash}, mk, nil); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

// TestShardedHandleAccess: long-lived per-shard handles (the benchmark
// pattern) coexist with the pool-leasing convenience API.
func TestShardedHandleAccess(t *testing.T) {
	m := newSharded(t, "pswf", 2, 3, nil)
	handles := make([]*core.Handle[int64, int64, int64], m.NumShards())
	for i := range handles {
		handles[i] = m.Shard(i).Handle()
	}
	for i := int64(0); i < 100; i++ {
		h := handles[m.ShardFor(i)]
		h.Update(func(tx *core.Txn[int64, int64, int64]) { tx.Insert(i, i) })
	}
	var n int64
	for _, h := range handles {
		h.Read(func(s core.Snapshot[int64, int64, int64]) { n += s.Len() })
	}
	if n != 100 {
		t.Fatalf("per-shard handle reads saw %d keys, want 100", n)
	}
	for _, h := range handles {
		h.Close()
	}
	m.Close()
	if live := m.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

package shard

import (
	"sync"
	"testing"
	"time"

	"mvgc/internal/batch"
	"mvgc/internal/core"
	"mvgc/internal/ftree"
	"mvgc/internal/vm"
	"mvgc/internal/ycsb"
)

func newSharded(t testing.TB, alg string, shards, procs int, initial []ftree.Entry[int64, int64]) *Map[int64, int64, int64] {
	t.Helper()
	m, err := New(
		Config[int64]{Shards: shards, Procs: procs, Algorithm: alg, Hash: func(k int64) uint64 { return ycsb.Mix64(uint64(k)) }},
		func() *ftree.Ops[int64, int64, int64] {
			return ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
		},
		initial,
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestShardedMatrix runs the full point-op/batch/fan-out surface over every
// Version Maintenance algorithm and checks per-shard precise collection:
// after Close, every shard's allocator must report zero live nodes.
func TestShardedMatrix(t *testing.T) {
	for _, alg := range vm.Names() {
		t.Run(alg, func(t *testing.T) {
			initial := make([]ftree.Entry[int64, int64], 500)
			for i := range initial {
				initial[i] = ftree.Entry[int64, int64]{Key: int64(i), Val: int64(i)}
			}
			m := newSharded(t, alg, 4, 3, initial)

			// Point ops route to the right shard.
			if v, ok := m.Get(123); !ok || v != 123 {
				t.Fatalf("Get(123) = %d,%v", v, ok)
			}
			m.Insert(1000, -5)
			if v, ok := m.Get(1000); !ok || v != -5 {
				t.Fatalf("Get(1000) = %d,%v", v, ok)
			}
			m.Delete(0)
			if m.Has(0) {
				t.Fatal("deleted key still present")
			}
			m.InsertWith(1000, 6, func(old, new int64) int64 { return old + new })
			if v, _ := m.Get(1000); v != 1 {
				t.Fatalf("InsertWith = %d, want 1", v)
			}

			// Batched writes: per-shard atomic parts.
			var entries []ftree.Entry[int64, int64]
			for i := int64(2000); i < 2100; i++ {
				entries = append(entries, ftree.Entry[int64, int64]{Key: i, Val: i})
			}
			m.InsertBatch(entries, nil)
			var dels []int64
			for i := int64(2000); i < 2050; i++ {
				dels = append(dels, i)
			}
			m.DeleteBatch(dels)
			want := int64(500) - 1 + 1 + 50 // initial - Delete(0) + Insert(1000) + surviving batch half
			if n := m.Len(); n != want {
				t.Fatalf("Len = %d, want %d", n, want)
			}

			// Cross-shard transaction with read-your-writes.
			m.Update(func(tx *Txn[int64, int64, int64]) {
				tx.Insert(7777, 1)
				if v, ok := tx.Get(7777); !ok || v != 1 {
					t.Fatalf("txn Get(7777) = %d,%v (no read-your-writes)", v, ok)
				}
				tx.Delete(7777)
				if _, ok := tx.Get(7777); ok {
					t.Fatal("txn sees key it just deleted")
				}
				tx.Insert(7777, 2)
				tx.Insert(8888, 3)
			})
			if v, _ := m.Get(7777); v != 2 {
				t.Fatalf("committed txn value = %d, want 2", v)
			}

			// Fan-out reads in global key order.
			m.View(func(s Snap[int64, int64, int64]) {
				got := s.Range(100, 110)
				if len(got) != 11 {
					t.Fatalf("Range(100,110) returned %d entries", len(got))
				}
				for i, e := range got {
					if e.Key != int64(100+i) {
						t.Fatalf("Range out of order at %d: key %d", i, e.Key)
					}
				}
				var sum int64
				for _, e := range got {
					sum += e.Val
				}
				if ar := s.AugRange(100, 110); ar != sum {
					t.Fatalf("AugRange = %d, range sum = %d", ar, sum)
				}
				prev := int64(-1 << 62)
				n := 0
				s.ForEach(func(k, v int64) {
					if k <= prev {
						t.Fatalf("ForEach out of order: %d after %d", k, prev)
					}
					prev = k
					n++
				})
				if int64(n) != s.Len() {
					t.Fatalf("ForEach visited %d, Len = %d", n, s.Len())
				}
				if v, ok := s.Get(7777); !ok || v != 2 {
					t.Fatalf("Snap.Get(7777) = %d,%v", v, ok)
				}
			})

			m.Close()
			for i := 0; i < m.NumShards(); i++ {
				if live := m.Shard(i).Ops().Live(); live != 0 {
					t.Fatalf("%s: shard %d leaked %d nodes", alg, i, live)
				}
			}
		})
	}
}

// TestShardedConcurrent hammers a sharded map from many goroutines doing
// point ops while batched writers stream through per-shard combiners; -race
// checks the pid discipline, and Close checks precise collection.
func TestShardedConcurrent(t *testing.T) {
	// Each worker owns its client buffer: the rings are single-producer.
	const workers, iters = 8, 400
	const clients = workers
	m := newSharded(t, "pswf", 4, workers+2, nil)
	m.StartBatching(batch.Config{Clients: clients, BufCap: 256, MaxLatency: time.Millisecond}, nil)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := int64(w*iters + i)
				if w%2 == 0 {
					m.Insert(k, k) // direct single-shard write transactions
				} else {
					m.Submit(w, batch.Request[int64, int64]{Op: batch.OpInsert, Key: k, Val: k})
				}
				if i%16 == 0 {
					m.Get(int64(i))
					_ = m.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		m.Flush(c)
	}
	if n := m.Len(); n != workers*iters {
		t.Fatalf("Len = %d, want %d", n, workers*iters)
	}
	if m.Commits() <= 0 {
		t.Fatal("no commits recorded")
	}
	m.Close()
	if live := m.Live(); live != 0 {
		t.Fatalf("leaked %d nodes across shards", live)
	}
}

// twoShardKeys returns two keys living on different shards.
func twoShardKeys(t *testing.T, m *Map[int64, int64, int64]) (a, b int64) {
	t.Helper()
	a = 1
	for b = a + 1; m.ShardFor(b) == m.ShardFor(a); b++ {
	}
	return a, b
}

// TestTxnReadYourWritesAcrossShards is the regression suite for Txn.Get's
// read-your-writes semantics when the transaction spans two shards:
// get-after-delete must report absence (not fall through to the committed
// value), get-after-insert-then-delete likewise, and combining intents
// (InsertWith) must fold on top of whatever lies below them.
func TestTxnReadYourWritesAcrossShards(t *testing.T) {
	m := newSharded(t, "pswf", 4, 2, nil)
	defer m.Close()
	a, b := twoShardKeys(t, m)
	m.Insert(a, 10)
	m.Insert(b, 20)

	add := func(old, new int64) int64 { return old + new }
	m.UpdateAtomic(func(tx *Txn[int64, int64, int64]) {
		// get-after-delete of a committed key, on each shard.
		tx.Delete(a)
		if _, ok := tx.Get(a); ok {
			t.Fatal("Get after Delete sees committed value on shard A")
		}
		tx.Delete(b)
		if _, ok := tx.Get(b); ok {
			t.Fatal("Get after Delete sees committed value on shard B")
		}
		// get-after-insert-then-delete of a fresh key.
		tx.Insert(a+100, 1)
		tx.Delete(a + 100)
		if _, ok := tx.Get(a + 100); ok {
			t.Fatal("Get after insert-then-delete sees the insert")
		}
		// re-insert after delete is visible again.
		tx.Insert(b, 99)
		if v, ok := tx.Get(b); !ok || v != 99 {
			t.Fatalf("Get after delete-then-insert = %d,%v, want 99,true", v, ok)
		}
		// combining intents fold onto the committed value, onto buffered
		// bases, and seed absent keys.
		tx.InsertWith(b, 1, add) // 99 + 1
		if v, ok := tx.Get(b); !ok || v != 100 {
			t.Fatalf("Get through comb = %d,%v, want 100,true", v, ok)
		}
		tx.InsertWith(a, 5, add) // a was deleted above: comb seeds 5
		if v, ok := tx.Get(a); !ok || v != 5 {
			t.Fatalf("Get comb-after-delete = %d,%v, want 5,true", v, ok)
		}
	})
	if v, _ := m.Get(b); v != 100 {
		t.Fatalf("committed b = %d, want 100", v)
	}
	if v, _ := m.Get(a); v != 5 {
		t.Fatalf("committed a = %d, want 5", v)
	}
	if m.Has(a + 100) {
		t.Fatal("insert-then-delete key leaked into the map")
	}
}

// TestAtomicTransferInvariant is the torn-write detector: writers move
// balance between accounts on different shards with UpdateAtomic, and
// ViewConsistent readers assert the total balance never wavers.  Plain View
// readers run alongside and are allowed to observe torn sums (per-shard
// semantics — logged, not asserted, since tearing is timing-dependent).
// Run under -race over the imprecise epoch/hp maintainers and PSWF.
func TestAtomicTransferInvariant(t *testing.T) {
	const accounts, balance = 64, 100
	iters := 1200
	if testing.Short() {
		iters = 300
	}
	for _, alg := range []string{"epoch", "hp", "pswf"} {
		t.Run(alg, func(t *testing.T) {
			initial := make([]ftree.Entry[int64, int64], accounts)
			for i := range initial {
				initial[i] = ftree.Entry[int64, int64]{Key: int64(i), Val: balance}
			}
			m := newSharded(t, alg, 4, 8, initial)
			add := func(old, new int64) int64 { return old + new }

			const writers, readers = 3, 2
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := ycsb.NewSplitMix64(uint64(w)*77 + 3)
					for i := 0; i < iters; i++ {
						a := int64(rng.Intn(accounts))
						b := int64(rng.Intn(accounts))
						if a == b || m.ShardFor(a) == m.ShardFor(b) {
							continue // only cross-shard transfers stress the protocol
						}
						m.UpdateAtomic(func(tx *Txn[int64, int64, int64]) {
							tx.InsertWith(a, -1, add)
							tx.InsertWith(b, 1, add)
						})
					}
				}(w)
			}
			go func() {
				wg.Wait()
				close(stop)
			}()
			var rwg sync.WaitGroup
			torn := 0
			for r := 0; r < readers; r++ {
				rwg.Add(1)
				go func(r int) {
					defer rwg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						m.ViewConsistent(func(s Snap[int64, int64, int64]) {
							if !s.Consistent() || s.GSNs() == nil {
								t.Error("ViewConsistent snap does not report a GSN vector")
							}
							if sum := s.AugRange(0, accounts-1); sum != accounts*balance {
								t.Errorf("torn consistent view: sum = %d, want %d", sum, accounts*balance)
							}
						})
					}
				}(r)
			}
			// One plain-View reader: per-shard semantics, may legitimately
			// observe torn sums while an atomic install is mid-flight.
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					m.View(func(s Snap[int64, int64, int64]) {
						if s.Consistent() {
							t.Error("plain View snap claims consistency")
						}
						if sum := s.AugRange(0, accounts-1); sum != accounts*balance {
							torn++
						}
					})
				}
			}()
			rwg.Wait()
			retries, fenced := m.ConsistentStats()
			t.Logf("%s: plain View torn sums observed: %d; consistent retries %d, fence fallbacks %d",
				alg, torn, retries, fenced)
			m.ViewConsistent(func(s Snap[int64, int64, int64]) {
				if sum := s.AugRange(0, accounts-1); sum != accounts*balance {
					t.Fatalf("final sum = %d, want %d", sum, accounts*balance)
				}
			})
			m.Close()
			if live := m.Live(); live != 0 {
				t.Fatalf("leaked %d nodes", live)
			}
		})
	}
}

// TestConsistentFenceFallback drives an atomic install by hand and checks
// the protocol end to end: while the install seqlock is odd, ViewConsistent
// must refuse every optimistic double-collect, fall back to fencing the
// writer slots, block until the install completes, and then observe both
// shards' new roots (never one without the other).
func TestConsistentFenceFallback(t *testing.T) {
	m := newSharded(t, "pswf", 2, 3, nil)
	defer m.Close()
	a, b := twoShardKeys(t, m)
	sa, sb := m.ShardFor(a), m.ShardFor(b)
	m.maxCollects = 2 // exhaust the optimistic attempts quickly

	installing := make(chan struct{})
	finish := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A hand-rolled two-shard atomic install of {a: 1, b: 1} that parks
		// mid-flight: shard A's root is already installed, shard B's is not.
		first, second := m.shards[sa], m.shards[sb]
		if sb < sa {
			first, second = second, first
		}
		first.LockWriterSlot()
		second.LockWriterSlot()
		m.shards[sa].BeginInstall()
		m.shards[sb].BeginInstall()
		m.shards[sa].WithCached(func(h *core.Handle[int64, int64, int64]) {
			h.UpdateUnstamped(func(tx *core.Txn[int64, int64, int64]) { tx.Insert(a, 1) })
		})
		close(installing)
		<-finish
		m.shards[sb].WithCached(func(h *core.Handle[int64, int64, int64]) {
			h.UpdateUnstamped(func(tx *core.Txn[int64, int64, int64]) { tx.Insert(b, 1) })
		})
		g := m.gsn.Add(1)
		m.shards[sa].BumpStamp(g)
		m.shards[sb].BumpStamp(g)
		m.shards[sa].EndInstall()
		m.shards[sb].EndInstall()
		second.UnlockWriterSlot()
		first.UnlockWriterSlot()
	}()

	<-installing
	// Let the fenced reader block on the held slots before the install is
	// allowed to finish; the sleep only widens the window, correctness does
	// not depend on it.
	time.AfterFunc(10*time.Millisecond, func() { close(finish) })
	m.ViewConsistent(func(s Snap[int64, int64, int64]) {
		va, oka := s.Get(a)
		vb, okb := s.Get(b)
		if !oka || !okb || va != 1 || vb != 1 {
			t.Fatalf("consistent view saw torn install: a=%d,%v b=%d,%v", va, oka, vb, okb)
		}
	})
	wg.Wait()
	retries, fenced := m.ConsistentStats()
	if fenced == 0 {
		t.Fatalf("expected the fence fallback to fire (retries %d, fenced %d)", retries, fenced)
	}
}

// TestSingleShardAtomicRespectsFence: an UpdateAtomic whose footprint
// collapses to one shard must still commit under that shard's writer slot
// — otherwise it could slip between an UpdateAtomicKeys caller's
// validation read and install, breaking the multi-key CAS contract.
func TestSingleShardAtomicRespectsFence(t *testing.T) {
	m := newSharded(t, "pswf", 2, 3, nil)
	defer m.Close()
	k := int64(1)
	m.Insert(k, 0)
	m.shards[m.ShardFor(k)].LockWriterSlot()
	done := make(chan struct{})
	go func() {
		m.UpdateAtomic(func(tx *Txn[int64, int64, int64]) { tx.Insert(k, 7) })
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("single-shard UpdateAtomic committed through a held writer slot")
	default:
	}
	if v, _ := m.Get(k); v != 0 {
		t.Fatalf("value changed to %d while the slot was held", v)
	}
	m.shards[m.ShardFor(k)].UnlockWriterSlot()
	<-done
	if v, _ := m.Get(k); v != 7 {
		t.Fatalf("value = %d after slot release, want 7", v)
	}
}

// TestShardedUncollectedBound: every shard individually respects PSWF's
// 2P+1 version bound, so the aggregate is at most S*(2P+1).
func TestShardedUncollectedBound(t *testing.T) {
	const shards, procs = 4, 3
	m := newSharded(t, "pswf", shards, procs, nil)
	for i := int64(0); i < 500; i++ {
		m.Insert(i, i)
	}
	if u := m.Uncollected(); u < shards || u > shards*(2*procs+1) {
		t.Fatalf("Uncollected = %d outside [S, S*(2P+1)] = [%d, %d]", u, shards, shards*(2*procs+1))
	}
	m.Close()
	if live := m.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

// TestShardedConfigErrors: constructor validation, including the wrapped
// per-shard core error.
func TestShardedConfigErrors(t *testing.T) {
	mk := func() *ftree.Ops[int64, int64, int64] {
		return ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
	}
	hash := func(k int64) uint64 { return uint64(k) }
	if _, err := New(Config[int64]{Shards: 0, Procs: 1, Hash: hash}, mk, nil); err == nil {
		t.Fatal("Shards=0 accepted")
	}
	if _, err := New(Config[int64]{Shards: 2, Procs: 1}, mk, nil); err == nil {
		t.Fatal("nil Hash accepted")
	}
	if _, err := New(Config[int64]{Shards: 2, Procs: 1, Algorithm: "bogus", Hash: hash}, mk, nil); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

// TestShardedHandleAccess: long-lived per-shard handles (the benchmark
// pattern) coexist with the pool-leasing convenience API.
func TestShardedHandleAccess(t *testing.T) {
	m := newSharded(t, "pswf", 2, 3, nil)
	handles := make([]*core.Handle[int64, int64, int64], m.NumShards())
	for i := range handles {
		handles[i] = m.Shard(i).Handle()
	}
	for i := int64(0); i < 100; i++ {
		h := handles[m.ShardFor(i)]
		h.Update(func(tx *core.Txn[int64, int64, int64]) { tx.Insert(i, i) })
	}
	var n int64
	for _, h := range handles {
		h.Read(func(s core.Snapshot[int64, int64, int64]) { n += s.Len() })
	}
	if n != 100 {
		t.Fatalf("per-shard handle reads saw %d keys, want 100", n)
	}
	for _, h := range handles {
		h.Close()
	}
	m.Close()
	if live := m.Live(); live != 0 {
		t.Fatalf("leaked %d nodes", live)
	}
}

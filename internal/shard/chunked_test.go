package shard

import (
	"testing"

	"mvgc/internal/vm"
)

// TestForEachChunkedVisitsAll: on a quiescent map the chunked walk streams
// exactly the full in-order key set for every chunk size, including the
// single-pin degenerate sizes, and an early stop reports non-completion.
// Every VM algorithm runs, since each chunk boundary exercises a full
// release/re-pin cycle against its collector.
func TestForEachChunkedVisitsAll(t *testing.T) {
	for _, alg := range vm.Names() {
		t.Run(alg, func(t *testing.T) {
			m := newSharded(t, alg, 5, 4, nil)
			defer m.Close()
			const n = 500
			for i := 0; i < n; i++ {
				if err := m.Insert(int64(i*2), int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			for _, chunk := range []int{1, 7, 64, n, 3 * n, 0, -3} {
				var got []int64
				done := m.ForEachChunked(chunk, func(k, v int64) bool {
					got = append(got, k)
					return true
				})
				if !done {
					t.Fatalf("chunk=%d: walk did not complete", chunk)
				}
				if len(got) != n {
					t.Fatalf("chunk=%d: visited %d keys, want %d", chunk, len(got), n)
				}
				for i, k := range got {
					if k != int64(i*2) {
						t.Fatalf("chunk=%d: got[%d] = %d, want %d", chunk, i, k, i*2)
					}
				}
			}
			var got []int64
			if !m.ForEachChunkedConsistent(13, func(k, v int64) bool {
				got = append(got, k)
				return true
			}) {
				t.Fatal("consistent chunked walk did not complete")
			}
			if len(got) != n {
				t.Fatalf("consistent walk visited %d keys, want %d", len(got), n)
			}
			count := 0
			if m.ForEachChunked(10, func(k, v int64) bool { count++; return count < 25 }) {
				t.Fatal("stopped walk reported completion")
			}
			if count != 25 {
				t.Fatalf("stopped after %d visits, want 25", count)
			}
		})
	}
}

// TestForEachChunkedBoundedStaleness pins the semantics that distinguish
// the chunked walk from a single frozen snapshot: writes landing AHEAD of
// the cursor between chunks are observed (the next chunk pins a fresh
// snapshot), writes landing BEHIND it are not revisited, and the key
// stream stays strictly increasing throughout.
func TestForEachChunkedBoundedStaleness(t *testing.T) {
	m := newSharded(t, "sbgc", 4, 6, nil)
	defer m.Close()
	for i := 0; i < 100; i++ {
		if err := m.Insert(int64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Keys 0..99 walked in chunks of 10 give deterministic chunk
	// boundaries: 55 is mid-chunk [50..59], and 90 and 500 are pinned
	// only by later chunks.
	var got []int64
	done := m.ForEachChunked(10, func(k, v int64) bool {
		if k == 55 {
			if err := m.Insert(int64(-5), 1); err != nil { // behind: never visited
				t.Fatal(err)
			}
			if err := m.Insert(int64(500), 1); err != nil { // ahead: must be visited
				t.Fatal(err)
			}
			if err := m.Delete(int64(90)); err != nil { // ahead: must not be visited
				t.Fatal(err)
			}
		}
		got = append(got, k)
		return true
	})
	if !done {
		t.Fatal("walk did not complete")
	}
	seen := map[int64]bool{}
	for i, k := range got {
		if i > 0 && k <= got[i-1] {
			t.Fatalf("keys not strictly increasing: %d after %d", k, got[i-1])
		}
		seen[k] = true
	}
	if seen[-5] {
		t.Fatal("walk went backwards: visited a key inserted behind the cursor")
	}
	if seen[90] {
		t.Fatal("walk visited a key deleted ahead of the cursor")
	}
	if !seen[500] {
		t.Fatal("walk missed a key inserted ahead of the cursor (staleness not bounded)")
	}
	if len(got) != 100 { // 0..89, 91..99, 500
		t.Fatalf("visited %d keys, want 100", len(got))
	}
}

// TestForEachChunkedClosedMap: a walk on a closed map reports
// non-completion instead of spinning or panicking.
func TestForEachChunkedClosedMap(t *testing.T) {
	m := newSharded(t, "pswf", 3, 4, nil)
	for i := 0; i < 10; i++ {
		if err := m.Insert(int64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	if m.ForEachChunked(4, func(k, v int64) bool { return true }) {
		t.Fatal("walk over a closed map reported completion")
	}
}

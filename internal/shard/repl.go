// Replication replay: the follower-side apply path.
//
// A follower receives the leader's redo stream — the exact framed records
// a Tailer lifts out of the leader's log, in log byte order — and applies
// each through ReplayRecord.  Because records carry absolute post-images,
// replay is idempotent: re-applying a record, or applying one that a later
// record overwrites, converges to the same map.  Each replayed record runs
// as one atomic local transaction (UpdateAtomic), so a multi-shard atomic
// record applies all-or-nothing on the follower exactly as it did on the
// leader, and the follower's own WAL logs it as one record again — a
// follower is itself recoverable and shippable.
//
// GSN discipline: before applying record g the follower floors its stamp
// source at g-1, so the local install allocates exactly g on a quiet
// follower (replays carry the leader's stamps through); after applying it
// floors at g, which also covers empty records.  Floors never rewind, so
// promotion hands out stamps strictly above everything ever replayed.
package shard

import (
	"errors"
	"fmt"

	"mvgc/internal/wal"
)

// FloorGSN raises the map's commit-sequence source to at least g; stamps
// handed out afterwards are strictly greater.  It never lowers it.
func (m *Map[K, V, A]) FloorGSN(g uint64) {
	for {
		cur := m.gsn.Load()
		if cur >= g || m.gsn.CompareAndSwap(cur, g) {
			return
		}
	}
}

// CommitGSN reports the highest commit sequence number allocated (or
// floored) so far.
func (m *Map[K, V, A]) CommitGSN() uint64 { return m.gsn.Load() }

// WAL returns the attached redo log, or nil when none is attached.
func (m *Map[K, V, A]) WAL() *wal.Log {
	if m.wal == nil {
		return nil
	}
	return m.wal.log
}

// SyncWAL forces the attached log's buffered records durable regardless
// of fsync policy (nil-safe no-op without a WAL).  Followers call it
// before persisting their replication watermark, so the watermark never
// claims records the local log could lose.
func (m *Map[K, V, A]) SyncWAL() error {
	if m.wal == nil {
		return nil
	}
	return m.wal.log.Sync()
}

// replOp is one decoded op of a shipped record.
type replOp[K, V any] struct {
	del bool
	k   K
	v   V
}

// ReplayRecord applies one shipped redo record stamped gsn as a single
// atomic transaction and floors the stamp source at gsn.  A decode error
// applies nothing.  Requires an attached WAL (for the codecs, and so the
// follower relogs what it applies).
func (m *Map[K, V, A]) ReplayRecord(gsn uint64, payload []byte) error {
	if m.wal == nil {
		return errors.New("shard: ReplayRecord requires an attached WAL")
	}
	var ops []replOp[K, V]
	err := decodeWALOps(&m.wal.cfg, payload,
		func(k K, v V) { ops = append(ops, replOp[K, V]{k: k, v: v}) },
		func(k K) { ops = append(ops, replOp[K, V]{del: true, k: k}) })
	if err != nil {
		return fmt.Errorf("shard: replaying shipped record gsn=%d: %w", gsn, err)
	}
	if len(ops) > 0 {
		if gsn > 0 {
			m.FloorGSN(gsn - 1)
		}
		err := m.UpdateAtomic(func(t *Txn[K, V, A]) {
			for _, o := range ops {
				if o.del {
					t.Delete(o.k)
				} else {
					t.Insert(o.k, o.v)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	m.FloorGSN(gsn)
	return nil
}

// replApplyChunk bounds one bootstrap transaction: large snapshots apply
// as a sequence of atomic chunks rather than one map-sized install.
const replApplyChunk = 1024

// ApplyReplSnapshot replaces the map's contents with a shipped checkpoint
// snapshot covering every commit with GSN <= cut, then floors the stamp
// source at cut.  Keys present locally but absent from the snapshot are
// deleted (a re-bootstrap after a partial tail must not leave them
// behind); matching keys are overwritten.  The apply is chunked, not
// atomic — callers run it before serving reads (bootstrap) where a
// mid-apply view is never handed out, and a crash mid-apply re-bootstraps
// from scratch.
func (m *Map[K, V, A]) ApplyReplSnapshot(cut uint64, payload []byte) error {
	if m.wal == nil {
		return errors.New("shard: ApplyReplSnapshot requires an attached WAL")
	}
	cfg := &m.wal.cfg
	entries, err := DecodeWALSnapshot(m.wal.cfg, payload)
	if err != nil {
		return fmt.Errorf("shard: decoding shipped snapshot cut=%d: %w", cut, err)
	}
	// K is not comparable in general; the encoded key bytes are the
	// identity the log itself uses.
	present := make(map[string]struct{}, len(entries))
	var kb []byte
	for _, e := range entries {
		kb = cfg.EncKey(kb[:0], e.Key)
		present[string(kb)] = struct{}{}
	}
	var stale []K
	m.ForEachChunked(replApplyChunk, func(k K, _ V) bool {
		kb = cfg.EncKey(kb[:0], k)
		if _, ok := present[string(kb)]; !ok {
			stale = append(stale, k)
		}
		return true
	})
	for start := 0; start < len(stale); start += replApplyChunk {
		chunk := stale[start:min(start+replApplyChunk, len(stale))]
		err := m.UpdateAtomic(func(t *Txn[K, V, A]) {
			for _, k := range chunk {
				t.Delete(k)
			}
		})
		if err != nil {
			return err
		}
	}
	for start := 0; start < len(entries); start += replApplyChunk {
		chunk := entries[start:min(start+replApplyChunk, len(entries))]
		err := m.UpdateAtomic(func(t *Txn[K, V, A]) {
			for _, e := range chunk {
				t.Insert(e.Key, e.Val)
			}
		})
		if err != nil {
			return err
		}
	}
	m.FloorGSN(cut)
	return nil
}

package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"mvgc/internal/core"
	"mvgc/internal/ftree"
)

// TestOCCUnfencedWriterInvariant is the headline guarantee under -race:
// UpdateAtomicKeys transfers use blind read-compute-write (absolute values,
// no commutative deltas), while unfenced plain point writers hammer the
// same keys with increments that never take a writer slot.  Without
// install-time read validation a transfer that read key k before a hammer
// commit and installed after it would overwrite the increment, and the
// account sum would drift — which is exactly how this test fails on the
// pre-OCC code if the validation gate is bypassed.  With validation the
// final sum must equal the initial sum plus the hammerers' recorded net.
func TestOCCUnfencedWriterInvariant(t *testing.T) {
	const (
		accounts = 64
		initBal  = int64(1 << 20) // deep enough that transfers never bottom out
	)
	transfersPerThread := 400
	hammersPerThread := 1200
	if testing.Short() {
		transfersPerThread, hammersPerThread = 120, 360
	}
	threads := runtime.GOMAXPROCS(0)
	if threads < 2 {
		threads = 2
	}

	initial := make([]ftree.Entry[int64, int64], accounts)
	for i := range initial {
		initial[i] = ftree.Entry[int64, int64]{Key: int64(i), Val: initBal}
	}
	m := newSharded(t, "pswf", 4, threads+2, initial)
	defer m.Close()

	var hammerNet atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(seed int64) { // transfer threads: validated multi-key CAS
			defer wg.Done()
			rng := seed
			next := func() int64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng }
			for n := 0; n < transfersPerThread; n++ {
				a := next() % accounts
				if a < 0 {
					a = -a
				}
				b := (a + 1 + (next()&0xff)%(accounts-1)) % accounts
				m.UpdateAtomicKeys([]int64{a, b}, func(tx *Txn[int64, int64, int64]) {
					// Blind CAS shape: absolute rewrites computed from the
					// validated reads.  Any stale read that committed would
					// erase a hammer increment.
					av, _ := tx.Get(a)
					bv, _ := tx.Get(b)
					// Arbitrary user work between read and write is legal and
					// widens the conflict window; the guarantee must hold
					// regardless (without install-time validation this yield
					// makes the sum drift within a few hundred transfers).
					runtime.Gosched()
					tx.Insert(a, av-1)
					tx.Insert(b, bv+1)
				})
			}
		}(int64(w)*7919 + 1)
		wg.Add(1)
		go func(seed int64) { // unfenced hammer threads: plain point updates
			defer wg.Done()
			rng := seed
			next := func() int64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng }
			for n := 0; n < hammersPerThread; n++ {
				k := next() % accounts
				if k < 0 {
					k = -k
				}
				// Single-key read-modify-write: atomic on its own (core
				// re-runs the callback on conflict), takes no writer slot.
				m.shards[m.ShardFor(k)].WithCached(func(h *coreHandle) {
					h.Update(func(tx *coreTxn) {
						v, _ := tx.Get(k)
						tx.Insert(k, v+3)
					})
				})
				hammerNet.Add(3)
			}
		}(int64(w)*104729 + 13)
	}
	wg.Wait()

	var sum int64
	m.ViewConsistent(func(s Snap[int64, int64, int64]) {
		s.ForEach(func(_ int64, v int64) { sum += v })
	})
	want := int64(accounts)*initBal + hammerNet.Load()
	if sum != want {
		t.Fatalf("sum invariant broken: got %d, want %d (drift %d): an invalidated read committed",
			sum, want, sum-want)
	}
	t.Logf("occ aborts under hammering: %d (threads=%d)", m.OCCAborts(), threads)
}

// TestOCCDeterministicAbort parks an UpdateAtomicKeys transaction between
// its read and its install, lands an unfenced point write on the read key,
// and releases it: install-time validation must abort the first attempt,
// re-run the callback against the new value, and commit the second — the
// retry loop and abort counter observed deterministically rather than
// hoping a stress race fires.
func TestOCCDeterministicAbort(t *testing.T) {
	initial := []ftree.Entry[int64, int64]{}
	for i := int64(0); i < 32; i++ {
		initial = append(initial, ftree.Entry[int64, int64]{Key: i, Val: 100})
	}
	m := newSharded(t, "pswf", 2, 4, initial)
	defer m.Close()

	const k = int64(7)
	read, hammered := make(chan struct{}), make(chan struct{})
	runs := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.UpdateAtomicKeys([]int64{k}, func(tx *Txn[int64, int64, int64]) {
			runs++
			v, _ := tx.Get(k)
			if runs == 1 {
				close(read) // first attempt: hold the stale read …
				<-hammered  // … until the point writer has committed
			}
			tx.Insert(k, v+1)
		})
	}()
	<-read
	m.Insert(k, 777) // unfenced: plain point write, no slot taken
	close(hammered)
	<-done

	if runs != 2 {
		t.Fatalf("callback ran %d times, want 2 (abort must re-run f)", runs)
	}
	if got := m.OCCAborts(); got != 1 {
		t.Fatalf("OCCAborts() = %d, want exactly 1", got)
	}
	if v, _ := m.Get(k); v != 778 {
		t.Fatalf("final value %d, want 778 (second attempt must read the hammered 777)", v)
	}
}

// TestOCCValidatesReadsOutsideFootprint declares a write-only footprint and
// reads a key on a DIFFERENT shard inside the transaction: the read is
// outside every held writer slot, so only stripe validation protects it.
// The parked-write pattern proves it does.
func TestOCCValidatesReadsOutsideFootprint(t *testing.T) {
	initial := []ftree.Entry[int64, int64]{}
	for i := int64(0); i < 64; i++ {
		initial = append(initial, ftree.Entry[int64, int64]{Key: i, Val: int64(i)})
	}
	m := newSharded(t, "pswf", 4, 4, initial)
	defer m.Close()

	// Pick src on a different shard than dst so the read is unfenced.
	dst := int64(1)
	src := int64(-1)
	for i := int64(2); i < 64; i++ {
		if m.ShardFor(i) != m.ShardFor(dst) {
			src = i
			break
		}
	}
	if src < 0 {
		t.Skip("hash put 64 keys on one shard")
	}

	read, hammered := make(chan struct{}), make(chan struct{})
	runs := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.UpdateAtomicKeys([]int64{dst}, func(tx *Txn[int64, int64, int64]) {
			runs++
			v, _ := tx.Get(src) // cross-shard read, not in the footprint
			if runs == 1 {
				close(read)
				<-hammered
			}
			tx.Insert(dst, v*10)
		})
	}()
	<-read
	m.Insert(src, 5000)
	close(hammered)
	<-done

	if runs != 2 {
		t.Fatalf("callback ran %d times, want 2", runs)
	}
	if v, _ := m.Get(dst); v != 50000 {
		t.Fatalf("dst = %d, want 50000 (derived from the post-hammer read)", v)
	}
}

// TestOCCReadOnlyTxn covers the no-write path: validation alone (no install
// window) must still terminate and report a mutually consistent read set.
func TestOCCReadOnlyTxn(t *testing.T) {
	initial := []ftree.Entry[int64, int64]{{Key: 1, Val: 10}, {Key: 2, Val: 20}}
	m := newSharded(t, "pswf", 2, 3, initial)
	defer m.Close()

	var a, b int64
	m.UpdateAtomicKeys([]int64{1, 2}, func(tx *Txn[int64, int64, int64]) {
		a, _ = tx.Get(1)
		b, _ = tx.Get(2)
	})
	if a != 10 || b != 20 {
		t.Fatalf("read-only txn got (%d, %d), want (10, 20)", a, b)
	}
}

// coreHandle / coreTxn shorten the hammer path's types.
type coreHandle = core.Handle[int64, int64, int64]
type coreTxn = core.Txn[int64, int64, int64]

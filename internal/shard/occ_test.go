package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvgc/internal/core"
	"mvgc/internal/ftree"
)

// TestOCCUnfencedWriterInvariant is the headline guarantee under -race:
// UpdateAtomicKeys transfers use blind read-compute-write (absolute values,
// no commutative deltas), while unfenced plain point writers hammer the
// same keys with increments that never take a writer slot.  Without
// install-time read validation a transfer that read key k before a hammer
// commit and installed after it would overwrite the increment, and the
// account sum would drift — which is exactly how this test fails on the
// pre-OCC code if the validation gate is bypassed.  With validation the
// final sum must equal the initial sum plus the hammerers' recorded net.
func TestOCCUnfencedWriterInvariant(t *testing.T) {
	const (
		accounts = 64
		initBal  = int64(1 << 20) // deep enough that transfers never bottom out
	)
	transfersPerThread := 400
	hammersPerThread := 1200
	if testing.Short() {
		transfersPerThread, hammersPerThread = 120, 360
	}
	threads := runtime.GOMAXPROCS(0)
	if threads < 2 {
		threads = 2
	}

	initial := make([]ftree.Entry[int64, int64], accounts)
	for i := range initial {
		initial[i] = ftree.Entry[int64, int64]{Key: int64(i), Val: initBal}
	}
	m := newSharded(t, "pswf", 4, threads+2, initial)
	defer m.Close()

	var hammerNet atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(seed int64) { // transfer threads: validated multi-key CAS
			defer wg.Done()
			rng := seed
			next := func() int64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng }
			for n := 0; n < transfersPerThread; n++ {
				a := next() % accounts
				if a < 0 {
					a = -a
				}
				b := (a + 1 + (next()&0xff)%(accounts-1)) % accounts
				m.UpdateAtomicKeys([]int64{a, b}, func(tx *Txn[int64, int64, int64]) {
					// Blind CAS shape: absolute rewrites computed from the
					// validated reads.  Any stale read that committed would
					// erase a hammer increment.
					av, _ := tx.Get(a)
					bv, _ := tx.Get(b)
					// Arbitrary user work between read and write is legal and
					// widens the conflict window; the guarantee must hold
					// regardless (without install-time validation this yield
					// makes the sum drift within a few hundred transfers).
					runtime.Gosched()
					tx.Insert(a, av-1)
					tx.Insert(b, bv+1)
				})
			}
		}(int64(w)*7919 + 1)
		wg.Add(1)
		go func(seed int64) { // unfenced hammer threads: plain point updates
			defer wg.Done()
			rng := seed
			next := func() int64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng }
			for n := 0; n < hammersPerThread; n++ {
				k := next() % accounts
				if k < 0 {
					k = -k
				}
				// Single-key read-modify-write: atomic on its own (core
				// re-runs the callback on conflict), takes no writer slot.
				m.shards[m.ShardFor(k)].WithCached(func(h *coreHandle) {
					h.Update(func(tx *coreTxn) {
						v, _ := tx.Get(k)
						tx.Insert(k, v+3)
					})
				})
				hammerNet.Add(3)
			}
		}(int64(w)*104729 + 13)
	}
	wg.Wait()

	var sum int64
	m.ViewConsistent(func(s Snap[int64, int64, int64]) {
		s.ForEach(func(_ int64, v int64) { sum += v })
	})
	want := int64(accounts)*initBal + hammerNet.Load()
	if sum != want {
		t.Fatalf("sum invariant broken: got %d, want %d (drift %d): an invalidated read committed",
			sum, want, sum-want)
	}
	t.Logf("occ aborts under hammering: %d (threads=%d)", m.OCCAborts(), threads)
}

// TestOCCDeterministicAbort parks an UpdateAtomicKeys transaction between
// its read and its install, lands an unfenced point write on the read key,
// and releases it: install-time validation must abort the first attempt,
// re-run the callback against the new value, and commit the second — the
// retry loop and abort counter observed deterministically rather than
// hoping a stress race fires.
func TestOCCDeterministicAbort(t *testing.T) {
	initial := []ftree.Entry[int64, int64]{}
	for i := int64(0); i < 32; i++ {
		initial = append(initial, ftree.Entry[int64, int64]{Key: i, Val: 100})
	}
	m := newSharded(t, "pswf", 2, 4, initial)
	defer m.Close()

	const k = int64(7)
	read, hammered := make(chan struct{}), make(chan struct{})
	runs := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.UpdateAtomicKeys([]int64{k}, func(tx *Txn[int64, int64, int64]) {
			runs++
			v, _ := tx.Get(k)
			if runs == 1 {
				close(read) // first attempt: hold the stale read …
				<-hammered  // … until the point writer has committed
			}
			tx.Insert(k, v+1)
		})
	}()
	<-read
	m.Insert(k, 777) // unfenced: plain point write, no slot taken
	close(hammered)
	<-done

	if runs != 2 {
		t.Fatalf("callback ran %d times, want 2 (abort must re-run f)", runs)
	}
	if got := m.OCCAborts(); got != 1 {
		t.Fatalf("OCCAborts() = %d, want exactly 1", got)
	}
	if v, _ := m.Get(k); v != 778 {
		t.Fatalf("final value %d, want 778 (second attempt must read the hammered 777)", v)
	}
}

// TestOCCValidatesReadsOutsideFootprint declares a write-only footprint and
// reads a key on a DIFFERENT shard inside the transaction: the read is
// outside every held writer slot, so only stripe validation protects it.
// The parked-write pattern proves it does.
func TestOCCValidatesReadsOutsideFootprint(t *testing.T) {
	initial := []ftree.Entry[int64, int64]{}
	for i := int64(0); i < 64; i++ {
		initial = append(initial, ftree.Entry[int64, int64]{Key: i, Val: int64(i)})
	}
	m := newSharded(t, "pswf", 4, 4, initial)
	defer m.Close()

	// Pick src on a different shard than dst so the read is unfenced.
	dst := int64(1)
	src := int64(-1)
	for i := int64(2); i < 64; i++ {
		if m.ShardFor(i) != m.ShardFor(dst) {
			src = i
			break
		}
	}
	if src < 0 {
		t.Skip("hash put 64 keys on one shard")
	}

	read, hammered := make(chan struct{}), make(chan struct{})
	runs := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.UpdateAtomicKeys([]int64{dst}, func(tx *Txn[int64, int64, int64]) {
			runs++
			v, _ := tx.Get(src) // cross-shard read, not in the footprint
			if runs == 1 {
				close(read)
				<-hammered
			}
			tx.Insert(dst, v*10)
		})
	}()
	<-read
	m.Insert(src, 5000)
	close(hammered)
	<-done

	if runs != 2 {
		t.Fatalf("callback ran %d times, want 2", runs)
	}
	if v, _ := m.Get(dst); v != 50000 {
		t.Fatalf("dst = %d, want 50000 (derived from the post-hammer read)", v)
	}
}

// TestOCCReadOnlyTxn covers the no-write path: validation alone (no install
// window) must still terminate and report a mutually consistent read set.
func TestOCCReadOnlyTxn(t *testing.T) {
	initial := []ftree.Entry[int64, int64]{{Key: 1, Val: 10}, {Key: 2, Val: 20}}
	m := newSharded(t, "pswf", 2, 3, initial)
	defer m.Close()

	var a, b int64
	m.UpdateAtomicKeys([]int64{1, 2}, func(tx *Txn[int64, int64, int64]) {
		a, _ = tx.Get(1)
		b, _ = tx.Get(2)
	})
	if a != 10 || b != 20 {
		t.Fatalf("read-only txn got (%d, %d), want (10, 20)", a, b)
	}
}

// TestOCCInstallWindowLostUpdate lands an unfenced point increment
// deterministically inside the validate-to-install window — after the
// transaction's read-set validation has passed, before any shard's root is
// published — via the testPostValidate hook.  This is the window validation
// alone cannot cover: without the write-set install locks the increment
// commits mid-window and the install's absolute value silently erases it
// (final 200, a lost update).  With the locks the increment must stall
// until the install publishes and then land on top of it (final 205),
// whichever side of the window the scheduler puts it on.
func TestOCCInstallWindowLostUpdate(t *testing.T) {
	const k = int64(3)
	m := newSharded(t, "pswf", 2, 4, []ftree.Entry[int64, int64]{{Key: k, Val: 100}})
	defer m.Close()

	var hammer sync.WaitGroup
	fired := false
	m.testPostValidate = func() {
		if fired { // only the first attempt's window hosts the race
			return
		}
		fired = true
		hammer.Add(1)
		go func() {
			defer hammer.Done()
			// Unfenced single-key read-modify-write: no writer slot, atomic
			// on its own (core re-runs the callback on root conflict).
			m.shards[m.ShardFor(k)].WithCached(func(h *coreHandle) {
				h.Update(func(tx *coreTxn) {
					v, _ := tx.Get(k)
					tx.Insert(k, v+5)
				})
			})
		}()
		// Park inside the window long enough for the increment to either
		// commit (the pre-lock bug) or reach the install-lock stall (the
		// guarantee under test).
		time.Sleep(2 * time.Millisecond)
	}
	m.UpdateAtomicKeys([]int64{k}, func(tx *Txn[int64, int64, int64]) {
		v, _ := tx.Get(k)
		tx.Insert(k, v*2)
	})
	m.testPostValidate = nil
	hammer.Wait()

	if v, _ := m.Get(k); v != 205 {
		t.Fatalf("k = %d, want 205 (100*2+5): an unfenced write in the validate-to-install window was lost", v)
	}
}

// TestOCCWriteSkew: two transactions with disjoint single-shard footprints
// each read BOTH keys and conditionally write only their own — the classic
// write-skew shape, invisible to any per-key check.  Lock-before-validate
// makes it impossible: each locks its write stripe before validating its
// read of the other's key, so when the windows overlap at least one sees
// the other's lock (or its completed write) and aborts.  The on-call
// invariant a+b >= 1 must hold after every round.
func TestOCCWriteSkew(t *testing.T) {
	m := newSharded(t, "pswf", 4, 4, nil)
	defer m.Close()
	a, b := int64(0), int64(-1)
	for i := int64(1); i < 64; i++ {
		if m.ShardFor(i) != m.ShardFor(a) {
			b = i
			break
		}
	}
	if b < 0 {
		t.Skip("hash put 64 keys on one shard")
	}

	rounds := 400
	if testing.Short() {
		rounds = 100
	}
	for r := 0; r < rounds; r++ {
		m.Insert(a, 1)
		m.Insert(b, 1)
		var wg sync.WaitGroup
		oncall := func(mine, other int64) {
			defer wg.Done()
			m.UpdateAtomicKeys([]int64{mine}, func(tx *Txn[int64, int64, int64]) {
				mv, _ := tx.Get(mine)
				ov, _ := tx.Get(other)
				runtime.Gosched() // widen the read-to-install overlap
				if mv+ov > 1 {
					tx.Insert(mine, 0)
				}
			})
		}
		wg.Add(2)
		go oncall(a, b)
		go oncall(b, a)
		wg.Wait()
		va, _ := m.Get(a)
		vb, _ := m.Get(b)
		if va+vb < 1 {
			t.Fatalf("round %d: write skew committed (a=%d, b=%d, both saw sum 2 and both went off call)", r, va, vb)
		}
	}
}

// coreHandle / coreTxn shorten the hammer path's types.
type coreHandle = core.Handle[int64, int64, int64]
type coreTxn = core.Txn[int64, int64, int64]

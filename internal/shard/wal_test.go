package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mvgc/internal/batch"
	"mvgc/internal/ftree"
	"mvgc/internal/wal"
)

func u64Codec() (func([]byte, uint64) []byte, func([]byte) (uint64, error)) {
	enc := func(dst []byte, x uint64) []byte { return binary.LittleEndian.AppendUint64(dst, x) }
	dec := func(b []byte) (uint64, error) {
		if len(b) != 8 {
			return 0, errors.New("bad u64 length")
		}
		return binary.LittleEndian.Uint64(b), nil
	}
	return enc, dec
}

func newWALMap(t *testing.T, shards int, fs wal.FS) (*Map[uint64, uint64, struct{}], *wal.Log) {
	t.Helper()
	m, rec := reopenWALMap(t, shards, fs)
	if len(rec.Records) != 0 || rec.Snapshot != nil {
		t.Fatalf("fresh dir recovered %d records, snapshot=%v", len(rec.Records), rec.Snapshot != nil)
	}
	return m, m.wal.log
}

// reopenWALMap opens (or re-opens) a WAL-backed map over fs, replaying
// whatever the log holds — the same dance DB recovery does.
func reopenWALMap(t *testing.T, shards int, fs wal.FS) (*Map[uint64, uint64, struct{}], *wal.Recovered) {
	t.Helper()
	log, rec, err := wal.Open(wal.Options{Dir: "wal", FS: fs, SegmentBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	enc, dec := u64Codec()
	cfg := WALConfig[uint64, uint64]{Log: log, EncKey: enc, DecKey: dec, EncVal: enc, DecVal: dec}
	initial, err := DecodeWALSnapshot(cfg, rec.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(
		Config[uint64]{Shards: shards, Procs: 4, Hash: func(k uint64) uint64 { return k }},
		func() *ftree.Ops[uint64, uint64, struct{}] {
			return ftree.New[uint64, uint64, struct{}](ftree.IntCmp[uint64], ftree.NoAug[uint64, uint64](), 0)
		},
		initial,
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RecoverWAL(cfg, rec); err != nil {
		t.Fatal(err)
	}
	if err := m.AttachWAL(cfg); err != nil {
		t.Fatal(err)
	}
	return m, rec
}

func dump(m *Map[uint64, uint64, struct{}]) map[uint64]uint64 {
	out := map[uint64]uint64{}
	m.View(func(s Snap[uint64, uint64, struct{}]) {
		s.ForEach(func(k, v uint64) { out[k] = v })
	})
	return out
}

// TestShardWALRoundTrip drives every logged write path — point ops,
// combining ops, buffered Update, multi-shard UpdateAtomic and
// UpdateAtomicKeys, per-shard batches — then reopens from the log alone
// and requires the exact same contents.
func TestShardWALRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	m, _ := newWALMap(t, 4, fs)

	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(m.Insert(1, 10))
	check(m.Insert(2, 20))
	check(m.InsertWith(1, 5, func(old, new uint64) uint64 { return old + new })) // -> 15
	check(m.Delete(2))
	check(m.Delete(999)) // no-op: no record
	check(m.Update(func(tx *Txn[uint64, uint64, struct{}]) {
		tx.Insert(3, 30)
		tx.Insert(4, 40)
		tx.InsertWith(3, 3, func(old, new uint64) uint64 { return old + new }) // -> 33
	}))
	check(m.UpdateAtomic(func(tx *Txn[uint64, uint64, struct{}]) {
		tx.Insert(5, 50)
		tx.Insert(6, 60)
		tx.Delete(4)
	}))
	check(m.UpdateAtomicKeys([]uint64{5, 6}, func(tx *Txn[uint64, uint64, struct{}]) {
		a, _ := tx.Get(5)
		b, _ := tx.Get(6)
		tx.Insert(5, a+b) // 110
		tx.Delete(6)
	}))
	check(m.InsertBatch([]ftree.Entry[uint64, uint64]{{Key: 7, Val: 70}, {Key: 8, Val: 80}}, nil))
	check(m.DeleteBatch([]uint64{8, 877}))

	m.StartBatching(batch.Config{Clients: 2, MaxBatch: 64}, func(old, new uint64) uint64 { return old + new })
	m.SubmitWait(0, batch.Request[uint64, uint64]{Op: batch.OpInsert, Key: 9, Val: 90})
	m.SubmitWait(1, batch.Request[uint64, uint64]{Op: batch.OpInsert, Key: 9, Val: 9}) // comb -> 99
	var serr error
	var wg sync.WaitGroup
	wg.Add(1)
	m.SubmitAsync(0, batch.Request[uint64, uint64]{Op: batch.OpInsert, Key: 11, Val: 111}, func(err error) {
		serr = err
		wg.Done()
	})
	m.Flush(0)
	wg.Wait()
	check(serr)

	want := dump(m)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, rec := reopenWALMap(t, 4, fs)
	defer m2.Close()
	if rec.MaxGSN == 0 || len(rec.Records) == 0 {
		t.Fatalf("expected recovered records, got %d (maxGSN %d)", len(rec.Records), rec.MaxGSN)
	}
	got := dump(m2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d: got %v want %v", len(got), len(want), got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: recovered %d, want %d", k, got[k], v)
		}
	}
	wantVals := map[uint64]uint64{1: 15, 3: 33, 5: 110, 7: 70, 9: 99, 11: 111}
	for k, v := range wantVals {
		if got[k] != v {
			t.Fatalf("key %d: recovered %d, want %d", k, got[k], v)
		}
	}
	// Post-recovery stamps must never rewind below logged ones.
	if g := m2.gsn.Load(); g < rec.MaxGSN {
		t.Fatalf("gsn resumed at %d, below recovered max %d", g, rec.MaxGSN)
	}
}

// TestShardWALCheckpoint: a checkpoint snapshots a consistent cut, retires
// covered segments, and recovery over snapshot+tail reproduces the map.
func TestShardWALCheckpoint(t *testing.T) {
	fs := wal.NewMemFS()
	m, log := newWALMap(t, 2, fs)
	for k := uint64(0); k < 64; k++ {
		if err := m.Insert(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := log.Stat(); st.Segments != 1 { // current only; all sealed retired
		t.Fatalf("checkpoint left %d segments, want 1", st.Segments)
	}
	for k := uint64(64); k < 80; k++ {
		if err := m.Insert(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Delete(0); err != nil {
		t.Fatal(err)
	}
	want := dump(m)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, rec := reopenWALMap(t, 2, fs)
	defer m2.Close()
	if rec.Snapshot == nil || rec.SnapshotCut == 0 {
		t.Fatal("expected a snapshot from the checkpoint")
	}
	got := dump(m2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: recovered %d, want %d", k, got[k], v)
		}
	}
}

// TestShardWALFailFast: once the log is poisoned (injected sync failure),
// writes return the error BEFORE committing to memory, and Close still
// works.
func TestShardWALFailFast(t *testing.T) {
	ffs := wal.NewFaultFS(wal.NewMemFS())
	m, log := newWALMap(t, 2, ffs)
	defer m.Close()
	if err := m.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	// Arm: every subsequent write-side op fails.
	for op := ffs.Ops() + 1; op < ffs.Ops()+200; op++ {
		ffs.Script(op, wal.FaultErr)
	}
	if err := m.Insert(2, 2); err == nil {
		t.Fatal("Insert with a failing log returned nil")
	}
	if log.Err() == nil {
		t.Fatal("log error not sticky")
	}
	// Fail fast now: no memory commit for refused writes.
	if err := m.Insert(3, 3); err == nil {
		t.Fatal("Insert after sticky error returned nil")
	}
	if _, ok := m.Get(3); ok {
		t.Fatal("refused write reached memory")
	}
	if err := m.Update(func(tx *Txn[uint64, uint64, struct{}]) { tx.Insert(4, 4) }); err == nil {
		t.Fatal("Update after sticky error returned nil")
	}
	if _, ok := m.Get(4); ok {
		t.Fatal("refused Update reached memory")
	}
	if err := m.UpdateAtomic(func(tx *Txn[uint64, uint64, struct{}]) { tx.Insert(5, 5); tx.Insert(6, 6) }); err == nil {
		t.Fatal("UpdateAtomic after sticky error returned nil")
	}
}

// TestShardCloseIdempotent: double Close, concurrent Close, and Close
// racing in-flight operations must not panic; late arrivals get ErrClosed.
func TestShardCloseIdempotent(t *testing.T) {
	fs := wal.NewMemFS()
	m, _ := newWALMap(t, 4, fs)
	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := uint64(0); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(w)*1000 + n%100
				if err := m.Insert(k, n); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("Insert: %v", err)
					}
					return
				}
				m.Get(k)
				if err := m.Update(func(tx *Txn[uint64, uint64, struct{}]) { tx.Insert(k+1, n) }); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("Update: %v", err)
					return
				}
			}
		}(w)
	}
	// Several goroutines race Close itself.
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			if err := m.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	cwg.Wait()
	close(stop)
	wg.Wait()

	// Everything after Close observes the closed state, not a panic.
	if err := m.Insert(1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close: %v, want ErrClosed", err)
	}
	if _, ok := m.Get(1); ok {
		t.Fatal("Get after Close returned a value")
	}
	ran := false
	m.View(func(Snap[uint64, uint64, struct{}]) { ran = true })
	if ran {
		t.Fatal("View ran its callback after Close")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if live := m.Live(); live != 0 {
		t.Fatalf("Live() = %d after Close", live)
	}
}

// TestShardWALGroupCommitConcurrent hammers logged point writes from many
// goroutines under -race and verifies recovery holds every acked write.
func TestShardWALGroupCommitConcurrent(t *testing.T) {
	fs := wal.NewMemFS()
	m, _ := newWALMap(t, 4, fs)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < per; n++ {
				k := uint64(w*per + n)
				if err := m.Insert(k, k+1); err != nil {
					t.Errorf("Insert(%d): %v", k, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, _ := reopenWALMap(t, 4, fs)
	defer m2.Close()
	for k := uint64(0); k < workers*per; k++ {
		if v, ok := m2.Get(k); !ok || v != k+1 {
			t.Fatalf("key %d: recovered (%d, %v), want (%d, true)", k, v, ok, k+1)
		}
	}
}

// TestShardWALCrashTail: a power cut after acked writes loses nothing; a
// torn unsynced tail is dropped cleanly, never half-applied.
func TestShardWALCrashTail(t *testing.T) {
	for _, torn := range []int{0, 5} {
		t.Run(fmt.Sprintf("torn=%d", torn), func(t *testing.T) {
			fs := wal.NewMemFS()
			m, _ := newWALMap(t, 2, fs)
			for k := uint64(0); k < 20; k++ {
				if err := m.Insert(k, k); err != nil {
					t.Fatal(err)
				}
			}
			// Power cut: no Close, just drop unsynced state (+ torn bytes).
			fs.Crash(torn)
			m2, _ := reopenWALMap(t, 2, fs)
			defer m2.Close()
			// FsyncAlways: every acked write was synced before Insert
			// returned, so all 20 must be present.
			for k := uint64(0); k < 20; k++ {
				if v, ok := m2.Get(k); !ok || v != k {
					t.Fatalf("acked key %d lost (got %d, %v)", k, v, ok)
				}
			}
			_ = m // leaked on purpose: the "crashed" process's map is dead
		})
	}
}

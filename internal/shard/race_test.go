//go:build race

package shard

// raceEnabled gates allocation-count assertions: race instrumentation
// allocates per memory access, so AllocsPerRun is meaningless under -race.
const raceEnabled = true

// WAL binding: redo logging for every sharded write path.
//
// The log (internal/wal) is a single GSN-keyed redo stream shared by all
// shards.  Soundness requires that, per shard, records reach the log in the
// order their commits became visible — the raw GSN allocation order is NOT
// that order, because a shard's stamp is allocated after its Set and two
// writers on one shard can be preempted between the two steps.  Every
// logged write path therefore holds its shard's walMu across {in-memory
// commit + Append}, which collapses per-shard log order onto per-shard
// commit order; cross-shard order between records is then exactly GSN
// order, because stamps are allocated from one shared source after
// visibility (core/stamp.go) and recovery replays records sorted by GSN.
//
// Records carry ABSOLUTE post-images (insert k=v / delete k), never deltas:
// a combining write (InsertWith, combiner batches with a comb) is resolved
// to its final value at log time, inside the committing transaction, so
// replay is idempotent and a record buried under a later one is simply
// overwritten.  Commits that publish nothing (a delete of an absent key)
// allocate no stamp and write no record.
//
// Ordering discipline, map-wide: walMu (ascending shard order) -> writer
// slots (ascending) -> install/stripe locks.  walMu is released BEFORE
// Commit() — the group-fsync wait — so one shard's durability wait never
// blocks another writer's commit on the same shard.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"mvgc/internal/batch"
	"mvgc/internal/core"
	"mvgc/internal/ftree"
	"mvgc/internal/wal"
)

// ErrClosed is returned by write operations that arrive after Close has
// begun; the map's shards and log are (or are about to be) torn down.
var ErrClosed = errors.New("shard: map is closed")

// WALConfig binds a redo log to a sharded map.  The codecs translate keys
// and values to and from the log's byte payloads; Enc* append to dst and
// return the extended slice (so warm encodes reuse pooled buffers), Dec*
// parse exactly the bytes Enc* produced.
type WALConfig[K, V any] struct {
	// Log is the open redo log; the map takes ownership (Close closes it).
	Log *wal.Log
	// EncKey / DecKey encode one key.
	EncKey func(dst []byte, k K) []byte
	DecKey func(b []byte) (K, error)
	// EncVal / DecVal encode one value.
	EncVal func(dst []byte, v V) []byte
	DecVal func(b []byte) (V, error)
}

func (c *WALConfig[K, V]) validate() error {
	switch {
	case c.Log == nil:
		return errors.New("shard: WALConfig.Log is required")
	case c.EncKey == nil || c.DecKey == nil:
		return errors.New("shard: WALConfig key codec is required")
	case c.EncVal == nil || c.DecVal == nil:
		return errors.New("shard: WALConfig value codec is required")
	}
	return nil
}

// Record payload op tags.  A record is a concatenation of ops, applied in
// order at replay; the snapshot payload reuses the same stream (inserts
// only), so one decoder serves both.
const (
	walOpInsert = 1
	walOpDelete = 2
)

// walEnc is a pooled encode buffer pair: buf accumulates the record, while
// scratch holds one key or value encode so its length can be written as a
// uvarint prefix before the bytes (codecs append open-endedly, so the
// length is only known after the fact).
type walEnc[K, V any] struct {
	cfg     *WALConfig[K, V]
	buf     []byte
	scratch []byte
}

type walBinding[K, V any] struct {
	log  *wal.Log
	cfg  WALConfig[K, V]
	encs sync.Pool // *walEnc[K, V]
}

func (w *walBinding[K, V]) getEnc() *walEnc[K, V] {
	if e, ok := w.encs.Get().(*walEnc[K, V]); ok {
		e.buf = e.buf[:0]
		return e
	}
	return &walEnc[K, V]{cfg: &w.cfg}
}

func (w *walBinding[K, V]) putEnc(e *walEnc[K, V]) { w.encs.Put(e) }

func (e *walEnc[K, V]) appendScratch() {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(e.scratch)))
	e.buf = append(e.buf, e.scratch...)
}

func (e *walEnc[K, V]) appendInsert(k K, v V) {
	e.buf = append(e.buf, walOpInsert)
	e.scratch = e.cfg.EncKey(e.scratch[:0], k)
	e.appendScratch()
	e.scratch = e.cfg.EncVal(e.scratch[:0], v)
	e.appendScratch()
}

func (e *walEnc[K, V]) appendDelete(k K) {
	e.buf = append(e.buf, walOpDelete)
	e.scratch = e.cfg.EncKey(e.scratch[:0], k)
	e.appendScratch()
}

// decodeWALOps walks one record (or snapshot) payload, calling ins/del per
// op in stream order.
func decodeWALOps[K, V any](cfg *WALConfig[K, V], p []byte, ins func(K, V), del func(K)) error {
	field := func() ([]byte, error) {
		n, w := binary.Uvarint(p)
		if w <= 0 || uint64(w)+n > uint64(len(p)) {
			return nil, errors.New("shard: wal payload truncated")
		}
		b := p[w : w+int(n)]
		p = p[w+int(n):]
		return b, nil
	}
	for len(p) > 0 {
		tag := p[0]
		p = p[1:]
		kb, err := field()
		if err != nil {
			return err
		}
		k, err := cfg.DecKey(kb)
		if err != nil {
			return fmt.Errorf("shard: wal key decode: %w", err)
		}
		switch tag {
		case walOpInsert:
			vb, err := field()
			if err != nil {
				return err
			}
			v, err := cfg.DecVal(vb)
			if err != nil {
				return fmt.Errorf("shard: wal value decode: %w", err)
			}
			ins(k, v)
		case walOpDelete:
			del(k)
		default:
			return fmt.Errorf("shard: wal payload has unknown op tag %d", tag)
		}
	}
	return nil
}

// DecodeWALSnapshot parses a checkpoint snapshot payload back into entries;
// callers pass the result to New as the recovered map's initial contents.
func DecodeWALSnapshot[K, V any](cfg WALConfig[K, V], payload []byte) ([]ftree.Entry[K, V], error) {
	var out []ftree.Entry[K, V]
	err := decodeWALOps(&cfg, payload,
		func(k K, v V) { out = append(out, ftree.Entry[K, V]{Key: k, Val: v}) },
		func(K) {})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AttachWAL binds an open redo log to the map: from here on every write
// path logs a redo record under its shard's walMu and acks only after the
// log's fsync policy says the record is durable.  Call it after New (and
// after RecoverWAL when reopening), before any writes and before
// StartBatching; it is not concurrency-safe against writes.
func (m *Map[K, V, A]) AttachWAL(cfg WALConfig[K, V]) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if m.wal != nil {
		return errors.New("shard: WAL already attached")
	}
	if m.batchers != nil {
		return errors.New("shard: AttachWAL must precede StartBatching")
	}
	m.wal = &walBinding[K, V]{log: cfg.Log, cfg: cfg}
	return nil
}

// WALStats exposes the attached log's counters (nil-safe: zero when no WAL).
func (m *Map[K, V, A]) WALStats() wal.Stats {
	if m.wal == nil {
		return wal.Stats{}
	}
	return m.wal.log.Stat()
}

// RecoverWAL replays recovered redo records into the map, in GSN order,
// then advances the map's commit-sequence source past everything replayed
// so post-recovery stamps never collide with logged ones.  Call it on a
// fresh map (seeded with the decoded snapshot) before AttachWAL; it is not
// concurrency-safe.
func (m *Map[K, V, A]) RecoverWAL(cfg WALConfig[K, V], rec *wal.Recovered) error {
	for _, r := range rec.Records {
		err := decodeWALOps(&cfg, r.Payload,
			func(k K, v V) {
				m.shards[m.ShardFor(k)].WithCached(func(h *core.Handle[K, V, A]) {
					h.Update(func(tx *core.Txn[K, V, A]) { tx.Insert(k, v) })
				})
			},
			func(k K) {
				m.shards[m.ShardFor(k)].WithCached(func(h *core.Handle[K, V, A]) {
					h.Update(func(tx *core.Txn[K, V, A]) { tx.Delete(k) })
				})
			})
		if err != nil {
			return fmt.Errorf("shard: replaying record gsn=%d: %w", r.GSN, err)
		}
	}
	// Never rewind: the replay itself stamped from 0, and a snapshot-only
	// recovery (no records) must still clear the checkpoint cut.
	m.FloorGSN(max(rec.MaxGSN, rec.SnapshotCut))
	return nil
}

// Checkpoint writes a consistent snapshot of the whole map to the log and
// retires every sealed segment the snapshot covers.  The cut rides
// ViewConsistent: shard i's pinned root contains all commits stamped <=
// GSNs()[i], so min(GSNs) is a sound cut — records above it are replayed
// over the snapshot at recovery, and absolute post-images make re-applying
// the overlap idempotent.  Concurrent calls are serialized; writers are
// never blocked (the snapshot is a pinned immutable read).
func (m *Map[K, V, A]) Checkpoint() error {
	if m.wal == nil {
		return errors.New("shard: no WAL attached")
	}
	if !m.enter(0) {
		return ErrClosed
	}
	defer m.exit(0)
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	w := m.wal
	// Deliberately NOT the pooled encoder: a checkpoint serializes the
	// whole map, and returning that buffer to the sync.Pool would park
	// database-sized capacity there indefinitely and hand it to point
	// writes.  Checkpoints are rare; a throwaway allocation is fine.
	e := &walEnc[K, V]{cfg: &w.cfg}
	var cut uint64
	m.viewConsistent(func(s Snap[K, V, A]) {
		gsns := s.GSNs()
		cut = gsns[0]
		for _, g := range gsns[1:] {
			if g < cut {
				cut = g
			}
		}
		for i := range m.shards {
			s.Shard(i).ForEach(func(k K, v V) { e.appendInsert(k, v) })
		}
	})
	return w.log.Checkpoint(cut, e.buf)
}

// walShardCommit runs one logged single-shard commit: under walMu[i] it
// commits apply through a cached handle, encodes the record the committing
// transaction resolved (encode runs INSIDE the transaction, after apply, so
// combining writes read their own post-image; it must reset enc.buf itself
// — commits retry on conflict), and appends it under the commit's GSN.  It
// reports whether a record was appended; the caller decides when to
// Commit() the log (group the fsync across shards).  A no-op commit (no
// stamp) appends nothing.
func (m *Map[K, V, A]) walShardCommit(i int, enc *walEnc[K, V], apply func(tx *core.Txn[K, V, A]), encode func(tx *core.Txn[K, V, A])) (bool, error) {
	w := m.wal
	var g uint64
	m.walMu[i].Lock()
	m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
		h.Update(func(tx *core.Txn[K, V, A]) {
			apply(tx)
			encode(tx)
		})
		g = h.LastStamp()
	})
	var err error
	if g != 0 {
		err = w.log.Append(g, enc.buf)
	}
	m.walMu[i].Unlock()
	return g != 0 && err == nil, err
}

// walPoint is walShardCommit plus the bracketing every independent logged
// write shares: fail fast on a poisoned log before committing anything to
// memory, and group-fsync after the append.
func (m *Map[K, V, A]) walPoint(i int, apply func(tx *core.Txn[K, V, A]), encode func(e *walEnc[K, V], tx *core.Txn[K, V, A])) error {
	w := m.wal
	if err := w.log.Err(); err != nil {
		return err
	}
	e := w.getEnc()
	defer w.putEnc(e)
	appended, err := m.walShardCommit(i, e, apply, func(tx *core.Txn[K, V, A]) {
		e.buf = e.buf[:0]
		encode(e, tx)
	})
	if err != nil || !appended {
		return err
	}
	return w.log.Commit()
}

// encodeIntents appends one op per buffered intent, in replay order,
// resolving combining intents to their post-image via the committing
// transaction (tx reads through the fully applied list, so a comb buried
// under later writes encodes the final value — overwritten at replay by
// the later ops' own encodes, exactly as in memory).
func encodeIntents[K, V, A any](e *walEnc[K, V], tx *core.Txn[K, V, A], list []intent[K, V]) {
	for _, in := range list {
		switch {
		case in.del:
			e.appendDelete(in.key)
		case in.comb != nil:
			if v, ok := tx.Get(in.key); ok {
				e.appendInsert(in.key, v)
			} else {
				e.appendInsert(in.key, in.val)
			}
		default:
			e.appendInsert(in.key, in.val)
		}
	}
}

// walPersist builds the batch.Persist hook for shard i's combiner: hold
// walMu[i] across {batch commit + Append} and group-fsync after release.
// With a combining function the batch's post-images are read back from the
// just-committed version (one pinned read; under walMu no other logged
// writer can advance the shard first); without one the gathered entries
// are already absolute.  Inserts are encoded before deletes to match the
// commit's apply order.
func (m *Map[K, V, A]) walPersist(i int, hasComb bool) batch.Persist[K, V] {
	w := m.wal
	return func(inserts []ftree.Entry[K, V], deletes []K, commit func() uint64) error {
		if err := w.log.Err(); err != nil {
			return err
		}
		e := w.getEnc()
		defer w.putEnc(e)
		m.walMu[i].Lock()
		g := commit()
		var err error
		if g != 0 {
			if hasComb && len(inserts) > 0 {
				m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
					h.Read(func(sn core.Snapshot[K, V, A]) {
						for _, en := range inserts {
							if v, ok := sn.Get(en.Key); ok {
								e.appendInsert(en.Key, v)
							} else {
								e.appendDelete(en.Key)
							}
						}
					})
				})
			} else {
				for _, en := range inserts {
					e.appendInsert(en.Key, en.Val)
				}
			}
			for _, k := range deletes {
				e.appendDelete(k)
			}
			err = w.log.Append(g, e.buf)
		}
		m.walMu[i].Unlock()
		if err != nil || g == 0 {
			return err
		}
		return w.log.Commit()
	}
}

// lockWALMus locks the listed shards' walMu in ascending order (the lists
// touched() produces are already ascending).
func (m *Map[K, V, A]) lockWALMus(touched []int) {
	for _, i := range touched {
		m.walMu[i].Lock()
	}
}

func (m *Map[K, V, A]) unlockWALMus(touched []int) {
	for j := len(touched) - 1; j >= 0; j-- {
		m.walMu[touched[j]].Unlock()
	}
}

package shard

import (
	"sync"
	"testing"
	"time"

	"mvgc/internal/core"
	"mvgc/internal/ftree"
	"mvgc/internal/vm"
	"mvgc/internal/ycsb"
)

// TestScanEquivalence drives an S-shard map and a 1-shard reference with
// the same randomized op stream over every Version Maintenance algorithm,
// then checks that every merged-scan surface — ForEach, ForEachCond,
// RangeFunc, ScanFunc, Scan — streams exactly the reference's in-order
// view.  The 1-shard map degenerates the loser tree to a single leaf, so
// agreement here pins the merge itself, not just the per-shard iterators.
func TestScanEquivalence(t *testing.T) {
	for _, alg := range vm.Names() {
		t.Run(alg, func(t *testing.T) {
			sharded := newSharded(t, alg, 5, 2, nil) // 5: a non-power-of-2 tournament
			single := newSharded(t, alg, 1, 2, nil)
			defer sharded.Close()
			defer single.Close()

			rng := ycsb.NewSplitMix64(42)
			const keySpace = 2000
			for i := 0; i < 3000; i++ {
				k := int64(rng.Intn(keySpace))
				switch rng.Intn(4) {
				case 0:
					sharded.Delete(k)
					single.Delete(k)
				default:
					v := int64(rng.Next())
					sharded.Insert(k, v)
					single.Insert(k, v)
				}
			}

			var want []ftree.Entry[int64, int64]
			single.View(func(s Snap[int64, int64, int64]) {
				want = s.Scan(0, keySpace+1)
			})
			sharded.View(func(s Snap[int64, int64, int64]) {
				// Full ordered walk.
				var got []ftree.Entry[int64, int64]
				s.ForEach(func(k, v int64) {
					got = append(got, ftree.Entry[int64, int64]{Key: k, Val: v})
				})
				if len(got) != len(want) {
					t.Fatalf("ForEach streamed %d entries, reference has %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("ForEach[%d] = %v, want %v", i, got[i], want[i])
					}
				}
				// Random windows, every scan surface.
				for rep := 0; rep < 50; rep++ {
					lo := int64(rng.Intn(keySpace))
					n := 1 + int(rng.Intn(100))
					// Reference window: the first n entries ≥ lo.
					var ref []ftree.Entry[int64, int64]
					for _, e := range want {
						if e.Key >= lo && len(ref) < n {
							ref = append(ref, e)
						}
					}
					scan := s.Scan(lo, n)
					if len(scan) != len(ref) {
						t.Fatalf("Scan(%d,%d) returned %d entries, want %d", lo, n, len(scan), len(ref))
					}
					for i := range scan {
						if scan[i] != ref[i] {
							t.Fatalf("Scan(%d,%d)[%d] = %v, want %v", lo, n, i, scan[i], ref[i])
						}
					}
					got := 0
					if s.ScanFunc(lo, n, func(k, v int64) bool {
						if k != ref[got].Key || v != ref[got].Val {
							t.Fatalf("ScanFunc(%d,%d)[%d] = %d:%d, want %v", lo, n, got, k, v, ref[got])
						}
						got++
						return true
					}) != len(ref) {
						t.Fatalf("ScanFunc(%d,%d) visited %d, want %d", lo, n, got, len(ref))
					}
					if len(ref) > 0 {
						hi := ref[len(ref)-1].Key
						i := 0
						if !s.RangeFunc(lo, hi, func(k, v int64) bool {
							if i >= len(ref) || k != ref[i].Key || v != ref[i].Val {
								t.Fatalf("RangeFunc(%d,%d) diverged at %d: %d:%d", lo, hi, i, k, v)
							}
							i++
							return true
						}) {
							t.Fatalf("RangeFunc(%d,%d) reported early stop", lo, hi)
						}
						if i != len(ref) {
							t.Fatalf("RangeFunc(%d,%d) visited %d, want %d", lo, hi, i, len(ref))
						}
					}
				}
				// Early exit: ForEachCond stops exactly where f says and
				// reports the interruption.
				stopAt := len(want) / 2
				seen := 0
				if s.ForEachCond(func(k, v int64) bool {
					seen++
					return seen < stopAt
				}) {
					t.Fatal("ForEachCond reported completion despite early stop")
				}
				if seen != stopAt {
					t.Fatalf("ForEachCond visited %d after stop at %d", seen, stopAt)
				}
				if !s.ForEachCond(func(k, v int64) bool { return true }) {
					t.Fatal("unconditional ForEachCond reported early stop")
				}
			})
		})
	}
}

// TestScanEmptyAndBounds covers the degenerate merges: empty map, scans
// past the last key, n=0, and a ScanAppend reusing its buffer.
func TestScanEmptyAndBounds(t *testing.T) {
	m := newSharded(t, "pswf", 3, 2, nil)
	defer m.Close()
	m.View(func(s Snap[int64, int64, int64]) {
		if got := s.Scan(0, 10); len(got) != 0 {
			t.Fatalf("scan of empty map returned %d entries", len(got))
		}
		s.ForEach(func(k, v int64) { t.Fatalf("ForEach on empty map visited %d", k) })
	})
	for i := int64(0); i < 100; i++ {
		m.Insert(i, i)
	}
	m.View(func(s Snap[int64, int64, int64]) {
		if got := s.Scan(100, 10); len(got) != 0 {
			t.Fatalf("scan past the last key returned %d entries", len(got))
		}
		if got := s.Scan(0, 0); len(got) != 0 {
			t.Fatalf("n=0 scan returned %d entries", len(got))
		}
		if n := s.ScanFunc(0, 0, func(int64, int64) bool { return true }); n != 0 {
			t.Fatalf("n=0 ScanFunc visited %d", n)
		}
		buf := make([]ftree.Entry[int64, int64], 0, 64)
		first := s.ScanAppend(buf, 10, 5)
		if len(first) != 5 || first[0].Key != 10 {
			t.Fatalf("ScanAppend = %v", first)
		}
		second := s.ScanAppend(first[:0], 20, 5)
		if &second[0] != &first[0] {
			t.Fatal("ScanAppend grew a buffer with spare capacity")
		}
		if second[0].Key != 20 {
			t.Fatalf("reused buffer scan starts at %d, want 20", second[0].Key)
		}
	})
}

// TestScanWarmZeroAlloc pins the tentpole's headline number as a unit
// test: once the per-map pool and the iterator stacks are warm, a
// fixed-length scan on a pinned snapshot performs zero heap allocations.
func TestScanWarmZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are meaningless")
	}
	initial := make([]ftree.Entry[int64, int64], 10_000)
	for i := range initial {
		initial[i] = ftree.Entry[int64, int64]{Key: int64(i), Val: int64(i)}
	}
	m := newSharded(t, "pswf", 4, 2, initial)
	defer m.Close()
	rng := ycsb.NewSplitMix64(7)
	m.View(func(s Snap[int64, int64, int64]) {
		buf := make([]ftree.Entry[int64, int64], 0, 128)
		for i := 0; i < 100; i++ { // warm the pool and the descent stacks
			buf = s.ScanAppend(buf[:0], int64(rng.Intn(10_000)), 100)
		}
		allocs := testing.AllocsPerRun(100, func() {
			buf = s.ScanAppend(buf[:0], int64(rng.Intn(10_000)), 100)
		})
		if allocs != 0 {
			t.Fatalf("warm ScanAppend allocates %.1f times per scan", allocs)
		}
	})
}

// TestTornScanForeclosed is the consistency regression for scans: with a
// two-shard atomic install parked halfway (shard A's root installed,
// shard B's not), a plain View scan merges the latest per-shard roots and
// MUST observe the half-installed transaction — the torn-scan anomaly —
// while a ViewConsistent scan of the same map must refuse that cut, fall
// back to fencing the writers, wait the install out, and stream both keys
// or neither.  The first assertion keeps the anomaly demonstrable (if it
// ever stops reproducing, the plain path got slower for nothing); the
// second forecloses it.
func TestTornScanForeclosed(t *testing.T) {
	m := newSharded(t, "pswf", 2, 3, nil)
	defer m.Close()
	a, b := twoShardKeys(t, m)
	sa, sb := m.ShardFor(a), m.ShardFor(b)
	m.maxCollects = 2 // exhaust the optimistic double-collects quickly

	installing := make(chan struct{})
	finish := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A hand-rolled two-shard atomic install of {a: 1, b: 1} that
		// parks mid-flight, exactly as an UpdateAtomic would look to a
		// reader that caught it between the two installs.
		first, second := m.shards[sa], m.shards[sb]
		if sb < sa {
			first, second = second, first
		}
		first.LockWriterSlot()
		second.LockWriterSlot()
		m.shards[sa].BeginInstall()
		m.shards[sb].BeginInstall()
		m.shards[sa].WithCached(func(h *core.Handle[int64, int64, int64]) {
			h.UpdateUnstamped(func(tx *core.Txn[int64, int64, int64]) { tx.Insert(a, 1) })
		})
		close(installing)
		<-finish
		m.shards[sb].WithCached(func(h *core.Handle[int64, int64, int64]) {
			h.UpdateUnstamped(func(tx *core.Txn[int64, int64, int64]) { tx.Insert(b, 1) })
		})
		g := m.gsn.Add(1)
		m.shards[sa].BumpStamp(g)
		m.shards[sb].BumpStamp(g)
		m.shards[sa].EndInstall()
		m.shards[sb].EndInstall()
		second.UnlockWriterSlot()
		first.UnlockWriterSlot()
	}()

	<-installing
	lo, hi := a, b
	if hi < lo {
		lo, hi = hi, lo
	}
	scanBoth := func(s Snap[int64, int64, int64]) (seenA, seenB bool) {
		s.RangeFunc(lo, hi, func(k, v int64) bool {
			if k == a {
				seenA = true
			}
			if k == b {
				seenB = true
			}
			return true
		})
		return
	}
	// The anomaly, demonstrated: the plain View merge sees shard A's new
	// root and shard B's old one — a scan of a transaction's footprint
	// returns half of it.
	m.View(func(s Snap[int64, int64, int64]) {
		seenA, seenB := scanBoth(s)
		if !seenA || seenB {
			t.Fatalf("plain View scan should see the torn install: a=%v b=%v", seenA, seenB)
		}
	})
	// The anomaly, foreclosed: ViewConsistent refuses every cut with an
	// odd install seqlock, fences, and streams the whole transaction.
	time.AfterFunc(10*time.Millisecond, func() { close(finish) })
	m.ViewConsistent(func(s Snap[int64, int64, int64]) {
		seenA, seenB := scanBoth(s)
		if seenA != seenB {
			t.Fatalf("consistent scan is torn: a=%v b=%v", seenA, seenB)
		}
		if !seenA {
			t.Fatal("consistent scan missed the completed install")
		}
	})
	wg.Wait()
	if _, fenced := m.ConsistentStats(); fenced == 0 {
		t.Fatal("expected the consistent scan to take the fence fallback")
	}
}

// Package shard hash-partitions the transactional map across S independent
// core.Map instances.  Each shard has its own Version Maintenance object,
// its own pid space and its own allocation accounting, so the paper's
// per-structure guarantees hold shard-locally: O(P) version delay, precise
// collection and Live() == 0 after Close apply to every shard on its own.
// Sharding multiplies write throughput — S combining writers commit in
// parallel instead of one — which is how follow-up work scales multiversion
// GC (Ben-David et al., DISC 2021; Wei & Fatourou 2022: partition version
// tracking, bound it per structure).
//
// # Snapshot semantics
//
// Sharding deliberately weakens cross-shard atomicity.  A View pins one
// version per shard — each individually a consistent, immutable snapshot —
// but the S versions are pinned at slightly different times, so the
// combination is not a single global serialization point.  Operations whose
// keys live on one shard (point reads, per-key updates, a Range that
// happens to hash into one shard) keep the paper's full guarantees;
// cross-shard reads (Len, ForEach, Range, AugRange) are per-shard
// consistent only.  Update is atomic per shard: all buffered writes
// touching one shard commit in a single write transaction, but different
// shards commit in separate transactions.
//
// No pid appears anywhere in this package's API: process identities are
// leased internally from each shard's pool (core.Handle), through the
// cached-handle fast path (core.Map.WithCached) so back-to-back point ops
// skip the pool's mutexes entirely.  Each leased pid brings its own node
// arena (ftree.Arena), so a shard's write path also allocates lock-free:
// warm point updates touch no shared allocator state at all.  Multi-shard
// operations lease in ascending shard order, which makes blocking
// admission control deadlock-free (ordered resource acquisition).
package shard

import (
	"fmt"
	"sync"

	"mvgc/internal/batch"
	"mvgc/internal/core"
	"mvgc/internal/ftree"
)

// Config sizes a sharded map.
type Config[K any] struct {
	// Shards is the number of independent core.Map instances S.
	Shards int
	// Procs is the per-shard process count P: each shard admits up to P
	// concurrent transactions (leased handles) on its own VM instance.
	Procs int
	// Algorithm is the Version Maintenance algorithm every shard uses;
	// empty selects pswf.
	Algorithm string
	// Hash maps a key to the shard space; it must be deterministic.  The
	// shard index is Hash(k) % Shards.
	Hash func(K) uint64
	// NoRecycle disables every shard's node recycling (the pid-local
	// magazine allocator); see core.Config.NoRecycle.
	NoRecycle bool
}

// Map is a hash-sharded multiversion map: S independent core.Maps behind
// one pid-free, goroutine-safe API.
type Map[K, V, A any] struct {
	shards   []*core.Map[K, V, A]
	hash     func(K) uint64
	batchers []*batch.Batcher[K, V, A] // non-nil between StartBatching and Close
}

// New builds a sharded map.  mkOps must return a fresh ftree.Ops per call:
// every shard gets its own, so allocation accounting (Ops().Live()) stays
// precise per shard.  initial is partitioned by hash across the shards.
func New[K, V, A any](cfg Config[K], mkOps func() *ftree.Ops[K, V, A], initial []ftree.Entry[K, V]) (*Map[K, V, A], error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("shard: Shards must be positive, got %d", cfg.Shards)
	}
	if cfg.Hash == nil {
		return nil, fmt.Errorf("shard: Hash is required")
	}
	parts := make([][]ftree.Entry[K, V], cfg.Shards)
	for _, e := range initial {
		i := int(cfg.Hash(e.Key) % uint64(cfg.Shards))
		parts[i] = append(parts[i], e)
	}
	m := &Map[K, V, A]{hash: cfg.Hash}
	for i := 0; i < cfg.Shards; i++ {
		s, err := core.NewMap(core.Config{Algorithm: cfg.Algorithm, Procs: cfg.Procs, NoRecycle: cfg.NoRecycle}, mkOps(), parts[i])
		if err != nil {
			for _, prev := range m.shards {
				prev.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		m.shards = append(m.shards, s)
	}
	return m, nil
}

// NumShards returns S.
func (m *Map[K, V, A]) NumShards() int { return len(m.shards) }

// ShardFor returns the index of the shard owning key k.
func (m *Map[K, V, A]) ShardFor(k K) int { return int(m.hash(k) % uint64(len(m.shards))) }

// Shard exposes one underlying core.Map for handle-based access (long-lived
// workers that want to lease a per-shard identity once instead of per-op).
func (m *Map[K, V, A]) Shard(i int) *core.Map[K, V, A] { return m.shards[i] }

// Get runs a point read as a delay-free read transaction on k's shard.
func (m *Map[K, V, A]) Get(k K) (v V, ok bool) {
	m.shards[m.ShardFor(k)].WithCached(func(h *core.Handle[K, V, A]) {
		h.Read(func(s core.Snapshot[K, V, A]) { v, ok = s.Get(k) })
	})
	return
}

// Has reports whether k is present.
func (m *Map[K, V, A]) Has(k K) bool {
	_, ok := m.Get(k)
	return ok
}

// Insert adds or replaces one entry in a single-shard write transaction.
func (m *Map[K, V, A]) Insert(k K, v V) {
	m.shards[m.ShardFor(k)].WithCached(func(h *core.Handle[K, V, A]) {
		h.Update(func(tx *core.Txn[K, V, A]) { tx.Insert(k, v) })
	})
}

// InsertWith adds one entry, combining with any existing value.
func (m *Map[K, V, A]) InsertWith(k K, v V, comb func(old, new V) V) {
	m.shards[m.ShardFor(k)].WithCached(func(h *core.Handle[K, V, A]) {
		h.Update(func(tx *core.Txn[K, V, A]) { tx.InsertWith(k, v, comb) })
	})
}

// Delete removes one entry in a single-shard write transaction.
func (m *Map[K, V, A]) Delete(k K) {
	m.shards[m.ShardFor(k)].WithCached(func(h *core.Handle[K, V, A]) {
		h.Update(func(tx *core.Txn[K, V, A]) { tx.Delete(k) })
	})
}

// InsertBatch partitions the batch by shard and commits each part as one
// atomic per-shard write transaction, all shards in parallel; nil comb
// overwrites.  Atomicity is per shard, not global.
func (m *Map[K, V, A]) InsertBatch(entries []ftree.Entry[K, V], comb func(old, new V) V) {
	parts := make([][]ftree.Entry[K, V], len(m.shards))
	for _, e := range entries {
		i := m.ShardFor(e.Key)
		parts[i] = append(parts[i], e)
	}
	var wg sync.WaitGroup
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part []ftree.Entry[K, V]) {
			defer wg.Done()
			m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
				h.Update(func(tx *core.Txn[K, V, A]) { tx.InsertBatch(part, comb) })
			})
		}(i, part)
	}
	wg.Wait()
}

// DeleteBatch removes keys, one atomic write transaction per affected
// shard, all shards in parallel.
func (m *Map[K, V, A]) DeleteBatch(keys []K) {
	parts := make([][]K, len(m.shards))
	for _, k := range keys {
		i := m.ShardFor(k)
		parts[i] = append(parts[i], k)
	}
	var wg sync.WaitGroup
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part []K) {
			defer wg.Done()
			m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
				h.Update(func(tx *core.Txn[K, V, A]) { tx.DeleteBatch(part) })
			})
		}(i, part)
	}
	wg.Wait()
}

// Len returns the total entry count.  Each shard is counted from its own
// consistent snapshot, but the snapshots are taken sequentially, so under
// concurrent writes the total is approximate (per-shard semantics).
func (m *Map[K, V, A]) Len() int64 {
	var n int64
	for _, s := range m.shards {
		s.WithCached(func(h *core.Handle[K, V, A]) {
			h.Read(func(sn core.Snapshot[K, V, A]) { n += sn.Len() })
		})
	}
	return n
}

// View runs f against a Snap that pins one version per shard.  Handles and
// versions are acquired in ascending shard order before f runs and released
// after it returns, so f sees S stable immutable snapshots — per-shard
// consistent, not a single global snapshot (see the package comment).
// View blocks while any shard's admission pool is exhausted.
func (m *Map[K, V, A]) View(f func(s Snap[K, V, A])) {
	snaps := make([]core.Snapshot[K, V, A], len(m.shards))
	var rec func(i int)
	rec = func(i int) {
		if i == len(m.shards) {
			f(Snap[K, V, A]{m: m, snaps: snaps})
			return
		}
		m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
			h.Read(func(s core.Snapshot[K, V, A]) {
				snaps[i] = s
				rec(i + 1)
			})
		})
	}
	rec(0)
}

// Snap is a fan-out read view: one pinned version per shard, valid only
// within the View callback.
type Snap[K, V, A any] struct {
	m     *Map[K, V, A]
	snaps []core.Snapshot[K, V, A]
}

// Shard exposes shard i's pinned snapshot.
func (s Snap[K, V, A]) Shard(i int) core.Snapshot[K, V, A] { return s.snaps[i] }

// Get returns the value stored under k in k's shard snapshot.
func (s Snap[K, V, A]) Get(k K) (V, bool) { return s.snaps[s.m.ShardFor(k)].Get(k) }

// Has reports whether k is present.
func (s Snap[K, V, A]) Has(k K) bool { return s.snaps[s.m.ShardFor(k)].Has(k) }

// Len sums the per-shard snapshot sizes.
func (s Snap[K, V, A]) Len() int64 {
	var n int64
	for _, sn := range s.snaps {
		n += sn.Len()
	}
	return n
}

// AugRange folds the augmented value over keys in [lo, hi] across all
// shards (each shard in O(log n)); the per-shard results are combined with
// the augmenter's Combine, which must be commutative for hash-partitioned
// key sets (true for sums, maxima and all symmetric monoids).
func (s Snap[K, V, A]) AugRange(lo, hi K) A {
	ops := s.m.shards[0].Ops()
	a := ops.Aug.Zero()
	for _, sn := range s.snaps {
		a = ops.Aug.Combine(a, sn.AugRange(lo, hi))
	}
	return a
}

// Range returns the entries with keys in [lo, hi] across all shards,
// merged into global key order.
func (s Snap[K, V, A]) Range(lo, hi K) []ftree.Entry[K, V] {
	var out []ftree.Entry[K, V]
	s.mergeRange(lo, hi, func(k K, v V) {
		out = append(out, ftree.Entry[K, V]{Key: k, Val: v})
	})
	return out
}

// ForEach visits every entry across all shards in global key order (an
// S-way merge over the per-shard in-order iterators).
func (s Snap[K, V, A]) ForEach(f func(K, V)) {
	cmp := s.m.shards[0].Ops().Cmp
	its := make([]*ftree.Iter[K, V, A], len(s.snaps))
	for i, sn := range s.snaps {
		its[i] = s.m.shards[i].Ops().NewIter(sn.Root())
	}
	for {
		best := -1
		for i, it := range its {
			if !it.Valid() {
				continue
			}
			if best < 0 || cmp(it.Key(), its[best].Key()) < 0 {
				best = i
			}
		}
		if best < 0 {
			return
		}
		f(its[best].Key(), its[best].Val())
		its[best].Next()
	}
}

// mergeRange is the bounded-range S-way merge behind Range.
func (s Snap[K, V, A]) mergeRange(lo, hi K, f func(K, V)) {
	cmp := s.m.shards[0].Ops().Cmp
	its := make([]*ftree.Iter[K, V, A], len(s.snaps))
	for i, sn := range s.snaps {
		its[i] = s.m.shards[i].Ops().NewIterAt(sn.Root(), lo)
	}
	for {
		best := -1
		for i, it := range its {
			if !it.Valid() || cmp(it.Key(), hi) > 0 {
				continue
			}
			if best < 0 || cmp(it.Key(), its[best].Key()) < 0 {
				best = i
			}
		}
		if best < 0 {
			return
		}
		f(its[best].Key(), its[best].Val())
		its[best].Next()
	}
}

// Txn buffers a cross-shard write transaction: Insert and Delete record
// intents, and Update replays each shard's intents in order inside one
// atomic per-shard write transaction.  Reads see the transaction's own
// buffered writes first, then the shard's current committed version.
type Txn[K, V, A any] struct {
	m       *Map[K, V, A]
	intents [][]intent[K, V]
}

type intent[K, V any] struct {
	del bool
	key K
	val V
}

// Insert buffers an insert-or-replace of (k, v).
func (t *Txn[K, V, A]) Insert(k K, v V) {
	i := t.m.ShardFor(k)
	t.intents[i] = append(t.intents[i], intent[K, V]{key: k, val: v})
}

// Delete buffers a removal of k.
func (t *Txn[K, V, A]) Delete(k K) {
	i := t.m.ShardFor(k)
	t.intents[i] = append(t.intents[i], intent[K, V]{del: true, key: k})
}

// Get reads through the transaction's buffered writes (latest intent for k
// wins), falling back to a point read of k's shard's current version.
func (t *Txn[K, V, A]) Get(k K) (V, bool) {
	i := t.m.ShardFor(k)
	cmp := t.m.shards[i].Ops().Cmp
	for j := len(t.intents[i]) - 1; j >= 0; j-- {
		in := t.intents[i][j]
		if cmp(in.key, k) == 0 {
			if in.del {
				var zero V
				return zero, false
			}
			return in.val, true
		}
	}
	return t.m.Get(k)
}

// Update runs a buffered cross-shard write transaction: f records intents,
// then each affected shard commits its intents atomically (in ascending
// shard order).  Atomicity is per shard; there is no global commit point.
func (m *Map[K, V, A]) Update(f func(t *Txn[K, V, A])) {
	t := &Txn[K, V, A]{m: m, intents: make([][]intent[K, V], len(m.shards))}
	f(t)
	for i, list := range t.intents {
		if len(list) == 0 {
			continue
		}
		m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
			h.Update(func(tx *core.Txn[K, V, A]) {
				for _, in := range list {
					if in.del {
						tx.Delete(in.key)
					} else {
						tx.Insert(in.key, in.val)
					}
				}
			})
		})
	}
}

// StartBatching launches one Appendix-F combining writer per shard: each
// leases its own writer identity from its shard's pool and commits that
// shard's submissions as atomic batches.  cfg.Clients buffers are created
// on every shard, so any client id in 0..Clients-1 may submit keys bound
// for any shard.
func (m *Map[K, V, A]) StartBatching(cfg batch.Config, comb func(old, new V) V) {
	if m.batchers != nil {
		panic("shard: StartBatching called twice")
	}
	m.batchers = make([]*batch.Batcher[K, V, A], len(m.shards))
	for i, s := range m.shards {
		m.batchers[i] = batch.New(s, cfg, comb)
		m.batchers[i].Start()
	}
}

// Submit routes a buffered update to its key's shard batcher.  Requires
// StartBatching.
func (m *Map[K, V, A]) Submit(client int, r batch.Request[K, V]) {
	m.batchers[m.ShardFor(r.Key)].Submit(client, r)
}

// SubmitWait routes a buffered update and blocks until its shard's
// combiner has committed it.
func (m *Map[K, V, A]) SubmitWait(client int, r batch.Request[K, V]) {
	m.batchers[m.ShardFor(r.Key)].SubmitWait(client, r)
}

// Flush blocks until everything the client submitted (on any shard) before
// the call has committed.
func (m *Map[K, V, A]) Flush(client int) {
	for _, b := range m.batchers {
		b.Flush(client)
	}
}

// StopBatching stops every shard's combiner after a final drain.
func (m *Map[K, V, A]) StopBatching() {
	for _, b := range m.batchers {
		b.Stop()
	}
	m.batchers = nil
}

// Batches sums committed batch counts across shard combiners.
func (m *Map[K, V, A]) Batches() int64 {
	var n int64
	for _, b := range m.batchers {
		n += b.Batches()
	}
	return n
}

// Commits sums committed write transactions across shards.
func (m *Map[K, V, A]) Commits() int64 {
	var n int64
	for _, s := range m.shards {
		n += s.Commits()
	}
	return n
}

// Aborts sums Set failures across shards.
func (m *Map[K, V, A]) Aborts() int64 {
	var n int64
	for _, s := range m.shards {
		n += s.Aborts()
	}
	return n
}

// Uncollected sums the retained version counts across shards; each shard
// individually respects its algorithm's bound (e.g. 2P+1 for PSWF).
func (m *Map[K, V, A]) Uncollected() int {
	var n int
	for _, s := range m.shards {
		n += s.Uncollected()
	}
	return n
}

// Live sums allocated-minus-freed nodes across shard allocators; zero
// after Close when no nodes leaked anywhere.
func (m *Map[K, V, A]) Live() int64 {
	var n int64
	for _, s := range m.shards {
		n += s.Ops().Live()
	}
	return n
}

// Close stops any batchers and drains every shard.  All clients must have
// quiesced.  After Close, Live() reports leaked nodes across all shards.
func (m *Map[K, V, A]) Close() {
	if m.batchers != nil {
		m.StopBatching()
	}
	for _, s := range m.shards {
		s.Close()
	}
}

// Package shard hash-partitions the transactional map across S independent
// core.Map instances.  Each shard has its own Version Maintenance object,
// its own pid space and its own allocation accounting, so the paper's
// per-structure guarantees hold shard-locally: O(P) version delay, precise
// collection and Live() == 0 after Close apply to every shard on its own.
// Sharding multiplies write throughput — S combining writers commit in
// parallel instead of one — which is how follow-up work scales multiversion
// GC (Ben-David et al., DISC 2021; Wei & Fatourou 2022: partition version
// tracking, bound it per structure).
//
// # Snapshot semantics: two modes
//
// The package offers two commit/read modes and lets every call site pick:
//
//   - Per-shard (Update, View): the fast default.  A View pins one version
//     per shard — each individually a consistent, immutable snapshot — but
//     the S versions are pinned at slightly different times, so the
//     combination is not a single global serialization point.  Update is
//     atomic per shard: all buffered writes touching one shard commit in a
//     single write transaction, but different shards commit in separate
//     transactions, and a concurrent View may observe some of them and not
//     others.
//   - Global (UpdateAtomic, ViewConsistent): every committed root is
//     stamped from one shared global commit sequence number (GSN).
//     UpdateAtomic installs all touched shards' roots under one GSN behind
//     per-shard install seqlocks, so the transaction is never observed
//     torn by ViewConsistent; ViewConsistent double-collects the per-shard
//     (latest-GSN, install-seq) vector around pinning, retrying until the
//     seqlock vector is stable (stamps collected before the pins bound the
//     cut either way) and falling back to briefly fencing the writer
//     slots.  UpdateAtomicKeys adds full optimistic concurrency on top:
//     every authoritative read inside the transaction is sampled against
//     per-key version stripes (core/keyver.go), the write set's stripes
//     are install-locked, and the read set is revalidated at install time
//     with the locks held through publication — so a committed transaction
//     is a true multi-key compare-and-swap, serializable against all
//     writers, including plain point updates that never take the writer
//     slot (they stall off the locked write set and are validation
//     conflicts on the read set).  See the GSN protocol and OCC notes in
//     core/stamp.go, core/keyver.go and DESIGN.md.
//
// Operations whose keys live on one shard (point reads, per-key updates, a
// Range that happens to hash into one shard) keep the paper's full
// guarantees in both modes; single-shard commits carry GSN stamps too, so
// they order correctly under consistent views at no extra cost beyond two
// atomic RMWs per commit.
//
// No pid appears anywhere in this package's API: process identities are
// leased internally from each shard's pool (core.Handle), through the
// cached-handle fast path (core.Map.WithCached) so back-to-back point ops
// skip the pool's mutexes entirely.  Each leased pid brings its own node
// arena (ftree.Arena), so a shard's write path also allocates lock-free:
// warm point updates touch no shared allocator state at all.  Multi-shard
// operations lease in ascending shard order, which makes blocking
// admission control deadlock-free (ordered resource acquisition).
package shard

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"mvgc/internal/batch"
	"mvgc/internal/core"
	"mvgc/internal/ftree"
)

// Config sizes a sharded map.
type Config[K any] struct {
	// Shards is the number of independent core.Map instances S.
	Shards int
	// Procs is the per-shard process count P: each shard admits up to P
	// concurrent transactions (leased handles) on its own VM instance.
	Procs int
	// Algorithm is the Version Maintenance algorithm every shard uses;
	// empty selects pswf.
	Algorithm string
	// Hash maps a key to the shard space; it must be deterministic.  The
	// shard index is Hash(k) % Shards.
	Hash func(K) uint64
	// NoRecycle disables every shard's node recycling (the pid-local
	// magazine allocator); see core.Config.NoRecycle.
	NoRecycle bool
}

// consistentRetries bounds ViewConsistent's optimistic double-collect
// attempts before it falls back to fencing the writer slots.  Small: each
// failed attempt costs S pins, and the fence is cheap for writers that
// never take the slot (all plain transactions).
const consistentRetries = 8

// Map is a hash-sharded multiversion map: S independent core.Maps behind
// one pid-free, goroutine-safe API.
type Map[K, V, A any] struct {
	shards   []*core.Map[K, V, A]
	hash     func(K) uint64
	batchers []*batch.Batcher[K, V, A] // non-nil between StartBatching and Close

	// gsn is the global commit sequence source shared by every shard
	// (core.Config.Stamp): single-shard commits stamp themselves from it,
	// and UpdateAtomic allocates one stamp per cross-shard transaction.
	gsn atomic.Uint64
	// maxCollects overrides consistentRetries when positive (tests force
	// the fence fallback with maxCollects == 1 and no stable window).
	maxCollects int
	// snapRetries / fenced count ViewConsistent's failed double-collect
	// attempts and fence fallbacks, for tests and tuning.
	snapRetries atomic.Int64
	fenced      atomic.Int64
	// occAborts counts UpdateAtomicKeys transactions aborted and retried
	// because install-time validation found a read key's version stripe
	// moved (an unfenced writer hit the read set).
	occAborts atomic.Int64
	// testPostValidate, when non-nil, runs inside an UpdateAtomicKeys
	// install after its read-set validation passes and before any shard's
	// root is published — the validate-to-install window.  Tests use it to
	// land racing work deterministically in the window the install locks
	// must protect; it must not itself commit a fenced or stripe-stalled
	// write synchronously (the slots and write locks are held).
	testPostValidate func()

	// scans pools merge state for ordered cross-shard reads (see scan.go):
	// S reusable tree iterators plus the loser-tree array, leased per scan
	// so a warm fixed-length scan allocates nothing.
	scans sync.Pool

	// wal, when non-nil, is the attached redo log (see wal.go in this
	// package): every write path logs under walMu[i] — held across
	// {in-memory commit + Append} so the per-shard log order equals the
	// per-shard commit order — and acks after the log's fsync policy runs.
	wal    *walBinding[K, V]
	walMu  []sync.Mutex
	ckptMu sync.Mutex

	// closing/gates/closedCh make Close idempotent and safe against
	// in-flight operations: every front-door method passes an enter/exit
	// gate on its (first) shard, Close flips closing and waits for the
	// gates to drain before tearing anything down, and a second Close
	// blocks on closedCh until the first finishes.
	closing  atomic.Bool
	closedCh chan struct{}
	gates    []gate
}

// gate is a padded in-flight counter; one per shard so hot point ops on
// different shards never share a cache line.
type gate struct {
	n atomic.Int64
	_ [56]byte
}

// enter registers an in-flight operation against shard i's gate; false
// means the map is closing and the operation must not touch the shards.
// The increment is published before closing is checked, so Close's drain
// (which flips closing first, then scans the gates) cannot miss us.
func (m *Map[K, V, A]) enter(i int) bool {
	g := &m.gates[i]
	g.n.Add(1)
	if m.closing.Load() {
		g.n.Add(-1)
		return false
	}
	return true
}

func (m *Map[K, V, A]) exit(i int) { m.gates[i].n.Add(-1) }

// New builds a sharded map.  mkOps must return a fresh ftree.Ops per call:
// every shard gets its own, so allocation accounting (Ops().Live()) stays
// precise per shard.  initial is partitioned by hash across the shards.
func New[K, V, A any](cfg Config[K], mkOps func() *ftree.Ops[K, V, A], initial []ftree.Entry[K, V]) (*Map[K, V, A], error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("shard: Shards must be positive, got %d", cfg.Shards)
	}
	if cfg.Hash == nil {
		return nil, fmt.Errorf("shard: Hash is required")
	}
	parts := make([][]ftree.Entry[K, V], cfg.Shards)
	for _, e := range initial {
		i := int(cfg.Hash(e.Key) % uint64(cfg.Shards))
		parts[i] = append(parts[i], e)
	}
	m := &Map[K, V, A]{
		hash:     cfg.Hash,
		walMu:    make([]sync.Mutex, cfg.Shards),
		gates:    make([]gate, cfg.Shards),
		closedCh: make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		s, err := core.NewMap(core.Config{Algorithm: cfg.Algorithm, Procs: cfg.Procs, NoRecycle: cfg.NoRecycle, Stamp: &m.gsn}, mkOps(), parts[i])
		if err != nil {
			for _, prev := range m.shards {
				prev.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		// Every shard maintains per-key version stripes so UpdateAtomicKeys
		// can validate its reads against unfenced point writers; the shard
		// hash doubles as the stripe hash (core remixes it).
		s.EnableKeyVersions(cfg.Hash, 0)
		m.shards = append(m.shards, s)
	}
	return m, nil
}

// NumShards returns S.
func (m *Map[K, V, A]) NumShards() int { return len(m.shards) }

// ShardFor returns the index of the shard owning key k.
func (m *Map[K, V, A]) ShardFor(k K) int { return int(m.hash(k) % uint64(len(m.shards))) }

// Shard exposes one underlying core.Map for handle-based access (long-lived
// workers that want to lease a per-shard identity once instead of per-op).
func (m *Map[K, V, A]) Shard(i int) *core.Map[K, V, A] { return m.shards[i] }

// Get runs a point read as a delay-free read transaction on k's shard.
// After Close it reports absent.
func (m *Map[K, V, A]) Get(k K) (v V, ok bool) {
	i := m.ShardFor(k)
	if !m.enter(i) {
		return
	}
	defer m.exit(i)
	m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
		h.Read(func(s core.Snapshot[K, V, A]) { v, ok = s.Get(k) })
	})
	return
}

// Has reports whether k is present.
func (m *Map[K, V, A]) Has(k K) bool {
	_, ok := m.Get(k)
	return ok
}

// Insert adds or replaces one entry in a single-shard write transaction.
// With a WAL attached the write is durable (per the log's fsync policy)
// when Insert returns nil; a non-nil error means the write must be treated
// as lost — ErrClosed before any effect, a log error after the log was
// poisoned (fail-fast: once the log errors, writes are refused before
// touching memory).
func (m *Map[K, V, A]) Insert(k K, v V) error {
	i := m.ShardFor(k)
	if !m.enter(i) {
		return ErrClosed
	}
	defer m.exit(i)
	if m.wal == nil {
		m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
			h.Update(func(tx *core.Txn[K, V, A]) { tx.Insert(k, v) })
		})
		return nil
	}
	return m.walPoint(i,
		func(tx *core.Txn[K, V, A]) { tx.Insert(k, v) },
		func(e *walEnc[K, V], tx *core.Txn[K, V, A]) { e.appendInsert(k, v) })
}

// InsertWith adds one entry, combining with any existing value.  The
// logged record carries the combined post-image (read back inside the
// committing transaction), so replay never re-applies the delta.
func (m *Map[K, V, A]) InsertWith(k K, v V, comb func(old, new V) V) error {
	i := m.ShardFor(k)
	if !m.enter(i) {
		return ErrClosed
	}
	defer m.exit(i)
	if m.wal == nil {
		m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
			h.Update(func(tx *core.Txn[K, V, A]) { tx.InsertWith(k, v, comb) })
		})
		return nil
	}
	return m.walPoint(i,
		func(tx *core.Txn[K, V, A]) { tx.InsertWith(k, v, comb) },
		func(e *walEnc[K, V], tx *core.Txn[K, V, A]) {
			if post, ok := tx.Get(k); ok {
				e.appendInsert(k, post)
			} else {
				e.appendInsert(k, v)
			}
		})
}

// Delete removes one entry in a single-shard write transaction.
func (m *Map[K, V, A]) Delete(k K) error {
	i := m.ShardFor(k)
	if !m.enter(i) {
		return ErrClosed
	}
	defer m.exit(i)
	if m.wal == nil {
		m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
			h.Update(func(tx *core.Txn[K, V, A]) { tx.Delete(k) })
		})
		return nil
	}
	return m.walPoint(i,
		func(tx *core.Txn[K, V, A]) { tx.Delete(k) },
		func(e *walEnc[K, V], tx *core.Txn[K, V, A]) { e.appendDelete(k) })
}

// InsertBatch partitions the batch by shard and commits each part as one
// atomic per-shard write transaction, all shards in parallel; nil comb
// overwrites.  Atomicity is per shard, not global.  With a WAL attached
// each shard's part is one record (combined post-images read back inside
// the committing transaction) and the fsync is grouped: one Commit for the
// whole batch.
func (m *Map[K, V, A]) InsertBatch(entries []ftree.Entry[K, V], comb func(old, new V) V) error {
	if !m.enter(0) {
		return ErrClosed
	}
	defer m.exit(0)
	parts := make([][]ftree.Entry[K, V], len(m.shards))
	for _, e := range entries {
		i := m.ShardFor(e.Key)
		parts[i] = append(parts[i], e)
	}
	return m.batchFanout(len(parts), func(i int) bool { return len(parts[i]) > 0 },
		func(i int, tx *core.Txn[K, V, A]) { tx.InsertBatch(parts[i], comb) },
		func(i int, e *walEnc[K, V], tx *core.Txn[K, V, A]) {
			for _, en := range parts[i] {
				if comb != nil {
					if v, ok := tx.Get(en.Key); ok {
						e.appendInsert(en.Key, v)
						continue
					}
				}
				e.appendInsert(en.Key, en.Val)
			}
		})
}

// DeleteBatch removes keys, one atomic write transaction per affected
// shard, all shards in parallel; with a WAL attached, one record per shard
// and one grouped fsync.
func (m *Map[K, V, A]) DeleteBatch(keys []K) error {
	if !m.enter(0) {
		return ErrClosed
	}
	defer m.exit(0)
	parts := make([][]K, len(m.shards))
	for _, k := range keys {
		i := m.ShardFor(k)
		parts[i] = append(parts[i], k)
	}
	return m.batchFanout(len(parts), func(i int) bool { return len(parts[i]) > 0 },
		func(i int, tx *core.Txn[K, V, A]) { tx.DeleteBatch(parts[i]) },
		func(i int, e *walEnc[K, V], tx *core.Txn[K, V, A]) {
			for _, k := range parts[i] {
				e.appendDelete(k)
			}
		})
}

// batchFanout commits one write transaction per non-empty shard part, all
// in parallel.  Without a WAL it is fire-and-forget; with one, every
// shard's commit+append runs under that shard's walMu and a single group
// Commit covers the whole fan-out.  The first error wins (sticky log
// errors make the rest fail identically anyway).
func (m *Map[K, V, A]) batchFanout(n int, nonEmpty func(i int) bool, apply func(i int, tx *core.Txn[K, V, A]), encode func(i int, e *walEnc[K, V], tx *core.Txn[K, V, A])) error {
	if m.wal != nil {
		if err := m.wal.log.Err(); err != nil {
			return err
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	appended := make([]bool, n)
	for i := 0; i < n; i++ {
		if !nonEmpty(i) {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if m.wal == nil {
				m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
					h.Update(func(tx *core.Txn[K, V, A]) { apply(i, tx) })
				})
				return
			}
			e := m.wal.getEnc()
			defer m.wal.putEnc(e)
			appended[i], errs[i] = m.walShardCommit(i, e,
				func(tx *core.Txn[K, V, A]) { apply(i, tx) },
				func(tx *core.Txn[K, V, A]) {
					e.buf = e.buf[:0]
					encode(i, e, tx)
				})
		}(i)
	}
	wg.Wait()
	if m.wal == nil {
		return nil
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, a := range appended {
		if a {
			return m.wal.log.Commit()
		}
	}
	return nil
}

// Len returns the total entry count.  Each shard is counted from its own
// consistent snapshot, but the snapshots are taken sequentially, so under
// concurrent writes the total is approximate (per-shard semantics).
func (m *Map[K, V, A]) Len() int64 {
	if !m.enter(0) {
		return 0
	}
	defer m.exit(0)
	var n int64
	for _, s := range m.shards {
		s.WithCached(func(h *core.Handle[K, V, A]) {
			h.Read(func(sn core.Snapshot[K, V, A]) { n += sn.Len() })
		})
	}
	return n
}

// withPinned acquires one handle and one version per shard in ascending
// shard order, runs f against the pinned snapshots, then releases
// everything in reverse.  All fan-out read modes are built on it.
func (m *Map[K, V, A]) withPinned(f func(snaps []core.Snapshot[K, V, A])) {
	snaps := make([]core.Snapshot[K, V, A], len(m.shards))
	var rec func(i int)
	rec = func(i int) {
		if i == len(m.shards) {
			f(snaps)
			return
		}
		m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
			h.Read(func(s core.Snapshot[K, V, A]) {
				snaps[i] = s
				rec(i + 1)
			})
		})
	}
	rec(0)
}

// View runs f against a Snap that pins one version per shard.  Handles and
// versions are acquired in ascending shard order before f runs and released
// after it returns, so f sees S stable immutable snapshots — per-shard
// consistent, NOT a single global snapshot: a concurrent cross-shard
// transaction (UpdateAtomic or plain Update) may be visible on some shards
// of the Snap and not others.  Use ViewConsistent when that matters.
// View blocks while any shard's admission pool is exhausted.  After Close
// it returns without running f.
func (m *Map[K, V, A]) View(f func(s Snap[K, V, A])) {
	if !m.enter(0) {
		return
	}
	defer m.exit(0)
	m.withPinned(func(snaps []core.Snapshot[K, V, A]) {
		f(Snap[K, V, A]{m: m, snaps: snaps})
	})
}

// ViewConsistent runs f against a Snap whose S pinned versions form one
// consistent global cut: no cross-shard UpdateAtomic transaction is ever
// observed torn, and the Snap carries the per-shard GSN vector it reflects
// (Snap.GSNs).  The guarantee, precisely: for every shard i, the pinned
// root contains all commits stamped <= GSNs()[i] (and, transiently, may
// contain later single-shard commits, which are atomic on their own); for
// every UpdateAtomic transaction, either all or none of its per-shard roots
// are visible.
//
// Protocol (why no reader lock): collect the per-shard (latest-GSN,
// install-seq) vector, pin one version per shard, collect again.  Stable
// even seqlocks prove no atomic install overlapped the pins — the cut is
// tear-free — and because stamps are allocated only after their root is
// visible (core/stamp.go), the GSN vector collected *before* the pins is a
// sound prefix bound whether or not stamps moved while pinning (if they
// also held still, the cut is additionally exact: no commit of any kind
// landed during it).  Only seqlock instability forces a retry; after
// consistentRetries failed attempts (sustained atomic-install overlap) it
// falls back to briefly fencing the writer slots in ascending shard order:
// with the slots held no atomic install or combiner commit can run, so the
// fenced attempt is definitive.  Plain writers are never blocked in either
// path.  After Close it returns without running f.
func (m *Map[K, V, A]) ViewConsistent(f func(s Snap[K, V, A])) {
	if !m.enter(0) {
		return
	}
	defer m.exit(0)
	m.viewConsistent(f)
}

// viewConsistent is ViewConsistent without the close gate, for internal
// callers (Checkpoint) that already hold a gate entry.
func (m *Map[K, V, A]) viewConsistent(f func(s Snap[K, V, A])) {
	n := len(m.shards)
	gsns := make([]uint64, n)
	seqs := make([]uint64, n)
	max := m.maxCollects
	if max <= 0 {
		max = consistentRetries
	}
	for try := 0; try < max; try++ {
		stable := true
		for i, s := range m.shards {
			q := s.InstallSeq()
			if q&1 != 0 { // an atomic install is mid-flight; pinning now would be wasted
				stable = false
				break
			}
			seqs[i] = q
			gsns[i] = s.LatestStamp()
		}
		if !stable {
			m.snapRetries.Add(1)
			runtime.Gosched()
			continue
		}
		done := false
		m.withPinned(func(snaps []core.Snapshot[K, V, A]) {
			for i, s := range m.shards {
				if s.InstallSeq() != seqs[i] {
					return // an atomic install overlapped the pins: retry
				}
			}
			// Seqlocks held still: the cut is tear-free, and gsns — read
			// before the pins — is a sound prefix bound even if plain
			// commits moved the stamps meanwhile.
			done = true
			f(Snap[K, V, A]{m: m, snaps: snaps, gsns: gsns})
		})
		if done {
			return
		}
		m.snapRetries.Add(1)
	}
	// Fence fallback: exclude atomic installers (and combiner commits) for
	// the duration of one pin pass.  The GSN vector is collected before
	// pinning — stamp-after-visibility makes it a sound prefix bound — and
	// needs no second collect: the slots guarantee no install can tear the
	// cut, and single-shard commits slipping in are atomic on their own.
	// The slots are released as soon as the last version is pinned: pinned
	// versions are immutable, so f — often a long scan, exactly what
	// ViewConsistent is for — must not extend the writer stall.
	m.fenced.Add(1)
	for _, s := range m.shards {
		s.LockWriterSlot()
	}
	unfenced := false
	unfence := func() {
		if !unfenced {
			unfenced = true
			for i := n - 1; i >= 0; i-- {
				m.shards[i].UnlockWriterSlot()
			}
		}
	}
	defer unfence()
	for i, s := range m.shards {
		gsns[i] = s.LatestStamp()
	}
	m.withPinned(func(snaps []core.Snapshot[K, V, A]) {
		unfence()
		f(Snap[K, V, A]{m: m, snaps: snaps, gsns: gsns})
	})
}

// ConsistentStats reports ViewConsistent's failed double-collect attempts
// and fence fallbacks since the map was created.
func (m *Map[K, V, A]) ConsistentStats() (retries, fenced int64) {
	return m.snapRetries.Load(), m.fenced.Load()
}

// Snap is a fan-out read view: one pinned version per shard, valid only
// within the View or ViewConsistent callback.  Under View the S versions
// are per-shard consistent only; under ViewConsistent they form one global
// cut and GSNs reports the commit-sequence vector the cut reflects.
type Snap[K, V, A any] struct {
	m     *Map[K, V, A]
	snaps []core.Snapshot[K, V, A]
	gsns  []uint64 // non-nil only for ViewConsistent snaps
}

// Shard exposes shard i's pinned snapshot.
func (s Snap[K, V, A]) Shard(i int) core.Snapshot[K, V, A] { return s.snaps[i] }

// GSNs returns the per-shard global-commit-sequence vector this snap
// reflects, or nil for a plain View snap.  For a ViewConsistent snap,
// shard i's pinned root contains every commit stamped <= GSNs()[i], and no
// UpdateAtomic transaction is visible on some shards but not others.  The
// slice is valid only within the callback and must not be mutated.
func (s Snap[K, V, A]) GSNs() []uint64 { return s.gsns }

// Consistent reports whether this snap was produced by ViewConsistent and
// therefore carries the cross-shard atomicity guarantee.
func (s Snap[K, V, A]) Consistent() bool { return s.gsns != nil }

// Get returns the value stored under k in k's shard snapshot.
func (s Snap[K, V, A]) Get(k K) (V, bool) { return s.snaps[s.m.ShardFor(k)].Get(k) }

// Has reports whether k is present.
func (s Snap[K, V, A]) Has(k K) bool { return s.snaps[s.m.ShardFor(k)].Has(k) }

// Len sums the per-shard snapshot sizes.  Under View the per-shard counts
// are pinned at slightly different instants, so under concurrent writes the
// total is approximate (per-shard semantics).  Under ViewConsistent the
// counts form one tear-free cut: no atomic transaction is half-counted,
// though concurrent plain single-key commits may each be included or not
// (each wholly, they are atomic on their own).
func (s Snap[K, V, A]) Len() int64 {
	var n int64
	for _, sn := range s.snaps {
		n += sn.Len()
	}
	return n
}

// AugRange folds the augmented value over keys in [lo, hi] across all
// shards (each shard in O(log n)); the per-shard results are combined with
// the augmenter's Combine, which must be commutative for hash-partitioned
// key sets (true for sums, maxima and all symmetric monoids).
func (s Snap[K, V, A]) AugRange(lo, hi K) A {
	ops := s.m.shards[0].Ops()
	a := ops.Aug.Zero()
	for _, sn := range s.snaps {
		a = ops.Aug.Combine(a, sn.AugRange(lo, hi))
	}
	return a
}

// Range returns the entries with keys in [lo, hi] across all shards,
// merged into global key order.  It materializes the whole result; use
// RangeFunc, ScanFunc or ForEachCond to stream with early exit instead.
func (s Snap[K, V, A]) Range(lo, hi K) []ftree.Entry[K, V] {
	var out []ftree.Entry[K, V]
	s.RangeFunc(lo, hi, func(k K, v V) bool {
		out = append(out, ftree.Entry[K, V]{Key: k, Val: v})
		return true
	})
	return out
}

// Txn buffers a cross-shard write transaction: Insert and Delete record
// intents, and Update (per-shard atomic) or UpdateAtomic (globally atomic,
// one GSN) replays each shard's intents in order.  Reads see the
// transaction's own buffered writes first — including deletes, so a
// get-after-delete inside the transaction reports absence — then the
// shard's current committed version.  Under UpdateAtomicKeys every
// authoritative read is additionally sampled into a read set that the
// install phase validates (and aborts on) against concurrent point writers.
type Txn[K, V, A any] struct {
	m       *Map[K, V, A]
	intents [][]intent[K, V]

	// occ marks an UpdateAtomicKeys transaction: authoritative reads go
	// through the stable-read protocol and land in reads, the read set the
	// install phase validates (and aborts on) against unfenced writers.
	occ   bool
	reads []readSample
}

type intent[K, V any] struct {
	del  bool
	key  K
	val  V
	comb func(old, new V) V // non-nil: combine with the value below (InsertWith)
}

// readSample records one validated optimistic read: the key's version
// stripe on its shard and the stable word observed there when the value was
// read.  Validation re-loads the stripe and requires the identical word —
// which proves no writer so much as started a commit on the stripe since.
type readSample struct {
	shard  int
	stripe uint64
	word   uint64
}

// Insert buffers an insert-or-replace of (k, v).
func (t *Txn[K, V, A]) Insert(k K, v V) {
	i := t.m.ShardFor(k)
	t.intents[i] = append(t.intents[i], intent[K, V]{key: k, val: v})
}

// InsertWith buffers an insert of (k, v) that combines with any existing
// value at commit time: comb(old, v) when k is present, plain v otherwise.
// Because the combination is evaluated against the value current at
// commit — and re-evaluated on conflict retry — commutative deltas (add,
// max, ...) are immune to lost updates even when the transaction's own
// reads were stale, which is what makes InsertWith the right primitive for
// transfers and counters.
func (t *Txn[K, V, A]) InsertWith(k K, v V, comb func(old, new V) V) {
	i := t.m.ShardFor(k)
	t.intents[i] = append(t.intents[i], intent[K, V]{key: k, val: v, comb: comb})
}

// Delete buffers a removal of k.
func (t *Txn[K, V, A]) Delete(k K) {
	i := t.m.ShardFor(k)
	t.intents[i] = append(t.intents[i], intent[K, V]{del: true, key: k})
}

// touched returns the indices of shards with at least one buffered intent,
// in ascending order (intents is indexed by shard).
func (t *Txn[K, V, A]) touched() []int {
	var out []int
	for i, list := range t.intents {
		if len(list) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Get reads through the transaction's buffered writes (latest intent for k
// wins; a buffered delete reports absence), falling back to a point read of
// k's shard's current version.  Combining intents (InsertWith) are folded,
// in buffer order, on top of the latest authoritative value below them.
func (t *Txn[K, V, A]) Get(k K) (V, bool) {
	i := t.m.ShardFor(k)
	cmp := t.m.shards[i].Ops().Cmp
	list := t.intents[i]
	// Scan back to the latest plain insert or delete of k, collecting the
	// combining intents stacked above it.
	var combs []int
	base := -1
	for j := len(list) - 1; j >= 0; j-- {
		if cmp(list[j].key, k) != 0 {
			continue
		}
		if list[j].comb != nil {
			combs = append(combs, j)
			continue
		}
		base = j
		break
	}
	var v V
	var ok bool
	switch {
	case base >= 0 && list[base].del:
		// absent below the combs
	case base >= 0:
		v, ok = list[base].val, true
	case t.occ:
		v, ok = t.readTracked(i, k)
	default:
		v, ok = t.m.Get(k)
	}
	for j := len(combs) - 1; j >= 0; j-- { // chronological order
		in := list[combs[j]]
		if ok {
			v = in.comb(v, in.val)
		} else {
			v, ok = in.val, true
		}
	}
	return v, ok
}

// readTracked is the optimistic stable read: load k's version stripe (a
// stable word, waiting out in-flight writers and foreign install locks
// with bounded backoff), read the value, and accept only if the stripe did
// not move — so the recorded word names exactly the write-state the value
// came from.  The (shard, stripe, word) sample joins the transaction's
// read set for install-time validation.  The wait is bounded by commit
// brackets and install windows, which contain no user code — but a
// wholesale bracket (a SetRoot or table-scale batch commit on the read
// shard) marks every stripe for its whole commit, so a read colliding with
// one waits for that commit's Set; see the UpdateAtomicKeys contract.
func (t *Txn[K, V, A]) readTracked(i int, k K) (V, bool) {
	s := t.m.shards[i]
	stripe := s.KeyStripe(k)
	var v V
	var ok bool
	for n := 0; ; n++ {
		w := s.StableStripeWord(stripe)
		s.WithCached(func(h *core.Handle[K, V, A]) {
			h.Read(func(sn core.Snapshot[K, V, A]) { v, ok = sn.Get(k) })
		})
		if s.StripeWord(stripe) == w {
			t.reads = append(t.reads, readSample{shard: i, stripe: stripe, word: w})
			return v, ok
		}
		core.Backoff(n)
	}
}

// validateReads re-loads every read sample's stripe and reports whether all
// still hold their recorded words.  Equality means no writer entered the
// stripe since the read — every sampled value is still current — so the
// caller may treat "now" as the moment all its reads happened at once.
// wstripes lists, per shard, the stripes the calling transaction has
// install-locked (its write set): on those, and only those, the lock bit is
// masked before comparing — the caller's own lock is not a conflict, but a
// FOREIGN lock means another transaction is mid-install over the sampled
// key and the read must not survive validation.
func (m *Map[K, V, A]) validateReads(reads []readSample, wstripes [][]uint64) bool {
	for _, r := range reads {
		w := m.shards[r.shard].StripeWord(r.stripe)
		if w&core.StripeLock != 0 && wstripes != nil && slices.Contains(wstripes[r.shard], r.stripe) {
			w &^= core.StripeLock
		}
		if w != r.word {
			return false
		}
	}
	return true
}

// replay applies a shard's buffered intents, in order, to a core write
// transaction.
func replay[K, V, A any](tx *core.Txn[K, V, A], list []intent[K, V]) {
	for _, in := range list {
		switch {
		case in.del:
			tx.Delete(in.key)
		case in.comb != nil:
			tx.InsertWith(in.key, in.val, in.comb)
		default:
			tx.Insert(in.key, in.val)
		}
	}
}

// Update runs a buffered cross-shard write transaction in the fast
// per-shard mode: f records intents, then each affected shard commits its
// intents atomically (in ascending shard order).  Atomicity is per shard;
// there is no global commit point, and a concurrent View or ViewConsistent
// may observe some shards' commits and not others'.  Use UpdateAtomic when
// the transaction must never be seen torn.  With a WAL attached each
// shard's commit appends one record and a single group fsync covers the
// whole transaction; durability (like atomicity) is per shard — a crash
// between per-shard fsync points can persist some shards' legs and not
// others'.
func (m *Map[K, V, A]) Update(f func(t *Txn[K, V, A])) error {
	if !m.enter(0) {
		return ErrClosed
	}
	defer m.exit(0)
	t := &Txn[K, V, A]{m: m, intents: make([][]intent[K, V], len(m.shards))}
	f(t)
	if m.wal == nil {
		for i, list := range t.intents {
			if len(list) == 0 {
				continue
			}
			m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
				h.Update(func(tx *core.Txn[K, V, A]) { replay(tx, list) })
			})
		}
		return nil
	}
	if err := m.wal.log.Err(); err != nil {
		return err
	}
	e := m.wal.getEnc()
	defer m.wal.putEnc(e)
	appended := false
	for i, list := range t.intents {
		if len(list) == 0 {
			continue
		}
		list := list
		a, err := m.walShardCommit(i, e,
			func(tx *core.Txn[K, V, A]) { replay(tx, list) },
			func(tx *core.Txn[K, V, A]) {
				e.buf = e.buf[:0]
				encodeIntents(e, tx, list)
			})
		if err != nil {
			return err
		}
		appended = appended || a
	}
	if !appended {
		return nil
	}
	return m.wal.log.Commit()
}

// UpdateAtomic runs a buffered cross-shard write transaction with a global
// commit point: f records intents, then every affected shard's new root is
// installed under ONE global commit sequence number, so ViewConsistent
// never observes the transaction torn (plain View remains per-shard and
// may).  The two-phase protocol: acquire the touched shards' writer slots
// in ascending shard order (deadlock-free), drive their install seqlocks
// odd, build and install each shard's new root through that shard's leased
// pid and arena (conflicting plain writers just force a per-shard rebuild,
// exactly core.Update's lock-free retry), allocate the transaction's GSN
// after the last install, publish it on every touched shard, drive the
// seqlocks even and release the slots.  Readers between the installs are
// exactly the window the seqlocks cover.
//
// Transactions touching a single shard skip the seqlock protocol — one
// shard's commit is already atomic and its normal stamp orders it globally
// — but still commit under that shard's writer slot, so they respect the
// fence UpdateAtomicKeys' stable reads and ViewConsistent's fallback rely
// on (an atomic transaction must never bypass another's fence, whatever
// its footprint).
func (m *Map[K, V, A]) UpdateAtomic(f func(t *Txn[K, V, A])) error {
	if !m.enter(0) {
		return ErrClosed
	}
	defer m.exit(0)
	t := &Txn[K, V, A]{m: m, intents: make([][]intent[K, V], len(m.shards))}
	f(t)
	touched := t.touched()
	if len(touched) == 0 {
		return nil
	}
	if m.wal != nil {
		if err := m.wal.log.Err(); err != nil {
			return err
		}
	}
	if len(touched) == 1 {
		i := touched[0]
		list := t.intents[i]
		if m.wal == nil {
			m.shards[i].LockWriterSlot()
			defer m.shards[i].UnlockWriterSlot()
			m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
				h.Update(func(tx *core.Txn[K, V, A]) { replay(tx, list) })
			})
			return nil
		}
		// Lock order: walMu before the writer slot, matching the combiner's
		// persist hook (which holds walMu while its commit takes the slot).
		e := m.wal.getEnc()
		defer m.wal.putEnc(e)
		var g uint64
		var err error
		m.walMu[i].Lock()
		m.shards[i].LockWriterSlot()
		m.shards[i].WithCached(func(h *core.Handle[K, V, A]) {
			h.Update(func(tx *core.Txn[K, V, A]) {
				replay(tx, list)
				e.buf = e.buf[:0]
				encodeIntents(e, tx, list)
			})
			g = h.LastStamp()
		})
		m.shards[i].UnlockWriterSlot()
		if g != 0 {
			err = m.wal.log.Append(g, e.buf)
		}
		m.walMu[i].Unlock()
		if err != nil || g == 0 {
			return err
		}
		return m.wal.log.Commit()
	}
	if m.wal == nil {
		// Slots are released by defer so a panic out of a user comb during
		// the install (which forfeits atomicity for the legs already
		// installed — see core.InstallAtomic) cannot wedge the fence.
		core.LockWriterSlots(m.shards, touched)
		defer core.UnlockWriterSlots(m.shards, touched)
		m.installLocked(touched, t.intents, nil, nil, nil, nil)
		return nil
	}
	// WAL'd multi-shard install: every touched shard's walMu is held
	// (ascending) around the whole install, so the transaction's single
	// record — all shards' ops under the install GSN — cannot interleave
	// out of commit order with any shard's other records.
	e := m.wal.getEnc()
	m.lockWALMus(touched)
	unlock := func() {
		if touched != nil {
			m.unlockWALMus(touched)
			touched = nil
		}
	}
	defer unlock()
	defer m.wal.putEnc(e)
	// marks[j] is where shard j's ops start in the shared record buffer:
	// a per-shard install retries its transaction on conflict, re-running
	// the encode, so each attempt truncates back to its own mark first.
	marks := make([]int, len(touched))
	for j := range marks {
		marks[j] = -1
	}
	install := func() (uint64, bool) {
		core.LockWriterSlots(m.shards, touched)
		defer core.UnlockWriterSlots(m.shards, touched)
		return m.installLocked(touched, t.intents, nil, nil, nil,
			func(j, i int, tx *core.Txn[K, V, A]) {
				if marks[j] < 0 {
					marks[j] = len(e.buf)
				} else {
					e.buf = e.buf[:marks[j]]
				}
				encodeIntents(e, tx, t.intents[i])
			})
	}
	g, _ := install()
	var err error
	if g != 0 {
		err = m.wal.log.Append(g, e.buf)
	}
	unlock()
	if err != nil || g == 0 {
		return err
	}
	return m.wal.log.Commit()
}

// UpdateAtomicKeys runs an atomic cross-shard transaction whose key
// footprint is declared up front, as a full optimistic-concurrency
// transaction in the classic lock-write-set / validate-read-set / install
// shape: reads inside f (Txn.Get) are sampled against per-key version
// stripes; at install time the write set's stripes are install-locked
// FIRST, then — after the touched shards' install seqlocks go odd — every
// sampled stripe is revalidated; on any mismatch nothing is installed and
// the whole transaction retries (f runs again against the new state).  The
// locks are held until the last shard's root is published, and unfenced
// writers' commit brackets stall on them (core/keyver.go), so no point
// write can land on the write set between validation and publication — the
// window in which an absolute install would silently erase it.  A
// committed transaction is therefore a true multi-key compare-and-swap,
// serializable against ALL writers: other atomic transactions and the
// batch combiners are excluded by the writer slots (held while f runs, so
// they cannot move the read set at all), unfenced point writers on the
// read set are caught by validation and on the write set are held off by
// the locks, and two concurrent OCC transactions reading each other's
// write sets cannot both commit (lock-before-validate means one observes
// the other's lock and aborts — no write skew).  f may run several times
// and must be a pure function of its reads; it may READ any key on any
// shard (all reads are validated), but may WRITE only keys whose shards
// are covered by the declared footprint — a write outside it panics before
// anything is installed.
//
// Progress is optimistic: each abort implies a conflicting point write
// committed on a read key's stripe, so the system as a whole advances, but
// a transaction hammered by unfenced writers on its own read set retries
// unboundedly (OCCAborts counts these).  The writer slots are released and
// reacquired between attempts, with escalating bounded backoff, so an
// abort storm never starves the footprint shards' combiners or other
// atomic transactions.  Two waits are worth knowing about: an unfenced
// point write whose key shares a stripe with the write set stalls for the
// install window (bounded: validation plus the per-shard Sets, no user
// code), and a read colliding with a wholesale stripe bracket — a SetRoot
// or table-scale batch commit on the read shard marks every stripe — waits
// for that commit's Set.
func (m *Map[K, V, A]) UpdateAtomicKeys(keys []K, f func(t *Txn[K, V, A])) error {
	if !m.enter(0) {
		return ErrClosed
	}
	defer m.exit(0)
	inFootprint := make([]bool, len(m.shards))
	touched := make([]int, 0, len(keys))
	for _, k := range keys {
		if i := m.ShardFor(k); !inFootprint[i] {
			inFootprint[i] = true
			touched = append(touched, i)
		}
	}
	sort.Ints(touched)
	// One Txn, write-stripe list set and handle buffer serve every
	// attempt: an abort storm (sustained unfenced writes on the read set)
	// retries with the buffers reset in place, so a retry's allocations
	// are only the install path's short-lived closures and whatever f
	// itself does.
	t := &Txn[K, V, A]{m: m, intents: make([][]intent[K, V], len(m.shards)), occ: true}
	wstripes := make([][]uint64, len(m.shards))
	hbuf := make([]*core.Handle[K, V, A], len(m.shards))
	var e *walEnc[K, V]
	var marks []int
	if m.wal != nil {
		e = m.wal.getEnc()
		defer m.wal.putEnc(e)
		marks = make([]int, len(touched))
	}
	for attempt := 0; ; attempt++ {
		if m.wal != nil {
			if err := m.wal.log.Err(); err != nil {
				return err
			}
		}
		committed, err := m.atomicKeysAttempt(touched, inFootprint, t, wstripes, hbuf, f, e, marks)
		if committed || err != nil {
			return err
		}
		m.occAborts.Add(1)
		core.Backoff(attempt)
	}
}

// atomicKeysAttempt runs one lock-validate-install attempt of an
// UpdateAtomicKeys transaction and reports whether it committed.  The
// footprint shards' writer slots are held only for the attempt's duration
// — released before the caller's backoff — so fenced writers on those
// shards make progress between aborts.  With a WAL (e non-nil) the
// footprint shards' walMu bracket the attempt: logged point writers on
// those shards are held off from first read to Append, so a committed
// attempt's record lands in per-shard commit order.
func (m *Map[K, V, A]) atomicKeysAttempt(touched []int, inFootprint []bool, t *Txn[K, V, A], wstripes [][]uint64, hbuf []*core.Handle[K, V, A], f func(t *Txn[K, V, A]), e *walEnc[K, V], marks []int) (bool, error) {
	walHeld := false
	if e != nil {
		m.lockWALMus(touched)
		walHeld = true
	}
	unlockWAL := func() {
		if walHeld {
			walHeld = false
			m.unlockWALMus(touched)
		}
	}
	defer unlockWAL()
	core.LockWriterSlots(m.shards, touched)
	defer core.UnlockWriterSlots(m.shards, touched)
	for i := range t.intents {
		t.intents[i] = t.intents[i][:0]
	}
	t.reads = t.reads[:0]
	f(t)
	for i, list := range t.intents {
		if len(list) > 0 && !inFootprint[i] {
			panic(fmt.Sprintf("shard: UpdateAtomicKeys wrote shard %d outside the declared key footprint", i))
		}
	}
	// The write set's stripes, per shard.  Stale entries from a previous
	// attempt must not survive: validateReads masks the lock bit exactly on
	// the stripes listed here, and masking a stripe we did not lock this
	// attempt would validate a read another transaction's install is about
	// to overwrite.
	for i := range wstripes {
		wstripes[i] = wstripes[i][:0]
	}
	write := t.touched()
	for _, i := range write {
		for _, in := range t.intents[i] {
			wstripes[i] = append(wstripes[i], m.shards[i].KeyStripe(in.key))
		}
	}
	validate := func() bool {
		if !m.validateReads(t.reads, wstripes) {
			return false
		}
		if hook := m.testPostValidate; hook != nil {
			hook()
		}
		return true
	}
	var onReplay func(j, i int, tx *core.Txn[K, V, A])
	if e != nil {
		e.buf = e.buf[:0]
		for j := range write {
			marks[j] = -1
		}
		onReplay = func(j, i int, tx *core.Txn[K, V, A]) {
			// Per-shard installs retry on conflict; truncate back to this
			// shard's mark so a re-run never duplicates its ops.
			if marks[j] < 0 {
				marks[j] = len(e.buf)
			} else {
				e.buf = e.buf[:marks[j]]
			}
			encodeIntents(e, tx, t.intents[i])
		}
	}
	g, ok := m.installLocked(write, t.intents, wstripes, hbuf, validate, onReplay)
	if e == nil || !ok {
		return ok, nil
	}
	var err error
	if g != 0 {
		err = m.wal.log.Append(g, e.buf)
	}
	unlockWAL()
	if err != nil || g == 0 {
		// Committed in memory either way; a non-nil err reports the log is
		// poisoned (sticky), so the caller sees the durability failure.
		return true, err
	}
	return true, m.wal.log.Commit()
}

// OCCAborts reports how many UpdateAtomicKeys attempts were aborted by
// install-time read validation (each implies an unfenced point writer
// committed on the transaction's read set) since the map was created.
func (m *Map[K, V, A]) OCCAborts() int64 { return m.occAborts.Load() }

// installLocked is the install phase shared by UpdateAtomic and
// UpdateAtomicKeys: with the touched shards' writer slots held, it leases
// one handle per touched shard, install-locks the write set's stripes
// (wstripes, nil for UpdateAtomic — it validates nothing, so blind
// last-writer-wins races with point writers are its documented semantics
// and need no locks), and runs core.InstallAtomicValidated, which brackets
// the per-shard installs with the seqlocks, runs the validation gate while
// they are odd, and on success publishes one freshly allocated GSN on
// every touched shard.  It reports whether the transaction installed; the
// stripe locks are released on every exit, aborts and panics included.
//
// Ordering matters twice here.  The handles are leased BEFORE the stripes
// are locked: a point writer stalled on an install lock sits inside its
// transaction holding a pid, so leasing afterwards could find the pools
// drained by the very writers waiting on us — a deadlock.  Leasing first
// is safe because no stripe of these shards can be locked by anyone else
// (locking requires the writer slots we hold), so the pools churn.  And
// the stripes are locked BEFORE validation runs (inside
// InstallAtomicValidated), which is what makes validate-then-install
// atomic against unfenced writers; see core.InstallAtomicValidated.
// onReplay, when non-nil, runs inside each touched shard's install
// transaction after its intents are replayed (j indexes touched, i is the
// shard); the WAL paths use it to encode the shard's post-images from
// inside the very transaction that commits them.  installLocked returns
// the transaction's GSN (0 when nothing installed) and whether it
// committed.
func (m *Map[K, V, A]) installLocked(touched []int, intents [][]intent[K, V], wstripes [][]uint64, hbuf []*core.Handle[K, V, A], validate func() bool, onReplay func(j, i int, tx *core.Txn[K, V, A])) (uint64, bool) {
	var gsn uint64
	ok := false
	// hbuf lets UpdateAtomicKeys amortize the lease slots across retry
	// attempts; one-shot callers (UpdateAtomic) pass nil.
	handles := hbuf
	if handles == nil {
		handles = make([]*core.Handle[K, V, A], len(touched))
	}
	var rec func(j int)
	rec = func(j int) {
		if j < len(touched) {
			m.shards[touched[j]].WithCached(func(h *core.Handle[K, V, A]) {
				handles[j] = h
				rec(j + 1)
			})
			return
		}
		if wstripes != nil {
			for _, i := range touched {
				m.shards[i].LockStripes(wstripes[i])
			}
			defer func() {
				for _, i := range touched {
					m.shards[i].UnlockStripes(wstripes[i])
				}
			}()
		}
		gsn, ok = core.InstallAtomicValidated(m.shards, touched, validate, func() {
			for j, i := range touched {
				j, i := j, i
				list := intents[i]
				handles[j].UpdateUnstamped(func(tx *core.Txn[K, V, A]) {
					// The replay writes exactly the stripes this install
					// locked (when it locked any); without the declaration
					// its commit bracket would stall on our own locks.
					tx.HoldsStripeLocks()
					replay(tx, list)
					if onReplay != nil {
						onReplay(j, i, tx)
					}
				})
			}
		})
	}
	rec(0)
	return gsn, ok
}

// StartBatching launches one Appendix-F combining writer per shard: each
// leases its own writer identity from its shard's pool and commits that
// shard's submissions as atomic batches.  cfg.Clients buffers are created
// on every shard, so any client id in 0..Clients-1 may submit keys bound
// for any shard.
func (m *Map[K, V, A]) StartBatching(cfg batch.Config, comb func(old, new V) V) {
	if m.batchers != nil {
		panic("shard: StartBatching called twice")
	}
	if !m.enter(0) {
		return
	}
	defer m.exit(0)
	m.batchers = make([]*batch.Batcher[K, V, A], len(m.shards))
	for i, s := range m.shards {
		b := batch.New(s, cfg, comb)
		if m.wal != nil {
			b.SetPersist(m.walPersist(i, comb != nil))
		}
		m.batchers[i] = b
		b.Start()
	}
}

// Submit routes a buffered update to its key's shard batcher.  Requires
// StartBatching.  After Close the request is dropped.
func (m *Map[K, V, A]) Submit(client int, r batch.Request[K, V]) {
	i := m.ShardFor(r.Key)
	if !m.enter(i) {
		return
	}
	defer m.exit(i)
	m.batchers[i].Submit(client, r)
}

// SubmitWait routes a buffered update and blocks until its shard's
// combiner has committed it.  After Close it returns immediately (the
// request is dropped).
func (m *Map[K, V, A]) SubmitWait(client int, r batch.Request[K, V]) {
	i := m.ShardFor(r.Key)
	if !m.enter(i) {
		return
	}
	defer m.exit(i)
	m.batchers[i].SubmitWait(client, r)
}

// SubmitAsync routes a buffered update and returns immediately; done runs
// exactly once on the owning shard's combiner goroutine after the commit
// containing the request has been resolved (see batch.Batcher.SubmitAsync
// for the callback contract: fast, non-blocking).  A nil error means the
// write committed — and, with a WAL attached, is durable per the log's
// fsync policy; ErrClosed (delivered synchronously when the map is
// closing) or a log error means it did not.  This is how a pipelined
// connection keeps many writes in flight without parking a goroutine per
// write.
func (m *Map[K, V, A]) SubmitAsync(client int, r batch.Request[K, V], done func(error)) {
	i := m.ShardFor(r.Key)
	if !m.enter(i) {
		if done != nil {
			done(ErrClosed)
		}
		return
	}
	defer m.exit(i)
	m.batchers[i].SubmitAsync(client, r, done)
}

// Flush blocks until everything the client submitted (on any shard) before
// the call has committed.  After Close it returns immediately.
func (m *Map[K, V, A]) Flush(client int) {
	if !m.enter(0) {
		return
	}
	defer m.exit(0)
	for _, b := range m.batchers {
		b.Flush(client)
	}
}

// StopBatching stops every shard's combiner after a final drain.  It is
// idempotent; Close calls it internally.
func (m *Map[K, V, A]) StopBatching() {
	if !m.enter(0) {
		return
	}
	defer m.exit(0)
	m.stopBatching()
}

func (m *Map[K, V, A]) stopBatching() {
	for _, b := range m.batchers {
		b.Stop()
	}
	m.batchers = nil
}

// Batches sums committed batch counts across shard combiners.
func (m *Map[K, V, A]) Batches() int64 {
	var n int64
	for _, b := range m.batchers {
		n += b.Batches()
	}
	return n
}

// Applied sums combiner-committed requests across shard combiners.
// Batches()/Applied() is the write-coalescing ratio: commits per submitted
// write, the number the network layer drives toward O(shards)/N.
func (m *Map[K, V, A]) Applied() int64 {
	var n int64
	for _, b := range m.batchers {
		n += b.Applied()
	}
	return n
}

// Commits sums committed write transactions across shards.
func (m *Map[K, V, A]) Commits() int64 {
	var n int64
	for _, s := range m.shards {
		n += s.Commits()
	}
	return n
}

// Aborts sums Set failures across shards.
func (m *Map[K, V, A]) Aborts() int64 {
	var n int64
	for _, s := range m.shards {
		n += s.Aborts()
	}
	return n
}

// Uncollected sums the retained version counts across shards; each shard
// individually respects its algorithm's bound (e.g. 2P+1 for PSWF).
func (m *Map[K, V, A]) Uncollected() int {
	var n int
	for _, s := range m.shards {
		n += s.Uncollected()
	}
	return n
}

// Live sums allocated-minus-freed nodes across shard allocators; zero
// after Close when no nodes leaked anywhere.
func (m *Map[K, V, A]) Live() int64 {
	var n int64
	for _, s := range m.shards {
		n += s.Ops().Live()
	}
	return n
}

// Close stops any batchers, closes the WAL (flushing and syncing its tail
// whatever the fsync policy, so everything acked — and everything
// committed — is on disk) and drains every shard.  It is idempotent and
// safe against concurrent operations: the first caller flips the closing
// flag, waits for every in-flight front-door operation to drain its gate,
// then tears down; operations arriving after the flip fail fast with
// ErrClosed (writes) or act as no-ops (reads); later Close calls block
// until the first finishes and return nil.  After Close, Live() reports
// leaked nodes across all shards.  The returned error is the WAL's close
// error, if any.
func (m *Map[K, V, A]) Close() error {
	if !m.closing.CompareAndSwap(false, true) {
		<-m.closedCh
		return nil
	}
	// Drain: every front-door method increments its gate before loading
	// closing, so once all gates read zero nothing is left inside and
	// nothing new can enter.
	for i := range m.gates {
		for m.gates[i].n.Load() != 0 {
			runtime.Gosched()
		}
	}
	if m.batchers != nil {
		m.stopBatching()
	}
	var err error
	if m.wal != nil {
		err = m.wal.log.Close()
	}
	for _, s := range m.shards {
		s.Close()
	}
	close(m.closedCh)
	return err
}

package shard

import (
	"mvgc/internal/ftree"
)

// Cross-shard ordered iteration: a loser-tree S-way merge over pooled
// per-shard iterators.
//
// Hash partitioning scatters adjacent keys across shards, so every ordered
// scan is an S-way merge of the per-shard in-order streams.  The merge
// here is a tournament (loser) tree: internal node j holds the losing
// iterator of the match played there, tree[0] holds the overall winner,
// and advancing the winner replays only its own leaf-to-root path —
// O(log S) comparisons per element instead of the linear best-pick's O(S).
// Ties are impossible across iterators (a key hashes to exactly one
// shard), but the comparison still breaks them by index so the merge is
// deterministic on any input.
//
// The state — S reusable iterators (ftree.Iter, whose Reset/SeekGE keep
// their descent stacks) plus the tournament array — is pooled per Map:
// each scan leases a scanState, re-seeks the parked iterators against the
// Snap's pinned roots, and returns it when done.  After the pool and the
// iterator stacks have warmed up, a fixed-length scan performs no heap
// allocation at all, which BenchmarkScanWarm and the allocbench scan cell
// hold as a checked number.  A scanState is single-owner while leased,
// exactly like the arenas; the pool hands it to one scan at a time.
type scanState[K, V, A any] struct {
	cmp  func(a, b K) int
	its  []ftree.Iter[K, V, A]
	tree []int // tree[0] = winner; tree[1..S-1] = per-match losers
}

// getScan leases a scan slot from the map's pool (allocating one the
// first few times, until the pool warms up).
func (m *Map[K, V, A]) getScan() *scanState[K, V, A] {
	if st, ok := m.scans.Get().(*scanState[K, V, A]); ok {
		return st
	}
	return &scanState[K, V, A]{}
}

// putScan parks a scan slot for reuse; the iterators keep their grown
// descent stacks, which is what makes the next scan allocation-free.
func (m *Map[K, V, A]) putScan(st *scanState[K, V, A]) { m.scans.Put(st) }

// prepare sizes the state for s's shard count and binds each iterator to
// its shard's Ops family.  Growth happens at most once per pool entry per
// shard count; warm calls only reslice.
func (st *scanState[K, V, A]) prepare(s Snap[K, V, A]) {
	k := len(s.snaps)
	st.cmp = s.m.shards[0].Ops().Cmp
	if cap(st.its) < k {
		st.its = make([]ftree.Iter[K, V, A], k)
		st.tree = make([]int, k)
	}
	st.its = st.its[:k]
	st.tree = st.tree[:k]
	for i := range st.its {
		st.its[i].Bind(s.m.shards[i].Ops())
	}
}

// seekMin positions every iterator at its shard's smallest entry and
// builds the tournament.
func (st *scanState[K, V, A]) seekMin(s Snap[K, V, A]) {
	st.prepare(s)
	for i := range st.its {
		st.its[i].Reset(s.snaps[i].Root())
	}
	st.tree[0] = st.buildNode(1)
}

// seekGE positions every iterator at its shard's smallest entry with
// key ≥ lo and builds the tournament.
func (st *scanState[K, V, A]) seekGE(s Snap[K, V, A], lo K) {
	st.prepare(s)
	for i := range st.its {
		st.its[i].SeekGE(s.snaps[i].Root(), lo)
	}
	st.tree[0] = st.buildNode(1)
}

// buildNode plays the initial tournament below internal node j, storing
// each match's loser at its node and returning the winner.  Iterator i's
// (virtual) leaf is node S+i; node j's children are 2j and 2j+1.  A plain
// method rather than a closure so building allocates nothing.
func (st *scanState[K, V, A]) buildNode(j int) int {
	if j >= len(st.its) {
		return j - len(st.its)
	}
	a := st.buildNode(2 * j)
	b := st.buildNode(2*j + 1)
	if st.beats(b, a) {
		a, b = b, a
	}
	st.tree[j] = b
	return a
}

// beats reports whether iterator a's pending entry orders before
// iterator b's.  An exhausted iterator loses to everything (and to
// another exhausted iterator by index), so the merge needs no sentinel
// keys.
func (st *scanState[K, V, A]) beats(a, b int) bool {
	ia, ib := &st.its[a], &st.its[b]
	if !ia.Valid() {
		return !ib.Valid() && a < b
	}
	if !ib.Valid() {
		return true
	}
	c := st.cmp(ia.Key(), ib.Key())
	return c < 0 || (c == 0 && a < b)
}

// winner returns the iterator index holding the globally smallest pending
// entry, or -1 when every stream is exhausted.
func (st *scanState[K, V, A]) winner() int {
	w := st.tree[0]
	if !st.its[w].Valid() {
		return -1
	}
	return w
}

// step advances the current winner's iterator and replays its leaf-to-root
// path: each internal node on the path re-plays its match against the
// stored loser, so the tournament is restored in O(log S) comparisons.
func (st *scanState[K, V, A]) step() {
	w := st.tree[0]
	st.its[w].Next()
	for j := (len(st.its) + w) / 2; j >= 1; j /= 2 {
		if st.beats(st.tree[j], w) {
			st.tree[j], w = w, st.tree[j]
		}
	}
	st.tree[0] = w
}

// ForEach visits every entry across all shards in global key order: a
// loser-tree S-way merge over the per-shard in-order iterators, O(log S)
// comparisons per element.
func (s Snap[K, V, A]) ForEach(f func(K, V)) {
	st := s.m.getScan()
	defer s.m.putScan(st)
	st.seekMin(s)
	for w := st.winner(); w >= 0; w = st.winner() {
		f(st.its[w].Key(), st.its[w].Val())
		st.step()
	}
}

// ForEachCond visits every entry across all shards in global key order
// until f returns false; it reports whether the walk ran to completion.
// Like RangeFunc it streams — nothing is materialized and the merge stops
// the moment f says so.
func (s Snap[K, V, A]) ForEachCond(f func(K, V) bool) bool {
	st := s.m.getScan()
	defer s.m.putScan(st)
	st.seekMin(s)
	for w := st.winner(); w >= 0; w = st.winner() {
		if !f(st.its[w].Key(), st.its[w].Val()) {
			return false
		}
		st.step()
	}
	return true
}

// RangeFunc streams the entries with keys in [lo, hi] across all shards
// in global key order, stopping early when f returns false; it reports
// whether the walk ran to completion.  On a Snap from ViewConsistent the
// streamed prefix reflects one global commit cut (see Snap.GSNs); on a
// plain View snap it carries per-shard semantics only.
func (s Snap[K, V, A]) RangeFunc(lo, hi K, f func(K, V) bool) bool {
	st := s.m.getScan()
	defer s.m.putScan(st)
	st.seekGE(s, lo)
	for w := st.winner(); w >= 0; w = st.winner() {
		k, v := st.its[w].Key(), st.its[w].Val()
		if st.cmp(k, hi) > 0 {
			return true
		}
		if !f(k, v) {
			return false
		}
		st.step()
	}
	return true
}

// ScanFunc streams up to n entries with keys ≥ lo in global key order,
// stopping early if f returns false, and returns the number visited —
// the YCSB short-scan access path.
func (s Snap[K, V, A]) ScanFunc(lo K, n int, f func(K, V) bool) int {
	st := s.m.getScan()
	defer s.m.putScan(st)
	st.seekGE(s, lo)
	got := 0
	for w := st.winner(); w >= 0 && got < n; w = st.winner() {
		got++
		if !f(st.its[w].Key(), st.its[w].Val()) {
			break
		}
		st.step()
	}
	return got
}

// ScanAppend appends up to n entries with keys ≥ lo, in global key order,
// to dst and returns the extended slice.  When dst has capacity for the
// result, a warm call allocates nothing — this is the zero-alloc
// fixed-length scan path the allocation gate measures.
func (s Snap[K, V, A]) ScanAppend(dst []ftree.Entry[K, V], lo K, n int) []ftree.Entry[K, V] {
	st := s.m.getScan()
	defer s.m.putScan(st)
	st.seekGE(s, lo)
	for w := st.winner(); w >= 0 && n > 0; w = st.winner() {
		dst = append(dst, ftree.Entry[K, V]{Key: st.its[w].Key(), Val: st.its[w].Val()})
		n--
		st.step()
	}
	return dst
}

// Scan returns up to n entries with keys ≥ lo in global key order.  Use
// ScanAppend to reuse a result buffer across scans, or ScanFunc/RangeFunc
// to stream without materializing at all.
func (s Snap[K, V, A]) Scan(lo K, n int) []ftree.Entry[K, V] {
	return s.ScanAppend(nil, lo, n)
}

// ForEachChunked visits every entry in global key order like
// Snap.ForEachCond, but with bounded staleness instead of one frozen
// snapshot: every n entries the walk drops its pin and re-seeks at the
// last visited key against a freshly pinned per-shard View (the pooled
// seekGE restart — allocation-free once warm).  An analytics-length walk
// therefore never stretches any shard's uncollected-version window beyond
// one chunk.  The price is snapshot semantics: each key is visited at most
// once and keys stream in strictly increasing order, but entries ahead of
// the walk observe commits that land between chunks, and entries behind it
// are never revisited.  It reports whether the walk ran to completion
// (false when f stopped it or the map closed mid-walk).  n <= 0 degrades
// to ForEachCond under a single pin.
//
// This lives on Map, not Snap, by construction: a Snap is only valid
// inside the View callback that pinned it, so a walk that releases and
// re-acquires pins has to own the pinning itself.
func (m *Map[K, V, A]) ForEachChunked(n int, f func(K, V) bool) bool {
	return m.forEachChunked(n, f, m.View)
}

// ForEachChunkedConsistent is ForEachChunked with every chunk pinned by
// ViewConsistent: each chunk reflects one global commit cut — a fresh cut
// per chunk, so the walk as a whole is bounded-stale, not atomic.
func (m *Map[K, V, A]) ForEachChunkedConsistent(n int, f func(K, V) bool) bool {
	return m.forEachChunked(n, f, m.ViewConsistent)
}

func (m *Map[K, V, A]) forEachChunked(n int, f func(K, V) bool, view func(func(Snap[K, V, A]))) bool {
	if n <= 0 {
		done, entered := false, false
		view(func(s Snap[K, V, A]) {
			entered = true
			done = s.ForEachCond(f)
		})
		return done && entered
	}
	var (
		last    K
		first   = true
		stopped = false
	)
	for {
		entered, full := false, false
		view(func(s Snap[K, V, A]) {
			entered = true
			st := m.getScan()
			defer m.putScan(st)
			if first {
				st.seekMin(s)
			} else {
				st.seekGE(s, last)
				// The anchor key itself was visited by the previous
				// chunk (unless it was deleted in between).
				if w := st.winner(); w >= 0 && st.cmp(st.its[w].Key(), last) == 0 {
					st.step()
				}
			}
			count := 0
			for w := st.winner(); w >= 0; w = st.winner() {
				k, v := st.its[w].Key(), st.its[w].Val()
				if !f(k, v) {
					stopped = true
					return
				}
				last, first = k, false
				if count++; count == n {
					full = true
					return
				}
				st.step()
			}
		})
		if !entered || stopped {
			return false
		}
		if !full {
			return true
		}
	}
}

package mvgc_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mvgc"
	"mvgc/internal/batch"
	"mvgc/internal/wal"
)

// openWALDB opens a small sharded DB logging to "wal" on the given
// filesystem with the default fsync policy (always: acked == durable).
func openWALDB(fs wal.FS) (*mvgc.DB[uint64, uint64, struct{}], error) {
	return mvgc.OpenPlainDB[uint64, uint64](mvgc.DBOptions[uint64]{
		Shards: 4, Procs: 4,
		WAL: &mvgc.WALOptions{Dir: "wal", FS: fs, SegmentBytes: 1 << 12},
	}, nil)
}

func dumpDB(db *mvgc.DB[uint64, uint64, struct{}]) map[uint64]uint64 {
	got := map[uint64]uint64{}
	db.View(func(s mvgc.DBSnapshot[uint64, uint64, struct{}]) {
		s.ForEach(func(k, v uint64) { got[k] = v })
	})
	return got
}

// walEffect is one key's outcome of a script step: an insert of val, or a
// delete.
type walEffect struct {
	k, v uint64
	del  bool
}

// walStep is one deterministic write against the DB plus its declared
// effects, used by the crash matrix to model what recovery may legally
// observe.  atomic marks steps whose effects commit under one WAL record
// (one GSN): recovery must see all of them or none.
type walStep struct {
	name   string
	atomic bool
	run    func(db *mvgc.DB[uint64, uint64, struct{}]) error
	eff    []walEffect
}

// walScript is a fixed sequence exercising every synchronous write path.
// Every value in the script is distinct so "which write does this key
// reflect" is never ambiguous.
func walScript() []walStep {
	type DB = mvgc.DB[uint64, uint64, struct{}]
	type Txn = mvgc.DBTxn[uint64, uint64, struct{}]
	return []walStep{
		{name: "insert-1", run: func(db *DB) error { return db.Insert(1, 10) },
			eff: []walEffect{{k: 1, v: 10}}},
		{name: "insert-2", run: func(db *DB) error { return db.Insert(2, 20) },
			eff: []walEffect{{k: 2, v: 20}}},
		{name: "insertwith-1", run: func(db *DB) error {
			return db.InsertWith(1, 5, func(old, new uint64) uint64 { return old + new })
		}, eff: []walEffect{{k: 1, v: 15}}},
		{name: "update-3-4", run: func(db *DB) error {
			return db.Update(func(t *Txn) { t.Insert(3, 30); t.Insert(4, 40) })
		}, eff: []walEffect{{k: 3, v: 30}, {k: 4, v: 40}}},
		{name: "atomic-5-6", atomic: true, run: func(db *DB) error {
			return db.UpdateAtomic(func(t *Txn) { t.Insert(5, 50); t.Insert(6, 60) })
		}, eff: []walEffect{{k: 5, v: 50}, {k: 6, v: 60}}},
		{name: "atomickeys-7-8", atomic: true, run: func(db *DB) error {
			return db.UpdateAtomicKeys([]uint64{7, 8}, func(t *Txn) {
				v, _ := t.Get(1)
				t.Insert(7, v+55) // 15+55 = 70
				t.Insert(8, 80)
			})
		}, eff: []walEffect{{k: 7, v: 70}, {k: 8, v: 80}}},
		{name: "delete-2", run: func(db *DB) error { return db.Delete(2) },
			eff: []walEffect{{k: 2, del: true}}},
		{name: "insertbatch-9-10", run: func(db *DB) error {
			return db.InsertBatch([]mvgc.Entry[uint64, uint64]{{Key: 9, Val: 90}, {Key: 10, Val: 100}}, nil)
		}, eff: []walEffect{{k: 9, v: 90}, {k: 10, v: 100}}},
		{name: "checkpoint", run: func(db *DB) error { return db.Checkpoint() }},
		{name: "insert-11", run: func(db *DB) error { return db.Insert(11, 110) },
			eff: []walEffect{{k: 11, v: 110}}},
		{name: "atomic-5-9", atomic: true, run: func(db *DB) error {
			return db.UpdateAtomic(func(t *Txn) { t.Insert(5, 51); t.Insert(9, 91) })
		}, eff: []walEffect{{k: 5, v: 51}, {k: 9, v: 91}}},
		{name: "deletebatch-10", run: func(db *DB) error { return db.DeleteBatch([]uint64{10}) },
			eff: []walEffect{{k: 10, del: true}}},
		{name: "update-12", run: func(db *DB) error {
			return db.Update(func(t *Txn) { t.Insert(12, 120) })
		}, eff: []walEffect{{k: 12, v: 120}}},
		{name: "insert-13", run: func(db *DB) error { return db.Insert(13, 130) },
			eff: []walEffect{{k: 13, v: 130}}},
	}
}

// verifyRecovered checks a recovered image against the script model:
// every acked step's effects must be present exactly; the single in-flight
// step (if any) may be present or absent per key — or all-or-nothing when
// it was atomic; nothing else may exist.
func verifyRecovered(t *testing.T, tag string, steps []walStep, acked, failed int, got map[uint64]uint64) {
	t.Helper()
	expected := map[uint64]uint64{}
	for i := 0; i <= acked; i++ {
		for _, ef := range steps[i].eff {
			if ef.del {
				delete(expected, ef.k)
			} else {
				expected[ef.k] = ef.v
			}
		}
	}
	inflight := map[uint64]walEffect{}
	if failed >= 0 {
		for _, ef := range steps[failed].eff {
			inflight[ef.k] = ef
		}
	}
	for k, want := range expected {
		g, ok := got[k]
		if ef, touched := inflight[k]; touched {
			switch {
			case ef.del && ok && g != want:
				t.Errorf("%s: key %d = %d, want %d (old) or gone (in-flight delete)", tag, k, g, want)
			case !ef.del && !ok:
				t.Errorf("%s: acked key %d lost (in-flight overwrite may not erase it)", tag, k)
			case !ef.del && g != want && g != ef.v:
				t.Errorf("%s: key %d = %d, want %d (old) or %d (in-flight)", tag, k, g, want, ef.v)
			}
			continue
		}
		if !ok {
			t.Errorf("%s: acked key %d lost", tag, k)
		} else if g != want {
			t.Errorf("%s: key %d = %d, want %d", tag, k, g, want)
		}
	}
	for k, g := range got {
		if _, ok := expected[k]; ok {
			continue
		}
		ef, touched := inflight[k]
		if !touched || ef.del || g != ef.v {
			t.Errorf("%s: unexpected key %d = %d", tag, k, g)
		}
	}
	if failed >= 0 && steps[failed].atomic {
		applied, missing := 0, 0
		for _, ef := range steps[failed].eff {
			if got[ef.k] == ef.v {
				applied++
			} else {
				missing++
			}
		}
		if applied > 0 && missing > 0 {
			t.Errorf("%s: atomic step %s recovered torn: %d of %d effects applied",
				tag, steps[failed].name, applied, applied+missing)
		}
	}
}

// TestDBWALCrashMatrix is the recovery acceptance matrix: the fixed write
// script runs against a power-cut filesystem that crashes at every single
// filesystem operation index in turn (crossed with torn-tail variants),
// and after each crash the reopened DB must contain every acked write and
// no torn garbage.
func TestDBWALCrashMatrix(t *testing.T) {
	steps := walScript()

	// Probe run: count filesystem operations in a full clean run so the
	// matrix covers every crash point, including open and close.
	probe := wal.NewFaultFS(wal.NewMemFS())
	db, err := openWALDB(probe)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range steps {
		if err := st.run(db); err != nil {
			t.Fatalf("probe %s: %v", st.name, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < len(steps) {
		t.Fatalf("probe counted only %d fs ops", total)
	}

	for _, torn := range []int{0, 7} {
		for opIdx := 1; opIdx <= total; opIdx++ {
			tag := fmt.Sprintf("crash@%d/torn=%d", opIdx, torn)
			mem := wal.NewMemFS()
			ffs := wal.NewFaultFS(mem)
			ffs.SetTorn(torn)
			ffs.Script(opIdx, wal.FaultCrash)

			acked, failed := -1, -1
			db, err := openWALDB(ffs)
			if err == nil {
				for i, st := range steps {
					if e := st.run(db); e != nil {
						failed = i
						break
					}
					acked = i
				}
				if !ffs.Crashed() {
					// The scripted op index lands inside Close (or past
					// the run entirely): close cleanly, then verify the
					// full image below.
					db.Close()
				}
			}

			rdb, rerr := openWALDB(mem)
			if rerr != nil {
				t.Fatalf("%s: recovery open: %v", tag, rerr)
			}
			verifyRecovered(t, tag, steps, acked, failed, dumpDB(rdb))
			if err := rdb.Close(); err != nil {
				t.Fatalf("%s: recovery close: %v", tag, err)
			}
		}
	}
}

// TestDBWALBatchCrash covers the group-commit path: acked combiner writes
// survive a power cut with no clean shutdown.
func TestDBWALBatchCrash(t *testing.T) {
	mem := wal.NewMemFS()
	db, err := openWALDB(mem)
	if err != nil {
		t.Fatal(err)
	}
	db.StartBatching(batch.Config{Clients: 2, MaxBatch: 64}, nil)
	const n = 200
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		k, v := uint64(i), uint64(i*10+1)
		idx := i
		db.SubmitAsync(i%2, batch.Request[uint64, uint64]{Op: batch.OpInsert, Key: k, Val: v}, func(err error) {
			errs[idx] = err
			wg.Done()
		})
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	mem.Crash(0) // power cut: no StopBatching, no Close

	rdb, err := openWALDB(mem)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	got := dumpDB(rdb)
	for i := 0; i < n; i++ {
		if got[uint64(i)] != uint64(i*10+1) {
			t.Fatalf("acked batched write %d lost after crash: got %d", i, got[uint64(i)])
		}
	}
}

// TestDBWALDiskRoundTrip exercises the default on-disk filesystem end to
// end: open with initial contents (checkpointed immediately), write, close,
// reopen — and confirm the log, not the caller's initial entries, is the
// source of truth on reopen.
func TestDBWALDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	open := func(initial []mvgc.Entry[uint64, uint64]) *mvgc.DB[uint64, uint64, struct{}] {
		t.Helper()
		db, err := mvgc.OpenPlainDB[uint64, uint64](mvgc.DBOptions[uint64]{
			Shards: 2, WAL: &mvgc.WALOptions{Dir: dir},
		}, initial)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	db := open([]mvgc.Entry[uint64, uint64]{{Key: 1, Val: 100}})
	if err := db.Insert(2, 200); err != nil {
		t.Fatal(err)
	}
	if err := db.UpdateAtomic(func(t *mvgc.DBTxn[uint64, uint64, struct{}]) {
		t.Insert(3, 300)
		t.Delete(1)
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// A different initial on reopen must be ignored: the log wins.
	db2 := open([]mvgc.Entry[uint64, uint64]{{Key: 99, Val: 9900}})
	defer db2.Close()
	want := map[uint64]uint64{2: 200, 3: 300}
	got := dumpDB(db2)
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("recovered %v, want %v", got, want)
		}
	}
}

// TestDBWALFullFailsFast: when the log hits its size bound, writes fail
// with ErrWALFull instead of wedging, committed state stays readable, and
// a checkpoint retires segments and un-wedges the log.
func TestDBWALFullFailsFast(t *testing.T) {
	mem := wal.NewMemFS()
	db, err := mvgc.OpenPlainDB[uint64, uint64](mvgc.DBOptions[uint64]{
		Shards: 2, Procs: 4,
		WAL: &mvgc.WALOptions{
			Dir: "wal", FS: mem,
			SegmentBytes: 256, MaxBytes: 1024,
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var full error
	var n uint64
	for i := uint64(0); i < 10_000; i++ {
		if err := db.Insert(i, i); err != nil {
			full, n = err, i
			break
		}
	}
	if !errors.Is(full, wal.ErrWALFull) {
		t.Fatalf("expected ErrWALFull, got %v", full)
	}
	// Apply-then-log: the refused insert is committed in memory (only its
	// durability failed), so the map holds n acked entries plus that one.
	if got := db.Len(); got != int64(n)+1 {
		t.Fatalf("Len = %d after %d acked inserts + 1 refused", got, n)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after full: %v", err)
	}
	if err := db.Insert(77_000, 1); err != nil {
		t.Fatalf("insert after checkpoint should succeed: %v", err)
	}
}

// TestDBCloseIdempotent races concurrent Close calls against writers at
// the DB level (satellite of the shard-level test): exactly one Close wins,
// every call returns, and post-close writes report ErrClosed.
func TestDBCloseIdempotent(t *testing.T) {
	mem := wal.NewMemFS()
	db, err := openWALDB(mem)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				if err := db.Insert(seed*1_000_000+i, i); err != nil {
					if !errors.Is(err, mvgc.ErrClosed) {
						t.Errorf("writer error: %v", err)
					}
					return
				}
			}
		}(uint64(w))
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := db.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := db.Insert(0, 0); !errors.Is(err, mvgc.ErrClosed) {
		t.Fatalf("post-close Insert = %v, want ErrClosed", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("repeat Close = %v", err)
	}
}

package mvgc

import (
	"encoding/binary"
	"errors"
	"runtime"
	"sync"
	"time"

	"mvgc/internal/ftree"
	"mvgc/internal/shard"
	"mvgc/internal/wal"
	"mvgc/internal/ycsb"
)

var errNilAugmenter = errors.New("mvgc: OpenDB requires an augmenter; use OpenPlainDB for unaugmented maps")

// ErrClosed is returned by writes that arrive after DB.Close has begun.
var ErrClosed = shard.ErrClosed

// DB is the goroutine-safe front door to a sharded multiversion map: no
// pid appears anywhere in its API.  Keys are hash-partitioned across S
// independent shards, each a full paper-faithful core.Map with its own
// Version Maintenance instance, O(P) delay bound and precise per-shard
// garbage collection.  Point operations keep the paper's guarantees in
// full.  Cross-shard operations come in two modes:
//
//   - Per-shard (Update, View; the default): fast, but a multi-key write
//     commits shard by shard and a fan-out read pins shard snapshots at
//     slightly different instants, so a concurrent reader can observe part
//     of a multi-shard write.
//   - Global (UpdateAtomic, ViewConsistent): every commit is stamped from
//     one global commit sequence number (GSN); UpdateAtomic installs all
//     touched shards under one GSN and ViewConsistent pins a snapshot
//     vector proven tear-free by double-collecting the per-shard
//     (latest-GSN, install-seq) vector, so no atomic transaction is ever
//     observed torn.  DBOptions.AtomicDefault makes Update/View use the
//     global mode.
//
// See the internal/shard package comment for the exact semantics.
//
//	db, _ := mvgc.OpenPlainDB[uint64, uint64](mvgc.DBOptions[uint64]{}, nil)
//	db.Update(func(t *mvgc.DBTxn[uint64, uint64, struct{}]) { t.Insert(1, 100) })
//	db.View(func(s mvgc.DBSnapshot[uint64, uint64, struct{}]) { s.Get(1) })
//	db.Close()
type DB[K, V, A any] struct {
	*shard.Map[K, V, A]
	atomicDefault bool

	// Background checkpointer (nil channels when not configured).
	ckptStop chan struct{}
	ckptDone chan struct{}
	ckptOnce sync.Once
}

// Close stops the background checkpointer (waiting for an in-flight
// checkpoint to finish) and then closes the map and its log.  Safe to
// call more than once and from concurrent goroutines.
func (db *DB[K, V, A]) Close() error {
	if db.ckptStop != nil {
		db.ckptOnce.Do(func() {
			close(db.ckptStop)
			<-db.ckptDone
		})
	}
	return db.Map.Close()
}

// Update runs a buffered multi-key write transaction.  By default commits
// are atomic per shard (see DB); with DBOptions.AtomicDefault it behaves
// like UpdateAtomic.  The error is nil unless the database is closed or
// write-ahead logging is enabled and the log cannot persist the commit —
// see shard.Map.Update for the exact durability contract.
func (db *DB[K, V, A]) Update(f func(t *DBTxn[K, V, A])) error {
	if db.atomicDefault {
		return db.Map.UpdateAtomic(f)
	}
	return db.Map.Update(f)
}

// View runs f against a fan-out snapshot.  By default the snapshot is
// per-shard consistent (see DB); with DBOptions.AtomicDefault it behaves
// like ViewConsistent.
func (db *DB[K, V, A]) View(f func(s DBSnapshot[K, V, A])) {
	if db.atomicDefault {
		db.Map.ViewConsistent(f)
		return
	}
	db.Map.View(f)
}

// UpdateAtomic runs a buffered multi-key write transaction that commits
// every touched shard under one global commit sequence number: a concurrent
// ViewConsistent never observes it torn.  Single-shard transactions cost
// the same as Update.
func (db *DB[K, V, A]) UpdateAtomic(f func(t *DBTxn[K, V, A])) error { return db.Map.UpdateAtomic(f) }

// UpdateAtomicKeys runs an atomic transaction whose key footprint is
// declared up front — a full multi-key compare-and-swap, serializable
// against ALL writers: fence-respecting ones (other atomic transactions,
// batched writers) are excluded while f runs, and plain point writers are
// caught by optimistic validation — every read inside f is sampled against
// per-key version stripes and revalidated at install time, with the whole
// transaction aborted and retried (f re-runs) on any conflict.  f may read
// any key but must write only keys covered by the declared footprint, and
// must be a pure function of its reads since it can run more than once
// (see shard.Map.UpdateAtomicKeys for the exact contract).
func (db *DB[K, V, A]) UpdateAtomicKeys(keys []K, f func(t *DBTxn[K, V, A])) error {
	return db.Map.UpdateAtomicKeys(keys, f)
}

// ViewConsistent runs f against a globally consistent snapshot: one pinned
// version per shard, all reflecting the same global commit prefix
// (Snap.GSNs), with no atomic transaction torn across shards.
func (db *DB[K, V, A]) ViewConsistent(f func(s DBSnapshot[K, V, A])) { db.Map.ViewConsistent(f) }

// Scan returns up to n entries with keys ≥ lo in global key order — the
// YCSB-style short range scan.  The merge is a loser-tree over per-shard
// iterators (O(log S) per element) on pooled scan state; by default the
// scan pins a per-shard View, with DBOptions.AtomicDefault it pins a
// ViewConsistent cut so no atomic transaction is observed torn.  For a
// zero-allocation warm scan, pin a snapshot yourself and use
// DBSnapshot.ScanAppend with a reused buffer.
func (db *DB[K, V, A]) Scan(lo K, n int) []Entry[K, V] {
	var out []Entry[K, V]
	db.View(func(s DBSnapshot[K, V, A]) { out = s.ScanAppend(nil, lo, n) })
	return out
}

// RangeFunc streams the entries with keys in [lo, hi] in global key order
// to f, stopping early when f returns false; it reports whether the walk
// ran to completion.  Nothing is materialized.  Consistency follows
// DBOptions.AtomicDefault exactly like Scan.
func (db *DB[K, V, A]) RangeFunc(lo, hi K, f func(k K, v V) bool) bool {
	done := true
	db.View(func(s DBSnapshot[K, V, A]) { done = s.RangeFunc(lo, hi, f) })
	return done
}

// ForEachChunked visits every entry in global key order with bounded
// staleness: every n entries the walk releases its snapshot pins and
// re-seeks at the last visited key against a fresh snapshot, so a
// full-table analytics walk never holds any shard's uncollected-version
// window open for longer than one chunk.  Keys stream in strictly
// increasing order and each key is visited at most once, but commits
// landing ahead of the walk between chunks are observed — see
// shard.Map.ForEachChunked for the exact semantics.  Each chunk's
// consistency follows DBOptions.AtomicDefault exactly like Scan: with
// AtomicDefault every chunk reflects one global commit cut.  It reports
// whether the walk ran to completion; n <= 0 walks under a single pin.
func (db *DB[K, V, A]) ForEachChunked(n int, f func(k K, v V) bool) bool {
	if db.atomicDefault {
		return db.Map.ForEachChunkedConsistent(n, f)
	}
	return db.Map.ForEachChunked(n, f)
}

// DBSnapshot is the fan-out read view passed to DB.View: one pinned
// immutable version per shard.
type DBSnapshot[K, V, A any] = shard.Snap[K, V, A]

// DBTxn is the buffered write transaction passed to DB.Update.
type DBTxn[K, V, A any] = shard.Txn[K, V, A]

// DBOptions configures OpenDB.  The zero value is usable for integer keys:
// it selects PSWF, GOMAXPROCS shards, GOMAXPROCS+1 processes per shard and
// a built-in hash.
type DBOptions[K any] struct {
	// Shards is the number of independent map instances S (default
	// GOMAXPROCS, floor 1).
	Shards int
	// Procs is the per-shard admission limit P: at most P concurrent
	// transactions per shard (default GOMAXPROCS+1, leaving room for one
	// combining writer next to GOMAXPROCS readers).
	Procs int
	// Algorithm is the Version Maintenance algorithm, one of vm.Names():
	// base, pswf, pslf, hp, epoch, rcu, sbgc (default pswf).
	Algorithm string
	// Hash maps keys to shards.  When nil, OpenDB falls back to a mixed
	// hash for integer and string keys and errors on other kinds.
	Hash func(K) uint64
	// Cmp is the key ordering (required unless Ops is set).
	Cmp func(a, b K) int
	// Grain is the parallel divide-and-conquer cutoff for batch commits
	// (0 = sequential).
	Grain int
	// NoRecycle disables node recycling — the per-process magazine
	// allocator that makes warm point updates heap-allocation-free — so
	// every tree node is allocated fresh from the Go heap.  Ablation
	// only; leave false in production.
	NoRecycle bool
	// AtomicDefault makes DB.Update commit all touched shards under one
	// global commit sequence number and DB.View pin a globally consistent
	// snapshot — i.e. Update/View become UpdateAtomic/ViewConsistent.
	// Single-key operations are unaffected either way.
	AtomicDefault bool

	// WAL enables write-ahead logging when non-nil with a Dir: every
	// committed write is appended to a segmented redo log and fsynced per
	// the configured policy before the call returns, and OpenDB recovers
	// the newest checkpoint snapshot plus all logged records after a
	// crash.  Nil (the default) disables logging entirely — the database
	// is purely in-memory and writes never touch the disk.
	WAL *WALOptions
}

// WALOptions configures the durability subsystem: the redo log itself,
// and the background checkpointer that keeps it bounded.  Requires
// integer or string key AND value types (OpenDB derives the wire codecs
// the same way it derives Hash/Cmp); for other types open the map
// without a WAL and attach one via shard.Map.AttachWAL with explicit
// codecs.
type WALOptions struct {
	// Dir holds the log's segments and checkpoint snapshots.  Created if
	// missing; empty disables logging even when WALOptions is non-nil.
	Dir string
	// Fsync is the fsync policy: "always" (default — acked means
	// durable), "interval" (group fsync at most every FsyncInterval), or
	// "off" (fsync only on checkpoint/close; a crash may lose recently
	// acked writes but never corrupts the log).
	Fsync string
	// FsyncInterval is the flush period for Fsync "interval" (default
	// 50ms).
	FsyncInterval time.Duration
	// SegmentBytes caps each log segment before rotation (default
	// 64 MiB).
	SegmentBytes int64
	// MaxBytes fails writes with wal.ErrWALFull once live log bytes
	// exceed this bound, instead of filling the disk (0 = unbounded).
	// A checkpoint retires segments and makes room.
	MaxBytes int64
	// FS overrides the log's filesystem (tests inject wal.MemFS or
	// wal.FaultFS here; nil = the real disk).
	FS wal.FS
	// CheckpointBytes, when non-zero, starts a background checkpointer
	// that snapshots the database and retires covered segments whenever
	// the log's live bytes exceed this bound, keeping the directory's
	// footprint (and the prefix a replication follower must bootstrap)
	// within roughly 2x this value under sustained load.
	CheckpointBytes int64
	// CheckpointAge, when non-zero, additionally checkpoints once the
	// newest checkpoint is this old AND records have been appended since
	// — an idle database is never re-snapshotted.
	CheckpointAge time.Duration
}

// checkpointing reports whether the options ask for the background
// checkpointer.
func (w *WALOptions) checkpointing() bool {
	return w.CheckpointBytes > 0 || w.CheckpointAge > 0
}

// OpenDB opens a sharded map with the given augmenter and initial
// contents; use OpenPlainDB for the common unaugmented case.
//
// With DBOptions.WALDir set, OpenDB is also the recovery path: it loads
// the newest valid checkpoint snapshot, replays every durable record in
// global commit (GSN) order, truncates any torn tail left by a crash, and
// only then accepts writes — all before returning.  When the directory
// holds prior state the caller's initial entries are ignored (the log is
// the source of truth); on a fresh directory a non-empty initial is
// checkpointed immediately so it is durable from the start.
func OpenDB[K, V, A any](o DBOptions[K], aug Augmenter[K, V, A], initial []Entry[K, V]) (*DB[K, V, A], error) {
	if aug == nil {
		return nil, errNilAugmenter
	}
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards < 1 {
			o.Shards = 1
		}
	}
	if o.Procs <= 0 {
		o.Procs = runtime.GOMAXPROCS(0) + 1
	}
	if o.Hash == nil {
		h, ok := autoHash[K]()
		if !ok {
			return nil, errors.New("mvgc: DBOptions.Hash is required for this key type")
		}
		o.Hash = h
	}
	if o.Cmp == nil {
		c, ok := autoCmp[K]()
		if !ok {
			return nil, errors.New("mvgc: DBOptions.Cmp is required for this key type")
		}
		o.Cmp = c
	}
	var (
		wcfg      shard.WALConfig[K, V]
		rec       *wal.Recovered
		recovered bool
	)
	if o.WAL != nil && o.WAL.Dir != "" {
		encK, decK, ok := autoCodec[K]()
		if !ok {
			return nil, errors.New("mvgc: WAL requires an integer or string key type; use shard.Map.AttachWAL with explicit codecs")
		}
		encV, decV, ok := autoCodec[V]()
		if !ok {
			return nil, errors.New("mvgc: WAL requires an integer or string value type; use shard.Map.AttachWAL with explicit codecs")
		}
		pol, err := wal.ParsePolicy(o.WAL.Fsync)
		if err != nil {
			return nil, err
		}
		log, r, err := wal.Open(wal.Options{
			Dir: o.WAL.Dir, FS: o.WAL.FS,
			SegmentBytes: o.WAL.SegmentBytes, MaxBytes: o.WAL.MaxBytes,
			Policy: pol, Interval: o.WAL.FsyncInterval,
		})
		if err != nil {
			return nil, err
		}
		rec = r
		wcfg = shard.WALConfig[K, V]{Log: log, EncKey: encK, DecKey: decK, EncVal: encV, DecVal: decV}
		recovered = rec.Snapshot != nil || len(rec.Records) > 0
		if recovered {
			// The log is the source of truth: the snapshot replaces the
			// caller's initial entries, and records replay on top below.
			initial, err = shard.DecodeWALSnapshot(wcfg, rec.Snapshot)
			if err != nil {
				log.Close()
				return nil, err
			}
		}
	}
	cmp, grain := o.Cmp, o.Grain
	s, err := shard.New(
		shard.Config[K]{Shards: o.Shards, Procs: o.Procs, Algorithm: o.Algorithm, Hash: o.Hash, NoRecycle: o.NoRecycle},
		func() *Ops[K, V, A] { return ftree.New(cmp, aug, grain) },
		initial,
	)
	if err != nil {
		if wcfg.Log != nil {
			wcfg.Log.Close()
		}
		return nil, err
	}
	db := &DB[K, V, A]{Map: s, atomicDefault: o.AtomicDefault}
	if wcfg.Log != nil {
		if err := s.RecoverWAL(wcfg, rec); err != nil {
			wcfg.Log.Close()
			return nil, err
		}
		if err := s.AttachWAL(wcfg); err != nil {
			wcfg.Log.Close()
			return nil, err
		}
		if !recovered && len(initial) > 0 {
			if err := s.Checkpoint(); err != nil {
				db.Close()
				return nil, err
			}
		}
		if o.WAL.checkpointing() {
			db.ckptStop = make(chan struct{})
			db.ckptDone = make(chan struct{})
			// The growth baseline is captured HERE, before OpenDB returns
			// — a write that lands before the loop's first poll must still
			// read as growth.  A recovered backlog (records beyond the
			// newest snapshot) forces the first trigger: those records are
			// not covered and the appended watermark alone cannot see them
			// (it restarts at zero on open).
			base := db.WALStats().Appended
			if len(rec.Records) > 0 {
				base = -1
			}
			go db.checkpointLoop(o.WAL.CheckpointBytes, o.WAL.CheckpointAge, base)
		}
	}
	return db, nil
}

// checkpointLoop is the background checkpointer: it polls the log's
// shape and checkpoints when live bytes exceed the size bound, or when
// the newest checkpoint is older than the age bound and records have
// been appended since.  A checkpoint rides ViewConsistent — a pinned
// immutable read — so writers are never blocked; the loop therefore
// bounds the log's footprint without ever appearing in a write's
// latency.  Transient checkpoint failures are retried on the next poll
// (wal.Checkpoint errors are not sticky).
func (db *DB[K, V, A]) checkpointLoop(bytes int64, age time.Duration, lastAppended int64) {
	defer close(db.ckptDone)
	poll := 25 * time.Millisecond
	if age > 0 && age/4 < poll {
		poll = age / 4
	}
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	lastAt := time.Now()
	for {
		select {
		case <-db.ckptStop:
			return
		case <-tick.C:
		}
		st := db.WALStats()
		grew := st.Appended > lastAppended
		need := (bytes > 0 && grew && st.LiveBytes >= bytes) ||
			(age > 0 && grew && time.Since(lastAt) >= age)
		if !need {
			continue
		}
		if err := db.Checkpoint(); err != nil {
			if errors.Is(err, ErrClosed) || errors.Is(err, wal.ErrLogClosed) {
				return
			}
			continue
		}
		lastAppended = db.WALStats().Appended
		lastAt = time.Now()
	}
}

// OpenPlainDB opens an unaugmented sharded map — the common key-value
// store case.
func OpenPlainDB[K, V any](o DBOptions[K], initial []Entry[K, V]) (*DB[K, V, struct{}], error) {
	return OpenDB[K, V, struct{}](o, ftree.NoAug[K, V](), initial)
}

// autoHash returns a default shard hash for integer and string key types;
// ok is false for other kinds, where DBOptions.Hash is required.
func autoHash[K any]() (func(K) uint64, bool) {
	var zero K
	switch any(zero).(type) {
	case int:
		return func(k K) uint64 { return Mix64(uint64(any(k).(int))) }, true
	case int32:
		return func(k K) uint64 { return Mix64(uint64(any(k).(int32))) }, true
	case int64:
		return func(k K) uint64 { return Mix64(uint64(any(k).(int64))) }, true
	case uint:
		return func(k K) uint64 { return Mix64(uint64(any(k).(uint))) }, true
	case uint32:
		return func(k K) uint64 { return Mix64(uint64(any(k).(uint32))) }, true
	case uint64:
		return func(k K) uint64 { return Mix64(any(k).(uint64)) }, true
	case string:
		return func(k K) uint64 { return HashString(any(k).(string)) }, true
	}
	return nil, false
}

// autoCodec returns default WAL wire codecs for integer and string types
// (fixed 8-byte little-endian for integers, raw bytes for strings); ok is
// false for other kinds, where the WAL must be attached manually with
// explicit codecs via shard.Map.AttachWAL.
func autoCodec[T any]() (enc func(dst []byte, t T) []byte, dec func(b []byte) (T, error), ok bool) {
	errShort := errors.New("mvgc: WAL codec: truncated 8-byte integer")
	encU64 := func(dst []byte, x uint64) []byte { return binary.LittleEndian.AppendUint64(dst, x) }
	decU64 := func(b []byte) (uint64, error) {
		if len(b) != 8 {
			return 0, errShort
		}
		return binary.LittleEndian.Uint64(b), nil
	}
	var zero T
	switch any(zero).(type) {
	case int:
		return func(dst []byte, t T) []byte { return encU64(dst, uint64(any(t).(int))) },
			func(b []byte) (T, error) { x, err := decU64(b); return any(int(x)).(T), err }, true
	case int32:
		return func(dst []byte, t T) []byte { return encU64(dst, uint64(any(t).(int32))) },
			func(b []byte) (T, error) { x, err := decU64(b); return any(int32(x)).(T), err }, true
	case int64:
		return func(dst []byte, t T) []byte { return encU64(dst, uint64(any(t).(int64))) },
			func(b []byte) (T, error) { x, err := decU64(b); return any(int64(x)).(T), err }, true
	case uint:
		return func(dst []byte, t T) []byte { return encU64(dst, uint64(any(t).(uint))) },
			func(b []byte) (T, error) { x, err := decU64(b); return any(uint(x)).(T), err }, true
	case uint32:
		return func(dst []byte, t T) []byte { return encU64(dst, uint64(any(t).(uint32))) },
			func(b []byte) (T, error) { x, err := decU64(b); return any(uint32(x)).(T), err }, true
	case uint64:
		return func(dst []byte, t T) []byte { return encU64(dst, any(t).(uint64)) },
			func(b []byte) (T, error) { x, err := decU64(b); return any(x).(T), err }, true
	case string:
		return func(dst []byte, t T) []byte { return append(dst, any(t).(string)...) },
			func(b []byte) (T, error) { return any(string(b)).(T), nil }, true
	}
	return nil, nil, false
}

// autoCmp returns a default ordering for integer and string key types; ok
// is false for other kinds, where DBOptions.Cmp is required.
func autoCmp[K any]() (func(a, b K) int, bool) {
	var zero K
	switch any(zero).(type) {
	case int:
		return func(a, b K) int { return IntCmp(any(a).(int), any(b).(int)) }, true
	case int32:
		return func(a, b K) int { return IntCmp(any(a).(int32), any(b).(int32)) }, true
	case int64:
		return func(a, b K) int { return IntCmp(any(a).(int64), any(b).(int64)) }, true
	case uint:
		return func(a, b K) int { return IntCmp(any(a).(uint), any(b).(uint)) }, true
	case uint32:
		return func(a, b K) int { return IntCmp(any(a).(uint32), any(b).(uint32)) }, true
	case uint64:
		return func(a, b K) int { return IntCmp(any(a).(uint64), any(b).(uint64)) }, true
	case string:
		return func(a, b K) int {
			sa, sb := any(a).(string), any(b).(string)
			switch {
			case sa < sb:
				return -1
			case sa > sb:
				return 1
			}
			return 0
		}, true
	}
	return nil, false
}

// Mix64 is SplitMix64's finalizer: a fast, well-distributed integer hash
// suitable for shard routing (sequential keys spread uniformly).
func Mix64(x uint64) uint64 { return ycsb.Mix64(x) }

// HashString is FNV-1a, the default shard hash for string keys.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

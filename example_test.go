package mvgc_test

import (
	"fmt"

	"mvgc"
)

// ExampleNewMap shows the whole transactional lifecycle: an atomic batch
// commit, a snapshot read with an O(log n) augmented range query, and the
// precise-GC guarantee that closing the map frees every node.
func ExampleNewMap() {
	ops := mvgc.NewOps(mvgc.IntCmp[int64], mvgc.SumAug[int64](), 0)
	m, err := mvgc.NewMap(mvgc.Config{Algorithm: "pswf", Procs: 2}, ops, nil)
	if err != nil {
		panic(err)
	}

	m.Update(0, func(tx *mvgc.Txn[int64, int64, int64]) {
		for i := int64(1); i <= 10; i++ {
			tx.Insert(i, i*i)
		}
	})

	m.Read(1, func(s mvgc.Snapshot[int64, int64, int64]) {
		v, _ := s.Get(4)
		fmt.Println("4² =", v)
		fmt.Println("Σ k² =", s.AugRange(1, 10))
	})

	m.Close()
	fmt.Println("leaked nodes:", ops.Live())
	// Output:
	// 4² = 16
	// Σ k² = 385
	// leaked nodes: 0
}

// ExampleMap_Update shows read-your-writes inside a transaction and
// conflict-free retries reported by Update.
func ExampleMap_Update() {
	ops := mvgc.NewOps(mvgc.IntCmp[int64], mvgc.NoAug[int64, string](), 0)
	m, _ := mvgc.NewMap(mvgc.Config{Procs: 1}, ops, nil)

	retries := m.Update(0, func(tx *mvgc.Txn[int64, string, struct{}]) {
		tx.Insert(1, "draft")
		v, _ := tx.Get(1) // a transaction sees its own writes
		tx.Insert(1, v+"-final")
	})
	fmt.Println("retries:", retries)

	m.Read(0, func(s mvgc.Snapshot[int64, string, struct{}]) {
		v, _ := s.Get(1)
		fmt.Println(v)
	})
	m.Close()
	// Output:
	// retries: 0
	// draft-final
}

// ExampleOpenPlainDB shows the sharded, pid-free front door: transactions
// run from any goroutine with no process-id discipline, keys are
// hash-partitioned across independent map instances, and cross-shard reads
// merge into global key order.
func ExampleOpenPlainDB() {
	db, err := mvgc.OpenPlainDB[uint64, uint64](mvgc.DBOptions[uint64]{Shards: 4, Procs: 2}, nil)
	if err != nil {
		panic(err)
	}

	db.Update(func(tx *mvgc.DBTxn[uint64, uint64, struct{}]) {
		for i := uint64(1); i <= 5; i++ {
			tx.Insert(i, i*100) // keys land on different shards
		}
	})

	db.View(func(s mvgc.DBSnapshot[uint64, uint64, struct{}]) {
		v, _ := s.Get(3)
		fmt.Println("3 →", v)
		s.ForEach(func(k, v uint64) { fmt.Println(k, v) }) // global key order
	})

	db.Close()
	fmt.Println("leaked nodes:", db.Live())
	// Output:
	// 3 → 300
	// 1 100
	// 2 200
	// 3 300
	// 4 400
	// 5 500
	// leaked nodes: 0
}

// ExampleSnapshot_Range shows ordered-map queries on one snapshot.
func ExampleSnapshot_Range() {
	ops := mvgc.NewOps(mvgc.IntCmp[int64], mvgc.SumAug[int64](), 0)
	m, _ := mvgc.NewMap(mvgc.Config{Procs: 1}, ops, []mvgc.Entry[int64, int64]{
		{Key: 10, Val: 1}, {Key: 20, Val: 2}, {Key: 30, Val: 3}, {Key: 40, Val: 4},
	})
	m.Read(0, func(s mvgc.Snapshot[int64, int64, int64]) {
		for _, e := range s.Range(15, 35) {
			fmt.Println(e.Key, e.Val)
		}
		entry, _ := s.Select(0) // rank queries via subtree sizes
		fmt.Println("min key:", entry.Key)
	})
	m.Close()
	// Output:
	// 20 2
	// 30 3
	// min key: 10
}

package mvgc_test

import (
	"fmt"

	"mvgc"
)

// ExampleNewMap shows the whole transactional lifecycle: an atomic batch
// commit, a snapshot read with an O(log n) augmented range query, and the
// precise-GC guarantee that closing the map frees every node.
func ExampleNewMap() {
	ops := mvgc.NewOps(mvgc.IntCmp[int64], mvgc.SumAug[int64](), 0)
	m, err := mvgc.NewMap(mvgc.Config{Algorithm: "pswf", Procs: 2}, ops, nil)
	if err != nil {
		panic(err)
	}

	m.Update(0, func(tx *mvgc.Txn[int64, int64, int64]) {
		for i := int64(1); i <= 10; i++ {
			tx.Insert(i, i*i)
		}
	})

	m.Read(1, func(s mvgc.Snapshot[int64, int64, int64]) {
		v, _ := s.Get(4)
		fmt.Println("4² =", v)
		fmt.Println("Σ k² =", s.AugRange(1, 10))
	})

	m.Close()
	fmt.Println("leaked nodes:", ops.Live())
	// Output:
	// 4² = 16
	// Σ k² = 385
	// leaked nodes: 0
}

// ExampleMap_Update shows read-your-writes inside a transaction and
// conflict-free retries reported by Update.
func ExampleMap_Update() {
	ops := mvgc.NewOps(mvgc.IntCmp[int64], mvgc.NoAug[int64, string](), 0)
	m, _ := mvgc.NewMap(mvgc.Config{Procs: 1}, ops, nil)

	retries := m.Update(0, func(tx *mvgc.Txn[int64, string, struct{}]) {
		tx.Insert(1, "draft")
		v, _ := tx.Get(1) // a transaction sees its own writes
		tx.Insert(1, v+"-final")
	})
	fmt.Println("retries:", retries)

	m.Read(0, func(s mvgc.Snapshot[int64, string, struct{}]) {
		v, _ := s.Get(1)
		fmt.Println(v)
	})
	m.Close()
	// Output:
	// retries: 0
	// draft-final
}

// ExampleSnapshot_Range shows ordered-map queries on one snapshot.
func ExampleSnapshot_Range() {
	ops := mvgc.NewOps(mvgc.IntCmp[int64], mvgc.SumAug[int64](), 0)
	m, _ := mvgc.NewMap(mvgc.Config{Procs: 1}, ops, []mvgc.Entry[int64, int64]{
		{Key: 10, Val: 1}, {Key: 20, Val: 2}, {Key: 30, Val: 3}, {Key: 40, Val: 4},
	})
	m.Read(0, func(s mvgc.Snapshot[int64, int64, int64]) {
		for _, e := range s.Range(15, 35) {
			fmt.Println(e.Key, e.Val)
		}
		entry, _ := s.Select(0) // rank queries via subtree sizes
		fmt.Println("min key:", entry.Key)
	})
	m.Close()
	// Output:
	// 20 2
	// 30 3
	// min key: 10
}

// Analytics: long-running consistent scans over a live, continuously
// updated ordered map — the read-dominated deployment the paper targets.
//
// A writer streams trades into the book while analysts run multi-second
// scans; every scan sees one frozen version, pinned only for that scan,
// and collected the moment its last reader finishes (precise GC).
//
// Run with:
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mvgc/internal/core"
	"mvgc/internal/ftree"
	"mvgc/internal/ycsb"
)

const (
	analysts = 3
	seconds  = 2
)

func main() {
	// Order book: price level → quantity, augmented with total quantity so
	// depth queries are O(log n).
	ops := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
	m, err := core.NewMap(core.Config{Algorithm: "pswf", Procs: analysts + 1}, ops, nil)
	if err != nil {
		panic(err)
	}
	m.TrackVersions = true

	var stop atomic.Bool
	var trades atomic.Int64
	var wg sync.WaitGroup

	// The writer: a stream of order updates, each batch atomic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := ycsb.NewSplitMix64(1)
		for !stop.Load() {
			m.Update(0, func(tx *core.Txn[int64, int64, int64]) {
				for i := 0; i < 16; i++ {
					price := int64(10_000 + rng.Intn(2_000))
					qty := int64(rng.Intn(500))
					if qty == 0 {
						tx.Delete(price)
					} else {
						tx.Insert(price, qty)
					}
				}
			})
			trades.Add(16)
		}
	}()

	// Analysts: each scan must balance exactly — a torn snapshot would
	// show totalQty ≠ sum of its halves.
	for a := 1; a <= analysts; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			scans := 0
			for !stop.Load() {
				m.Read(a, func(s core.Snapshot[int64, int64, int64]) {
					mid := int64(11_000)
					below := s.AugRange(0, mid)
					above := s.AugRange(mid+1, 1<<40)
					total := s.AugRange(0, 1<<40)
					if below+above != total {
						panic(fmt.Sprintf("torn snapshot: %d + %d != %d", below, above, total))
					}
					scans++
				})
			}
			fmt.Printf("analyst %d: %d consistent depth scans\n", a, scans)
		}(a)
	}

	time.Sleep(seconds * time.Second)
	stop.Store(true)
	wg.Wait()

	fmt.Printf("writer committed %d order updates\n", trades.Load())
	fmt.Printf("peak simultaneous versions: %d (bound: 2P+1 = %d)\n",
		m.MaxVersions(), 2*(analysts+1)+1)
	m.Close()
	fmt.Printf("leaked nodes after close: %d\n", ops.Live())
}

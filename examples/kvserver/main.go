// KV server: a line-protocol TCP key-value store where every connection's
// reads run as delay-free snapshot transactions and writes flow through
// the Appendix-F combining writer.  A PidPool multiplexes arbitrarily many
// connections over P transaction processes and doubles as admission
// control.
//
// Protocol (one command per line):
//
//	SET <key> <value>      → OK
//	GET <key>              → <value> | NOT_FOUND
//	SUM <lo> <hi>          → <sum of values in [lo,hi]>   (O(log n))
//	LEN                    → <number of keys>
//
// Run with:
//
//	go run ./examples/kvserver        # serves one demo session in-process
package main

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"mvgc/internal/batch"
	"mvgc/internal/core"
	"mvgc/internal/ftree"
)

type server struct {
	m    *core.Map[int64, int64, int64]
	b    *batch.Batcher[int64, int64, int64]
	pool *core.PidPool
}

const readerProcs = 8

func newServer() *server {
	ops := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 1024)
	// Processes 0..readerProcs-1 serve reads; process readerProcs is the
	// combining writer.
	m, err := core.NewMap(core.Config{Algorithm: "pswf", Procs: readerProcs + 1}, ops, nil)
	if err != nil {
		panic(err)
	}
	b := batch.New(m, batch.Config{
		WriterPid:  readerProcs,
		Clients:    1, // all connections funnel through one buffer here
		BufCap:     8192,
		MaxLatency: time.Millisecond,
	}, nil)
	b.Start()
	return &server{m: m, b: b, pool: core.NewPidPool(0, readerProcs)}
}

func (s *server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		reply := s.exec(sc.Text())
		fmt.Fprintln(w, reply)
		w.Flush()
	}
}

func (s *server) exec(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty"
	}
	switch strings.ToUpper(fields[0]) {
	case "SET":
		if len(fields) != 3 {
			return "ERR usage: SET <key> <value>"
		}
		k, err1 := strconv.ParseInt(fields[1], 10, 64)
		v, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return "ERR bad integer"
		}
		s.b.SubmitWait(0, batch.Request[int64, int64]{Op: batch.OpInsert, Key: k, Val: v})
		return "OK"
	case "GET":
		if len(fields) != 2 {
			return "ERR usage: GET <key>"
		}
		k, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return "ERR bad integer"
		}
		var out string
		s.pool.Do(func(pid int) {
			s.m.Read(pid, func(sn core.Snapshot[int64, int64, int64]) {
				if v, ok := sn.Get(k); ok {
					out = strconv.FormatInt(v, 10)
				} else {
					out = "NOT_FOUND"
				}
			})
		})
		return out
	case "SUM":
		if len(fields) != 3 {
			return "ERR usage: SUM <lo> <hi>"
		}
		lo, err1 := strconv.ParseInt(fields[1], 10, 64)
		hi, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return "ERR bad integer"
		}
		var out string
		s.pool.Do(func(pid int) {
			s.m.Read(pid, func(sn core.Snapshot[int64, int64, int64]) {
				out = strconv.FormatInt(sn.AugRange(lo, hi), 10)
			})
		})
		return out
	case "LEN":
		var out string
		s.pool.Do(func(pid int) {
			s.m.Read(pid, func(sn core.Snapshot[int64, int64, int64]) {
				out = strconv.FormatInt(sn.Len(), 10)
			})
		})
		return out
	}
	return "ERR unknown command"
}

func main() {
	s := newServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	fmt.Println("kvserver listening on", ln.Addr())
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.handle(conn)
		}
	}()

	// Demo session against our own server.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		panic(err)
	}
	r := bufio.NewScanner(conn)
	send := func(cmd string) {
		fmt.Fprintf(conn, "%s\n", cmd)
		r.Scan()
		fmt.Printf("%-14s → %s\n", cmd, r.Text())
	}
	for i := 1; i <= 5; i++ {
		send(fmt.Sprintf("SET %d %d", i, i*100))
	}
	send("GET 3")
	send("GET 99")
	send("SUM 1 5")
	send("LEN")
	conn.Close()
	ln.Close()

	s.b.Stop()
	s.m.Close()
	fmt.Println("leaked nodes:", s.m.Ops().Live())
}

// KV server: a line-protocol TCP key-value store built on mvgc.DB, the
// sharded, goroutine-safe front door.  Every connection is its own
// goroutine and never sees a process id: reads run as delay-free snapshot
// transactions on the key's shard, and writes flow through that shard's
// Appendix-F combining writer, so S shards give S concurrent combiners.
// Each shard's pid pool doubles as admission control.
//
// Protocol (one command per line):
//
//	SET <key> <value>      → OK
//	GET <key>              → <value> | NOT_FOUND
//	SUM <lo> <hi>          → <sum of values in [lo,hi]>   (O(S log n))
//	LEN                    → <number of keys>
//	MCAS <k1> <expect1> <new1> [<k2> <expect2> <new2> ...]
//	                       → OK | FAIL          (requires -atomic)
//
// MCAS is a multi-key compare-and-swap built on DB.UpdateAtomicKeys: the
// declared keys' shards are fenced before the expectations are read, so
// validation and the writes form one atomic step against every other
// fence-respecting writer — other MCAS calls and the combiners all SETs
// flow through — and the whole swap commits under one global commit
// sequence number.  In -atomic mode SUM and LEN read via ViewConsistent,
// so those consistent readers never see a swap half-applied (a plain View
// remains per-shard and could).
//
// Run with:
//
//	go run ./examples/kvserver -shards 4          # serves one demo session in-process
//	go run ./examples/kvserver -shards 4 -atomic  # adds the MCAS demo
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"mvgc"
	"mvgc/internal/batch"
	"mvgc/internal/core"
)

// writeSlots bounds concurrent SETs: each batch client buffer is a
// single-producer ring, so a connection leases an exclusive slot per SET.
const writeSlots = 16

type server struct {
	db     *mvgc.DB[int64, int64, int64]
	slots  *core.PidPool // leases batch client ids 0..writeSlots-1
	atomic bool          // enables the MCAS endpoint
}

func newServer(shards int, atomic bool) *server {
	db, err := mvgc.OpenDB[int64, int64, int64](mvgc.DBOptions[int64]{
		Shards: shards,
		Grain:  1024,
	}, mvgc.SumAug[int64](), nil)
	if err != nil {
		panic(err)
	}
	// One combining writer per shard; writeSlots client buffers per shard.
	db.StartBatching(batch.Config{
		Clients:    writeSlots,
		BufCap:     8192,
		MaxLatency: time.Millisecond,
	}, nil)
	return &server{db: db, slots: core.NewPidPool(0, writeSlots), atomic: atomic}
}

// view is the fan-out read mode: globally consistent when the server runs
// with -atomic (so an MCAS is never observed half-applied), per-shard
// otherwise.
func (s *server) view(f func(sn mvgc.DBSnapshot[int64, int64, int64])) {
	if s.atomic {
		s.db.ViewConsistent(f)
		return
	}
	s.db.View(f)
}

func (s *server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		reply := s.exec(sc.Text())
		fmt.Fprintln(w, reply)
		w.Flush()
	}
}

func (s *server) exec(line string) string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty"
	}
	switch strings.ToUpper(fields[0]) {
	case "SET":
		if len(fields) != 3 {
			return "ERR usage: SET <key> <value>"
		}
		k, err1 := strconv.ParseInt(fields[1], 10, 64)
		v, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return "ERR bad integer"
		}
		s.slots.Do(func(client int) {
			s.db.SubmitWait(client, batch.Request[int64, int64]{Op: batch.OpInsert, Key: k, Val: v})
		})
		return "OK"
	case "GET":
		if len(fields) != 2 {
			return "ERR usage: GET <key>"
		}
		k, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return "ERR bad integer"
		}
		if v, ok := s.db.Get(k); ok {
			return strconv.FormatInt(v, 10)
		}
		return "NOT_FOUND"
	case "SUM":
		if len(fields) != 3 {
			return "ERR usage: SUM <lo> <hi>"
		}
		lo, err1 := strconv.ParseInt(fields[1], 10, 64)
		hi, err2 := strconv.ParseInt(fields[2], 10, 64)
		if err1 != nil || err2 != nil {
			return "ERR bad integer"
		}
		var out string
		s.view(func(sn mvgc.DBSnapshot[int64, int64, int64]) {
			out = strconv.FormatInt(sn.AugRange(lo, hi), 10)
		})
		return out
	case "LEN":
		var out string
		s.view(func(sn mvgc.DBSnapshot[int64, int64, int64]) {
			out = strconv.FormatInt(sn.Len(), 10)
		})
		return out
	case "MCAS":
		if !s.atomic {
			return "ERR MCAS requires -atomic"
		}
		if len(fields) < 4 || (len(fields)-1)%3 != 0 {
			return "ERR usage: MCAS <key> <expect> <new> [...]"
		}
		n := (len(fields) - 1) / 3
		keys := make([]int64, n)
		expects := make([]int64, n)
		news := make([]int64, n)
		for i := 0; i < n; i++ {
			var errs [3]error
			keys[i], errs[0] = strconv.ParseInt(fields[1+3*i], 10, 64)
			expects[i], errs[1] = strconv.ParseInt(fields[2+3*i], 10, 64)
			news[i], errs[2] = strconv.ParseInt(fields[3+3*i], 10, 64)
			if errs[0] != nil || errs[1] != nil || errs[2] != nil {
				return "ERR bad integer"
			}
		}
		swapped := false
		s.db.UpdateAtomicKeys(keys, func(t *mvgc.DBTxn[int64, int64, int64]) {
			for i, k := range keys {
				if v, ok := t.Get(k); !ok || v != expects[i] {
					return // no intents buffered: nothing commits
				}
			}
			swapped = true
			for i, k := range keys {
				t.Insert(k, news[i])
			}
		})
		if swapped {
			return "OK"
		}
		return "FAIL"
	}
	return "ERR unknown command"
}

func main() {
	shards := flag.Int("shards", 4, "number of independent map shards")
	atomic := flag.Bool("atomic", false, "enable the MCAS multi-key compare-and-swap endpoint")
	flag.Parse()

	s := newServer(*shards, *atomic)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	fmt.Printf("kvserver listening on %v (%d shards)\n", ln.Addr(), *shards)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.handle(conn)
		}
	}()

	// Demo session against our own server.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		panic(err)
	}
	r := bufio.NewScanner(conn)
	send := func(cmd string) {
		fmt.Fprintf(conn, "%s\n", cmd)
		r.Scan()
		fmt.Printf("%-14s → %s\n", cmd, r.Text())
	}
	for i := 1; i <= 5; i++ {
		send(fmt.Sprintf("SET %d %d", i, i*100))
	}
	send("GET 3")
	send("GET 99")
	send("SUM 1 5")
	send("LEN")
	if *atomic {
		// Multi-key CAS: keys 1 and 2 hold 100 and 200, so the first swap
		// applies atomically and the second (stale expectation) must FAIL
		// without touching either key.
		send("MCAS 1 100 111 2 200 222")
		send("MCAS 1 100 123 2 222 333")
		send("GET 1")
		send("GET 2")
	}
	conn.Close()
	ln.Close()

	s.db.Close()
	fmt.Println("leaked nodes:", s.db.Live())
}

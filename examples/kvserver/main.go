// KV server example: a demo session against the real serving layer.
//
// What used to be a hand-rolled line-protocol server here is now the
// production stack — internal/netserver (pipelined binary-protocol server,
// also the heart of cmd/mvgcd) spoken to through internal/netclient (the
// pipelining client).  This example just wires the two together on a
// loopback listener and walks through the command set, so it stays a
// minimal, readable tour of the network front door:
//
//	SET/DEL  → per-shard combining writers: every pipelined write from
//	           every connection rides O(shards) batch commits, and the OK
//	           comes back only after the write's commit published
//	GET      → delay-free cached-handle point read on the key's shard
//	SUM/LEN  → fan-out snapshot reads (O(S log n) via the sum augment);
//	           -atomic makes them globally consistent (ViewConsistent)
//	MCAS     → DB.UpdateAtomicKeys: serializable multi-key compare-and-swap
//	           against all writers, combiners included
//
// Run with:
//
//	go run ./examples/kvserver -shards 4          # serves one demo session in-process
//	go run ./examples/kvserver -shards 4 -atomic  # consistent SUM/LEN + the MCAS demo
package main

import (
	"flag"
	"fmt"
	"net"

	"mvgc/internal/netclient"
	"mvgc/internal/netserver"
)

func main() {
	shards := flag.Int("shards", 4, "number of independent map shards")
	atomic := flag.Bool("atomic", false, "globally consistent SUM/LEN; demos MCAS")
	flag.Parse()

	srv, err := netserver.New(netserver.Config{Shards: *shards, Consistent: *atomic})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(ln)
	fmt.Printf("kvserver listening on %v (%d shards)\n", ln.Addr(), *shards)

	// Demo session against our own server.
	c, err := netclient.Dial(ln.Addr().String(), 16)
	if err != nil {
		panic(err)
	}
	show := func(cmd string, out string, err error) {
		if err != nil {
			out = "ERR " + err.Error()
		}
		fmt.Printf("%-22s → %s\n", cmd, out)
	}
	for i := int64(1); i <= 5; i++ {
		err := c.Set(i, i*100)
		show(fmt.Sprintf("SET %d %d", i, i*100), "OK", err)
	}
	v, ok, err := c.Get(3)
	show("GET 3", fmt.Sprint(v), err)
	_, ok, err = c.Get(99)
	if err == nil && !ok {
		show("GET 99", "NOT_FOUND", nil)
	} else {
		show("GET 99", "unexpected hit", err)
	}
	sum, err := c.Sum(1, 5)
	show("SUM 1 5", fmt.Sprint(sum), err)
	n, err := c.Len()
	show("LEN", fmt.Sprint(n), err)
	if *atomic {
		// Multi-key CAS: keys 1 and 2 hold 100 and 200, so the first swap
		// applies atomically and the second (stale expectation) must fail
		// without touching either key.
		swapped, err := c.MCAS([]int64{1, 2}, []int64{100, 200}, []int64{111, 222})
		show("MCAS 1 100… 2 200…", fmt.Sprint(swapped), err)
		swapped, err = c.MCAS([]int64{1, 2}, []int64{100, 222}, []int64{123, 333})
		show("MCAS stale expect", fmt.Sprint(swapped), err)
		v, _, err = c.Get(1)
		show("GET 1", fmt.Sprint(v), err)
		v, _, err = c.Get(2)
		show("GET 2", fmt.Sprint(v), err)
	}
	stats, err := c.Stats()
	show("STATS", stats, err)

	c.Close()
	db := srv.DB()
	srv.Shutdown() // closes the DB too
	fmt.Println("leaked nodes:", db.Live())
}

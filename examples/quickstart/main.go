// Quickstart: a multiversion ordered map with delay-free snapshot reads
// and a precise garbage collector.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"mvgc/internal/core"
	"mvgc/internal/ftree"
)

func main() {
	// A map from int64 to int64 augmented with range sums, shared by two
	// processes (process ids 0 and 1).
	ops := ftree.New[int64, int64, int64](ftree.IntCmp[int64], ftree.SumAug[int64](), 0)
	m, err := core.NewMap(core.Config{Algorithm: "pswf", Procs: 2}, ops, nil)
	if err != nil {
		panic(err)
	}

	// A write transaction: everything inside commits atomically.
	m.Update(0, func(tx *core.Txn[int64, int64, int64]) {
		for i := int64(1); i <= 10; i++ {
			tx.Insert(i, i*i)
		}
	})

	// A read transaction: a consistent snapshot, never blocked by writers.
	m.Read(1, func(s core.Snapshot[int64, int64, int64]) {
		v, _ := s.Get(4)
		fmt.Println("4² =", v)
		fmt.Println("Σ k² for k in [1,10] =", s.AugRange(1, 10)) // O(log n)
		fmt.Println("entries:", s.Len())
	})

	// Writers retry on conflict and are lock-free; a solo writer commits
	// with O(P) delay.
	retries := m.Update(0, func(tx *core.Txn[int64, int64, int64]) {
		tx.Delete(7)
		tx.Insert(11, 121)
	})
	fmt.Println("second commit retries:", retries)

	m.Read(1, func(s core.Snapshot[int64, int64, int64]) {
		fmt.Println("after delete, Σ =", s.AugRange(1, 11))
	})

	// Precise GC: after closing, every node of every version is freed.
	m.Close()
	fmt.Println("leaked nodes:", ops.Live())
}

// Inverted index: a mini search engine on nested functional trees — the
// paper's Section 7.2 application.  Documents are ingested atomically (a
// query can never see half a document) while "and"-queries rank results by
// summed weight using the max-weight augmentation for O(k log n) top-k.
// No pid appears anywhere: the index leases process identities internally,
// so ingestion and queries run from plain goroutines.
//
// Run with:
//
//	go run ./examples/invertedindex
//	go run ./examples/invertedindex -queriers 8 -shards 4
package main

import (
	"flag"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mvgc/internal/invindex"
	"mvgc/internal/ycsb"
)

// index is the surface this demo drives; Index and ShardedIndex both
// provide it.
type index interface {
	AddDocuments(docs []invindex.Doc)
	AndQuery(term1, term2 uint64, k int) []invindex.ScoredDoc
	PostingLen(term uint64) int64
	Terms() int64
	Close()
	LiveNodes() (outer, inner int64)
}

func main() {
	var (
		queriers = flag.Int("queriers", max(1, runtime.GOMAXPROCS(0)-1),
			"query goroutines running next to the ingesting writer (default GOMAXPROCS-1)")
		shards = flag.Int("shards", 0, "hash-partition the term tree across this many shards (0 = single index)")
		dur    = flag.Duration("dur", time.Second, "live co-running phase duration")
	)
	flag.Parse()

	procs := *queriers + 1 // queriers + the ingesting writer
	var (
		ix  index
		err error
	)
	if *shards > 0 {
		ix, err = invindex.NewSharded(*shards, procs, 512)
	} else {
		ix, err = invindex.New(procs, 512)
	}
	if err != nil {
		panic(err)
	}
	corpus := invindex.NewCorpus(invindex.CorpusConfig{
		Vocab:      20_000,
		MeanDocLen: 40,
		Seed:       42,
	})
	hot := corpus.HotTerms(16)

	// Seed corpus.
	for i := 0; i < 50; i++ {
		docs := make([]invindex.Doc, 20)
		for j := range docs {
			docs[j] = corpus.Next()
		}
		ix.AddDocuments(docs)
	}
	fmt.Printf("corpus: %d terms, hottest posting has %d docs\n",
		ix.Terms(), ix.PostingLen(hot[0]))

	// Live phase: one ingesting writer, several query goroutines.
	var stop atomic.Bool
	var queries atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			docs := make([]invindex.Doc, 10)
			for j := range docs {
				docs[j] = corpus.Next()
			}
			ix.AddDocuments(docs)
		}
	}()
	for q := 0; q < *queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := ycsb.NewSplitMix64(uint64(q) + 9)
			for !stop.Load() {
				t1 := hot[rng.Intn(uint64(len(hot)))]
				t2 := hot[rng.Intn(uint64(len(hot)))]
				ix.AndQuery(t1, t2, 10)
				queries.Add(1)
			}
		}(q)
	}
	time.Sleep(*dur)
	stop.Store(true)
	wg.Wait()

	// One final query, printed.
	res := ix.AndQuery(hot[0], hot[1], 5)
	fmt.Printf("answered %d and-queries during live ingestion\n", queries.Load())
	fmt.Printf("top-5 docs containing terms %d AND %d:\n", hot[0], hot[1])
	for i, r := range res {
		fmt.Printf("  %d. doc %-8d score %d\n", i+1, r.Doc, r.Score)
	}
	ix.Close()
	o, i := ix.LiveNodes()
	fmt.Printf("leaked nodes after close: outer=%d inner=%d\n", o, i)
}

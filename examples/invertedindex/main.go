// Inverted index: a mini search engine on nested functional trees — the
// paper's Section 7.2 application.  Documents are ingested atomically (a
// query can never see half a document) while "and"-queries rank results by
// summed weight using the max-weight augmentation for O(k log n) top-k.
//
// Run with:
//
//	go run ./examples/invertedindex
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mvgc/internal/invindex"
	"mvgc/internal/ycsb"
)

func main() {
	const queryThreads = 3
	ix, err := invindex.New(queryThreads+1, 512)
	if err != nil {
		panic(err)
	}
	corpus := invindex.NewCorpus(invindex.CorpusConfig{
		Vocab:      20_000,
		MeanDocLen: 40,
		Seed:       42,
	})
	hot := corpus.HotTerms(16)

	// Seed corpus.
	for i := 0; i < 50; i++ {
		docs := make([]invindex.Doc, 20)
		for j := range docs {
			docs[j] = corpus.Next()
		}
		ix.AddDocuments(0, docs)
	}
	fmt.Printf("corpus: %d terms, hottest posting has %d docs\n",
		ix.Terms(1), ix.PostingLen(1, hot[0]))

	// Live phase: one ingesting writer, several query threads.
	var stop atomic.Bool
	var queries atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			docs := make([]invindex.Doc, 10)
			for j := range docs {
				docs[j] = corpus.Next()
			}
			ix.AddDocuments(0, docs)
		}
	}()
	for q := 0; q < queryThreads; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := ycsb.NewSplitMix64(uint64(q) + 9)
			for !stop.Load() {
				t1 := hot[rng.Intn(uint64(len(hot)))]
				t2 := hot[rng.Intn(uint64(len(hot)))]
				ix.AndQuery(1+q, t1, t2, 10)
				queries.Add(1)
			}
		}(q)
	}
	time.Sleep(time.Second)
	stop.Store(true)
	wg.Wait()

	// One final query, printed.
	res := ix.AndQuery(1, hot[0], hot[1], 5)
	fmt.Printf("answered %d and-queries during live ingestion\n", queries.Load())
	fmt.Printf("top-5 docs containing terms %d AND %d:\n", hot[0], hot[1])
	for i, r := range res {
		fmt.Printf("  %d. doc %-8d score %d\n", i+1, r.Doc, r.Score)
	}
	ix.Close()
	o, i := ix.LiveNodes()
	fmt.Printf("leaked nodes after close: outer=%d inner=%d\n", o, i)
}

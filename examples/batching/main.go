// Batching: many client goroutines submit updates to private buffers and a
// single combining writer commits them in atomic batches with a parallel
// multi-insert (the paper's Appendix F), while readers run against
// consistent snapshots the whole time.
//
// Run with:
//
//	go run ./examples/batching
package main

import (
	"fmt"
	"sync"
	"time"

	"mvgc/internal/batch"
	"mvgc/internal/core"
	"mvgc/internal/ftree"
	"mvgc/internal/ycsb"
)

const (
	clients   = 8
	perClient = 50_000
)

func main() {
	ops := ftree.New[uint64, uint64, struct{}](ftree.IntCmp[uint64], ftree.NoAug[uint64, uint64](), 2048)
	// One process per reader plus one for the combining writer.
	m, err := core.NewMap(core.Config{Algorithm: "pswf", Procs: 2}, ops, nil)
	if err != nil {
		panic(err)
	}
	b := batch.New(m, batch.Config{ // the combiner leases its own identity
		Clients:    clients,
		BufCap:     4096,
		MaxLatency: 2 * time.Millisecond, // latency bound per request
	}, nil)
	b.Start()

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := ycsb.NewSplitMix64(uint64(c) + 1)
			for i := 0; i < perClient; i++ {
				b.Submit(c, batch.Request[uint64, uint64]{
					Op:  batch.OpInsert,
					Key: rng.Next() % (1 << 20),
					Val: uint64(i),
				})
			}
			b.Flush(c) // wait until everything this client sent is durable
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.Stop()

	var size int64
	m.With(func(h *core.Handle[uint64, uint64, struct{}]) {
		h.Read(func(s core.Snapshot[uint64, uint64, struct{}]) { size = s.Len() })
	})
	fmt.Printf("%d clients submitted %d updates in %v (%.2f Mop/s)\n",
		clients, clients*perClient, elapsed.Round(time.Millisecond),
		float64(clients*perClient)/elapsed.Seconds()/1e6)
	fmt.Printf("combiner committed %d batches (largest %d); map holds %d keys\n",
		b.Batches(), b.MaxBatchSeen(), size)
	m.Close()
	fmt.Printf("leaked nodes: %d\n", ops.Live())
}

module mvgc

go 1.24

package mvgc

import (
	"sync"
	"testing"
)

// TestPublicAPI exercises the root package exactly as README's quickstart
// does.
func TestPublicAPI(t *testing.T) {
	ops := NewOps(IntCmp[int64], SumAug[int64](), 0)
	m, err := NewMap(Config{Algorithm: "pswf", Procs: 2}, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Update(0, func(tx *Txn[int64, int64, int64]) {
		for i := int64(1); i <= 10; i++ {
			tx.Insert(i, i*i)
		}
	})
	m.Read(1, func(s Snapshot[int64, int64, int64]) {
		if got := s.AugRange(1, 10); got != 385 {
			t.Fatalf("Σ k² = %d, want 385", got)
		}
	})
	m.Close()
	if ops.Live() != 0 {
		t.Fatalf("leaked %d nodes", ops.Live())
	}
}

// TestPublicAPIInitialEntries checks the initial-version path and default
// algorithm selection.
func TestPublicAPIInitialEntries(t *testing.T) {
	ops := NewOps(IntCmp[uint64], NoAug[uint64, string](), 0)
	m, err := NewMap(Config{Procs: 1}, ops, []Entry[uint64, string]{
		{Key: 1, Val: "one"}, {Key: 2, Val: "two"}, {Key: 1, Val: "uno"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Algorithm() != "pswf" {
		t.Fatalf("default algorithm = %q", m.Algorithm())
	}
	m.Read(0, func(s Snapshot[uint64, string, struct{}]) {
		if v, _ := s.Get(1); v != "uno" {
			t.Fatalf("later duplicate should win: %q", v)
		}
		if s.Len() != 2 {
			t.Fatalf("Len = %d", s.Len())
		}
	})
	m.Close()
}

// TestPublicAPIConcurrent is a compact end-to-end: a writer and readers on
// the exported surface only.
func TestPublicAPIConcurrent(t *testing.T) {
	ops := NewOps(IntCmp[int64], MaxAug[int64](), 0)
	m, err := NewMap(Config{Procs: 4}, ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 2000; i++ {
			m.Update(0, func(tx *Txn[int64, int64, int64]) { tx.Insert(i%100, i) })
		}
		close(stop)
	}()
	for p := 1; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Read(p, func(s Snapshot[int64, int64, int64]) {
					if s.Len() > 100 {
						t.Errorf("more keys than possible: %d", s.Len())
					}
					_ = s.AugRange(0, 99)
				})
			}
		}(p)
	}
	wg.Wait()
	m.Close()
	if ops.Live() != 0 {
		t.Fatalf("leaked %d nodes", ops.Live())
	}
}

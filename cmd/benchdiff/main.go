// Command benchdiff compares two benchmark reports of the same schema and
// fails when any cell regressed by more than the tolerance.  CI runs it
// against the previous run's artifact so regressions block the merge
// instead of landing silently.  Two schemas are understood:
//
//   - BENCH_ycsb/v1 (cmd/ycsbbench -json): cells are (structure, workload)
//     throughputs; a regression is a Mops drop beyond the tolerance.
//   - BENCH_alloc/v1 (cmd/allocbench -json): cells are (path, recycle)
//     allocator measurements; a regression is a B/op increase beyond the
//     tolerance — and any increase from a 0 B/op baseline fails outright,
//     so the magazine allocator's zero-allocation write path is a CI
//     invariant, not a one-off measurement.
//
// Usage:
//
//	benchdiff -old prev/BENCH_ycsb.json -new BENCH_ycsb.json             # default 25% tolerance
//	benchdiff -old prev/BENCH_alloc.json -new BENCH_alloc.json -tolerance 0.10
//
// Exit status: 0 when every matching cell is within tolerance, 1 on
// regression, 2 on usage or schema errors.  Cells present in only one
// report are reported but do not fail the diff (cells come and go between
// PRs); a run-configuration mismatch (threads, records, duration, batch
// size) downgrades the diff to advisory — the numbers are not comparable,
// so regressions are printed but do not fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mvgc/internal/bench"
)

func decode(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func schemaOf(path string) (string, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := decode(path, &probe); err != nil {
		return "", err
	}
	return probe.Schema, nil
}

func main() {
	var (
		oldPath = flag.String("old", "", "baseline report (e.g. the previous CI run's artifact)")
		newPath = flag.String("new", "", "candidate report from this run")
		tol     = flag.Float64("tolerance", 0.25, "allowed fractional regression per cell")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldSchema, err := schemaOf(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newSchema, err := schemaOf(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if oldSchema != newSchema {
		fmt.Fprintf(os.Stderr, "benchdiff: schema mismatch: %q vs %q\n", oldSchema, newSchema)
		os.Exit(2)
	}
	switch oldSchema {
	case bench.YCSBSchema:
		diffYCSB(*oldPath, *newPath, *tol)
	case bench.AllocSchema:
		diffAlloc(*oldPath, *newPath, *tol)
	default:
		fmt.Fprintf(os.Stderr, "benchdiff: unknown schema %q (want %q or %q)\n",
			oldSchema, bench.YCSBSchema, bench.AllocSchema)
		os.Exit(2)
	}
}

func verdict(regressed, gate bool, tol float64, metric string) {
	switch {
	case regressed && gate:
		fmt.Printf("FAIL: at least one cell regressed more than %.0f%% (%s)\n", tol*100, metric)
		os.Exit(1)
	case regressed:
		fmt.Printf("PASS (ungated): regressions found but run configs differ\n")
	default:
		fmt.Printf("PASS: all matched cells within %.0f%% of baseline\n", tol*100)
	}
}

// diffYCSB gates on throughput: lower Mops is worse.
func diffYCSB(oldPath, newPath string, tol float64) {
	var oldR, newR bench.YCSBReport
	if err := decode(oldPath, &oldR); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if err := decode(newPath, &newR); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	gate := true
	if oldR.Threads != newR.Threads || oldR.Records != newR.Records || oldR.DurationSec != newR.DurationSec {
		// Mismatched measurements are not comparable, so don't gate on
		// them: e.g. the first CI run after a smoke-duration change would
		// otherwise fail against a baseline taken under different settings.
		gate = false
		fmt.Printf("warning: run configs differ (threads %d→%d, records %d→%d, dur %.2fs→%.2fs); numbers are indicative only, regressions will not fail the diff\n",
			oldR.Threads, newR.Threads, oldR.Records, newR.Records, oldR.DurationSec, newR.DurationSec)
	}

	key := func(r bench.YCSBRecord) string { return r.Structure + "/" + r.Workload }
	base := make(map[string]float64, len(oldR.Results))
	for _, r := range oldR.Results {
		base[key(r)] = r.Mops
	}
	regressed := false
	seen := make(map[string]bool, len(newR.Results))
	for _, r := range newR.Results {
		k := key(r)
		seen[k] = true
		old, ok := base[k]
		if !ok {
			fmt.Printf("new cell    %-24s %8.3f Mops (no baseline)\n", k, r.Mops)
			continue
		}
		delta := 0.0
		if old > 0 {
			delta = (r.Mops - old) / old
		}
		status := "ok        "
		if old > 0 && r.Mops < old*(1.0-tol) {
			status = "REGRESSED "
			regressed = true
		}
		fmt.Printf("%s %-24s %8.3f → %8.3f Mops (%+.1f%%)\n", status, k, old, r.Mops, delta*100)
	}
	for _, r := range oldR.Results {
		if k := key(r); !seen[k] {
			fmt.Printf("dropped     %-24s (was %.3f Mops)\n", k, r.Mops)
		}
	}
	verdict(regressed, gate, tol, "throughput drop")
}

// diffAlloc gates on write-path allocation: higher B/op is worse, and a
// cell whose baseline is 0 B/op must stay 0.
func diffAlloc(oldPath, newPath string, tol float64) {
	var oldR, newR bench.AllocReport
	if err := decode(oldPath, &oldR); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if err := decode(newPath, &newR); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	gate := true
	if oldR.Records != newR.Records || oldR.BatchSize != newR.BatchSize || oldR.Procs != newR.Procs {
		gate = false
		fmt.Printf("warning: run configs differ (records %d→%d, batch %d→%d, procs %d→%d); numbers are indicative only, regressions will not fail the diff\n",
			oldR.Records, newR.Records, oldR.BatchSize, newR.BatchSize, oldR.Procs, newR.Procs)
	}

	key := func(r bench.AllocRecord) string {
		return fmt.Sprintf("%s/recycle=%v", r.Path, r.Recycle)
	}
	base := make(map[string]int64, len(oldR.Results))
	for _, r := range oldR.Results {
		base[key(r)] = r.BPerOp
	}
	regressed := false
	seen := make(map[string]bool, len(newR.Results))
	for _, r := range newR.Results {
		k := key(r)
		seen[k] = true
		old, ok := base[k]
		if !ok {
			fmt.Printf("new cell    %-30s %8d B/op (no baseline)\n", k, r.BPerOp)
			continue
		}
		bad := false
		switch {
		case old == 0:
			bad = r.BPerOp > 0 // the zero-allocation invariant is absolute
		default:
			bad = float64(r.BPerOp) > float64(old)*(1.0+tol)
		}
		status := "ok        "
		if bad {
			status = "REGRESSED "
			regressed = true
		}
		fmt.Printf("%s %-30s %8d → %8d B/op\n", status, k, old, r.BPerOp)
	}
	for _, r := range oldR.Results {
		if k := key(r); !seen[k] {
			fmt.Printf("dropped     %-30s (was %d B/op)\n", k, r.BPerOp)
		}
	}
	verdict(regressed, gate, tol, "B/op increase")
}

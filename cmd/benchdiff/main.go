// Command benchdiff compares two BENCH_ycsb.json reports (the BENCH_ycsb/v1
// schema written by cmd/ycsbbench -json) and fails when any (structure,
// workload) cell regressed by more than the tolerance.  CI runs it against
// the previous run's artifact so throughput regressions block the merge
// instead of landing silently.
//
// Usage:
//
//	benchdiff -old prev/BENCH_ycsb.json -new BENCH_ycsb.json            # default 25% tolerance
//	benchdiff -old prev.json -new cur.json -tolerance 0.10
//
// Exit status: 0 when every matching cell is within tolerance, 1 on
// regression, 2 on usage or schema errors.  Cells present in only one
// report are reported but do not fail the diff (structures come and go
// between PRs); a run-configuration mismatch (threads, records, duration)
// downgrades the diff to advisory — the numbers are not comparable, so
// regressions are printed but do not fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mvgc/internal/bench"
)

func load(path string) (*bench.YCSBReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r bench.YCSBReport
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != bench.YCSBSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, bench.YCSBSchema)
	}
	return &r, nil
}

func cellKey(r bench.YCSBRecord) string { return r.Structure + "/" + r.Workload }

func main() {
	var (
		oldPath = flag.String("old", "", "baseline BENCH_ycsb.json (e.g. the previous CI run's artifact)")
		newPath = flag.String("new", "", "candidate BENCH_ycsb.json from this run")
		tol     = flag.Float64("tolerance", 0.25, "allowed fractional throughput drop per cell")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldR, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newR, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	gate := true
	if oldR.Threads != newR.Threads || oldR.Records != newR.Records || oldR.DurationSec != newR.DurationSec {
		// Mismatched measurements are not comparable, so don't gate on
		// them: e.g. the first CI run after a smoke-duration change would
		// otherwise fail against a baseline taken under different settings.
		gate = false
		fmt.Printf("warning: run configs differ (threads %d→%d, records %d→%d, dur %.2fs→%.2fs); numbers are indicative only, regressions will not fail the diff\n",
			oldR.Threads, newR.Threads, oldR.Records, newR.Records, oldR.DurationSec, newR.DurationSec)
	}

	base := make(map[string]float64, len(oldR.Results))
	for _, r := range oldR.Results {
		base[cellKey(r)] = r.Mops
	}
	regressed := false
	seen := make(map[string]bool, len(newR.Results))
	for _, r := range newR.Results {
		k := cellKey(r)
		seen[k] = true
		old, ok := base[k]
		if !ok {
			fmt.Printf("new cell    %-24s %8.3f Mops (no baseline)\n", k, r.Mops)
			continue
		}
		delta := 0.0
		if old > 0 {
			delta = (r.Mops - old) / old
		}
		status := "ok        "
		if old > 0 && r.Mops < old*(1.0-*tol) {
			status = "REGRESSED "
			regressed = true
		}
		fmt.Printf("%s %-24s %8.3f → %8.3f Mops (%+.1f%%)\n", status, k, old, r.Mops, delta*100)
	}
	for _, r := range oldR.Results {
		if k := cellKey(r); !seen[k] {
			fmt.Printf("dropped     %-24s (was %.3f Mops)\n", k, r.Mops)
		}
	}
	switch {
	case regressed && gate:
		fmt.Printf("FAIL: at least one cell dropped more than %.0f%%\n", *tol*100)
		os.Exit(1)
	case regressed:
		fmt.Printf("PASS (ungated): regressions found but run configs differ\n")
	default:
		fmt.Printf("PASS: all matched cells within %.0f%% of baseline\n", *tol*100)
	}
}

// Command benchdiff compares two benchmark reports of the same schema and
// fails when any cell regressed by more than the tolerance.  CI runs it
// against the previous run's artifact so regressions block the merge
// instead of landing silently.  Four schemas are understood:
//
//   - BENCH_ycsb/v1 (cmd/ycsbbench -json): cells are (structure, workload)
//     throughputs; a regression is a Mops drop beyond the tolerance.
//   - BENCH_alloc/v1 (cmd/allocbench -json): cells are (path, recycle)
//     allocator measurements; a regression is a B/op increase beyond the
//     tolerance — and any increase from a 0 B/op baseline fails outright,
//     so the magazine allocator's zero-allocation write path is a CI
//     invariant, not a one-off measurement.
//   - BENCH_net/v1 (cmd/netbench -json): cells are (conns, depth) points of
//     the serving-layer sweep (the SCAN-mix and replication cells key
//     separately via their scan fraction / repl marker); a regression is an
//     ops/s drop OR a commits-per-op increase beyond the tolerance, so both
//     the front door's throughput and its write-coalescing property gate
//     the merge.  Replication lag is reported for context, not gated.
//   - BENCH_mem/v1 (cmd/ycsbbench -longreader -memjson): cells are
//     per-GC-algorithm long-reader storm measurements; a regression is a
//     peak-retained-versions increase OR a write-throughput drop beyond
//     the tolerance, so the space bound under a pinned snapshot gates the
//     merge alongside its cost.
//
// Usage:
//
//	benchdiff -old prev/BENCH_ycsb.json -new BENCH_ycsb.json             # default 25% tolerance
//	benchdiff -old prev/BENCH_alloc.json -new BENCH_alloc.json -tolerance 0.10
//
// Exit status: 0 when every matching cell is within tolerance, 1 on
// regression, 2 on usage or schema errors.  Two classes of difference are
// deliberately advisory, never errors:
//
//   - Cells present in only one report ("new cell" / "dropped").  Cells
//     come and go between PRs — the first run after a PR adds a workload
//     (e.g. txn-occ) has no baseline for it, and failing the gate on that
//     would punish adding coverage.
//   - A run-configuration mismatch (threads, records, duration, batch
//     size): the numbers are not comparable, so the whole diff downgrades
//     to advisory — regressions are printed but do not fail the run.
//
// When $GITHUB_STEP_SUMMARY is set (GitHub Actions), the diff table is also
// appended there as Markdown, so the comparison is readable from the run's
// summary page without digging through logs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mvgc/internal/bench"
)

// cellDiff is one row of a diff: a cell's status plus its formatted old and
// new readings.
type cellDiff struct {
	Status string // "ok", "REGRESSED", "new cell", "dropped"
	Cell   string
	Old    string // empty for new cells
	New    string // empty for dropped cells
	Delta  string // empty where no pair exists
}

// diffResult is a whole comparison, renderable as text or Markdown and
// reducible to an exit code; the diff functions are pure so tests can pin
// the advisory rules without spawning the binary.
type diffResult struct {
	Title     string
	Rows      []cellDiff
	Notes     []string // advisory warnings (e.g. config mismatch)
	Regressed bool     // at least one matched cell beyond tolerance
	Gate      bool     // false: configs differ, regressions are advisory
	Tolerance float64
	Metric    string // what a regression means, for the verdict line
}

// verdict renders the one-line outcome.
func (d *diffResult) verdict() string {
	switch {
	case d.Regressed && d.Gate:
		return fmt.Sprintf("FAIL: at least one cell regressed more than %.0f%% (%s)", d.Tolerance*100, d.Metric)
	case d.Regressed:
		return "PASS (ungated): regressions found but run configs differ"
	default:
		return fmt.Sprintf("PASS: all matched cells within %.0f%% of baseline", d.Tolerance*100)
	}
}

// exitCode maps the outcome onto the documented exit statuses.
func (d *diffResult) exitCode() int {
	if d.Regressed && d.Gate {
		return 1
	}
	return 0
}

// renderText writes the classic log format.
func (d *diffResult) renderText(w io.Writer) {
	for _, n := range d.Notes {
		fmt.Fprintf(w, "warning: %s\n", n)
	}
	for _, r := range d.Rows {
		switch r.Status {
		case "new cell":
			fmt.Fprintf(w, "new cell    %-30s %s (no baseline)\n", r.Cell, r.New)
		case "dropped":
			fmt.Fprintf(w, "dropped     %-30s (was %s)\n", r.Cell, r.Old)
		default:
			fmt.Fprintf(w, "%-11s %-30s %s → %s %s\n", r.Status, r.Cell, r.Old, r.New, r.Delta)
		}
	}
	fmt.Fprintln(w, d.verdict())
}

// renderMarkdown writes the diff as a GitHub-flavored table for
// $GITHUB_STEP_SUMMARY.
func (d *diffResult) renderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s\n\n", d.Title)
	for _, n := range d.Notes {
		fmt.Fprintf(w, "> ⚠️ %s\n\n", n)
	}
	fmt.Fprintln(w, "| status | cell | baseline | current | delta |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	for _, r := range d.Rows {
		status := r.Status
		if status == "REGRESSED" {
			status = "**REGRESSED**"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n", status, r.Cell, r.Old, r.New, r.Delta)
	}
	fmt.Fprintf(w, "\n**%s**\n\n", d.verdict())
}

// diffYCSB gates on throughput: lower Mops is worse.
func diffYCSB(oldR, newR bench.YCSBReport, tol float64) *diffResult {
	d := &diffResult{Title: "YCSB throughput diff (" + bench.YCSBSchema + ")",
		Gate: true, Tolerance: tol, Metric: "throughput drop"}
	if oldR.Threads != newR.Threads || oldR.Records != newR.Records || oldR.DurationSec != newR.DurationSec {
		// Mismatched measurements are not comparable, so don't gate on
		// them: e.g. the first CI run after a smoke-duration change would
		// otherwise fail against a baseline taken under different settings.
		d.Gate = false
		d.Notes = append(d.Notes, fmt.Sprintf(
			"run configs differ (threads %d→%d, records %d→%d, dur %.2fs→%.2fs); numbers are indicative only, regressions will not fail the diff",
			oldR.Threads, newR.Threads, oldR.Records, newR.Records, oldR.DurationSec, newR.DurationSec))
	}

	key := func(r bench.YCSBRecord) string {
		k := r.Structure + "/" + r.Workload
		if r.WAL {
			// WAL cells key separately from their in-memory twins; plain
			// cells keep their pre-WAL keys, so old baselines still match
			// and a first -wal run surfaces as advisory "new cell" rows.
			k += "/wal"
		}
		return k
	}
	base := make(map[string]float64, len(oldR.Results))
	for _, r := range oldR.Results {
		base[key(r)] = r.Mops
	}
	seen := make(map[string]bool, len(newR.Results))
	for _, r := range newR.Results {
		k := key(r)
		seen[k] = true
		old, ok := base[k]
		if !ok {
			d.Rows = append(d.Rows, cellDiff{Status: "new cell", Cell: k, New: fmt.Sprintf("%8.3f Mops", r.Mops)})
			continue
		}
		delta := 0.0
		if old > 0 {
			delta = (r.Mops - old) / old
		}
		status := "ok"
		if old > 0 && r.Mops < old*(1.0-tol) {
			status = "REGRESSED"
			d.Regressed = true
		}
		d.Rows = append(d.Rows, cellDiff{Status: status, Cell: k,
			Old: fmt.Sprintf("%8.3f Mops", old), New: fmt.Sprintf("%8.3f Mops", r.Mops),
			Delta: fmt.Sprintf("(%+.1f%%)", delta*100)})
	}
	for _, r := range oldR.Results {
		if k := key(r); !seen[k] {
			d.Rows = append(d.Rows, cellDiff{Status: "dropped", Cell: k, Old: fmt.Sprintf("%.3f Mops", r.Mops)})
		}
	}
	return d
}

// diffAlloc gates on write-path allocation: higher B/op is worse, and a
// cell whose baseline is 0 B/op must stay 0.
func diffAlloc(oldR, newR bench.AllocReport, tol float64) *diffResult {
	d := &diffResult{Title: "Allocator diff (" + bench.AllocSchema + ")",
		Gate: true, Tolerance: tol, Metric: "B/op increase"}
	if oldR.Records != newR.Records || oldR.BatchSize != newR.BatchSize || oldR.Procs != newR.Procs {
		d.Gate = false
		d.Notes = append(d.Notes, fmt.Sprintf(
			"run configs differ (records %d→%d, batch %d→%d, procs %d→%d); numbers are indicative only, regressions will not fail the diff",
			oldR.Records, newR.Records, oldR.BatchSize, newR.BatchSize, oldR.Procs, newR.Procs))
	}

	key := func(r bench.AllocRecord) string {
		return fmt.Sprintf("%s/recycle=%v", r.Path, r.Recycle)
	}
	base := make(map[string]int64, len(oldR.Results))
	for _, r := range oldR.Results {
		base[key(r)] = r.BPerOp
	}
	seen := make(map[string]bool, len(newR.Results))
	for _, r := range newR.Results {
		k := key(r)
		seen[k] = true
		old, ok := base[k]
		if !ok {
			d.Rows = append(d.Rows, cellDiff{Status: "new cell", Cell: k, New: fmt.Sprintf("%8d B/op", r.BPerOp)})
			continue
		}
		status := "ok"
		bad := false
		switch {
		case old == 0:
			bad = r.BPerOp > 0 // the zero-allocation invariant is absolute
		default:
			bad = float64(r.BPerOp) > float64(old)*(1.0+tol)
		}
		if bad {
			status = "REGRESSED"
			d.Regressed = true
		}
		d.Rows = append(d.Rows, cellDiff{Status: status, Cell: k,
			Old: fmt.Sprintf("%8d B/op", old), New: fmt.Sprintf("%8d B/op", r.BPerOp)})
	}
	for _, r := range oldR.Results {
		if k := key(r); !seen[k] {
			d.Rows = append(d.Rows, cellDiff{Status: "dropped", Cell: k, Old: fmt.Sprintf("%d B/op", r.BPerOp)})
		}
	}
	return d
}

// diffNet gates on the serving layer's two headline numbers per (conns,
// depth) cell: lower ops/s is worse, and higher commits-per-op is worse —
// a coalescing regression (more combiner commits for the same traffic) is
// a regression even if throughput happens to hold.
func diffNet(oldR, newR bench.NetReport, tol float64) *diffResult {
	d := &diffResult{Title: "Serving-layer diff (" + bench.NetSchema + ")",
		Gate: true, Tolerance: tol, Metric: "ops/s drop or commits/op increase"}
	if oldR.Shards != newR.Shards || oldR.WriteFrac != newR.WriteFrac ||
		oldR.Keys != newR.Keys || oldR.DurationSec != newR.DurationSec {
		d.Gate = false
		d.Notes = append(d.Notes, fmt.Sprintf(
			"run configs differ (shards %d→%d, writefrac %.2f→%.2f, keys %d→%d, dur %.2fs→%.2fs); numbers are indicative only, regressions will not fail the diff",
			oldR.Shards, newR.Shards, oldR.WriteFrac, newR.WriteFrac,
			oldR.Keys, newR.Keys, oldR.DurationSec, newR.DurationSec))
	}

	key := func(r bench.NetRecord) string {
		k := fmt.Sprintf("conns=%d/depth=%d", r.Conns, r.Depth)
		if r.ScanFrac > 0 {
			// The scan cell keys separately from the GET/SET cell at the
			// same sweep point; plain cells keep their pre-scan keys so old
			// baselines still match.
			k += fmt.Sprintf("/scan=%.2f", r.ScanFrac)
		}
		if r.Repl {
			// Likewise the replication cell: same sweep point, different
			// server (WAL-backed leader with a live follower attached).
			k += "/repl"
		}
		return k
	}
	fmtCell := func(r bench.NetRecord) string {
		s := fmt.Sprintf("%9.0f ops/s %6.4f c/op", r.OpsPerSec, r.CommitsPerOp)
		if r.Repl {
			// Lag is printed for context but not gated: visibility round
			// trips on shared runners are dominated by scheduler noise.
			s += fmt.Sprintf(" lag %.0fus", r.ReplLagP50Us)
		}
		return s
	}
	base := make(map[string]bench.NetRecord, len(oldR.Results))
	for _, r := range oldR.Results {
		base[key(r)] = r
	}
	seen := make(map[string]bool, len(newR.Results))
	for _, r := range newR.Results {
		k := key(r)
		seen[k] = true
		old, ok := base[k]
		if !ok {
			d.Rows = append(d.Rows, cellDiff{Status: "new cell", Cell: k, New: fmtCell(r)})
			continue
		}
		delta := 0.0
		if old.OpsPerSec > 0 {
			delta = (r.OpsPerSec - old.OpsPerSec) / old.OpsPerSec
		}
		status := "ok"
		slow := old.OpsPerSec > 0 && r.OpsPerSec < old.OpsPerSec*(1.0-tol)
		uncoalesced := old.CommitsPerOp > 0 && r.CommitsPerOp > old.CommitsPerOp*(1.0+tol)
		if slow || uncoalesced {
			status = "REGRESSED"
			d.Regressed = true
		}
		d.Rows = append(d.Rows, cellDiff{Status: status, Cell: k,
			Old: fmtCell(old), New: fmtCell(r), Delta: fmt.Sprintf("(%+.1f%% ops/s)", delta*100)})
	}
	for _, r := range oldR.Results {
		if k := key(r); !seen[k] {
			d.Rows = append(d.Rows, cellDiff{Status: "dropped", Cell: k, Old: fmtCell(r)})
		}
	}
	return d
}

// diffMem gates on the long-reader storm's two headline numbers per
// algorithm cell: a higher peak retained-version count is worse (the
// space bound eroding), and lower write Mops is worse (the storm's
// throughput while contending with the pinned snapshot).  Peak heap is
// printed for context but not gated — it tracks peak versions and is far
// noisier (GC pacing, sampler timing).
func diffMem(oldR, newR bench.MemReport, tol float64) *diffResult {
	d := &diffResult{Title: "Long-reader space diff (" + bench.MemSchema + ")",
		Gate: true, Tolerance: tol, Metric: "peak-versions increase or write-throughput drop"}
	if oldR.Records != newR.Records || oldR.Writers != newR.Writers || oldR.OpsPerWriter != newR.OpsPerWriter {
		d.Gate = false
		d.Notes = append(d.Notes, fmt.Sprintf(
			"run configs differ (records %d→%d, writers %d→%d, ops/writer %d→%d); numbers are indicative only, regressions will not fail the diff",
			oldR.Records, newR.Records, oldR.Writers, newR.Writers, oldR.OpsPerWriter, newR.OpsPerWriter))
	}

	fmtCell := func(r bench.MemRecord) string {
		return fmt.Sprintf("%8d vers %6.1f MiB %6.3f Mops", r.PeakVersions, float64(r.PeakHeapBytes)/(1<<20), r.WriteMops)
	}
	base := make(map[string]bench.MemRecord, len(oldR.Results))
	for _, r := range oldR.Results {
		base[r.Algorithm] = r
	}
	seen := make(map[string]bool, len(newR.Results))
	for _, r := range newR.Results {
		seen[r.Algorithm] = true
		old, ok := base[r.Algorithm]
		if !ok {
			d.Rows = append(d.Rows, cellDiff{Status: "new cell", Cell: r.Algorithm, New: fmtCell(r)})
			continue
		}
		delta := 0.0
		if old.PeakVersions > 0 {
			delta = float64(r.PeakVersions-old.PeakVersions) / float64(old.PeakVersions)
		}
		status := "ok"
		bloated := old.PeakVersions > 0 && float64(r.PeakVersions) > float64(old.PeakVersions)*(1.0+tol)
		slow := old.WriteMops > 0 && r.WriteMops < old.WriteMops*(1.0-tol)
		if bloated || slow {
			status = "REGRESSED"
			d.Regressed = true
		}
		d.Rows = append(d.Rows, cellDiff{Status: status, Cell: r.Algorithm,
			Old: fmtCell(old), New: fmtCell(r), Delta: fmt.Sprintf("(%+.1f%% vers)", delta*100)})
	}
	for _, r := range oldR.Results {
		if !seen[r.Algorithm] {
			d.Rows = append(d.Rows, cellDiff{Status: "dropped", Cell: r.Algorithm, Old: fmtCell(r)})
		}
	}
	return d
}

func decode(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func schemaOf(path string) (string, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := decode(path, &probe); err != nil {
		return "", err
	}
	return probe.Schema, nil
}

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"benchdiff:"}, args...)...)
	os.Exit(2)
}

func main() {
	var (
		oldPath = flag.String("old", "", "baseline report (e.g. the previous CI run's artifact)")
		newPath = flag.String("new", "", "candidate report from this run")
		tol     = flag.Float64("tolerance", 0.25, "allowed fractional regression per cell")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fatal("-old and -new are required")
	}
	oldSchema, err := schemaOf(*oldPath)
	if err != nil {
		fatal(err)
	}
	newSchema, err := schemaOf(*newPath)
	if err != nil {
		fatal(err)
	}
	if oldSchema != newSchema {
		fatal(fmt.Sprintf("schema mismatch: %q vs %q", oldSchema, newSchema))
	}

	var d *diffResult
	switch oldSchema {
	case bench.YCSBSchema:
		var oldR, newR bench.YCSBReport
		if err := decode(*oldPath, &oldR); err != nil {
			fatal(err)
		}
		if err := decode(*newPath, &newR); err != nil {
			fatal(err)
		}
		d = diffYCSB(oldR, newR, *tol)
	case bench.AllocSchema:
		var oldR, newR bench.AllocReport
		if err := decode(*oldPath, &oldR); err != nil {
			fatal(err)
		}
		if err := decode(*newPath, &newR); err != nil {
			fatal(err)
		}
		d = diffAlloc(oldR, newR, *tol)
	case bench.NetSchema:
		var oldR, newR bench.NetReport
		if err := decode(*oldPath, &oldR); err != nil {
			fatal(err)
		}
		if err := decode(*newPath, &newR); err != nil {
			fatal(err)
		}
		d = diffNet(oldR, newR, *tol)
	case bench.MemSchema:
		var oldR, newR bench.MemReport
		if err := decode(*oldPath, &oldR); err != nil {
			fatal(err)
		}
		if err := decode(*newPath, &newR); err != nil {
			fatal(err)
		}
		d = diffMem(oldR, newR, *tol)
	default:
		fatal(fmt.Sprintf("unknown schema %q (want %q, %q, %q or %q)", oldSchema, bench.YCSBSchema, bench.AllocSchema, bench.NetSchema, bench.MemSchema))
	}

	d.renderText(os.Stdout)
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: step summary:", err)
		} else {
			d.renderMarkdown(f)
			f.Close()
		}
	}
	os.Exit(d.exitCode())
}

package main

import (
	"strings"
	"testing"

	"mvgc/internal/bench"
)

func ycsbReport(cells map[string]float64) bench.YCSBReport {
	r := bench.YCSBReport{Threads: 4, Records: 50000, DurationSec: 1}
	for k, mops := range cells {
		parts := strings.SplitN(k, "/", 2)
		r.Results = append(r.Results, bench.YCSBRecord{Structure: parts[0], Workload: parts[1], Mops: mops})
	}
	return r
}

// TestYCSBNewCellAdvisory pins the rule that makes adding a workload safe:
// a cell present in -new but absent in -old (the first run after txn-occ
// landed, say) is reported as "new cell" and never fails the gate.
func TestYCSBNewCellAdvisory(t *testing.T) {
	oldR := ycsbReport(map[string]float64{"ours-sharded/txn-atomic": 1.0})
	newR := ycsbReport(map[string]float64{"ours-sharded/txn-atomic": 1.0, "ours-sharded/txn-occ": 0.8})
	d := diffYCSB(oldR, newR, 0.25)
	if d.Regressed || d.exitCode() != 0 {
		t.Fatalf("new cell must be advisory: regressed=%v exit=%d", d.Regressed, d.exitCode())
	}
	found := false
	for _, r := range d.Rows {
		if r.Cell == "ours-sharded/txn-occ" {
			found = true
			if r.Status != "new cell" {
				t.Fatalf("txn-occ status = %q, want \"new cell\"", r.Status)
			}
		}
	}
	if !found {
		t.Fatal("new cell not reported at all")
	}
}

// TestYCSBDroppedCellAdvisory: the mirror image — a cell that vanished is
// reported but does not fail.
func TestYCSBDroppedCellAdvisory(t *testing.T) {
	oldR := ycsbReport(map[string]float64{"ours/A": 1.0, "ours/B": 2.0})
	newR := ycsbReport(map[string]float64{"ours/A": 1.0})
	d := diffYCSB(oldR, newR, 0.25)
	if d.Regressed || d.exitCode() != 0 {
		t.Fatalf("dropped cell must be advisory: exit=%d", d.exitCode())
	}
}

// TestYCSBRegressionGates: a matched cell beyond tolerance fails with
// matching configs.
func TestYCSBRegressionGates(t *testing.T) {
	oldR := ycsbReport(map[string]float64{"ours/A": 1.0})
	newR := ycsbReport(map[string]float64{"ours/A": 0.5})
	d := diffYCSB(oldR, newR, 0.25)
	if !d.Regressed || d.exitCode() != 1 {
		t.Fatalf("50%% drop must gate: regressed=%v exit=%d", d.Regressed, d.exitCode())
	}
}

// TestYCSBConfigMismatchDowngrade: differing run configs make even a large
// regression advisory — the numbers are not comparable.
func TestYCSBConfigMismatchDowngrade(t *testing.T) {
	oldR := ycsbReport(map[string]float64{"ours/A": 1.0})
	newR := ycsbReport(map[string]float64{"ours/A": 0.1})
	newR.Records = 500000 // nightly-scale run vs smoke baseline
	d := diffYCSB(oldR, newR, 0.25)
	if !d.Regressed {
		t.Fatal("the drop should still be reported as a regression")
	}
	if d.Gate || d.exitCode() != 0 {
		t.Fatalf("config mismatch must downgrade to advisory: gate=%v exit=%d", d.Gate, d.exitCode())
	}
	if len(d.Notes) == 0 || !strings.Contains(d.Notes[0], "run configs differ") {
		t.Fatalf("missing config-mismatch warning: %v", d.Notes)
	}
}

// TestAllocZeroInvariantAbsolute: any increase from a 0 B/op baseline fails
// regardless of tolerance; a new alloc cell stays advisory.
func TestAllocZeroInvariantAbsolute(t *testing.T) {
	oldR := bench.AllocReport{Records: 1, BatchSize: 1, Procs: 1, Results: []bench.AllocRecord{
		{Path: "point-update", Recycle: true, BPerOp: 0},
	}}
	newR := bench.AllocReport{Records: 1, BatchSize: 1, Procs: 1, Results: []bench.AllocRecord{
		{Path: "point-update", Recycle: true, BPerOp: 1},
		{Path: "point-update-occ", Recycle: true, BPerOp: 16},
	}}
	d := diffAlloc(oldR, newR, 0.25)
	if !d.Regressed || d.exitCode() != 1 {
		t.Fatalf("1 B/op over a zero baseline must fail: exit=%d", d.exitCode())
	}
	for _, r := range d.Rows {
		if r.Cell == "point-update-occ/recycle=true" && r.Status != "new cell" {
			t.Fatalf("unmatched alloc cell status = %q, want \"new cell\"", r.Status)
		}
	}
}

// TestAllocConfigMismatchDowngrade mirrors the YCSB downgrade for the
// allocator schema.
func TestAllocConfigMismatchDowngrade(t *testing.T) {
	oldR := bench.AllocReport{Records: 50000, BatchSize: 1000, Procs: 4, Results: []bench.AllocRecord{
		{Path: "point-update", Recycle: true, BPerOp: 0},
	}}
	newR := bench.AllocReport{Records: 200000, BatchSize: 1000, Procs: 4, Results: []bench.AllocRecord{
		{Path: "point-update", Recycle: true, BPerOp: 64},
	}}
	d := diffAlloc(oldR, newR, 0.25)
	if !d.Regressed || d.Gate || d.exitCode() != 0 {
		t.Fatalf("mismatched alloc configs must be advisory: regressed=%v gate=%v exit=%d",
			d.Regressed, d.Gate, d.exitCode())
	}
}

func netReport(cells []bench.NetRecord) bench.NetReport {
	return bench.NetReport{Shards: 4, WriteFrac: 1.0, Keys: 100000, DurationSec: 2, Results: cells}
}

// TestNetThroughputRegressionGates: a matched serving-layer cell whose
// ops/s dropped beyond tolerance fails the gate.
func TestNetThroughputRegressionGates(t *testing.T) {
	oldR := netReport([]bench.NetRecord{{Conns: 16, Depth: 8, OpsPerSec: 100000, CommitsPerOp: 0.05}})
	newR := netReport([]bench.NetRecord{{Conns: 16, Depth: 8, OpsPerSec: 50000, CommitsPerOp: 0.05}})
	d := diffNet(oldR, newR, 0.25)
	if !d.Regressed || d.exitCode() != 1 {
		t.Fatalf("50%% ops/s drop must gate: regressed=%v exit=%d", d.Regressed, d.exitCode())
	}
}

// TestNetCoalescingRegressionGates: commits-per-op growing past tolerance
// fails even when throughput held — the coalescing property is gated in
// its own right.
func TestNetCoalescingRegressionGates(t *testing.T) {
	oldR := netReport([]bench.NetRecord{{Conns: 16, Depth: 8, OpsPerSec: 100000, CommitsPerOp: 0.05}})
	newR := netReport([]bench.NetRecord{{Conns: 16, Depth: 8, OpsPerSec: 110000, CommitsPerOp: 0.50}})
	d := diffNet(oldR, newR, 0.25)
	if !d.Regressed || d.exitCode() != 1 {
		t.Fatalf("10x commits/op must gate despite faster ops/s: exit=%d", d.exitCode())
	}
}

// TestNetWithinToleranceOK: jitter inside the tolerance band on both
// metrics passes, and new/dropped sweep points stay advisory.
func TestNetWithinToleranceOK(t *testing.T) {
	oldR := netReport([]bench.NetRecord{
		{Conns: 16, Depth: 8, OpsPerSec: 100000, CommitsPerOp: 0.050},
		{Conns: 1, Depth: 1, OpsPerSec: 5000, CommitsPerOp: 1.0},
	})
	newR := netReport([]bench.NetRecord{
		{Conns: 16, Depth: 8, OpsPerSec: 90000, CommitsPerOp: 0.055},
		{Conns: 64, Depth: 64, OpsPerSec: 400000, CommitsPerOp: 0.01},
	})
	d := diffNet(oldR, newR, 0.25)
	if d.Regressed || d.exitCode() != 0 {
		t.Fatalf("in-tolerance diff must pass: regressed=%v exit=%d", d.Regressed, d.exitCode())
	}
	var statuses []string
	for _, r := range d.Rows {
		statuses = append(statuses, r.Status)
	}
	joined := strings.Join(statuses, ",")
	if !strings.Contains(joined, "new cell") || !strings.Contains(joined, "dropped") {
		t.Fatalf("sweep-point churn not reported: %v", statuses)
	}
}

// TestNetConfigMismatchDowngrade mirrors the YCSB downgrade for the
// serving-layer schema.
func TestNetConfigMismatchDowngrade(t *testing.T) {
	oldR := netReport([]bench.NetRecord{{Conns: 16, Depth: 8, OpsPerSec: 100000, CommitsPerOp: 0.05}})
	newR := netReport([]bench.NetRecord{{Conns: 16, Depth: 8, OpsPerSec: 10000, CommitsPerOp: 0.9}})
	newR.Shards = 8 // sweep re-tuned: not comparable
	d := diffNet(oldR, newR, 0.25)
	if !d.Regressed {
		t.Fatal("the drop should still be reported as a regression")
	}
	if d.Gate || d.exitCode() != 0 {
		t.Fatalf("config mismatch must downgrade to advisory: gate=%v exit=%d", d.Gate, d.exitCode())
	}
	if len(d.Notes) == 0 || !strings.Contains(d.Notes[0], "run configs differ") {
		t.Fatalf("missing config-mismatch warning: %v", d.Notes)
	}
}

func memReport(cells []bench.MemRecord) bench.MemReport {
	return bench.MemReport{Records: 100000, Writers: 4, OpsPerWriter: 200000, Results: cells}
}

// TestMemVersionsRegressionGates: a matched algorithm cell whose peak
// retained-version count grew beyond tolerance fails the gate — the space
// bound eroding is the regression this schema exists to catch.
func TestMemVersionsRegressionGates(t *testing.T) {
	oldR := memReport([]bench.MemRecord{{Algorithm: "sbgc", PeakVersions: 16, PeakHeapBytes: 5 << 20, WriteMops: 0.6}})
	newR := memReport([]bench.MemRecord{{Algorithm: "sbgc", PeakVersions: 4000, PeakHeapBytes: 40 << 20, WriteMops: 0.6}})
	d := diffMem(oldR, newR, 0.25)
	if !d.Regressed || d.exitCode() != 1 {
		t.Fatalf("peak-versions blowup must gate: regressed=%v exit=%d", d.Regressed, d.exitCode())
	}
}

// TestMemThroughputRegressionGates: write throughput collapsing past
// tolerance fails even when the space bound held — a compactor that holds
// the plateau by stalling writers is a regression in its own right.
func TestMemThroughputRegressionGates(t *testing.T) {
	oldR := memReport([]bench.MemRecord{{Algorithm: "sbgc", PeakVersions: 16, PeakHeapBytes: 5 << 20, WriteMops: 0.6}})
	newR := memReport([]bench.MemRecord{{Algorithm: "sbgc", PeakVersions: 14, PeakHeapBytes: 5 << 20, WriteMops: 0.2}})
	d := diffMem(oldR, newR, 0.25)
	if !d.Regressed || d.exitCode() != 1 {
		t.Fatalf("3x write-throughput drop must gate despite fewer versions: exit=%d", d.exitCode())
	}
}

// TestMemWithinToleranceOK: jitter inside the band passes (including a
// peak-version improvement and the epoch cell's huge-but-stable count),
// and algorithm churn stays advisory.
func TestMemWithinToleranceOK(t *testing.T) {
	oldR := memReport([]bench.MemRecord{
		{Algorithm: "sbgc", PeakVersions: 16, PeakHeapBytes: 5 << 20, WriteMops: 0.6},
		{Algorithm: "epoch", PeakVersions: 800000, PeakHeapBytes: 80 << 20, WriteMops: 0.3},
		{Algorithm: "rcu", PeakVersions: 2, PeakHeapBytes: 4 << 20, WriteMops: 0.1},
	})
	newR := memReport([]bench.MemRecord{
		{Algorithm: "sbgc", PeakVersions: 13, PeakHeapBytes: 5 << 20, WriteMops: 0.55},
		{Algorithm: "epoch", PeakVersions: 800003, PeakHeapBytes: 82 << 20, WriteMops: 0.31},
		{Algorithm: "hp", PeakVersions: 12, PeakHeapBytes: 5 << 20, WriteMops: 0.7},
	})
	d := diffMem(oldR, newR, 0.25)
	if d.Regressed || d.exitCode() != 0 {
		t.Fatalf("in-tolerance diff must pass: regressed=%v exit=%d", d.Regressed, d.exitCode())
	}
	var statuses []string
	for _, r := range d.Rows {
		statuses = append(statuses, r.Status)
	}
	joined := strings.Join(statuses, ",")
	if !strings.Contains(joined, "new cell") || !strings.Contains(joined, "dropped") {
		t.Fatalf("algorithm churn not reported: %v", statuses)
	}
}

// TestMemConfigMismatchDowngrade mirrors the other schemas' downgrade: a
// storm re-tuned (different writers or op count) produces incomparable
// peaks, so regressions print but do not fail.
func TestMemConfigMismatchDowngrade(t *testing.T) {
	oldR := memReport([]bench.MemRecord{{Algorithm: "sbgc", PeakVersions: 16, PeakHeapBytes: 5 << 20, WriteMops: 0.6}})
	newR := memReport([]bench.MemRecord{{Algorithm: "sbgc", PeakVersions: 64, PeakHeapBytes: 20 << 20, WriteMops: 0.6}})
	newR.Writers = 16 // storm re-tuned: not comparable
	d := diffMem(oldR, newR, 0.25)
	if !d.Regressed {
		t.Fatal("the blowup should still be reported as a regression")
	}
	if d.Gate || d.exitCode() != 0 {
		t.Fatalf("config mismatch must downgrade to advisory: gate=%v exit=%d", d.Gate, d.exitCode())
	}
	if len(d.Notes) == 0 || !strings.Contains(d.Notes[0], "run configs differ") {
		t.Fatalf("missing config-mismatch warning: %v", d.Notes)
	}
}

// TestRenderMarkdown sanity-checks the step-summary table shape.
func TestRenderMarkdown(t *testing.T) {
	oldR := ycsbReport(map[string]float64{"ours/A": 1.0})
	newR := ycsbReport(map[string]float64{"ours/A": 0.5, "ours/B": 2.0})
	d := diffYCSB(oldR, newR, 0.25)
	var sb strings.Builder
	d.renderMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{
		"| status | cell | baseline | current | delta |",
		"**REGRESSED**",
		"new cell",
		"FAIL:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown summary missing %q in:\n%s", want, out)
		}
	}
}

// TestYCSBWALCellKeying pins satellite rules for the durability cells:
// WAL cells key with a "/wal" suffix so (1) a pre-WAL baseline still
// matches every plain cell byte-for-byte, (2) first-appearance WAL cells
// are advisory "new cell" rows, and (3) once baselined, a WAL-cell
// regression gates like any other.
func TestYCSBWALCellKeying(t *testing.T) {
	oldR := ycsbReport(map[string]float64{"ours-sharded/A": 2.0})
	newR := ycsbReport(map[string]float64{"ours-sharded/A": 2.0})
	newR.Results = append(newR.Results,
		bench.YCSBRecord{Structure: "ours-sharded", Workload: "A", Mops: 0.4, WAL: true})

	d := diffYCSB(oldR, newR, 0.25)
	if d.Regressed || d.exitCode() != 0 {
		t.Fatalf("first WAL cell must be advisory: regressed=%v exit=%d", d.Regressed, d.exitCode())
	}
	found := false
	for _, r := range d.Rows {
		if r.Cell == "ours-sharded/A/wal" {
			found = true
			if r.Status != "new cell" {
				t.Fatalf("WAL cell status = %q, want \"new cell\"", r.Status)
			}
		}
		if r.Cell == "ours-sharded/A" && r.Status != "ok" {
			t.Fatalf("plain cell status = %q: WAL cell must not shadow its in-memory twin", r.Status)
		}
	}
	if !found {
		t.Fatal("WAL cell not keyed separately")
	}

	// Once both sides carry the WAL cell, it gates.
	oldR.Results = append(oldR.Results,
		bench.YCSBRecord{Structure: "ours-sharded", Workload: "A", Mops: 0.4, WAL: true})
	newR.Results[len(newR.Results)-1].Mops = 0.1
	d = diffYCSB(oldR, newR, 0.25)
	if !d.Regressed || d.exitCode() != 1 {
		t.Fatalf("baselined WAL cell regression must gate: regressed=%v exit=%d", d.Regressed, d.exitCode())
	}
}

package main

import (
	"strings"
	"testing"

	"mvgc/internal/bench"
)

func ycsbReport(cells map[string]float64) bench.YCSBReport {
	r := bench.YCSBReport{Threads: 4, Records: 50000, DurationSec: 1}
	for k, mops := range cells {
		parts := strings.SplitN(k, "/", 2)
		r.Results = append(r.Results, bench.YCSBRecord{Structure: parts[0], Workload: parts[1], Mops: mops})
	}
	return r
}

// TestYCSBNewCellAdvisory pins the rule that makes adding a workload safe:
// a cell present in -new but absent in -old (the first run after txn-occ
// landed, say) is reported as "new cell" and never fails the gate.
func TestYCSBNewCellAdvisory(t *testing.T) {
	oldR := ycsbReport(map[string]float64{"ours-sharded/txn-atomic": 1.0})
	newR := ycsbReport(map[string]float64{"ours-sharded/txn-atomic": 1.0, "ours-sharded/txn-occ": 0.8})
	d := diffYCSB(oldR, newR, 0.25)
	if d.Regressed || d.exitCode() != 0 {
		t.Fatalf("new cell must be advisory: regressed=%v exit=%d", d.Regressed, d.exitCode())
	}
	found := false
	for _, r := range d.Rows {
		if r.Cell == "ours-sharded/txn-occ" {
			found = true
			if r.Status != "new cell" {
				t.Fatalf("txn-occ status = %q, want \"new cell\"", r.Status)
			}
		}
	}
	if !found {
		t.Fatal("new cell not reported at all")
	}
}

// TestYCSBDroppedCellAdvisory: the mirror image — a cell that vanished is
// reported but does not fail.
func TestYCSBDroppedCellAdvisory(t *testing.T) {
	oldR := ycsbReport(map[string]float64{"ours/A": 1.0, "ours/B": 2.0})
	newR := ycsbReport(map[string]float64{"ours/A": 1.0})
	d := diffYCSB(oldR, newR, 0.25)
	if d.Regressed || d.exitCode() != 0 {
		t.Fatalf("dropped cell must be advisory: exit=%d", d.exitCode())
	}
}

// TestYCSBRegressionGates: a matched cell beyond tolerance fails with
// matching configs.
func TestYCSBRegressionGates(t *testing.T) {
	oldR := ycsbReport(map[string]float64{"ours/A": 1.0})
	newR := ycsbReport(map[string]float64{"ours/A": 0.5})
	d := diffYCSB(oldR, newR, 0.25)
	if !d.Regressed || d.exitCode() != 1 {
		t.Fatalf("50%% drop must gate: regressed=%v exit=%d", d.Regressed, d.exitCode())
	}
}

// TestYCSBConfigMismatchDowngrade: differing run configs make even a large
// regression advisory — the numbers are not comparable.
func TestYCSBConfigMismatchDowngrade(t *testing.T) {
	oldR := ycsbReport(map[string]float64{"ours/A": 1.0})
	newR := ycsbReport(map[string]float64{"ours/A": 0.1})
	newR.Records = 500000 // nightly-scale run vs smoke baseline
	d := diffYCSB(oldR, newR, 0.25)
	if !d.Regressed {
		t.Fatal("the drop should still be reported as a regression")
	}
	if d.Gate || d.exitCode() != 0 {
		t.Fatalf("config mismatch must downgrade to advisory: gate=%v exit=%d", d.Gate, d.exitCode())
	}
	if len(d.Notes) == 0 || !strings.Contains(d.Notes[0], "run configs differ") {
		t.Fatalf("missing config-mismatch warning: %v", d.Notes)
	}
}

// TestAllocZeroInvariantAbsolute: any increase from a 0 B/op baseline fails
// regardless of tolerance; a new alloc cell stays advisory.
func TestAllocZeroInvariantAbsolute(t *testing.T) {
	oldR := bench.AllocReport{Records: 1, BatchSize: 1, Procs: 1, Results: []bench.AllocRecord{
		{Path: "point-update", Recycle: true, BPerOp: 0},
	}}
	newR := bench.AllocReport{Records: 1, BatchSize: 1, Procs: 1, Results: []bench.AllocRecord{
		{Path: "point-update", Recycle: true, BPerOp: 1},
		{Path: "point-update-occ", Recycle: true, BPerOp: 16},
	}}
	d := diffAlloc(oldR, newR, 0.25)
	if !d.Regressed || d.exitCode() != 1 {
		t.Fatalf("1 B/op over a zero baseline must fail: exit=%d", d.exitCode())
	}
	for _, r := range d.Rows {
		if r.Cell == "point-update-occ/recycle=true" && r.Status != "new cell" {
			t.Fatalf("unmatched alloc cell status = %q, want \"new cell\"", r.Status)
		}
	}
}

// TestAllocConfigMismatchDowngrade mirrors the YCSB downgrade for the
// allocator schema.
func TestAllocConfigMismatchDowngrade(t *testing.T) {
	oldR := bench.AllocReport{Records: 50000, BatchSize: 1000, Procs: 4, Results: []bench.AllocRecord{
		{Path: "point-update", Recycle: true, BPerOp: 0},
	}}
	newR := bench.AllocReport{Records: 200000, BatchSize: 1000, Procs: 4, Results: []bench.AllocRecord{
		{Path: "point-update", Recycle: true, BPerOp: 64},
	}}
	d := diffAlloc(oldR, newR, 0.25)
	if !d.Regressed || d.Gate || d.exitCode() != 0 {
		t.Fatalf("mismatched alloc configs must be advisory: regressed=%v gate=%v exit=%d",
			d.Regressed, d.Gate, d.exitCode())
	}
}

// TestRenderMarkdown sanity-checks the step-summary table shape.
func TestRenderMarkdown(t *testing.T) {
	oldR := ycsbReport(map[string]float64{"ours/A": 1.0})
	newR := ycsbReport(map[string]float64{"ours/A": 0.5, "ours/B": 2.0})
	d := diffYCSB(oldR, newR, 0.25)
	var sb strings.Builder
	d.renderMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{
		"| status | cell | baseline | current | delta |",
		"**REGRESSED**",
		"new cell",
		"FAIL:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown summary missing %q in:\n%s", want, out)
		}
	}
}

// Command crashloop is the durability torture harness: it runs an mvgcd
// subprocess with a WAL, hammers it with pipelined SETs, kills it with
// SIGKILL mid-burst, restarts it, and verifies the recovered store —
// repeatedly.
//
// Usage:
//
//	go build -o /tmp/mvgcd ./cmd/mvgcd
//	go run ./cmd/crashloop -mvgcd /tmp/mvgcd -rounds 3 -duration 2s
//
// Invariants checked after every crash/restart (exit 1 on violation):
//
//   - Per key, values are written monotonically increasing and each key
//     sticks to one connection, so the recovered value must satisfy
//     lastAcked <= recovered <= lastAttempted: no acked write lost, no
//     invented data.
//   - SUM over the whole key range equals the sum of a full SCAN, and LEN
//     equals the scanned entry count: the augmented tree recovered
//     consistent with its contents.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"time"

	"mvgc/internal/netclient"
)

var (
	mvgcdBin = flag.String("mvgcd", "mvgcd", "path to the mvgcd binary")
	addr     = flag.String("addr", "127.0.0.1:6391", "address the child serves on")
	walDir   = flag.String("wal", "", "WAL directory (default: a fresh temp dir)")
	rounds   = flag.Int("rounds", 3, "kill/restart cycles")
	conns    = flag.Int("conns", 4, "concurrent pipelined connections")
	keys     = flag.Int("keys", 512, "distinct keys (each owned by one connection)")
	duration = flag.Duration("duration", 2*time.Second, "load time per round before SIGKILL")
	depth    = flag.Int("depth", 64, "pipeline window per connection")
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crashloop: "+format+"\n", args...)
	os.Exit(1)
}

// start launches mvgcd and waits until it accepts connections.
func start() *exec.Cmd {
	cmd := exec.Command(*mvgcdBin,
		"-addr", *addr, "-shards", "4", "-latency", "1ms",
		"-wal", *walDir, "-wal-fsync", "always")
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatalf("start %s: %v", *mvgcdBin, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		nc, err := net.DialTimeout("tcp", *addr, 250*time.Millisecond)
		if err == nil {
			nc.Close()
			return cmd
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			fatalf("server did not come up on %s", *addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func main() {
	flag.Parse()
	if *walDir == "" {
		dir, err := os.MkdirTemp("", "crashloop-wal-")
		if err != nil {
			fatalf("%v", err)
		}
		defer os.RemoveAll(dir)
		*walDir = dir
	}
	// Per-key bookkeeping, owned by the main goroutine between rounds.
	acked := make([]int64, *keys)     // last value whose +OK arrived
	attempted := make([]int64, *keys) // last value put on the wire
	next := make([]int64, *keys)      // next value to write
	for k := range next {
		next[k] = 1
	}

	for round := 1; round <= *rounds; round++ {
		cmd := start()

		stop := make(chan struct{})
		type connState struct {
			acked, attempted []int64
		}
		results := make(chan connState, *conns)
		for c := 0; c < *conns; c++ {
			go func(c int) {
				st := connState{
					acked:     make([]int64, *keys),
					attempted: make([]int64, *keys),
				}
				defer func() { results <- st }()
				cl, err := netclient.Dial(*addr, *depth)
				if err != nil {
					return
				}
				defer cl.Close()
				// Window of in-flight writes; per-key order is the wire
				// order because each key belongs to exactly one conn.
				type inflight struct {
					key int
					val int64
					p   *netclient.Pending
				}
				window := make([]inflight, 0, *depth)
				drain := func() bool {
					if err := cl.Flush(); err != nil {
						return false
					}
					ok := true
					for _, in := range window {
						if in.p.Err() == nil {
							st.acked[in.key] = in.val
						} else {
							ok = false
						}
					}
					window = window[:0]
					return ok
				}
				vals := make([]int64, *keys)
				for k := c; k < *keys; k += *conns {
					vals[k] = next[k]
				}
				for k := c; ; k += *conns {
					if k >= *keys {
						k = c
						select {
						case <-stop:
							drain()
							return
						default:
						}
					}
					v := vals[k]
					vals[k]++
					st.attempted[k] = v
					window = append(window, inflight{key: k, val: v, p: cl.SetAsync(int64(k), v)})
					if len(window) == *depth {
						if !drain() {
							return
						}
					}
				}
			}(c)
		}

		time.Sleep(*duration)
		close(stop)
		if err := cmd.Process.Kill(); err != nil {
			fatalf("kill: %v", err)
		}
		cmd.Wait()
		for c := 0; c < *conns; c++ {
			st := <-results
			for k := 0; k < *keys; k++ {
				if st.acked[k] > acked[k] {
					acked[k] = st.acked[k]
				}
				if st.attempted[k] > attempted[k] {
					attempted[k] = st.attempted[k]
					next[k] = st.attempted[k] + 1
				}
			}
		}

		// Restart and verify.
		cmd = start()
		cl, err := netclient.Dial(*addr, *depth)
		if err != nil {
			fatalf("round %d: dial after restart: %v", round, err)
		}
		var recoveredSum, scanned int64
		for k := 0; k < *keys; k++ {
			v, ok, err := cl.Get(int64(k))
			if err != nil {
				fatalf("round %d: GET %d: %v", round, k, err)
			}
			switch {
			case !ok && acked[k] > 0:
				fatalf("round %d: key %d lost (acked value %d)", round, k, acked[k])
			case ok && (v < acked[k] || v > attempted[k]):
				fatalf("round %d: key %d = %d outside [acked %d, attempted %d]",
					round, k, v, acked[k], attempted[k])
			}
			if ok {
				recoveredSum += v
				scanned++
				// The recovered value is durable: future writes must
				// stay monotone above it.
				if v >= next[k] {
					next[k] = v + 1
				}
			}
		}
		sum, err := cl.Sum(0, int64(*keys))
		if err != nil {
			fatalf("round %d: SUM: %v", round, err)
		}
		if sum != recoveredSum {
			fatalf("round %d: SUM = %d but GETs total %d: augmentation inconsistent after recovery",
				round, sum, recoveredSum)
		}
		n, err := cl.Len()
		if err != nil {
			fatalf("round %d: LEN: %v", round, err)
		}
		if n != scanned {
			fatalf("round %d: LEN = %d but %d keys present", round, n, scanned)
		}
		stats, err := cl.Stats()
		if err != nil {
			fatalf("round %d: STATS: %v", round, err)
		}
		cl.Close()
		cmd.Process.Signal(os.Interrupt)
		cmd.Wait()
		fmt.Printf("crashloop: round %d ok: %d keys live, sum %d consistent (%s)\n",
			round, n, sum, stats)
	}
	fmt.Println("crashloop: all rounds passed")
}
